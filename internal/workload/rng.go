// Package workload synthesizes the paper's workloads as multi-process
// reference generators: WORKLOAD1 (a CAD-tool developer's script), SLC (the
// SPUR Common Lisp compiler), and the Sprite development hosts of Table 3.5.
//
// The generators are parameterised in exactly the quantities the paper's
// results hinge on: working-set size against memory size (paging rate),
// the fraction of modified blocks that are read before being written
// (N_w-hit / N_w-miss, which drives excess faults), and the volume of
// zero-fill page creation (N_zfod).
package workload

import "math/bits"

// RNG is a small, fast, deterministic generator (splitmix64). Experiments
// use explicit seeds so runs repeat exactly.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive. The draw is
// unbiased: instead of `x % n` (which over-represents residues below
// 2^64 mod n), the raw draw is mapped through a 128-bit multiply and the
// truncated low fringe is rejected and redrawn (Lemire's method). Kept
// inline rather than shared with stats.Uint64n because this is the
// workload generators' hot path and a method-value closure allocates.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn of non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Chance reports true with probability p.
func (r *RNG) Chance(p float64) bool { return r.Float64() < p }

// Range returns a uniform int in [lo, hi].
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("workload: empty range")
	}
	return lo + r.Intn(hi-lo+1)
}

// Fork derives an independent stream, for giving each process its own RNG.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
