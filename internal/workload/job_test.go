package workload

import (
	"fmt"
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/vm"
)

// fakeEnv implements Env over simple bookkeeping.
type fakeEnv struct {
	regions  map[vm.Region]vm.PageKind
	segsOut  map[addr.SegmentID]bool
	nextSeg  addr.SegmentID
	released []vm.Region
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		regions: map[vm.Region]vm.PageKind{},
		segsOut: map[addr.SegmentID]bool{},
		nextSeg: 1,
	}
}

func (e *fakeEnv) AddRegion(start addr.GVPN, n int, kind vm.PageKind) vm.Region {
	r := vm.Region{Start: start, N: n, Kind: kind}
	for old := range e.regions {
		if r.Start < old.End() && old.Start < r.End() {
			panic(fmt.Sprintf("fakeEnv: overlap %v vs %v", r, old))
		}
	}
	e.regions[r] = kind
	return r
}

func (e *fakeEnv) ReleaseRegion(r vm.Region) {
	if _, ok := e.regions[r]; !ok {
		panic("fakeEnv: release of unknown region")
	}
	delete(e.regions, r)
	e.released = append(e.released, r)
}

func (e *fakeEnv) AllocSegment() addr.SegmentID {
	s := e.nextSeg
	e.nextSeg++
	e.segsOut[s] = true
	return s
}

func (e *fakeEnv) FreeSegment(s addr.SegmentID) {
	if !e.segsOut[s] {
		panic("fakeEnv: free of unallocated segment")
	}
	delete(e.segsOut, s)
}

func testParams() JobParams {
	return JobParams{
		Name: "t", Refs: 100000,
		CodePages: 8, HotCodeFrac: 0.2,
		DataPages: 16, HeapPages: 4, StackPages: 2,
		PIFetch: 0.5, PJump: 0.05, PFarJump: 0.1,
		PStack: 0.1, PAlloc: 0.1, PScanHeap: 0.1,
		PWritePage: 0.5, WriteRO: 0.3, WriteRMW: 0.2,
		ReadPassWrite: 0.01, PBackWrite: 0.01,
		PSeq: 0.3, PHotData: 0.3, HotDataFrac: 0.25, PHotWrite: 0.3,
		PRevisitWrite: 0.1, WindowPages: 4,
	}
}

func TestJobLifecycle(t *testing.T) {
	env := newFakeEnv()
	j := NewJob(env, NewRNG(1), testParams(), nil)
	if len(env.regions) != 4 { // code, data, heap, stack
		t.Fatalf("regions = %d, want 4", len(env.regions))
	}
	if j.Done() {
		t.Fatal("fresh job done")
	}
	j.Teardown()
	if len(env.regions) != 0 {
		t.Errorf("%d regions leaked", len(env.regions))
	}
	if len(env.segsOut) != 0 {
		t.Error("segment leaked")
	}
	j.Teardown() // idempotent
}

func TestJobParamValidation(t *testing.T) {
	cases := []func(*JobParams){
		func(p *JobParams) { p.Refs = 0 },
		func(p *JobParams) { p.DataPages = 0 },
		func(p *JobParams) { p.PIFetch = 1.5 },
		func(p *JobParams) { p.WriteRO, p.WriteRMW = 0.8, 0.5 },
	}
	for i, mutate := range cases {
		p := testParams()
		mutate(&p)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: invalid params accepted", i)
				}
			}()
			NewJob(newFakeEnv(), NewRNG(1), p, nil)
		}()
	}
}

func TestJobNeedsCode(t *testing.T) {
	p := testParams()
	p.CodePages = 0
	defer func() {
		if recover() == nil {
			t.Error("job with no code accepted")
		}
	}()
	NewJob(newFakeEnv(), NewRNG(1), p, nil)
}

// drain pulls n references, checking each lands in a region of the job.
func drain(t *testing.T, env *fakeEnv, j *Job, n int) map[vm.PageKind][3]uint64 {
	t.Helper()
	stats := map[vm.PageKind][3]uint64{}
	for i := 0; i < n && !j.Done(); i++ {
		r := j.Step()
		found := false
		for reg, kind := range env.regions {
			if reg.Contains(r.Addr.Page()) {
				s := stats[kind]
				s[r.Op]++
				stats[kind] = s
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("ref %d to %v outside every region", i, r.Addr)
		}
	}
	return stats
}

func TestJobReferencesStayInRegions(t *testing.T) {
	env := newFakeEnv()
	j := NewJob(env, NewRNG(2), testParams(), nil)
	stats := drain(t, env, j, 50000)
	if stats[vm.Code][trace.OpIFetch] == 0 {
		t.Error("no instruction fetches to code")
	}
	if stats[vm.Code][trace.OpWrite] != 0 {
		t.Error("writes to code pages")
	}
	if stats[vm.Data][trace.OpRead] == 0 || stats[vm.Data][trace.OpWrite] == 0 {
		t.Error("data traffic missing")
	}
	if stats[vm.Heap][trace.OpWrite] == 0 {
		t.Error("no heap allocation writes")
	}
	if stats[vm.Stack][trace.OpWrite] == 0 {
		t.Error("no stack writes")
	}
}

func TestJobDoneAfterRefs(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	p.Refs = 500
	j := NewJob(env, NewRNG(3), p, nil)
	n := 0
	for !j.Done() {
		j.Step()
		n++
		if n > 1000 {
			t.Fatal("job never finished")
		}
	}
	if n != 500 {
		t.Errorf("job emitted %d refs, budget 500", n)
	}
}

func TestHeapChurnAllocatesFreshRegions(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	p.HeapPages = 1 // one page per generation: wraps fast
	p.PAlloc = 0.5
	p.PIFetch = 0.1
	j := NewJob(env, NewRNG(4), p, nil)
	heapStarts := map[addr.GVPN]bool{}
	for i := 0; i < 30000 && !j.Done(); i++ {
		j.Step()
	}
	for r, kind := range env.regions {
		if kind == vm.Heap {
			heapStarts[r.Start] = true
		}
	}
	if len(env.released) == 0 {
		t.Error("no heap generation was ever released")
	}
	if j.heapGen == 0 {
		t.Error("heap never churned")
	}
}

// TestHeapChurnStaysBelowStack churns far past the slot wrap with
// generations bigger than the slot stride — the configuration that used to
// walk the 96th generation across stackBase into the stack area. The fake
// env panics on any region overlap, and every generation's extent is checked
// against the layout bounds directly.
func TestHeapChurnStaysBelowStack(t *testing.T) {
	env := newFakeEnv()
	p := testParams()
	p.HeapPages = heapStride + 200 // generation crosses into the next slot
	p.StackPages = 4               // a stack region to collide with at stackBase
	j := NewJob(env, NewRNG(4), p, nil)
	segBase := uint64(addr.PageIn(j.seg, 0))
	for gen := 0; gen < 300; gen++ {
		j.newHeapGeneration()
		start := uint64(j.heap.Start) - segBase
		end := uint64(j.heap.End()) - segBase
		if start < heapBase || end > stackBase {
			t.Fatalf("generation %d spans pages [%d,%d), outside the heap area [%d,%d)",
				j.heapGen, start, end, heapBase, stackBase)
		}
	}
	if j.heapGen <= (stackBase-heapBase)/heapStride {
		t.Fatal("churn did not pass the slot wrap")
	}
}

// TestHeapPagesOversizedPanics rejects a generation larger than the whole
// heap area loudly instead of colliding at slot 0.
func TestHeapPagesOversizedPanics(t *testing.T) {
	p := testParams()
	p.HeapPages = stackBase - heapBase + 1
	defer func() {
		if recover() == nil {
			t.Error("oversized HeapPages accepted")
		}
	}()
	NewJob(newFakeEnv(), NewRNG(1), p, nil)
}

func TestSharedCodeFetched(t *testing.T) {
	env := newFakeEnv()
	shared := env.AddRegion(addr.PageIn(200, 0), 8, vm.Code)
	p := testParams()
	p.CodePages = 0
	p.PFarJump = 0.5
	p.PJump = 0.3
	j := NewJob(env, NewRNG(5), p, []vm.Region{shared})
	sawShared := false
	for i := 0; i < 20000 && !j.Done(); i++ {
		r := j.Step()
		if r.Op == trace.OpIFetch && shared.Contains(r.Addr.Page()) {
			sawShared = true
			break
		}
	}
	if !sawShared {
		t.Error("never fetched from the shared image")
	}
	// Teardown must not release the shared image.
	j.Teardown()
	if _, ok := env.regions[shared]; !ok {
		t.Error("job released the shared image")
	}
}

func TestPersistentDataNotReleased(t *testing.T) {
	env := newFakeEnv()
	file := env.AddRegion(addr.PageIn(210, 0), 32, vm.Data)
	p := testParams()
	j := newJobWithData(env, NewRNG(6), p, nil, file, vm.Region{})
	for i := 0; i < 1000; i++ {
		j.Step()
	}
	j.Teardown()
	if _, ok := env.regions[file]; !ok {
		t.Error("job released the persistent file region")
	}
}

func TestSourceRegionReadOnly(t *testing.T) {
	env := newFakeEnv()
	src := env.AddRegion(addr.PageIn(220, 0), 32, vm.Code)
	p := testParams()
	p.PSrcRead = 0.8
	j := newJobWithData(env, NewRNG(7), p, nil, vm.Region{}, src)
	srcReads := 0
	for i := 0; i < 30000 && !j.Done(); i++ {
		r := j.Step()
		if src.Contains(r.Addr.Page()) {
			if r.Op == trace.OpWrite {
				t.Fatal("write to read-only source region")
			}
			srcReads++
		}
	}
	if srcReads == 0 {
		t.Error("source region never read")
	}
}

func TestWriteMixControllable(t *testing.T) {
	// Read-heavy vs write-heavy parameterizations must order the write
	// fractions accordingly.
	frac := func(pWritePage float64) float64 {
		env := newFakeEnv()
		p := testParams()
		p.PWritePage = pWritePage
		p.PHotWrite = pWritePage / 2
		j := NewJob(env, NewRNG(8), p, nil)
		writes, total := 0, 0
		for i := 0; i < 40000 && !j.Done(); i++ {
			r := j.Step()
			total++
			if r.Op == trace.OpWrite {
				writes++
			}
		}
		return float64(writes) / float64(total)
	}
	lo, hi := frac(0.05), frac(0.9)
	if lo >= hi {
		t.Errorf("write fraction not monotone in PWritePage: %.3f vs %.3f", lo, hi)
	}
}
