package workload

// WindowSpec is the workload the paper says it is missing: "This workload
// lacks any window activity, a major deficiency for a workstation
// environment. Unfortunately, no window system currently runs on SPUR, so
// it is not possible to include this behavior."
//
// This spec models the 1989 workstation window stack the authors would have
// run: a window server owning a large writable frame buffer and font/bitmap
// caches, client applications (terminal emulators, a clock, an editor)
// streaming redraw requests at it, and the same background compile load as
// WORKLOAD1's foreground. Window traffic is write-heavy into long-lived
// shared-fate pages (the frame buffer re-dirties endlessly, so dirty bits
// buy little there) while client heaps churn zero-fill pages — a usefully
// different mix from both WORKLOAD1 and SLC.
func WindowSpec() Spec {
	client := func(name string, refs int64, data string) JobSpec {
		return JobSpec{
			Params: JobParams{
				Name: name, Refs: refs,
				HotCodeFrac: 0.04,
				HeapPages:   60, StackPages: 3,
				PIFetch: 0.56, PJump: 0.05, PFarJump: 0.12,
				PStack: 0.10, PAlloc: 0.05, PScanHeap: 0.12,
				PWritePage: 0.45, WriteRO: 0.3, WriteRMW: 0.24,
				ReadPassWrite: 0.001, PBackWrite: 0.005,
				PSeq: 0.25, PHotData: 0.5, HotDataFrac: 0.3, PHotWrite: 0.3,
				WindowPages: 6,
			},
			Shared:         []string{"libX", "apps"},
			PersistentData: data,
		}
	}
	return Spec{
		Name: "WINDOW",
		Images: map[string]int{
			"server": 140, // the window server
			"libX":   90,  // client-side library
			"apps":   120, // terminal emulator, clock, editor text
			"cc":     130,
		},
		Files: map[string]int{
			// The frame buffer plus the server's pixmap/font caches:
			// large, writable, re-dirtied continuously.
			"framebuf": 520,
			"fonts":    130,
			"term-a":   90,
			"term-b":   90,
			"editbuf":  110,
			"src":      160,
		},
		Background: []JobSpec{{
			// The window server: constant write traffic into the frame
			// buffer (damage repaint), reads from the font cache.
			Params: JobParams{
				Name:        "wm-server",
				HotCodeFrac: 0.04,
				HeapPages:   50, StackPages: 4,
				PIFetch: 0.52, PJump: 0.05, PFarJump: 0.1,
				PStack: 0.06, PAlloc: 0.01, PScanHeap: 0.08,
				// Repaints write whole regions at once.
				PWritePage: 0.75, WriteRO: 0.15, WriteRMW: 0.2,
				ReadPassWrite: 0.001, PBackWrite: 0.004,
				PSeq: 0.3, PHotData: 0.6, HotDataFrac: 0.25, PHotWrite: 0.55,
				WindowPages: 8,
			},
			Shared:         []string{"server"},
			PersistentData: "framebuf",
		}},
		Foreground: []JobSpec{
			client("xterm-a", 350_000, "term-a"),
			{
				Params: JobParams{
					Name: "cc-bg", Refs: 700_000, HotCodeFrac: 0.04,
					HeapPages: 150, StackPages: 4,
					PIFetch: 0.55, PJump: 0.05, PFarJump: 0.15,
					PStack: 0.10, PAlloc: 0.20, PScanHeap: 0.15,
					PWritePage: 0.50, WriteRO: 0.3, WriteRMW: 0.24,
					ReadPassWrite: 0.001, PBackWrite: 0.005,
					PSeq: 0.22, PHotData: 0.55, HotDataFrac: 0.4, PHotWrite: 0.3,
					WindowPages: 6,
				},
				Shared:         []string{"cc"},
				PersistentData: "src",
			},
			client("editor", 450_000, "editbuf"),
			client("xterm-b", 300_000, "term-b"),
		},
		Monitors: []MonitorSpec{{
			// The clock redraws every so often: a tiny client that
			// writes a corner of the frame buffer.
			Spec: JobSpec{
				Params: JobParams{
					Name: "xclock", Refs: 15_000, HotCodeFrac: 0.1,
					HeapPages: 2, StackPages: 1,
					PIFetch: 0.55, PJump: 0.05, PFarJump: 0.1,
					PStack: 0.08, PAlloc: 0.01, PScanHeap: 0.02,
					PWritePage: 0.8, WriteRO: 0.1, WriteRMW: 0.2,
					ReadPassWrite: 0.001, PBackWrite: 0.002,
					PSeq: 0.4, PHotData: 0.6, HotDataFrac: 0.5, PHotWrite: 0.6,
					WindowPages: 2,
				},
				Shared:         []string{"libX"},
				PersistentData: "fonts",
			},
			Period: 350_000,
		}},
		Quantum: 20_000,
	}
}
