package workload

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/vm"
)

// sortedNames returns the map's keys in ascending order, so region creation
// and validation visit spec entries in a replay-stable sequence.
func sortedNames(m map[string]int) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// JobSpec names a job template within a script.
type JobSpec struct {
	Params JobParams
	// Shared lists shared code images (program text shared between
	// processes — the compiler, the editor) the job executes from.
	Shared []string
	// PersistentData, if non-empty, names a script-owned file-backed
	// data region the job works on instead of private data. Repeated
	// instances of the same command touch the same file pages — the
	// Sprite file cache keeps them in memory between runs, so a
	// recompile does not re-read the world from disk.
	PersistentData string
	// PersistentSource, if non-empty, names a script-owned *read-only*
	// region (an ROFiles entry) the job reads through PSrcRead scans.
	PersistentSource string
}

// MonitorSpec is a small job respawned periodically (WORKLOAD1's two
// performance monitor programs).
type MonitorSpec struct {
	Spec JobSpec
	// Period is the respawn interval in global references.
	Period int64
}

// Spec is a whole workload: shared images, persistent file regions,
// long-running background jobs, a cyclic foreground command sequence, and
// periodic monitors.
type Spec struct {
	Name string
	// Images maps shared code image names to their sizes in pages.
	Images map[string]int
	// Files maps persistent data region names to their sizes in pages.
	Files map[string]int
	// ROFiles maps persistent read-only region names (file-cache-resident
	// sources, never writable-mapped) to their sizes in pages.
	ROFiles map[string]int
	// Background jobs run for the whole experiment.
	Background []JobSpec
	// Foreground jobs run one at a time, cycling forever.
	Foreground []JobSpec
	// Monitors respawn periodically.
	Monitors []MonitorSpec
	// Quantum is the scheduler time slice in references.
	Quantum int
}

// Script drives a Spec: it owns the shared images and persistent regions,
// spawns and reaps jobs, and implements trace.Source.
type Script struct {
	spec Spec
	env  Env
	rng  *RNG

	sched   *proc.Scheduler
	nextPID int32

	images map[string]vm.Region
	files  map[string]vm.Region

	jobs map[*proc.Task]*taskInfo

	fgIdx      int
	monitorUp  []bool
	monitorDue []int64
	refCount   int64
}

type taskInfo struct {
	job     *Job
	isFG    bool
	monitor int // -1 unless a monitor instance
}

// NewScript instantiates a workload over the machine environment.
func NewScript(env Env, seed uint64, spec Spec) *Script {
	if spec.Quantum <= 0 {
		spec.Quantum = 20000
	}
	s := &Script{
		spec:   spec,
		env:    env,
		rng:    NewRNG(seed),
		sched:  proc.NewScheduler(spec.Quantum),
		images: make(map[string]vm.Region),
		files:  make(map[string]vm.Region),
		jobs:   make(map[*proc.Task]*taskInfo),
	}
	s.sched.OnExit = s.onExit

	// Regions are created in sorted-name order. Ranging over the spec maps
	// directly would bind segments to names in randomized map order, so two
	// runs of the same spec could lay out the address space differently —
	// invisible while the cache index stays below the segment bits, and a
	// silent replay breaker the moment a sweep grows the cache past that.
	for _, name := range sortedNames(spec.Images) {
		seg := env.AllocSegment()
		s.images[name] = env.AddRegion(addr.PageIn(seg, 0), spec.Images[name], vm.Code)
	}
	for _, name := range sortedNames(spec.Files) {
		seg := env.AllocSegment()
		s.files[name] = env.AddRegion(addr.PageIn(seg, 0), spec.Files[name], vm.Data)
	}
	for _, name := range sortedNames(spec.ROFiles) {
		if _, dup := s.files[name]; dup {
			panic(fmt.Sprintf("workload: %q in both Files and ROFiles", name))
		}
		seg := env.AllocSegment()
		s.files[name] = env.AddRegion(addr.PageIn(seg, 0), spec.ROFiles[name], vm.Code)
	}

	for _, b := range spec.Background {
		b.Params.Refs = 1 << 62 // runs for the whole experiment
		s.spawn(b, &taskInfo{monitor: -1})
	}
	if len(spec.Foreground) > 0 {
		s.spawn(spec.Foreground[0], &taskInfo{isFG: true, monitor: -1})
		s.fgIdx = 0
	}
	s.monitorUp = make([]bool, len(spec.Monitors))
	s.monitorDue = make([]int64, len(spec.Monitors))
	for i, m := range spec.Monitors {
		s.monitorDue[i] = m.Period
	}
	return s
}

// spawn creates a job for the spec and schedules it.
func (s *Script) spawn(js JobSpec, info *taskInfo) {
	shared := make([]vm.Region, 0, len(js.Shared))
	for _, name := range js.Shared {
		r, ok := s.images[name]
		if !ok {
			panic(fmt.Sprintf("workload: unknown shared image %q", name))
		}
		shared = append(shared, r)
	}
	var persistent, source vm.Region
	if js.PersistentData != "" {
		r, ok := s.files[js.PersistentData]
		if !ok {
			panic(fmt.Sprintf("workload: unknown persistent file region %q", js.PersistentData))
		}
		persistent = r
	}
	if js.PersistentSource != "" {
		r, ok := s.files[js.PersistentSource]
		if !ok {
			panic(fmt.Sprintf("workload: unknown persistent source region %q", js.PersistentSource))
		}
		source = r
	}
	job := newJobWithData(s.env, s.rng, js.Params, shared, persistent, source)
	info.job = job
	s.nextPID++
	t := &proc.Task{PID: s.nextPID, Name: js.Params.Name, Runner: job}
	s.jobs[t] = info
	s.sched.Add(t)
}

// onExit tears the job down and respawns foreground/monitor successors.
func (s *Script) onExit(t *proc.Task) {
	info := s.jobs[t]
	delete(s.jobs, t)
	info.job.Teardown()
	if info.isFG {
		s.fgIdx = (s.fgIdx + 1) % len(s.spec.Foreground)
		s.spawn(s.spec.Foreground[s.fgIdx], &taskInfo{isFG: true, monitor: -1})
	}
	if info.monitor >= 0 {
		s.monitorUp[info.monitor] = false
	}
}

// Next implements trace.Source.
func (s *Script) Next() (trace.Rec, bool) {
	s.refCount++
	for i := range s.spec.Monitors {
		if !s.monitorUp[i] && s.refCount >= s.monitorDue[i] {
			s.monitorUp[i] = true
			s.monitorDue[i] = s.refCount + s.spec.Monitors[i].Period
			s.spawn(s.spec.Monitors[i].Spec, &taskInfo{monitor: i})
		}
	}
	return s.sched.Next()
}

// NextBatch implements trace.BatchSource, producing the identical reference
// sequence Next would. The only per-reference work Next does above the
// scheduler is the monitor respawn check, and a monitor can only fire at the
// reference where refCount reaches its due point — so the stream is cut into
// windows guaranteed to contain no due point, generated in bulk by the
// scheduler, and single-stepped through the due points themselves. A monitor
// that is still up bounds the window the same way: if it exits mid-window
// its successor cannot be due before the recorded due point either.
func (s *Script) NextBatch(buf []trace.Rec) int {
	n := 0
	for n < len(buf) {
		win := int64(len(buf) - n)
		due := false
		for i := range s.monitorDue {
			d := s.monitorDue[i] - s.refCount
			if d <= 1 {
				// A monitor decision lands on the very next reference
				// (or is overdue, waiting for the running instance to
				// exit): take the exact per-reference path.
				due = true
				break
			}
			if d-1 < win {
				win = d - 1
			}
		}
		if due {
			if n > 0 {
				// The per-reference path can reap a finished task or turn a
				// heap generation over, releasing regions the buffered
				// references still refer to. Flush so the machine replays
				// them first; the next call re-enters here with an empty
				// buffer.
				return n
			}
			r, ok := s.Next()
			if !ok {
				return n
			}
			buf[n] = r
			n++
			continue
		}
		k := s.sched.NextBatch(buf[n : n+int(win)])
		s.refCount += int64(k)
		n += k
		if k < int(win) {
			return n // every task finished
		}
	}
	return n
}

// Scheduler exposes the underlying scheduler for inspection.
func (s *Script) Scheduler() *proc.Scheduler { return s.sched }

// Runnable reports how many processes could use the CPU right now; the
// pager uses it to decide whether a page-in stall overlaps with other work.
func (s *Script) Runnable() int { return s.sched.Len() }
