package workload

import (
	"fmt"
	"math"
)

// SpriteHost describes one of the Sprite development machines of Table 3.5.
// The paper read page-out statistics from six systems used by the Sprite
// developers "to enhance and maintain the Sprite operating system, as well
// as other tasks such as reading mail, and writing papers and
// dissertations" over 36-119 hours of uptime.
type SpriteHost struct {
	Name        string
	MemMB       int
	UptimeHours int
	// Refs is the simulated reference budget standing in for the uptime
	// (longer uptimes run longer).
	Refs int64
	// Load scales the workload's footprint: users self-schedule, running
	// their big jobs on the machines with more memory.
	Load float64
}

// SpriteHosts returns the six host configurations of Table 3.5. Refs are
// proportional to uptime; Load reflects the paper's observation that users
// with large memory demands pick the large-memory machines.
func SpriteHosts() []SpriteHost {
	return []SpriteHost{
		{Name: "mace", MemMB: 8, UptimeHours: 70, Refs: 15_000_000, Load: 1.00},
		{Name: "sloth", MemMB: 8, UptimeHours: 37, Refs: 14_000_000, Load: 0.95},
		{Name: "mace", MemMB: 8, UptimeHours: 46, Refs: 12_000_000, Load: 1.05},
		{Name: "sage", MemMB: 12, UptimeHours: 45, Refs: 22_000_000, Load: 1.50},
		{Name: "fenugreek", MemMB: 12, UptimeHours: 36, Refs: 20_000_000, Load: 1.60},
		{Name: "murder", MemMB: 16, UptimeHours: 119, Refs: 30_000_000, Load: 2.20},
	}
}

// Spec builds the host's software-development workload. Sources, mail
// folders and document trees are read through the file cache (read-only
// regions — never in Table 3.5's "potentially modified" population), while
// each command's products live in private writable data and heap pages.
// A writable page's fate at replacement — modified or still clean — is the
// race between its eventual write and its eviction, which is exactly what
// the table measures.
func (h SpriteHost) Spec() Spec {
	scale := func(pages int) int {
		n := int(float64(pages) * h.Load)
		if n < 4 {
			n = 4
		}
		return n
	}
	project := func(name string, refs int64) JobSpec {
		return JobSpec{
			Params: JobParams{
				Name: name,
				// Bigger machines run bigger builds (self-scheduling).
				Refs:        int64(float64(refs) * h.Load),
				DataPages:   scale(130), // command products: objects, spools, drafts
				HotCodeFrac: 0.04,
				HeapPages:   scale(140),
				StackPages:  3,
				PIFetch:     0.55,
				PJump:       0.05,
				PFarJump:    0.12,
				PStack:      0.09,
				PAlloc:      0.04,
				PScanHeap:   0.12,
				PSrcRead:    0.55,
				// Product pages are written during their active phase,
				// some only after a reading pass — the clean-page-out
				// candidates when memory is tight.
				PWritePage:    0.55,
				WriteRO:       0.30,
				WriteRMW:      0.24,
				ReadPassWrite: 0.001,
				PBackWrite:    0.005,
				PSeq:          0.45,
				RandomStart:   true,
				PHotData:      0.55,
				HotDataFrac:   0.30,
				PHotWrite:     0.30,
				WindowPages:   12,
			},
			Shared:           []string{"tools"},
			PersistentSource: "src-" + name,
		}
	}
	// Long-lived sessions (an editor with open buffers, a mail reader, a
	// login shell with its daemons) hold private writable data that idles
	// while builds run and gets evicted under their pressure — these are
	// the pages whose modified-at-replacement fraction Table 3.5 reports.
	session := func(name string, dataPages int, pWrite float64) JobSpec {
		// Heavy, write-intensive jobs self-schedule onto the machines
		// with more memory, so the chance a session page is modified
		// while resident grows with Load — the mechanism behind the
		// table's falling "not modified" column at 12 and 16 MB.
		pWrite = 1 - (1-pWrite)/math.Pow(h.Load, 1.8)
		return JobSpec{
			Params: JobParams{
				Name:          name,
				DataPages:     scale(dataPages),
				HotCodeFrac:   0.02,
				StackPages:    2,
				PIFetch:       0.60,
				PJump:         0.04,
				PFarJump:      0.05,
				PStack:        0.10,
				PWritePage:    pWrite,
				WriteRO:       0.30,
				WriteRMW:      0.24,
				ReadPassWrite: 0.001,
				PBackWrite:    0.005,
				// The session works a buffer at a time: the cursor
				// creeps, so most of its data idles and ages out; busier
				// users (bigger machines) turn their buffers over faster.
				PSeq:        0.015 * h.Load,
				PHotData:    0.5,
				HotDataFrac: 0.06,
				PHotWrite:   0.35,
				WindowPages: 3,
			},
			Shared: []string{"tools"},
		}
	}
	return Spec{
		Name: fmt.Sprintf("sprite-%s-%dMB", h.Name, h.MemMB),
		Images: map[string]int{
			"tools": 160, // compilers, editors, mailers
		},
		Background: []JobSpec{
			session("emacs", 320, 0.85),
			session("mail-reader", 200, 0.80),
			session("shell+daemons", 160, 0.75),
		},
		ROFiles: map[string]int{
			"src-kernel": scale(900),
			"src-paper":  scale(500),
			"src-mail":   scale(300),
			"src-misc":   scale(360),
		},
		Foreground: []JobSpec{
			project("kernel", 1_600_000),
			project("paper", 900_000),
			project("kernel", 1_300_000),
			project("mail", 500_000),
			project("misc", 450_000),
		},
		Quantum: 20_000,
	}
}
