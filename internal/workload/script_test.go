package workload

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vm"
)

func miniSpec() Spec {
	small := func(name string, refs int64) JobSpec {
		return JobSpec{
			Params: JobParams{
				Name: name, Refs: refs,
				HotCodeFrac: 0.2, DataPages: 8, HeapPages: 2, StackPages: 1,
				PIFetch: 0.5, PJump: 0.05, PFarJump: 0.1,
				PStack: 0.1, PAlloc: 0.05, PScanHeap: 0.1,
				PWritePage: 0.5, WriteRO: 0.3, WriteRMW: 0.2,
				ReadPassWrite: 0.01, PBackWrite: 0.005,
				PSeq: 0.3, PHotData: 0.3, HotDataFrac: 0.25, PHotWrite: 0.3,
				WindowPages: 2,
			},
			Shared:         []string{"img"},
			PersistentData: "file",
		}
	}
	return Spec{
		Name:   "mini",
		Images: map[string]int{"img": 4},
		Files:  map[string]int{"file": 8},
		Background: []JobSpec{{
			Params: JobParams{
				Name: "bg", HotCodeFrac: 0.2, DataPages: 8,
				PIFetch: 0.6, PJump: 0.05, PFarJump: 0.1,
				PWritePage: 0.3, WriteRO: 0.3, WriteRMW: 0.2,
				PSeq: 0.3, WindowPages: 2,
			},
			Shared: []string{"img"},
		}},
		Foreground: []JobSpec{small("fg1", 3000), small("fg2", 2000)},
		Monitors: []MonitorSpec{{
			Spec:   small("mon", 500),
			Period: 5000,
		}},
		Quantum: 100,
	}
}

func TestScriptProducesInterleavedStream(t *testing.T) {
	env := newFakeEnv()
	s := NewScript(env, 1, miniSpec())
	pids := map[int32]int{}
	for i := 0; i < 30000; i++ {
		r, ok := s.Next()
		if !ok {
			t.Fatal("script ran dry with a background job")
		}
		pids[r.PID]++
	}
	if len(pids) < 4 {
		t.Errorf("only %d distinct processes seen", len(pids))
	}
}

func TestScriptForegroundCycles(t *testing.T) {
	env := newFakeEnv()
	s := NewScript(env, 1, miniSpec())
	// fg1 (3000) + fg2 (2000) = one cycle of 5000 fg refs; run enough
	// that the cycle wraps several times.
	for i := 0; i < 40000; i++ {
		s.Next()
	}
	// The foreground keeps running: scheduler holds bg + fg (+ maybe
	// monitor).
	if s.Scheduler().Len() < 2 {
		t.Errorf("scheduler drained to %d tasks", s.Scheduler().Len())
	}
	if s.Runnable() != s.Scheduler().Len() {
		t.Error("Runnable disagrees with scheduler")
	}
}

func TestScriptMonitorsRespawn(t *testing.T) {
	env := newFakeEnv()
	s := NewScript(env, 1, miniSpec())
	names := map[string]bool{}
	monitorSeen := 0
	last := false
	for i := 0; i < 60000; i++ {
		s.Next()
		cur := false
		for _, task := range s.Scheduler().Tasks() {
			names[task.Name] = true
			if task.Name == "mon" {
				cur = true
			}
		}
		if cur && !last {
			monitorSeen++
		}
		last = cur
	}
	if monitorSeen < 2 {
		t.Errorf("monitor spawned %d times, want recurring", monitorSeen)
	}
	if !names["fg1"] || !names["fg2"] || !names["bg"] {
		t.Errorf("tasks seen: %v", names)
	}
}

func TestScriptPersistentRegionsSurviveJobs(t *testing.T) {
	env := newFakeEnv()
	s := NewScript(env, 1, miniSpec())
	var file vm.Region
	for r := range env.regions {
		if r.N == 8 && env.regions[r] == vm.Data && r.Start >= 1<<18 { // file region in its own segment
			file = r
		}
	}
	if file.N == 0 {
		t.Fatal("persistent file region not created")
	}
	for i := 0; i < 30000; i++ {
		s.Next()
	}
	if _, ok := env.regions[file]; !ok {
		t.Error("persistent region released by job churn")
	}
}

func TestScriptUnknownImagePanics(t *testing.T) {
	spec := miniSpec()
	spec.Foreground[0].Shared = []string{"nope"}
	defer func() {
		if recover() == nil {
			t.Error("unknown image accepted")
		}
	}()
	NewScript(newFakeEnv(), 1, spec)
}

func TestScriptUnknownFilePanics(t *testing.T) {
	spec := miniSpec()
	spec.Foreground[0].PersistentData = "nope"
	defer func() {
		if recover() == nil {
			t.Error("unknown file accepted")
		}
	}()
	NewScript(newFakeEnv(), 1, spec)
}

func TestScriptROFilesDupPanics(t *testing.T) {
	spec := miniSpec()
	spec.ROFiles = map[string]int{"file": 4}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Files/ROFiles name accepted")
		}
	}()
	NewScript(newFakeEnv(), 1, spec)
}

func TestScriptDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []trace.Rec {
		env := newFakeEnv()
		s := NewScript(env, seed, miniSpec())
		out := make([]trace.Rec, 0, 2000)
		for i := 0; i < 2000; i++ {
			r, _ := s.Next()
			out = append(out, r)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at ref %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestScriptBatchMatchesNext(t *testing.T) {
	// NextBatch must yield bit-for-bit the stream Next does — across
	// monitor spawns (period 5000 in miniSpec), monitor exits, foreground
	// cycling, and quantum switches — whatever the buffer sizes. Awkward
	// buffer sizes are the point: they force windows to split around the
	// monitor due points at varying offsets.
	const total = 120_000
	ref := NewScript(newFakeEnv(), 7, miniSpec())
	want := make([]trace.Rec, total)
	for i := range want {
		r, ok := ref.Next()
		if !ok {
			t.Fatal("reference stream ran dry")
		}
		want[i] = r
	}

	for _, sizes := range [][]int{{1}, {3, 17, 101}, {256}, {4096}, {4096, 1, 33}} {
		s := NewScript(newFakeEnv(), 7, miniSpec())
		got := make([]trace.Rec, 0, total)
		for si := 0; len(got) < total; si++ {
			n := sizes[si%len(sizes)]
			if rem := total - len(got); n > rem {
				n = rem
			}
			buf := make([]trace.Rec, n)
			k := s.NextBatch(buf)
			if k == 0 {
				t.Fatalf("sizes %v: batch stream ran dry at ref %d", sizes, len(got))
			}
			got = append(got, buf[:k]...)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("sizes %v: stream diverged at ref %d: batch %+v, next %+v",
					sizes, i, got[i], want[i])
			}
		}
	}
}

func TestSpecsInstantiate(t *testing.T) {
	// Every shipped spec must build and stream against a fake env.
	specs := []Spec{Workload1Spec(), SLCSpec()}
	for _, h := range SpriteHosts() {
		specs = append(specs, h.Spec())
	}
	for _, spec := range specs {
		env := newFakeEnv()
		s := NewScript(env, 1, spec)
		for i := 0; i < 5000; i++ {
			if _, ok := s.Next(); !ok {
				t.Fatalf("%s ran dry", spec.Name)
			}
		}
	}
}

func TestSpriteHostsMatchPaper(t *testing.T) {
	hosts := SpriteHosts()
	if len(hosts) != 6 {
		t.Fatalf("%d hosts, want 6", len(hosts))
	}
	wantMem := []int{8, 8, 8, 12, 12, 16}
	wantUp := []int{70, 37, 46, 45, 36, 119}
	for i, h := range hosts {
		if h.MemMB != wantMem[i] || h.UptimeHours != wantUp[i] {
			t.Errorf("host %d = %+v", i, h)
		}
	}
}

func TestWindowSpecValidAndStreams(t *testing.T) {
	spec := WindowSpec()
	if err := ValidateSpec(spec); err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv()
	s := NewScript(env, 1, spec)
	writes := 0
	for i := 0; i < 20000; i++ {
		r, ok := s.Next()
		if !ok {
			t.Fatal("window workload ran dry")
		}
		if r.Op == trace.OpWrite {
			writes++
		}
	}
	if writes == 0 {
		t.Fatal("no writes")
	}
}
