package workload

// Workload1Spec is the paper's WORKLOAD1: "a moderately heavy load for a CAD
// tool developer. This script includes the compilation of several modules
// plus the link and debug of a 12000 line CAD tool (espresso). The same CAD
// tool runs in the background optimizing a large PLA. Other edit, compile,
// and miscellaneous commands manipulate files and directories. In addition,
// two performance monitor programs periodically report status."
//
// The paper's run executed on the prototype for 2500-3000 s (~10^10
// references); this spec reproduces the same page-level event structure at
// the reference scale the machine config chooses (default ~2x10^7), with
// file-backed regions persistent across command instances (the Sprite file
// cache) and fresh zero-fill heap per command instance. The parameters were
// calibrated against Table 3.3's ratios (see cmd/calibrate).
func Workload1Spec() Spec {
	compile := func(module string) JobSpec {
		return JobSpec{
			Params: JobParams{
				Name:          "cc-" + module,
				Refs:          700_000,
				HotCodeFrac:   0.04,
				HeapPages:     150,
				StackPages:    4,
				PIFetch:       0.55,
				PJump:         0.05,
				PFarJump:      0.15,
				PStack:        0.10,
				PAlloc:        0.20, // consing-heavy at our reference scale
				PScanHeap:     0.15,
				PWritePage:    0.50, // object/symbol pages are written at once
				WriteRO:       0.30,
				WriteRMW:      0.24,
				ReadPassWrite: 0.001, PBackWrite: 0.005,
				PSeq:          0.22,
				PHotData:      0.55,
				HotDataFrac:   0.58,
				PHotWrite:     0.30,
				PRevisitWrite: 0,
				WindowPages:   6,
			},
			Shared:         []string{"cc"},
			PersistentData: "src-" + module,
		}
	}

	return Spec{
		Name: "WORKLOAD1",
		Images: map[string]int{
			"cc":       130, // the compiler
			"espresso": 90,  // the CAD tool
			"editor":   70,
			"ld":       50,
			"utils":    40,
			"monitor":  12,
		},
		Files: map[string]int{
			"src-a":    80,
			"src-b":    80,
			"src-c":    85,
			"src-d":    75,
			"pla":      480, // the large PLA being optimized
			"editbuf":  64,
			"objs":     160, // objects + libraries the linker reads
			"symtab":   160, // debugger's symbol universe
			"miscdirs": 40,
			"monlog":   16,
		},
		Background: []JobSpec{{
			Params: JobParams{
				Name:          "espresso-bg",
				HotCodeFrac:   0.04,
				HeapPages:     160,
				StackPages:    4,
				PIFetch:       0.55,
				PJump:         0.04,
				PFarJump:      0.10,
				PStack:        0.06,
				PAlloc:        0.010,
				PScanHeap:     0.20,
				PWritePage:    0.42, // cube tables rewritten pass by pass
				WriteRO:       0.30,
				WriteRMW:      0.24,
				ReadPassWrite: 0.001, PBackWrite: 0.005,
				PSeq:          0.19,
				PHotData:      0.55,
				HotDataFrac:   0.58,
				PHotWrite:     0.30,
				PRevisitWrite: 0,
				WindowPages:   10,
			},
			Shared:         []string{"espresso"},
			PersistentData: "pla",
		}},
		Foreground: []JobSpec{
			{
				Params: JobParams{
					Name: "edit", Refs: 300_000, HotCodeFrac: 0.04,
					HeapPages: 40, StackPages: 3,
					PIFetch: 0.58, PJump: 0.05, PFarJump: 0.1,
					PStack: 0.12, PAlloc: 0.02, PScanHeap: 0.1,
					PWritePage: 0.40, WriteRO: 0.3, WriteRMW: 0.24,
					ReadPassWrite: 0.001, PBackWrite: 0.005, PSeq: 0.19,
					PHotData:      0.55,
					HotDataFrac:   0.58,
					PHotWrite:     0.30,
					PRevisitWrite: 0, WindowPages: 4,
				},
				Shared:         []string{"editor"},
				PersistentData: "editbuf",
			},
			compile("a"),
			compile("b"),
			{
				Params: JobParams{
					Name: "ld", Refs: 400_000, HotCodeFrac: 0.04,
					HeapPages: 90, StackPages: 3,
					PIFetch: 0.52, PJump: 0.04, PFarJump: 0.1,
					PStack: 0.08, PAlloc: 0.035, PScanHeap: 0.1,
					PWritePage: 0.30, WriteRO: 0.3, WriteRMW: 0.24,
					ReadPassWrite: 0.001, PBackWrite: 0.005, PSeq: 0.25,
					PHotData:      0.55,
					HotDataFrac:   0.58,
					PHotWrite:     0.30,
					PRevisitWrite: 0, WindowPages: 8,
				},
				Shared:         []string{"ld"},
				PersistentData: "objs",
			},
			compile("c"),
			compile("d"),
			{
				Params: JobParams{
					Name: "dbx", Refs: 450_000, HotCodeFrac: 0.04,
					HeapPages: 60, StackPages: 4,
					PIFetch: 0.56, PJump: 0.06, PFarJump: 0.15,
					PStack: 0.10, PAlloc: 0.015, PScanHeap: 0.1,
					PWritePage: 0.10, WriteRO: 0.3, WriteRMW: 0.24,
					ReadPassWrite: 0.001, PBackWrite: 0.005, PSeq: 0.19,
					PHotData:      0.55,
					HotDataFrac:   0.58,
					PHotWrite:     0.30,
					PRevisitWrite: 0, WindowPages: 12,
				},
				Shared:         []string{"editor"},
				PersistentData: "symtab",
			},
			{
				Params: JobParams{
					Name: "misc", Refs: 150_000, HotCodeFrac: 0.04,
					HeapPages: 20, StackPages: 2,
					PIFetch: 0.58, PJump: 0.05, PFarJump: 0.1,
					PStack: 0.12, PAlloc: 0.03, PScanHeap: 0.05,
					PWritePage: 0.40, WriteRO: 0.3, WriteRMW: 0.24,
					ReadPassWrite: 0.001, PBackWrite: 0.005, PSeq: 0.22,
					PHotData:      0.55,
					HotDataFrac:   0.58,
					PHotWrite:     0.30,
					PRevisitWrite: 0, WindowPages: 4,
				},
				Shared:         []string{"utils"},
				PersistentData: "miscdirs",
			},
		},
		Monitors: []MonitorSpec{
			{
				Spec: JobSpec{
					Params: JobParams{
						Name: "vmstat", Refs: 30_000, HotCodeFrac: 0.04,
						HeapPages: 4, StackPages: 2,
						PIFetch: 0.55, PJump: 0.05, PFarJump: 0.1,
						PStack: 0.1, PAlloc: 0.02, PScanHeap: 0.05,
						PWritePage: 0.5, WriteRO: 0.25, WriteRMW: 0.24,
						ReadPassWrite: 0.001, PBackWrite: 0.005, PSeq: 0.28,
						PHotData:      0.55,
						HotDataFrac:   0.58,
						PHotWrite:     0.30,
						PRevisitWrite: 0, WindowPages: 4,
					},
					Shared:         []string{"monitor"},
					PersistentData: "monlog",
				},
				Period: 450_000,
			},
			{
				Spec: JobSpec{
					Params: JobParams{
						Name: "cpustat", Refs: 25_000, HotCodeFrac: 0.04,
						HeapPages: 4, StackPages: 2,
						PIFetch: 0.55, PJump: 0.05, PFarJump: 0.1,
						PStack: 0.1, PAlloc: 0.02, PScanHeap: 0.05,
						PWritePage: 0.5, WriteRO: 0.25, WriteRMW: 0.24,
						ReadPassWrite: 0.001, PBackWrite: 0.005, PSeq: 0.28,
						PHotData:      0.55,
						HotDataFrac:   0.58,
						PHotWrite:     0.30,
						PRevisitWrite: 0, WindowPages: 4,
					},
					Shared:         []string{"monitor"},
					PersistentData: "monlog",
				},
				Period: 650_000,
			},
		},
		Quantum: 20_000,
	}
}
