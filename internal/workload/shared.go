package workload

import (
	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/vm"
)

// SharedParams describes a shared-memory multiprocessor workload: one
// process per CPU, all working over the same globally addressed data region
// (SPUR prevents synonyms by making sharers use the same global virtual
// address), each with private heap and stack.
type SharedParams struct {
	// CPUs is the number of processes (one per processor).
	CPUs int
	// SharedPages is the common writable data region.
	SharedPages int
	// CodePages is the shared program text.
	CodePages int
	// HeapPages / StackPages are per-process private zero-fill areas.
	HeapPages  int
	StackPages int
	// Job carries the behaviour mix every process uses against the
	// shared region (DataPages is overridden by SharedPages).
	Job JobParams
}

// DefaultSharedParams returns a parallel-application mix: the processes
// stream over a shared table, reading mostly and updating in place — the
// access pattern that multiplies stale cached dirty bits across caches.
func DefaultSharedParams(cpus int) SharedParams {
	return SharedParams{
		CPUs:        cpus,
		SharedPages: 512,
		CodePages:   48,
		HeapPages:   32,
		StackPages:  2,
		Job: JobParams{
			Name:        "parallel-worker",
			HotCodeFrac: 0.1,
			PIFetch:     0.55,
			PJump:       0.05, PFarJump: 0.1,
			PStack: 0.08, PAlloc: 0.02, PScanHeap: 0.1,
			PWritePage: 0.45, WriteRO: 0.3, WriteRMW: 0.25,
			ReadPassWrite: 0.002, PBackWrite: 0.01,
			PSeq: 0.3, PHotData: 0.4, HotDataFrac: 0.2, PHotWrite: 0.25,
			WindowPages: 8,
		},
	}
}

// SharedWorkload drives one process per CPU over a common data region.
type SharedWorkload struct {
	procs  []*Job
	shared vm.Region
}

// NewSharedWorkload registers the shared regions and spawns the per-CPU
// processes. Each process gets its own RNG stream and a random starting
// position in the shared region, so the CPUs work different parts of it
// concurrently.
func NewSharedWorkload(env Env, seed uint64, p SharedParams) *SharedWorkload {
	if p.CPUs < 1 {
		panic("workload: shared workload needs at least one CPU")
	}
	rng := NewRNG(seed)
	codeSeg := env.AllocSegment()
	code := env.AddRegion(addr.PageIn(codeSeg, 0), p.CodePages, vm.Code)
	dataSeg := env.AllocSegment()
	shared := env.AddRegion(addr.PageIn(dataSeg, 0), p.SharedPages, vm.Data)

	w := &SharedWorkload{shared: shared}
	for i := 0; i < p.CPUs; i++ {
		jp := p.Job
		jp.Refs = 1 << 62
		jp.HeapPages = p.HeapPages
		jp.StackPages = p.StackPages
		jp.RandomStart = true
		w.procs = append(w.procs, newJobWithData(env, rng, jp, []vm.Region{code}, shared, vm.Region{}))
	}
	return w
}

// Shared returns the common data region.
func (w *SharedWorkload) Shared() vm.Region { return w.shared }

// CPUs returns the process count.
func (w *SharedWorkload) CPUs() int { return len(w.procs) }

// Step emits the next reference of the given CPU's process.
func (w *SharedWorkload) Step(cpu int) trace.Rec {
	r := w.procs[cpu].Step()
	r.PID = int32(cpu + 1) //spurlint:ignore countersafe — cpu is a processor index bounded by len(w.procs), a handful, never 2^31
	return r
}
