package workload

// SLCSpec is the paper's second workload: "the SPUR Common Lisp system and
// the SPUR lisp compiler compiling a set of benchmark programs" [Zorn87].
//
// The model is one long-running Lisp process: a large shared image, a
// persistent data area holding the system's loaded world plus the benchmark
// sources, and a consing heap that churns through fresh zero-fill
// generations as the compiler allocates (old generations die to the
// collector and are released). Heap churn is the workload's N_zfod engine;
// the page-level writing-pass/reading-pass mix drives the dirty-bit events.
func SLCSpec() Spec {
	return Spec{
		Name: "SLC",
		Images: map[string]int{
			"lisp": 260, // the Lisp system + compiler image
		},
		Files: map[string]int{
			"world": 970, // loaded Lisp world and benchmark sources
		},
		Background: []JobSpec{{
			Params: JobParams{
				Name:        "slc",
				HotCodeFrac: 0.04,
				HeapPages:   200,
				StackPages:  6,
				PIFetch:     0.54,
				PJump:       0.06,
				PFarJump:    0.20,
				PStack:      0.10,
				// Consing rate: fresh heap blocks per data op. Each
				// exhausted generation is collected and a fresh one
				// allocated, so this sets N_zfod per reference.
				PAlloc: 0.024,
				// The mutator re-reads live structure it just built.
				PScanHeap: 0.30,
				// Property lists and tables are updated in place; most
				// of the world is read (macro definitions, sources).
				PWritePage:    0.17,
				WriteRO:       0.30,
				WriteRMW:      0.24,
				ReadPassWrite: 0.001, PBackWrite: 0.006,
				PSeq:          0.17,
				PHotData:      0.55,
				HotDataFrac:   0.25,
				PHotWrite:     0.30,
				PRevisitWrite: 0,
				WindowPages:   8,
			},
			Shared:         []string{"lisp"},
			PersistentData: "world",
		}},
		Quantum: 20_000,
	}
}
