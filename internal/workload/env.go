package workload

import (
	"repro/internal/addr"
	"repro/internal/vm"
)

// Env is what a workload needs from the machine: virtual-memory regions and
// segment numbers for its processes. The machine implements it over the
// pager and a segment allocator.
type Env interface {
	// AddRegion registers n pages of the given kind at start.
	AddRegion(start addr.GVPN, n int, kind vm.PageKind) vm.Region
	// ReleaseRegion tears a region down (process exit).
	ReleaseRegion(r vm.Region)
	// AllocSegment reserves a fresh 1 GB segment of the global space.
	AllocSegment() addr.SegmentID
	// FreeSegment returns a segment whose regions have all been released.
	FreeSegment(s addr.SegmentID)
}

// Layout of regions inside a process's private segment, in pages. Each area
// is far larger than any job uses, so regions never collide.
const (
	codeBase  = 0
	dataBase  = 1 << 14 // 16 K pages in
	heapBase  = 1 << 15
	stackBase = 1 << 17
	// heapStride spaces successive heap generations (heap churn) apart.
	heapStride = 1 << 10
)
