package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteSpec serializes a Spec as indented JSON, so shipped workloads can be
// dumped, edited, and re-run without recompiling.
func WriteSpec(w io.Writer, s Spec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSpec parses a JSON Spec and validates it.
func ReadSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("workload: parsing spec: %w", err)
	}
	if err := ValidateSpec(s); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// ValidateSpec checks a Spec's cross-references and parameter sanity before
// instantiation, so a hand-edited spec fails with a message instead of a
// panic mid-run.
func ValidateSpec(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec needs a name")
	}
	if len(s.Background)+len(s.Foreground) == 0 {
		return fmt.Errorf("workload %s: no jobs", s.Name)
	}
	// Validation walks the maps in sorted order so a spec with several
	// problems reports the same first error every time (error text ends
	// up in golden tests and failure bundles).
	for _, name := range sortedNames(s.Images) {
		if pages := s.Images[name]; pages <= 0 {
			return fmt.Errorf("workload %s: image %q has %d pages", s.Name, name, pages)
		}
	}
	for _, name := range sortedNames(s.Files) {
		if pages := s.Files[name]; pages <= 0 {
			return fmt.Errorf("workload %s: file %q has %d pages", s.Name, name, pages)
		}
		if _, dup := s.ROFiles[name]; dup {
			return fmt.Errorf("workload %s: %q in both Files and ROFiles", s.Name, name)
		}
	}
	for _, name := range sortedNames(s.ROFiles) {
		if pages := s.ROFiles[name]; pages <= 0 {
			return fmt.Errorf("workload %s: ro-file %q has %d pages", s.Name, name, pages)
		}
	}
	check := func(kind string, js JobSpec, background bool) error {
		p := js.Params
		where := fmt.Sprintf("workload %s: %s job %q", s.Name, kind, p.Name)
		if !background && p.Refs <= 0 {
			return fmt.Errorf("%s: Refs must be positive", where)
		}
		if p.PIFetch < 0 || p.PIFetch >= 1 {
			return fmt.Errorf("%s: PIFetch %v out of [0,1)", where, p.PIFetch)
		}
		if p.WriteRO+p.WriteRMW > 1 {
			return fmt.Errorf("%s: WriteRO+WriteRMW > 1", where)
		}
		for _, img := range js.Shared {
			if _, ok := s.Images[img]; !ok {
				return fmt.Errorf("%s: unknown image %q", where, img)
			}
		}
		if js.PersistentData != "" {
			if _, ok := s.Files[js.PersistentData]; !ok {
				return fmt.Errorf("%s: unknown file %q", where, js.PersistentData)
			}
		} else if p.DataPages <= 0 {
			return fmt.Errorf("%s: needs DataPages or PersistentData", where)
		}
		if js.PersistentSource != "" {
			if _, ok := s.ROFiles[js.PersistentSource]; !ok {
				return fmt.Errorf("%s: unknown ro-file %q", where, js.PersistentSource)
			}
		}
		if p.CodePages <= 0 && len(js.Shared) == 0 {
			return fmt.Errorf("%s: no code to fetch", where)
		}
		return nil
	}
	for _, js := range s.Background {
		if err := check("background", js, true); err != nil {
			return err
		}
	}
	for _, js := range s.Foreground {
		if err := check("foreground", js, false); err != nil {
			return err
		}
	}
	for _, m := range s.Monitors {
		if err := check("monitor", m.Spec, false); err != nil {
			return err
		}
		if m.Period <= 0 {
			return fmt.Errorf("workload %s: monitor %q period %d", s.Name, m.Spec.Params.Name, m.Period)
		}
	}
	return nil
}
