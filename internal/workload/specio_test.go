package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	for _, spec := range []Spec{Workload1Spec(), SLCSpec(), SpriteHosts()[0].Spec(), miniSpec()} {
		var buf bytes.Buffer
		if err := WriteSpec(&buf, spec); err != nil {
			t.Fatalf("%s: write: %v", spec.Name, err)
		}
		got, err := ReadSpec(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", spec.Name, err)
		}
		if got.Name != spec.Name || len(got.Foreground) != len(spec.Foreground) ||
			len(got.Background) != len(spec.Background) || len(got.Monitors) != len(spec.Monitors) {
			t.Errorf("%s: round trip lost structure", spec.Name)
		}
		if len(got.Foreground) > 0 && got.Foreground[0].Params != spec.Foreground[0].Params {
			t.Errorf("%s: job params changed in round trip", spec.Name)
		}
		// The round-tripped spec still instantiates and streams.
		env := newFakeEnv()
		s := NewScript(env, 1, got)
		for i := 0; i < 2000; i++ {
			if _, ok := s.Next(); !ok {
				t.Fatalf("%s: round-tripped spec ran dry", spec.Name)
			}
		}
	}
}

func TestValidateSpecShippedSpecsPass(t *testing.T) {
	specs := []Spec{Workload1Spec(), SLCSpec()}
	for _, h := range SpriteHosts() {
		specs = append(specs, h.Spec())
	}
	for _, s := range specs {
		if err := ValidateSpec(s); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestValidateSpecCatches(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"no name", func(s *Spec) { s.Name = "" }, "needs a name"},
		{"no jobs", func(s *Spec) { s.Foreground, s.Background = nil, nil }, "no jobs"},
		{"bad image", func(s *Spec) { s.Images["img"] = 0 }, "image"},
		{"bad refs", func(s *Spec) { s.Foreground[0].Params.Refs = 0 }, "Refs"},
		{"bad pifetch", func(s *Spec) { s.Foreground[0].Params.PIFetch = 2 }, "PIFetch"},
		{"unknown image", func(s *Spec) { s.Foreground[0].Shared = []string{"ghost"} }, "unknown image"},
		{"unknown file", func(s *Spec) { s.Foreground[0].PersistentData = "ghost" }, "unknown file"},
		{"no code", func(s *Spec) { s.Foreground[0].Shared = nil }, "no code"},
		{"bad period", func(s *Spec) { s.Monitors[0].Period = 0 }, "period"},
		{"dup file", func(s *Spec) { s.ROFiles = map[string]int{"file": 4} }, "both Files and ROFiles"},
	}
	for _, c := range cases {
		s := miniSpec()
		c.mutate(&s)
		err := ValidateSpec(s)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

func TestReadSpecRejectsUnknownFields(t *testing.T) {
	_, err := ReadSpec(strings.NewReader(`{"Name":"x","Bogus":1}`))
	if err == nil {
		t.Error("unknown field accepted")
	}
}

func TestReadSpecRejectsGarbage(t *testing.T) {
	if _, err := ReadSpec(strings.NewReader("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}
