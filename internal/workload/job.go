package workload

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/trace"
	"repro/internal/vm"
)

// JobParams parameterises one synthetic process. The defaults of each
// workload constructor were calibrated so the runs land in the paper's
// measured ranges; the fields exist so experiments can explore beyond them.
type JobParams struct {
	Name string
	// Refs is the job's length in memory references.
	Refs int64

	// CodePages is private code; SharedCode (on the Job) adds shared
	// images. HotCodeFrac is the fraction of all code blocks forming the
	// inner-loop set.
	CodePages   int
	HotCodeFrac float64
	// DataPages is the file-backed initialized data footprint.
	DataPages int
	// HeapPages is the size of one heap generation (zero-fill pages).
	HeapPages int
	// StackPages is the zero-fill stack.
	StackPages int

	// PIFetch is the probability a reference is an instruction fetch;
	// PJump the chance an ifetch jumps instead of advancing; PFarJump
	// the chance a jump leaves the hot set.
	PIFetch  float64
	PJump    float64
	PFarJump float64

	// Composition of data operations.
	PStack    float64 // stack push/pop traffic
	PAlloc    float64 // heap allocation (fresh zero-fill blocks, written first)
	PScanHeap float64 // scans target live heap instead of the data region

	// Scan passes are page-granular, reflecting the paper's observation
	// that "pages that will be modified are modified quickly": when the
	// cursor enters a page it either makes a writing pass (probability
	// PWritePage) — the page is dirtied almost immediately — or a reading
	// pass, which leaves the page clean save for rare leakage writes.
	PWritePage float64
	// Writing-pass block intents: WriteRO reads the block only, WriteRMW
	// reads then writes it, the remainder writes outright.
	WriteRO  float64
	WriteRMW float64
	// ReadPassWrite is the chance a reading-pass block is written anyway.
	ReadPassWrite float64
	// RandomStart begins the data cursor at a random page instead of the
	// region head. Successive instances of a command then work over
	// different parts of their persistent files, as a developer touching
	// different sources build after build.
	RandomStart bool
	// PSrcRead is the fraction of scans that read the job's read-only
	// source region (when it has one) instead of its writable data.
	// Sources reached through the file cache are never writable-mapped,
	// so they are outside Table 3.5's "potentially modified" population.
	PSrcRead float64
	// PBackWrite is the chance a writing-pass block operation instead
	// rewrites one of the page's opening blocks, which were read (and
	// cached clean) before the page's first write. These rewrites are
	// precisely the stale-block writes behind N_ef = N_dm, so this knob
	// calibrates the excess-fault fraction directly.
	PBackWrite float64
	// PSeq is the chance a scan advances the sequential cursor; the
	// remainder revisits a random block in the trailing window.
	PSeq float64
	// PHotData sends that fraction of revisits to a fixed hot subset of
	// the data region (the first HotDataFrac of its pages) instead of the
	// trailing window. Real programs reuse a skewed subset of their data;
	// without this, a cyclic scan defeats any replacement policy equally
	// at every memory size.
	PHotData    float64
	HotDataFrac float64
	// PHotWrite is the chance a hot-subset revisit writes. Hot data
	// (symbol tables, central structures) is updated early and often, so
	// a freshly paged-in hot page is re-dirtied before many of its blocks
	// can be cached clean.
	PHotWrite float64
	// PRevisitWrite is the chance a revisit writes (previously read
	// blocks being modified later: the source of N_w-hit blocks and, on
	// pages already dirtied, of excess faults).
	PRevisitWrite float64
	// WindowPages is the revisit window behind the cursor.
	WindowPages int
}

// valid panics on nonsensical parameters, with the field named.
func (p JobParams) valid() {
	switch {
	case p.Refs <= 0:
		panic("workload: job Refs must be positive")
	case p.DataPages <= 0:
		panic("workload: job needs data pages")
	case p.PIFetch < 0 || p.PIFetch >= 1:
		panic("workload: PIFetch out of range")
	case p.WriteRO+p.WriteRMW > 1:
		panic("workload: writing-pass intents exceed 1")
	case p.HeapPages > stackBase-heapBase:
		panic(fmt.Sprintf("workload: HeapPages %d exceeds the %d-page heap area below the stack",
			p.HeapPages, stackBase-heapBase))
	}
}

// Job is a running synthetic process: a proc.Runner generating its
// reference stream and owning its regions.
type Job struct {
	p   JobParams
	env Env
	rng *RNG
	seg addr.SegmentID

	// SharedCode regions (owned by the script, not released at exit).
	shared []vm.Region

	code    vm.Region // private code, N may be 0
	data    vm.Region
	ownData bool      // data is private (released at exit) vs persistent
	src     vm.Region // read-only persistent sources, N may be 0
	heap    vm.Region
	stack   vm.Region

	codeBlocks int // total code blocks including shared
	hotBlocks  int
	codeIdx    int

	heapGen    int
	heapCursor int // next fresh heap block within the generation

	dataCursor int
	writePass  bool // the cursor's current page is being written
	readLen    int  // blocks read at the top of a writing pass
	srcCursor  int

	pending [8]trace.Rec
	npend   int

	refsLeft int64
	released bool
}

// NewJob creates the process: allocates its segment and registers regions.
func NewJob(env Env, rng *RNG, p JobParams, shared []vm.Region) *Job {
	return newJobWithData(env, rng, p, shared, vm.Region{}, vm.Region{})
}

// newJobWithData creates a process, optionally working on a persistent
// (script-owned) data region instead of a fresh private one. When
// persistent.N > 0 its size overrides p.DataPages and the region survives
// the job, modelling repeated commands over the same cached files.
func newJobWithData(env Env, rng *RNG, p JobParams, shared []vm.Region, persistent, source vm.Region) *Job {
	if persistent.N > 0 {
		p.DataPages = persistent.N
	}
	p.valid()
	j := &Job{
		p: p, env: env, rng: rng.Fork(), seg: env.AllocSegment(),
		shared: shared, src: source, refsLeft: p.Refs,
	}
	if source.N > 0 {
		j.srcCursor = j.rng.Intn(source.N) * addr.BlocksPerPage
	}
	if p.CodePages > 0 {
		j.code = env.AddRegion(addr.PageIn(j.seg, codeBase), p.CodePages, vm.Code)
	}
	if persistent.N > 0 {
		j.data = persistent
	} else {
		j.data = env.AddRegion(addr.PageIn(j.seg, dataBase), p.DataPages, vm.Data)
		j.ownData = true
	}
	if p.HeapPages > 0 {
		j.heap = env.AddRegion(addr.PageIn(j.seg, heapBase), p.HeapPages, vm.Heap)
	}
	if p.StackPages > 0 {
		j.stack = env.AddRegion(addr.PageIn(j.seg, stackBase), p.StackPages, vm.Stack)
	}
	j.codeBlocks = p.CodePages * addr.BlocksPerPage
	for _, r := range shared {
		j.codeBlocks += r.N * addr.BlocksPerPage
	}
	if j.codeBlocks == 0 {
		panic("workload: job has no code to fetch")
	}
	j.hotBlocks = int(float64(j.codeBlocks) * p.HotCodeFrac)
	if j.hotBlocks < 1 {
		j.hotBlocks = 1
	}
	if p.RandomStart {
		j.dataCursor = j.rng.Intn(p.DataPages) * addr.BlocksPerPage
	}
	return j
}

// Done implements proc.Runner.
func (j *Job) Done() bool { return j.refsLeft <= 0 }

// Teardown releases the job's private regions and segment. The script calls
// it from the scheduler's exit hook.
func (j *Job) Teardown() {
	if j.released {
		return
	}
	j.released = true
	if j.code.N > 0 {
		j.env.ReleaseRegion(j.code)
	}
	if j.ownData {
		j.env.ReleaseRegion(j.data)
	}
	if j.heap.N > 0 {
		j.env.ReleaseRegion(j.heap)
	}
	if j.stack.N > 0 {
		j.env.ReleaseRegion(j.stack)
	}
	j.env.FreeSegment(j.seg)
}

// StepHorizon implements proc.Horizoned: a lower bound on how many Step
// calls are guaranteed to neither release a region nor run past Done. The
// only release inside Step is heap generation turnover, reachable only when
// no pending references remain and the generation is exhausted. Let
// Φ = npend + (heap blocks − heapCursor): a turnover step requires Φ ≤ 0,
// and no Step decreases Φ by more than one — a pending pop takes one from
// npend, an allocation takes one block but pushes at least one pending
// write, every other operation leaves Φ level or higher. So Φ steps are
// always safe, and refsLeft bounds Done the same way (each Step consumes
// exactly one reference). Under-estimating (the RNG may never pick an
// allocation) only costs the batching scheduler an occasional extra flush.
func (j *Job) StepHorizon() int64 {
	h := j.refsLeft
	if j.p.PAlloc > 0 && j.heap.N > 0 {
		if phi := int64(j.npend) + int64(j.heap.N*addr.BlocksPerPage-j.heapCursor); phi < h {
			h = phi
		}
	}
	return h
}

// Step implements proc.Runner.
func (j *Job) Step() trace.Rec {
	j.refsLeft--
	if j.npend > 0 {
		j.npend--
		return j.pending[j.npend]
	}
	if j.rng.Chance(j.p.PIFetch) {
		return j.ifetch()
	}
	j.dataOp()
	j.npend--
	return j.pending[j.npend]
}

// StepBatch implements proc.BatchStepper: it emits exactly the records
// len(buf) successive Step calls would, in one concrete call. The caller
// bounds len(buf) by StepHorizon, which is what lets the loop skip the
// per-step Done and turnover checks.
func (j *Job) StepBatch(buf []trace.Rec) {
	j.refsLeft -= int64(len(buf))
	for i := range buf {
		if j.npend > 0 {
			j.npend--
			buf[i] = j.pending[j.npend]
			continue
		}
		if j.rng.Chance(j.p.PIFetch) {
			buf[i] = j.ifetch()
			continue
		}
		j.dataOp()
		j.npend--
		buf[i] = j.pending[j.npend]
	}
}

// push stacks a pending reference (LIFO; pushers push in reverse order).
func (j *Job) push(op trace.Op, a addr.GVA) {
	j.pending[j.npend] = trace.Rec{Op: op, Addr: a}
	j.npend++
}

// codeAddr maps a code-block index to its address, walking private code
// first, then the shared images.
func (j *Job) codeAddr(idx int) addr.GVA {
	if own := j.code.N * addr.BlocksPerPage; idx < own {
		return j.code.Start.Base() + addr.GVA(idx*addr.BlockBytes)
	} else {
		idx -= own
	}
	for _, r := range j.shared {
		if n := r.N * addr.BlocksPerPage; idx < n {
			return r.Start.Base() + addr.GVA(idx*addr.BlockBytes)
		} else {
			idx -= n
		}
	}
	panic(fmt.Sprintf("workload: code index out of range"))
}

func (j *Job) ifetch() trace.Rec {
	if j.rng.Chance(j.p.PJump) {
		if j.rng.Chance(j.p.PFarJump) {
			j.codeIdx = j.rng.Intn(j.codeBlocks)
		} else {
			j.codeIdx = j.rng.Intn(j.hotBlocks)
		}
	} else {
		j.codeIdx++
		if j.codeIdx >= j.hotBlocks {
			// The common loop wraps within the hot set.
			j.codeIdx = 0
		}
	}
	return trace.Rec{Op: trace.OpIFetch, Addr: j.codeAddr(j.codeIdx)}
}

// dataOp enqueues one or two data references.
func (j *Job) dataOp() {
	u := j.rng.Float64()
	switch {
	case u < j.p.PStack && j.stack.N > 0:
		j.stackOp()
	case u < j.p.PStack+j.p.PAlloc && j.heap.N > 0:
		j.alloc()
	case j.rng.Chance(j.p.PScanHeap) && j.heapCursor > 0:
		j.heapTouch()
	case j.src.N > 0 && j.rng.Chance(j.p.PSrcRead):
		j.srcScan()
	default:
		j.scan()
	}
}

// srcScan reads the job's read-only source region: a sequential walk with
// hot-subset revisits, never writing.
func (j *Job) srcScan() {
	nblocks := j.src.N * addr.BlocksPerPage
	var blk int
	switch {
	case j.rng.Chance(j.p.PSeq):
		j.srcCursor++
		if j.srcCursor >= nblocks {
			j.srcCursor = 0
		}
		blk = j.srcCursor
	case j.rng.Chance(j.p.PHotData):
		hot := int(float64(nblocks) * j.p.HotDataFrac)
		if hot < 1 {
			hot = 1
		}
		blk = j.rng.Intn(hot)
	default:
		w := min(j.p.WindowPages*addr.BlocksPerPage, nblocks)
		if w < 1 {
			w = 1
		}
		blk = j.srcCursor - j.rng.Intn(w)
		if blk < 0 {
			blk += nblocks
		}
	}
	a := j.src.Start.Base() + addr.GVA(blk*addr.BlockBytes)
	for k := j.rng.Range(2, 4); k > 0; k-- {
		j.push(trace.OpRead, a)
	}
}

// stackOp models push/pop traffic near the stack top: mostly writes, to a
// small set of zero-fill pages.
func (j *Job) stackOp() {
	hot := min(j.stack.N, 2) * addr.BlocksPerPage
	a := j.stack.Start.Base() + addr.GVA(j.rng.Intn(hot)*addr.BlockBytes)
	if j.rng.Chance(0.7) {
		j.push(trace.OpWrite, a)
	} else {
		j.push(trace.OpRead, a)
	}
}

// alloc writes the next fresh heap block; exhausting a generation releases
// it and starts a new one (heap churn — each generation is fresh zero-fill
// pages, the N_zfod engine).
func (j *Job) alloc() {
	if j.heapCursor >= j.heap.N*addr.BlocksPerPage {
		j.newHeapGeneration()
	}
	a := j.heap.Start.Base() + addr.GVA(j.heapCursor*addr.BlockBytes)
	j.heapCursor++
	// Initializing stores fill several words of the fresh block.
	for k := j.rng.Range(2, 3); k > 0; k-- {
		j.push(trace.OpWrite, a)
	}
}

func (j *Job) newHeapGeneration() {
	j.env.ReleaseRegion(j.heap)
	j.heapGen++
	// Generations cycle through a fixed set of slots; a slot's previous
	// occupant has always been released by then. The slot count is derived
	// from the generation size, not just the stride: the last slot's
	// generation must still end at or below stackBase, or a HeapPages
	// larger than the stride would walk the 96th-odd generation into the
	// stack area — silently, whenever the job has no stack region there to
	// collide with. (valid() has already rejected generations larger than
	// the whole heap area, so slots >= 1.)
	slots := (stackBase - heapBase - j.p.HeapPages) / heapStride
	slot := j.heapGen % (slots + 1)
	j.heap = j.env.AddRegion(addr.PageIn(j.seg, heapBase+slot*heapStride), j.p.HeapPages, vm.Heap)
	j.heapCursor = 0
}

// heapTouch re-references live heap data (reads mostly; the mutator updates
// some objects in place).
func (j *Job) heapTouch() {
	blk := j.rng.Intn(j.heapCursor)
	a := j.heap.Start.Base() + addr.GVA(blk*addr.BlockBytes)
	if j.rng.Chance(0.8) {
		j.push(trace.OpRead, a)
	} else {
		j.push(trace.OpWrite, a)
	}
}

// scan walks the data region: mostly a sequential cursor with fresh-block
// intents, with occasional revisits into the trailing window.
func (j *Job) scan() {
	nblocks := j.data.N * addr.BlocksPerPage
	if j.rng.Chance(j.p.PSeq) {
		prevPage := j.dataCursor / addr.BlocksPerPage
		j.dataCursor++
		if j.dataCursor >= nblocks {
			j.dataCursor = 0
		}
		if j.dataCursor/addr.BlocksPerPage != prevPage {
			// Entering a new page: decide whether this pass writes it,
			// and how many opening blocks it examines before writing.
			j.writePass = j.rng.Chance(j.p.PWritePage)
			j.readLen = j.rng.Range(1, 3)
		}
		posInPage := j.dataCursor % addr.BlocksPerPage
		a := j.data.Start.Base() + addr.GVA(j.dataCursor*addr.BlockBytes)
		// Word-level spatial locality: a program touches several words
		// of a block, not one — the pending ops replay the block a few
		// times (LIFO, so writes are pushed first to come out last).
		if !j.writePass {
			if j.rng.Chance(j.p.ReadPassWrite) {
				j.push(trace.OpWrite, a)
			}
			for k := j.rng.Range(3, 6); k > 0; k-- {
				j.push(trace.OpRead, a)
			}
			return
		}
		if posInPage < j.readLen {
			// A writing pass opens by examining the page: these blocks
			// are cached while the page is still clean.
			for k := j.rng.Range(2, 4); k > 0; k-- {
				j.push(trace.OpRead, a)
			}
			return
		}
		if j.rng.Chance(j.p.PBackWrite) {
			// Update one of the opening blocks examined earlier: the
			// stale-block write that FAULT pays an excess fault for and
			// SPUR a dirty-bit miss.
			pageStart := j.dataCursor - posInPage
			back := j.data.Start.Base() + addr.GVA((pageStart+j.rng.Intn(j.readLen))*addr.BlockBytes)
			j.push(trace.OpWrite, back)
			return
		}
		u := j.rng.Float64()
		switch {
		case u < j.p.WriteRO:
			for k := j.rng.Range(2, 4); k > 0; k-- {
				j.push(trace.OpRead, a)
			}
		case u < j.p.WriteRO+j.p.WriteRMW:
			// Read-modify-write of the block's contents.
			for k := j.rng.Range(1, 2); k > 0; k-- {
				j.push(trace.OpWrite, a)
			}
			for k := j.rng.Range(1, 2); k > 0; k-- {
				j.push(trace.OpRead, a)
			}
		default:
			for k := j.rng.Range(1, 3); k > 0; k-- {
				j.push(trace.OpWrite, a)
			}
		}
		return
	}
	// Revisit: either the region's hot subset or the trailing window.
	if hot := int(float64(nblocks) * j.p.HotDataFrac); hot > 0 && j.rng.Chance(j.p.PHotData) {
		a := j.data.Start.Base() + addr.GVA(j.rng.Intn(hot)*addr.BlockBytes)
		if j.rng.Chance(j.p.PHotWrite) {
			// Updates of hot structures sometimes examine before
			// storing (read-modify-write), like any table update.
			j.push(trace.OpWrite, a)
			if j.rng.Chance(0.35) {
				j.push(trace.OpRead, a)
			}
		} else {
			j.push(trace.OpRead, a)
		}
		return
	}
	var blk int
	{
		w := min(j.p.WindowPages*addr.BlocksPerPage, nblocks)
		if w < 1 {
			w = 1
		}
		blk = j.dataCursor - j.rng.Intn(w)
		if blk < 0 {
			blk += nblocks
		}
	}
	a := j.data.Start.Base() + addr.GVA(blk*addr.BlockBytes)
	if j.rng.Chance(j.p.PRevisitWrite) {
		j.push(trace.OpWrite, a)
	} else {
		j.push(trace.OpRead, a)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
