package workload

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds collided on first draw")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestIntnUnbiasedLargeBound(t *testing.T) {
	// With n just over 2^62 on 64-bit int, a modulo draw would pile ~58%
	// of the mass into the low half; the rejection draw must not.
	if strconv.IntSize < 64 {
		t.Skip("needs 64-bit int")
	}
	n := 1<<62 + 9999
	r := NewRNG(17)
	low := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if r.Intn(n) < n/2 {
			low++
		}
	}
	if frac := float64(low) / draws; frac < 0.47 || frac > 0.53 {
		t.Errorf("low-half fraction %.3f; biased draw", frac)
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := NewRNG(9)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestChance(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Chance(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Chance(0.25) frequency = %v", frac)
	}
	if r.Chance(0) {
		t.Error("Chance(0) fired")
	}
}

func TestRange(t *testing.T) {
	r := NewRNG(13)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 6)
		if v < 3 || v > 6 {
			t.Fatalf("Range(3,6) = %d", v)
		}
		seen[v] = true
	}
	for v := 3; v <= 6; v++ {
		if !seen[v] {
			t.Errorf("Range never produced %d", v)
		}
	}
	if r.Range(5, 5) != 5 {
		t.Error("degenerate range")
	}
	defer func() {
		if recover() == nil {
			t.Error("empty range did not panic")
		}
	}()
	r.Range(6, 3)
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(5)
	f1, f2 := r.Fork(), r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forks correlated on first draw")
	}
}

func TestUint64Uniformish(t *testing.T) {
	// Property: low bit is unbiased over any window.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		ones := 0
		for i := 0; i < 640; i++ {
			ones += int(r.Uint64() & 1)
		}
		return ones > 240 && ones < 400
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
