package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockConfineAnalyzer enforces the repo's mutex-confinement convention. The
// fleet (internal/server, internal/cluster) and the result store
// (internal/expstore) keep their shared state behind a `mu sync.Mutex`; the
// convention that documents which fields the mutex protects is a line
// comment on the field:
//
//	mu      sync.Mutex
//	pending map[string]bool // guarded by mu
//
// This analyzer takes the comment at its word: any access to a guarded
// field from a path that does not hold the lock is a finding. The analysis
// is deliberately simple — statements are walked in order, branch bodies
// inherit the state at entry and branch-local lock changes do not escape
// (so `if bad { mu.Unlock(); return err }` keeps the fall-through path
// locked) — which matches how every function in these packages is actually
// written. Exemptions: a value freshly constructed in the same function
// (not yet shared, so no lock exists to take), and functions that declare
// the caller's obligation — a name ending in "Locked" or a doc comment
// containing "holds mu" / "mu held" — are analyzed with the lock held at
// entry. Function literals are analyzed lock-free: a closure outlives the
// critical section it was built in (goroutines, callbacks, defers).
var LockConfineAnalyzer = &Analyzer{
	Name: "lockconfine",
	Doc:  "fields documented `guarded by mu` are only touched with the mutex held",
	Run:  runLockConfine,
}

// guardedStruct is one struct with a mutex and documented guarded fields.
type guardedStruct struct {
	lock    *types.Var            // the mutex field
	guarded map[*types.Var]string // guarded field -> lock field name
}

func runLockConfine(p *Pass) {
	guards := collectGuardedStructs(p)
	if len(guards) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc := &lockChecker{p: p, guards: guards, fresh: map[types.Object]bool{}}
			held := map[lockKey]bool{}
			if assumesLockHeld(fd) {
				// The function declares that callers lock: treat the
				// receiver's own mutex as held at entry.
				if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
					if obj := p.Pkg.Info.ObjectOf(fd.Recv.List[0].Names[0]); obj != nil {
						if gs := lc.structFor(obj.Type()); gs != nil {
							held[lockKey{root: obj, lock: gs.lock}] = true
						}
					}
				}
			}
			lc.walkStmts(fd.Body.List, held)
		}
	}
}

// collectGuardedStructs finds every struct in the package with a
// sync.Mutex/RWMutex field and at least one sibling field whose line or doc
// comment contains "guarded by <lockname>".
func collectGuardedStructs(p *Pass) map[*types.Named]*guardedStruct {
	out := map[*types.Named]*guardedStruct{}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			named, ok := p.Pkg.Info.Defs[ts.Name].Type().(*types.Named)
			if !ok {
				return true
			}
			// First pass: the mutex fields by name.
			locks := map[string]*types.Var{}
			for _, fld := range st.Fields.List {
				if !isMutexType(p.Pkg.Info.TypeOf(fld.Type)) {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := p.Pkg.Info.Defs[name].(*types.Var); ok {
						locks[name.Name] = v
					}
				}
			}
			if len(locks) == 0 {
				return true
			}
			// Second pass: fields documented as guarded.
			gs := &guardedStruct{guarded: map[*types.Var]string{}}
			for _, fld := range st.Fields.List {
				lockName := guardedByComment(fld)
				if lockName == "" {
					continue
				}
				lock, ok := locks[lockName]
				if !ok {
					for _, name := range fld.Names {
						p.Reportf(name, "field %s is documented `guarded by %s`, but %s has no mutex field %q", name.Name, lockName, ts.Name.Name, lockName)
					}
					continue
				}
				gs.lock = lock
				for _, name := range fld.Names {
					if v, ok := p.Pkg.Info.Defs[name].(*types.Var); ok {
						gs.guarded[v] = lockName
					}
				}
			}
			if len(gs.guarded) > 0 {
				out[named] = gs
			}
			return true
		})
	}
	return out
}

// guardedByComment extracts the lock name from a field's doc or line
// comment: "guarded by mu" -> "mu".
func guardedByComment(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		text := cg.Text()
		idx := strings.Index(text, "guarded by ")
		if idx < 0 {
			continue
		}
		rest := text[idx+len("guarded by "):]
		if end := strings.IndexFunc(rest, func(r rune) bool {
			return r == ' ' || r == '.' || r == ',' || r == ';' || r == ':' ||
				r == '`' || r == '"' || r == ')' || r == '\n'
		}); end >= 0 {
			rest = rest[:end]
		}
		return rest
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// assumesLockHeld reports whether fd declares the caller-locks convention:
// a name ending in "Locked", or a doc comment saying the caller "holds mu"
// (qualified receivers — "Caller holds s.mu." — count too) or "mu held".
func assumesLockHeld(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	if fd.Doc == nil {
		return false
	}
	text := fd.Doc.Text()
	if strings.Contains(text, "mu held") {
		return true
	}
	idx := strings.Index(text, "holds ")
	if idx < 0 {
		return false
	}
	tok := text[idx+len("holds "):]
	if end := strings.IndexFunc(tok, func(r rune) bool {
		return r == ' ' || r == ',' || r == ';' || r == '\n'
	}); end >= 0 {
		tok = tok[:end]
	}
	tok = strings.TrimRight(tok, ".")
	return tok == "mu" || strings.HasSuffix(tok, ".mu")
}

// lockKey identifies one mutex instance in scope: the root variable the
// access path starts from plus the mutex field.
type lockKey struct {
	root types.Object
	lock *types.Var
}

// lockChecker walks one function body simulating lock state.
type lockChecker struct {
	p      *Pass
	guards map[*types.Named]*guardedStruct
	// fresh holds locals initialized from a composite literal or new() in
	// this function: not yet shared, so their guarded fields are free.
	fresh map[types.Object]bool
}

// structFor resolves a variable type (possibly pointer) to its guarded
// struct entry.
func (lc *lockChecker) structFor(t types.Type) *guardedStruct {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return lc.guards[named]
	}
	return nil
}

// walkStmts processes statements in order, threading lock state.
func (lc *lockChecker) walkStmts(stmts []ast.Stmt, held map[lockKey]bool) {
	for _, s := range stmts {
		lc.walkStmt(s, held)
	}
}

func copyHeld(held map[lockKey]bool) map[lockKey]bool {
	out := make(map[lockKey]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (lc *lockChecker) walkStmt(s ast.Stmt, held map[lockKey]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lc.lockOp(s.X); ok {
			held[key] = op
			return
		}
		lc.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if _, op, ok := lc.lockOp(s.Call); ok && !op {
			return // defer mu.Unlock(): held through the rest of the body
		}
		lc.checkExpr(s.Call, held)
	case *ast.AssignStmt:
		lc.noteFresh(s)
		for _, e := range s.Rhs {
			lc.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			lc.checkExpr(e, held)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		lc.checkExpr(s.Cond, held)
		lc.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			lc.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			lc.checkExpr(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			lc.walkStmt(s.Post, inner)
		}
		lc.walkStmts(s.Body.List, inner)
	case *ast.RangeStmt:
		lc.checkExpr(s.X, held)
		lc.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			lc.checkExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					lc.checkExpr(e, held)
				}
				lc.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			lc.walkStmt(s.Init, held)
		}
		lc.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lc.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					lc.walkStmt(cc.Comm, copyHeld(held))
				}
				lc.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		lc.walkStmts(s.List, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lc.checkExpr(e, held)
		}
	case *ast.IncDecStmt:
		lc.checkExpr(s.X, held)
	case *ast.SendStmt:
		lc.checkExpr(s.Chan, held)
		lc.checkExpr(s.Value, held)
	case *ast.GoStmt:
		lc.checkExpr(s.Call, map[lockKey]bool{})
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lc.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		lc.walkStmt(s.Stmt, held)
	}
}

// lockOp recognizes x.mu.Lock()/RLock() (true) and Unlock/RUnlock (false)
// calls on a tracked mutex field.
func (lc *lockChecker) lockOp(e ast.Expr) (lockKey, bool, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return lockKey{}, false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockKey{}, false, false
	}
	// sel.X must itself be a selector to the mutex field: root.mu.
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	lockVar, ok := lc.p.Pkg.Info.ObjectOf(inner.Sel).(*types.Var)
	if !ok || !isMutexType(lockVar.Type()) {
		return lockKey{}, false, false
	}
	root := rootIdent(inner.X)
	if root == nil {
		return lockKey{}, false, false
	}
	obj := lc.p.Pkg.Info.ObjectOf(root)
	if obj == nil {
		return lockKey{}, false, false
	}
	return lockKey{root: obj, lock: lockVar}, acquire, true
}

// noteFresh records locals assigned from a composite literal or new(): a
// value this function just built, not yet visible to any other goroutine.
func (lc *lockChecker) noteFresh(s *ast.AssignStmt) {
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || i >= len(s.Rhs) {
			continue
		}
		obj := lc.p.Pkg.Info.ObjectOf(id)
		if obj == nil {
			continue
		}
		rhs := unparen(s.Rhs[i])
		if ue, ok := rhs.(*ast.UnaryExpr); ok {
			rhs = unparen(ue.X)
		}
		switch r := rhs.(type) {
		case *ast.CompositeLit:
			lc.fresh[obj] = true
		case *ast.CallExpr:
			if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "new" {
				lc.fresh[obj] = true
			}
		}
	}
}

// checkExpr reports guarded-field accesses in e made without the lock.
// Function literals are analyzed with no locks held: by the time a closure
// runs, the critical section that built it is gone.
func (lc *lockChecker) checkExpr(e ast.Expr, held map[lockKey]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lc.walkStmts(fl.Body.List, map[lockKey]bool{})
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selInfo := lc.p.Pkg.Info.Selections[sel]
		if selInfo == nil || selInfo.Kind() != types.FieldVal {
			return true
		}
		fieldVar, ok := selInfo.Obj().(*types.Var)
		if !ok {
			return true
		}
		gs := lc.structFor(selInfo.Recv())
		if gs == nil {
			return true
		}
		lockName, guarded := gs.guarded[fieldVar]
		if !guarded {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil {
			return true
		}
		obj := lc.p.Pkg.Info.ObjectOf(root)
		if obj == nil || lc.fresh[obj] {
			return true
		}
		if !held[lockKey{root: obj, lock: gs.lock}] {
			lc.p.Reportf(sel, "%s.%s is guarded by %s, but this path does not hold it; lock first, or mark the function as caller-locked (suffix Locked / doc \"holds %s\")",
				root.Name, fieldVar.Name(), lockName, lockName)
		}
		return true
	})
}
