package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

// PolicyExhaustiveAnalyzer requires every switch on core.DirtyPolicy or
// core.RefPolicy to either cover all declared constants of the type or fail
// loudly (panic / error / exit) in its default clause. The constant set is
// discovered from the type's package scope at analysis time, so declaring a
// sixth dirty policy instantly makes every silent switch a finding — the
// paper's per-policy cost models (Table 3.1 / Table 4.1) are meaningless for
// a policy that silently falls through.
var PolicyExhaustiveAnalyzer = &Analyzer{
	Name: "policyexhaustive",
	Doc:  "switches on core policy enums must cover every constant or fail loudly in default",
	Run:  runPolicyExhaustive,
}

// policyEnumTypes names the enum types the check governs, by defining
// package path and type name.
var policyEnumTypes = map[[2]string]bool{
	{"repro/internal/core", "DirtyPolicy"}: true,
	{"repro/internal/core", "RefPolicy"}:   true,
}

func runPolicyExhaustive(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := policyEnum(p.TypeOf(sw.Tag))
			if named == nil {
				return true
			}
			p.checkSwitch(sw, named)
			return true
		})
	}
}

// policyEnum returns t as a governed named enum type, or nil.
func policyEnum(t types.Type) *types.Named {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	key := [2]string{named.Obj().Pkg().Path(), named.Obj().Name()}
	if !policyEnumTypes[key] {
		return nil
	}
	return named
}

// enumConstants lists every package-level constant of the enum's type,
// sorted by value, from the defining package's scope. This is the same
// constant list core.ParseDirtyPolicy/ParseRefPolicy round-trip.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool {
		vi, _ := constant.Int64Val(consts[i].Val())
		vj, _ := constant.Int64Val(consts[j].Val())
		return vi < vj
	})
	return consts
}

func (p *Pass) checkSwitch(sw *ast.SwitchStmt, named *types.Named) {
	covered := map[int64]bool{}
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := p.Pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				// A non-constant case expression defeats static
				// exhaustiveness; require a loud default instead.
				continue
			}
			if v, exact := constant.Int64Val(tv.Value); exact {
				covered[v] = true
			}
		}
	}

	if deflt != nil && p.loudDefault(deflt) {
		return
	}

	var missing []string
	for _, c := range enumConstants(named) {
		v, _ := constant.Int64Val(c.Val())
		if !covered[v] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	what := "add the missing cases or a default that panics/returns an error"
	if deflt != nil {
		what = "the default silently swallows them; make it panic or return an error"
	}
	p.Reportf(sw, "switch on %s.%s misses %s — %s, so a new policy cannot silently fall through",
		named.Obj().Pkg().Name(), named.Obj().Name(), describeList(missing), what)
}

// loudDefault reports whether the default clause fails loudly: it panics,
// exits, or returns a non-nil error.
func (p *Pass) loudDefault(cc *ast.CaseClause) bool {
	loud := false
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := p.Pkg.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
						loud = true
					}
				}
				for _, path := range []string{"os", "log"} {
					if fn := funcIn(p.Pkg.Info, n.Fun, path); fn != nil {
						switch fn.Name() {
						case "Exit", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
							loud = true
						}
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					t := p.TypeOf(res)
					if t == nil {
						continue
					}
					if id, isNil := res.(*ast.Ident); isNil && id.Name == "nil" {
						continue
					}
					if types.Implements(t, errIface) || types.AssignableTo(t, errIface.Underlying()) {
						loud = true
					}
				}
			}
			return !loud
		})
		if loud {
			return true
		}
	}
	return false
}
