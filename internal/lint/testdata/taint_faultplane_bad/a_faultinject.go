//spurlint:path repro/internal/faultinject

// Fault-plane package outside the model scope: a clock read here is legal
// for the per-package determinism analyzer but makes the decision helpers
// taint sources. The real injector derives every decision from its seeded
// splitmix64 stream precisely so the model-facing half stays clean.
package faultinject

import "time"

// jitter draws entropy from the wall clock — the cardinal sin for a fault
// schedule that must replay identically from a seed.
func jitter() uint64 { return uint64(time.Now().UnixNano()) }

// NextDelay is the model-facing decision helper; the clock read is one hop
// down, where only the interprocedural analyzer can see it.
func NextDelay() uint64 { return jitter() % 1000 }
