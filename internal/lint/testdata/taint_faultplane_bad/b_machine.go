//spurlint:path repro/internal/machine

// Positive fault-plane taint fixture: the simulator consulting a fault
// injector whose decision reaches the wall clock. Injected faults are part
// of the run's spec — a clock-dependent schedule silently breaks the
// content-addressed store's replay guarantee, so the call site in the
// model is the finding.
package fixture

import "repro/internal/faultinject"

// StepFault asks the fault plane whether to perturb the next reference.
func StepFault() bool {
	return faultinject.NextDelay() == 0 // want taint "faultinject.NextDelay → faultinject.jitter → time.Now (wall clock)"
}
