//spurlint:path repro/internal/spurutil

// Utility package outside the model scope: direct clock reads and map
// iteration are legal here — the per-package determinism analyzer does not
// apply — but they make these functions taint sources for model callers.
package spurutil

import "time"

// Now reads the wall clock directly.
func Now() int64 { return time.Now().UnixNano() }

// Stamp reaches the clock through one more hop; taint must propagate
// transitively for the model-side call to be caught.
func Stamp() int64 { return Now() + 1 }

// Pick returns some element of m; which one depends on the randomized map
// iteration order.
func Pick(m map[int]int) int {
	for _, v := range m {
		return v
	}
	return 0
}
