//spurlint:path repro/internal/cache

// Positive taint fixtures: a model package reaching nondeterministic
// sources through helper calls the per-package determinism analyzer cannot
// see. The finding sits at the model-side call, and the message carries the
// witness chain down to the source.
package fixture

import "repro/internal/spurutil"

// Tag folds a transitive wall-clock read into a model value.
func Tag() int64 {
	return spurutil.Stamp() // want taint "spurutil.Stamp → spurutil.Now → time.Now (wall clock)"
}

// Choose folds map iteration order from a helper into a model value.
func Choose(m map[int]int) int {
	return spurutil.Pick(m) // want taint "call into nondeterministic code: spurutil.Pick → a map iterated in nondeterministic order"
}
