//spurlint:path repro/internal/fixture

// Positive errcheck fixture: a discarded error return.
package fixture

import "os"

// Scrub drops the error from os.Remove on the floor.
func Scrub(path string) {
	os.Remove(path) // want errcheck "result of os.Remove"
}
