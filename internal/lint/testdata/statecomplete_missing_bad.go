//spurlint:path repro/internal/mem

// Positive statecomplete fixture: the registered type exists but one half
// of its registered snapshot path does not — retiring RestoreFree without
// updating the registry must fail the lint, not silently skip the check.
// The finding anchors on the package clause (the type's package).
// want statecomplete "registered state type Pool has no restore function Pool.RestoreFree"
package fixture

// Pool mimics the registered frame pool.
type Pool struct {
	free []uint32
}

// ExportFree covers the only field.
func (p *Pool) ExportFree() []uint32 { return p.free }
