//spurlint:path repro/internal/cache

// Negative counter-safety fixtures: the approved forms of size math and
// narrowing.
package fixture

import "repro/internal/core"

// maxBlob sits in a const declaration: the compiler evaluates untyped
// constant arithmetic in arbitrary precision and rejects overflow.
const maxBlob = 256 << 20

// PoolBytes routes size math through the audited helper.
func PoolBytes(mb int) int {
	return core.MiB(mb)
}

// TagFlip is bit geometry, not a byte size: only literal 20/30 shifts are
// size units.
func TagFlip(tag int) int {
	return tag ^ 1<<24
}

// Wide keeps the runtime shift in 64 bits, where mebibyte-scale sizes
// cannot overflow.
func Wide(mb int) uint64 {
	return uint64(mb) << 20
}

// Low16 masks the conversion to the named width; nothing unnamed is lost.
func Low16(cycles uint64) uint32 {
	return uint32(cycles) & 0xFFFF
}

// Wrap models hardware wraparound and records that decision.
func Wrap(cycles uint64) uint32 {
	return uint32(cycles) //spurlint:ignore countersafe — fixture: modeled 32-bit hardware counter wraparound
}
