//spurlint:path repro/internal/fixture

// Negative errcheck fixtures: handled errors, named discards and the exempt
// print family and infallible writers.
package fixture

import (
	"fmt"
	"os"
	"strings"
)

// Scrub handles the error.
func Scrub(path string) error {
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("scrub: %w", err)
	}
	return nil
}

// Best names the discard explicitly, which is allowed: the decision is
// visible at the call site.
func Best(path string) {
	_ = os.Remove(path)
}

// Chatter uses the exempt print family and infallible writers.
func Chatter(rows []string) string {
	fmt.Println("rows:", len(rows))
	fmt.Fprintln(os.Stderr, "rows:", len(rows))
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintln(&b, r)
	}
	b.WriteString("done")
	return b.String()
}
