//spurlint:path repro/internal/cache

// Negative taint fixtures: model calls into clean helpers, and into a
// helper whose nondeterminism is suppressed at the source. Neither is a
// finding.
package fixture

import "repro/internal/spurutil"

// Total calls a deterministic helper; no taint anywhere.
func Total(xs []int) int { return spurutil.Sum(xs) }

// Wait uses the suppressed deadline helper: the source-side directive stops
// propagation, so the model-side call is clean.
func Wait() bool { return spurutil.Deadline().IsZero() }
