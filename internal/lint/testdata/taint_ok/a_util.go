//spurlint:path repro/internal/spurutil

// Utility package for the negative taint fixture: a helper whose clock read
// carries a recorded suppression, and a plainly deterministic one.
package spurutil

import "time"

// Deadline computes a harness retry deadline. The clock read is suppressed
// on the record, so it must not taint model callers: the decision "this
// value never reaches results" covers the whole call chain.
func Deadline() time.Time {
	//spurlint:ignore taint — serving-harness retry deadline; never folded into model results
	return time.Now().Add(time.Second)
}

// Sum is a pure function.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
