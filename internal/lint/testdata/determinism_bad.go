//spurlint:path repro/internal/cache

// Positive determinism fixtures: wall-clock reads, global and cryptographic
// randomness, and order-sensitive map iteration inside a model package.
package fixture

import (
	crand "crypto/rand" // want determinism "crypto/rand is nondeterministic"
	"math/rand"
	"time"
)

// Stamp reads the wall clock, so two replays of the same spec differ.
func Stamp() int64 {
	return time.Now().UnixNano() // want determinism "time.Now reads the wall clock"
}

// Roll draws from the process-global RNG stream.
func Roll() int {
	return rand.Intn(6) // want determinism "global rand.Intn shares"
}

// Noise exists only so the crypto/rand import is used; the import itself is
// the finding.
func Noise(b []byte) error {
	_, err := crand.Read(b)
	return err
}

// Keys collects map keys and never sorts them, so callers see them in the
// runtime's randomized order.
func Keys(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want determinism "map iteration order is randomized"
	}
	return keys
}

// First leaks which entry the runtime happened to visit first.
func First(m map[string]int) string {
	for k := range m {
		return k // want determinism "map iteration order is randomized"
	}
	return ""
}
