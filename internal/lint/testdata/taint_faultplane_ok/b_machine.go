//spurlint:path repro/internal/machine

// The model side of the deterministic fault plane: calling into a
// seed-driven decision helper is clean — no findings expected.
package fixture

import "repro/internal/faultinject"

// StepFault consults the seeded fault schedule; replaying the same seed
// replays the same perturbations.
func StepFault(state *uint64) bool {
	return faultinject.NextDelay(state) == 0
}
