//spurlint:path repro/internal/faultinject

// Negative fault-plane taint fixture, the deterministic twin of
// taint_faultplane_bad: every decision is a pure function of the rule's
// seeded splitmix64 stream, so model code may consult it freely.
package faultinject

// next advances a splitmix64 stream — deterministic, seed in, value out.
func next(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NextDelay draws the next fault delay from the caller's stream state.
func NextDelay(state *uint64) uint64 { return next(state) % 1000 }
