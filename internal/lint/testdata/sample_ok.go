//spurlint:path repro/internal/sample

// Negative fixtures for the sampling engine: the idioms the real package
// uses pass unflagged — deterministic seeding, the sorted-keys walk for
// journal replay, and sequential per-variant loops.
package fixture

import "sort"

// SeededPick selects a medoid index from an explicitly seeded LCG, the way
// plan construction breaks ties.
func SeededPick(seed uint64, n int) int {
	seed = seed*6364136223846793005 + 1442695040888963407
	return int(seed % uint64(n))
}

// ReplayFrames walks journalled interval frames in interval order, not map
// order.
func ReplayFrames(frames map[int]string) []string {
	var idx []int
	for i := range frames {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	out := make([]string, 0, len(idx))
	for _, i := range idx {
		out = append(out, frames[i])
	}
	return out
}

// MeasureVariants drives each variant machine in declaration order, one
// after the other, as the measurement pass does.
func MeasureVariants(warm []func()) {
	for _, w := range warm {
		w()
	}
}
