//spurlint:path repro/internal/faultinject

// Positive goroutine-confinement fixture for the fault plane: the
// injector's decision path must stay synchronous — a background scheduler
// here would decouple fault firing from the call sequence the seed
// promises to reproduce.
package fixture

import "time"

// ArmLater delays arming on a goroutine: the schedule now depends on the
// runtime's timing, not the seed.
func ArmLater(arm func(), after time.Duration) {
	go func() { // want goconfine "goroutine spawned outside"
		time.Sleep(after)
		arm()
	}()
}
