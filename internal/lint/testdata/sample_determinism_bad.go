//spurlint:path repro/internal/sample

// Positive determinism fixtures for the sampling engine: the mistakes a
// checkpointed, resumable measurement pass cannot afford — stamping plans
// with the wall clock and folding cluster weights in map order. Either one
// makes a resumed run diverge byte-for-byte from the original.
package fixture

import "time"

// StampPlan records when the plan was built. Two builds of the same profile
// then differ, so the journal's plan frame no longer matches on resume.
func StampPlan() int64 {
	return time.Now().Unix() // want determinism "time.Now reads the wall clock"
}

// FoldWeights accumulates per-cluster weights in map order; float addition
// does not commute in rounding, so the totals differ run to run.
func FoldWeights(byCluster map[int]float64) float64 {
	var sum float64
	for _, w := range byCluster {
		sum += w // want determinism "map iteration order is randomized"
	}
	return sum
}
