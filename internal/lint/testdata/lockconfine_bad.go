//spurlint:path repro/internal/server

// Positive lock-confinement fixtures: fields documented `guarded by mu`
// touched on paths that do not hold the mutex.
package fixture

import "sync"

// box keeps one counter behind its mutex.
type box struct {
	mu sync.Mutex
	n  int // guarded by mu
	// want lockconfine "field tag is documented `guarded by lock`, but box has no mutex field"
	tag string // guarded by lock
}

// Bump writes the guarded field without taking the lock at all.
func (b *box) Bump() {
	b.n++ // want lockconfine "b.n is guarded by mu, but this path does not hold it"
}

// Leak reads the guarded field again after releasing the lock.
func (b *box) Leak() int {
	b.mu.Lock()
	n := b.n
	b.mu.Unlock()
	return n + b.n // want lockconfine "b.n is guarded by mu"
}

// Spawn holds the lock, but the goroutine it launches outlives the critical
// section: the closure's accesses are checked lock-free.
func (b *box) Spawn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.n++ // want lockconfine "b.n is guarded by mu"
	}()
}

// branchLeak unlocks inside one branch; the branch-local release must not
// leak into the fall-through path, but the access inside the branch after
// the unlock is a finding.
func (b *box) branchLeak(bad bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if bad {
		b.mu.Unlock()
		return b.n // want lockconfine "b.n is guarded by mu"
	}
	return b.n
}
