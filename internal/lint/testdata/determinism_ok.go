//spurlint:path repro/internal/cache

// Negative determinism fixtures: the approved idioms pass unflagged.
package fixture

import (
	"math/rand"
	"sort"
)

// Roll draws from an explicitly seeded generator; constructors are fine.
func Roll(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(6)
}

// SortedKeys is the canonical sorted-iteration idiom: collect, sort, walk.
func SortedKeys(m map[int]string) []string {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Drain deletes every key of m from other; deletion commutes, so iteration
// order cannot matter.
func Drain(m, other map[int]bool) {
	for k := range m {
		delete(other, k)
	}
}

// Last is order-sensitive but carries a justified suppression, which is the
// sanctioned escape hatch.
func Last(m map[int]bool) int {
	last := 0
	for k := range m {
		last = k //spurlint:ignore determinism — fixture: exercising the suppression path itself
	}
	return last
}
