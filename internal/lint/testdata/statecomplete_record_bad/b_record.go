//spurlint:path repro/internal/vm

// Positive record fixture: a serialized snapshot record that embeds
// replay-rebuilt generator state. The snapshot contract rebuilds workload
// and proc state by replaying the stream; carrying a serialized copy
// invites divergence between the copy and the replay.
package fixture

import "repro/internal/workload"

// Pager mimics the registered live state type.
type Pager struct {
	pages []uint64
}

// PagerState mimics the registered serialization record.
type PagerState struct {
	Pages []uint64
	// want statecomplete "snapshot record field Gen embeds workload.Script"
	Gen *workload.Script
}

// ExportState covers every live and record field.
func (p *Pager) ExportState() PagerState {
	return PagerState{Pages: p.pages, Gen: nil}
}

// RestoreState covers every live and record field.
func (p *Pager) RestoreState(s PagerState) {
	p.pages = s.Pages
	_ = s.Gen
}
