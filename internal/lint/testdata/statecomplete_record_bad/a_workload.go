//spurlint:path repro/internal/workload

// Generator-state stand-in for the record fixture: workload.Script is on
// the replay-rebuilt list, so serializing it into a snapshot record is a
// design error.
package workload

// Script is generator state: a pure function of (spec, seed).
type Script struct {
	Pos int
}
