//spurlint:path repro/internal/xlate

// Positive hot-path fixture: designated functions on dense index-addressed
// state pass, and map state is fine outside the designated functions.
package fixture

// Unit mimics the translation unit: a dense frame array on the hot path,
// a map only in reporting code.
type Unit struct {
	frames []uint32
	stats  map[string]uint64
}

// Translate is a designated hot-path function on dense state.
func (u *Unit) Translate(p uint64) uint32 {
	if len(u.frames) == 0 {
		return 0
	}
	return u.frames[p%uint64(len(u.frames))]
}

// CheckPTE is a designated hot-path function on dense state.
func (u *Unit) CheckPTE(p uint64) uint32 {
	return u.Translate(p)
}

// Note is not on the hot path; map state is fine here.
func (u *Unit) Note(name string) uint64 {
	if u.stats == nil {
		u.stats = make(map[string]uint64)
	}
	u.stats[name]++
	return u.stats[name]
}
