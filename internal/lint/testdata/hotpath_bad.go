//spurlint:path repro/internal/pte

// Negative hot-path fixture: the designated probe/translate functions have
// regressed onto map-backed state — a hash per reference and randomized
// iteration order, exactly what the dense chunked store removed.
package fixture

// Table mimics the PTE store's surface with a map behind it.
type Table struct {
	m map[uint64]uint32
}

// Lookup is a designated hot-path function.
func (t *Table) Lookup(p uint64) uint32 {
	return t.m[p] // want hotpath "indexes a map"
}

// Set is a designated hot-path function.
func (t *Table) Set(p uint64, e uint32) {
	if t.m == nil {
		t.m = make(map[uint64]uint32) // want hotpath "allocates a map"
	}
	t.m[p] = e // want hotpath "indexes a map"
}

// Invalidate is a designated hot-path function.
func (t *Table) Invalidate(p uint64) {
	delete(t.m, p) // want hotpath "delete mutates a map"
}

// Update is a designated hot-path function.
func (t *Table) Update(p uint64, f func(uint32) uint32) uint32 {
	for k := range t.m { // want hotpath "ranges over a map"
		_ = k
	}
	t.m = map[uint64]uint32{} // want hotpath "builds a map literal"
	return 0
}

// Range exists so the statecomplete registry's snapshot path (Table.Range)
// resolves against this fixture Table; it references the backing map without
// iterating it, keeping the fixture free of determinism findings.
func (t *Table) Range(func(uint64, uint32)) int {
	return len(t.m)
}

// Walk is not a designated hot-path function: the same operations pass.
func (t *Table) Walk(p uint64) uint32 {
	return t.m[p]
}
