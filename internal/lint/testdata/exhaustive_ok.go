//spurlint:path repro/internal/fixture

// Negative exhaustiveness fixtures: full coverage, or defaults that fail
// loudly.
package fixture

import (
	"fmt"

	"repro/internal/core"
)

// Full covers every declared dirty policy; no default needed.
func Full(p core.DirtyPolicy) string {
	switch p {
	case core.DirtyMIN:
		return "min"
	case core.DirtyFAULT:
		return "fault"
	case core.DirtyFLUSH:
		return "flush"
	case core.DirtySPUR:
		return "spur"
	case core.DirtyWRITE:
		return "write"
	case core.DirtyPROT:
		return "prot"
	}
	return "?"
}

// Loud misses policies but its default panics, which is the other accepted
// shape: a new policy cannot fall through unnoticed.
func Loud(p core.DirtyPolicy) string {
	switch p {
	case core.DirtySPUR:
		return "spur"
	default:
		panic(fmt.Sprintf("unhandled policy %v", p))
	}
}

// Erring returns a non-nil error from default, the third accepted shape.
func Erring(p core.RefPolicy) (string, error) {
	switch p {
	case core.RefMISS:
		return "miss", nil
	default:
		return "", fmt.Errorf("unhandled ref policy %v", p)
	}
}
