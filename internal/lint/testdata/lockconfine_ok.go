//spurlint:path repro/internal/server

// Negative lock-confinement fixtures: every access pattern the convention
// blesses — lock/unlock pairs, deferred unlock, caller-locked helpers,
// freshly constructed values, and branch-local unlock on an error path.
package fixture

import "sync"

// reg keeps a map behind its mutex.
type reg struct {
	mu sync.Mutex
	m  map[string]int // guarded by mu
}

// newReg builds a fresh value: nothing else can see it, so no lock exists
// to take yet.
func newReg() *reg {
	r := &reg{}
	r.m = map[string]int{}
	return r
}

// Get locks around the access with a deferred unlock.
func (r *reg) Get(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m[k]
}

// Put unlocks on the early-return branch; the fall-through path stays
// locked.
func (r *reg) Put(k string, v int) bool {
	r.mu.Lock()
	if r.m == nil {
		r.mu.Unlock()
		return false
	}
	r.m[k] = v
	r.mu.Unlock()
	return true
}

// sizeLocked declares the caller-locks convention by suffix.
func (r *reg) sizeLocked() int { return len(r.m) }

// reset clears the registry. Caller holds r.mu.
func (r *reg) reset() {
	r.m = map[string]int{}
}

// Size takes the lock and may call caller-locked helpers.
func (r *reg) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sizeLocked()
}
