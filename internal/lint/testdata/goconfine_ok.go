//spurlint:path repro/internal/parallel

// Negative goroutine-confinement fixture: internal/parallel owns the worker
// pool, so goroutines are its business.
package fixture

// Spawn is allowed here.
func Spawn(f func()) {
	done := make(chan struct{})
	go func() {
		f()
		close(done)
	}()
	<-done
}
