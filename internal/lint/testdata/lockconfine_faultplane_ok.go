//spurlint:path repro/internal/faultinject

// Negative lock-confinement fixtures for the fault plane: the injector
// patterns the real code uses — decide under the lock, swap rules under
// the lock, return a copy of the log made while holding it.
package fixture

import "sync"

// injector mirrors the network injector's shape: shared decision state
// behind one mutex.
type injector struct {
	mu   sync.Mutex
	seen uint64   // guarded by mu
	log  []uint64 // guarded by mu
}

// Decide advances the call cursor under the lock, so the seeded cadence
// holds no matter how many requests race.
func (in *injector) Decide() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen++
	return in.seen%2 == 0
}

// Reset re-arms the injector between drill rounds.
func (in *injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen = 0
	in.log = nil
}

// Log returns a copy made while holding the lock; callers can keep it as
// long as they like without racing the next append.
func (in *injector) Log() []uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]uint64(nil), in.log...)
}
