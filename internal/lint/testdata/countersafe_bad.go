//spurlint:path repro/internal/cache

// Positive counter-safety fixtures: raw size arithmetic and silent
// truncation of wide counters.
package fixture

// PoolBytes computes a byte size with a runtime shift; on a 32-bit int,
// 2048 << 20 is zero.
func PoolBytes(mb int) int {
	return mb << 20 // want countersafe "runtime size shift"
}

// DefaultBytes writes a size literal outside a const declaration instead of
// going through the audited helper.
func DefaultBytes() int {
	return 6 << 20 // want countersafe "size literal"
}

// Squeeze narrows a 64-bit cycle counter without a mask or a directive.
func Squeeze(cycles uint64) uint32 {
	return uint32(cycles) // want countersafe "truncates a uint64"
}
