//spurlint:path repro/internal/fixture

// Positive exhaustiveness fixtures: switches on the policy enums that let a
// newly declared policy fall through silently.
package fixture

import "repro/internal/core"

// Short misses four of the six dirty policies with no default at all.
func Short(p core.DirtyPolicy) string {
	switch p { // want policyexhaustive "misses"
	case core.DirtyFAULT:
		return "fault"
	case core.DirtyFLUSH:
		return "flush"
	}
	return "?"
}

// Swallow covers five policies and silently swallows DirtyPROT in default.
func Swallow(p core.DirtyPolicy) string {
	switch p { // want policyexhaustive "default silently swallows"
	case core.DirtyMIN, core.DirtyFAULT, core.DirtyFLUSH, core.DirtySPUR, core.DirtyWRITE:
		return "known"
	default:
		return "?"
	}
}

// RefShort misses RefNONE.
func RefShort(p core.RefPolicy) string {
	switch p { // want policyexhaustive "misses RefNONE"
	case core.RefMISS:
		return "miss"
	case core.RefTRUE:
		return "ref"
	}
	return "?"
}
