//spurlint:path repro/internal/sample

// Positive goroutine-confinement fixture for the sampling engine: fanning
// the per-variant measurement out to goroutines races on the shared
// generation buffer and journals frames in completion order instead of
// variant order.
package fixture

// MeasureVariants warms each variant machine concurrently.
func MeasureVariants(warm []func()) {
	for _, w := range warm {
		go w() // want goconfine "goroutine spawned outside"
	}
}
