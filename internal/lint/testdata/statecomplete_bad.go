//spurlint:path repro/internal/cache

// Positive statecomplete fixture: this package redefines the registered
// cache.Cache with a mutable field its snapshot pair forgot. Deleting a
// field from a real Snapshot/Restore pair produces exactly this shape.
package fixture

// Cache mimics the registered state type.
type Cache struct {
	tags []uint64
	meta []uint8
	// hand is mutable state neither ExportState nor RestoreState touches.
	// want statecomplete "field hand of fixture.Cache is not snapshotted by Cache.ExportState"
	// want statecomplete "field hand of fixture.Cache is not restored by Cache.RestoreState"
	hand int
	// gen is exempted on the record; the directive covers both paths.
	//spurlint:ignore statecomplete — derived generation counter, rebuilt on first access
	gen uint64
}

// ExportState covers tags and meta only.
func (c *Cache) ExportState() ([]uint64, []uint8) {
	return c.tags, c.meta
}

// RestoreState covers tags and meta only.
func (c *Cache) RestoreState(tags []uint64, meta []uint8) {
	c.tags = tags
	c.meta = meta
}
