//spurlint:path repro/internal/report

// Positive goroutine-confinement fixture: a goroutine outside the packages
// that own concurrency.
package fixture

// Spawn launches work outside internal/parallel's pool.
func Spawn(f func()) {
	go f() // want goconfine "goroutine spawned outside"
}
