//spurlint:path repro/internal/fixture

// Directive-hygiene fixtures: malformed and unused suppressions are
// themselves findings, so ignores cannot rot silently.
package fixture

import "os"

// Unknown names a check that does not exist, so it suppresses nothing and
// the underlying errcheck finding still fires.
func Unknown(path string) {
	// want directive "unknown check"
	// want errcheck "result of os.Remove"
	os.Remove(path) //spurlint:ignore nosuchcheck - because
}

// NoReason gives no justification, which is also malformed.
func NoReason(path string) {
	// want directive "has no reason"
	// want errcheck "result of os.Remove"
	os.Remove(path) //spurlint:ignore errcheck
}

// Unused is well-formed but suppresses nothing.
// want directive "unused ignore directive"
//
//spurlint:ignore errcheck — fixture: nothing on the next line can fail
func Unused() {}
