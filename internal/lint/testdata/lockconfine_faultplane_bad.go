//spurlint:path repro/internal/faultinject

// Positive lock-confinement fixtures for the fault plane: an injector
// whose rule cursors and fault log are documented `guarded by mu` — HTTP
// traffic hits it concurrently — accessed on paths that do not hold the
// mutex.
package fixture

import "sync"

// injector mirrors the network injector's shape: shared decision state
// behind one mutex.
type injector struct {
	mu   sync.Mutex
	seen uint64   // guarded by mu
	log  []uint64 // guarded by mu
}

// Decide bumps the call cursor without taking the lock: two concurrent
// requests would tear the cadence the seed promises.
func (in *injector) Decide() bool {
	in.seen++ // want lockconfine "in.seen is guarded by mu, but this path does not hold it"
	return false
}

// SetRules re-arms the injector without the lock, racing every in-flight
// decision against the swap.
func (in *injector) SetRules(seen uint64) {
	in.seen = seen // want lockconfine "in.seen is guarded by mu"
}

// Log snapshots under the lock but then touches the live slice again after
// releasing it, racing any concurrent append.
func (in *injector) Log() []uint64 {
	in.mu.Lock()
	out := append([]uint64(nil), in.log...)
	in.mu.Unlock()
	return append(out, in.log...) // want lockconfine "in.log is guarded by mu"
}
