//spurlint:path repro/cmd/spurtorture

// Negative goroutine-confinement fixture: the torture harness is a command
// main — scheduler code by nature — so serving a fleet node on a goroutine
// is exactly where concurrency belongs.
package fixture

// serve runs one fleet member's accept loop off the main thread.
func serve(loop func(), done chan struct{}) {
	go func() {
		defer close(done)
		loop()
	}()
}
