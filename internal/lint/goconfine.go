package lint

import (
	"go/ast"
	"strings"
)

// GoConfineAnalyzer confines `go` statements to the packages that are
// allowed to own concurrency. The simulator's determinism contract is that
// every model computation is single-threaded and scheduled explicitly; all
// parallelism is funneled through internal/parallel's worker pool (which
// reassembles results by coordinate, not completion order), the HTTP
// server, the client's async helpers, and command main loops. A goroutine
// anywhere else is either a data race or a nondeterminism source waiting to
// be found by a slower tool.
var GoConfineAnalyzer = &Analyzer{
	Name: "goconfine",
	Doc:  "`go` statements only in the packages that own concurrency",
	Run:  runGoConfine,
}

// concurrencyPackages may spawn goroutines. cmd/* may too: a main package
// wiring signal handling or servers together is scheduler code by nature.
var concurrencyPackages = map[string]bool{
	"repro/internal/parallel": true,
	"repro/internal/server":   true,
	// internal/cluster owns the replication outbox's background sender —
	// service plumbing, deliberately outside the deterministic model core.
	"repro/internal/cluster": true,
	"repro/pkg/client":       true,
}

func runGoConfine(p *Pass) {
	if concurrencyPackages[p.Pkg.Path] || strings.HasPrefix(p.Pkg.Path, "repro/cmd/") {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g, "goroutine spawned outside the concurrency packages (internal/parallel, internal/server, pkg/client, cmd/*); route parallel work through parallel.Run so results stay deterministic")
			}
			return true
		})
	}
}
