package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// The suppression directive. A finding is suppressed by
//
//	//spurlint:ignore <check> — <reason>
//
// placed either on the offending line (trailing comment) or on the line
// directly above it. <check> must name an analyzer and <reason> must be
// non-empty: a suppression is a recorded engineering decision, not an
// escape hatch. The separator may be "—", "--" or "-", or just whitespace.
const ignorePrefix = "spurlint:ignore"

type directive struct {
	pos    token.Position
	check  string
	reason string
	used   bool
}

type ignoreIndex struct {
	// byLine maps source line -> directives declared on that line.
	byLine    map[string]map[int][]*directive
	malformed []Finding
}

// collectIgnores scans every comment in the files for spurlint directives.
// Malformed ones (unknown check, missing reason) become findings.
func collectIgnores(fset *token.FileSet, files []*ast.File, valid map[string]bool) *ignoreIndex {
	idx := &ignoreIndex{byLine: map[string]map[int][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d, err := parseIgnore(text, valid)
				if err != nil {
					idx.malformed = append(idx.malformed, Finding{
						Pos:   pos,
						Check: "directive",
						Msg:   err.Error(),
					})
					continue
				}
				d.pos = pos
				lines := idx.byLine[pos.Filename]
				if lines == nil {
					lines = map[int][]*directive{}
					idx.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], d)
			}
		}
	}
	return idx
}

func parseIgnore(rest string, valid map[string]bool) (*directive, error) {
	rest = strings.TrimSpace(rest)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, fmt.Errorf("spurlint:ignore needs a check name and a reason: //spurlint:ignore <check> — <reason>")
	}
	check := fields[0]
	if !valid[check] {
		known := make([]string, 0, len(valid))
		for k := range valid {
			known = append(known, k)
		}
		return nil, fmt.Errorf("spurlint:ignore of unknown check %q (analyzers: %s)", check, describeList(sortStrings(known)))
	}
	reason := strings.TrimSpace(rest[len(check):])
	for _, sep := range []string{"—", "--", "-"} {
		if r, ok := strings.CutPrefix(reason, sep); ok {
			reason = strings.TrimSpace(r)
			break
		}
	}
	if reason == "" {
		return nil, fmt.Errorf("spurlint:ignore %s has no reason: a suppression must record why the finding is safe", check)
	}
	return &directive{check: check, reason: reason}, nil
}

// suppress reports whether a finding at pos for check is covered by a
// directive on the same line or the line above, marking it used.
func (idx *ignoreIndex) suppress(pos token.Position, check string) bool {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.check == check {
				d.used = true
				return true
			}
		}
	}
	return false
}

// unused returns well-formed directives that suppressed nothing, restricted
// to the checks that actually ran (a directive for an analyzer excluded from
// this run may still be load-bearing).
func (idx *ignoreIndex) unused(ran []*Analyzer) []*directive {
	active := map[string]bool{}
	for _, a := range ran {
		active[a.Name] = true
	}
	var out []*directive
	for _, lines := range idx.byLine {
		for _, ds := range lines {
			for _, d := range ds {
				if !d.used && active[d.check] {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

func sortStrings(s []string) []string {
	sort.Strings(s)
	return s
}
