package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// TaintAnalyzer is the interprocedural half of the determinism contract.
// The per-package determinism analyzer sees only direct calls: a model
// package that reads the wall clock through one helper hop — spur code
// calling a utility that calls time.Now — went unseen before this check.
//
// The analyzer builds a static call graph over every loaded package and
// propagates "nondeterministic source" taint backwards along call edges.
// A function is a source if its body directly reads the wall clock, draws
// from the process-global RNG, uses crypto/rand, or iterates a map in an
// order-leaking way (the same hazard rules the determinism analyzer
// applies, here in any package). Any module function that can reach a
// source is tainted. The finding is raised at the boundary: a call site in
// a model package whose callee is a tainted function outside the model —
// the exact edge where nondeterminism would leak into results that the
// content-addressed store assumes replay byte-identically.
//
// A source site suppressed with //spurlint:ignore determinism (or taint)
// does not propagate: the recorded decision "this clock read is a deadline,
// not model state" covers every caller. Limits are the suite's usual
// syntactic ones: only static calls are traversed (no function values, no
// interface dispatch), and stdlib bodies are opaque beyond the named
// source functions.
var TaintAnalyzer = &Analyzer{
	Name:       "taint",
	Doc:        "interprocedural determinism: model code must not transitively reach wall-clock/global-RNG/map-order sources",
	RunProgram: runTaint,
}

// taintEdge is one static call: the callee and the call site.
type taintEdge struct {
	callee *types.Func
	site   ast.Node
}

// taintNode is one module function in the call graph.
type taintNode struct {
	fn    *types.Func
	pkg   *Package
	decl  *ast.FuncDecl
	calls []taintEdge
	// source, when non-empty, describes the direct nondeterminism in this
	// function's own body ("time.Now (wall clock)").
	source string
	// via is the first tainted callee discovered, for chain reporting.
	via *types.Func
}

func runTaint(p *ProgramPass) {
	byPath := map[string]*Package{}
	for _, pkg := range p.Pkgs {
		byPath[pkg.Path] = pkg
	}

	// Build the graph: one node per declared function with a body,
	// in deterministic (package, file, position) order.
	var order []*types.Func
	nodes := map[*types.Func]*taintNode{}
	for _, pkg := range p.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &taintNode{fn: fn, pkg: pkg, decl: fd}
				buildTaintNode(p, n, byPath)
				nodes[fn] = n
				order = append(order, fn)
			}
		}
	}

	// Propagate taint to callers until fixpoint. Iterating the sorted
	// order slice keeps the discovered witness chains — and therefore the
	// findings — identical on every run.
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			n := nodes[fn]
			if n.source != "" || n.via != nil {
				continue
			}
			for _, e := range n.calls {
				c := nodes[e.callee]
				if c != nil && (c.source != "" || c.via != nil) {
					n.via = e.callee
					changed = true
					break
				}
			}
		}
	}

	// Report at the model boundary: a call from model code into a tainted
	// function that lives outside the model scope. Sources *inside* model
	// packages are the determinism analyzer's direct findings; repeating
	// them here would double-report every such site.
	for _, fn := range order {
		n := nodes[fn]
		if !modelPackages[n.pkg.Path] {
			continue
		}
		for _, e := range n.calls {
			c := nodes[e.callee]
			if c == nil || (c.source == "" && c.via == nil) {
				continue
			}
			if modelPackages[c.pkg.Path] {
				continue
			}
			p.Reportf(n.pkg, e.site, "call into nondeterministic code: %s; model results must be a pure function of the spec — hoist the value to the caller, or annotate //spurlint:ignore taint — <why this cannot reach results>",
				taintChain(nodes, e.callee))
		}
	}
}

// buildTaintNode scans one function body for direct sources and static
// call edges into other module functions. Call sites and source sites
// covered by a taint/determinism ignore directive are dropped here, so the
// suppression stops propagation as well as reporting.
func buildTaintNode(p *ProgramPass, n *taintNode, byPath map[string]*Package) {
	info := n.pkg.Info
	var enclosing []*ast.FuncDecl
	ast.Inspect(n.decl, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncDecl:
			enclosing = append(enclosing, node)
		case *ast.CallExpr:
			callee := staticCallee(info, node)
			if callee == nil {
				return true
			}
			if desc := stdlibSource(callee); desc != "" {
				if n.source == "" && !p.sourceSuppressed(n.pkg, node.Pos(), "taint", "determinism") {
					n.source = desc
				}
				return true
			}
			if cp := callee.Pkg(); cp != nil && byPath[cp.Path()] != nil {
				if !p.sourceSuppressed(n.pkg, node.Pos(), "taint") {
					n.calls = append(n.calls, taintEdge{callee: callee, site: node})
				}
			}
		case *ast.RangeStmt:
			if n.source != "" {
				return true
			}
			var encl *ast.FuncDecl
			for i := len(enclosing) - 1; i >= 0; i-- {
				if contains(enclosing[i], node) {
					encl = enclosing[i]
					break
				}
			}
			if encl == nil {
				encl = n.decl
			}
			if hazard, why := mapRangeHazard(n.pkg, node, encl); hazard != nil {
				if !p.sourceSuppressed(n.pkg, hazard.Pos(), "taint", "determinism") {
					n.source = "a map iterated in nondeterministic order (" + why + ")"
				}
			}
		}
		return true
	})
}

// staticCallee resolves a call expression to the *types.Func it statically
// invokes, or nil for builtins, conversions, function values and interface
// dispatch.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Interface dispatch has a *types.Selection with an interface
		// receiver; the object is still a *types.Func but has no body
		// anywhere we can see. It resolves to a func with no node in the
		// graph, which propagation treats as untainted — the documented
		// static-call limit.
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// stdlibSource classifies fn as a direct nondeterminism source: the wall
// clock and scheduler functions of the time package, the process-global
// math/rand streams, and all of crypto/rand.
func stdlibSource(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Methods compute on values already in hand (time.Time.Sub);
		// only package-level functions observe the environment.
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			return fmt.Sprintf("time.%s (wall clock)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(fn.Name(), "New") {
			return fmt.Sprintf("%s.%s (process-global RNG)", fn.Pkg().Name(), fn.Name())
		}
	case "crypto/rand":
		return fmt.Sprintf("crypto/rand.%s (cryptographic randomness)", fn.Name())
	}
	return ""
}

// taintChain renders the witness path from fn to its nondeterminism source:
// "server.stamp → util.clock → time.Now (wall clock)".
func taintChain(nodes map[*types.Func]*taintNode, fn *types.Func) string {
	var hops []string
	for fn != nil {
		n := nodes[fn]
		if n == nil {
			break
		}
		hops = append(hops, shortFuncName(fn))
		if n.source != "" {
			hops = append(hops, n.source)
			break
		}
		fn = n.via
	}
	return strings.Join(hops, " → ")
}

// shortFuncName renders a module function compactly: pkgname.Func or
// pkgname.(*Recv).Method.
func shortFuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if pt, ok := recv.(*types.Pointer); ok {
			recv = pt.Elem()
			ptr = "*"
		}
		if named, ok := recv.(*types.Named); ok {
			name = "(" + ptr + named.Obj().Name() + ")." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}
