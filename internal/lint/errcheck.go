package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckAnalyzer forbids discarding an error return by calling a function
// as a bare statement. A hardened runner that swallows a bundle-write error
// or a server that drops an encode error reports success for work that never
// happened; every error is either handled or explicitly assigned to `_`
// (which at least names the decision at the call site).
//
// Allowed without comment, because they cannot fail meaningfully here:
//   - fmt.Print/Printf/Println, and fmt.Fprint* to os.Stdout/os.Stderr
//     (CLI chatter; the process has nowhere to report a stdout write error)
//   - methods on strings.Builder and bytes.Buffer (documented never to
//     return a non-nil error)
var ErrcheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "no discarded error returns in non-test code",
	Run:  runErrcheck,
}

func runErrcheck(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !p.returnsError(call) || p.errcheckExempt(call) {
				return true
			}
			p.Reportf(call, "result of %s includes an error that is discarded; handle it or assign it to _ explicitly", callName(call))
			return true
		})
	}
}

// returnsError reports whether the call's results include an error.
func (p *Pass) returnsError(call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call]
	if !ok {
		return false
	}
	errIface := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errIface) {
				return true
			}
		}
	default:
		return tv.Type != nil && types.Identical(tv.Type, errIface)
	}
	return false
}

func (p *Pass) errcheckExempt(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)

	if recv := sig.Recv(); recv != nil {
		return infallibleWriter(recv.Type())
	}

	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	if strings.HasPrefix(fn.Name(), "Print") {
		return true
	}
	if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		dst := unparen(call.Args[0])
		if infallibleWriter(p.TypeOf(dst)) {
			return true
		}
		if sel, isSel := dst.(*ast.SelectorExpr); isSel {
			if v, isVar := p.ObjectOf(sel.Sel).(*types.Var); isVar && v.Pkg() != nil &&
				v.Pkg().Path() == "os" && (v.Name() == "Stdout" || v.Name() == "Stderr") {
				return true
			}
		}
	}
	return false
}

// infallibleWriter reports whether t is (a pointer to) a writer documented
// never to return a non-nil error: strings.Builder and bytes.Buffer.
func infallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
