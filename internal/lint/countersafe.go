package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// CounterSafeAnalyzer guards the two arithmetic traps that have already
// bitten this codebase once (PR 2's `mb << 20` overflow):
//
//  1. Size arithmetic written as `x << 20` in runtime integer context.
//     On a 32-bit int, 2048 << 20 is zero; core.MiB does the math in 64
//     bits and range-checks the result, so all mebibyte-scale sizes must
//     go through it. Shifts whose result is an explicitly 64-bit type are
//     fine; so are shifts inside constant declarations (the compiler
//     range-checks untyped constant arithmetic exactly).
//
//  2. Conversions that silently truncate a 64-bit cycle/page/byte counter
//     to 32 bits or less in model code. Intentional wraparound (the
//     hardware counters are 32-bit by design) takes an ignore directive;
//     a conversion immediately masked to the target width is provably
//     lossy-by-intent and passes.
var CounterSafeAnalyzer = &Analyzer{
	Name: "countersafe",
	Doc:  "size math must use core.MiB; no silent 32-bit truncation of 64-bit counters",
	Run:  runCounterSafe,
}

// sizeShift is the smallest shift treated as size arithmetic (1 << 20 = MiB).
const sizeShift = 20

func runCounterSafe(p *Pass) {
	for _, f := range p.Pkg.Files {
		walkWithParents(f, func(n ast.Node, parents []ast.Node) {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				p.checkSizeShift(n, parents)
			case *ast.CallExpr:
				if p.InModelScope() {
					p.checkTruncation(n, parents)
				}
			}
		})
	}
}

func (p *Pass) checkSizeShift(be *ast.BinaryExpr, parents []ast.Node) {
	if be.Op != token.SHL {
		return
	}
	rhs, ok := p.Pkg.Info.Types[be.Y]
	if !ok || rhs.Value == nil {
		return
	}
	shift, exact := constant.Int64Val(constant.ToInt(rhs.Value))
	if !exact || shift < sizeShift {
		return
	}
	tv, ok := p.Pkg.Info.Types[be]
	if !ok {
		return
	}
	if tv.Value != nil {
		// Constant shift: the compiler evaluates it in arbitrary
		// precision and rejects overflow, so inside a const declaration
		// it is exactly safe. Outside one, an integer-context literal
		// like `cfg.MemoryBytes = 8 << 20` is the idiom the MiB helper
		// replaces — keep all byte-size math in one audited place. Only
		// a literal 20 or 30 shift is a size unit: `1 << 24` flips a
		// tag bit and `1 << addr.SegmentShift` is address geometry, and
		// neither should launder through MiB.
		if insideConstDecl(parents) {
			return
		}
		if lit, isLit := unparen(be.Y).(*ast.BasicLit); !isLit || (lit.Value != "20" && lit.Value != "30") {
			return
		}
		if !isIntish(tv.Type) {
			return
		}
		p.Reportf(be, "size literal `%s`: write core.MiB(n) (spur.MiB in examples) so every byte-size computation is 64-bit and range-checked", render(be))
		return
	}
	// Runtime shift: `mb << 20` silently overflows 32-bit ints.
	if is64BitInt(tv.Type) {
		return
	}
	p.Reportf(be, "runtime size shift `%s` evaluates in %s and can overflow on 32-bit ints (2048<<20 == 0); use core.MiB", render(be), tv.Type)
}

func (p *Pass) checkTruncation(call *ast.CallExpr, parents []ast.Node) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !isNarrowInt(tv.Type) {
		return
	}
	arg, ok := p.Pkg.Info.Types[call.Args[0]]
	if !ok || arg.Value != nil {
		return
	}
	switch basicKind(arg.Type) {
	case types.Int, types.Int64, types.Uint64, types.Uint, types.Uintptr:
	default:
		return
	}
	if maskedToWidth(p, call, parents, tv.Type) {
		return
	}
	p.Reportf(call, "conversion %s(%s) truncates a %s to %s; widen the destination, or annotate the intentional wraparound with //spurlint:ignore countersafe — <reason>",
		tv.Type, render(call.Args[0]), arg.Type, tv.Type)
}

// maskedToWidth reports whether the conversion's result is immediately ANDed
// with a constant that fits the target width — the explicit
// "keep the low bits" idiom (uint32(g) & SegmentMask), which cannot lose
// information the author did not name.
func maskedToWidth(p *Pass, call *ast.CallExpr, parents []ast.Node, target types.Type) bool {
	for i := len(parents) - 1; i >= 0; i-- {
		switch parent := parents[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.BinaryExpr:
			if parent.Op != token.AND {
				return false
			}
			other := parent.X
			if other == call || contains(other, call) {
				other = parent.Y
			}
			tv, ok := p.Pkg.Info.Types[other]
			return ok && tv.Value != nil
		default:
			return false
		}
	}
	return false
}

func contains(outer ast.Node, inner ast.Node) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

// insideConstDecl reports whether the node sits in a `const` declaration.
func insideConstDecl(parents []ast.Node) bool {
	for _, n := range parents {
		if gd, ok := n.(*ast.GenDecl); ok && gd.Tok == token.CONST {
			return true
		}
	}
	return false
}

// walkWithParents traverses the AST depth-first, handing each node the stack
// of its ancestors (outermost first).
func walkWithParents(root ast.Node, fn func(n ast.Node, parents []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}
