package lint

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseIgnore hammers the directive parser with arbitrary text after
// the //spurlint:ignore prefix. The invariants: it never panics, and when
// it accepts a directive the check names a real analyzer and the reason is
// non-empty — a suppression is a recorded decision, so "accepted but
// reason-free" would let annotations rot into bare escape hatches.
func FuzzParseIgnore(f *testing.F) {
	seeds := []string{
		" determinism — deadline for the serving harness",
		" statecomplete -- derived from config",
		" taint - never reaches results",
		" lockconfine value is startup-only",
		" determinism —",
		" determinism",
		"",
		"   ",
		" nosuchcheck — reason",
		" determinism\t—\tweird whitespace",
		" determinism — — double dash",
		" determinism -—- mixed separators",
		"\x00determinism — null",
		" determinism — " + strings.Repeat("long ", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}

	valid := map[string]bool{}
	for _, a := range Analyzers() {
		valid[a.Name] = true
	}

	f.Fuzz(func(t *testing.T, rest string) {
		d, err := parseIgnore(rest, valid)
		if err != nil {
			if d != nil {
				t.Fatalf("parseIgnore(%q) returned both a directive and an error", rest)
			}
			return
		}
		if d == nil {
			t.Fatalf("parseIgnore(%q) returned neither directive nor error", rest)
		}
		if !valid[d.check] {
			t.Fatalf("parseIgnore(%q) accepted unknown check %q", rest, d.check)
		}
		if strings.TrimSpace(d.reason) == "" {
			t.Fatalf("parseIgnore(%q) accepted an empty reason", rest)
		}
		if utf8.ValidString(rest) && !strings.Contains(rest, d.check) {
			t.Fatalf("parseIgnore(%q) invented check %q not present in input", rest, d.check)
		}
	})
}

// TestParseIgnoreRejects pins the malformed shapes the fuzzer explores:
// each stays an error (and therefore a finding at the directive site), so
// a half-written suppression can never silently succeed.
func TestParseIgnoreRejects(t *testing.T) {
	valid := map[string]bool{"determinism": true}
	for _, rest := range []string{
		"",                  // nothing at all
		"   ",               // whitespace only
		" determinism",      // no reason
		" determinism — ",   // separator but no reason
		" determinism --",   // ditto, ASCII separator
		" typo — a reason",  // unknown check
		" Determinism — x",  // case matters: check names are exact
		" determinism —\t ", // separator then whitespace
	} {
		if _, err := parseIgnore(rest, valid); err == nil {
			t.Errorf("parseIgnore(%q) = nil error, want malformed-directive error", rest)
		}
	}
}
