package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer enforces that simulation/model packages compute a pure
// function of their inputs: no wall-clock reads, no process-global or
// cryptographic randomness, and no map iteration whose order can leak into
// results. These are correctness rules, not style: the parallel engine and
// the content-addressed experiment store both assume a spec replays
// byte-identically (see DESIGN.md, "Static analysis & determinism rules").
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global randomness and order-sensitive map iteration in model packages",
	Run:  runDeterminism,
}

// forbiddenTimeFuncs are the time package functions that read or depend on
// the wall clock / scheduler. Types like time.Duration remain fine: they
// carry configuration, they don't observe the environment.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true, "Sleep": true,
}

func runDeterminism(p *Pass) {
	if !p.InModelScope() {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "crypto/rand" {
				p.Reportf(imp, "crypto/rand is nondeterministic by design; model code must draw from an explicitly seeded workload RNG")
			}
		}
		var enclosing []*ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			if fd, ok := n.(*ast.FuncDecl); ok {
				enclosing = append(enclosing, fd)
			}
			switch n := n.(type) {
			case *ast.SelectorExpr:
				p.checkSelector(n)
			case *ast.RangeStmt:
				var fd *ast.FuncDecl
				for i := len(enclosing) - 1; i >= 0; i-- {
					if contains(enclosing[i], n) {
						fd = enclosing[i]
						break
					}
				}
				p.checkMapRange(n, fd)
			}
			return true
		})
	}
}

func (p *Pass) checkSelector(sel *ast.SelectorExpr) {
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		// Methods (time.Time.After, time.Duration.Round, ...) compute on
		// values already in hand; only the package-level functions
		// observe the environment.
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTimeFuncs[fn.Name()] {
			p.Reportf(sel, "time.%s reads the wall clock; model code must be a pure function of its spec (results feed a content-addressed store)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewPCG, NewZipf, ...) take an
		// explicit seed or source and stay deterministic; the package-
		// level functions share one process-global, auto-seeded stream.
		if !strings.HasPrefix(fn.Name(), "New") {
			p.Reportf(sel, "global %s.%s shares one process-wide RNG stream; construct a seeded generator (workload.NewRNG / rand.New(rand.NewSource(seed))) instead", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange flags `range m` over a map when the loop body lets the
// (randomized) iteration order escape; see mapRangeHazard for the rules.
func (p *Pass) checkMapRange(rs *ast.RangeStmt, encl *ast.FuncDecl) {
	if hazard, why := mapRangeHazard(p.Pkg, rs, encl); hazard != nil {
		p.Reportf(hazard, "map iteration order is randomized, and this loop %s; iterate sorted keys, or annotate with //spurlint:ignore determinism — <why order cannot matter>", why)
	}
}

// mapRangeHazard inspects one range statement and returns the first node
// that lets the (randomized) map iteration order escape, with a description
// — or nil if the loop is order-independent. Hazards: writing state declared
// outside the loop, returning values built from the loop variables, sending
// on a channel, printing, or invoking a caller-supplied function with the
// loop variables. Order-independent bodies (pure lookups, building an
// unordered set) pass, as does the sorted-keys idiom itself: a body that
// only collects the keys into a slice the enclosing function then sorts.
// Shared by the per-package determinism check (which reports it directly)
// and the whole-program taint analyzer (which treats it as a taint source
// in any package).
func mapRangeHazard(pkg *Package, rs *ast.RangeStmt, encl *ast.FuncDecl) (ast.Node, string) {
	if isSortedKeyCollection(pkg, rs, encl) {
		return nil, ""
	}
	t := pkg.Info.TypeOf(rs.X)
	if t == nil {
		return nil, ""
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil, ""
	}

	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	info := pkg.Info

	declaredOutside := func(e ast.Expr) (types.Object, bool) {
		id := rootIdent(e)
		if id == nil || id.Name == "_" {
			return nil, false
		}
		obj := info.ObjectOf(id)
		if obj == nil || loopVars[obj] {
			return nil, false
		}
		// An object declared inside the loop body is per-iteration state;
		// writes to it cannot leak order.
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
			return nil, false
		}
		return obj, true
	}

	var hazard ast.Node
	var why string
	flag := func(n ast.Node, reason string) {
		if hazard == nil {
			hazard = n
			why = reason
		}
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if hazard != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if obj, ok := declaredOutside(lhs); ok {
					flag(n, "writes "+obj.Name()+" (declared outside the loop) in map order")
				}
			}
		case *ast.IncDecStmt:
			if obj, ok := declaredOutside(n.X); ok {
				flag(n, "updates "+obj.Name()+" (declared outside the loop) in map order")
			}
		case *ast.SendStmt:
			flag(n, "sends on a channel in map order")
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if referencesAny(info, res, loopVars) {
					flag(n, "returns a value built from the loop variables; which entry wins depends on map order")
				}
			}
		case *ast.CallExpr:
			if isWriterCall(info, n) {
				flag(n, "emits output in map order")
				return false
			}
			// A caller-supplied function value invoked with the loop
			// variables observes the iteration order (the Range-callback
			// pattern).
			if id, ok := n.Fun.(*ast.Ident); ok {
				if v, isVar := info.ObjectOf(id).(*types.Var); isVar && v != nil {
					for _, arg := range n.Args {
						if referencesAny(info, arg, loopVars) {
							flag(n, "passes the loop variables to "+id.Name+", exposing map order to its callee")
						}
					}
				}
			}
		}
		return hazard == nil
	})

	return hazard, why
}

// isSortedKeyCollection recognizes the first half of the sorted-keys idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Slice(keys, ...)
//
// The body must be exactly one append of loop variables into a slice, and
// the enclosing function must pass that slice to a sort.* or slices.Sort*
// call — collecting keys and then *not* sorting them is still a finding.
func isSortedKeyCollection(pkg *Package, rs *ast.RangeStmt, encl *ast.FuncDecl) bool {
	if encl == nil || len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := pkg.Info.ObjectOf(call.Fun.(*ast.Ident)).(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) < 2 {
		return false
	}
	if first, ok := call.Args[0].(*ast.Ident); !ok || pkg.Info.ObjectOf(first) != pkg.Info.ObjectOf(dst) {
		return false
	}
	obj := pkg.Info.ObjectOf(dst)
	if obj == nil {
		return false
	}

	sorted := false
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		for _, path := range []string{"sort", "slices"} {
			fn := funcIn(pkg.Info, call.Fun, path)
			if fn == nil {
				continue
			}
			switch {
			case strings.HasPrefix(fn.Name(), "Sort"), fn.Name() == "Slice", fn.Name() == "Strings", fn.Name() == "Ints":
				if id, ok := unparen(call.Args[0]).(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
					sorted = true
				}
			}
		}
		return !sorted
	})
	return sorted
}

// isWriterCall reports whether the call prints or writes output (fmt print
// family, Write*/Encode methods).
func isWriterCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	name := fn.Name()
	return fn.Type().(*types.Signature).Recv() != nil &&
		(strings.HasPrefix(name, "Write") || name == "Encode" || name == "Print")
}
