package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit of analysis.
type Package struct {
	// Path is the import path ("repro/internal/core"). Scope decisions
	// (model package? concurrency allowed?) key off it.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Info carries the go/types facts for Files.
	Info *types.Info
	// Types is the checked package object.
	Types *types.Package

	ignores *ignoreIndex
}

// Load parses and type-checks the non-test sources of every package matched
// by patterns ("./..." or directory paths), rooted at the module directory
// root. Test files and testdata directories are excluded: the checks govern
// production code, and tests legitimately use clocks, goroutines and
// unordered iteration.
func Load(fset *token.FileSet, root string, patterns []string) ([]*Package, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}

	// The source importer type-checks dependencies (stdlib and repo
	// packages alike) from source, so the suite needs no export data and
	// no dependencies beyond the standard library. It caches by path, so
	// shared dependencies are checked once.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, module, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// expandPatterns resolves the command-line patterns to package directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, pat)
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", base, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadDir parses and checks one directory; returns nil if it holds no
// non-test Go files.
func loadDir(fset *token.FileSet, imp types.Importer, module, root, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := module
	if rel != "." {
		path = module + "/" + filepath.ToSlash(rel)
	}

	pkg, info, err := Check(fset, imp, path, files)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Info: info, Types: pkg}, nil
}

// Check type-checks a set of parsed files as package path, resolving imports
// through imp. It is exported for the golden-file test harness, which checks
// fixture files under synthetic import paths.
func Check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return pkg, info, nil
}

// NewImporter returns the shared source importer used by Load, for callers
// (the test harness) that drive Check directly.
func NewImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}
