package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit of analysis.
type Package struct {
	// Path is the import path ("repro/internal/core"). Scope decisions
	// (model package? concurrency allowed?) key off it.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Info carries the go/types facts for Files.
	Info *types.Info
	// Types is the checked package object.
	Types *types.Package
	// FromModule marks packages loaded from the module tree by a Loader
	// (as opposed to fixture packages checked under synthetic paths).
	// Program-wide completeness rules — "registered state type missing" —
	// only apply to module packages, so a fixture reusing a real import
	// path for scope purposes is not obliged to redefine the real types.
	FromModule bool

	ignores *ignoreIndex
}

// Loader parses and type-checks module packages, each exactly once, and
// serves them both as analysis roots and as dependencies of one another.
//
// Before the Loader existed, every root package was type-checked twice: once
// by Load for analysis, and again — independently, from source — by the
// go/importer when some other root imported it. The Loader is itself the
// importer for module-internal paths, so "checked as a root" and "checked as
// a dependency" are the same memoized work; only stdlib imports fall through
// to the source importer (which memoizes by path on its own). One Loader
// therefore type-checks the whole program once, and every analyzer — and
// every fixture in the golden-file harness — shares that cache.
type Loader struct {
	fset     *token.FileSet
	module   string // module path from go.mod
	root     string // module root directory
	fallback types.Importer

	pkgs    map[string]*Package // memoized module packages by import path
	loading map[string]bool     // cycle guard
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(fset *token.FileSet, root string) (*Loader, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	return &Loader{
		fset:     fset,
		module:   module,
		root:     root,
		fallback: importer.ForCompiler(fset, "source", nil),
		pkgs:     map[string]*Package{},
		loading:  map[string]bool{},
	}, nil
}

// Import satisfies types.Importer: module-internal paths resolve through the
// loader's own cache (type-checking on first use), everything else through
// the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// load parses and checks the module package at the given import path,
// memoized. Returns nil (no error) for a directory with no non-test Go
// files.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.root
	if path != l.module {
		dir = filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
	}
	pkg, err := l.loadDir(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// loadDir parses and checks one directory as import path; returns nil if it
// holds no non-test Go files.
func (l *Loader) loadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	pkg, info, err := Check(l.fset, l, path, files)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Info: info, Types: pkg, FromModule: true}, nil
}

// Load parses and type-checks the non-test sources of every package matched
// by patterns ("./..." or directory paths), rooted at the module directory
// root. Test files and testdata directories are excluded: the checks govern
// production code, and tests legitimately use clocks, goroutines and
// unordered iteration. Every package is type-checked exactly once, shared
// between its role as an analysis root and as a dependency of other roots.
func Load(fset *token.FileSet, root string, patterns []string) ([]*Package, error) {
	l, err := NewLoader(fset, root)
	if err != nil {
		return nil, err
	}
	return l.Load(patterns)
}

// Load resolves patterns against the loader's module and returns the
// matched packages in sorted directory order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := expandPatterns(l.root, patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		path := l.module
		if rel != "." {
			path = l.module + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// expandPatterns resolves the command-line patterns to package directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, pat)
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: walking %s: %w", base, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Check type-checks a set of parsed files as package path, resolving imports
// through imp. It is exported for the golden-file test harness, which checks
// fixture files under synthetic import paths.
func Check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, nil, firstErr
	}
	return pkg, info, nil
}

// NewImporter returns the shared source importer used by Load, for callers
// (the test harness) that drive Check directly.
func NewImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}
