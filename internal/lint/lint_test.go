package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden-file harness. Every file in testdata is one fixture package,
// type-checked under the import path its first line names:
//
//	//spurlint:path repro/internal/cache
//
// so scope rules (model package? concurrency package?) apply exactly as they
// do to real code. Expected findings are `// want <check> "substring"`
// comments: trailing on the offending line, or standalone on the line(s)
// above, in which case the expectation applies to the next line carrying
// code or a spurlint directive. Unexpected findings and unmatched wants both
// fail the fixture.

var (
	wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]*)"`)
	pathRe = regexp.MustCompile(`(?m)^//spurlint:path (\S+)`)
)

type expect struct {
	line    int
	check   string
	substr  string
	matched bool
}

func TestFixtures(t *testing.T) {
	fset := token.NewFileSet()
	imp := NewImporter(fset)
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures under testdata")
	}
	for _, fixture := range fixtures {
		t.Run(filepath.Base(fixture), func(t *testing.T) {
			src, err := os.ReadFile(fixture)
			if err != nil {
				t.Fatal(err)
			}
			m := pathRe.FindSubmatch(src)
			if m == nil {
				t.Fatalf("%s: missing //spurlint:path header", fixture)
			}
			path := string(m[1])

			f, err := parser.ParseFile(fset, fixture, src, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			typesPkg, info, err := Check(fset, imp, path, []*ast.File{f})
			if err != nil {
				t.Fatalf("type-checking fixture: %v", err)
			}
			pkg := &Package{Path: path, Dir: "testdata", Files: []*ast.File{f}, Info: info, Types: typesPkg}

			findings := NewRunner(fset, nil).Run([]*Package{pkg})
			wants := parseWants(string(src))
			for _, fd := range findings {
				if !claim(wants, fd) {
					t.Errorf("unexpected finding: %s", fd)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("missing finding: want %s %q at %s:%d", w.check, w.substr, fixture, w.line)
				}
			}
		})
	}
}

// parseWants extracts the expectations from fixture source.
func parseWants(src string) []*expect {
	lines := strings.Split(src, "\n")
	var wants []*expect
	for i, line := range lines {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		target := i + 1 // 1-based: the want's own line
		if code := strings.TrimSpace(line[:strings.Index(line, "//")]); code == "" {
			// Standalone comment: the expectation applies to the next
			// line carrying code or a spurlint directive (directive
			// findings sit on the directive's own line).
			for j := i + 1; j < len(lines); j++ {
				s := strings.TrimSpace(lines[j])
				if s == "" {
					continue
				}
				if strings.HasPrefix(s, "//") && !strings.Contains(s, "spurlint:") {
					continue
				}
				target = j + 1
				break
			}
		}
		wants = append(wants, &expect{line: target, check: m[1], substr: m[2]})
	}
	return wants
}

// claim marks the first unmatched expectation the finding satisfies.
func claim(wants []*expect, f Finding) bool {
	for _, w := range wants {
		if !w.matched && w.line == f.Pos.Line && w.check == f.Check && strings.Contains(f.Msg, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// TestRepoClean runs the suite over the whole module and requires zero
// findings: the tree must lint clean at all times, with every deviation
// either fixed or carrying a justified ignore directive. The source importer
// type-checks the full dependency graph, so this is the slow test; -short
// skips it.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow")
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range NewRunner(fset, nil).Run(pkgs) {
		t.Errorf("%s", f)
	}
}
