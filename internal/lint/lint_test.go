package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The golden-file harness. Every file in testdata is one fixture package,
// type-checked under the import path its first line names:
//
//	//spurlint:path repro/internal/cache
//
// so scope rules (model package? concurrency package?) apply exactly as they
// do to real code. Expected findings are `// want <check> "substring"`
// comments: trailing on the offending line, or standalone on the line(s)
// above, in which case the expectation applies to the next line carrying
// code or a spurlint directive. Unexpected findings and unmatched wants both
// fail the fixture.
//
// A *directory* under testdata is one multi-package fixture: each .go file
// inside is its own package with its own //spurlint:path header, checked in
// filename order, and earlier packages are importable by later ones. The
// whole set is analyzed together, so program-wide analyzers (taint,
// statecomplete) see cross-package facts exactly as they do on the module.

var (
	wantRe = regexp.MustCompile(`// want ([a-z]+) "([^"]*)"`)
	pathRe = regexp.MustCompile(`(?m)^//spurlint:path (\S+)`)
)

type expect struct {
	file    string
	line    int
	check   string
	substr  string
	matched bool
}

func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	ran := false
	for _, e := range entries {
		name := e.Name()
		files := []string{filepath.Join("testdata", name)}
		if e.IsDir() {
			files, err = filepath.Glob(filepath.Join("testdata", name, "*.go"))
			if err != nil || len(files) == 0 {
				t.Fatalf("directory fixture %s holds no Go files", name)
			}
			sort.Strings(files)
		} else if !strings.HasSuffix(name, ".go") {
			continue
		}
		ran = true
		t.Run(name, func(t *testing.T) { runFixture(t, files) })
	}
	if !ran {
		t.Fatal("no fixtures under testdata")
	}
}

// fixtureImporter serves the packages checked earlier in the same fixture
// and defers everything else (stdlib) to the shared source importer.
type fixtureImporter struct {
	base types.Importer
	pkgs map[string]*types.Package
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	return fi.base.Import(path)
}

// runFixture type-checks the fixture files (each its own package) in order,
// runs the full suite over the set, and diffs findings against the want
// comments of every file.
func runFixture(t *testing.T, files []string) {
	fset := token.NewFileSet()
	imp := &fixtureImporter{base: NewImporter(fset), pkgs: map[string]*types.Package{}}
	var pkgs []*Package
	var wants []*expect
	for _, fixture := range files {
		src, err := os.ReadFile(fixture)
		if err != nil {
			t.Fatal(err)
		}
		m := pathRe.FindSubmatch(src)
		if m == nil {
			t.Fatalf("%s: missing //spurlint:path header", fixture)
		}
		path := string(m[1])

		f, err := parser.ParseFile(fset, fixture, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		typesPkg, info, err := Check(fset, imp, path, []*ast.File{f})
		if err != nil {
			t.Fatalf("type-checking %s: %v", fixture, err)
		}
		imp.pkgs[path] = typesPkg
		pkgs = append(pkgs, &Package{Path: path, Dir: filepath.Dir(fixture), Files: []*ast.File{f}, Info: info, Types: typesPkg})
		wants = append(wants, parseWants(filepath.Base(fixture), string(src))...)
	}

	findings := NewRunner(fset, nil).Run(pkgs)
	for _, fd := range findings {
		if !claim(wants, fd) {
			t.Errorf("unexpected finding: %s", fd)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing finding: want %s %q at %s:%d", w.check, w.substr, w.file, w.line)
		}
	}
}

// parseWants extracts the expectations from one fixture file's source.
func parseWants(file, src string) []*expect {
	lines := strings.Split(src, "\n")
	var wants []*expect
	for i, line := range lines {
		m := wantRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		target := i + 1 // 1-based: the want's own line
		if code := strings.TrimSpace(line[:strings.Index(line, "//")]); code == "" {
			// Standalone comment: the expectation applies to the next
			// line carrying code or a spurlint directive (directive
			// findings sit on the directive's own line).
			for j := i + 1; j < len(lines); j++ {
				s := strings.TrimSpace(lines[j])
				if s == "" {
					continue
				}
				if strings.HasPrefix(s, "//") && !strings.Contains(s, "spurlint:") {
					continue
				}
				target = j + 1
				break
			}
		}
		wants = append(wants, &expect{file: file, line: target, check: m[1], substr: m[2]})
	}
	return wants
}

// claim marks the first unmatched expectation the finding satisfies.
func claim(wants []*expect, f Finding) bool {
	for _, w := range wants {
		if !w.matched && w.line == f.Pos.Line && w.file == filepath.Base(f.Pos.Filename) &&
			w.check == f.Check && strings.Contains(f.Msg, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// TestRepoClean runs the suite over the whole module and requires zero
// findings: the tree must lint clean at all times, with every deviation
// either fixed or carrying a justified ignore directive. The source importer
// type-checks the full dependency graph, so this is the slow test; -short
// skips it.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is slow")
	}
	fset := token.NewFileSet()
	pkgs, err := Load(fset, filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range NewRunner(fset, nil).Run(pkgs) {
		t.Errorf("%s", f)
	}
}
