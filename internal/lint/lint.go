// Package lint is spurlint: a repo-specific static-analysis suite that turns
// the simulator's determinism and correctness conventions into checks.
//
// The whole system rests on one property: a run is a pure function of its
// canonical spec. The parallel engine replays cells in shuffled order and
// asserts byte-identical output; the experiment store content-addresses
// results by spec hash and serves them forever. Both assume that nothing in
// a model path reads the wall clock, consults a shared RNG stream, or leaks
// map iteration order into results. Nothing in the language enforces that —
// so spurlint does. See DESIGN.md, "Static analysis & determinism rules".
//
// Analyzers (each is also the <check> name the ignore directive takes):
//
//   - determinism: no wall-clock reads, global/crypto randomness, or
//     order-sensitive map iteration in simulation packages.
//   - policyexhaustive: switches on core.DirtyPolicy / core.RefPolicy cover
//     every declared constant or fail loudly in default.
//   - countersafe: size arithmetic goes through core.MiB; no silent 32-bit
//     truncation of 64-bit counters.
//   - errcheck: no discarded error returns in non-test code.
//   - goconfine: `go` statements only in packages allowed to own concurrency.
//   - hotpath: the designated probe/translate hot-path functions stay on
//     dense index-addressed structures — no map operations.
//   - taint: interprocedural determinism — the module-wide call graph is
//     walked and nondeterministic sources (wall clock, global RNG, escaping
//     map order) taint their transitive callers; a model-package call into
//     a tainted non-model function is a finding, reported with the chain.
//   - statecomplete: every mutable field of a registered state type is
//     covered by its snapshot/restore pair, or annotated with why it is
//     derived, configuration, or rebuilt by replay.
//   - lockconfine: in the concurrent packages, fields documented
//     `// guarded by mu` are only touched with that mutex held.
//
// A finding can be suppressed, with a recorded justification, by a comment
// on the offending line or the line above:
//
//	//spurlint:ignore <check> — <reason>
//
// The reason is mandatory and the check name must be one of the analyzers;
// malformed or unused directives are themselves findings, so suppressions
// cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the analyzer that raised it, and a
// human-readable message.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

// String formats the finding as file:line:col: check: message.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Msg)
}

// Analyzer is one named check. Per-package analyzers set Run and see one
// package at a time; whole-program analyzers set RunProgram and see every
// loaded package at once (the call-graph and snapshot-completeness checks
// need cross-package facts no single Pass carries). An analyzer sets one or
// the other.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Pass)
	RunProgram func(*ProgramPass)
}

// ProgramPass is the whole-program context handed to Analyzer.RunProgram:
// every package of the load, type-checked against one shared importer, so
// objects resolved in one package are identical to the same objects seen
// from another.
type ProgramPass struct {
	Pkgs     []*Package
	analyzer *Analyzer
	runner   *Runner
}

// Reportf records a finding at node's position, attributed to pkg (whose
// ignore directives govern suppression).
func (p *ProgramPass) Reportf(pkg *Package, node ast.Node, format string, args ...any) {
	p.runner.report(pkg, node.Pos(), p.analyzer.Name, fmt.Sprintf(format, args...))
}

// sourceSuppressed reports whether a would-be taint source at pos in pkg is
// covered by an ignore directive for any of the named checks, marking the
// directive used. A recorded suppression ("this clock read is a deadline,
// not model state") stops taint propagation the same way it stops the
// direct finding.
func (p *ProgramPass) sourceSuppressed(pkg *Package, pos token.Pos, checks ...string) bool {
	position := p.runner.fset.Position(pos)
	for _, c := range checks {
		if pkg.ignores.suppress(position, c) {
			return true
		}
	}
	return false
}

// Pass is the per-(analyzer, package) context handed to Analyzer.Run.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	runner   *Runner
}

// Reportf records a finding at node's position. Suppression by ignore
// directive is applied centrally by the runner.
func (p *Pass) Reportf(node ast.Node, format string, args ...any) {
	p.runner.report(p.Pkg, node.Pos(), p.analyzer.Name, fmt.Sprintf(format, args...))
}

// TypeOf returns the type of expr, or nil if untracked.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(expr)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// modelPackages are the simulation/model packages: code whose behavior must
// be a pure function of its inputs so that runs replay byte-identically.
// The server, client, parallel scheduler and CLIs live outside the model and
// may touch the clock and spawn goroutines; the model may not.
var modelPackages = map[string]bool{
	"repro":                    true,
	"repro/internal/addr":      true,
	"repro/internal/cache":     true,
	"repro/internal/coherence": true,
	"repro/internal/core":      true,
	"repro/internal/counters":  true,
	"repro/internal/machine":   true,
	"repro/internal/mem":       true,
	"repro/internal/pte":       true,
	"repro/internal/proc":      true,
	// The sampling engine replays streams and restores snapshots; a clock
	// read or map-order dependence anywhere in it breaks byte-identical
	// resume.
	"repro/internal/sample":   true,
	"repro/internal/stats":    true,
	"repro/internal/timing":   true,
	"repro/internal/trace":    true,
	"repro/internal/vm":       true,
	"repro/internal/workload": true,
	"repro/internal/xlate":    true,
}

// InModelScope reports whether the package is simulation/model code.
func (p *Pass) InModelScope() bool { return modelPackages[p.Pkg.Path] }

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		PolicyExhaustiveAnalyzer,
		CounterSafeAnalyzer,
		ErrcheckAnalyzer,
		GoConfineAnalyzer,
		HotPathAnalyzer,
		TaintAnalyzer,
		StateCompleteAnalyzer,
		LockConfineAnalyzer,
	}
}

// checkNames returns the set of valid <check> names for ignore directives.
func checkNames() map[string]bool {
	m := make(map[string]bool)
	for _, a := range Analyzers() {
		m[a.Name] = true
	}
	return m
}

// Runner runs a set of analyzers over loaded packages and collects findings.
type Runner struct {
	Analyzers []*Analyzer
	fset      *token.FileSet
	findings  []Finding
}

// NewRunner returns a runner over the given analyzers (nil means all).
func NewRunner(fset *token.FileSet, analyzers []*Analyzer) *Runner {
	if analyzers == nil {
		analyzers = Analyzers()
	}
	return &Runner{Analyzers: analyzers, fset: fset}
}

func (r *Runner) report(pkg *Package, pos token.Pos, check, msg string) {
	p := r.fset.Position(pos)
	if pkg.ignores.suppress(p, check) {
		return
	}
	r.findings = append(r.findings, Finding{Pos: p, Check: check, Msg: msg})
}

// Run analyzes every package and returns all findings sorted by position.
// Malformed and unused ignore directives are reported as check "directive".
// Per-package analyzers run first, then whole-program analyzers over the
// complete load; unused-directive hygiene runs last so a directive consumed
// by any analyzer — including a program-level one — counts as used.
func (r *Runner) Run(pkgs []*Package) []Finding {
	valid := checkNames()
	for _, pkg := range pkgs {
		pkg.ignores = collectIgnores(r.fset, pkg.Files, valid)
		for _, bad := range pkg.ignores.malformed {
			r.findings = append(r.findings, bad)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range r.Analyzers {
			if a.Run != nil {
				a.Run(&Pass{Pkg: pkg, analyzer: a, runner: r})
			}
		}
	}
	for _, a := range r.Analyzers {
		if a.RunProgram != nil {
			a.RunProgram(&ProgramPass{Pkgs: pkgs, analyzer: a, runner: r})
		}
	}
	for _, pkg := range pkgs {
		for _, d := range pkg.ignores.unused(r.Analyzers) {
			r.findings = append(r.findings, Finding{
				Pos:   d.pos,
				Check: "directive",
				Msg:   fmt.Sprintf("unused ignore directive for %q: nothing to suppress here — delete it", d.check),
			})
		}
	}
	sort.Slice(r.findings, func(i, j int) bool {
		a, b := r.findings[i], r.findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return r.findings
}

// referencesAny reports whether expr mentions any of the given objects.
func referencesAny(info *types.Info, expr ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// rootIdent unwraps selectors, indexes, stars and parens down to the base
// identifier of an assignable expression (s.images[name] -> s), or nil.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// isPkgFunc reports whether the called function is package-level function
// name in package path (e.g. "time".Now).
func isPkgFunc(info *types.Info, call *ast.CallExpr, path, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == path && fn.Name() == name
}

// funcIn returns the *types.Func a selector or identifier call resolves to
// when it belongs to package path, else nil.
func funcIn(info *types.Info, fun ast.Expr, path string) *types.Func {
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.Ident:
		id = f
	default:
		return nil
	}
	fn, ok := info.ObjectOf(id).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != path {
		return nil
	}
	return fn
}

// basicKind returns the basic kind of t's underlying type, or InvalidKind.
func basicKind(t types.Type) types.BasicKind {
	if t == nil {
		return types.Invalid
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Kind()
	}
	return types.Invalid
}

// is64BitInt reports whether t is an integer type guaranteed 64 bits wide.
func is64BitInt(t types.Type) bool {
	switch basicKind(t) {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}

// isNarrowInt reports whether t is an integer type of at most 32 bits.
func isNarrowInt(t types.Type) bool {
	switch basicKind(t) {
	case types.Int8, types.Int16, types.Int32, types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

// isIntish reports whether t is any integer type (including untyped int).
func isIntish(t types.Type) bool {
	k := basicKind(t)
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32, types.Int64,
		types.Uint, types.Uint8, types.Uint16, types.Uint32, types.Uint64,
		types.Uintptr, types.UntypedInt:
		return true
	}
	return false
}

// render formats an expression back to compact source form for messages.
func render(expr ast.Expr) string { return types.ExprString(expr) }

// describeList joins names for error messages: "A, B and C".
func describeList(names []string) string {
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0]
	}
	return strings.Join(names[:len(names)-1], ", ") + " and " + names[len(names)-1]
}
