package lint

import (
	"go/ast"
	"go/types"
)

// StateCompleteAnalyzer enforces snapshot completeness. Checkpointed sweeps
// and the sampling engine (PR 5/8) assume Snapshot/Restore cover *every*
// mutable field of machine state: a field added without a snapshot path
// does not fail a test — it resumes a machine that silently diverges from
// the run it claims to continue. This analyzer makes that a lint failure.
//
// Each registered state type (the registry below) names the functions that
// form its snapshot path and its restore path. The analyzer enumerates the
// struct's fields via go/types and requires every one to be referenced by
// each path; a field that is derived, rebuilt by stream replay, or pure
// configuration is exempted — on the record — with
//
//	//spurlint:ignore statecomplete — <why this field needs no snapshot>
//
// on its declaration line. Registered serialization records (MachineState,
// PagerState) get the mirrored check: every record field must be produced
// by the capture path and consumed by the restore path, and no record
// field may embed workload/proc generator state, which the snapshot
// contract rebuilds by replaying the stream rather than serializing.
var StateCompleteAnalyzer = &Analyzer{
	Name:       "statecomplete",
	Doc:        "every mutable field of registered state types is covered by its Snapshot/Restore pair",
	RunProgram: runStateComplete,
}

// stateFunc names one function of a snapshot or restore path: a method
// (recv set) or package-level function declared in package pkg. An empty
// pkg means "the registered type's own package".
type stateFunc struct {
	pkg  string
	recv string
	name string
}

// stateReg is one registered state type and its snapshot/restore paths.
type stateReg struct {
	pkg string // import path of the package declaring the type
	typ string // struct type name

	// snapshot and restore each list the functions that collectively must
	// reference every field (read on capture, write on restore; the
	// analyzer requires a reference, not a direction — go/types does not
	// distinguish `copy(c.tags, x)` from `x = c.tags`, and either proves
	// the author considered the field).
	snapshot []stateFunc
	restore  []stateFunc

	// record marks serialized snapshot records (the structs that travel
	// through the journal) rather than live machine state; records
	// additionally must not embed replay-rebuilt generator types.
	record bool
}

// stateRegistry is the full registration list: the machine-state types
// whose Snapshot/Restore pairs the checkpoint (PR 5) and sampling (PR 8)
// engines depend on, the machine assembly itself, and the serialization
// records. Workload and proc generator state (workload.Script, proc.
// Scheduler, ...) is deliberately NOT snapshot-registered: the snapshot
// contract rebuilds it by replaying the reference stream — a pure function
// of (spec, seed) — and the replayRebuilt list below enforces that those
// types never leak into a serialized record.
var stateRegistry = []stateReg{
	{pkg: "repro/internal/cache", typ: "Cache",
		snapshot: []stateFunc{{recv: "Cache", name: "ExportState"}},
		restore:  []stateFunc{{recv: "Cache", name: "RestoreState"}}},
	{pkg: "repro/internal/vm", typ: "Pager",
		snapshot: []stateFunc{{recv: "Pager", name: "ExportState"}},
		restore:  []stateFunc{{recv: "Pager", name: "RestoreState"}}},
	{pkg: "repro/internal/vm", typ: "PagerState", record: true,
		snapshot: []stateFunc{{recv: "Pager", name: "ExportState"}},
		restore:  []stateFunc{{recv: "Pager", name: "RestoreState"}}},
	{pkg: "repro/internal/vm", typ: "PageState", record: true,
		snapshot: []stateFunc{{recv: "Pager", name: "ExportState"}},
		restore:  []stateFunc{{recv: "Pager", name: "RestoreState"}}},
	{pkg: "repro/internal/mem", typ: "Pool",
		snapshot: []stateFunc{{recv: "Pool", name: "ExportFree"}},
		restore:  []stateFunc{{recv: "Pool", name: "RestoreFree"}}},
	{pkg: "repro/internal/counters", typ: "Set",
		snapshot: []stateFunc{{recv: "Set", name: "Mode"}, {recv: "Set", name: "HardwareSnapshot"}, {recv: "Set", name: "Snapshot"}},
		restore:  []stateFunc{{recv: "Set", name: "Restore"}, {recv: "Set", name: "SetMode"}}},
	{pkg: "repro/internal/pte", typ: "Table",
		snapshot: []stateFunc{{recv: "Table", name: "Range"}},
		restore:  []stateFunc{{recv: "Table", name: "Set"}}},
	{pkg: "repro/internal/machine", typ: "Machine",
		snapshot: []stateFunc{{pkg: "repro/internal/sample", name: "Capture"}},
		restore:  []stateFunc{{pkg: "repro/internal/sample", name: "Restore"}}},
	{pkg: "repro/internal/core", typ: "Engine",
		snapshot: []stateFunc{{pkg: "repro/internal/sample", name: "Capture"}},
		restore:  []stateFunc{{pkg: "repro/internal/sample", name: "Restore"}}},
	{pkg: "repro/internal/sample", typ: "MachineState", record: true,
		snapshot: []stateFunc{{name: "Capture"}},
		restore:  []stateFunc{{name: "Restore"}}},
}

// replayRebuilt are the generator-state types the snapshot contract
// rebuilds by replaying the workload stream. Serializing one of these into
// a snapshot record is a design error — its state is a pure function of
// (spec, seed), and carrying a copy invites divergence between the copy
// and the replay.
var replayRebuilt = map[[2]string]bool{
	{"repro/internal/workload", "Script"}:         true,
	{"repro/internal/workload", "Job"}:            true,
	{"repro/internal/workload", "SharedWorkload"}: true,
	{"repro/internal/workload", "SpriteHost"}:     true,
	{"repro/internal/workload", "RNG"}:            true,
	{"repro/internal/proc", "Scheduler"}:          true,
	{"repro/internal/proc", "Task"}:               true,
}

func runStateComplete(p *ProgramPass) {
	byPath := map[string]*Package{}
	for _, pkg := range p.Pkgs {
		byPath[pkg.Path] = pkg
	}
	for _, reg := range stateRegistry {
		pkg := byPath[reg.pkg]
		if pkg == nil {
			continue // partial load: the type's package is out of scope
		}
		named := lookupNamed(pkg, reg.typ)
		if named == nil {
			if pkg.FromModule {
				p.Reportf(pkg, pkg.Files[0].Name, "registered state type %s.%s not found; update the statecomplete registry in internal/lint if it was renamed or retired", pkg.Types.Name(), reg.typ)
			}
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			p.Reportf(pkg, pkg.Files[0].Name, "registered state type %s.%s is not a struct", pkg.Types.Name(), reg.typ)
			continue
		}

		fieldDecls := fieldDeclNodes(pkg, reg.typ)
		for _, path := range []struct {
			kind  string
			funcs []stateFunc
		}{{"snapshot", reg.snapshot}, {"restore", reg.restore}} {
			decls, names := resolveStateFuncs(p, byPath, reg, named, path.funcs)
			if len(decls) == 0 {
				continue // none of the path's packages are loaded, or all missing (reported)
			}
			refs := referencedFields(decls, named)
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if refs[f.Name()] {
					continue
				}
				node := fieldDecls[f.Name()]
				if node == nil {
					continue // embedded or synthesized; nothing to anchor to
				}
				what := "snapshotted"
				if path.kind == "restore" {
					what = "restored"
				}
				p.Reportf(pkg, node, "field %s of %s.%s is not %s by %s; a checkpoint omitting it resumes corrupt — cover it, or annotate //spurlint:ignore statecomplete — <why it is derived, config, or rebuilt by replay>",
					f.Name(), pkg.Types.Name(), reg.typ, what, describeList(names))
			}
		}

		if reg.record {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if leak := rebuiltLeak(f.Type()); leak != "" {
					if node := fieldDecls[f.Name()]; node != nil {
						p.Reportf(pkg, node, "snapshot record field %s embeds %s, which is generator state rebuilt by stream replay, never serialized (see internal/sample.MachineState)", f.Name(), leak)
					}
				}
			}
		}
	}
}

// lookupNamed finds the named type typ declared in pkg, or nil.
func lookupNamed(pkg *Package, typ string) *types.Named {
	obj := pkg.Types.Scope().Lookup(typ)
	if obj == nil {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}

// fieldDeclNodes maps field names of struct type typ to their declaring
// idents, for anchoring findings (and their suppressions) to the field's
// own source line.
func fieldDeclNodes(pkg *Package, typ string) map[string]ast.Node {
	out := map[string]ast.Node{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != typ {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					out[name.Name] = name
				}
			}
			return false
		})
	}
	return out
}

// resolveStateFuncs locates the declarations of a snapshot/restore path.
// A function whose declaring package is not loaded is skipped silently (a
// partial `spurlint ./internal/cache` run cannot see internal/sample); a
// function missing from a loaded package is a finding — the path the
// registry promises does not exist.
func resolveStateFuncs(p *ProgramPass, byPath map[string]*Package, reg stateReg, named *types.Named, funcs []stateFunc) (decls []funcDeclIn, names []string) {
	for _, sf := range funcs {
		path := sf.pkg
		if path == "" {
			path = reg.pkg
		}
		pkg := byPath[path]
		if pkg == nil {
			continue
		}
		decl := findFuncDecl(pkg, sf.recv, sf.name)
		if decl == nil {
			tpkg := byPath[reg.pkg]
			p.Reportf(tpkg, tpkg.Files[0].Name, "registered state type %s has no %s function %s in %s; snapshot coverage cannot be verified — restore it or update the statecomplete registry",
				reg.typ, pathKindName(sf, reg), funcDisplayName(sf), path)
			continue
		}
		decls = append(decls, funcDeclIn{pkg: pkg, decl: decl})
		names = append(names, funcDisplayName(sf))
	}
	return decls, names
}

func pathKindName(sf stateFunc, reg stateReg) string {
	for _, s := range reg.snapshot {
		if s == sf {
			return "snapshot"
		}
	}
	return "restore"
}

func funcDisplayName(sf stateFunc) string {
	if sf.recv != "" {
		return sf.recv + "." + sf.name
	}
	return sf.name
}

// funcDeclIn is a function declaration paired with its package's type info.
type funcDeclIn struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// findFuncDecl finds the declaration of method recv.name (or package
// function name when recv is empty) in pkg.
func findFuncDecl(pkg *Package, recv, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Body == nil {
				continue
			}
			if (fd.Recv == nil) != (recv == "") {
				continue
			}
			if recv == "" || receiverTypeName(fd) == recv {
				return fd
			}
		}
	}
	return nil
}

// receiverTypeName returns the base type name of a method receiver.
func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		case *ast.IndexExpr:
			t = tt.X
		default:
			return ""
		}
	}
}

// referencedFields returns the names of named's fields referenced anywhere
// in the given function bodies: through selectors (m.Cache), composite
// literal keys (MachineState{Refs: n}), and positional composite literals
// (which reference the first len(elts) fields).
func referencedFields(decls []funcDeclIn, named *types.Named) map[string]bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	fieldObjs := map[types.Object]string{}
	for i := 0; i < st.NumFields(); i++ {
		fieldObjs[st.Field(i)] = st.Field(i).Name()
	}
	refs := map[string]bool{}
	for _, d := range decls {
		info := d.pkg.Info
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				// Covers selector fields and keyed composite-literal
				// fields alike: go/types resolves both to the field Var.
				if name, ok := fieldObjs[info.ObjectOf(n)]; ok {
					refs[name] = true
				}
			case *ast.CompositeLit:
				t := info.TypeOf(n)
				if t == nil {
					return true
				}
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if t != named && !types.Identical(t, named) {
					return true
				}
				if len(n.Elts) > 0 {
					if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
						for i := 0; i < len(n.Elts) && i < st.NumFields(); i++ {
							refs[st.Field(i).Name()] = true
						}
					}
				}
			}
			return true
		})
	}
	return refs
}

// rebuiltLeak reports whether t mentions a replay-rebuilt generator type,
// unwrapping pointers, slices, arrays and maps; it returns the offending
// type's display name, or "".
func rebuiltLeak(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Slice:
			t = tt.Elem()
		case *types.Array:
			t = tt.Elem()
		case *types.Map:
			if leak := rebuiltLeak(tt.Key()); leak != "" {
				return leak
			}
			t = tt.Elem()
		case *types.Named:
			obj := tt.Obj()
			if obj.Pkg() != nil && replayRebuilt[[2]string{obj.Pkg().Path(), obj.Name()}] {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return ""
		default:
			return ""
		}
	}
}
