package lint

import (
	"go/ast"
	"go/types"
)

// HotPathAnalyzer pins the flat-core rewrite structurally: the per-reference
// probe/translate path runs on dense, index-addressed arrays, and a map
// operation reappearing inside one of those functions is a regression, not a
// style choice. Maps cost a hash per access where the hot path affords an
// index, and map iteration order is randomized — the exact hazards the line
// table and the chunked PTE store were rebuilt to remove. The check is
// syntactic and local to the named function bodies; helper functions a hot
// function calls are expected to live in the same file and be equally flat.
var HotPathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid map operations inside the designated probe/translate hot-path functions",
	Run:  runHotPath,
}

// hotPathFuncs names the hot-path methods per package as "Receiver.Method".
// These are the functions the engine executes for every memory reference (or
// every miss): the cache lookup/fill/flush surface, the PTE store accessors,
// and the in-cache translation unit.
var hotPathFuncs = map[string]map[string]bool{
	"repro/internal/cache": {
		"Cache.Probe":      true,
		"Cache.Fill":       true,
		"Cache.FlushBlock": true,
		"Cache.FlushPage":  true,
		"Cache.Snoop":      true,
	},
	"repro/internal/pte": {
		"Table.Lookup":     true,
		"Table.Set":        true,
		"Table.Update":     true,
		"Table.Invalidate": true,
	},
	"repro/internal/xlate": {
		"Unit.Translate":       true,
		"Unit.TranslateCached": true,
		"Unit.TranslateMiss":   true,
		"Unit.CheckPTE":        true,
		"Unit.UpdatePTE":       true,
	},
}

func runHotPath(p *Pass) {
	hot := hotPathFuncs[p.Pkg.Path]
	if hot == nil {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			name := recvTypeName(fd) + "." + fd.Name.Name
			if !hot[name] {
				continue
			}
			p.checkHotBody(name, fd.Body)
		}
	}
}

// checkHotBody flags every map operation in the body: iteration, indexing,
// delete, and construction.
func (p *Pass) checkHotBody(fn string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(p.TypeOf(n.X)) {
				p.Reportf(n, "%s is on the probe/translate hot path and must stay on dense index-addressed state; this ranges over a map (randomized order, hash per step)", fn)
			}
		case *ast.IndexExpr:
			if isMapType(p.TypeOf(n.X)) {
				p.Reportf(n, "%s is on the probe/translate hot path and must stay on dense index-addressed state; %s indexes a map (a hash per reference)", fn, render(n))
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, builtin := p.ObjectOf(id).(*types.Builtin); builtin {
					switch {
					case id.Name == "delete":
						p.Reportf(n, "%s is on the probe/translate hot path and must stay on dense index-addressed state; delete mutates a map", fn)
					case id.Name == "make" && len(n.Args) > 0 && isMapType(p.TypeOf(n.Args[0])):
						p.Reportf(n, "%s is on the probe/translate hot path and must stay on dense index-addressed state; this allocates a map", fn)
					}
				}
			}
		case *ast.CompositeLit:
			if isMapType(p.TypeOf(n)) {
				p.Reportf(n, "%s is on the probe/translate hot path and must stay on dense index-addressed state; this builds a map literal", fn)
			}
		}
		return true
	})
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// recvTypeName returns the receiver's base type name ("*Cache" -> "Cache").
func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
