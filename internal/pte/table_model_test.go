package pte

import (
	"sort"
	"testing"

	"repro/internal/addr"
)

// splitmix for the op stream.
func next(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestTableAgainstMapModel drives the chunked table and a plain sparse map
// (the structure the table used to be) with the same random stream of
// Set/Update/Invalidate/Lookup operations, then compares Len and the full
// Range enumeration. The page universe mixes dense runs (adjacent pages in
// one chunk), chunk-boundary straddles, and pages scattered across the full
// 38-bit space, so the chunk directory's edges all get exercised.
func TestTableAgainstMapModel(t *testing.T) {
	tbl := NewTable(addr.SegmentID(addr.MaxSegmentID))
	model := map[addr.GVPN]Entry{}
	state := uint64(99)

	page := func() addr.GVPN {
		r := next(&state)
		switch r % 4 {
		case 0: // dense low run
			return addr.GVPN(r % 512)
		case 1: // straddle a chunk boundary
			return addr.GVPN(chunkEntries - 8 + r%16)
		case 2: // mid-space
			return addr.GVPN((r >> 8) % (maxGVPN / 2))
		default: // anywhere in the space
			return addr.GVPN((r >> 8) % maxGVPN)
		}
	}

	for step := 0; step < 100000; step++ {
		p := page()
		switch next(&state) % 8 {
		case 0, 1, 2: // set (sometimes to zero, which deletes)
			e := Entry(next(&state) & 0xffffffff)
			if next(&state)%4 == 0 {
				e = 0
			}
			tbl.Set(p, e)
			if e == 0 {
				delete(model, p)
			} else {
				model[p] = e
			}
		case 3: // read-modify-write, as the fault handlers do
			e := tbl.Update(p, func(old Entry) Entry { return old.WithDirty(true).WithReferenced(true) })
			m := model[p].WithDirty(true).WithReferenced(true)
			if m == 0 {
				delete(model, p)
			} else {
				model[p] = m
			}
			if e != m {
				t.Fatalf("step %d: Update(%#x) = %#x, model %#x", step, uint64(p), uint32(e), uint32(m))
			}
		case 4: // invalidate
			old := tbl.Invalidate(p)
			if old != model[p] {
				t.Fatalf("step %d: Invalidate(%#x) returned %#x, model %#x",
					step, uint64(p), uint32(old), uint32(model[p]))
			}
			delete(model, p)
		default: // lookup
			if got, want := tbl.Lookup(p), model[p]; got != want {
				t.Fatalf("step %d: Lookup(%#x) = %#x, model %#x", step, uint64(p), uint32(got), uint32(want))
			}
		}
		if tbl.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, tbl.Len(), len(model))
		}
	}

	// Full enumeration: same entries, ascending page order.
	wantPages := make([]addr.GVPN, 0, len(model))
	for p := range model {
		wantPages = append(wantPages, p)
	}
	sort.Slice(wantPages, func(i, j int) bool { return wantPages[i] < wantPages[j] })
	i := 0
	tbl.Range(func(p addr.GVPN, e Entry) bool {
		if i >= len(wantPages) {
			t.Fatalf("Range produced extra entry %#x", uint64(p))
		}
		if p != wantPages[i] || e != model[p] {
			t.Fatalf("Range entry %d: (%#x,%#x), model (%#x,%#x)",
				i, uint64(p), uint32(e), uint64(wantPages[i]), uint32(model[wantPages[i]]))
		}
		i++
		return true
	})
	if i != len(wantPages) {
		t.Fatalf("Range produced %d entries, model holds %d", i, len(wantPages))
	}
}

// TestTableOutOfSpacePages pins the boundary contract: pages beyond the
// 38-bit global space have no table slot, so Lookup reads them as invalid
// and Set refuses them loudly.
func TestTableOutOfSpacePages(t *testing.T) {
	tbl := NewTable(addr.SegmentID(addr.MaxSegmentID))
	if e := tbl.Lookup(addr.GVPN(maxGVPN)); e != 0 {
		t.Errorf("out-of-space Lookup = %#x, want 0", uint32(e))
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-space Set did not panic")
		}
	}()
	tbl.Set(addr.GVPN(maxGVPN), Make(1, ProtReadWrite))
}
