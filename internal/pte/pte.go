// Package pte models SPUR page table entries and the two-level page tables
// used by the in-cache address translation mechanism [Wood86].
//
// A page table entry (Figure 3.2a of the paper) holds the physical page
// number plus six attribute fields: PR (protection, 2 bits), C (coherency),
// K (cacheable), D (page dirty bit), R (page referenced bit), and V (page
// valid bit). First-level page tables live in *global virtual* space, so
// PTEs compete with instructions and data for room in the unified cache —
// the cache doubles as a very large TLB. Second-level page tables, which map
// the pages of the first-level tables, are wired down at well-known
// addresses so the cache controller can always reach them directly.
package pte

import (
	"fmt"

	"repro/internal/addr"
)

// Prot is the two-bit page protection field.
type Prot uint8

// Protection levels. The paper's dirty-bit emulation toggles pages between
// ReadOnly and ReadWrite.
const (
	ProtNone      Prot = 0 // no access
	ProtReadOnly  Prot = 1 // reads allowed, writes fault
	ProtReadWrite Prot = 2 // reads and writes allowed
	ProtKernel    Prot = 3 // kernel-only access
)

// String returns the conventional short form of the protection level.
func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "--"
	case ProtReadOnly:
		return "RO"
	case ProtReadWrite:
		return "RW"
	case ProtKernel:
		return "KR"
	}
	return fmt.Sprintf("Prot(%d)", uint8(p))
}

// AllowsRead reports whether user reads are permitted.
func (p Prot) AllowsRead() bool { return p == ProtReadOnly || p == ProtReadWrite }

// AllowsWrite reports whether user writes are permitted.
func (p Prot) AllowsWrite() bool { return p == ProtReadWrite }

// Entry is a SPUR page table entry, packed as on the hardware:
//
//	bits 31..12  physical page number
//	bits  6..5   PR  protection
//	bit   4      C   coherency required
//	bit   3      K   cacheable
//	bit   2      D   page dirty bit
//	bit   1      R   page referenced bit
//	bit   0      V   page valid bit
type Entry uint32

const (
	bitV Entry = 1 << 0
	bitR Entry = 1 << 1
	bitD Entry = 1 << 2
	bitK Entry = 1 << 3
	bitC Entry = 1 << 4

	protShift = 5
	protMask  = 3 << protShift

	pfnShift = 12
)

// Make builds a valid, cacheable entry for the given frame and protection
// with clear dirty and reference bits.
func Make(pfn addr.PFN, prot Prot) Entry {
	return Entry(pfn)<<pfnShift | Entry(prot)<<protShift | bitK | bitV
}

// Valid reports the V bit.
func (e Entry) Valid() bool { return e&bitV != 0 }

// Referenced reports the page referenced bit R.
func (e Entry) Referenced() bool { return e&bitR != 0 }

// Dirty reports the page dirty bit D.
func (e Entry) Dirty() bool { return e&bitD != 0 }

// Cacheable reports the K bit.
func (e Entry) Cacheable() bool { return e&bitK != 0 }

// Coherent reports the C bit.
func (e Entry) Coherent() bool { return e&bitC != 0 }

// Prot returns the two-bit protection field.
func (e Entry) Prot() Prot { return Prot(e&protMask) >> protShift }

// PFN returns the physical frame number.
func (e Entry) PFN() addr.PFN { return addr.PFN(e >> pfnShift) }

// WithValid returns e with V set to v.
func (e Entry) WithValid(v bool) Entry { return e.set(bitV, v) }

// WithReferenced returns e with R set to v.
func (e Entry) WithReferenced(v bool) Entry { return e.set(bitR, v) }

// WithDirty returns e with D set to v.
func (e Entry) WithDirty(v bool) Entry { return e.set(bitD, v) }

// WithCoherent returns e with C set to v.
func (e Entry) WithCoherent(v bool) Entry { return e.set(bitC, v) }

// WithProt returns e with the protection field replaced.
func (e Entry) WithProt(p Prot) Entry {
	return e&^protMask | Entry(p)<<protShift
}

// WithPFN returns e with the frame number replaced.
func (e Entry) WithPFN(pfn addr.PFN) Entry {
	return e&(1<<pfnShift-1) | Entry(pfn)<<pfnShift
}

func (e Entry) set(bit Entry, v bool) Entry {
	if v {
		return e | bit
	}
	return e &^ bit
}

// String renders the entry in the spirit of Figure 3.2a.
func (e Entry) String() string {
	flag := func(b Entry, c byte) byte {
		if e&b != 0 {
			return c
		}
		return '-'
	}
	return fmt.Sprintf("pfn=%#x PR=%s %c%c%c%c%c",
		e.PFN(), e.Prot(),
		flag(bitC, 'C'), flag(bitK, 'K'), flag(bitD, 'D'), flag(bitR, 'R'), flag(bitV, 'V'))
}
