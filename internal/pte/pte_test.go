package pte

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestMakeDefaults(t *testing.T) {
	e := Make(0x1234, ProtReadOnly)
	if !e.Valid() {
		t.Error("Make entry not valid")
	}
	if !e.Cacheable() {
		t.Error("Make entry not cacheable")
	}
	if e.Dirty() || e.Referenced() {
		t.Error("Make entry should start clean and unreferenced")
	}
	if e.PFN() != 0x1234 {
		t.Errorf("PFN = %#x", e.PFN())
	}
	if e.Prot() != ProtReadOnly {
		t.Errorf("Prot = %v", e.Prot())
	}
}

func TestBitSettersIndependent(t *testing.T) {
	// Property: setting one field never disturbs the others.
	f := func(pfn uint32, protRaw, bits uint8) bool {
		pfn &= 1<<20 - 1
		prot := Prot(protRaw % 4)
		e := Make(addr.PFN(pfn), prot)
		e = e.WithDirty(bits&1 != 0).
			WithReferenced(bits&2 != 0).
			WithValid(bits&4 != 0).
			WithCoherent(bits&8 != 0)
		return e.PFN() == addr.PFN(pfn) &&
			e.Prot() == prot &&
			e.Dirty() == (bits&1 != 0) &&
			e.Referenced() == (bits&2 != 0) &&
			e.Valid() == (bits&4 != 0) &&
			e.Coherent() == (bits&8 != 0) &&
			e.Cacheable()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithProtAndPFN(t *testing.T) {
	e := Make(7, ProtReadOnly).WithDirty(true)
	e = e.WithProt(ProtReadWrite)
	if e.Prot() != ProtReadWrite || !e.Dirty() || e.PFN() != 7 {
		t.Errorf("WithProt disturbed entry: %v", e)
	}
	e = e.WithPFN(99)
	if e.PFN() != 99 || e.Prot() != ProtReadWrite || !e.Dirty() {
		t.Errorf("WithPFN disturbed entry: %v", e)
	}
}

func TestProtSemantics(t *testing.T) {
	if ProtNone.AllowsRead() || ProtNone.AllowsWrite() {
		t.Error("ProtNone allows access")
	}
	if !ProtReadOnly.AllowsRead() || ProtReadOnly.AllowsWrite() {
		t.Error("ProtReadOnly wrong")
	}
	if !ProtReadWrite.AllowsRead() || !ProtReadWrite.AllowsWrite() {
		t.Error("ProtReadWrite wrong")
	}
	if ProtKernel.AllowsWrite() {
		t.Error("ProtKernel should not allow user writes")
	}
}

func TestProtString(t *testing.T) {
	for p, want := range map[Prot]string{ProtNone: "--", ProtReadOnly: "RO", ProtReadWrite: "RW", ProtKernel: "KR"} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if !strings.Contains(Prot(9).String(), "9") {
		t.Error("invalid prot string")
	}
}

func TestEntryString(t *testing.T) {
	s := Make(0xab, ProtReadWrite).WithDirty(true).String()
	for _, want := range []string{"pfn=0xab", "RW", "D", "V", "K"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestTableLookupSetInvalidate(t *testing.T) {
	tbl := NewTable(200)
	p := addr.GVPN(42)
	if got := tbl.Lookup(p); got != 0 {
		t.Errorf("untouched entry = %v, want 0", got)
	}
	e := Make(5, ProtReadWrite)
	tbl.Set(p, e)
	if got := tbl.Lookup(p); got != e {
		t.Errorf("Lookup = %v, want %v", got, e)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if old := tbl.Invalidate(p); old != e {
		t.Errorf("Invalidate returned %v", old)
	}
	if tbl.Lookup(p) != 0 || tbl.Len() != 0 {
		t.Error("entry survived Invalidate")
	}
}

func TestTableSetZeroDeletes(t *testing.T) {
	tbl := NewTable(200)
	tbl.Set(1, Make(2, ProtReadOnly))
	tbl.Set(1, 0)
	if tbl.Len() != 0 {
		t.Error("Set(p, 0) should delete")
	}
}

func TestTableUpdate(t *testing.T) {
	tbl := NewTable(200)
	p := addr.GVPN(9)
	tbl.Set(p, Make(1, ProtReadOnly))
	got := tbl.Update(p, func(e Entry) Entry { return e.WithDirty(true) })
	if !got.Dirty() || !tbl.Lookup(p).Dirty() {
		t.Error("Update did not persist")
	}
}

func TestTableRange(t *testing.T) {
	tbl := NewTable(200)
	for i := 0; i < 5; i++ {
		tbl.Set(addr.GVPN(i), Make(addr.PFN(i), ProtReadOnly))
	}
	n := 0
	tbl.Range(func(addr.GVPN, Entry) bool { n++; return true })
	if n != 5 {
		t.Errorf("Range visited %d", n)
	}
	n = 0
	tbl.Range(func(addr.GVPN, Entry) bool { n++; return false })
	if n != 1 {
		t.Errorf("Range early-stop visited %d", n)
	}
}

func TestPTEAddrShiftAndConcatenate(t *testing.T) {
	tbl := NewTable(128)
	// Adjacent pages have adjacent 4-byte entries.
	a0 := tbl.PTEAddr(addr.GVPN(100))
	a1 := tbl.PTEAddr(addr.GVPN(101))
	if a1-a0 != PTESize {
		t.Errorf("adjacent PTEs %d bytes apart", a1-a0)
	}
	// The PTE address lives in the reserved segment.
	if uint64(a0)>>addr.SegmentShift != 128 {
		t.Errorf("PTE not in segment 128: %v", a0)
	}
}

func TestPTEPageAndL2Index(t *testing.T) {
	tbl := NewTable(128)
	perPage := addr.PageBytes / PTESize // 1024 entries per PTE page
	if got := tbl.L2Index(addr.GVPN(perPage*3 + 5)); got != 3 {
		t.Errorf("L2Index = %d, want 3", got)
	}
	// All entries in one PTE page share an L2 index and a PTE page.
	p0, p1 := addr.GVPN(perPage*7), addr.GVPN(perPage*7+perPage-1)
	if tbl.PTEPage(p0) != tbl.PTEPage(p1) || tbl.L2Index(p0) != tbl.L2Index(p1) {
		t.Error("entries within one PTE page disagree")
	}
	if tbl.PTEPage(p1) == tbl.PTEPage(p1+1) {
		t.Error("PTE page boundary not respected")
	}
}

func TestPTEsPerBlock(t *testing.T) {
	if PTEsPerBlock != 8 {
		t.Errorf("PTEsPerBlock = %d, want 8", PTEsPerBlock)
	}
}

func TestFormatMentionsAllFields(t *testing.T) {
	s := Format()
	for _, f := range []string{"PR", "C", "K", "D", "R", "V", "Physical Page Number"} {
		if !strings.Contains(s, f) {
			t.Errorf("Format() missing %q", f)
		}
	}
}
