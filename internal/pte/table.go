package pte

import (
	"fmt"
	"sort"

	"repro/internal/addr"
)

// PTESize is the size of one packed entry in bytes.
const PTESize = 4

// PTEsPerBlock is how many entries share one cache block. Because PTEs are
// cached like ordinary data, a miss on one PTE brings its seven neighbours
// into the cache with it.
const PTEsPerBlock = addr.BlockBytes / PTESize

// Table is the two-level page table for the global virtual space.
//
// The first level is (logically) a linear array of entries indexed by global
// virtual page number, itself living in global virtual space inside a
// reserved segment: the cache controller finds the PTE for page p at virtual
// address PTEAddr(p) by a shift-and-concatenate. The second level maps the
// pages of that array and is wired in physical memory; Table exposes the
// second-level address computation so the translation unit can account for
// its accesses, and keeps the first-level contents in a sparse map (the
// simulator never instantiates the 256 MB linear array).
type Table struct {
	seg     addr.SegmentID // reserved segment holding the first-level array
	entries map[addr.GVPN]Entry
}

// NewTable returns an empty page table whose first-level array lives in
// segment seg. The segment must not be used for anything else.
func NewTable(seg addr.SegmentID) *Table {
	return &Table{seg: seg, entries: make(map[addr.GVPN]Entry)}
}

// Segment returns the reserved PTE segment.
func (t *Table) Segment() addr.SegmentID { return t.seg }

// PTEAddr returns the global virtual address of the first-level entry for
// page p: the shift-and-concatenate circuit of the SPUR cache controller.
func (t *Table) PTEAddr(p addr.GVPN) addr.GVA {
	return addr.Global(t.seg, uint64(p)*PTESize)
}

// PTEPage returns the global virtual page of the first-level table that
// holds the entry for p. Used to decide which second-level entry maps it.
func (t *Table) PTEPage(p addr.GVPN) addr.GVPN {
	return t.PTEAddr(p).Page()
}

// L2Index returns the index of the wired second-level entry that maps the
// first-level page holding p's entry.
func (t *Table) L2Index(p addr.GVPN) uint64 {
	return uint64(p) / (addr.PageBytes / PTESize)
}

// Lookup returns the entry for page p. A page that has never been entered
// reads as an all-zero (invalid) entry, exactly like untouched page-table
// memory.
func (t *Table) Lookup(p addr.GVPN) Entry {
	return t.entries[p]
}

// Set stores the entry for page p.
func (t *Table) Set(p addr.GVPN, e Entry) {
	if e == 0 {
		delete(t.entries, p)
		return
	}
	t.entries[p] = e
}

// Update applies fn to the entry for page p and stores the result, returning
// the new value. This models the software fault handler's read-modify-write
// of the PTE.
func (t *Table) Update(p addr.GVPN, fn func(Entry) Entry) Entry {
	e := fn(t.entries[p])
	t.Set(p, e)
	return e
}

// Invalidate clears the entry for page p, returning the old value.
func (t *Table) Invalidate(p addr.GVPN) Entry {
	old := t.entries[p]
	delete(t.entries, p)
	return old
}

// Len returns the number of valid (non-zero) entries.
func (t *Table) Len() int { return len(t.entries) }

// Range calls fn for every non-zero entry until fn returns false, in
// ascending page order. The sparse map's iteration order is randomized per
// range statement; exposing it to callers would let auditors, dumps and
// page-out scans observe a different entry order on every run, breaking the
// byte-identical-replay contract the experiment store depends on. Sorting
// costs O(n log n) on a structure that is never on the per-reference hot
// path (Lookup/Set/Update are direct map operations).
func (t *Table) Range(fn func(addr.GVPN, Entry) bool) {
	pages := make([]addr.GVPN, 0, len(t.entries))
	for p := range t.entries {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, p := range pages {
		if !fn(p, t.entries[p]) {
			return
		}
	}
}

// Format describes the entry layout (Figure 3.2a) as text, for cmd/tables.
func Format() string {
	return `SPUR Page Table Entry Format (Figure 3.2a)
  31                     12  6 5 4 3 2 1 0
 +--------------------------+---+-+-+-+-+-+
 |   Physical Page Number   |PR |C|K|D|R|V|
 +--------------------------+---+-+-+-+-+-+
  PR = Protection (2 bits)   C = Coherency   K = Cacheable
  D = Page Dirty Bit         R = Page Referenced Bit        V = Page Valid Bit`
}

// CheckSegmentFits panics if the first-level array cannot fit in one
// segment; with 38-bit global addresses and 4-byte entries it always can,
// and this guard documents the invariant the address computation relies on.
func CheckSegmentFits() {
	maxGVPN := uint64(1) << (addr.GlobalBits - addr.PageShift)
	if maxGVPN*PTESize > 1<<addr.SegmentShift {
		panic(fmt.Sprintf("pte: first-level table (%d bytes) exceeds a segment", maxGVPN*PTESize))
	}
}

func init() { CheckSegmentFits() }
