package pte

import (
	"fmt"

	"repro/internal/addr"
)

// PTESize is the size of one packed entry in bytes.
const PTESize = 4

// PTEsPerBlock is how many entries share one cache block. Because PTEs are
// cached like ordinary data, a miss on one PTE brings its seven neighbours
// into the cache with it.
const PTEsPerBlock = addr.BlockBytes / PTESize

// The first-level array is stored as a directory of fixed-size chunks,
// allocated on first write: a dense paged image of the logical linear array.
// Lookup, Set and Update — on the path of every cache miss — are then two
// array indexings, with no hashing and no map iteration anywhere near the
// hot path, and Range walks the chunks in address order so iteration is
// deterministic by construction rather than by sorting.
const (
	// chunkShift gives 4096 entries (16 KB) per chunk: one chunk spans
	// 16 MB of mapped virtual memory, so even the largest sweeps touch a
	// handful of chunks while the directory stays small.
	chunkShift   = 12
	chunkEntries = 1 << chunkShift
	chunkMask    = chunkEntries - 1
	// maxGVPN bounds the global page number: 38-bit global addresses over
	// 4 KB pages. The directory covers the whole space.
	maxGVPN   = 1 << (addr.GlobalBits - addr.PageShift)
	numChunks = maxGVPN / chunkEntries
	// The chunk directory is itself two-level: a flat [numChunks]*chunk
	// array would be 128 KB of pointers embedded in every Table — zeroed
	// at construction and walked by every GC scan, which dominated the
	// cost of short-lived machines (every micro-scenario and model test
	// builds one). Splitting it 128×128 keeps the embedded top level at
	// 1 KB and allocates mid nodes only for the address ranges actually
	// mapped, at the price of one extra dependent load per Lookup.
	dirShift   = 7
	dirEntries = 1 << dirShift
	dirMask    = dirEntries - 1
	numDirs    = numChunks / dirEntries
)

type chunk [chunkEntries]Entry

type chunkDir [dirEntries]*chunk

// Table is the two-level page table for the global virtual space.
//
// The first level is (logically) a linear array of entries indexed by global
// virtual page number, itself living in global virtual space inside a
// reserved segment: the cache controller finds the PTE for page p at virtual
// address PTEAddr(p) by a shift-and-concatenate. The second level maps the
// pages of that array and is wired in physical memory; Table exposes the
// second-level address computation so the translation unit can account for
// its accesses, and materializes the first-level contents chunk by chunk as
// pages are entered (the simulator never instantiates the full 256 MB
// array, but what it does instantiate is flat).
type Table struct {
	//spurlint:ignore statecomplete — construction-time configuration (NewTable), not mutated afterwards
	seg  addr.SegmentID // reserved segment holding the first-level array
	dirs [numDirs]*chunkDir
	//spurlint:ignore statecomplete — derived count of non-zero entries; Set maintains it while restoring
	n int // count of non-zero entries
}

// NewTable returns an empty page table whose first-level array lives in
// segment seg. The segment must not be used for anything else.
func NewTable(seg addr.SegmentID) *Table {
	return &Table{seg: seg}
}

// Segment returns the reserved PTE segment.
func (t *Table) Segment() addr.SegmentID { return t.seg }

// PTEAddr returns the global virtual address of the first-level entry for
// page p: the shift-and-concatenate circuit of the SPUR cache controller.
func (t *Table) PTEAddr(p addr.GVPN) addr.GVA {
	return addr.Global(t.seg, uint64(p)*PTESize)
}

// PTEPage returns the global virtual page of the first-level table that
// holds the entry for p. Used to decide which second-level entry maps it.
func (t *Table) PTEPage(p addr.GVPN) addr.GVPN {
	return t.PTEAddr(p).Page()
}

// L2Index returns the index of the wired second-level entry that maps the
// first-level page holding p's entry.
func (t *Table) L2Index(p addr.GVPN) uint64 {
	return uint64(p) / (addr.PageBytes / PTESize)
}

// Lookup returns the entry for page p. A page that has never been entered
// reads as an all-zero (invalid) entry, exactly like untouched page-table
// memory. A page number outside the 38-bit global space has no table slot
// and reads as invalid too.
func (t *Table) Lookup(p addr.GVPN) Entry {
	ci := uint64(p) >> chunkShift
	if ci >= numChunks {
		return 0
	}
	d := t.dirs[ci>>dirShift]
	if d == nil {
		return 0
	}
	c := d[ci&dirMask]
	if c == nil {
		return 0
	}
	return c[uint64(p)&chunkMask]
}

// Set stores the entry for page p. Setting an entry for a page outside the
// global space is a hard error: no address computation can have produced it,
// so it means a corrupt caller, and storing it silently would make Lookup
// lie about table contents.
func (t *Table) Set(p addr.GVPN, e Entry) {
	ci := uint64(p) >> chunkShift
	if ci >= numChunks {
		panic(fmt.Sprintf("pte: page %#x outside the %d-bit global space", uint64(p), addr.GlobalBits))
	}
	d := t.dirs[ci>>dirShift]
	if d == nil {
		if e == 0 {
			return // clearing an entry that was never set
		}
		d = new(chunkDir)
		t.dirs[ci>>dirShift] = d
	}
	c := d[ci&dirMask]
	if c == nil {
		if e == 0 {
			return // clearing an entry that was never set
		}
		c = new(chunk)
		d[ci&dirMask] = c
	}
	old := c[uint64(p)&chunkMask]
	c[uint64(p)&chunkMask] = e
	switch {
	case old == 0 && e != 0:
		t.n++
	case old != 0 && e == 0:
		t.n--
	}
}

// Update applies fn to the entry for page p and stores the result, returning
// the new value. This models the software fault handler's read-modify-write
// of the PTE.
func (t *Table) Update(p addr.GVPN, fn func(Entry) Entry) Entry {
	e := fn(t.Lookup(p))
	t.Set(p, e)
	return e
}

// Invalidate clears the entry for page p, returning the old value.
func (t *Table) Invalidate(p addr.GVPN) Entry {
	old := t.Lookup(p)
	if old != 0 {
		t.Set(p, 0)
	}
	return old
}

// Len returns the number of valid (non-zero) entries.
func (t *Table) Len() int { return t.n }

// Range calls fn for every non-zero entry until fn returns false, in
// ascending page order. The chunked array iterates in address order by
// construction, so auditors, dumps and page-out scans observe the same
// entry order on every run — the byte-identical-replay contract the
// experiment store depends on — without the sort the old sparse map needed.
func (t *Table) Range(fn func(addr.GVPN, Entry) bool) {
	for di, d := range t.dirs {
		if d == nil {
			continue
		}
		for cj, c := range d {
			if c == nil {
				continue
			}
			base := addr.GVPN(uint64(di*dirEntries+cj) << chunkShift)
			for i, e := range c {
				if e == 0 {
					continue
				}
				if !fn(base+addr.GVPN(i), e) {
					return
				}
			}
		}
	}
}

// Format describes the entry layout (Figure 3.2a) as text, for cmd/tables.
func Format() string {
	return `SPUR Page Table Entry Format (Figure 3.2a)
  31                     12  6 5 4 3 2 1 0
 +--------------------------+---+-+-+-+-+-+
 |   Physical Page Number   |PR |C|K|D|R|V|
 +--------------------------+---+-+-+-+-+-+
  PR = Protection (2 bits)   C = Coherency   K = Cacheable
  D = Page Dirty Bit         R = Page Referenced Bit        V = Page Valid Bit`
}

// CheckSegmentFits panics if the first-level array cannot fit in one
// segment; with 38-bit global addresses and 4-byte entries it always can,
// and this guard documents the invariant the address computation relies on.
func CheckSegmentFits() {
	if uint64(maxGVPN)*PTESize > 1<<addr.SegmentShift {
		panic(fmt.Sprintf("pte: first-level table (%d bytes) exceeds a segment", uint64(maxGVPN)*PTESize))
	}
}

func init() { CheckSegmentFits() }
