package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// This file is the disk half of the fault plane: an injectable seam under
// the journal's and store's durability boundaries (create, write, fsync,
// rename, directory sync, read) that can return ENOSPC or EIO — including
// short writes that land only a prefix of the bytes — on a deterministic
// schedule. The journal and store consult the globally armed injector at
// every boundary, so a full-disk or dying-disk drill needs no test hooks in
// the calling code.

// DiskOp names one durability boundary the disk injector can fail.
type DiskOp int

const (
	// DiskWrite is a file write (journal frames, temp-file bodies). A rule
	// with Partial > 0 lands that many bytes before failing — a short
	// write, the way a filling disk actually fails.
	DiskWrite DiskOp = iota
	// DiskSync is an fsync, of a file or of a parent directory.
	DiskSync
	// DiskRename is the atomic-replace rename.
	DiskRename
	// DiskCreate is file creation (journals, temp files).
	DiskCreate
	// DiskRead is a blob or journal read — a sector gone bad.
	DiskRead

	NumDiskOps // number of defined disk ops
)

var diskOpNames = [NumDiskOps]string{"write", "sync", "rename", "create", "read"}

// String returns the short mnemonic for the op.
func (op DiskOp) String() string {
	if op < 0 || op >= NumDiskOps {
		return fmt.Sprintf("diskop(%d)", int(op))
	}
	return diskOpNames[op]
}

// ParseDiskOp resolves a mnemonic (as printed by String) to its DiskOp.
func ParseDiskOp(s string) (DiskOp, error) {
	for op, name := range diskOpNames {
		if s == name {
			return DiskOp(op), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown disk op %q", s)
}

// DiskRule schedules one injected disk error against matching operations.
type DiskRule struct {
	// Op selects the boundary to fail.
	Op DiskOp `json:"op"`
	// Path, when non-empty, restricts the rule to paths containing it as
	// a substring, so a drill can fill one node's disk and not the
	// harness's own files.
	Path string `json:"path,omitempty"`
	// Err names the errno to inject: "enospc" or "eio" (the default).
	Err string `json:"err,omitempty"`
	// Every is the cadence: one fault per Every matching operations.
	// Zero disables the rule.
	Every uint64 `json:"every"`
	// Seed, when nonzero, spreads the faults pseudo-randomly at rate
	// 1/Every from a splitmix64 stream.
	Seed uint64 `json:"seed,omitempty"`
	// After skips the first After matching operations.
	After uint64 `json:"after,omitempty"`
	// Max bounds the total injections from this rule; zero is unlimited.
	Max uint64 `json:"max,omitempty"`
	// Partial, for DiskWrite, is how many bytes land before the failure
	// (clamped to the write's length); zero fails before any byte lands.
	Partial int `json:"partial,omitempty"`
}

// DiskRecord is one disk fault that actually fired.
type DiskRecord struct {
	Rule int    `json:"rule"`
	Op   DiskOp `json:"op"`
	Path string `json:"path"`
	Call uint64 `json:"call"`
}

type diskRule struct {
	rule  DiskRule
	seen  uint64 // matching operations offered
	fired uint64 // faults injected
	state uint64 // splitmix64 state (seeded rules)
}

// DiskInjector makes the injection decisions for the disk seam. A nil
// *DiskInjector is valid and injects nothing. It locks internally: the
// journal and store are written to from many goroutines.
type DiskInjector struct {
	mu    sync.Mutex
	rules []*diskRule  // guarded by mu
	log   []DiskRecord // guarded by mu
}

// NewDisk builds a disk injector from the given rules.
func NewDisk(rules ...DiskRule) *DiskInjector {
	in := &DiskInjector{}
	in.SetRules(rules...)
	return in
}

// SetRules replaces the rule set and resets all counters; the injection log
// is kept so a whole drill stays auditable.
func (in *DiskInjector) SetRules(rules ...DiskRule) {
	if in == nil {
		return
	}
	rs := make([]*diskRule, 0, len(rules))
	for _, r := range rules {
		if r.Op < 0 || r.Op >= NumDiskOps {
			panic(fmt.Sprintf("faultinject: bad disk op %d", int(r.Op)))
		}
		if r.Err != "" && r.Err != "enospc" && r.Err != "eio" {
			panic(fmt.Sprintf("faultinject: bad disk errno %q", r.Err))
		}
		rs = append(rs, &diskRule{rule: r, state: r.Seed})
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = rs
}

// DiskLog returns the disk injection record so far (capped at 4096).
func (in *DiskInjector) DiskLog() []DiskRecord {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]DiskRecord(nil), in.log...)
}

// check offers every rule one matching operation and returns the first
// fault that fires: the injected error and, for short writes, how many
// bytes to land first.
func (in *DiskInjector) check(op DiskOp, path string) (partial int, err error) {
	if in == nil {
		return 0, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.rules {
		if r.rule.Every == 0 || r.rule.Op != op {
			continue
		}
		if r.rule.Path != "" && !strings.Contains(path, r.rule.Path) {
			continue
		}
		r.seen++
		if r.seen <= r.rule.After {
			continue
		}
		if r.rule.Max > 0 && r.fired >= r.rule.Max {
			continue
		}
		var fire bool
		if r.rule.Seed != 0 {
			fire = splitmix(&r.state)%r.rule.Every == 0
		} else {
			fire = (r.seen-r.rule.After)%r.rule.Every == 0
		}
		if !fire {
			continue
		}
		r.fired++
		if len(in.log) < logCap {
			in.log = append(in.log, DiskRecord{Rule: i, Op: op, Path: path, Call: r.seen})
		}
		errno := syscall.EIO
		if r.rule.Err == "enospc" {
			errno = syscall.ENOSPC
		}
		return r.rule.Partial, fmt.Errorf("faultinject: injected %s on %s %s: %w",
			diskErrName(errno), op, path, errno)
	}
	return 0, nil
}

func diskErrName(errno syscall.Errno) string {
	if errno == syscall.ENOSPC {
		return "ENOSPC"
	}
	return "EIO"
}

// The armed disk injector is process-global, like the crash plane: the
// journal and store are deep under many call paths and the drill wants to
// hit all of them without threading a handle through every constructor.
var (
	diskMu    sync.Mutex
	armedDisk *DiskInjector
)

// ArmDisk installs in as the process's disk injector, replacing any
// previous one. Arming nil disarms.
func ArmDisk(in *DiskInjector) {
	diskMu.Lock()
	defer diskMu.Unlock()
	armedDisk = in
}

// DisarmDisk removes the armed disk injector.
func DisarmDisk() { ArmDisk(nil) }

// ArmedDisk returns the currently armed disk injector, if any.
func ArmedDisk() *DiskInjector {
	diskMu.Lock()
	defer diskMu.Unlock()
	return armedDisk
}

// CheckDisk consults the armed injector at a durability boundary and
// returns the injected error, if one fires now. Callers return it exactly
// as they would the real errno from the real operation.
func CheckDisk(op DiskOp, path string) error {
	_, err := ArmedDisk().check(op, path)
	return err
}

// CheckDiskWrite consults the armed injector for a write of n bytes and
// returns how many bytes the caller should actually write plus the error to
// return afterwards. With no fault it returns (n, nil); a short write
// returns (partial, err) with partial < n so the prefix lands on disk the
// way a filling filesystem leaves it.
func CheckDiskWrite(path string, n int) (int, error) {
	partial, err := ArmedDisk().check(DiskWrite, path)
	if err == nil {
		return n, nil
	}
	if partial > n {
		partial = n
	}
	return partial, err
}

// DiskFaultEnv is the environment variable command mains consult to arm the
// disk fault plane in a subprocess; its value is a ParseDiskRules spec.
const DiskFaultEnv = "SPUR_DISKFAULTS"

// ParseDiskRules parses a disk-rule spec: rules separated by ';', each
// "<errno>@k=v,k=v,..." with errno "enospc" or "eio" and keys op (required),
// path, every (default 1), seed, after, max, partial. Example:
//
//	enospc@op=write,path=node1/store,every=1,max=3,partial=12
func ParseDiskRules(spec string) ([]DiskRule, error) {
	var rules []DiskRule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, params, _ := strings.Cut(part, "@")
		name = strings.TrimSpace(name)
		if name != "enospc" && name != "eio" {
			return nil, fmt.Errorf("faultinject: unknown disk errno %q (want enospc or eio)", name)
		}
		r := DiskRule{Err: name, Every: 1, Op: -1}
		if err := parseRuleParams(params, func(k, v string) error {
			switch k {
			case "op":
				op, err := ParseDiskOp(v)
				if err != nil {
					return err
				}
				r.Op = op
			case "path":
				r.Path = v
			case "every":
				return parseUintParam(k, v, &r.Every)
			case "seed":
				return parseUintParam(k, v, &r.Seed)
			case "after":
				return parseUintParam(k, v, &r.After)
			case "max":
				return parseUintParam(k, v, &r.Max)
			case "partial":
				n, err := strconv.Atoi(v)
				if err != nil || n < 0 {
					return fmt.Errorf("faultinject: bad partial %q", v)
				}
				r.Partial = n
			default:
				return fmt.Errorf("faultinject: unknown disk rule key %q", k)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		if r.Op < 0 {
			return nil, fmt.Errorf("faultinject: disk rule %q needs op=", part)
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// ArmDiskFromEnv arms the disk fault plane from SPUR_DISKFAULTS. An unset
// or empty variable is a no-op; a malformed value is an error so a mistyped
// drill fails loudly instead of never injecting.
func ArmDiskFromEnv() error {
	v := os.Getenv(DiskFaultEnv)
	if v == "" {
		return nil
	}
	rules, err := ParseDiskRules(v)
	if err != nil {
		return fmt.Errorf("%s: %w", DiskFaultEnv, err)
	}
	ArmDisk(NewDisk(rules...))
	return nil
}
