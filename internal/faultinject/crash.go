package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// CrashPoint names a place in the durability machinery where a planted
// crash can kill the process. The points bracket exactly the windows a
// crash-only design must survive: after a journal record reaches disk,
// between a temp file's fsync and its rename, and between the rename and
// the directory sync that makes it durable.
type CrashPoint string

const (
	// CrashPostJournalAppend fires after a journal frame has been written
	// and fsynced — the record is durable, everything after it is lost.
	CrashPostJournalAppend CrashPoint = "post-journal-append"
	// CrashPreRename fires after an atomic write's temp file is synced and
	// closed but before the rename — the destination must be untouched.
	CrashPreRename CrashPoint = "pre-rename"
	// CrashPreDirSync fires after the rename but before the parent
	// directory sync — the new name may or may not survive; either state
	// must replay cleanly.
	CrashPreDirSync CrashPoint = "pre-dir-sync"
)

var crashPoints = map[CrashPoint]bool{
	CrashPostJournalAppend: true,
	CrashPreRename:         true,
	CrashPreDirSync:        true,
}

// CrashEnv is the environment variable the command mains consult to arm a
// crash point in a subprocess: "<point>:<n>" kills the process on the n'th
// hit of the point (e.g. "post-journal-append:3").
const CrashEnv = "SPUR_CRASH"

// CrashExitCode is the exit status of a planted crash: 128+9, what a shell
// reports for a SIGKILLed process, since the crash models exactly that —
// an abrupt death with no deferred cleanup.
const CrashExitCode = 137

var (
	crashMu    sync.Mutex
	crashPoint CrashPoint
	crashAfter uint64
	crashHits  uint64
	crashExit  = func(code int) { os.Exit(code) }
)

// ArmCrash plants a crash at point p: the n'th call to Crash(p) kills the
// process (n >= 1). Arming replaces any previous plant and resets the hit
// counter.
func ArmCrash(p CrashPoint, n uint64) {
	crashMu.Lock()
	defer crashMu.Unlock()
	crashPoint, crashAfter, crashHits = p, n, 0
}

// DisarmCrash removes any planted crash.
func DisarmCrash() {
	crashMu.Lock()
	defer crashMu.Unlock()
	crashPoint, crashAfter, crashHits = "", 0, 0
}

// ArmCrashFromEnv arms a crash point from the SPUR_CRASH environment
// variable ("<point>:<n>"). An unset or empty variable is a no-op; a
// malformed value or unknown point is an error so a mistyped drill fails
// loudly instead of never crashing.
func ArmCrashFromEnv() error {
	v := os.Getenv(CrashEnv)
	if v == "" {
		return nil
	}
	point, count, ok := strings.Cut(v, ":")
	if !ok {
		return fmt.Errorf("faultinject: %s=%q: want \"<point>:<n>\"", CrashEnv, v)
	}
	p := CrashPoint(point)
	if !crashPoints[p] {
		return fmt.Errorf("faultinject: %s: unknown crash point %q", CrashEnv, point)
	}
	n, err := strconv.ParseUint(count, 10, 64)
	if err != nil || n == 0 {
		return fmt.Errorf("faultinject: %s=%q: hit count must be a positive integer", CrashEnv, v)
	}
	ArmCrash(p, n)
	return nil
}

// Crash is the crash point itself: durability-critical code calls it at
// each named point, and if a plant for that point is armed and this is the
// n'th hit, the process exits immediately with CrashExitCode — no deferred
// functions, no flushes, exactly like a SIGKILL. Unarmed points cost one
// mutex round trip.
func Crash(p CrashPoint) {
	crashMu.Lock()
	if crashPoint != p || crashAfter == 0 {
		crashMu.Unlock()
		return
	}
	crashHits++
	if crashHits < crashAfter {
		crashMu.Unlock()
		return
	}
	exit := crashExit
	crashMu.Unlock()
	exit(CrashExitCode)
}

// SetCrashExit replaces the process-exit hook and returns the previous one.
// Tests use it to observe a planted crash without dying.
func SetCrashExit(f func(code int)) func(code int) {
	crashMu.Lock()
	defer crashMu.Unlock()
	prev := crashExit
	crashExit = f
	return prev
}

// FlipBit flips a single bit of the file at path — on-disk corruption
// injection for scrubber and quarantine drills. Bit 0 is the least
// significant bit of byte 0; the bit must lie within the file.
func FlipBit(path string, bit int64) error {
	if bit < 0 {
		return fmt.Errorf("faultinject: flip bit %d: negative offset", bit)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("faultinject: flip bit: %w", err)
	}
	var b [1]byte
	off := bit / 8
	if _, err := f.ReadAt(b[:], off); err != nil {
		_ = f.Close() // already failing; best-effort cleanup
		return fmt.Errorf("faultinject: flip bit %d of %s: %w", bit, path, err)
	}
	b[0] ^= 1 << (bit % 8)
	if _, err := f.WriteAt(b[:], off); err != nil {
		_ = f.Close() // already failing; best-effort cleanup
		return fmt.Errorf("faultinject: flip bit %d of %s: %w", bit, path, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // already failing; best-effort cleanup
		return fmt.Errorf("faultinject: flip bit %d of %s: %w", bit, path, err)
	}
	return f.Close()
}
