// Package faultinject is a deterministic, seed-driven fault injector for
// the SPUR simulator. The paper's whole argument rests on trusting
// hardware-maintained state — wrapping 32-bit counters shadowed in software,
// dirty and reference bits that must never be silently lost — so the
// simulator must be able to *stop* trusting it on demand: inject a counter
// wraparound here, drop a snoop there, fail a page-in, flip a cached dirty
// bit, and watch whether the defenses (the 64-bit software shadow, the
// continuous invariant audits, the hardened runner's retry and quarantine
// machinery) catch what the hardware lost.
//
// Every injection decision is a pure function of the Plan (kind, cadence,
// seed) and the per-site opportunity counter, never of wall-clock time or
// map order, so a failing run replays bit-for-bit from its configuration.
package faultinject

import "fmt"

// Kind identifies one class of injectable fault.
type Kind int

const (
	// CounterWrap forces the 16 hardware performance counters to the edge
	// of their 32-bit range, so the next few events wrap them — the fault
	// the 64-bit software shadow in internal/counters exists to survive.
	CounterWrap Kind = iota
	// SnoopDrop makes the coherence bus skip one snooper's view of a
	// transaction, modelling a missed snoop: stale copies accumulate and
	// the coherence invariants (≤1 owner, exclusive means alone) break.
	SnoopDrop
	// SnoopDelay holds the bus busy for an extra block time on a
	// transaction, modelling backplane contention or a slow board.
	SnoopDelay
	// PageInIO fails one backing-store read transiently; the pager
	// retries with backoff and gives up (raising vm.IOError) past its
	// retry budget.
	PageInIO
	// DirtyBitFlip flips the cached page-dirty bit of the line being
	// accessed — the soft error that silently corrupts the very state
	// the paper's policies maintain.
	DirtyBitFlip
	// LineCorrupt rewrites the tag of the line being accessed to a bogus
	// address, leaving a valid line that belongs to no resident page —
	// an invariant breach the continuous audit must catch.
	LineCorrupt

	NumKinds // number of defined kinds
)

var kindNames = [NumKinds]string{
	"counter-wrap", "snoop-drop", "snoop-delay", "pagein-io",
	"dirtybit-flip", "line-corrupt",
}

// String returns the short mnemonic for the kind.
func (k Kind) String() string {
	if k < 0 || k >= NumKinds {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind resolves a mnemonic (as printed by String) to its Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if s == name {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown fault kind %q", s)
}

// Plan schedules one kind of fault. The zero Plan injects nothing.
type Plan struct {
	// Kind selects the fault class.
	Kind Kind `json:"kind"`
	// Every is the cadence: roughly one fault per Every opportunities
	// (an opportunity is one call to Fire for the kind — one reference,
	// one snooped transaction, one backing-store read attempt, …).
	// Zero disables the plan.
	Every uint64 `json:"every"`
	// Seed, when nonzero, spreads the faults pseudo-randomly at rate
	// 1/Every using a splitmix64 stream; when zero the fault fires
	// exactly on every Every'th opportunity. Either way the decision
	// sequence is fully determined by the Plan.
	Seed uint64 `json:"seed,omitempty"`
	// Max bounds the total injections of this kind; zero is unlimited.
	Max uint64 `json:"max,omitempty"`
}

// Record is one injection that actually happened: the kind and the
// opportunity index (1-based) at which it fired. The hardened runner saves
// the record log in repro bundles.
type Record struct {
	Kind        Kind   `json:"kind"`
	Opportunity uint64 `json:"opportunity"`
}

// logCap bounds the injection log kept for repro bundles.
const logCap = 4096

type rule struct {
	plan  Plan
	seen  uint64 // opportunities offered
	fired uint64 // faults injected
	state uint64 // splitmix64 state (seeded plans)
}

// Injector makes the injection decisions for one machine. A nil *Injector
// is valid and injects nothing, so components hold one unconditionally.
type Injector struct {
	rules [NumKinds]*rule
	log   []Record
}

// New builds an injector from the given plans. Two plans for the same kind
// are a configuration error and panic.
func New(plans ...Plan) *Injector {
	in := &Injector{}
	for _, p := range plans {
		if p.Kind < 0 || p.Kind >= NumKinds {
			panic(fmt.Sprintf("faultinject: bad kind %d", int(p.Kind)))
		}
		if in.rules[p.Kind] != nil {
			panic(fmt.Sprintf("faultinject: duplicate plan for %v", p.Kind))
		}
		in.rules[p.Kind] = &rule{plan: p, state: p.Seed}
	}
	return in
}

// Active reports whether any plan can still fire.
func (in *Injector) Active() bool {
	if in == nil {
		return false
	}
	for _, r := range in.rules {
		if r != nil && r.plan.Every > 0 && (r.plan.Max == 0 || r.fired < r.plan.Max) {
			return true
		}
	}
	return false
}

// Fire offers the injector one opportunity for kind k and reports whether
// the fault fires now. The decision depends only on the plan and how many
// opportunities this kind has seen.
func (in *Injector) Fire(k Kind) bool {
	if in == nil {
		return false
	}
	r := in.rules[k]
	if r == nil || r.plan.Every == 0 {
		return false
	}
	r.seen++
	if r.plan.Max > 0 && r.fired >= r.plan.Max {
		return false
	}
	var fire bool
	if r.plan.Seed != 0 {
		fire = splitmix(&r.state)%r.plan.Every == 0
	} else {
		fire = r.seen%r.plan.Every == 0
	}
	if fire {
		r.fired++
		if len(in.log) < logCap {
			in.log = append(in.log, Record{Kind: k, Opportunity: r.seen})
		}
	}
	return fire
}

// Pick returns a deterministic index in [0, n) from the kind's stream, for
// targeting (which line to corrupt, how far to skew a delay). Valid only
// immediately after Fire(k) returned true; n must be positive.
func (in *Injector) Pick(k Kind, n int) int {
	if in == nil || n <= 0 {
		return 0
	}
	r := in.rules[k]
	if r == nil {
		return 0
	}
	// Derive from the opportunity count, not the jitter stream, so Pick
	// does not disturb the firing sequence.
	x := r.seen*0x9e3779b97f4a7c15 ^ r.plan.Seed
	return int(splitmix(&x) % uint64(n))
}

// Fired returns how many faults of kind k have been injected.
func (in *Injector) Fired(k Kind) uint64 {
	if in == nil || in.rules[k] == nil {
		return 0
	}
	return in.rules[k].fired
}

// Seen returns how many opportunities kind k has been offered.
func (in *Injector) Seen(k Kind) uint64 {
	if in == nil || in.rules[k] == nil {
		return 0
	}
	return in.rules[k].seen
}

// Log returns the injection record so far (capped at 4096 entries).
func (in *Injector) Log() []Record {
	if in == nil {
		return nil
	}
	return in.log
}

// Plans returns the plans the injector was built with, in Kind order.
func (in *Injector) Plans() []Plan {
	if in == nil {
		return nil
	}
	var ps []Plan
	for _, r := range in.rules {
		if r != nil {
			ps = append(ps, r.plan)
		}
	}
	return ps
}

// Summary renders per-kind injection counts, for run reports.
func (in *Injector) Summary() string {
	if in == nil {
		return "no faults planned"
	}
	s := ""
	for _, r := range in.rules {
		if r == nil {
			continue
		}
		if s != "" {
			s += "  "
		}
		s += fmt.Sprintf("%v=%d/%d", r.plan.Kind, r.fired, r.seen)
	}
	if s == "" {
		return "no faults planned"
	}
	return s
}

// splitmix is the splitmix64 step, the same generator the workload package
// uses for reproducible streams.
func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
