package faultinject

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestOpOf(t *testing.T) {
	cases := []struct {
		method, path, want string
	}{
		{"GET", "/healthz", "healthz"},
		{"POST", "/v1/run", "run"},
		{"POST", "/v1/sweep", "sweep"},
		{"GET", "/v1/tables/3.1", "tables"},
		{"PUT", "/v1/cluster/blob/abc", "blob-put"},
		{"GET", "/v1/cluster/blob/abc", "blob-get"},
		{"GET", "/v1/cluster/keys", "keys"},
		{"POST", "/v1/cluster/scrub", "scrub"},
		{"GET", "/v1/cluster", "cluster"},
		{"GET", "/nope", "other"},
	}
	for _, c := range cases {
		if got := OpOf(c.method, c.path); got != c.want {
			t.Errorf("OpOf(%s %s) = %q, want %q", c.method, c.path, got, c.want)
		}
	}
}

func TestNetRuleCadenceAndMax(t *testing.T) {
	in := NewNet(NetRule{Fault: NetDrop, Every: 3, Max: 2})
	var fired []int
	for i := 1; i <= 12; i++ {
		if len(in.decide("peer", "run")) > 0 {
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 6 {
		t.Fatalf("fired at %v, want [3 6]", fired)
	}
	if lg := in.NetLog(); len(lg) != 2 || lg[0].Call != 3 || lg[1].Call != 6 {
		t.Fatalf("log = %+v", lg)
	}
}

func TestNetRuleAfterWindow(t *testing.T) {
	in := NewNet(NetRule{Fault: NetDrop, Every: 1, After: 4, Max: 1})
	var fired []int
	for i := 1; i <= 8; i++ {
		if len(in.decide("peer", "run")) > 0 {
			fired = append(fired, i)
		}
	}
	if len(fired) != 1 || fired[0] != 5 {
		t.Fatalf("fired at %v, want [5]", fired)
	}
}

func TestNetRuleMatching(t *testing.T) {
	in := NewNet(NetRule{Fault: NetDrop, Peer: "10.0.0.7", Op: "blob-put", Every: 1})
	if len(in.decide("10.0.0.8:7421", "blob-put")) != 0 {
		t.Fatal("wrong peer matched")
	}
	if len(in.decide("10.0.0.7:7421", "blob-get")) != 0 {
		t.Fatal("wrong op matched")
	}
	if len(in.decide("10.0.0.7:7421", "blob-put")) != 1 {
		t.Fatal("matching traffic not hit")
	}
}

func TestNetSeededSequenceReplays(t *testing.T) {
	run := func() []uint64 {
		in := NewNet(NetRule{Fault: NetDrop, Every: 4, Seed: 99})
		var calls []uint64
		for i := 0; i < 256; i++ {
			if len(in.decide("p", "run")) > 0 {
				calls = append(calls, uint64(i))
			}
		}
		return calls
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("seeded rule never fired in 256 calls")
	}
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d firings", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at firing %d: call %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTransportDropDelayBlackhole(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	}))
	defer srv.Close()

	in := NewNet(NetRule{Fault: NetDrop, Every: 2})
	c := &http.Client{Transport: in.Transport(nil)}
	if _, err := c.Get(srv.URL + "/v1/run"); err != nil {
		t.Fatalf("call 1 should pass: %v", err)
	}
	if _, err := c.Get(srv.URL + "/v1/run"); err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("call 2 should drop, got err=%v", err)
	}

	in.SetRules(NetRule{Fault: NetBlackhole, Every: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/run", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Do(req); err == nil {
		t.Fatal("black-holed call should fail")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("black hole returned before the context gave up")
	}

	in.SetRules(NetRule{Fault: NetDelay, DelayMS: 60, Every: 1})
	start = time.Now()
	if _, err := c.Get(srv.URL + "/v1/run"); err != nil {
		t.Fatalf("delayed call should still succeed: %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("delay rule held for only %v", d)
	}
}

func TestTransportDupSendsTwice(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		hits.Add(1)
		_, _ = w.Write(body)
	}))
	defer srv.Close()

	in := NewNet(NetRule{Fault: NetDup, Every: 1})
	c := &http.Client{Transport: in.Transport(nil)}
	resp, err := c.Post(srv.URL+"/v1/run", "application/json", strings.NewReader(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if string(body) != `{"x":1}` {
		t.Fatalf("second response body = %q", body)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
}

func TestTransportTruncateAndCorrupt(t *testing.T) {
	const payload = `{"status":"ok","value":12345678}`
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, payload)
	}))
	defer srv.Close()

	in := NewNet(NetRule{Fault: NetTruncate, Every: 1, Seed: 7})
	c := &http.Client{Transport: in.Transport(nil)}
	resp, err := c.Get(srv.URL + "/v1/tables/3.1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if len(body) >= len(payload) {
		t.Fatalf("truncate left %d bytes of %d", len(body), len(payload))
	}
	if resp.ContentLength != int64(len(body)) {
		t.Fatalf("Content-Length %d does not match body %d", resp.ContentLength, len(body))
	}

	in.SetRules(NetRule{Fault: NetCorrupt, Every: 1, Seed: 7})
	resp, err = c.Get(srv.URL + "/v1/tables/3.1")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if string(body) == payload {
		t.Fatal("corrupt rule left the body intact")
	}
	if len(body) != len(payload) {
		t.Fatalf("corrupt changed length %d -> %d", len(payload), len(body))
	}
	diff := 0
	for i := range body {
		diff += popcount8(body[i] ^ payload[i])
	}
	if diff != 1 {
		t.Fatalf("corrupt flipped %d bits, want exactly 1", diff)
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

func TestMiddlewareDropAndMangle(t *testing.T) {
	const payload = `{"status":"ok"}`
	in := NewNet(NetRule{Fault: NetDrop, Op: "run", Every: 2})
	h := in.Middleware("node1", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, payload)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/run")
	if err != nil {
		t.Fatalf("call 1 should pass: %v", err)
	}
	_ = resp.Body.Close()
	if _, err := http.Get(srv.URL + "/v1/run"); err == nil {
		t.Fatal("call 2 should be aborted by the listener")
	}

	in.SetRules(NetRule{Fault: NetCorrupt, Every: 1, Seed: 3})
	resp, err = http.Get(srv.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if string(body) == payload {
		t.Fatal("listener-side corrupt left the body intact")
	}
}

func TestParseNetRules(t *testing.T) {
	rules, err := ParseNetRules("blackhole@peer=127.0.0.1:7421; delay@op=run,ms=200,every=2,max=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	if rules[0].Fault != NetBlackhole || rules[0].Peer != "127.0.0.1:7421" || rules[0].Every != 1 {
		t.Fatalf("rule 0 = %+v", rules[0])
	}
	if rules[1].Fault != NetDelay || rules[1].Op != "run" || rules[1].DelayMS != 200 ||
		rules[1].Every != 2 || rules[1].Max != 5 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if _, err := ParseNetRules("explode@every=1"); err == nil {
		t.Fatal("unknown fault should error")
	}
	if _, err := ParseNetRules("drop@bogus=1"); err == nil {
		t.Fatal("unknown key should error")
	}
}

func TestNilNetInjector(t *testing.T) {
	var in *NetInjector
	if got := in.decide("p", "run"); got != nil {
		t.Fatalf("nil injector decided %v", got)
	}
	base := http.DefaultTransport
	if tr := in.Transport(base); tr != base {
		t.Fatal("nil injector should return base transport unchanged")
	}
	h := http.NewServeMux()
	if got := in.Middleware("x", h); got != http.Handler(h) {
		t.Fatal("nil injector should return handler unchanged")
	}
}
