package faultinject

import (
	"reflect"
	"testing"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if in.Active() || in.Fire(PageInIO) || in.Fired(PageInIO) != 0 {
		t.Error("nil injector injected something")
	}
	if in.Log() != nil || in.Plans() != nil {
		t.Error("nil injector has state")
	}
}

func TestModularCadence(t *testing.T) {
	in := New(Plan{Kind: DirtyBitFlip, Every: 10})
	fired := 0
	for i := 1; i <= 100; i++ {
		if in.Fire(DirtyBitFlip) {
			fired++
			if uint64(i)%10 != 0 {
				t.Fatalf("fired at opportunity %d, not a multiple of 10", i)
			}
		}
	}
	if fired != 10 || in.Fired(DirtyBitFlip) != 10 || in.Seen(DirtyBitFlip) != 100 {
		t.Fatalf("fired=%d Fired=%d Seen=%d", fired, in.Fired(DirtyBitFlip), in.Seen(DirtyBitFlip))
	}
}

func TestSeededCadenceIsReproducibleAndRoughlyRated(t *testing.T) {
	run := func() []Record {
		in := New(Plan{Kind: SnoopDrop, Every: 50, Seed: 7})
		for i := 0; i < 100_000; i++ {
			in.Fire(SnoopDrop)
		}
		return in.Log()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan produced different injection sequences")
	}
	n := len(a)
	if n < 1500 || n > 2500 { // expect ~2000 = 100k/50
		t.Errorf("seeded rate off: %d fires for expected ~2000", n)
	}
}

func TestMaxBoundsInjections(t *testing.T) {
	in := New(Plan{Kind: PageInIO, Every: 1, Max: 3})
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Fire(PageInIO) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("Max=3 but fired %d", fired)
	}
	if in.Active() {
		t.Error("exhausted plan still reports active")
	}
}

func TestUnplannedKindNeverFires(t *testing.T) {
	in := New(Plan{Kind: CounterWrap, Every: 1})
	for i := 0; i < 10; i++ {
		if in.Fire(LineCorrupt) {
			t.Fatal("unplanned kind fired")
		}
	}
	if !in.Fire(CounterWrap) {
		t.Fatal("planned Every=1 kind did not fire")
	}
}

func TestPickDeterministicInRange(t *testing.T) {
	in := New(Plan{Kind: LineCorrupt, Every: 2, Seed: 3})
	for i := 0; i < 1000; i++ {
		if in.Fire(LineCorrupt) {
			p, q := in.Pick(LineCorrupt, 97), in.Pick(LineCorrupt, 97)
			if p != q {
				t.Fatal("Pick not stable between calls")
			}
			if p < 0 || p >= 97 {
				t.Fatalf("Pick out of range: %d", p)
			}
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

func TestDuplicatePlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate plan accepted")
		}
	}()
	New(Plan{Kind: PageInIO, Every: 1}, Plan{Kind: PageInIO, Every: 2})
}
