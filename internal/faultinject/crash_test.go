package faultinject

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCrashFiresOnNthHit(t *testing.T) {
	var exits []int
	prev := SetCrashExit(func(code int) { exits = append(exits, code) })
	defer SetCrashExit(prev)
	defer DisarmCrash()

	ArmCrash(CrashPreRename, 3)
	Crash(CrashPostJournalAppend) // wrong point: never counts
	Crash(CrashPreRename)
	Crash(CrashPreRename)
	if len(exits) != 0 {
		t.Fatalf("crash fired after %d hits, want 3", len(exits))
	}
	Crash(CrashPreRename)
	if len(exits) != 1 || exits[0] != CrashExitCode {
		t.Fatalf("exits = %v, want one exit with code %d", exits, CrashExitCode)
	}

	DisarmCrash()
	Crash(CrashPreRename)
	if len(exits) != 1 {
		t.Fatalf("disarmed crash still fired")
	}
}

func TestArmCrashFromEnv(t *testing.T) {
	var exits []int
	prev := SetCrashExit(func(code int) { exits = append(exits, code) })
	defer SetCrashExit(prev)
	defer DisarmCrash()

	t.Setenv(CrashEnv, "post-journal-append:2")
	if err := ArmCrashFromEnv(); err != nil {
		t.Fatalf("ArmCrashFromEnv: %v", err)
	}
	Crash(CrashPostJournalAppend)
	Crash(CrashPostJournalAppend)
	if len(exits) != 1 {
		t.Fatalf("exits = %v, want exactly one", exits)
	}

	for _, bad := range []string{"post-journal-append", "nope:1", "pre-rename:0", "pre-rename:x"} {
		t.Setenv(CrashEnv, bad)
		if err := ArmCrashFromEnv(); err == nil {
			t.Errorf("ArmCrashFromEnv(%q) succeeded, want error", bad)
		}
	}

	t.Setenv(CrashEnv, "")
	DisarmCrash()
	if err := ArmCrashFromEnv(); err != nil {
		t.Fatalf("empty %s should be a no-op, got %v", CrashEnv, err)
	}
	Crash(CrashPostJournalAppend)
	if len(exits) != 1 {
		t.Fatalf("unarmed crash fired")
	}
}

func TestFlipBit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, []byte{0x00, 0xff}, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := FlipBit(path, 9); err != nil { // bit 1 of byte 1
		t.Fatalf("FlipBit: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x00 || got[1] != 0xfd {
		t.Fatalf("after flip: % x, want 00 fd", got)
	}
	if err := FlipBit(path, 9); err != nil {
		t.Fatalf("FlipBit back: %v", err)
	}
	got, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 0xff {
		t.Fatalf("double flip did not restore the byte: % x", got)
	}
	if err := FlipBit(path, 999); err == nil {
		t.Fatal("flipping a bit past EOF succeeded, want error")
	}
	if err := FlipBit(path, -1); err == nil {
		t.Fatal("flipping a negative bit succeeded, want error")
	}
}
