package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the network half of the fault plane: a seed-driven injector
// that mangles HTTP traffic between fleet nodes (and between clients and the
// fleet) the way real networks do — dropped connections, slow links, duplicate
// deliveries, truncated and bit-flipped bodies, and full black holes. Like the
// simulator-level Injector, every decision is a pure function of the rule set
// and per-rule opportunity counters, never of wall-clock time, so a failing
// drill replays bit-for-bit from its seed.

// NetFault identifies one class of injectable network fault.
type NetFault int

const (
	// NetDrop fails the request immediately with a transport error, as if
	// the connection was reset before any byte moved.
	NetDrop NetFault = iota
	// NetDelay holds the request for the rule's DelayMS before letting it
	// proceed — a slow peer or congested link.
	NetDelay
	// NetDup sends the request twice (client side only) and serves the
	// second response — a retransmission the receiver sees as a duplicate.
	NetDup
	// NetTruncate cuts the response body short at a deterministic point,
	// with headers rewritten to match, so the truncation is a clean
	// short-body rather than a transport error.
	NetTruncate
	// NetCorrupt flips one deterministic bit of the response body.
	NetCorrupt
	// NetBlackhole parks the request until its context gives up — the
	// packets leave and nothing ever comes back.
	NetBlackhole

	NumNetFaults // number of defined network faults
)

var netFaultNames = [NumNetFaults]string{
	"drop", "delay", "dup", "truncate", "corrupt", "blackhole",
}

// String returns the short mnemonic for the fault.
func (f NetFault) String() string {
	if f < 0 || f >= NumNetFaults {
		return fmt.Sprintf("netfault(%d)", int(f))
	}
	return netFaultNames[f]
}

// ParseNetFault resolves a mnemonic (as printed by String) to its NetFault.
func ParseNetFault(s string) (NetFault, error) {
	for f, name := range netFaultNames {
		if s == name {
			return NetFault(f), nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown network fault %q", s)
}

// NetRule schedules one network fault against matching traffic. The zero
// value of Every disables the rule (parsers default it to 1 = every call).
type NetRule struct {
	// Fault selects the fault class.
	Fault NetFault `json:"fault"`
	// Peer, when non-empty, restricts the rule to traffic whose peer label
	// contains it as a substring. On the client side the label is the
	// request's URL host; on the listener side it is the label the
	// middleware was built with (typically the node's advertised host).
	Peer string `json:"peer,omitempty"`
	// Op, when non-empty, restricts the rule to one logical operation as
	// classified by OpOf ("run", "sweep", "tables", "healthz", "blob-get",
	// "blob-put", "keys", "scrub", "cluster", "other").
	Op string `json:"op,omitempty"`
	// Every is the cadence: roughly one fault per Every matching calls.
	// Zero disables the rule.
	Every uint64 `json:"every"`
	// Seed, when nonzero, spreads the faults pseudo-randomly at rate
	// 1/Every from a splitmix64 stream; when zero the fault fires exactly
	// on every Every'th matching call.
	Seed uint64 `json:"seed,omitempty"`
	// After skips the first After matching calls before the cadence
	// starts, so a whole-run schedule can aim at a window.
	After uint64 `json:"after,omitempty"`
	// Max bounds the total injections from this rule; zero is unlimited.
	Max uint64 `json:"max,omitempty"`
	// DelayMS is how long NetDelay holds each affected request.
	DelayMS int `json:"delay_ms,omitempty"`
}

// NetRecord is one network fault that actually fired: which rule, what it
// did, to whom, and at which matching call (1-based).
type NetRecord struct {
	Rule  int      `json:"rule"`
	Fault NetFault `json:"fault"`
	Peer  string   `json:"peer"`
	Op    string   `json:"op"`
	Call  uint64   `json:"call"`
}

type netRule struct {
	rule  NetRule
	seen  uint64 // matching calls offered
	fired uint64 // faults injected
	state uint64 // splitmix64 state (seeded rules)
}

// NetInjector makes the injection decisions for one traffic endpoint. A nil
// *NetInjector is valid and injects nothing. Unlike the simulator Injector
// it locks internally, because HTTP traffic is concurrent by nature.
type NetInjector struct {
	mu    sync.Mutex
	rules []*netRule  // guarded by mu
	log   []NetRecord // guarded by mu
}

// NewNet builds a network injector from the given rules.
func NewNet(rules ...NetRule) *NetInjector {
	in := &NetInjector{}
	in.SetRules(rules...)
	return in
}

// SetRules replaces the rule set and resets all counters. Torture drivers
// use it to flip the fault schedule between rounds; the injection log is
// kept across calls so the whole run stays auditable.
func (in *NetInjector) SetRules(rules ...NetRule) {
	if in == nil {
		return
	}
	rs := make([]*netRule, 0, len(rules))
	for _, r := range rules {
		if r.Fault < 0 || r.Fault >= NumNetFaults {
			panic(fmt.Sprintf("faultinject: bad network fault %d", int(r.Fault)))
		}
		rs = append(rs, &netRule{rule: r, state: r.Seed})
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = rs
}

// NetLog returns the network injection record so far (capped at 4096
// entries across rule-set changes).
func (in *NetInjector) NetLog() []NetRecord {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]NetRecord(nil), in.log...)
}

// netDecision is one fired rule plus the deterministic draw its action
// needs (truncation point, bit to flip), taken while the lock was held so
// the acting code never touches the injector's stream again.
type netDecision struct {
	fault NetFault
	delay time.Duration
	pick  uint64
}

// decide offers every rule one matching call and returns the faults that
// fire now, in rule order.
func (in *NetInjector) decide(peer, op string) []netDecision {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []netDecision
	for i, r := range in.rules {
		if r.rule.Every == 0 {
			continue
		}
		if r.rule.Peer != "" && !strings.Contains(peer, r.rule.Peer) {
			continue
		}
		if r.rule.Op != "" && r.rule.Op != op {
			continue
		}
		r.seen++
		if r.seen <= r.rule.After {
			continue
		}
		if r.rule.Max > 0 && r.fired >= r.rule.Max {
			continue
		}
		var fire bool
		if r.rule.Seed != 0 {
			fire = splitmix(&r.state)%r.rule.Every == 0
		} else {
			fire = (r.seen-r.rule.After)%r.rule.Every == 0
		}
		if !fire {
			continue
		}
		r.fired++
		if len(in.log) < logCap {
			in.log = append(in.log, NetRecord{
				Rule: i, Fault: r.rule.Fault, Peer: peer, Op: op, Call: r.seen,
			})
		}
		// Derive the targeting draw from the call count, not the jitter
		// stream, so it does not disturb the firing sequence.
		x := r.seen*0x9e3779b97f4a7c15 ^ r.rule.Seed
		out = append(out, netDecision{
			fault: r.rule.Fault,
			delay: time.Duration(r.rule.DelayMS) * time.Millisecond,
			pick:  splitmix(&x),
		})
	}
	return out
}

// OpOf classifies a request into the logical operation names NetRule.Op
// matches against.
func OpOf(method, path string) string {
	switch {
	case path == "/healthz":
		return "healthz"
	case path == "/v1/run":
		return "run"
	case path == "/v1/sweep":
		return "sweep"
	case strings.HasPrefix(path, "/v1/tables/"):
		return "tables"
	case strings.HasPrefix(path, "/v1/cluster/blob/"):
		if method == http.MethodPut {
			return "blob-put"
		}
		return "blob-get"
	case path == "/v1/cluster/keys":
		return "keys"
	case path == "/v1/cluster/scrub":
		return "scrub"
	case path == "/v1/cluster":
		return "cluster"
	}
	return "other"
}

// Transport wraps an http.RoundTripper with the injector's client-side
// faults. A nil base uses http.DefaultTransport; a nil injector returns the
// base unchanged.
func (in *NetInjector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if in == nil {
		return base
	}
	return &netTransport{in: in, base: base}
}

type netTransport struct {
	in   *NetInjector
	base http.RoundTripper
}

func (t *netTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	op := OpOf(req.Method, req.URL.Path)
	ds := t.in.decide(req.URL.Host, op)
	if len(ds) == 0 {
		return t.base.RoundTrip(req)
	}
	ctx := req.Context()
	// Terminal faults dominate: the request never completes, whatever else
	// was scheduled for it.
	for _, d := range ds {
		switch d.fault {
		case NetBlackhole:
			<-ctx.Done()
			return nil, fmt.Errorf("faultinject: black-holed %s to %s: %w", op, req.URL.Host, ctx.Err())
		case NetDrop:
			return nil, fmt.Errorf("faultinject: dropped %s to %s", op, req.URL.Host)
		}
	}
	for _, d := range ds {
		if d.fault != NetDelay || d.delay <= 0 {
			continue
		}
		timer := time.NewTimer(d.delay)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("faultinject: delayed %s to %s: %w", op, req.URL.Host, ctx.Err())
		}
	}
	for _, d := range ds {
		if d.fault != NetDup {
			continue
		}
		// A duplicate delivery: send once, discard the answer, send again.
		// Only replayable bodies can be duplicated.
		if req.Body != nil && req.GetBody == nil {
			continue
		}
		first := req.Clone(ctx)
		if req.GetBody != nil {
			b, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("faultinject: duplicate %s to %s: %w", op, req.URL.Host, err)
			}
			first.Body = b
		}
		if resp, err := t.base.RoundTrip(first); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body) // duplicate's answer is thrown away
			_ = resp.Body.Close()                 // best-effort: response already discarded
		}
		if req.GetBody != nil {
			b, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("faultinject: duplicate %s to %s: %w", op, req.URL.Host, err)
			}
			req.Body = b
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	for _, d := range ds {
		if d.fault != NetTruncate && d.fault != NetCorrupt {
			continue
		}
		body, rerr := io.ReadAll(resp.Body)
		_ = resp.Body.Close() // body fully consumed (or failed) either way
		if rerr != nil {
			return nil, fmt.Errorf("faultinject: mangling %s from %s: %w", op, req.URL.Host, rerr)
		}
		body = mangleBody(d, body)
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	}
	return resp, nil
}

// mangleBody applies a truncate or corrupt decision to a body. Empty bodies
// pass through: there is nothing to mangle.
func mangleBody(d netDecision, body []byte) []byte {
	if len(body) == 0 {
		return body
	}
	switch d.fault {
	case NetTruncate:
		return body[:d.pick%uint64(len(body))]
	case NetCorrupt:
		bit := d.pick % uint64(len(body)*8)
		body[bit/8] ^= 1 << (bit % 8)
	}
	return body
}

// Middleware wraps a handler with the injector's listener-side faults; self
// is the peer label the rules match against (typically the node's advertised
// host). Drop and black-hole abort the connection the way a dying or
// partitioned node would; duplicate is meaningless on the receiving side and
// is ignored. A nil injector returns next unchanged.
func (in *NetInjector) Middleware(self string, next http.Handler) http.Handler {
	if in == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ds := in.decide(self, OpOf(r.Method, r.URL.Path))
		if len(ds) == 0 {
			next.ServeHTTP(w, r)
			return
		}
		ctx := r.Context()
		for _, d := range ds {
			switch d.fault {
			case NetBlackhole:
				// Hold the request until the caller gives up, then kill
				// the connection without a response.
				<-ctx.Done()
				panic(http.ErrAbortHandler)
			case NetDrop:
				panic(http.ErrAbortHandler)
			}
		}
		for _, d := range ds {
			if d.fault != NetDelay || d.delay <= 0 {
				continue
			}
			timer := time.NewTimer(d.delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				panic(http.ErrAbortHandler)
			}
		}
		var mangle []netDecision
		for _, d := range ds {
			if d.fault == NetTruncate || d.fault == NetCorrupt {
				mangle = append(mangle, d)
			}
		}
		if len(mangle) == 0 {
			next.ServeHTTP(w, r)
			return
		}
		rec := &bodyRecorder{header: make(http.Header), status: http.StatusOK}
		next.ServeHTTP(rec, r)
		body := rec.buf.Bytes()
		for _, d := range mangle {
			body = mangleBody(d, body)
		}
		h := w.Header()
		for k, v := range rec.header {
			h[k] = v
		}
		h.Set("Content-Length", strconv.Itoa(len(body)))
		w.WriteHeader(rec.status)
		_, _ = w.Write(body) // nothing to do about a client that vanished mid-body
	})
}

// bodyRecorder buffers a handler's response so the middleware can mangle it
// before anything reaches the wire.
type bodyRecorder struct {
	header http.Header
	buf    bytes.Buffer
	status int
	wrote  bool
}

func (r *bodyRecorder) Header() http.Header { return r.header }

func (r *bodyRecorder) WriteHeader(status int) {
	if !r.wrote {
		r.status = status
		r.wrote = true
	}
}

func (r *bodyRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.buf.Write(b)
}

// NetFaultEnv is the environment variable command mains consult to arm the
// network fault plane in a subprocess; its value is a ParseNetRules spec.
const NetFaultEnv = "SPUR_NETFAULTS"

// ParseNetRules parses a fault-rule spec: rules separated by ';', each
// "<fault>@k=v,k=v,..." with keys peer, op, every (default 1), seed, after,
// max, and ms (NetDelay's hold time). The "@..." part may be omitted for a
// rule that hits every call. Example:
//
//	blackhole@peer=127.0.0.1:7421;delay@op=run,ms=200,every=2,max=5
func ParseNetRules(spec string) ([]NetRule, error) {
	var rules []NetRule
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, params, _ := strings.Cut(part, "@")
		f, err := ParseNetFault(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		r := NetRule{Fault: f, Every: 1}
		if err := parseRuleParams(params, func(k, v string) error {
			switch k {
			case "peer":
				r.Peer = v
			case "op":
				r.Op = v
			case "every":
				return parseUintParam(k, v, &r.Every)
			case "seed":
				return parseUintParam(k, v, &r.Seed)
			case "after":
				return parseUintParam(k, v, &r.After)
			case "max":
				return parseUintParam(k, v, &r.Max)
			case "ms":
				ms, err := strconv.Atoi(v)
				if err != nil || ms < 0 {
					return fmt.Errorf("faultinject: bad ms %q", v)
				}
				r.DelayMS = ms
			default:
				return fmt.Errorf("faultinject: unknown net rule key %q", k)
			}
			return nil
		}); err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// NetRulesFromEnv parses SPUR_NETFAULTS. An unset or empty variable yields
// no rules; a malformed value is an error so a mistyped drill fails loudly.
func NetRulesFromEnv() ([]NetRule, error) {
	v := os.Getenv(NetFaultEnv)
	if v == "" {
		return nil, nil
	}
	rules, err := ParseNetRules(v)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", NetFaultEnv, err)
	}
	return rules, nil
}

// parseRuleParams walks "k=v,k=v,..." calling set for each pair.
func parseRuleParams(params string, set func(k, v string) error) error {
	for _, kv := range strings.Split(params, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("faultinject: bad rule param %q (want k=v)", kv)
		}
		if err := set(strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
			return err
		}
	}
	return nil
}

func parseUintParam(k, v string, dst *uint64) error {
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return fmt.Errorf("faultinject: bad %s %q", k, v)
	}
	*dst = n
	return nil
}
