package faultinject

import (
	"errors"
	"syscall"
	"testing"
)

func TestDiskRuleCadencePathAndErrno(t *testing.T) {
	in := NewDisk(DiskRule{Op: DiskSync, Path: "node1", Err: "enospc", Every: 2, Max: 1})

	if _, err := in.check(DiskWrite, "node1/store/x.json"); err != nil {
		t.Fatalf("wrong op fired: %v", err)
	}
	if _, err := in.check(DiskSync, "node2/store/x.json"); err != nil {
		t.Fatalf("wrong path fired: %v", err)
	}
	if _, err := in.check(DiskSync, "node1/store/x.json"); err != nil {
		t.Fatalf("call 1 of every=2 fired: %v", err)
	}
	_, err := in.check(DiskSync, "node1/store/x.json")
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("call 2 should inject ENOSPC, got %v", err)
	}
	if _, err := in.check(DiskSync, "node1/store/x.json"); err != nil {
		t.Fatalf("max=1 not honored: %v", err)
	}
	if lg := in.DiskLog(); len(lg) != 1 || lg[0].Op != DiskSync || lg[0].Call != 2 {
		t.Fatalf("log = %+v", lg)
	}
}

func TestDiskDefaultErrnoIsEIO(t *testing.T) {
	in := NewDisk(DiskRule{Op: DiskRead, Every: 1})
	_, err := in.check(DiskRead, "blob.json")
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("want EIO, got %v", err)
	}
}

func TestCheckDiskWriteShortWrite(t *testing.T) {
	ArmDisk(NewDisk(DiskRule{Op: DiskWrite, Err: "enospc", Every: 1, Max: 1, Partial: 5}))
	defer DisarmDisk()

	n, err := CheckDiskWrite("journal", 100)
	if !errors.Is(err, syscall.ENOSPC) || n != 5 {
		t.Fatalf("short write = (%d, %v), want (5, ENOSPC)", n, err)
	}
	// Partial is clamped to the write's length.
	ArmDisk(NewDisk(DiskRule{Op: DiskWrite, Every: 1, Partial: 500}))
	n, err = CheckDiskWrite("journal", 100)
	if err == nil || n != 100 {
		t.Fatalf("clamped short write = (%d, %v)", n, err)
	}
	// After Max the seam is transparent.
	DisarmDisk()
	n, err = CheckDiskWrite("journal", 100)
	if err != nil || n != 100 {
		t.Fatalf("disarmed seam = (%d, %v)", n, err)
	}
}

func TestNilDiskInjector(t *testing.T) {
	var in *DiskInjector
	if _, err := in.check(DiskWrite, "x"); err != nil {
		t.Fatal("nil injector must inject nothing")
	}
	DisarmDisk()
	if err := CheckDisk(DiskSync, "x"); err != nil {
		t.Fatal("disarmed seam must inject nothing")
	}
}

func TestParseDiskRules(t *testing.T) {
	rules, err := ParseDiskRules("enospc@op=write,path=store,every=3,max=2,partial=12; eio@op=rename")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("got %d rules", len(rules))
	}
	r := rules[0]
	if r.Op != DiskWrite || r.Path != "store" || r.Err != "enospc" ||
		r.Every != 3 || r.Max != 2 || r.Partial != 12 {
		t.Fatalf("rule 0 = %+v", r)
	}
	if rules[1].Op != DiskRename || rules[1].Err != "eio" || rules[1].Every != 1 {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	if _, err := ParseDiskRules("enospc@path=x"); err == nil {
		t.Fatal("missing op should error")
	}
	if _, err := ParseDiskRules("efault@op=write"); err == nil {
		t.Fatal("unknown errno should error")
	}
}

func TestArmDiskFromEnv(t *testing.T) {
	t.Setenv(DiskFaultEnv, "eio@op=read,path=blob")
	defer DisarmDisk()
	if err := ArmDiskFromEnv(); err != nil {
		t.Fatal(err)
	}
	if err := CheckDisk(DiskRead, "store/blob-1.json"); !errors.Is(err, syscall.EIO) {
		t.Fatalf("armed-from-env seam: %v", err)
	}
	t.Setenv(DiskFaultEnv, "bogus")
	if err := ArmDiskFromEnv(); err == nil {
		t.Fatal("malformed env must error")
	}
}
