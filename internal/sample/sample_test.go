package sample

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/journal"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/workload"
)

func testConfig(refs int64) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.MemoryBytes = core.MiB(4) // small memory: real paging traffic
	cfg.TotalRefs = refs
	return cfg
}

// drive generates the stream on script and simulates it on m up to target.
func drive(t *testing.T, m *machine.Machine, script *workload.Script, pos *int64, target int64, sim bool) {
	t.Helper()
	buf := make([]trace.Rec, 512)
	for *pos < target {
		n := target - *pos
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		k := script.NextBatch(buf[:n])
		if k == 0 {
			t.Fatalf("stream ended at %d refs (wanted %d)", *pos, target)
		}
		if sim {
			m.Engine.AccessBatch(buf[:k])
		}
		*pos += int64(k)
	}
}

func TestProfileDeterministicAndNormalized(t *testing.T) {
	spec := workload.SLCSpec()
	p1 := BuildProfile(spec, 7, 100_000, 10_000)
	p2 := BuildProfile(spec, 7, 100_000, 10_000)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("profiles of the same (spec, seed) differ")
	}
	if len(p1.Sigs) != 10 {
		t.Fatalf("got %d signatures, want 10", len(p1.Sigs))
	}
	// Every reference lands in exactly one page bucket and one op bucket,
	// so the touch-frequency dims of each normalized signature sum to 2;
	// the region-lifecycle dims are max-normalized into [0, 1].
	for i, sig := range p1.Sigs {
		var sum float64
		for _, v := range sig[:envAddDim] {
			sum += v
		}
		if math.Abs(sum-2) > 1e-9 {
			t.Fatalf("signature %d touch dims sum to %g, want 2", i, sum)
		}
		for d := envAddDim; d < SigDims; d++ {
			if sig[d] < 0 || sig[d] > 1 {
				t.Fatalf("signature %d lifecycle dim %d = %g, want [0,1]", i, d, sig[d])
			}
		}
	}
	// A different seed is a different stream.
	if reflect.DeepEqual(p1, BuildProfile(spec, 8, 100_000, 10_000)) {
		t.Fatal("profiles of different seeds are identical")
	}
}

func TestBuildPlanShape(t *testing.T) {
	p := BuildProfile(workload.SLCSpec(), 3, 200_000, 10_000)
	plan := BuildPlan(p, 5, 3, 0)
	if !reflect.DeepEqual(plan, BuildPlan(p, 5, 3, 0)) {
		t.Fatal("plans of the same (profile, k, seed) differ")
	}
	if len(plan.Chosen) == 0 || len(plan.Chosen) > 5 {
		t.Fatalf("got %d representatives, want 1..5", len(plan.Chosen))
	}
	var wsum float64
	last := -1
	for _, c := range plan.Chosen {
		if c.Index <= last {
			t.Fatalf("chosen indices not strictly ascending: %v", plan.Chosen)
		}
		if c.Index < 0 || c.Index >= len(p.Sigs) {
			t.Fatalf("chosen index %d out of range", c.Index)
		}
		last = c.Index
		wsum += c.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("weights sum to %g, want 1", wsum)
	}
	if got := plan.SimulatedRefs(5_000); got != int64(len(plan.Chosen))*15_000 {
		t.Fatalf("SimulatedRefs = %d", got)
	}

	// With a prefix, the leading intervals are excluded from clustering:
	// the prefix rounds up to whole intervals, every representative starts
	// at or after it, and the weights cover the post-prefix stream.
	pre := BuildPlan(p, 5, 3, 25_000)
	if pre.Prefix != 30_000 {
		t.Fatalf("Prefix = %d, want 30000 (25000 rounded up to intervals)", pre.Prefix)
	}
	wsum = 0
	for _, c := range pre.Chosen {
		if int64(c.Index)*pre.IntervalLen < pre.Prefix {
			t.Fatalf("representative %d starts inside the prefix", c.Index)
		}
		wsum += c.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Fatalf("prefixed weights sum to %g, want 1", wsum)
	}
	if got := pre.SimulatedRefs(5_000); got != 30_000+int64(len(pre.Chosen))*15_000 {
		t.Fatalf("prefixed SimulatedRefs = %d", got)
	}
	// A prefix covering everything still leaves one interval to cluster.
	all := BuildPlan(p, 5, 3, 10*200_000)
	if all.Prefix != 190_000 || len(all.Chosen) == 0 {
		t.Fatalf("oversized prefix: Prefix=%d Chosen=%v", all.Prefix, all.Chosen)
	}
}

// TestSnapshotRoundTrip is the snapshot fuzz: across seeds and prefix
// lengths, capture a warmed machine, push the state through journal bytes,
// restore it onto a fresh machine (after regenerating the stream prefix),
// and check the two machines stay bit-for-bit identical over the rest of
// the stream.
func TestSnapshotRoundTrip(t *testing.T) {
	spec := workload.SLCSpec()
	for _, tc := range []struct {
		seed   uint64
		prefix int64
	}{
		{1, 10_000},
		{2, 50_000},
		{3, 77_777},
		{4, 120_001},
	} {
		cfg := testConfig(200_000)
		cfg.Seed = tc.seed

		// Original: simulate the prefix, snapshot, keep going.
		m1 := machine.New(cfg)
		s1 := workload.NewScript(m1, tc.seed, spec)
		m1.Pager.Runnable = s1.Runnable
		var pos1 int64
		drive(t, m1, s1, &pos1, tc.prefix, true)
		snap := Capture(m1, tc.prefix)

		// Round-trip the state through the CRC-framed journal machinery.
		path := filepath.Join(t.TempDir(), "snap.journal")
		w, err := journal.Create(path, journal.Header{Kind: "test-snap", SpecKey: "k", Version: "v"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		rep, err := journal.Replay(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Entries) != 1 {
			t.Fatalf("journal replay has %d entries, want 1", len(rep.Entries))
		}
		var restored MachineState
		if err := json.Unmarshal(rep.Entries[0], &restored); err != nil {
			t.Fatal(err)
		}

		// Replica: regenerate the prefix (registers regions/segments, no
		// simulation), then apply the journaled state.
		m2 := machine.New(cfg)
		s2 := workload.NewScript(m2, tc.seed, spec)
		m2.Pager.Runnable = s2.Runnable
		var pos2 int64
		drive(t, m2, s2, &pos2, tc.prefix, false)
		if err := Restore(m2, &restored); err != nil {
			t.Fatalf("seed %d prefix %d: Restore: %v", tc.seed, tc.prefix, err)
		}

		// The restored machine must be indistinguishable from the original
		// over the rest of the stream.
		drive(t, m1, s1, &pos1, 200_000, true)
		drive(t, m2, s2, &pos2, 200_000, true)
		end1, end2 := Capture(m1, 200_000), Capture(m2, 200_000)
		if !reflect.DeepEqual(end1, end2) {
			t.Fatalf("seed %d prefix %d: machines diverged after restore", tc.seed, tc.prefix)
		}
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	cfg := testConfig(10_000)
	m := machine.New(cfg)
	snap := Capture(m, 0)
	snap.CacheMeta = snap.CacheMeta[:len(snap.CacheMeta)-1]
	if err := Restore(machine.New(cfg), snap); err == nil {
		t.Fatal("Restore accepted a truncated cache meta array")
	}
}

// TestMeasureTrivialPlanIsExact: a one-interval plan spanning the whole
// stream is a full simulation, and must match machine.RunSpec exactly.
func TestMeasureTrivialPlanIsExact(t *testing.T) {
	const refs = 150_000
	spec := workload.SLCSpec()
	cfg := testConfig(refs)
	cfg.Seed = 9

	plan := Plan{TotalRefs: refs, IntervalLen: refs, K: 1, Chosen: []Chosen{{Index: 0, Weight: 1}}}
	ms, err := Measure(spec, 9, plan, []Variant{{Name: "v", Cfg: cfg}}, MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	im := ms[0].Intervals[0]

	res := machine.RunSpec(cfg, spec)
	ev := core.EventsFromShadow(im.Shadow, im.Pager, res.ElapsedSeconds)
	if ev != res.Events {
		t.Fatalf("measured events differ from RunSpec:\n%+v\nvs\n%+v", ev, res.Events)
	}
	if im.Cycles != res.Cycles {
		t.Fatalf("measured cycles %d != RunSpec cycles %d", im.Cycles, res.Cycles)
	}

	// The estimator on the trivial plan reproduces the exact totals with
	// zero-width error bars.
	est := plan.Estimate(ms[0], cfg.Timing, 0)
	if m, _ := est.Metric("page_ins"); uint64(math.Round(m.Total)) != res.Events.PageIns || m.CI95 != 0 {
		t.Fatalf("page_ins estimate %+v vs exact %d", m, res.Events.PageIns)
	}
	if m, _ := est.Metric("misses"); uint64(math.Round(m.Total)) != res.Events.Misses {
		t.Fatalf("misses estimate %+v vs exact %d", m, res.Events.Misses)
	}
}

func sampledFixture() (workload.Spec, uint64, Plan, []Variant, MeasureOptions) {
	const refs = 200_000
	spec := workload.SLCSpec()
	seed := uint64(21)
	profile := BuildProfile(spec, seed, refs, 10_000)
	plan := BuildPlan(profile, 6, seed, 20_000)
	cfgA := testConfig(refs)
	cfgB := testConfig(refs)
	cfgB.Ref = core.RefTRUE
	variants := []Variant{{Name: "miss", Cfg: cfgA}, {Name: "ref", Cfg: cfgB}}
	return spec, seed, plan, variants, MeasureOptions{Warmup: 5_000}
}

func TestMeasureDeterministic(t *testing.T) {
	spec, seed, plan, variants, opts := sampledFixture()
	a, err := Measure(spec, seed, plan, variants, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(spec, seed, plan, variants, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical sampled runs differ")
	}
	for vi := range a {
		for ci, im := range a[vi].Intervals {
			if im.Refs != plan.IntervalLen {
				t.Fatalf("variant %d interval %d simulated %d refs, want %d", vi, ci, im.Refs, plan.IntervalLen)
			}
		}
	}
}

func TestMeasureRejectsFaultPlans(t *testing.T) {
	spec, seed, plan, variants, opts := sampledFixture()
	variants[0].Cfg.Faults = []faultinject.Plan{{}}
	if _, err := Measure(spec, seed, plan, variants, opts); err == nil {
		t.Fatal("Measure accepted a fault-injection config")
	}
}

// TestMeasureResumeTornJournal mirrors the sweep drivers' kill-and-resume
// test at the snapshot layer: truncate a sampled run's journal mid-frame
// (as a crash during an append would), resume, and require byte-identical
// results to an uninterrupted run.
func TestMeasureResumeTornJournal(t *testing.T) {
	spec, seed, plan, variants, opts := sampledFixture()
	ref, err := Measure(spec, seed, plan, variants, opts)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "sample.journal")
	jopts := opts
	jopts.JournalPath = path
	jopts.Kind, jopts.SpecKey, jopts.Version = "sample-test", "spec", "v"
	full, err := Measure(spec, seed, plan, variants, jopts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, full) {
		t.Fatal("journaled run differs from plain run")
	}

	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.35, 0.6, 0.9} {
		cut := int(float64(len(whole)) * frac)
		torn := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(torn, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ropts := jopts
		ropts.JournalPath = torn
		ropts.Resume = true
		got, err := Measure(spec, seed, plan, variants, ropts)
		if err != nil {
			t.Fatalf("resume after truncation at %.0f%%: %v", frac*100, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("resume after truncation at %.0f%% differs from uninterrupted run", frac*100)
		}
		if err := os.Remove(torn); err != nil {
			t.Fatal(err)
		}
	}

	// Resuming the complete journal recomputes nothing and still matches.
	ropts := jopts
	ropts.Resume = true
	got, err := Measure(spec, seed, plan, variants, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("resume of complete journal differs")
	}
}

func TestMeasureResumeRejectsForeignJournal(t *testing.T) {
	spec, seed, plan, variants, opts := sampledFixture()
	path := filepath.Join(t.TempDir(), "sample.journal")
	opts.JournalPath = path
	opts.Kind, opts.SpecKey, opts.Version = "sample-test", "spec", "v"
	if _, err := Measure(spec, seed, plan, variants, opts); err != nil {
		t.Fatal(err)
	}
	// Different plan (different warmup) against the same journal.
	wrong := opts
	wrong.Resume = true
	wrong.Warmup = opts.Warmup + 1
	if _, err := Measure(spec, seed, plan, variants, wrong); err == nil {
		t.Fatal("resume with a different plan succeeded")
	}
	// Different header entirely.
	foreign := opts
	foreign.Resume = true
	foreign.SpecKey = "other"
	if _, err := Measure(spec, seed, plan, variants, foreign); err == nil {
		t.Fatal("resume with a different spec key succeeded")
	}
}

func TestEstimateWeighting(t *testing.T) {
	// Two intervals, weights 0.75/0.25, one metric checked by hand.
	plan := Plan{TotalRefs: 1000, IntervalLen: 100, K: 2,
		Chosen: []Chosen{{Index: 0, Weight: 0.75}, {Index: 5, Weight: 0.25}}}
	var a, b IntervalMetrics
	a.Refs, b.Refs = 100, 100
	a.Pager.PageIns, b.Pager.PageIns = 10, 30
	m := Measured{Variant: "v", Intervals: []IntervalMetrics{a, b}}
	est := plan.Estimate(m, machine.DefaultConfig().Timing, 0)
	pi, ok := est.Metric("page_ins")
	if !ok {
		t.Fatal("no page_ins estimate")
	}
	// Weighted rate = 0.75*0.1 + 0.25*0.3 = 0.15; total = 150.
	if math.Abs(pi.Rate-0.15) > 1e-12 || math.Abs(pi.Total-150) > 1e-9 {
		t.Fatalf("page_ins estimate %+v, want rate 0.15 total 150", pi)
	}
	if pi.CI95 <= 0 {
		t.Fatal("two distinct intervals must yield a positive CI95")
	}
}
