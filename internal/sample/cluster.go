package sample

import (
	"sort"

	"repro/internal/parallel"
	"repro/internal/stats"
)

// Chosen is one representative interval of a sampling plan: the interval's
// index in the stream and the fraction of all profiled intervals its phase
// covers.
type Chosen struct {
	Index  int     `json:"index"`
	Weight float64 `json:"weight"`
}

// Plan is a complete sampling plan: which intervals to simulate and how to
// weight their measurements. A Plan is a pure function of (profile, k,
// seed), so the same workload stream always yields the same plan.
type Plan struct {
	TotalRefs   int64 `json:"total_refs"`
	IntervalLen int64 `json:"interval_len"`
	// Prefix is the exactly-simulated cold-start span in references, a
	// whole number of intervals starting at reference zero. The startup
	// transient — first-touch faults over the initial working set, early
	// region teardowns — is concentrated there and matches no steady-state
	// phase, so extrapolating it from representatives biases every
	// OS-event metric. The prefix is measured exactly instead, and the
	// clusterer only sees intervals at or after it.
	Prefix int64    `json:"prefix,omitempty"`
	K      int      `json:"k"`
	Chosen []Chosen `json:"chosen"` // ascending by Index; all at or after Prefix
}

// SimulatedRefs returns how many references the plan actually simulates,
// prefix and warmup included.
func (p Plan) SimulatedRefs(warmup int64) int64 {
	return p.Prefix + int64(len(p.Chosen))*(p.IntervalLen+warmup)
}

// dist2 is the squared Euclidean distance between two signatures.
func dist2(a, b *Signature) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		d += x * x
	}
	return d
}

// BuildPlan clusters the profile's intervals into at most k phases with a
// deterministic k-means (k-means++ seeding from a splitmix64 stream derived
// from seed, Lloyd iterations with lowest-index tie-breaking) and picks each
// phase's medoid — the member interval closest to the centroid — as its
// representative, weighted by phase size. Clusters that end up empty are
// dropped, so len(Chosen) can be below k.
//
// prefix (in references) is rounded up to whole intervals and excluded from
// clustering: those leading intervals are simulated exactly by Measure and
// added to the estimate as-is, so the phase weights cover only the stream
// past the prefix. At least one interval is always left for the clusterer.
func BuildPlan(p Profile, k int, seed uint64, prefix int64) Plan {
	plan := Plan{TotalRefs: p.TotalRefs, IntervalLen: p.IntervalLen, K: k}
	n := len(p.Sigs)
	if n == 0 || k <= 0 {
		return plan
	}
	pi := 0
	if prefix > 0 {
		pi = int((prefix + p.IntervalLen - 1) / p.IntervalLen)
		if pi > n-1 {
			pi = n - 1
		}
	}
	plan.Prefix = int64(pi) * p.IntervalLen
	sigs := p.Sigs[pi:]
	n = len(sigs)
	if k > n {
		k = n
	}

	state := parallel.DeriveSeed(seed, 0x6b6d65616e73) // "kmeans"
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}

	// k-means++ seeding: first centroid uniform, the rest proportional to
	// squared distance from the nearest already-chosen centroid.
	centroids := make([]Signature, 0, k)
	centroids = append(centroids, sigs[stats.Uint64n(next, uint64(n))])
	minD := make([]float64, n)
	for i := range sigs {
		minD[i] = dist2(&sigs[i], &centroids[0])
	}
	for len(centroids) < k {
		var total float64
		for _, d := range minD {
			total += d
		}
		if total == 0 {
			break // every interval coincides with a centroid
		}
		// Draw r uniformly in [0, total) from the integer stream; 53 bits
		// of mantissa keep the choice deterministic across platforms.
		r := float64(next()>>11) / (1 << 53) * total
		idx := n - 1
		var cum float64
		for i, d := range minD {
			cum += d
			if r < cum {
				idx = i
				break
			}
		}
		centroids = append(centroids, sigs[idx])
		for i := range sigs {
			if d := dist2(&sigs[i], &centroids[len(centroids)-1]); d < minD[i] {
				minD[i] = d
			}
		}
	}
	k = len(centroids)

	// Lloyd iterations. Assignment ties break toward the lowest centroid
	// index; convergence is assignment stability, bounded by maxIter.
	const maxIter = 64
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i := range sigs {
			best, bestD := 0, dist2(&sigs[i], &centroids[0])
			for c := 1; c < k; c++ {
				if d := dist2(&sigs[i], &centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		var sums = make([]Signature, k)
		counts := make([]int, k)
		for i, c := range assign {
			counts[c]++
			for d := range sums[c] {
				sums[c][d] += sigs[i][d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // empty cluster keeps its centroid
			}
			inv := 1 / float64(counts[c])
			for d := range sums[c] {
				sums[c][d] *= inv
			}
			centroids[c] = sums[c]
		}
	}

	// Medoid per non-empty cluster, lowest index on ties.
	type medoid struct {
		idx  int
		d    float64
		size int
	}
	meds := make([]medoid, k)
	for c := range meds {
		meds[c].idx = -1
	}
	for i, c := range assign {
		meds[c].size++
		d := dist2(&sigs[i], &centroids[c])
		if meds[c].idx < 0 || d < meds[c].d {
			meds[c].idx = i
			meds[c].d = d
		}
	}
	for _, m := range meds {
		if m.idx < 0 {
			continue
		}
		plan.Chosen = append(plan.Chosen, Chosen{
			Index:  m.idx + pi,
			Weight: float64(m.size) / float64(n),
		})
	}
	sort.Slice(plan.Chosen, func(i, j int) bool { return plan.Chosen[i].Index < plan.Chosen[j].Index })
	return plan
}
