package sample

import (
	"math"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/stats"
	"repro/internal/timing"
)

// MetricNames is the fixed, ordered list of metrics the estimator projects.
// The names are the paper's event vocabulary in snake_case; "cycles" and
// "elapsed_s" are the timing model's outputs.
var MetricNames = []string{
	"misses",
	"nds",
	"nzfod",
	"nef",
	"ndm",
	"nstale",
	"nw_hit",
	"nw_miss",
	"page_ins",
	"page_outs",
	"ref_faults",
	"ref_clears",
	"page_flushes",
	"bus_writes",
	"cycles",
	"elapsed_s",
}

// metricVector evaluates every MetricNames entry for one interval delta.
func metricVector(im IntervalMetrics, tp *timing.Params) []float64 {
	ev := core.EventsFromShadow(im.Shadow, im.Pager, tp.Seconds(im.Cycles))
	return []float64{
		float64(ev.Misses),
		float64(ev.Nds),
		float64(ev.Nzfod),
		float64(ev.Nef),
		float64(ev.Ndm),
		float64(ev.Nstale()),
		float64(ev.NwHit),
		float64(ev.NwMiss),
		float64(ev.PageIns),
		float64(ev.PageOuts),
		float64(ev.RefFaults),
		float64(ev.RefClears),
		float64(ev.PageFlushes),
		float64(im.Shadow[counters.EvBusWrite]),
		float64(im.Cycles),
		ev.ElapsedSeconds,
	}
}

// vmExact names the metrics whose whole-run totals the measurement pass
// produces exactly rather than by extrapolation: functional warming drives
// the stream through every gap, taking (and counting) the page faults,
// page-ins/outs, reference-bit traffic and page flushes the full run takes
// there, so the machine's cumulative counts at TotalRefs are the full run's
// — up to the reference-bit probe approximation — and carry no sampling
// error. Cache events and cycle costs are not modelled during gaps; those
// stay in the sampled class.
var vmExact = map[string]bool{
	"nds":          true,
	"nzfod":        true,
	"page_ins":     true,
	"page_outs":    true,
	"ref_faults":   true,
	"ref_clears":   true,
	"page_flushes": true,
}

// MetricEstimate is one metric's full-run projection: the per-reference rate
// (weighted over representative intervals), the extrapolated total over the
// whole stream, and the CI95 half-width on that total from the weighted
// between-interval variance (Student-t, K−1 degrees of freedom). Metrics in
// the vmExact class are instead reported as measured, with a zero half-width.
type MetricEstimate struct {
	Name  string  `json:"name"`
	Rate  float64 `json:"rate"`
	Total float64 `json:"total"`
	CI95  float64 `json:"ci95"`
}

// Estimate is one variant's projected full run.
type Estimate struct {
	Variant       string           `json:"variant"`
	TotalRefs     int64            `json:"total_refs"`
	PrefixRefs    int64            `json:"prefix_refs"`
	SimulatedRefs int64            `json:"simulated_refs"`
	K             int              `json:"k"`
	Metrics       []MetricEstimate `json:"metrics"`
}

// Metric returns the named estimate, if present.
func (e Estimate) Metric(name string) (MetricEstimate, bool) {
	for _, m := range e.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricEstimate{}, false
}

// Estimate combines one variant's measurements into full-run estimates. The
// plan's cold-start prefix contributes its exactly-measured counts; past the
// prefix, each representative interval contributes its per-reference rate,
// weighted by the fraction of the post-prefix stream its phase covers, and
// the total is prefix count plus weighted rate times the post-prefix stream
// length. The error bar treats the K phase representatives as K weighted
// observations: the CI95 half-width comes from the weighted sample variance
// with the standard n/(n−1) correction and a Student-t critical value at
// K−1 degrees of freedom, scaled by the extrapolated (post-prefix) span
// only — the prefix is exact and adds no sampling error. With K = 1 the
// variance is undefined and the half-width is reported as zero.
func (p Plan) Estimate(m Measured, tp timing.Params, warmup int64) Estimate {
	est := Estimate{
		Variant:       m.Variant,
		TotalRefs:     p.TotalRefs,
		PrefixRefs:    p.Prefix,
		SimulatedRefs: p.SimulatedRefs(warmup),
		K:             len(p.Chosen),
	}
	prefVec := metricVector(m.Prefix, &tp)
	remaining := float64(p.TotalRefs - p.Prefix)
	var finVec []float64
	if m.Final.Refs == p.TotalRefs && p.TotalRefs > 0 {
		finVec = metricVector(m.Final, &tp)
	}
	k := len(p.Chosen)
	if k == 0 || len(m.Intervals) != k {
		if p.Prefix > 0 && p.Prefix == p.TotalRefs {
			// Degenerate prefix-only plan: the whole stream was simulated
			// exactly.
			for mi, name := range MetricNames {
				est.Metrics = append(est.Metrics, MetricEstimate{
					Name:  name,
					Rate:  prefVec[mi] / float64(p.Prefix),
					Total: prefVec[mi],
				})
			}
		}
		return est
	}
	vecs := make([][]float64, k)
	for i, im := range m.Intervals {
		vecs[i] = metricVector(im, &tp)
		if im.Refs > 0 {
			inv := 1 / float64(im.Refs)
			for d := range vecs[i] {
				vecs[i][d] *= inv
			}
		}
	}
	var wsum float64
	for _, c := range p.Chosen {
		wsum += c.Weight
	}
	if wsum == 0 {
		return est
	}
	for mi, name := range MetricNames {
		if vmExact[name] && finVec != nil {
			total := finVec[mi]
			est.Metrics = append(est.Metrics, MetricEstimate{
				Name:  name,
				Rate:  total / float64(p.TotalRefs),
				Total: total,
			})
			continue
		}
		var mean float64
		for i, c := range p.Chosen {
			mean += c.Weight / wsum * vecs[i][mi]
		}
		var wvar float64
		for i, c := range p.Chosen {
			d := vecs[i][mi] - mean
			wvar += c.Weight / wsum * d * d
		}
		sd := 0.0
		if k > 1 {
			sd = math.Sqrt(wvar * float64(k) / float64(k-1))
		}
		half := stats.Summary{N: k, Mean: mean, StdDev: sd}.CI95()
		est.Metrics = append(est.Metrics, MetricEstimate{
			Name:  name,
			Rate:  mean,
			Total: prefVec[mi] + mean*remaining,
			CI95:  half * remaining,
		})
	}
	return est
}

// EventsFromEstimate reconstructs the paper's event vocabulary from a
// variant's estimate, rounding each projected total to the nearest count.
// Derived quantities (N_stale, excess fractions, miss rate) then come from
// the same core.Events methods full runs use.
func EventsFromEstimate(e Estimate) core.Events {
	get := func(name string) uint64 {
		m, ok := e.Metric(name)
		if !ok || m.Total < 0 {
			return 0
		}
		return uint64(math.Round(m.Total))
	}
	elapsed := 0.0
	if m, ok := e.Metric("elapsed_s"); ok {
		elapsed = m.Total
	}
	return core.Events{
		Nds:            get("nds"),
		Nzfod:          get("nzfod"),
		Nef:            get("nef"),
		Ndm:            get("ndm"),
		NwHit:          get("nw_hit"),
		NwMiss:         get("nw_miss"),
		PageIns:        get("page_ins"),
		PageOuts:       get("page_outs"),
		RefFaults:      get("ref_faults"),
		RefClears:      get("ref_clears"),
		PageFlushes:    get("page_flushes"),
		Refs:           uint64(e.TotalRefs),
		Misses:         get("misses"),
		ElapsedSeconds: elapsed,
	}
}
