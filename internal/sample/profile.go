// Package sample is the representative-interval sampling engine that makes
// paper-scale (10⁹-reference) experiments affordable.
//
// The paper's measurements cover on the order of a billion references per
// workload; simulating that exactly costs ~57 ns per reference. But
// *generating* the reference stream costs only ~24 ns per reference, and the
// stream is a pure function of (workload spec, seed) — the machine being
// simulated feeds nothing back into generation. Sampling exploits that split
// three ways, in the SimPoint/SMARTS lineage (Bueno et al.,
// arXiv:2402.00649):
//
//  1. A profiling pass generates the whole stream without simulating it,
//     cutting it into fixed-length intervals and reducing each to a small
//     signature vector (page-bucket touch frequencies plus the operation
//     mix — the basic-block-vector analog available to a memory trace).
//  2. A deterministic k-means clustering groups the intervals into phases
//     and picks one representative (medoid) per phase, weighted by how much
//     of the stream the phase covers.
//  3. A measuring pass generates the stream once more, simulating only a
//     warmup prefix plus each representative interval — on every machine
//     variant under study simultaneously, so the generation cost is paid
//     once per group of variants, not once per cell. Per-interval metric
//     deltas are combined into full-run estimates with CI95 error bars by
//     the weighted estimator.
//
// Between representative intervals nothing is simulated: machine state
// (cache contents, page tables, resident sets) persists across the gap and
// the next warmup refreshes it, which is the "checkpointed warmup" scheme —
// optionally journaled through internal/journal so an interrupted sampled
// run resumes from the last interval snapshot instead of restarting.
//
// Everything here is deterministic: the profile, the clustering, the
// representative choice, and the measured metrics are pure functions of
// (spec, seed, plan parameters), so sampled results are byte-stable and
// memoizable by content address exactly like exact results.
package sample

import (
	"repro/internal/addr"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Signature dimensions: page-residency buckets plus the three operation
// kinds, plus two region-lifecycle features. Page numbers are hashed
// (splitmix64 finalizer) into the buckets so nearby segments spread evenly;
// the op mix catches phase changes that shift the read/write balance without
// moving the footprint; the lifecycle features (pages mapped and pages torn
// down per interval, each normalized by the profile-wide maximum) make the
// rare intervals where a process image is built or destroyed look unlike
// every steady-state interval, so the clusterer gives those bursts — the
// source of teardown page flushes — their own representatives.
const (
	pageBuckets = 32
	opDims      = 3
	envDims     = 2

	envAddDim = pageBuckets + opDims
	envRelDim = pageBuckets + opDims + 1

	// SigDims is the signature vector dimension.
	SigDims = pageBuckets + opDims + envDims
)

// Signature is one interval's normalized touch-frequency vector.
type Signature [SigDims]float64

// Profile is the per-interval signature sequence of one workload stream.
type Profile struct {
	// TotalRefs is the stream length profiled.
	TotalRefs int64 `json:"total_refs"`
	// IntervalLen is the profiling interval length in references.
	IntervalLen int64 `json:"interval_len"`
	// Sigs holds one signature per complete interval, in stream order.
	Sigs []Signature `json:"sigs"`
}

// sigBucket hashes a page number into its signature bucket.
func sigBucket(p uint64) int {
	p = (p ^ (p >> 30)) * 0xbf58476d1ce4e5b9
	p = (p ^ (p >> 27)) * 0x94d049bb133111eb
	p ^= p >> 31
	return int(p & (pageBuckets - 1))
}

// profileBatch is the generation buffer size; one page of records, matching
// the machine's batched run path.
const profileBatch = 4096

// envCounter observes region lifecycle traffic on the way to the profiling
// environment, so the profiler can attribute mapped/torn-down page counts to
// the interval they happen in.
type envCounter struct {
	workload.Env
	added, released int64
}

func (e *envCounter) AddRegion(start addr.GVPN, n int, kind vm.PageKind) vm.Region {
	e.added += int64(n)
	return e.Env.AddRegion(start, n, kind)
}

func (e *envCounter) ReleaseRegion(r vm.Region) {
	e.released += int64(r.N)
	e.Env.ReleaseRegion(r)
}

// BuildProfile runs the cheap functional pass: it generates totalRefs
// references of the spec at the given seed — against a throwaway machine
// environment, simulating nothing — and returns one signature per complete
// interval. The trailing partial interval (totalRefs mod intervalLen
// references) is not profiled; the estimator extrapolates over it.
func BuildProfile(spec workload.Spec, seed uint64, totalRefs, intervalLen int64) Profile {
	p := Profile{TotalRefs: totalRefs, IntervalLen: intervalLen}
	if intervalLen <= 0 || totalRefs < intervalLen {
		return p
	}
	// The workload only needs an Env (segment numbers and region
	// registration); a default machine provides the canonical one. Its
	// pager just records regions — generation never faults a page in.
	ec := &envCounter{Env: machine.New(machine.DefaultConfig())}
	script := workload.NewScript(ec, seed, spec)

	nIntervals := totalRefs / intervalLen
	p.Sigs = make([]Signature, 0, nIntervals)
	buf := make([]trace.Rec, profileBatch)

	var sig Signature
	var inInterval int64
	var generated int64
	var lastAdded, lastReleased int64
	want := nIntervals * intervalLen
	for generated < want {
		n := want - generated
		if n > profileBatch {
			n = profileBatch
		}
		// Never generate across an interval boundary; the signature flush
		// below assumes the batch belongs to one interval.
		if rem := intervalLen - inInterval; n > rem {
			n = rem
		}
		k := script.NextBatch(buf[:n])
		if k == 0 {
			break
		}
		for _, r := range buf[:k] {
			sig[sigBucket(uint64(r.Addr.Page()))]++
			sig[pageBuckets+int(r.Op)]++
		}
		sig[envAddDim] += float64(ec.added - lastAdded)
		sig[envRelDim] += float64(ec.released - lastReleased)
		lastAdded, lastReleased = ec.added, ec.released
		generated += int64(k)
		inInterval += int64(k)
		if inInterval == intervalLen {
			// Touch frequencies normalize per reference; the lifecycle
			// dims stay raw until the profile-wide pass below.
			inv := 1 / float64(intervalLen)
			for i := 0; i < envAddDim; i++ {
				sig[i] *= inv
			}
			p.Sigs = append(p.Sigs, sig)
			sig = Signature{}
			inInterval = 0
		}
	}
	// Normalize the lifecycle dims by their profile-wide maxima so a
	// teardown burst scores ~1.0 — the same magnitude as an op-mix shift —
	// regardless of interval length or burst size.
	for d := envAddDim; d < SigDims; d++ {
		var max float64
		for i := range p.Sigs {
			if p.Sigs[i][d] > max {
				max = p.Sigs[i][d]
			}
		}
		if max > 0 {
			for i := range p.Sigs {
				p.Sigs[i][d] /= max
			}
		}
	}
	return p
}
