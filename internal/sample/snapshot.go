package sample

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/counters"
	"repro/internal/machine"
	"repro/internal/pte"
	"repro/internal/vm"
)

// PTERecord is one non-zero page-table entry in a machine snapshot.
type PTERecord struct {
	VPN   uint64 `json:"vpn"`
	Entry uint32 `json:"entry"`
}

// MachineState is the complete serializable warm state of one machine: the
// cache's packed tag/meta arrays, every valid PTE, the pager's pages and
// clock ring, the frame pool's free-list order, the counter block, and the
// engine's accumulated cycles. What it deliberately omits is everything the
// workload stream rebuilds deterministically on restore — regions, segment
// allocation, and the generator's own state — because generation is a pure
// function of (spec, seed) and is always replayed up to the snapshot point
// before this state is applied.
type MachineState struct {
	// Refs is the stream position the snapshot was taken at.
	//spurlint:ignore statecomplete — consumed by the replay driver, which replays the stream to Refs before Restore
	Refs int64 `json:"refs"`

	CacheTags  []addr.BlockAddr `json:"cache_tags"`
	CacheMeta  []byte           `json:"cache_meta"`
	CacheStats cache.Stats      `json:"cache_stats"`

	PTE []PTERecord `json:"pte"`

	Pager    vm.PagerState `json:"pager"`
	PoolFree []addr.PFN    `json:"pool_free"`

	CtrMode   int                                   `json:"ctr_mode"`
	CtrHW     [counters.HardwareCounters + 1]uint32 `json:"ctr_hw"`
	CtrShadow [counters.NumEvents]uint64            `json:"ctr_shadow"`

	EngineCycles uint64    `json:"engine_cycles"`
	FaultsByKind [4]uint64 `json:"faults_by_kind"`
}

// Capture serializes machine m's warm state at stream position refs.
func Capture(m *machine.Machine, refs int64) *MachineState {
	s := &MachineState{Refs: refs}
	s.CacheTags, s.CacheMeta = m.Cache.ExportState()
	s.CacheStats = m.Cache.Stats
	m.Table.Range(func(p addr.GVPN, e pte.Entry) bool {
		s.PTE = append(s.PTE, PTERecord{VPN: uint64(p), Entry: uint32(e)})
		return true
	})
	s.Pager = m.Pager.ExportState()
	s.PoolFree = m.Pool.ExportFree()
	s.CtrMode = m.Ctr.Mode()
	s.CtrHW = m.Ctr.HardwareSnapshot()
	s.CtrShadow = m.Ctr.Snapshot()
	s.EngineCycles = m.Engine.Cycles
	s.FaultsByKind = m.Engine.FaultsByKind
	return s
}

// Restore applies a captured state to machine m. The caller must already
// have regenerated the workload stream up to s.Refs against m (which
// re-registers regions and segments exactly as the original run did);
// Restore then overwrites the simulated state on top. After Restore, m is
// bit-for-bit the machine the snapshot was captured from: driving the same
// subsequent references produces identical counters, cycles and statistics.
func Restore(m *machine.Machine, s *MachineState) error {
	if err := m.Cache.RestoreState(s.CacheTags, s.CacheMeta); err != nil {
		return err
	}
	m.Cache.Stats = s.CacheStats
	// Clear whatever entries the table holds, then install the snapshot's.
	var stale []addr.GVPN
	m.Table.Range(func(p addr.GVPN, _ pte.Entry) bool {
		stale = append(stale, p)
		return true
	})
	for _, p := range stale {
		m.Table.Set(p, 0)
	}
	for _, r := range s.PTE {
		m.Table.Set(addr.GVPN(r.VPN), pte.Entry(r.Entry))
	}
	if err := m.Pool.RestoreFree(s.PoolFree); err != nil {
		return err
	}
	if err := m.Pager.RestoreState(s.Pager); err != nil {
		return err
	}
	m.Ctr.Restore(s.CtrMode, s.CtrHW, s.CtrShadow)
	m.Engine.Cycles = s.EngineCycles
	m.Engine.FaultsByKind = s.FaultsByKind
	return nil
}

// validateNoFaults rejects configurations the sampling engine cannot
// honestly serve: injected faults fire on absolute reference counts, so a
// run that skips stream segments would fire them at different points than
// the full run it estimates.
func validateNoFaults(cfg machine.Config) error {
	if len(cfg.Faults) != 0 {
		return fmt.Errorf("sample: fault-injection plans cannot be sampled (faults fire at absolute reference positions the sampled run does not visit)")
	}
	return nil
}
