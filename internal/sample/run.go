package sample

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/addr"
	"repro/internal/counters"
	"repro/internal/journal"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Variant is one machine configuration measured over the shared stream. The
// runner overrides Cfg.Seed and Cfg.TotalRefs with the group's stream seed
// and the plan's length: a variant differs in policy, memory size, cache
// geometry — anything except the stream itself.
type Variant struct {
	Name string         `json:"name"`
	Cfg  machine.Config `json:"cfg"`
}

// IntervalMetrics is the simulated delta over one representative interval:
// counter shadow, pager statistics and total machine cycles, all as
// (end − start) differences, plus the references simulated.
type IntervalMetrics struct {
	Shadow [counters.NumEvents]uint64 `json:"shadow"`
	Pager  vm.Stats                   `json:"pager"`
	Cycles uint64                     `json:"cycles"`
	Refs   int64                      `json:"refs"`
}

// Measured is one variant's per-interval metric deltas, indexed like
// Plan.Chosen, plus the exact delta over the plan's cold-start prefix
// (zero-valued when the plan has no prefix) and the machine's cumulative
// totals at the end of the whole warmed timeline. Because the stream is
// functionally warmed between representative intervals, Final's VM-event
// counts (faults, page-ins, teardown flushes) cover every reference of the
// run — they are whole-run counts, not extrapolations.
type Measured struct {
	Variant   string            `json:"variant"`
	Prefix    IntervalMetrics   `json:"prefix"`
	Final     IntervalMetrics   `json:"final"`
	Intervals []IntervalMetrics `json:"intervals"`
}

// MeasureOptions configures the measuring pass.
type MeasureOptions struct {
	// Warmup is how many references to simulate before each representative
	// interval to refresh cache and resident-set state.
	Warmup int64
	// JournalPath, when set, records a snapshot of every variant at each
	// interval start plus every measured interval's metrics, through
	// internal/journal's CRC-framed fsynced writer. With Resume, an
	// existing journal is replayed: finished intervals are served from it
	// and simulation restarts from the last intact snapshot.
	JournalPath string
	Resume      bool
	// Kind, SpecKey and Version fill the journal header (and are validated
	// on resume, so a journal cannot be replayed against a different
	// sampled experiment).
	Kind    string
	SpecKey string
	Version string
}

// journalRec is one journal frame of a sampled run (after the header): the
// plan record, a variant snapshot at an interval start, a variant's measured
// interval metrics, a variant's exact cold-start prefix metrics, or a
// variant's end-of-run cumulative totals.
type journalRec struct {
	Type     string           `json:"type"` // "plan" | "snap" | "metrics" | "prefix" | "final"
	Interval int              `json:"interval,omitempty"`
	Variant  int              `json:"variant,omitempty"`
	Plan     *planRec         `json:"plan,omitempty"`
	Snap     *MachineState    `json:"snap,omitempty"`
	Metrics  *IntervalMetrics `json:"metrics,omitempty"`
}

// planRec pins everything that shapes a sampled run, so a resumed journal
// is provably from the same experiment.
type planRec struct {
	Seed     uint64    `json:"seed"`
	Warmup   int64     `json:"warmup"`
	Plan     Plan      `json:"plan"`
	Variants []Variant `json:"variants"`
}

// statsDiff returns a − b field by field.
func statsDiff(a, b vm.Stats) vm.Stats {
	return vm.Stats{
		PageIns:               a.PageIns - b.PageIns,
		PageOuts:              a.PageOuts - b.PageOuts,
		Reclaims:              a.Reclaims - b.Reclaims,
		ZeroFills:             a.ZeroFills - b.ZeroFills,
		Scans:                 a.Scans - b.Scans,
		WritablePageOuts:      a.WritablePageOuts - b.WritablePageOuts,
		CleanWritablePageOuts: a.CleanWritablePageOuts - b.CleanWritablePageOuts,
		ZFODForcedWrites:      a.ZFODForcedWrites - b.ZFODForcedWrites,
		IORetries:             a.IORetries - b.IORetries,
	}
}

// baseline is the pre-interval reading the deltas subtract.
type baseline struct {
	shadow [counters.NumEvents]uint64
	pager  vm.Stats
	cycles uint64
}

func readBaseline(m *machine.Machine) baseline {
	return baseline{shadow: m.Ctr.Snapshot(), pager: m.Pager.Stats, cycles: m.Engine.TotalCycles()}
}

// multiEnv fans one workload's environment calls out to every variant
// machine, so a single generated stream drives them all. The machines see
// identical call sequences, so their segment allocators answer identically;
// a divergence means variant construction differed and is a hard error.
type multiEnv struct{ ms []*machine.Machine }

func (e multiEnv) AddRegion(start addr.GVPN, n int, kind vm.PageKind) vm.Region {
	r := e.ms[0].AddRegion(start, n, kind)
	for _, m := range e.ms[1:] {
		m.AddRegion(start, n, kind)
	}
	return r
}

func (e multiEnv) ReleaseRegion(r vm.Region) {
	for _, m := range e.ms {
		m.ReleaseRegion(r)
	}
}

func (e multiEnv) AllocSegment() addr.SegmentID {
	s := e.ms[0].AllocSegment()
	for _, m := range e.ms[1:] {
		if got := m.AllocSegment(); got != s {
			panic(fmt.Sprintf("sample: variant machines diverged on segment allocation (%d vs %d)", got, s))
		}
	}
	return s
}

func (e multiEnv) FreeSegment(s addr.SegmentID) {
	for _, m := range e.ms {
		m.FreeSegment(s)
	}
}

var _ workload.Env = multiEnv{}

// resumeState is what a replayed journal contributes: already-measured
// metrics, the interval to restart from, and the snapshots to restart with.
type resumeState struct {
	metrics [][]*IntervalMetrics // [interval][variant]
	prefix  []*IntervalMetrics   // [variant] exact prefix deltas, if journaled
	final   []*IntervalMetrics   // [variant] end-of-run totals, if journaled
	from    int                  // first interval to simulate
	snaps   []*MachineState      // all-variant snapshots at `from`, or nil
}

// replayJournal validates a replayed sampled-run journal against this run's
// plan record and extracts the resume state.
func replayJournal(entries [][]byte, want planRec, nv, nc int) (resumeState, error) {
	rs := resumeState{
		metrics: make([][]*IntervalMetrics, nc),
		prefix:  make([]*IntervalMetrics, nv),
		final:   make([]*IntervalMetrics, nv),
	}
	for i := range rs.metrics {
		rs.metrics[i] = make([]*IntervalMetrics, nv)
	}
	snaps := make([][]*MachineState, nc)
	for i := range snaps {
		snaps[i] = make([]*MachineState, nv)
	}
	sawPlan := false
	for i, b := range entries {
		var rec journalRec
		if err := json.Unmarshal(b, &rec); err != nil {
			return rs, fmt.Errorf("sample: journal record %d: %w", i, err)
		}
		switch rec.Type {
		case "plan":
			if rec.Plan == nil {
				return rs, fmt.Errorf("sample: journal record %d: plan record without plan", i)
			}
			got, err1 := json.Marshal(*rec.Plan)
			exp, err2 := json.Marshal(want)
			if err1 != nil || err2 != nil || !bytes.Equal(got, exp) {
				return rs, fmt.Errorf("sample: journal was written for a different sampled run (plan mismatch); refusing to mix results")
			}
			sawPlan = true
		case "snap", "metrics":
			if rec.Interval < 0 || rec.Interval >= nc || rec.Variant < 0 || rec.Variant >= nv {
				return rs, fmt.Errorf("sample: journal record %d: coordinates (%d,%d) outside the %d-interval × %d-variant design", i, rec.Interval, rec.Variant, nc, nv)
			}
			if rec.Type == "snap" {
				snaps[rec.Interval][rec.Variant] = rec.Snap
			} else {
				rs.metrics[rec.Interval][rec.Variant] = rec.Metrics
			}
		case "prefix", "final":
			if rec.Variant < 0 || rec.Variant >= nv {
				return rs, fmt.Errorf("sample: journal record %d: %s for variant %d outside the %d-variant design", i, rec.Type, rec.Variant, nv)
			}
			if rec.Type == "prefix" {
				rs.prefix[rec.Variant] = rec.Metrics
			} else {
				rs.final[rec.Variant] = rec.Metrics
			}
		default:
			return rs, fmt.Errorf("sample: journal record %d: unknown type %q", i, rec.Type)
		}
	}
	if !sawPlan {
		return rs, fmt.Errorf("sample: journal holds no plan record; refusing to resume")
	}
	// done is the longest prefix of fully measured intervals; the restart
	// point is the latest interval ≤ done where every variant has an intact
	// snapshot (re-measuring from there reproduces the tail bit for bit).
	done := 0
	for done < nc {
		full := true
		for v := 0; v < nv; v++ {
			if rs.metrics[done][v] == nil {
				full = false
				break
			}
		}
		if !full {
			break
		}
		done++
	}
	finalDone := true
	for _, f := range rs.final {
		if f == nil {
			finalDone = false
			break
		}
	}
	if done == nc && finalDone {
		rs.from = nc
	} else {
		// If only the end-of-run totals are missing, the last interval is
		// redone from its snapshot so the tail can be re-warmed.
		limit := done
		if limit == nc {
			limit = nc - 1
		}
		rs.from = 0
		for ci := limit; ci >= 0; ci-- {
			full := true
			for v := 0; v < nv; v++ {
				if snaps[ci][v] == nil {
					full = false
					break
				}
			}
			if full {
				rs.from = ci
				rs.snaps = snaps[ci]
				break
			}
		}
	}
	// A mid-run restart replays the prefix deltas from the journal rather
	// than re-simulating [0, Prefix); if any variant's prefix frame was
	// torn, the only faithful option is a cold restart.
	if want.Plan.Prefix > 0 {
		for _, p := range rs.prefix {
			if p == nil {
				rs.from = 0
				rs.snaps = nil
				break
			}
		}
	}
	return rs, nil
}

// Measure runs the measuring pass: one generated stream drives every
// variant machine through warmup plus each representative interval, and the
// per-interval metric deltas come back per variant. Between intervals the
// stream is generated but not simulated; machine state persists across the
// gap and the next warmup refreshes it.
//
// With a JournalPath, every interval start appends one snapshot frame per
// variant and every measured interval one metrics frame per variant, fsynced
// through internal/journal; Resume replays finished work and restarts
// simulation from the last interval whose snapshots are all intact, with
// results byte-identical to an uninterrupted run.
func Measure(spec workload.Spec, streamSeed uint64, plan Plan, variants []Variant, opts MeasureOptions) ([]Measured, error) {
	nv, nc := len(variants), len(plan.Chosen)
	if nv == 0 {
		return nil, fmt.Errorf("sample: no variants to measure")
	}
	for _, v := range variants {
		if err := validateNoFaults(v.Cfg); err != nil {
			return nil, err
		}
	}

	prec := planRec{Seed: streamSeed, Warmup: opts.Warmup, Plan: plan, Variants: variants}
	rs := resumeState{metrics: make([][]*IntervalMetrics, nc)}
	for i := range rs.metrics {
		rs.metrics[i] = make([]*IntervalMetrics, nv)
	}
	var jw *journal.Writer
	if opts.JournalPath != "" {
		kind := opts.Kind
		if kind == "" {
			kind = "sample"
		}
		hdr := journal.Header{Kind: kind, SpecKey: opts.SpecKey, Version: opts.Version}
		if opts.Resume {
			w, rep, err := journal.Open(opts.JournalPath)
			if err != nil {
				return nil, err
			}
			if rep.Header != hdr {
				_ = w.Close() // refusing the journal; nothing was written
				return nil, fmt.Errorf("sample: journal %s was written for a different experiment: kind=%q spec=%.12s… version=%q, this run kind=%q spec=%.12s… version=%q",
					opts.JournalPath, rep.Header.Kind, rep.Header.SpecKey, rep.Header.Version, hdr.Kind, hdr.SpecKey, hdr.Version)
			}
			rs, err = replayJournal(rep.Entries, prec, nv, nc)
			if err != nil {
				_ = w.Close() // refusing the journal; nothing was written
				return nil, err
			}
			jw = w
		} else {
			w, err := journal.Create(opts.JournalPath, hdr)
			if err != nil {
				return nil, err
			}
			jw = w
			if err := appendRec(jw, journalRec{Type: "plan", Plan: &prec}); err != nil {
				return nil, err
			}
		}
	}

	out := make([]Measured, nv)
	for vi := range out {
		out[vi] = Measured{Variant: variants[vi].Name, Intervals: make([]IntervalMetrics, nc)}
	}
	for ci := 0; ci < rs.from; ci++ {
		for vi := 0; vi < nv; vi++ {
			out[vi].Intervals[ci] = *rs.metrics[ci][vi]
		}
	}
	havePrefix := plan.Prefix == 0
	if !havePrefix && len(rs.prefix) == nv {
		havePrefix = true
		for _, p := range rs.prefix {
			if p == nil {
				havePrefix = false
				break
			}
		}
		if havePrefix {
			for vi := range out {
				out[vi].Prefix = *rs.prefix[vi]
			}
		}
	}
	haveFinal := false
	if len(rs.final) == nv {
		haveFinal = true
		for _, f := range rs.final {
			if f == nil {
				haveFinal = false
				break
			}
		}
		if haveFinal {
			for vi := range out {
				out[vi].Final = *rs.final[vi]
			}
		}
	}
	if rs.from == nc && havePrefix && haveFinal {
		// Everything was already measured; nothing to simulate.
		if jw != nil {
			return out, jw.Close()
		}
		return out, nil
	}

	ms := make([]*machine.Machine, nv)
	for i, v := range variants {
		cfg := v.Cfg
		cfg.Seed = streamSeed
		cfg.TotalRefs = plan.TotalRefs
		ms[i] = machine.New(cfg)
	}
	script := workload.NewScript(multiEnv{ms}, streamSeed, spec)
	for _, m := range ms {
		m.Pager.Runnable = script.Runnable
	}

	// Generation modes: skip regenerates the stream with no machine effects
	// beyond the environment calls (used only up to a snapshot about to be
	// restored on top); warm advances VM state functionally through
	// Engine.Touch; sim is full simulation.
	const (
		genSkip = iota
		genWarm
		genSim
	)
	var pos int64
	buf := make([]trace.Rec, profileBatch)
	gen := func(target int64, mode int) error {
		for pos < target {
			n := target - pos
			if n > profileBatch {
				n = profileBatch
			}
			k := script.NextBatch(buf[:n])
			if k == 0 {
				return fmt.Errorf("sample: workload stream ended at %d references (plan needs %d)", pos, target)
			}
			switch mode {
			case genSim:
				for _, m := range ms {
					m.Engine.AccessBatch(buf[:k])
				}
			case genWarm:
				for _, m := range ms {
					m.Engine.TouchBatch(buf[:k])
				}
			}
			pos += int64(k)
		}
		return nil
	}

	bases := make([]baseline, nv)
	if plan.Prefix > 0 && rs.snaps == nil {
		// Cold start: simulate [0, Prefix) exactly from reference zero, so
		// the startup transient is counted rather than extrapolated. On a
		// snapshot restart the prefix deltas come from the journal instead
		// (replayJournal forces a cold restart when they were torn).
		for vi, m := range ms {
			bases[vi] = readBaseline(m)
		}
		if err := gen(plan.Prefix, genSim); err != nil {
			return nil, err
		}
		for vi, m := range ms {
			after := readBaseline(m)
			im := IntervalMetrics{
				Shadow: counters.Diff(after.shadow, bases[vi].shadow),
				Pager:  statsDiff(after.pager, bases[vi].pager),
				Cycles: after.cycles - bases[vi].cycles,
				Refs:   plan.Prefix,
			}
			out[vi].Prefix = im
			if jw != nil {
				if err := appendRec(jw, journalRec{Type: "prefix", Variant: vi, Metrics: &im}); err != nil {
					return nil, err
				}
			}
		}
	}

	restored := -1
	if rs.snaps != nil {
		start := int64(plan.Chosen[rs.from].Index) * plan.IntervalLen
		if err := gen(start, genSkip); err != nil {
			return nil, err
		}
		for vi, m := range ms {
			if rs.snaps[vi].Refs != start {
				return nil, fmt.Errorf("sample: snapshot for variant %d is at ref %d, interval starts at %d", vi, rs.snaps[vi].Refs, start)
			}
			if err := Restore(m, rs.snaps[vi]); err != nil {
				return nil, err
			}
		}
		restored = rs.from
	}

	for ci := rs.from; ci < nc; ci++ {
		start := int64(plan.Chosen[ci].Index) * plan.IntervalLen
		if ci != restored {
			warmStart := start - opts.Warmup
			if warmStart < pos {
				warmStart = pos
			}
			if err := gen(warmStart, genWarm); err != nil {
				return nil, err
			}
			if err := gen(start, genSim); err != nil {
				return nil, err
			}
			if jw != nil {
				for vi, m := range ms {
					if err := appendRec(jw, journalRec{Type: "snap", Interval: ci, Variant: vi, Snap: Capture(m, start)}); err != nil {
						return nil, err
					}
				}
			}
		}
		for vi, m := range ms {
			bases[vi] = readBaseline(m)
		}
		if err := gen(start+plan.IntervalLen, genSim); err != nil {
			return nil, err
		}
		for vi, m := range ms {
			after := readBaseline(m)
			im := IntervalMetrics{
				Shadow: counters.Diff(after.shadow, bases[vi].shadow),
				Pager:  statsDiff(after.pager, bases[vi].pager),
				Cycles: after.cycles - bases[vi].cycles,
				Refs:   plan.IntervalLen,
			}
			out[vi].Intervals[ci] = im
			if jw != nil {
				if err := appendRec(jw, journalRec{Type: "metrics", Interval: ci, Variant: vi, Metrics: &im}); err != nil {
					return nil, err
				}
			}
		}
	}
	// Warm the tail past the last representative so Final's cumulative
	// VM-event counts cover the entire timeline [0, TotalRefs).
	if err := gen(plan.TotalRefs, genWarm); err != nil {
		return nil, err
	}
	for vi, m := range ms {
		t := readBaseline(m)
		fm := IntervalMetrics{Shadow: t.shadow, Pager: t.pager, Cycles: t.cycles, Refs: plan.TotalRefs}
		out[vi].Final = fm
		if jw != nil {
			if err := appendRec(jw, journalRec{Type: "final", Variant: vi, Metrics: &fm}); err != nil {
				return nil, err
			}
		}
	}
	if jw != nil {
		return out, jw.Close()
	}
	return out, nil
}

func appendRec(w *journal.Writer, rec journalRec) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("sample: encoding journal record: %w", err)
	}
	return w.Append(b)
}
