package sample

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/journal"
	"repro/internal/machine"
	"repro/internal/workload"
)

// FuzzSnapshotJournal fuzzes the two failure surfaces a checkpointed run
// depends on: the snapshot's serialized round-trip (a restored machine must
// be bit-for-bit the captured one over the rest of the stream) and the
// CRC-framed journal's torn-write recovery (a truncated file must replay to
// either the intact snapshot or a cleanly detected torn/absent frame —
// never a corrupt state that restores without error).
func FuzzSnapshotJournal(f *testing.F) {
	f.Add(uint64(1), uint16(10_000), uint16(65_535))
	f.Add(uint64(2), uint16(33_333), uint16(17))
	f.Add(uint64(3), uint16(5_000), uint16(0))
	f.Add(uint64(4), uint16(60_000), uint16(40_000))
	f.Fuzz(func(t *testing.T, seed uint64, prefix16, cut16 uint16) {
		prefix := int64(prefix16)%50_000 + 1_000
		const tail = 10_000
		spec := workload.SLCSpec()
		cfg := testConfig(prefix + tail)
		cfg.Seed = seed

		// Original: simulate to the snapshot point, capture.
		m1 := machine.New(cfg)
		s1 := workload.NewScript(m1, seed, spec)
		m1.Pager.Runnable = s1.Runnable
		var pos1 int64
		drive(t, m1, s1, &pos1, prefix, true)
		snap := Capture(m1, prefix)

		// Journal the snapshot, then truncate at a fuzzed byte offset.
		dir := t.TempDir()
		path := filepath.Join(dir, "snap.journal")
		w, err := journal.Create(path, journal.Header{Kind: "fuzz-snap", SpecKey: "k", Version: "v"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(b); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// headerEnd: bytes an empty journal occupies (magic + header frame).
		empty := filepath.Join(dir, "empty.journal")
		we, err := journal.Create(empty, journal.Header{Kind: "fuzz-snap", SpecKey: "k", Version: "v"})
		if err != nil {
			t.Fatal(err)
		}
		if err := we.Close(); err != nil {
			t.Fatal(err)
		}
		ei, err := os.Stat(empty)
		if err != nil {
			t.Fatal(err)
		}
		headerEnd := int(ei.Size())

		cut := int(uint64(cut16) * uint64(len(data)+1) / 65_536)
		if cut > len(data) {
			cut = len(data)
		}
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		rep, err := journal.Replay(path)
		if err != nil {
			// Only a cut inside the magic/header may make the file
			// unreadable; past that, recovery must succeed.
			if cut >= headerEnd {
				t.Fatalf("cut %d/%d (header %d): replay failed: %v", cut, len(data), headerEnd, err)
			}
			return
		}
		switch len(rep.Entries) {
		case 0:
			// Torn snapshot frame: detected and dropped. The driver
			// re-simulates from the stream start; nothing to verify.
			if cut == len(data) {
				t.Fatalf("intact journal replayed to zero entries")
			}
			return
		case 1:
		default:
			t.Fatalf("replayed %d entries from a one-snapshot journal", len(rep.Entries))
		}

		// The frame survived its CRC: it must decode and restore into a
		// machine indistinguishable from the original.
		var restored MachineState
		if err := json.Unmarshal(rep.Entries[0], &restored); err != nil {
			t.Fatalf("CRC-valid frame failed to decode: %v", err)
		}
		m2 := machine.New(cfg)
		s2 := workload.NewScript(m2, seed, spec)
		m2.Pager.Runnable = s2.Runnable
		var pos2 int64
		drive(t, m2, s2, &pos2, prefix, false)
		if err := Restore(m2, &restored); err != nil {
			t.Fatalf("restore of round-tripped snapshot: %v", err)
		}
		drive(t, m1, s1, &pos1, prefix+tail, true)
		drive(t, m2, s2, &pos2, prefix+tail, true)
		if !reflect.DeepEqual(Capture(m1, prefix+tail), Capture(m2, prefix+tail)) {
			t.Fatalf("seed %d prefix %d: restored machine diverged from original", seed, prefix)
		}
	})
}
