package xlate

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/counters"
	"repro/internal/pte"
	"repro/internal/timing"
)

const pteSeg = addr.SegmentID(255)

func newUnit() (*Unit, *cache.Cache, *counters.Set) {
	tbl := pte.NewTable(pteSeg)
	c := cache.New(128 * 1024)
	ctr := counters.New()
	return New(tbl, c, ctr, timing.Default()), c, ctr
}

func TestTranslateMissThenHit(t *testing.T) {
	u, _, ctr := newUnit()
	p := addr.PageIn(3, 17)
	u.Table().Set(p, pte.Make(7, pte.ProtReadWrite))

	// First translation: PTE block not cached -> L2 access + fetch.
	r1 := u.Translate(p)
	if r1.PTEHit {
		t.Error("first translation hit")
	}
	if !r1.Entry.Valid() || r1.Entry.PFN() != 7 {
		t.Errorf("entry = %v", r1.Entry)
	}
	tp := timing.Default()
	wantMiss := uint64(tp.PTECheckCycles) + uint64(tp.L2WordCycles) + tp.BlockFetchCycles()
	if r1.Cycles != wantMiss {
		t.Errorf("miss cycles = %d, want %d", r1.Cycles, wantMiss)
	}

	// Second translation: the PTE block is now cached.
	r2 := u.Translate(p)
	if !r2.PTEHit {
		t.Error("second translation missed")
	}
	if r2.Cycles != uint64(timing.Default().PTECheckCycles) {
		t.Errorf("hit cycles = %d", r2.Cycles)
	}

	if ctr.Count(counters.EvXlateWalk) != 2 || ctr.Count(counters.EvPTEHit) != 1 ||
		ctr.Count(counters.EvPTEMiss) != 1 || ctr.Count(counters.EvL2Access) != 1 {
		t.Errorf("counter mix: walk=%d hit=%d miss=%d l2=%d",
			ctr.Count(counters.EvXlateWalk), ctr.Count(counters.EvPTEHit),
			ctr.Count(counters.EvPTEMiss), ctr.Count(counters.EvL2Access))
	}
}

func TestNeighbouringPTEsShareABlock(t *testing.T) {
	u, _, ctr := newUnit()
	// Eight consecutive pages' PTEs share one 32-byte block: after
	// translating the first, the other seven hit.
	base := addr.PageIn(3, 0)
	for i := 0; i < pte.PTEsPerBlock; i++ {
		u.Table().Set(base+addr.GVPN(i), pte.Make(addr.PFN(i), pte.ProtReadOnly))
	}
	u.Translate(base)
	for i := 1; i < pte.PTEsPerBlock; i++ {
		if r := u.Translate(base + addr.GVPN(i)); !r.PTEHit {
			t.Errorf("PTE %d did not hit after neighbour fetched", i)
		}
	}
	if ctr.Count(counters.EvPTEMiss) != 1 {
		t.Errorf("PTE misses = %d, want 1", ctr.Count(counters.EvPTEMiss))
	}
}

func TestTranslateInvalidPage(t *testing.T) {
	u, _, _ := newUnit()
	r := u.Translate(addr.PageIn(2, 99))
	if r.Entry.Valid() {
		t.Error("translation of unmapped page returned valid entry")
	}
}

func TestPTECompetesForCacheLines(t *testing.T) {
	u, c, _ := newUnit()
	p := addr.PageIn(3, 0)
	u.Table().Set(p, pte.Make(1, pte.ProtReadOnly))
	u.Translate(p)

	// A data block that maps to the same line frame evicts the PTE block.
	pteBlock := u.Table().PTEAddr(p).Block()
	conflict := pteBlock + addr.BlockAddr(c.Lines())
	v, evicted := c.Fill(conflict, 1 /* UnOwned */, pte.ProtReadOnly, false, false, false)
	if !evicted || !v.IsPTE {
		t.Fatalf("expected PTE victim, got %+v (evicted=%v)", v, evicted)
	}
	if r := u.Translate(p); r.PTEHit {
		t.Error("PTE hit after its block was displaced by data")
	}
}

func TestUpdatePTEWhenCached(t *testing.T) {
	u, c, _ := newUnit()
	p := addr.PageIn(3, 4)
	u.Table().Set(p, pte.Make(9, pte.ProtReadOnly))
	u.Translate(p) // cache the PTE block

	e, cycles := u.UpdatePTE(p, func(e pte.Entry) pte.Entry { return e.WithDirty(true) })
	if !e.Dirty() || !u.Table().Lookup(p).Dirty() {
		t.Error("update not applied")
	}
	if cycles != 0 {
		t.Errorf("cached PTE update cost %d cycles", cycles)
	}
	l, hit := c.Probe(u.Table().PTEAddr(p).Block())
	if !hit || !l.BlockDirty() {
		t.Error("PTE block not marked modified after software update")
	}
}

func TestUpdatePTEWhenNotCached(t *testing.T) {
	u, _, _ := newUnit()
	p := addr.PageIn(3, 4)
	u.Table().Set(p, pte.Make(9, pte.ProtReadOnly))
	_, cycles := u.UpdatePTE(p, func(e pte.Entry) pte.Entry { return e.WithDirty(true) })
	if cycles == 0 {
		t.Error("uncached PTE update cost nothing")
	}
	if r := u.Translate(p); !r.PTEHit {
		t.Error("PTE block not resident after update")
	}
}

func TestCheckPTE(t *testing.T) {
	u, _, ctr := newUnit()
	p := addr.PageIn(3, 8)
	u.Table().Set(p, pte.Make(2, pte.ProtReadWrite).WithDirty(true))
	e, cycles := u.CheckPTE(p)
	if !e.Dirty() {
		t.Error("CheckPTE returned wrong entry")
	}
	if cycles == 0 {
		t.Error("CheckPTE free")
	}
	if ctr.Count(counters.EvDirtyCheck) != 1 {
		t.Error("dirty-check not counted")
	}
	// Second check is the cheap cached case (t_dc's 3-cycle component).
	_, cycles = u.CheckPTE(p)
	if cycles != uint64(timing.Default().PTECheckCycles) {
		t.Errorf("cached check = %d cycles", cycles)
	}
}
