// Package xlate implements SPUR's in-cache address translation [Wood86].
//
// SPUR has no TLB. When a reference misses in the virtual-address cache, the
// cache controller computes the virtual address of the page's first-level
// PTE with a shift-and-concatenate circuit and looks for that PTE *in the
// cache itself*, using the unified cache as a very large TLB. If the PTE's
// block is not cached, the controller consults the second-level PTE — wired
// down at a well-known address, so it can be read directly from memory —
// and fetches the first-level PTE block into the cache (where it then
// competes with instructions and data for its line frame).
package xlate

import (
	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/counters"
	"repro/internal/pte"
	"repro/internal/timing"
)

// Unit is the translation portion of the cache controller.
type Unit struct {
	tbl *pte.Table
	c   *cache.Cache
	ctr *counters.Set
	tp  timing.Params
}

// New wires a translation unit to the page table, the cache it shares with
// ordinary references, the performance counters, and the timing parameters.
func New(tbl *pte.Table, c *cache.Cache, ctr *counters.Set, tp timing.Params) *Unit {
	return &Unit{tbl: tbl, c: c, ctr: ctr, tp: tp}
}

// Table returns the page table the unit translates against.
func (u *Unit) Table() *pte.Table { return u.tbl }

// Result reports one translation.
type Result struct {
	// Entry is the PTE found; Entry.Valid() false means page fault.
	Entry pte.Entry
	// Cycles is the translation cost, excluding the missing reference's
	// own block fetch.
	Cycles uint64
	// PTEHit reports whether the first-level PTE was found in the cache.
	PTEHit bool
	// Victim is the block displaced when the PTE block was fetched; only
	// meaningful when Evicted is true.
	Victim  cache.Victim
	Evicted bool
}

// Translate performs in-cache translation for page p. It is called on every
// cache miss (and by the WRITE dirty-bit policy's PTE check on write hits to
// clean blocks).
func (u *Unit) Translate(p addr.GVPN) Result {
	if entry, cycles, hit := u.TranslateCached(p); hit {
		return Result{Entry: entry, Cycles: cycles, PTEHit: true}
	}
	return u.TranslateMiss(p)
}

// TranslateCached is the common translation case, returned in registers: the
// first-level PTE block is already in the cache, so the walk costs only the
// in-cache check. When it reports false the caller must follow with
// TranslateMiss — the walk has been counted but nothing fetched. The split
// exists for the engine's miss path, where translation runs on every cache
// miss and the Result struct is too wide to return by value for a hit.
func (u *Unit) TranslateCached(p addr.GVPN) (pte.Entry, uint64, bool) {
	u.ctr.Inc(counters.EvXlateWalk)
	if _, hit := u.c.Probe(u.tbl.PTEAddr(p).Block()); !hit {
		return 0, 0, false
	}
	u.ctr.Inc(counters.EvPTEHit)
	return u.tbl.Lookup(p), uint64(u.tp.PTECheckCycles), true
}

// TranslateMiss completes a translation whose first-level PTE block missed
// in the cache (TranslateCached returned false): read the wired second-level
// PTE directly from memory, then fetch the first-level PTE block into the
// cache — over the snooped bus, so another controller holding the block
// exclusively supplies it and degrades to shared ownership.
func (u *Unit) TranslateMiss(p addr.GVPN) Result {
	res := Result{Cycles: uint64(u.tp.PTECheckCycles)}
	pteBlock := u.tbl.PTEAddr(p).Block()
	u.ctr.Inc(counters.EvPTEMiss)
	u.ctr.Inc(counters.EvL2Access)
	u.ctr.Inc(counters.EvBusRead)
	res.Cycles += uint64(u.tp.L2WordCycles) + u.tp.BlockFetchCycles()
	u.c.IssueBus(coherence.BusRead, pteBlock)
	res.Victim, res.Evicted = u.c.Fill(pteBlock, coherence.UnOwned, pte.ProtKernel, false, true, false)
	if res.Evicted && res.Victim.WriteBack {
		u.ctr.Inc(counters.EvBusWrite)
		res.Cycles += u.tp.WriteBackCycles()
	}
	res.Entry = u.tbl.Lookup(p)
	return res
}

// UpdatePTE applies a software update to page p's PTE, modelling the fault
// handler's store through the cache: the PTE block is made resident (if it
// is not, it is fetched exactly as a write miss would be) and marked
// modified. The returned cycles cover only the memory-system work; the
// handler's own ~1000-cycle cost (t_ds) is charged by the caller.
func (u *Unit) UpdatePTE(p addr.GVPN, fn func(pte.Entry) pte.Entry) (pte.Entry, uint64) {
	var cycles uint64
	pteBlock := u.tbl.PTEAddr(p).Block()
	if l, hit := u.c.Probe(pteBlock); hit {
		// A kernel store to a shared PTE block must take ownership:
		// other processors' cached copies of the block are invalidated
		// through the bus, which is how their in-cache "TLB entries"
		// learn the PTE changed.
		ns, op, need := coherence.OnLocalWrite(l.State())
		if need {
			u.c.IssueBus(op, pteBlock)
		}
		l.SetState(ns)
		l.SetBlockDirty(true)
	} else {
		u.ctr.Inc(counters.EvBusRead)
		cycles += uint64(u.tp.L2WordCycles) + u.tp.BlockFetchCycles()
		u.c.IssueBus(coherence.BusReadOwn, pteBlock)
		v, evicted := u.c.Fill(pteBlock, coherence.OwnedExclusive, pte.ProtKernel, false, true, true)
		if evicted && v.WriteBack {
			u.ctr.Inc(counters.EvBusWrite)
			cycles += u.tp.WriteBackCycles()
		}
	}
	return u.tbl.Update(p, fn), cycles
}

// CheckPTE reads page p's PTE the way the WRITE policy's hardware check
// does on a write hit to a clean block: it costs a cache probe of the PTE
// block plus the weighted miss penalty when absent (the paper's t_dc ≈ 5
// cycles on average).
func (u *Unit) CheckPTE(p addr.GVPN) (pte.Entry, uint64) {
	u.ctr.Inc(counters.EvDirtyCheck)
	res := u.Translate(p)
	return res.Entry, res.Cycles
}
