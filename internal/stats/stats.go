// Package stats provides the small statistical toolkit the experiments use:
// summary statistics over repetitions and the seeded shuffling behind the
// paper's randomized experiment design ("five repetitions of each data
// point, using a randomized experiment design to minimize bias").
package stats

import (
	"math"
	"math/bits"
)

// Summary holds the moments of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
}

// Summarize computes mean and sample standard deviation.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{N: 1, Mean: mean}
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return Summary{N: n, Mean: mean, StdDev: math.Sqrt(ss / float64(n-1))}
}

// tCrit95 holds two-sided 95% Student-t critical values for small samples
// (index = degrees of freedom); beyond the table 1.96 is used.
var tCrit95 = []float64{0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228}

// CI95 returns the half-width of the 95% confidence interval of the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	df := s.N - 1
	t := 1.96
	if df < len(tCrit95) {
		t = tCrit95[df]
	}
	return t * s.StdDev / math.Sqrt(float64(s.N))
}

// Uint64n draws an unbiased uniform value in [0, n) from the stream next,
// using Lemire's multiply-with-rejection method: the raw 64-bit draw is
// mapped through a 128-bit multiply, and the few draws that land in the
// truncated low fringe (where a plain `x % n` over-represents small
// residues) are rejected and redrawn. n must be nonzero.
func Uint64n(next func() uint64, n uint64) uint64 {
	hi, lo := bits.Mul64(next(), n)
	if lo < n {
		thresh := -n % n // (2^64 - n) mod n: the biased fringe
		for lo < thresh {
			hi, lo = bits.Mul64(next(), n)
		}
	}
	return hi
}

// Shuffle permutes order in place with a splitmix64-derived Fisher-Yates,
// giving a deterministic randomized run order for a given seed. Index
// draws are unbiased (Lemire rejection), not truncated with a modulo.
func Shuffle[T any](xs []T, seed uint64) {
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := len(xs) - 1; i > 0; i-- {
		j := int(Uint64n(next, uint64(i+1)))
		xs[i], xs[j] = xs[j], xs[i]
	}
}
