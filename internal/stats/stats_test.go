package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Errorf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95() != 0 {
		t.Errorf("empty = %+v", s)
	}
	if s := Summarize([]float64{3}); s.N != 1 || s.Mean != 3 || s.StdDev != 0 || s.CI95() != 0 {
		t.Errorf("singleton = %+v", s)
	}
}

func TestCI95(t *testing.T) {
	// n=5, sd=1: half-width = 2.776/sqrt(5).
	s := Summary{N: 5, Mean: 0, StdDev: 1}
	want := 2.776 / math.Sqrt(5)
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
	// Large n falls back to 1.96.
	s = Summary{N: 100, StdDev: 1}
	if math.Abs(s.CI95()-0.196) > 1e-9 {
		t.Errorf("large-n CI95 = %v", s.CI95())
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		xs := make([]int, 50)
		for i := range xs {
			xs[i] = i
		}
		Shuffle(xs, seed)
		seen := make([]bool, 50)
		for _, x := range xs {
			if x < 0 || x >= 50 || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleDeterministicAndSeedSensitive(t *testing.T) {
	mk := func(seed uint64) []int {
		xs := make([]int, 20)
		for i := range xs {
			xs[i] = i
		}
		Shuffle(xs, seed)
		return xs
	}
	a, b := mk(5), mk(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed shuffled differently")
		}
	}
	c := mk(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave same permutation")
	}
}
