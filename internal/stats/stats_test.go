package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Errorf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEdge(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95() != 0 {
		t.Errorf("empty = %+v", s)
	}
	if s := Summarize([]float64{3}); s.N != 1 || s.Mean != 3 || s.StdDev != 0 || s.CI95() != 0 {
		t.Errorf("singleton = %+v", s)
	}
}

func TestCI95(t *testing.T) {
	// n=5, sd=1: half-width = 2.776/sqrt(5).
	s := Summary{N: 5, Mean: 0, StdDev: 1}
	want := 2.776 / math.Sqrt(5)
	if math.Abs(s.CI95()-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", s.CI95(), want)
	}
	// Large n falls back to 1.96.
	s = Summary{N: 100, StdDev: 1}
	if math.Abs(s.CI95()-0.196) > 1e-9 {
		t.Errorf("large-n CI95 = %v", s.CI95())
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		xs := make([]int, 50)
		for i := range xs {
			xs[i] = i
		}
		Shuffle(xs, seed)
		seen := make([]bool, 50)
		for _, x := range xs {
			if x < 0 || x >= 50 || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleDeterministicAndSeedSensitive(t *testing.T) {
	mk := func(seed uint64) []int {
		xs := make([]int, 20)
		for i := range xs {
			xs[i] = i
		}
		Shuffle(xs, seed)
		return xs
	}
	a, b := mk(5), mk(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed shuffled differently")
		}
	}
	c := mk(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave same permutation")
	}
}

func TestUint64nRangeAndDeterminism(t *testing.T) {
	mk := func(seed uint64) func() uint64 {
		state := seed
		return func() uint64 {
			state += 0x9e3779b97f4a7c15
			z := state
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
	}
	a, b := mk(3), mk(3)
	for i := 0; i < 1000; i++ {
		x, y := Uint64n(a, 7), Uint64n(b, 7)
		if x != y {
			t.Fatal("same stream diverged")
		}
		if x >= 7 {
			t.Fatalf("Uint64n(7) = %d", x)
		}
	}
}

func TestUint64nUnbiased(t *testing.T) {
	// A bound just above 2^63 makes modulo bias enormous (an `x % n` draw
	// would land in the low half about 75% of the time); Lemire rejection
	// must keep the halves balanced.
	const n = uint64(1)<<63 + 12345
	state := uint64(99)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	low := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		if Uint64n(next, n) < n/2 {
			low++
		}
	}
	if frac := float64(low) / draws; frac < 0.47 || frac > 0.53 {
		t.Errorf("low-half fraction %.3f; biased draw", frac)
	}
}
