// Package parallel is the experiment engine's concurrency substrate: a
// bounded worker pool with deterministic result ordering, per-cell seed
// derivation, context cancellation, and serialized progress reporting.
//
// The engine's contract is that parallelism never changes results. Each job
// owns a distinct result slot (indexed by job number), jobs share no mutable
// state, and every cell's workload RNG stream is derived from the experiment
// seed and the cell's coordinates alone — so a sweep at Workers=N is
// byte-identical to the serial sweep, only faster.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Options configures one bounded parallel run.
type Options struct {
	// Workers bounds how many jobs run at once; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Context, when non-nil, cancels the run early: jobs not yet started
	// are skipped and ForEach/Map return the context's error. Jobs already
	// running are never interrupted mid-flight, so completed slots stay
	// deterministic.
	Context context.Context
	// Progress, when set, is called after each job finishes with how many
	// jobs have completed and the total. Calls are serialized; done is
	// strictly increasing from 1 to total.
	Progress func(done, total int)
	// Skip, when set, is consulted as each job is claimed: a true return
	// means the job's result already exists (e.g. replayed from a
	// checkpoint journal) and fn is not called. Skipped jobs still count
	// toward Progress, so done still reaches total.
	Skip func(i int) bool
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n), at most Workers at a time.
// Jobs are claimed in index order, so a caller that wants the paper's
// randomized experiment design shuffles its job list before submitting and
// indexes results by each job's own coordinates. A panic in any fn is
// re-raised in the caller's goroutine after the surviving workers drain.
func ForEach(n int, opts Options, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	ctx := opts.Context
	var (
		next  atomic.Int64
		done  atomic.Int64
		wg    sync.WaitGroup
		mu    sync.Mutex // serializes Progress
		panMu sync.Mutex
		pan   any
	)
	next.Store(-1)
	for g := opts.workers(n); g > 0; g-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panMu.Lock()
					if pan == nil {
						pan = r
					}
					panMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					return
				}
				if opts.Skip == nil || !opts.Skip(i) {
					fn(i)
				}
				if opts.Progress != nil {
					d := int(done.Add(1))
					mu.Lock()
					opts.Progress(d, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if pan != nil {
		panic(pan)
	}
	if ctx != nil {
		return ctx.Err()
	}
	return nil
}

// Map runs fn over [0, n) on the bounded pool and returns the results in
// index order — deterministic regardless of which worker computed what.
func Map[T any](n int, opts Options, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, opts, func(i int) {
		out[i] = fn(i)
	})
	return out, err
}

// DeriveSeed mixes a base experiment seed with coordinate labels (cell
// index, repetition, ...) through splitmix64 finalizers, giving every
// (cell, rep) its own well-separated workload RNG stream: two runs share a
// stream only if base and every label match. The result is never zero,
// since zero means "unset" to the option fillers upstream.
func DeriveSeed(base uint64, labels ...uint64) uint64 {
	x := mix(base + 0x9e3779b97f4a7c15)
	for _, l := range labels {
		x = mix(x + 0x9e3779b97f4a7c15*(l+1))
	}
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	return x
}

// mix is the splitmix64 output finalizer.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
