package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		out, err := Map(50, Options{Workers: workers}, func(i int) int { return i * i })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, Options{}, func(int) { t.Error("ran a job") }); err != nil {
		t.Fatal(err)
	}
}

func TestSkipPredicate(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran [10]atomic.Int64
		var progress []int
		err := ForEach(10, Options{
			Workers:  workers,
			Skip:     func(i int) bool { return i%2 == 1 },
			Progress: func(done, total int) { progress = append(progress, done) },
		}, func(i int) {
			ran[i].Add(1)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			want := int64(1)
			if i%2 == 1 {
				want = 0
			}
			if got := ran[i].Load(); got != want {
				t.Errorf("workers=%d: job %d ran %d times, want %d", workers, i, got, want)
			}
		}
		// Skipped jobs still count toward progress: done reaches the total.
		if len(progress) != 10 || progress[9] != 10 {
			t.Errorf("workers=%d: progress = %v, want 10 strictly increasing calls", workers, progress)
		}
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{}, 64)
	go func() {
		// Release jobs only once a few have piled up at the gate.
		for i := 0; i < workers; i++ {
			<-started
		}
		close(gate)
	}()
	err := ForEach(24, Options{Workers: workers}, func(i int) {
		cur := inFlight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
		inFlight.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeded %d workers", p, workers)
	}
}

func TestProgressSerializedAndComplete(t *testing.T) {
	const n = 40
	var dones []int
	err := ForEach(n, Options{Workers: 4, Progress: func(done, total int) {
		if total != n {
			t.Errorf("total = %d", total)
		}
		dones = append(dones, done) // safe: Progress calls are serialized
	}}, func(int) {})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != n {
		t.Fatalf("%d progress calls, want %d", len(dones), n)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress out of order: dones[%d] = %d", i, d)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(1000, Options{Workers: 2, Context: ctx}, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if r := ran.Load(); r >= 1000 {
		t.Errorf("cancellation did not stop the run (ran %d)", r)
	}
}

func TestPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	_ = ForEach(10, Options{Workers: 2}, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
	t.Error("ForEach returned instead of panicking")
}

func TestDeriveSeedSeparation(t *testing.T) {
	seen := map[uint64]bool{}
	for base := uint64(0); base < 4; base++ {
		for cell := uint64(0); cell < 64; cell++ {
			for rep := uint64(0); rep < 8; rep++ {
				s := DeriveSeed(base, cell, rep)
				if s == 0 {
					t.Fatalf("DeriveSeed(%d,%d,%d) = 0", base, cell, rep)
				}
				if seen[s] {
					t.Fatalf("seed collision at (%d,%d,%d)", base, cell, rep)
				}
				seen[s] = true
			}
		}
	}
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Error("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Error("DeriveSeed insensitive to label order")
	}
	if DeriveSeed(1) == DeriveSeed(1, 0) {
		t.Error("DeriveSeed ignores a zero label")
	}
}
