// Package addr defines the address types and arithmetic used throughout the
// SPUR memory-system simulator.
//
// SPUR processes see a 32-bit virtual address space. To prevent virtual
// address synonyms, the operating system forces processes that share memory
// to use the same *global* virtual address: the hardware maps the top two
// bits of a process virtual address through one of four per-process segment
// registers into a 38-bit global virtual space, and the cache is indexed and
// tagged with global virtual addresses only [Hill86]. This package models
// that mapping plus the page (4 KB) and cache-block (32 B) arithmetic.
package addr

import "fmt"

// Architectural constants of the SPUR prototype (Table 2.1 of the paper).
const (
	// BlockShift is log2 of the cache block size (32 bytes).
	BlockShift = 5
	// BlockBytes is the cache block size in bytes.
	BlockBytes = 1 << BlockShift
	// PageShift is log2 of the virtual-memory page size (4 Kbytes).
	PageShift = 12
	// PageBytes is the page size in bytes.
	PageBytes = 1 << PageShift
	// BlocksPerPage is the number of cache blocks in one page (128).
	BlocksPerPage = PageBytes / BlockBytes

	// SegmentShift is the bit position where the segment number begins in
	// a process virtual address: the top two bits select one of four
	// segment registers, each mapping a 1 GB quadrant.
	SegmentShift = 30
	// NumSegments is the number of segment registers per process.
	NumSegments = 4
	// SegmentMask extracts the within-segment offset of a process VA.
	SegmentMask = (1 << SegmentShift) - 1

	// GlobalBits is the width of a global virtual address.
	GlobalBits = 38
	// SegmentIDBits is the width of a segment register value: a segment
	// register holds the top GlobalBits-SegmentShift bits of the global
	// address.
	SegmentIDBits = GlobalBits - SegmentShift
	// MaxSegmentID is the largest valid segment register value.
	MaxSegmentID = 1<<SegmentIDBits - 1
)

// VA is a 32-bit process virtual address.
type VA uint32

// GVA is a 38-bit global virtual address (held in a uint64).
type GVA uint64

// GVPN is a global virtual page number (GVA >> PageShift).
type GVPN uint64

// BlockAddr is a global virtual cache-block address (GVA >> BlockShift).
type BlockAddr uint64

// PFN is a physical frame number.
type PFN uint32

// SegmentID identifies one 1 GB segment of the global virtual space.
type SegmentID uint16

// Segment returns the segment-register index (0..3) selected by v.
func (v VA) Segment() int { return int(v >> SegmentShift) }

// Offset returns the within-segment offset of v.
func (v VA) Offset() uint32 { return uint32(v) & SegmentMask }

// Page returns the global virtual page number containing g.
func (g GVA) Page() GVPN { return GVPN(g >> PageShift) }

// Block returns the global virtual block address containing g.
func (g GVA) Block() BlockAddr { return BlockAddr(g >> BlockShift) }

// PageOffset returns the byte offset of g within its page.
func (g GVA) PageOffset() uint32 { return uint32(g) & (PageBytes - 1) }

// BlockOffset returns the byte offset of g within its cache block.
func (g GVA) BlockOffset() uint32 { return uint32(g) & (BlockBytes - 1) }

// String formats the global address in hex.
func (g GVA) String() string { return fmt.Sprintf("gva:%#x", uint64(g)) }

// Base returns the first global virtual address of the page.
func (p GVPN) Base() GVA { return GVA(p) << PageShift }

// FirstBlock returns the first block address of the page.
func (p GVPN) FirstBlock() BlockAddr { return BlockAddr(p) << (PageShift - BlockShift) }

// BlockIndex returns the index (0..BlocksPerPage-1) of block b within its page.
func (b BlockAddr) BlockIndex() int { return int(b) & (BlocksPerPage - 1) }

// Page returns the page containing block b.
func (b BlockAddr) Page() GVPN { return GVPN(b >> (PageShift - BlockShift)) }

// GVA returns the first global virtual address of the block.
func (b BlockAddr) GVA() GVA { return GVA(b) << BlockShift }

// SegmentMap is the per-process set of four segment registers. A zero
// SegmentMap maps every quadrant to segment 0, which the OS reserves; user
// processes are given distinct segments by the process substrate.
type SegmentMap [NumSegments]SegmentID

// Translate maps a process virtual address to its global virtual address by
// concatenating the selected segment register with the segment offset. This
// is the hardware's synonym-prevention mapping: it is done on every access
// and never faults.
func (m *SegmentMap) Translate(v VA) GVA {
	return GVA(m[v.Segment()])<<SegmentShift | GVA(v.Offset())
}

// Global constructs a global virtual address directly from a segment and a
// within-segment offset. Offsets larger than a segment wrap within it.
func Global(seg SegmentID, offset uint64) GVA {
	return GVA(seg)<<SegmentShift | GVA(offset&SegmentMask)
}

// PageIn returns the n'th page of segment seg.
func PageIn(seg SegmentID, n int) GVPN {
	return Global(seg, uint64(n)<<PageShift).Page()
}
