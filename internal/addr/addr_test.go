package addr

import (
	"testing"
	"testing/quick"
)

func TestConstants(t *testing.T) {
	if BlockBytes != 32 {
		t.Errorf("BlockBytes = %d, want 32", BlockBytes)
	}
	if PageBytes != 4096 {
		t.Errorf("PageBytes = %d, want 4096", PageBytes)
	}
	if BlocksPerPage != 128 {
		t.Errorf("BlocksPerPage = %d, want 128", BlocksPerPage)
	}
	if MaxSegmentID != 255 {
		t.Errorf("MaxSegmentID = %d, want 255", MaxSegmentID)
	}
}

func TestVASegmentOffset(t *testing.T) {
	cases := []struct {
		va  VA
		seg int
		off uint32
	}{
		{0, 0, 0},
		{0x3FFFFFFF, 0, 0x3FFFFFFF},
		{0x40000000, 1, 0},
		{0x80000001, 2, 1},
		{0xFFFFFFFF, 3, 0x3FFFFFFF},
	}
	for _, c := range cases {
		if got := c.va.Segment(); got != c.seg {
			t.Errorf("VA(%#x).Segment() = %d, want %d", uint32(c.va), got, c.seg)
		}
		if got := c.va.Offset(); got != c.off {
			t.Errorf("VA(%#x).Offset() = %#x, want %#x", uint32(c.va), got, c.off)
		}
	}
}

func TestSegmentMapTranslate(t *testing.T) {
	m := SegmentMap{10, 20, 30, 40}
	cases := []struct {
		va   VA
		want GVA
	}{
		{0x00000000, GVA(10) << SegmentShift},
		{0x00001234, GVA(10)<<SegmentShift | 0x1234},
		{0x40000000, GVA(20) << SegmentShift},
		{0xC0000FFF, GVA(40)<<SegmentShift | 0xFFF},
	}
	for _, c := range cases {
		if got := m.Translate(c.va); got != c.want {
			t.Errorf("Translate(%#x) = %#x, want %#x", uint32(c.va), uint64(got), uint64(c.want))
		}
	}
}

func TestTranslatePreservesOffset(t *testing.T) {
	// Property: translation preserves the within-segment offset and the
	// result fits in GlobalBits bits.
	m := SegmentMap{1, 2, 3, MaxSegmentID}
	f := func(v uint32) bool {
		g := m.Translate(VA(v))
		if uint64(g)>>GlobalBits != 0 {
			return false
		}
		return uint32(g)&SegmentMask == VA(v).Offset()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageBlockRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		g := GVA(raw & (1<<GlobalBits - 1))
		p := g.Page()
		b := g.Block()
		if b.Page() != p {
			return false
		}
		if p.Base().Page() != p {
			return false
		}
		if b.GVA().Block() != b {
			return false
		}
		// The block index is consistent with the page-relative offset.
		return b.BlockIndex() == int(g.PageOffset())>>BlockShift
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageFirstBlock(t *testing.T) {
	p := GVPN(7)
	if got := p.FirstBlock(); got != BlockAddr(7*BlocksPerPage) {
		t.Errorf("FirstBlock = %d, want %d", got, 7*BlocksPerPage)
	}
	// Walking the page's blocks stays within the page.
	for i := 0; i < BlocksPerPage; i++ {
		b := p.FirstBlock() + BlockAddr(i)
		if b.Page() != p {
			t.Fatalf("block %d of page maps to page %d", i, b.Page())
		}
		if b.BlockIndex() != i {
			t.Fatalf("block %d index = %d", i, b.BlockIndex())
		}
	}
}

func TestGlobalAndPageIn(t *testing.T) {
	g := Global(5, 0x2000)
	if g.Page() != PageIn(5, 2) {
		t.Errorf("Global/PageIn disagree: %v vs %v", g.Page(), PageIn(5, 2))
	}
	if got := Global(5, 1<<SegmentShift); got != Global(5, 0) {
		t.Errorf("Global should wrap offsets within the segment: %#x", uint64(got))
	}
}

func TestGVAString(t *testing.T) {
	if s := GVA(0x1f).String(); s != "gva:0x1f" {
		t.Errorf("String() = %q", s)
	}
}
