package coherence

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestStatePredicates(t *testing.T) {
	cases := []struct {
		s            State
		valid, owned bool
	}{
		{Invalid, false, false},
		{UnOwned, true, false},
		{OwnedShared, true, true},
		{OwnedExclusive, true, true},
	}
	for _, c := range cases {
		if c.s.Valid() != c.valid || c.s.Owned() != c.owned {
			t.Errorf("%v: Valid=%v Owned=%v", c.s, c.s.Valid(), c.s.Owned())
		}
	}
}

func TestStrings(t *testing.T) {
	for _, s := range []State{Invalid, UnOwned, OwnedShared, OwnedExclusive} {
		if strings.Contains(s.String(), "State(") {
			t.Errorf("missing name for %d", s)
		}
	}
	for _, op := range []BusOp{BusRead, BusReadOwn, BusInval, BusWriteBack} {
		if strings.Contains(op.String(), "BusOp(") {
			t.Errorf("missing name for op %d", op)
		}
	}
	if !strings.Contains(State(9).String(), "9") || !strings.Contains(BusOp(9).String(), "9") {
		t.Error("fallback strings broken")
	}
}

func TestOnLocalRead(t *testing.T) {
	for _, s := range []State{UnOwned, OwnedShared, OwnedExclusive} {
		ns, bus := OnLocalRead(s)
		if ns != s || bus {
			t.Errorf("read hit on %v: got %v bus=%v", s, ns, bus)
		}
	}
	ns, bus := OnLocalRead(Invalid)
	if ns != UnOwned || !bus {
		t.Errorf("read miss: got %v bus=%v", ns, bus)
	}
}

func TestOnLocalWrite(t *testing.T) {
	cases := []struct {
		s    State
		ns   State
		op   BusOp
		need bool
	}{
		{OwnedExclusive, OwnedExclusive, 0, false},
		{OwnedShared, OwnedExclusive, BusInval, true},
		{UnOwned, OwnedExclusive, BusInval, true},
		{Invalid, OwnedExclusive, BusReadOwn, true},
	}
	for _, c := range cases {
		ns, op, need := OnLocalWrite(c.s)
		if ns != c.ns || need != c.need || (need && op != c.op) {
			t.Errorf("write on %v: got (%v,%v,%v)", c.s, ns, op, need)
		}
	}
}

func TestOnSnoopTransitions(t *testing.T) {
	// BusRead: owners supply and become/stay OwnedShared.
	ns, r := OnSnoop(OwnedExclusive, BusRead)
	if ns != OwnedShared || !r.Supplied || r.Invalidated {
		t.Errorf("OE snoop BusRead: %v %+v", ns, r)
	}
	ns, r = OnSnoop(OwnedShared, BusRead)
	if ns != OwnedShared || !r.Supplied {
		t.Errorf("OS snoop BusRead: %v %+v", ns, r)
	}
	ns, r = OnSnoop(UnOwned, BusRead)
	if ns != UnOwned || r.Supplied || r.Invalidated {
		t.Errorf("UO snoop BusRead: %v %+v", ns, r)
	}
	// BusReadOwn invalidates everyone; owners supply.
	ns, r = OnSnoop(OwnedShared, BusReadOwn)
	if ns != Invalid || !r.Supplied || !r.Invalidated {
		t.Errorf("OS snoop BusReadOwn: %v %+v", ns, r)
	}
	ns, r = OnSnoop(UnOwned, BusReadOwn)
	if ns != Invalid || r.Supplied || !r.Invalidated {
		t.Errorf("UO snoop BusReadOwn: %v %+v", ns, r)
	}
	// BusInval drops the copy without supplying.
	ns, r = OnSnoop(OwnedShared, BusInval)
	if ns != Invalid || r.Supplied || !r.Invalidated {
		t.Errorf("OS snoop BusInval: %v %+v", ns, r)
	}
	// Invalid lines ignore everything.
	ns, r = OnSnoop(Invalid, BusReadOwn)
	if ns != Invalid || r.Supplied || r.Invalidated {
		t.Errorf("Invalid snoop: %v %+v", ns, r)
	}
	// Write-backs don't disturb other caches.
	ns, r = OnSnoop(UnOwned, BusWriteBack)
	if ns != UnOwned || r.Supplied || r.Invalidated {
		t.Errorf("UO snoop BusWriteBack: %v %+v", ns, r)
	}
}

// protocolSim runs a tiny multi-cache single-block model driven entirely by
// the pure transition functions, checking the protocol's global invariants
// after every step: at most one owner, and an OwnedExclusive copy is the
// only valid copy anywhere.
func protocolSim(t *testing.T, actors int, script []uint16) {
	states := make([]State, actors)
	check := func(step int) {
		owners, valid, excl := 0, 0, 0
		for _, s := range states {
			if s.Owned() {
				owners++
			}
			if s.Valid() {
				valid++
			}
			if s == OwnedExclusive {
				excl++
			}
		}
		if owners > 1 {
			t.Fatalf("step %d: %d owners (%v)", step, owners, states)
		}
		if excl > 0 && valid > 1 {
			t.Fatalf("step %d: exclusive copy coexists with %d valid copies (%v)", step, valid, states)
		}
	}
	for step, mv := range script {
		who := int(mv) % actors
		isWrite := (mv>>8)&1 == 1
		var op BusOp
		need := false
		if isWrite {
			states[who], op, need = OnLocalWrite(states[who])
		} else {
			var bus bool
			states[who], bus = OnLocalRead(states[who])
			op, need = BusRead, bus
		}
		if need {
			for i := range states {
				if i != who {
					states[i], _ = OnSnoop(states[i], op)
				}
			}
		}
		check(step)
	}
}

func TestProtocolInvariantsDirected(t *testing.T) {
	// Two caches ping-ponging a block through every transition.
	protocolSim(t, 2, []uint16{
		0x000,        // A reads -> UnOwned
		0x001,        // B reads -> both UnOwned
		0x100,        // A writes -> A OwnedExclusive, B Invalid
		0x001,        // B reads  -> A OwnedShared (supplies), B UnOwned
		0x101,        // B writes -> B OwnedExclusive, A Invalid
		0x100, 0x101, // write ping-pong
	})
}

func TestProtocolInvariantsRandom(t *testing.T) {
	f := func(script []uint16) bool {
		protocolSim(t, 3, script)
		return !t.Failed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

type recordingSnooper struct {
	state State
	ops   []BusOp
}

func (r *recordingSnooper) Snoop(op BusOp, b addr.BlockAddr) SnoopResult {
	r.ops = append(r.ops, op)
	var res SnoopResult
	r.state, res = OnSnoop(r.state, op)
	return res
}

func TestBusExcludesIssuer(t *testing.T) {
	bus := NewBus()
	a := &recordingSnooper{state: OwnedExclusive}
	b := &recordingSnooper{state: Invalid}
	pa := bus.Attach(a)
	if bus.Attach(b) == pa {
		t.Fatal("duplicate port")
	}
	if bus.Ports() != 2 {
		t.Fatalf("Ports = %d", bus.Ports())
	}
	supplied, _ := bus.Issue(pa, BusRead, 7)
	if supplied {
		t.Error("issuer's own copy supplied data to itself")
	}
	if len(a.ops) != 0 {
		t.Error("issuer snooped its own transaction")
	}
	if len(b.ops) != 1 {
		t.Error("other cache did not snoop")
	}
	// Now B reads while A owns: A supplies.
	pb := 1
	supplied, _ = bus.Issue(pb, BusRead, 7)
	if !supplied {
		t.Error("owner did not supply")
	}
	if a.state != OwnedShared {
		t.Errorf("owner state = %v", a.state)
	}
	if bus.Transactions[BusRead] != 2 {
		t.Errorf("transaction count = %d", bus.Transactions[BusRead])
	}
}

func TestBusOccupancy(t *testing.T) {
	bus := NewBus()
	bus.Attach(&recordingSnooper{})
	bus.Issue(0, BusRead, 1)      // block transfer: 10 cycles
	bus.Issue(0, BusInval, 1)     // address cycle: 1
	bus.Issue(0, BusWriteBack, 2) // block transfer: 10
	if bus.BusyCycles != 21 {
		t.Errorf("BusyCycles = %d, want 21", bus.BusyCycles)
	}
	if u := bus.Utilization(42); u != 0.5 {
		t.Errorf("Utilization = %v", u)
	}
	if bus.Utilization(0) != 0 {
		t.Error("zero-span utilization")
	}
}
