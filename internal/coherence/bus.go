package coherence

import (
	"repro/internal/addr"
	"repro/internal/faultinject"
)

// Snooper is anything attached to the shared bus that watches transactions —
// in practice, a cache controller. The issuing controller is excluded from
// the broadcast of its own transaction.
type Snooper interface {
	// Snoop processes a bus transaction for block b and reports what the
	// snooper did.
	Snoop(op BusOp, b addr.BlockAddr) SnoopResult
}

// Bus is the single shared backplane connecting up to twelve processor
// boards in a SPUR workstation. It serializes transactions (the simulator is
// single-threaded per machine, so serialization is structural), lets each
// attached controller snoop the others' traffic, and accounts its occupancy
// — the quantity SPUR's 128 KB caches exist to keep low ("a 128 Kilobyte
// direct-mapped unified cache reduces the load each processor demands of
// the single shared bus").
type Bus struct {
	snoopers []Snooper

	// Transactions counts bus transactions by operation.
	Transactions [4]uint64

	// BusyCycles accumulates backplane occupancy: data-carrying
	// transactions hold the bus for a block transfer, invalidations for
	// one address cycle.
	BusyCycles uint64

	// BlockCycles is the occupancy of one data-carrying transaction
	// (default 10: 3 cycles to the first word + 7 at 1 cycle).
	BlockCycles uint64

	// Inject, when non-nil, can drop a snooper's view of a transaction
	// (faultinject.SnoopDrop) or stretch a transaction's occupancy
	// (faultinject.SnoopDelay). A nil injector is inert.
	Inject *faultinject.Injector

	// DroppedSnoops counts snooper notifications the injector suppressed;
	// DelayCycles is the extra occupancy injected delays added.
	DroppedSnoops uint64
	DelayCycles   uint64
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{BlockCycles: 10} }

// Attach adds a snooper and returns its port number, which the snooper
// passes back when issuing transactions so it does not snoop itself.
func (bus *Bus) Attach(s Snooper) int {
	bus.snoopers = append(bus.snoopers, s)
	return len(bus.snoopers) - 1
}

// Ports returns the number of attached snoopers.
func (bus *Bus) Ports() int { return len(bus.snoopers) }

// Utilization returns the fraction of the given cycle span the bus was
// busy. Above ~1.0 the configuration is bus-saturated: the single backplane
// cannot carry the traffic the processors generate, the scaling wall SPUR's
// large caches push out.
func (bus *Bus) Utilization(totalCycles uint64) float64 {
	if totalCycles == 0 {
		return 0
	}
	return float64(bus.BusyCycles) / float64(totalCycles)
}

// Issue broadcasts a transaction from the given port to every other
// snooper, returning true if some other cache supplied the data (so memory
// was not read) and true if any copy elsewhere was invalidated.
func (bus *Bus) Issue(from int, op BusOp, b addr.BlockAddr) (supplied, invalidated bool) {
	bus.Transactions[op]++
	if op == BusInval {
		bus.BusyCycles++
	} else {
		bus.BusyCycles += bus.BlockCycles
	}
	if bus.Inject.Fire(faultinject.SnoopDelay) {
		// A slow board holds the backplane for an extra block time.
		bus.BusyCycles += bus.BlockCycles
		bus.DelayCycles += bus.BlockCycles
	}
	for i, s := range bus.snoopers {
		if i == from {
			continue
		}
		if bus.Inject.Fire(faultinject.SnoopDrop) {
			// This snooper never sees the transaction: its copy of the
			// block goes stale, exactly the loss AuditMP exists to catch.
			bus.DroppedSnoops++
			continue
		}
		r := s.Snoop(op, b)
		supplied = supplied || r.Supplied
		invalidated = invalidated || r.Invalidated
	}
	return supplied, invalidated
}
