// Package coherence implements the Berkeley Ownership cache coherency
// protocol [Katz85] used by the SPUR cache controller.
//
// Berkeley Ownership is a write-back invalidation protocol with four states.
// Memory is not updated when an owning cache modifies a block; the owner is
// responsible for supplying the block to other caches and for writing it
// back on replacement. The prototype measured in the paper is a
// uniprocessor, but the protocol machinery is part of the cache controller
// (and of its main PLA, whose 193-vs-207 product-term comparison the paper
// cites), so the simulator carries it in full: multi-cache configurations
// snoop a shared bus, and the uniprocessor runs are simply the one-cache
// special case.
package coherence

import "fmt"

// State is the two-bit coherency state stored in each cache line
// (the CS field of Figure 3.2b).
type State uint8

const (
	// Invalid: the line holds no block.
	Invalid State = iota
	// UnOwned: the block is valid and consistent with memory; other
	// caches may also hold it.
	UnOwned
	// OwnedShared: this cache owns the block (memory is stale) and other
	// caches may hold read copies.
	OwnedShared
	// OwnedExclusive: this cache owns the block and no other cache holds
	// it; writes proceed without bus traffic.
	OwnedExclusive
)

// String returns the conventional name of the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "Invalid"
	case UnOwned:
		return "UnOwned"
	case OwnedShared:
		return "OwnedShared"
	case OwnedExclusive:
		return "OwnedExclusive"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Valid reports whether the line holds data.
func (s State) Valid() bool { return s != Invalid }

// Owned reports whether this cache is responsible for the block (memory is
// stale and the block must be written back on replacement).
func (s State) Owned() bool { return s == OwnedShared || s == OwnedExclusive }

// BusOp is a transaction broadcast on the shared bus.
type BusOp uint8

const (
	// BusRead requests a copy of a block for reading.
	BusRead BusOp = iota
	// BusReadOwn requests a block for writing (read-for-ownership);
	// all other copies are invalidated.
	BusReadOwn
	// BusInval invalidates other copies without transferring data
	// (a write hit on a shared block).
	BusInval
	// BusWriteBack writes an owned block back to memory on replacement.
	BusWriteBack
)

// String returns the transaction mnemonic.
func (op BusOp) String() string {
	switch op {
	case BusRead:
		return "BusRead"
	case BusReadOwn:
		return "BusReadOwn"
	case BusInval:
		return "BusInval"
	case BusWriteBack:
		return "BusWriteBack"
	}
	return fmt.Sprintf("BusOp(%d)", uint8(op))
}

// OnLocalRead returns the state after a processor read and the bus
// transaction required, if any. A read hit never needs the bus.
func OnLocalRead(s State) (State, bool) {
	if s.Valid() {
		return s, false
	}
	return UnOwned, true // read miss: BusRead, arrive UnOwned
}

// OnLocalWrite returns the state after a processor write and the bus
// transaction required, if any.
func OnLocalWrite(s State) (State, BusOp, bool) {
	switch s {
	case OwnedExclusive:
		return OwnedExclusive, 0, false
	case OwnedShared, UnOwned:
		// Must invalidate other copies before modifying.
		return OwnedExclusive, BusInval, true
	default: // Invalid: write miss
		return OwnedExclusive, BusReadOwn, true
	}
}

// SnoopResult describes what a snooping cache did in response to a bus
// transaction that matched one of its lines.
type SnoopResult struct {
	// Supplied is true if this cache owned the block and supplied the
	// data (memory was stale).
	Supplied bool
	// Invalidated is true if this cache dropped its copy.
	Invalidated bool
}

// OnSnoop returns the state of a matching line after snooping op, plus what
// the cache did. Transactions issued by this cache itself must not be
// snooped by it.
func OnSnoop(s State, op BusOp) (State, SnoopResult) {
	if s == Invalid {
		return Invalid, SnoopResult{}
	}
	switch op {
	case BusRead:
		switch s {
		case OwnedExclusive:
			// Another cache wants to read: supply data, keep ownership,
			// but the block is now shared.
			return OwnedShared, SnoopResult{Supplied: true}
		case OwnedShared:
			return OwnedShared, SnoopResult{Supplied: true}
		default:
			return UnOwned, SnoopResult{}
		}
	case BusReadOwn:
		sup := s.Owned()
		return Invalid, SnoopResult{Supplied: sup, Invalidated: true}
	case BusInval:
		return Invalid, SnoopResult{Invalidated: true}
	case BusWriteBack:
		// Write-backs carry no coherence action for other caches.
		return s, SnoopResult{}
	}
	return s, SnoopResult{}
}
