package cache

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/coherence"
	"repro/internal/pte"
)

const testSize = 128 * 1024

func TestNewGeometry(t *testing.T) {
	c := New(testSize)
	if c.Lines() != 4096 {
		t.Errorf("Lines = %d, want 4096", c.Lines())
	}
	if c.SizeBytes() != testSize {
		t.Errorf("SizeBytes = %d", c.SizeBytes())
	}
}

func TestNewPanics(t *testing.T) {
	for _, bad := range []int{0, -32, 48, 96} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestProbeMissAndFillHit(t *testing.T) {
	c := New(testSize)
	b := addr.BlockAddr(12345)
	if _, hit := c.Probe(b); hit {
		t.Fatal("probe hit in empty cache")
	}
	v, evicted := c.Fill(b, coherence.UnOwned, pte.ProtReadOnly, false, false, false)
	if evicted {
		t.Fatalf("fill into empty cache evicted %+v", v)
	}
	l, hit := c.Probe(b)
	if !hit {
		t.Fatal("probe miss after fill")
	}
	if l.Prot() != pte.ProtReadOnly || l.PageDirty() || l.BlockDirty() || l.FilledByWrite() || l.IsPTE() {
		t.Errorf("line snapshot wrong: %+v", l.Line())
	}
	if l.Addr() != b {
		t.Errorf("line addr = %#x, want %#x", uint64(l.Addr()), uint64(b))
	}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(testSize)
	b1 := addr.BlockAddr(100)
	b2 := b1 + addr.BlockAddr(c.Lines()) // same index, different tag
	c.Fill(b1, coherence.OwnedExclusive, pte.ProtReadWrite, true, false, true)
	v, evicted := c.Fill(b2, coherence.UnOwned, pte.ProtReadOnly, false, false, false)
	if !evicted {
		t.Fatal("conflicting fill did not evict")
	}
	if v.Addr != b1 || !v.WriteBack {
		t.Errorf("victim = %+v", v)
	}
	if v.ReadThenNeverWritten {
		t.Error("write-filled victim classified as read-then-never-written")
	}
	if _, hit := c.Probe(b1); hit {
		t.Error("evicted block still probes")
	}
	if _, hit := c.Probe(b2); !hit {
		t.Error("new block missing")
	}
	if c.Stats.WriteBacks != 1 || c.Stats.Evictions != 1 || c.Stats.Fills != 2 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestFillResidentPanics(t *testing.T) {
	c := New(testSize)
	b := addr.BlockAddr(5)
	c.Fill(b, coherence.UnOwned, pte.ProtReadOnly, false, false, false)
	defer func() {
		if recover() == nil {
			t.Error("double fill did not panic")
		}
	}()
	c.Fill(b, coherence.UnOwned, pte.ProtReadOnly, false, false, false)
}

func TestVictimReadThenNeverWritten(t *testing.T) {
	c := New(testSize)
	b := addr.BlockAddr(7)
	conflict := b + addr.BlockAddr(c.Lines())
	c.Fill(b, coherence.UnOwned, pte.ProtReadWrite, false, false, false)
	v, _ := c.Fill(conflict, coherence.UnOwned, pte.ProtReadOnly, false, false, false)
	if !v.ReadThenNeverWritten || v.WriteBack {
		t.Errorf("clean read-filled victim: %+v", v)
	}
	// Now a read-filled block that gets written (N_w-hit shape).
	c.Fill(b, coherence.UnOwned, pte.ProtReadWrite, false, false, false)
	mustProbe(t, c, b).SetBlockDirty(true)
	v, _ = c.Fill(conflict, coherence.UnOwned, pte.ProtReadOnly, false, false, false)
	if v.ReadThenNeverWritten || !v.WriteBack {
		t.Errorf("written read-filled victim: %+v", v)
	}
}

func TestFlushBlock(t *testing.T) {
	c := New(testSize)
	b := addr.BlockAddr(99)
	if present, _ := c.FlushBlock(b); present {
		t.Error("flush of absent block reported present")
	}
	c.Fill(b, coherence.OwnedExclusive, pte.ProtReadWrite, true, false, true)
	present, wb := c.FlushBlock(b)
	if !present || !wb {
		t.Errorf("flush: present=%v wb=%v", present, wb)
	}
	if _, hit := c.Probe(b); hit {
		t.Error("block survived flush")
	}
}

// mustProbe probes b and fails the test on a miss, returning the line ref.
func mustProbe(t *testing.T, c *Cache, b addr.BlockAddr) LineRef {
	t.Helper()
	l, hit := c.Probe(b)
	if !hit {
		t.Fatalf("block %#x not resident", uint64(b))
	}
	return l
}

func fillPage(c *Cache, p addr.GVPN, nblocks int, dirty bool) {
	st := coherence.UnOwned
	if dirty {
		st = coherence.OwnedExclusive
	}
	for i := 0; i < nblocks; i++ {
		c.Fill(p.FirstBlock()+addr.BlockAddr(i), st, pte.ProtReadWrite, false, false, dirty)
	}
}

func TestFlushPageTagChecking(t *testing.T) {
	c := New(testSize)
	p := addr.GVPN(3)
	// A conflicting page that maps to the same line frames: 4096 lines /
	// 128 blocks-per-page = 32 pages of cache, so p+32 conflicts exactly.
	q := p + addr.GVPN(c.Lines()/addr.BlocksPerPage)
	fillPage(c, p, 10, false)
	fillPage(c, q, addr.BlocksPerPage, true) // q evicts p entirely
	fillPage(c, p, 10, true)                 // p's first 10 blocks displace q's

	res := c.FlushPage(p, true)
	if res.Checked != addr.BlocksPerPage {
		t.Errorf("Checked = %d", res.Checked)
	}
	if res.Flushed != 10 || res.WrittenBack != 10 || res.Collateral != 0 {
		t.Errorf("tag-checking flush: %+v", res)
	}
	if rem, _ := c.ResidentBlocks(q); rem != addr.BlocksPerPage-10 {
		t.Errorf("other page lost blocks: %d resident", rem)
	}
}

func TestFlushPageTagIgnoringCollateral(t *testing.T) {
	c := New(testSize)
	p := addr.GVPN(3)
	q := p + addr.GVPN(c.Lines()/addr.BlocksPerPage)
	fillPage(c, q, addr.BlocksPerPage, false) // q fully resident in p's frames
	res := c.FlushPage(p, false)
	if res.Flushed != addr.BlocksPerPage || res.Collateral != addr.BlocksPerPage {
		t.Errorf("tag-ignoring flush: %+v", res)
	}
	if rem, _ := c.ResidentBlocks(q); rem != 0 {
		t.Errorf("collateral page survived: %d resident", rem)
	}
}

func TestResidentBlocks(t *testing.T) {
	c := New(testSize)
	p := addr.GVPN(5)
	fillPage(c, p, 8, false)
	mustProbe(t, c, p.FirstBlock()).SetBlockDirty(true)
	res, clean := c.ResidentBlocks(p)
	if res != 8 || clean != 7 {
		t.Errorf("ResidentBlocks = %d,%d", res, clean)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(testSize)
	fillPage(c, 1, 20, true)
	fillPage(c, 2, 20, false)
	if wb := c.InvalidateAll(); wb != 20 {
		t.Errorf("InvalidateAll wrote back %d, want 20", wb)
	}
	if c.Utilization() != 0 {
		t.Error("cache not empty")
	}
}

func TestUtilization(t *testing.T) {
	c := New(testSize)
	if c.Utilization() != 0 {
		t.Error("fresh cache not empty")
	}
	fillPage(c, 1, addr.BlocksPerPage, false)
	want := float64(addr.BlocksPerPage) / float64(c.Lines())
	if got := c.Utilization(); got != want {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func TestIndexMappingProperty(t *testing.T) {
	// Property: a fill always lands where a probe of the same block looks,
	// and distinct blocks with the same index conflict.
	c := New(4096) // tiny 128-line cache for faster collisions
	f := func(raw uint64) bool {
		b := addr.BlockAddr(raw % (1 << 33))
		c.InvalidateAll()
		c.Fill(b, coherence.UnOwned, pte.ProtReadOnly, false, false, false)
		if _, hit := c.Probe(b); !hit {
			return false
		}
		conflict := b + addr.BlockAddr(c.Lines())
		c.Fill(conflict, coherence.UnOwned, pte.ProtReadOnly, false, false, false)
		_, oldHit := c.Probe(b)
		_, newHit := c.Probe(conflict)
		return !oldHit && newHit
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnoopInvalidatesAndTransfersOwnership(t *testing.T) {
	bus := coherence.NewBus()
	c1, c2 := New(testSize), New(testSize)
	c1.AttachBus(bus)
	c2.AttachBus(bus)
	b := addr.BlockAddr(42)

	// c1 owns the block exclusively.
	c1.Fill(b, coherence.OwnedExclusive, pte.ProtReadWrite, false, false, true)
	// c2 read-misses: issues BusRead; c1 supplies and degrades to OwnedShared.
	supplied, _ := c2.IssueBus(coherence.BusRead, b)
	if !supplied {
		t.Fatal("owner did not supply on BusRead")
	}
	if st := mustProbe(t, c1, b).State(); st != coherence.OwnedShared {
		t.Errorf("owner state = %v", st)
	}
	c2.Fill(b, coherence.UnOwned, pte.ProtReadWrite, false, false, false)

	// c2 writes: BusInval drops c1's copy without a memory write-back.
	wbBefore := c1.Stats.WriteBacks
	c2.IssueBus(coherence.BusInval, b)
	if _, hit := c1.Probe(b); hit {
		t.Error("BusInval left stale copy in c1")
	}
	if c1.Stats.WriteBacks != wbBefore {
		t.Error("snoop invalidation wrote back (ownership moves on the bus, not through memory)")
	}
	l := mustProbe(t, c2, b)
	l.SetState(coherence.OwnedExclusive)
	l.SetBlockDirty(true)

	// Eviction of the owned block in c2 now writes back.
	conflict := b + addr.BlockAddr(c2.Lines())
	v, _ := c2.Fill(conflict, coherence.UnOwned, pte.ProtReadOnly, false, false, false)
	if !v.WriteBack {
		t.Error("owned block eviction did not write back")
	}
	if bus.Transactions[coherence.BusWriteBack] != 1 {
		t.Errorf("bus write-backs = %d", bus.Transactions[coherence.BusWriteBack])
	}
}

func TestSnoopMissIsNoop(t *testing.T) {
	c := New(testSize)
	if r := c.Snoop(coherence.BusReadOwn, 7); r.Supplied || r.Invalidated {
		t.Errorf("snoop miss acted: %+v", r)
	}
}

func TestFormat(t *testing.T) {
	s := Format()
	for _, f := range []string{"PR", "P", "B", "CS", "Virtual Address Tag"} {
		if !strings.Contains(s, f) {
			t.Errorf("Format missing %q", f)
		}
	}
}
