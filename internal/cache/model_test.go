package cache

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/coherence"
	"repro/internal/pte"
)

// modelCache is an obviously correct reference model of a direct-mapped
// cache: a map from line index to resident block. The fuzz drives the real
// cache and the model with the same operation stream and compares every
// observable after every step.
type modelCache struct {
	lines int
	held  map[int]addr.BlockAddr
	dirty map[addr.BlockAddr]bool
}

func newModel(lines int) *modelCache {
	return &modelCache{lines: lines, held: map[int]addr.BlockAddr{}, dirty: map[addr.BlockAddr]bool{}}
}

func (m *modelCache) index(b addr.BlockAddr) int { return int(uint64(b) % uint64(m.lines)) }

func (m *modelCache) probe(b addr.BlockAddr) bool {
	got, ok := m.held[m.index(b)]
	return ok && got == b
}

func (m *modelCache) fill(b addr.BlockAddr, byWrite bool) (victim addr.BlockAddr, evicted, writeback bool) {
	i := m.index(b)
	if old, ok := m.held[i]; ok {
		evicted = true
		victim = old
		writeback = m.dirty[old]
		delete(m.dirty, old)
	}
	m.held[i] = b
	if byWrite {
		m.dirty[b] = true
	}
	return victim, evicted, writeback
}

func (m *modelCache) flushBlock(b addr.BlockAddr) (present, wb bool) {
	if !m.probe(b) {
		return false, false
	}
	delete(m.held, m.index(b))
	wb = m.dirty[b]
	delete(m.dirty, b)
	return true, wb
}

func (m *modelCache) flushPage(p addr.GVPN) {
	first := p.FirstBlock()
	for i := 0; i < addr.BlocksPerPage; i++ {
		b := first + addr.BlockAddr(i)
		if m.probe(b) {
			m.flushBlock(b)
		}
	}
}

// splitmix for the op stream.
func next(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestCacheAgainstReferenceModel drives 200k random operations through the
// real cache and the model, comparing probes, victims, and write-backs.
func TestCacheAgainstReferenceModel(t *testing.T) {
	const size = 4096 // 128 lines: frequent conflicts
	c := New(size)
	m := newModel(c.Lines())
	state := uint64(12345)

	blockUniverse := func() addr.BlockAddr {
		// 512 blocks over 4 pages' worth of address space across two
		// "segments" so tags collide on indexes regularly.
		r := next(&state)
		seg := addr.BlockAddr(r & 1)
		return seg<<25 | addr.BlockAddr((r>>1)%512)
	}

	for step := 0; step < 200000; step++ {
		b := blockUniverse()
		switch next(&state) % 10 {
		case 0, 1, 2, 3: // probe + maybe fill
			real := c.Probe(b)
			if (real != nil) != m.probe(b) {
				t.Fatalf("step %d: probe mismatch for %#x: real=%v model=%v",
					step, uint64(b), real != nil, m.probe(b))
			}
			if real == nil {
				byWrite := next(&state)%2 == 0
				st := coherence.UnOwned
				if byWrite {
					st = coherence.OwnedExclusive
				}
				v, evicted := c.Fill(b, st, pte.ProtReadWrite, false, false, byWrite)
				mv, mev, mwb := m.fill(b, byWrite)
				if evicted != mev {
					t.Fatalf("step %d: eviction mismatch", step)
				}
				if evicted && (v.Addr != mv || v.WriteBack != mwb) {
					t.Fatalf("step %d: victim mismatch real={%#x wb=%v} model={%#x wb=%v}",
						step, uint64(v.Addr), v.WriteBack, uint64(mv), mwb)
				}
			}
		case 4: // write hit marks dirty
			if l := c.Probe(b); l != nil {
				l.BlockDirty = true
				l.State = coherence.OwnedExclusive
				m.dirty[b] = true
			}
		case 5: // block flush
			p, wb := c.FlushBlock(b)
			mp, mwb := m.flushBlock(b)
			if p != mp || wb != mwb {
				t.Fatalf("step %d: flush mismatch (%v,%v) vs (%v,%v)", step, p, wb, mp, mwb)
			}
		case 6: // tag-checking page flush
			page := b.Page()
			c.FlushPage(page, true)
			m.flushPage(page)
		default: // probe only
			real := c.Probe(b)
			if (real != nil) != m.probe(b) {
				t.Fatalf("step %d: probe-only mismatch for %#x", step, uint64(b))
			}
		}
	}

	// Final sweep: every valid line agrees with the model.
	for i := 0; i < c.Lines(); i++ {
		l := c.LineAt(i)
		mb, ok := m.held[i]
		if l.Valid() != ok {
			t.Fatalf("line %d: validity mismatch", i)
		}
		if ok && l.Addr != mb {
			t.Fatalf("line %d: holds %#x, model %#x", i, uint64(l.Addr), uint64(mb))
		}
		if ok && l.BlockDirty != m.dirty[mb] {
			t.Fatalf("line %d: dirty mismatch", i)
		}
	}
}
