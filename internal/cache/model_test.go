package cache

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/coherence"
	"repro/internal/pte"
)

// modelCache is an obviously correct reference model of a direct-mapped
// cache: a map from line index to the full Line record, mutated with
// straight-line code. The fuzz drives the real (packed, flat) cache and the
// model with the same operation stream and compares every observable after
// every step — probe hits, complete victim records, both page-flush
// flavours' full results (including collateral counts), and per-line state.
type modelCache struct {
	lines int
	held  map[int]Line
}

func newModel(lines int) *modelCache {
	return &modelCache{lines: lines, held: map[int]Line{}}
}

func (m *modelCache) index(b addr.BlockAddr) int { return int(uint64(b) % uint64(m.lines)) }

func (m *modelCache) probe(b addr.BlockAddr) (Line, bool) {
	l, ok := m.held[m.index(b)]
	if ok && l.Addr == b {
		return l, true
	}
	return Line{}, false
}

func lineNeedsWriteBack(l Line) bool {
	return l.State.Valid() && (l.BlockDirty || l.State.Owned())
}

func (m *modelCache) fill(b addr.BlockAddr, state coherence.State, prot pte.Prot, pageDirty, isPTE, byWrite bool) (Victim, bool) {
	i := m.index(b)
	var v Victim
	evicted := false
	if old, ok := m.held[i]; ok {
		v = Victim{
			Addr:                 old.Addr,
			WriteBack:            lineNeedsWriteBack(old),
			ReadThenNeverWritten: !old.FilledByWrite && !old.BlockDirty,
			IsPTE:                old.IsPTE,
		}
		evicted = true
	}
	m.held[i] = Line{
		Addr: b, State: state, Prot: prot,
		BlockDirty: byWrite, PageDirty: pageDirty,
		IsPTE: isPTE, FilledByWrite: byWrite,
	}
	return v, evicted
}

func (m *modelCache) flushBlock(b addr.BlockAddr) (present, wb bool) {
	l, ok := m.probe(b)
	if !ok {
		return false, false
	}
	delete(m.held, m.index(b))
	return true, lineNeedsWriteBack(l)
}

func (m *modelCache) flushPage(p addr.GVPN, tagCheck bool) FlushResult {
	res := FlushResult{Checked: addr.BlocksPerPage}
	first := p.FirstBlock()
	for i := 0; i < addr.BlocksPerPage; i++ {
		b := first + addr.BlockAddr(i)
		fi := m.index(b)
		l, ok := m.held[fi]
		if !ok {
			continue
		}
		if tagCheck && l.Addr != b {
			continue
		}
		if l.Addr.Page() != p {
			res.Collateral++
		}
		res.Flushed++
		if lineNeedsWriteBack(l) {
			res.WrittenBack++
		}
		delete(m.held, fi)
	}
	return res
}

// splitmix for the op stream.
func next(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// checkLines compares every line frame against the model.
func checkLines(t *testing.T, step int, c *Cache, m *modelCache) {
	t.Helper()
	for i := 0; i < c.Lines(); i++ {
		l := c.LineAt(i)
		ml, ok := m.held[i]
		if l.Valid() != ok {
			t.Fatalf("step %d line %d: validity mismatch real=%v model=%v", step, i, l.Valid(), ok)
		}
		if ok && l != ml {
			t.Fatalf("step %d line %d: state mismatch\n real: %+v\nmodel: %+v", step, i, l, ml)
		}
	}
}

// TestCacheAgainstReferenceModel drives 200k random operations through the
// real cache and the model, comparing probes, full victim records, both
// page-flush flavours, and complete per-line state.
func TestCacheAgainstReferenceModel(t *testing.T) {
	const size = 4096 // 128 lines: frequent conflicts
	c := New(size)
	m := newModel(c.Lines())
	state := uint64(12345)

	prots := [...]pte.Prot{pte.ProtNone, pte.ProtReadOnly, pte.ProtReadWrite, pte.ProtKernel}
	states := [...]coherence.State{coherence.UnOwned, coherence.OwnedShared, coherence.OwnedExclusive}

	blockUniverse := func() addr.BlockAddr {
		// 512 blocks over 4 pages' worth of address space across two
		// "segments" so tags collide on indexes regularly.
		r := next(&state)
		seg := addr.BlockAddr(r & 1)
		return seg<<25 | addr.BlockAddr((r>>1)%512)
	}

	for step := 0; step < 200000; step++ {
		b := blockUniverse()
		switch next(&state) % 12 {
		case 0, 1, 2, 3: // probe + maybe fill with randomized line state
			_, hit := c.Probe(b)
			_, mhit := m.probe(b)
			if hit != mhit {
				t.Fatalf("step %d: probe mismatch for %#x: real=%v model=%v",
					step, uint64(b), hit, mhit)
			}
			if !hit {
				r := next(&state)
				byWrite := r&1 == 0
				st := states[(r>>1)%3]
				if byWrite {
					st = coherence.OwnedExclusive
				}
				prot := prots[(r>>3)%4]
				pageDirty := r&(1<<5) != 0
				isPTE := r&(1<<6) != 0
				v, evicted := c.Fill(b, st, prot, pageDirty, isPTE, byWrite)
				mv, mev := m.fill(b, st, prot, pageDirty, isPTE, byWrite)
				if evicted != mev {
					t.Fatalf("step %d: eviction mismatch", step)
				}
				if evicted && v != mv {
					t.Fatalf("step %d: victim mismatch\n real: %+v\nmodel: %+v", step, v, mv)
				}
			}
		case 4: // mutate through the LineRef, mirrored in the model
			if l, hit := c.Probe(b); hit {
				i := m.index(b)
				ml := m.held[i]
				r := next(&state)
				switch r % 4 {
				case 0: // write hit: dirty + exclusive
					l.SetBlockDirty(true)
					l.SetState(coherence.OwnedExclusive)
					ml.BlockDirty = true
					ml.State = coherence.OwnedExclusive
				case 1: // page-dirty refresh (dirty-bit miss repair)
					v := r&(1<<8) != 0
					l.SetPageDirty(v)
					ml.PageDirty = v
				case 2: // protection refresh
					p := prots[(r>>2)%4]
					l.SetProt(p)
					ml.Prot = p
				case 3: // coherency downgrade/upgrade
					s := states[(r>>2)%3]
					l.SetState(s)
					ml.State = s
				}
				m.held[i] = ml
			}
		case 5: // block flush
			p, wb := c.FlushBlock(b)
			mp, mwb := m.flushBlock(b)
			if p != mp || wb != mwb {
				t.Fatalf("step %d: flush mismatch (%v,%v) vs (%v,%v)", step, p, wb, mp, mwb)
			}
		case 6: // tag-checking page flush, full result compared
			page := b.Page()
			res := c.FlushPage(page, true)
			mres := m.flushPage(page, true)
			if res != mres {
				t.Fatalf("step %d: tag-checking flush mismatch\n real: %+v\nmodel: %+v", step, res, mres)
			}
			if res.Collateral != 0 {
				t.Fatalf("step %d: tag-checking flush reported collateral %d", step, res.Collateral)
			}
		case 7: // tag-ignoring page flush: the collateral-damage flavour
			page := b.Page()
			res := c.FlushPage(page, false)
			mres := m.flushPage(page, false)
			if res != mres {
				t.Fatalf("step %d: tag-ignoring flush mismatch\n real: %+v\nmodel: %+v", step, res, mres)
			}
		case 8: // resident-block census
			page := b.Page()
			resident, clean := c.ResidentBlocks(page)
			mr, mc := 0, 0
			first := page.FirstBlock()
			for i := 0; i < addr.BlocksPerPage; i++ {
				if l, ok := m.probe(first + addr.BlockAddr(i)); ok {
					mr++
					if !l.BlockDirty {
						mc++
					}
				}
			}
			if resident != mr || clean != mc {
				t.Fatalf("step %d: ResidentBlocks = (%d,%d), model (%d,%d)", step, resident, clean, mr, mc)
			}
		default: // probe only
			_, hit := c.Probe(b)
			if _, mhit := m.probe(b); hit != mhit {
				t.Fatalf("step %d: probe-only mismatch for %#x", step, uint64(b))
			}
		}
		if step%8192 == 0 {
			checkLines(t, step, c, m)
		}
	}

	// Final sweep: every line frame agrees with the model in full.
	checkLines(t, 200000, c, m)
}
