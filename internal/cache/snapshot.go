package cache

import (
	"fmt"

	"repro/internal/addr"
)

// ExportState returns copies of the packed line arrays — the complete
// Figure 3.2b state of every frame. Together with the PTE contents this is
// everything a warmed-cache checkpoint needs: the tag array and one meta
// byte per frame (coherency state, protection, both dirty bits, the PTE and
// by-write flags).
func (c *Cache) ExportState() (tags []addr.BlockAddr, meta []uint8) {
	tags = make([]addr.BlockAddr, len(c.tags))
	copy(tags, c.tags)
	meta = make([]uint8, len(c.meta))
	copy(meta, c.meta)
	return tags, meta
}

// RestoreState overwrites the line arrays with a previously exported state.
// The geometry must match: a snapshot of a differently sized cache cannot
// mean anything here, so a length mismatch is an error, not a resize.
func (c *Cache) RestoreState(tags []addr.BlockAddr, meta []uint8) error {
	if len(tags) != len(c.tags) || len(meta) != len(c.meta) {
		return fmt.Errorf("cache: snapshot geometry %d/%d lines does not match this %d-line cache",
			len(tags), len(meta), len(c.tags))
	}
	copy(c.tags, tags)
	copy(c.meta, meta)
	return nil
}
