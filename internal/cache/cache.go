// Package cache implements SPUR's 128 Kbyte direct-mapped unified
// virtual-address cache.
//
// The cache is indexed and tagged with global virtual addresses, so hits
// proceed without any translation. Each line (Figure 3.2b of the paper)
// carries, besides the tag and the Berkeley Ownership coherency state, a
// *block* dirty bit (the block was modified while in the cache), and cached
// copies of the page's protection and *page* dirty bit, snapshotted from the
// PTE when the block was brought in. Those snapshots are the crux of the
// paper: the PTE can change while blocks are resident, leaving stale cached
// protection (excess faults under the FAULT policy) or a stale cached page
// dirty bit (dirty-bit misses under the SPUR policy).
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/addr"
	"repro/internal/coherence"
	"repro/internal/pte"
)

// Line is one cache block frame.
type Line struct {
	// Addr is the global virtual block address held, valid only when
	// State.Valid().
	Addr addr.BlockAddr
	// State is the Berkeley Ownership coherency state (CS field).
	State coherence.State
	// BlockDirty is the block dirty bit B: the block was modified while
	// in the cache and must be written back on replacement.
	BlockDirty bool
	// PageDirty is the cached copy of the page dirty bit P, snapshotted
	// from the PTE at fill time and possibly stale thereafter.
	PageDirty bool
	// Prot is the cached copy of the page protection, snapshotted from
	// the PTE at fill time and possibly stale thereafter.
	Prot pte.Prot
	// IsPTE marks lines holding page-table entries brought in by the
	// in-cache translation mechanism.
	IsPTE bool
	// FilledByWrite records whether the block was brought in by a write
	// miss (as opposed to a read or instruction fetch). Together with
	// BlockDirty it classifies N_w-hit vs N_w-miss blocks.
	FilledByWrite bool
}

// Valid reports whether the line holds a block.
func (l *Line) Valid() bool { return l.State.Valid() }

// needsWriteBack reports whether replacing the line requires a memory write.
func (l *Line) needsWriteBack() bool {
	return l.State.Valid() && (l.BlockDirty || l.State.Owned())
}

// Victim describes a block displaced by a fill or flush.
type Victim struct {
	Addr addr.BlockAddr
	// WriteBack is true if the block was dirty/owned and had to be
	// written to memory.
	WriteBack bool
	// ReadThenNeverWritten is true if the block was brought in by a read
	// and left clean — the common case the FLUSH cost model's "90% of
	// blocks at 1 cycle" term reflects.
	ReadThenNeverWritten bool
	IsPTE                bool
}

// Stats counts cache-internal events for tests and reports. The experiment
// harness uses the counters package instead; these stay here so the cache is
// independently observable.
type Stats struct {
	Fills      uint64
	Evictions  uint64
	WriteBacks uint64
	BlockFlush uint64
	PageFlush  uint64
}

// Cache is a direct-mapped virtual-address cache.
type Cache struct {
	lines     []Line
	indexMask uint64

	bus  *coherence.Bus
	port int

	// Stats accumulates internal event counts.
	Stats Stats
}

// New returns a cache of the given total size and the architectural 32-byte
// block size. Size must be a power of two and a multiple of the block size.
func New(sizeBytes int) *Cache {
	if sizeBytes <= 0 || sizeBytes%addr.BlockBytes != 0 {
		panic(fmt.Sprintf("cache: bad size %d", sizeBytes))
	}
	n := sizeBytes / addr.BlockBytes
	if bits.OnesCount(uint(n)) != 1 {
		panic(fmt.Sprintf("cache: line count %d not a power of two", n))
	}
	return &Cache{
		lines:     make([]Line, n),
		indexMask: uint64(n - 1),
		port:      -1,
	}
}

// AttachBus connects the cache to a shared bus for coherency snooping.
func (c *Cache) AttachBus(bus *coherence.Bus) {
	c.bus = bus
	c.port = bus.Attach(c)
}

// Lines returns the number of block frames.
func (c *Cache) Lines() int { return len(c.lines) }

// SizeBytes returns the cache capacity in bytes.
func (c *Cache) SizeBytes() int { return len(c.lines) * addr.BlockBytes }

// index returns the line index for block b (direct mapped).
func (c *Cache) index(b addr.BlockAddr) uint64 { return uint64(b) & c.indexMask }

// Probe returns the line holding block b, or nil on a miss. The returned
// pointer aliases cache state: callers mutate it to model hardware actions
// (setting the block dirty bit, refreshing the cached page dirty bit, …).
func (c *Cache) Probe(b addr.BlockAddr) *Line {
	l := &c.lines[c.index(b)]
	if l.State.Valid() && l.Addr == b {
		return l
	}
	return nil
}

// LineAt exposes the line at a raw index for inspection in tests and dumps.
func (c *Cache) LineAt(i int) *Line { return &c.lines[i] }

// Fill brings block b into the cache after a miss, snapshotting the page
// protection and page dirty bit from the PTE, and returns the displaced
// victim, if any. byWrite records whether a write miss caused the fill;
// state is the arriving coherency state (UnOwned for reads, OwnedExclusive
// for writes under Berkeley Ownership).
func (c *Cache) Fill(b addr.BlockAddr, state coherence.State, prot pte.Prot, pageDirty, isPTE, byWrite bool) (Victim, bool) {
	l := &c.lines[c.index(b)]
	var v Victim
	evicted := false
	if l.State.Valid() {
		if l.Addr == b {
			panic("cache: Fill of resident block")
		}
		v = Victim{
			Addr:                 l.Addr,
			WriteBack:            l.needsWriteBack(),
			ReadThenNeverWritten: !l.FilledByWrite && !l.BlockDirty,
			IsPTE:                l.IsPTE,
		}
		evicted = true
		c.Stats.Evictions++
		if v.WriteBack {
			c.Stats.WriteBacks++
			c.issue(coherence.BusWriteBack, l.Addr)
		}
	}
	*l = Line{
		Addr:          b,
		State:         state,
		BlockDirty:    byWrite,
		PageDirty:     pageDirty,
		Prot:          prot,
		IsPTE:         isPTE,
		FilledByWrite: byWrite,
	}
	c.Stats.Fills++
	return v, evicted
}

// FlushBlock removes block b from the cache if present, returning whether it
// was present and whether it was written back. This is SPUR's single-block
// flush operation.
func (c *Cache) FlushBlock(b addr.BlockAddr) (present, writtenBack bool) {
	l := c.Probe(b)
	if l == nil {
		return false, false
	}
	c.Stats.BlockFlush++
	return true, c.invalidateLine(l)
}

func (c *Cache) invalidateLine(l *Line) bool {
	wb := l.needsWriteBack()
	if wb {
		c.Stats.WriteBacks++
		c.issue(coherence.BusWriteBack, l.Addr)
	}
	*l = Line{}
	return wb
}

// FlushResult summarizes a page flush.
type FlushResult struct {
	// Checked is the number of line frames examined (always 128: one per
	// block of the page).
	Checked int
	// Flushed is the number of valid lines invalidated.
	Flushed int
	// WrittenBack is how many of those required a memory write.
	WrittenBack int
	// Collateral is the number of invalidated lines that belonged to
	// *other* pages — nonzero only for the tag-ignoring flush, whose
	// collateral damage the paper calls out ("blocks from other pages may
	// be unnecessarily flushed").
	Collateral int
}

// FlushPage removes every block of page p from the cache.
//
// If tagCheck is true this is the hypothetical tag-checking flush the paper
// assumes for its FLUSH-policy comparison: each of the page's 128 line
// frames is examined and only lines actually belonging to the page are
// invalidated. If tagCheck is false this is the flush SPUR actually built:
// the 128 frames are flushed regardless of their virtual address tags,
// taking resident blocks of other pages with them.
func (c *Cache) FlushPage(p addr.GVPN, tagCheck bool) FlushResult {
	c.Stats.PageFlush++
	res := FlushResult{Checked: addr.BlocksPerPage}
	first := p.FirstBlock()
	for i := 0; i < addr.BlocksPerPage; i++ {
		b := first + addr.BlockAddr(i)
		l := &c.lines[c.index(b)]
		if !l.State.Valid() {
			continue
		}
		if tagCheck && l.Addr != b {
			continue
		}
		if l.Addr.Page() != p {
			res.Collateral++
		}
		res.Flushed++
		if c.invalidateLine(l) {
			res.WrittenBack++
		}
	}
	return res
}

// InvalidateAll empties the cache, writing back dirty blocks, and returns
// the number of write-backs.
func (c *Cache) InvalidateAll() int {
	wb := 0
	for i := range c.lines {
		l := &c.lines[i]
		if l.State.Valid() && c.invalidateLine(l) {
			wb++
		}
	}
	return wb
}

// ResidentBlocks returns how many valid blocks of page p are resident, and
// how many of those are clean. The FLUSH cost model's "10% of blocks from
// the page are in cache and are clean" assumption is the paper's estimate of
// exactly this quantity.
func (c *Cache) ResidentBlocks(p addr.GVPN) (resident, clean int) {
	first := p.FirstBlock()
	for i := 0; i < addr.BlocksPerPage; i++ {
		b := first + addr.BlockAddr(i)
		l := &c.lines[c.index(b)]
		if l.State.Valid() && l.Addr == b {
			resident++
			if !l.BlockDirty {
				clean++
			}
		}
	}
	return resident, clean
}

// issue broadcasts a bus transaction if a bus is attached.
func (c *Cache) issue(op coherence.BusOp, b addr.BlockAddr) (supplied, invalidated bool) {
	if c.bus == nil {
		return false, false
	}
	return c.bus.Issue(c.port, op, b)
}

// IssueBus exposes bus transactions for the access engine (read-for-
// ownership on write misses, invalidations on shared write hits).
func (c *Cache) IssueBus(op coherence.BusOp, b addr.BlockAddr) (supplied, invalidated bool) {
	return c.issue(op, b)
}

// Snoop implements coherence.Snooper: the cache watches other controllers'
// transactions and updates its matching line per the Berkeley protocol.
func (c *Cache) Snoop(op coherence.BusOp, b addr.BlockAddr) coherence.SnoopResult {
	l := c.Probe(b)
	if l == nil {
		return coherence.SnoopResult{}
	}
	ns, res := coherence.OnSnoop(l.State, op)
	if ns == coherence.Invalid {
		// Ownership (and the data) transfers over the bus; no memory
		// write-back happens here.
		*l = Line{}
	} else {
		l.State = ns
	}
	return res
}

// Utilization returns the fraction of lines currently valid.
func (c *Cache) Utilization() float64 {
	n := 0
	for i := range c.lines {
		if c.lines[i].State.Valid() {
			n++
		}
	}
	return float64(n) / float64(len(c.lines))
}

// Format describes the cache line layout (Figure 3.2b) as text.
func Format() string {
	return `SPUR Cache Tag Format (Figure 3.2b)
 +----------------------+---+-+-+----+
 |  Virtual Address Tag |PR |P|B| CS |
 +----------------------+---+-+-+----+
  PR = Protection (2 bits)       P = Page Dirty Bit (cached copy)
  B  = Block Dirty Bit           CS = Coherency State (2 bits)`
}
