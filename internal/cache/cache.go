// Package cache implements SPUR's 128 Kbyte direct-mapped unified
// virtual-address cache.
//
// The cache is indexed and tagged with global virtual addresses, so hits
// proceed without any translation. Each line (Figure 3.2b of the paper)
// carries, besides the tag and the Berkeley Ownership coherency state, a
// *block* dirty bit (the block was modified while in the cache), and cached
// copies of the page's protection and *page* dirty bit, snapshotted from the
// PTE when the block was brought in. Those snapshots are the crux of the
// paper: the PTE can change while blocks are resident, leaving stale cached
// protection (excess faults under the FAULT policy) or a stale cached page
// dirty bit (dirty-bit misses under the SPUR policy).
//
// The line state is stored flat, exactly as the hardware does: a tag array
// indexed by line frame, and one packed byte per frame holding the whole
// Figure 3.2b record (coherency state, protection, both dirty bits, plus the
// simulator's two bookkeeping flags). The probe-hit path — the single most
// executed code in the simulator — is then two array loads and a compare,
// with no per-line struct to copy. Callers hold a LineRef, a tiny index
// handle whose getters and setters read and write the packed arrays
// directly.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/addr"
	"repro/internal/coherence"
	"repro/internal/pte"
)

// Line is a decoded snapshot of one cache block frame (Figure 3.2b). The
// cache does not store Lines; it stores the packed arrays below. Line exists
// as the inspection view for audits, dumps and tests — mutate through
// LineRef, not through a Line copy.
type Line struct {
	// Addr is the global virtual block address held, valid only when
	// State.Valid().
	Addr addr.BlockAddr
	// State is the Berkeley Ownership coherency state (CS field).
	State coherence.State
	// BlockDirty is the block dirty bit B: the block was modified while
	// in the cache and must be written back on replacement.
	BlockDirty bool
	// PageDirty is the cached copy of the page dirty bit P, snapshotted
	// from the PTE at fill time and possibly stale thereafter.
	PageDirty bool
	// Prot is the cached copy of the page protection, snapshotted from
	// the PTE at fill time and possibly stale thereafter.
	Prot pte.Prot
	// IsPTE marks lines holding page-table entries brought in by the
	// in-cache translation mechanism.
	IsPTE bool
	// FilledByWrite records whether the block was brought in by a write
	// miss (as opposed to a read or instruction fetch). Together with
	// BlockDirty it classifies N_w-hit vs N_w-miss blocks.
	FilledByWrite bool
}

// Valid reports whether the line holds a block.
func (l Line) Valid() bool { return l.State.Valid() }

// The per-line metadata byte. The coherency state occupies the low bits so
// that a zero byte is exactly an Invalid, empty frame — clearing a line is
// storing zero.
const (
	metaStateMask  = 0b0000_0011 // coherence.State (Invalid = 0)
	metaProtShift  = 2
	metaProtMask   = 0b0000_1100 // pte.Prot
	metaBlockDirty = 1 << 4
	metaPageDirty  = 1 << 5
	metaIsPTE      = 1 << 6
	metaByWrite    = 1 << 7
)

func init() {
	// The packing gives two bits each to the coherency state and the
	// protection field, as the hardware tag does; fail at startup if either
	// enum ever outgrows them.
	if coherence.OwnedExclusive > 3 || pte.ProtKernel > 3 {
		panic("cache: state or protection no longer fits its 2-bit meta field")
	}
}

// packMeta encodes a line's non-tag state into one byte.
func packMeta(state coherence.State, prot pte.Prot, blockDirty, pageDirty, isPTE, byWrite bool) uint8 {
	m := uint8(state) | uint8(prot)<<metaProtShift
	if blockDirty {
		m |= metaBlockDirty
	}
	if pageDirty {
		m |= metaPageDirty
	}
	if isPTE {
		m |= metaIsPTE
	}
	if byWrite {
		m |= metaByWrite
	}
	return m
}

// metaNeedsWriteBack reports whether replacing a line with this metadata
// requires a memory write: it holds a block that is dirty or owned.
func metaNeedsWriteBack(m uint8) bool {
	st := coherence.State(m & metaStateMask)
	return st.Valid() && (m&metaBlockDirty != 0 || st.Owned())
}

// Victim describes a block displaced by a fill or flush.
type Victim struct {
	Addr addr.BlockAddr
	// WriteBack is true if the block was dirty/owned and had to be
	// written to memory.
	WriteBack bool
	// ReadThenNeverWritten is true if the block was brought in by a read
	// and left clean — the common case the FLUSH cost model's "90% of
	// blocks at 1 cycle" term reflects.
	ReadThenNeverWritten bool
	IsPTE                bool
}

// Stats counts cache-internal events for tests and reports. The experiment
// harness uses the counters package instead; these stay here so the cache is
// independently observable.
type Stats struct {
	Fills      uint64
	Evictions  uint64
	WriteBacks uint64
	BlockFlush uint64
	PageFlush  uint64
}

// Cache is a direct-mapped virtual-address cache.
type Cache struct {
	// tags[i] and meta[i] together are line frame i. A frame is empty iff
	// meta[i]'s coherency state is Invalid (meta[i]&metaStateMask == 0);
	// its tag is then meaningless.
	tags []addr.BlockAddr
	meta []uint8
	//spurlint:ignore statecomplete — derived from the configured size in New; reconstructing the cache rebuilds it
	indexMask uint64

	//spurlint:ignore statecomplete — coherency wiring, re-established by Bus.Attach when the machine is rebuilt
	bus *coherence.Bus
	//spurlint:ignore statecomplete — coherency wiring, re-established by Bus.Attach when the machine is rebuilt
	port int

	// Stats accumulates internal event counts.
	//spurlint:ignore statecomplete — measurement accumulator, reset at interval start; not warm state
	Stats Stats
}

// New returns a cache of the given total size and the architectural 32-byte
// block size. Size must be a power of two and a multiple of the block size.
func New(sizeBytes int) *Cache {
	if sizeBytes <= 0 || sizeBytes%addr.BlockBytes != 0 {
		panic(fmt.Sprintf("cache: bad size %d", sizeBytes))
	}
	n := sizeBytes / addr.BlockBytes
	if bits.OnesCount(uint(n)) != 1 {
		panic(fmt.Sprintf("cache: line count %d not a power of two", n))
	}
	return &Cache{
		tags:      make([]addr.BlockAddr, n),
		meta:      make([]uint8, n),
		indexMask: uint64(n - 1),
		port:      -1,
	}
}

// AttachBus connects the cache to a shared bus for coherency snooping.
func (c *Cache) AttachBus(bus *coherence.Bus) {
	c.bus = bus
	c.port = bus.Attach(c)
}

// Lines returns the number of block frames.
func (c *Cache) Lines() int { return len(c.tags) }

// SizeBytes returns the cache capacity in bytes.
func (c *Cache) SizeBytes() int { return len(c.tags) * addr.BlockBytes }

// index returns the line index for block b (direct mapped).
func (c *Cache) index(b addr.BlockAddr) uint64 { return uint64(b) & c.indexMask }

// LineRef is a handle to one resident line frame, as returned by Probe. Its
// accessors read and write the cache's packed state in place, so a LineRef
// plays the role the hardware's tag-store port does: mutations through it
// model the controller updating the tag bits of the probed frame. A LineRef
// is only meaningful until the frame is refilled or flushed; callers re-probe
// after anything that can displace lines, as the re-executed store would.
type LineRef struct {
	c *Cache
	i uint32
}

// Index returns the frame index (for diagnostics).
func (r LineRef) Index() int { return int(r.i) }

// Addr returns the global virtual block address held.
func (r LineRef) Addr() addr.BlockAddr { return r.c.tags[r.i] }

// SetAddr overwrites the tag. No normal path does this; it exists for fault
// injection, which corrupts tags to exercise the audit machinery.
func (r LineRef) SetAddr(b addr.BlockAddr) { r.c.tags[r.i] = b }

// State returns the Berkeley Ownership coherency state.
func (r LineRef) State() coherence.State {
	return coherence.State(r.c.meta[r.i] & metaStateMask)
}

// SetState updates the coherency state.
func (r LineRef) SetState(s coherence.State) {
	m := &r.c.meta[r.i]
	*m = *m&^metaStateMask | uint8(s)
}

// BlockDirty returns the block dirty bit B.
func (r LineRef) BlockDirty() bool { return r.c.meta[r.i]&metaBlockDirty != 0 }

// SetBlockDirty updates the block dirty bit.
func (r LineRef) SetBlockDirty(v bool) {
	if v {
		r.c.meta[r.i] |= metaBlockDirty
	} else {
		r.c.meta[r.i] &^= metaBlockDirty
	}
}

// PageDirty returns the cached copy of the page dirty bit P.
func (r LineRef) PageDirty() bool { return r.c.meta[r.i]&metaPageDirty != 0 }

// SetPageDirty updates the cached page dirty bit.
func (r LineRef) SetPageDirty(v bool) {
	if v {
		r.c.meta[r.i] |= metaPageDirty
	} else {
		r.c.meta[r.i] &^= metaPageDirty
	}
}

// Prot returns the cached copy of the page protection.
func (r LineRef) Prot() pte.Prot {
	return pte.Prot((r.c.meta[r.i] & metaProtMask) >> metaProtShift)
}

// SetProt updates the cached protection.
func (r LineRef) SetProt(p pte.Prot) {
	m := &r.c.meta[r.i]
	*m = *m&^metaProtMask | uint8(p)<<metaProtShift
}

// IsPTE reports whether the frame holds a page-table block.
func (r LineRef) IsPTE() bool { return r.c.meta[r.i]&metaIsPTE != 0 }

// FilledByWrite reports whether a write miss brought the block in.
func (r LineRef) FilledByWrite() bool { return r.c.meta[r.i]&metaByWrite != 0 }

// Line returns a decoded snapshot of the frame.
func (r LineRef) Line() Line { return r.c.LineAt(int(r.i)) }

// Probe looks up block b and reports whether it is resident. On a hit the
// returned LineRef addresses the frame holding it; callers mutate the frame
// through the ref to model hardware actions (setting the block dirty bit,
// refreshing the cached page dirty bit, …). On a miss the LineRef is the
// zero value and must not be used.
func (c *Cache) Probe(b addr.BlockAddr) (LineRef, bool) {
	i := c.index(b)
	if c.meta[i]&metaStateMask != 0 && c.tags[i] == b {
		//spurlint:ignore countersafe — i is a line index masked to the frame count, at most 2^22 for the largest sweepable cache, far inside uint32
		return LineRef{c: c, i: uint32(i)}, true
	}
	return LineRef{}, false
}

// LineAt decodes the frame at a raw index for inspection in tests and dumps.
func (c *Cache) LineAt(i int) Line {
	m := c.meta[i]
	l := Line{
		State:         coherence.State(m & metaStateMask),
		Prot:          pte.Prot((m & metaProtMask) >> metaProtShift),
		BlockDirty:    m&metaBlockDirty != 0,
		PageDirty:     m&metaPageDirty != 0,
		IsPTE:         m&metaIsPTE != 0,
		FilledByWrite: m&metaByWrite != 0,
	}
	if l.State.Valid() {
		l.Addr = c.tags[i]
	}
	return l
}

// Fill brings block b into the cache after a miss, snapshotting the page
// protection and page dirty bit from the PTE, and returns the displaced
// victim, if any. byWrite records whether a write miss caused the fill;
// state is the arriving coherency state (UnOwned for reads, OwnedExclusive
// for writes under Berkeley Ownership).
func (c *Cache) Fill(b addr.BlockAddr, state coherence.State, prot pte.Prot, pageDirty, isPTE, byWrite bool) (Victim, bool) {
	i := c.index(b)
	m := c.meta[i]
	var v Victim
	evicted := false
	if m&metaStateMask != 0 {
		old := c.tags[i]
		if old == b {
			panic("cache: Fill of resident block")
		}
		v = Victim{
			Addr:                 old,
			WriteBack:            metaNeedsWriteBack(m),
			ReadThenNeverWritten: m&(metaByWrite|metaBlockDirty) == 0,
			IsPTE:                m&metaIsPTE != 0,
		}
		evicted = true
		c.Stats.Evictions++
		if v.WriteBack {
			c.Stats.WriteBacks++
			c.issue(coherence.BusWriteBack, old)
		}
	}
	c.tags[i] = b
	c.meta[i] = packMeta(state, prot, byWrite, pageDirty, isPTE, byWrite)
	c.Stats.Fills++
	return v, evicted
}

// FlushBlock removes block b from the cache if present, returning whether it
// was present and whether it was written back. This is SPUR's single-block
// flush operation.
func (c *Cache) FlushBlock(b addr.BlockAddr) (present, writtenBack bool) {
	l, ok := c.Probe(b)
	if !ok {
		return false, false
	}
	c.Stats.BlockFlush++
	return true, c.invalidateFrame(uint64(l.i))
}

// invalidateFrame empties frame i, writing the block back if it needs it,
// and reports whether it did.
func (c *Cache) invalidateFrame(i uint64) bool {
	wb := metaNeedsWriteBack(c.meta[i])
	if wb {
		c.Stats.WriteBacks++
		c.issue(coherence.BusWriteBack, c.tags[i])
	}
	c.meta[i] = 0
	return wb
}

// FlushResult summarizes a page flush.
type FlushResult struct {
	// Checked is the number of line frames examined (always 128: one per
	// block of the page).
	Checked int
	// Flushed is the number of valid lines invalidated.
	Flushed int
	// WrittenBack is how many of those required a memory write.
	WrittenBack int
	// Collateral is the number of invalidated lines that belonged to
	// *other* pages — nonzero only for the tag-ignoring flush, whose
	// collateral damage the paper calls out ("blocks from other pages may
	// be unnecessarily flushed").
	Collateral int
}

// FlushPage removes every block of page p from the cache.
//
// If tagCheck is true this is the hypothetical tag-checking flush the paper
// assumes for its FLUSH-policy comparison: each of the page's 128 line
// frames is examined and only lines actually belonging to the page are
// invalidated. If tagCheck is false this is the flush SPUR actually built:
// the 128 frames are flushed regardless of their virtual address tags,
// taking resident blocks of other pages with them.
func (c *Cache) FlushPage(p addr.GVPN, tagCheck bool) FlushResult {
	c.Stats.PageFlush++
	res := FlushResult{Checked: addr.BlocksPerPage}
	first := p.FirstBlock()
	for i := 0; i < addr.BlocksPerPage; i++ {
		b := first + addr.BlockAddr(i)
		fi := c.index(b)
		if c.meta[fi]&metaStateMask == 0 {
			continue
		}
		if tagCheck && c.tags[fi] != b {
			continue
		}
		if c.tags[fi].Page() != p {
			res.Collateral++
		}
		res.Flushed++
		if c.invalidateFrame(fi) {
			res.WrittenBack++
		}
	}
	return res
}

// InvalidateAll empties the cache, writing back dirty blocks, and returns
// the number of write-backs.
func (c *Cache) InvalidateAll() int {
	wb := 0
	for i := range c.meta {
		if c.meta[i]&metaStateMask != 0 && c.invalidateFrame(uint64(i)) {
			wb++
		}
	}
	return wb
}

// ResidentBlocks returns how many valid blocks of page p are resident, and
// how many of those are clean. The FLUSH cost model's "10% of blocks from
// the page are in cache and are clean" assumption is the paper's estimate of
// exactly this quantity.
func (c *Cache) ResidentBlocks(p addr.GVPN) (resident, clean int) {
	first := p.FirstBlock()
	for i := 0; i < addr.BlocksPerPage; i++ {
		b := first + addr.BlockAddr(i)
		fi := c.index(b)
		if c.meta[fi]&metaStateMask != 0 && c.tags[fi] == b {
			resident++
			if c.meta[fi]&metaBlockDirty == 0 {
				clean++
			}
		}
	}
	return resident, clean
}

// issue broadcasts a bus transaction if a bus is attached.
func (c *Cache) issue(op coherence.BusOp, b addr.BlockAddr) (supplied, invalidated bool) {
	if c.bus == nil {
		return false, false
	}
	return c.bus.Issue(c.port, op, b)
}

// IssueBus exposes bus transactions for the access engine (read-for-
// ownership on write misses, invalidations on shared write hits).
func (c *Cache) IssueBus(op coherence.BusOp, b addr.BlockAddr) (supplied, invalidated bool) {
	return c.issue(op, b)
}

// Snoop implements coherence.Snooper: the cache watches other controllers'
// transactions and updates its matching line per the Berkeley protocol.
func (c *Cache) Snoop(op coherence.BusOp, b addr.BlockAddr) coherence.SnoopResult {
	l, ok := c.Probe(b)
	if !ok {
		return coherence.SnoopResult{}
	}
	ns, res := coherence.OnSnoop(l.State(), op)
	if ns == coherence.Invalid {
		// Ownership (and the data) transfers over the bus; no memory
		// write-back happens here.
		c.meta[l.i] = 0
	} else {
		l.SetState(ns)
	}
	return res
}

// Utilization returns the fraction of lines currently valid.
func (c *Cache) Utilization() float64 {
	n := 0
	for i := range c.meta {
		if c.meta[i]&metaStateMask != 0 {
			n++
		}
	}
	return float64(n) / float64(len(c.meta))
}

// Format describes the cache line layout (Figure 3.2b) as text.
func Format() string {
	return `SPUR Cache Tag Format (Figure 3.2b)
 +----------------------+---+-+-+----+
 |  Virtual Address Tag |PR |P|B| CS |
 +----------------------+---+-+-+----+
  PR = Protection (2 bits)       P = Page Dirty Bit (cached copy)
  B  = Block Dirty Bit           CS = Coherency State (2 bits)`
}
