package core

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/counters"
	"repro/internal/mem"
	"repro/internal/pte"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/xlate"
)

const (
	pteSeg  = addr.SegmentID(255)
	dataSeg = addr.SegmentID(3)
)

type rig struct {
	e   *Engine
	ctr *counters.Set
}

func newRig(dirty DirtyPolicy, ref RefPolicy, frames int) *rig {
	ctr := counters.New()
	tp := timing.Default()
	c := cache.New(128 * 1024)
	tbl := pte.NewTable(pteSeg)
	x := xlate.New(tbl, c, ctr, tp)
	pool := mem.NewPool(frames, 0)
	if frames > 8 {
		pool.SetWatermarks(2, 4)
	}
	pager := vm.NewPager(pool, ctr, tp)
	e := NewEngine(c, x, pager, ctr, tp, dirty, ref)
	pager.AddRegion(addr.PageIn(dataSeg, 0), 256, vm.Data)
	pager.AddRegion(addr.PageIn(dataSeg, 1024), 256, vm.Heap)
	pager.AddRegion(addr.PageIn(addr.SegmentID(2), 0), 64, vm.Code)
	return &rig{e: e, ctr: ctr}
}

func dataAddr(page int, block int) addr.GVA {
	return addr.Global(dataSeg, uint64(page)*addr.PageBytes+uint64(block)*addr.BlockBytes)
}

func heapAddr(page int, block int) addr.GVA {
	return addr.Global(dataSeg, uint64(1024+page)*addr.PageBytes+uint64(block)*addr.BlockBytes)
}

func codeAddr(page int, block int) addr.GVA {
	return addr.Global(addr.SegmentID(2), uint64(page)*addr.PageBytes+uint64(block)*addr.BlockBytes)
}

func (r *rig) read(a addr.GVA)   { r.e.Access(trace.Rec{Op: trace.OpRead, Addr: a}) }
func (r *rig) write(a addr.GVA)  { r.e.Access(trace.Rec{Op: trace.OpWrite, Addr: a}) }
func (r *rig) ifetch(a addr.GVA) { r.e.Access(trace.Rec{Op: trace.OpIFetch, Addr: a}) }

func (r *rig) count(e counters.Event) uint64 { return r.ctr.Count(e) }

// The Figure 3.1 scenario: two blocks of page A cached while the page was
// read-only (clean); after the first write makes the page writable, a write
// to the other previously cached block still faults under FAULT.
func TestFaultPolicyExcessFault(t *testing.T) {
	r := newRig(DirtyFAULT, RefMISS, 64)
	r.read(dataAddr(0, 20))
	r.read(dataAddr(0, 21))
	if got := r.count(counters.EvDirtyFault); got != 0 {
		t.Fatalf("faults after reads = %d", got)
	}

	r.write(dataAddr(0, 20)) // first write: necessary fault
	if got := r.count(counters.EvDirtyFault); got != 1 {
		t.Fatalf("necessary faults = %d, want 1", got)
	}
	if got := r.count(counters.EvExcessFault); got != 0 {
		t.Fatalf("excess faults = %d, want 0", got)
	}

	r.write(dataAddr(0, 21)) // stale cached protection: excess fault
	if got := r.count(counters.EvExcessFault); got != 1 {
		t.Fatalf("excess faults = %d, want 1", got)
	}

	// Repeated writes to both blocks proceed without faults.
	r.write(dataAddr(0, 20))
	r.write(dataAddr(0, 21))
	if r.count(counters.EvDirtyFault) != 1 || r.count(counters.EvExcessFault) != 1 {
		t.Error("faults repeated on refreshed blocks")
	}

	// A block fetched by read *after* the page went dirty snapshots RW:
	// no fault.
	r.read(dataAddr(0, 22))
	r.write(dataAddr(0, 22))
	if r.count(counters.EvExcessFault) != 1 {
		t.Error("fresh block faulted")
	}
}

func TestSPURPolicyDirtyBitMiss(t *testing.T) {
	r := newRig(DirtySPUR, RefMISS, 64)
	r.read(dataAddr(0, 20))
	r.read(dataAddr(0, 21))

	r.write(dataAddr(0, 20)) // necessary fault (fault-return refresh is not an N_dm event)
	if r.count(counters.EvDirtyFault) != 1 {
		t.Fatalf("necessary faults = %d", r.count(counters.EvDirtyFault))
	}
	if r.count(counters.EvDirtyBitMiss) != 0 {
		t.Fatalf("dirty-bit misses = %d, want 0 after the necessary fault", r.count(counters.EvDirtyBitMiss))
	}

	r.write(dataAddr(0, 21)) // stale cached dirty bit: dirty-bit miss, NOT a fault
	if r.count(counters.EvDirtyFault) != 1 {
		t.Error("stale block caused a fault under SPUR")
	}
	if r.count(counters.EvDirtyBitMiss) != 1 {
		t.Errorf("dirty-bit misses = %d, want 1", r.count(counters.EvDirtyBitMiss))
	}

	// Subsequent writes to refreshed blocks proceed without delay.
	r.write(dataAddr(0, 21))
	if r.count(counters.EvDirtyBitMiss) != 1 {
		t.Error("refreshed block missed again")
	}
	if r.count(counters.EvExcessFault) != 0 {
		t.Error("SPUR generated excess faults")
	}
}

func TestFlushPolicyPreventsExcessFaults(t *testing.T) {
	r := newRig(DirtyFLUSH, RefMISS, 64)
	r.read(dataAddr(0, 20))
	r.read(dataAddr(0, 21))

	r.write(dataAddr(0, 20)) // necessary fault; page flushed from cache
	if r.count(counters.EvDirtyFault) != 1 {
		t.Fatalf("necessary faults = %d", r.count(counters.EvDirtyFault))
	}
	if r.count(counters.EvPageFlush) == 0 {
		t.Fatal("FLUSH policy did not flush")
	}

	r.write(dataAddr(0, 21)) // block was flushed: plain write miss, no fault
	if r.count(counters.EvExcessFault) != 0 {
		t.Error("excess fault under FLUSH")
	}
	if r.count(counters.EvDirtyFault) != 1 {
		t.Error("extra dirty fault under FLUSH")
	}
	// The flushed-and-rewritten block came back via a write miss.
	if r.count(counters.EvWriteMissBlock) == 0 {
		t.Error("refetched block not counted as write-miss fill")
	}
}

func TestWritePolicyChecksPTE(t *testing.T) {
	r := newRig(DirtyWRITE, RefMISS, 64)
	r.read(dataAddr(0, 20))
	r.read(dataAddr(0, 21))

	r.write(dataAddr(0, 20)) // write hit on clean block: PTE check + fault
	if r.count(counters.EvDirtyCheck) != 1 {
		t.Fatalf("dirty checks = %d, want 1", r.count(counters.EvDirtyCheck))
	}
	if r.count(counters.EvDirtyFault) != 1 {
		t.Fatalf("faults = %d, want 1", r.count(counters.EvDirtyFault))
	}

	r.write(dataAddr(0, 21)) // first write to second block: check, no fault
	if r.count(counters.EvDirtyCheck) != 2 {
		t.Errorf("dirty checks = %d, want 2", r.count(counters.EvDirtyCheck))
	}
	if r.count(counters.EvDirtyFault) != 1 {
		t.Error("already-dirty page faulted again")
	}

	r.write(dataAddr(0, 20)) // block already dirty: no check
	if r.count(counters.EvDirtyCheck) != 2 {
		t.Error("re-write checked the PTE again")
	}
	// Write misses never need the separate check (PTE is in hand).
	r.write(dataAddr(1, 20))
	if r.count(counters.EvDirtyCheck) != 2 {
		t.Error("write miss charged a dirty check")
	}
	if r.count(counters.EvExcessFault) != 0 {
		t.Error("WRITE generated excess faults")
	}
}

func TestMinPolicyOnlyNecessaryFaults(t *testing.T) {
	r := newRig(DirtyMIN, RefMISS, 64)
	r.read(dataAddr(0, 20))
	r.read(dataAddr(0, 21))
	r.write(dataAddr(0, 20))
	r.write(dataAddr(0, 21))
	r.write(dataAddr(1, 23))
	if r.count(counters.EvDirtyFault) != 2 { // one per page
		t.Errorf("faults = %d, want 2", r.count(counters.EvDirtyFault))
	}
	if r.count(counters.EvExcessFault) != 0 || r.count(counters.EvDirtyBitMiss) != 0 ||
		r.count(counters.EvDirtyCheck) != 0 {
		t.Error("MIN charged checking overhead")
	}
}

func TestWriteMissNecessaryFault(t *testing.T) {
	for _, pol := range DirtyPolicies {
		r := newRig(pol, RefMISS, 64)
		r.write(dataAddr(0, 20)) // write miss to a clean page
		if got := r.count(counters.EvDirtyFault); got != 1 {
			t.Errorf("%v: write-miss faults = %d, want 1", pol, got)
		}
		if got := r.count(counters.EvWriteMissBlock); got != 1 {
			t.Errorf("%v: N_w-miss = %d, want 1", pol, got)
		}
	}
}

func TestNwHitNwMissClassification(t *testing.T) {
	r := newRig(DirtySPUR, RefMISS, 64)
	r.read(dataAddr(0, 20))
	r.write(dataAddr(0, 20)) // read-then-write: N_w-hit
	r.write(dataAddr(0, 21)) // write miss: N_w-miss
	r.write(dataAddr(0, 21)) // re-write: neither
	r.ifetch(codeAddr(0, 20))
	if r.count(counters.EvWriteHitBlock) != 1 {
		t.Errorf("N_w-hit = %d, want 1", r.count(counters.EvWriteHitBlock))
	}
	if r.count(counters.EvWriteMissBlock) != 1 {
		t.Errorf("N_w-miss = %d, want 1", r.count(counters.EvWriteMissBlock))
	}
}

func TestZeroFillPagesCounted(t *testing.T) {
	r := newRig(DirtySPUR, RefMISS, 64)
	r.write(heapAddr(0, 20)) // ZFOD creation + dirty fault
	r.write(heapAddr(1, 20))
	r.read(dataAddr(0, 20)) // file-backed: page-in, not zfod
	if r.count(counters.EvZeroFillFault) != 2 {
		t.Errorf("N_zfod = %d, want 2", r.count(counters.EvZeroFillFault))
	}
	if r.count(counters.EvDirtyFault) != 2 {
		t.Errorf("N_ds = %d, want 2", r.count(counters.EvDirtyFault))
	}
	if r.e.Pager.Stats.PageIns != 1 {
		t.Errorf("page-ins = %d, want 1", r.e.Pager.Stats.PageIns)
	}
}

func TestRefFaultOnMissAfterClear(t *testing.T) {
	r := newRig(DirtySPUR, RefMISS, 64)
	r.read(dataAddr(0, 20))
	if r.count(counters.EvRefFault) != 0 {
		t.Fatal("mapping fault should set R without a separate ref fault")
	}
	// Daemon clears the reference bit.
	pg := r.e.Pager.Lookup(dataAddr(0, 20).Page())
	r.e.ClearReference(pg)
	// A hit does NOT set the bit back (the MISS approximation's blind
	// spot)...
	r.read(dataAddr(0, 20))
	if r.e.PageReferenced(pg) {
		t.Error("hit set the reference bit under MISS")
	}
	// ...but the next miss does, via a reference fault.
	r.read(dataAddr(0, 25))
	if r.count(counters.EvRefFault) != 1 {
		t.Errorf("ref faults = %d, want 1", r.count(counters.EvRefFault))
	}
	if !r.e.PageReferenced(pg) {
		t.Error("reference bit not set after miss")
	}
}

func TestRefTRUEFlushesOnClear(t *testing.T) {
	r := newRig(DirtySPUR, RefTRUE, 64)
	r.read(dataAddr(0, 20))
	pg := r.e.Pager.Lookup(dataAddr(0, 20).Page())
	flushes := r.count(counters.EvPageFlush)
	r.e.ClearReference(pg)
	if r.count(counters.EvPageFlush) != flushes+1 {
		t.Fatal("REF clear did not flush the page")
	}
	// The next access to the previously cached block now misses and
	// faults the bit back on: true reference bits.
	r.read(dataAddr(0, 20))
	if r.count(counters.EvRefFault) != 1 {
		t.Errorf("ref faults = %d, want 1", r.count(counters.EvRefFault))
	}
	if !r.e.PageReferenced(pg) {
		t.Error("bit not restored")
	}
}

func TestRefNONEBehaviour(t *testing.T) {
	r := newRig(DirtySPUR, RefNONE, 64)
	r.read(dataAddr(0, 20))
	pg := r.e.Pager.Lookup(dataAddr(0, 20).Page())
	if r.e.PageReferenced(pg) {
		t.Error("NOREF read routine returned true")
	}
	r.e.ClearReference(pg) // no-op
	r.read(dataAddr(0, 27))
	r.read(dataAddr(1, 20))
	if r.count(counters.EvRefFault) != 0 {
		t.Error("NOREF generated reference faults")
	}
	if r.count(counters.EvPageFlush) != 0 {
		t.Error("NOREF flushed")
	}
}

func TestWriteToCodePagePanics(t *testing.T) {
	r := newRig(DirtySPUR, RefMISS, 64)
	r.ifetch(codeAddr(0, 20))
	defer func() {
		if recover() == nil {
			t.Error("write to code page did not panic")
		}
	}()
	r.write(codeAddr(0, 20))
}

func TestReclaimRearmsDirtyFault(t *testing.T) {
	// A page written, paged out, paged back in and re-written must take a
	// second necessary fault — this is what drives N_ds up at small
	// memory sizes.
	r := newRig(DirtySPUR, RefNONE, 8) // tiny memory, FIFO reclaim
	r.e.Pager.Pool().SetWatermarks(2, 4)
	r.write(dataAddr(0, 20))
	if r.count(counters.EvDirtyFault) != 1 {
		t.Fatal("first fault missing")
	}
	// Pressure page 0 out.
	for i := 1; i < 12; i++ {
		r.read(dataAddr(i, 20))
	}
	if pg := r.e.Pager.Lookup(dataAddr(0, 20).Page()); pg.Resident {
		t.Fatal("page 0 still resident; pressure insufficient")
	}
	if r.e.Pager.Stats.PageOuts == 0 {
		t.Fatal("modified page not written out")
	}
	r.write(dataAddr(0, 20))
	if r.count(counters.EvDirtyFault) != 2 {
		t.Errorf("faults after re-dirty = %d, want 2", r.count(counters.EvDirtyFault))
	}
	if r.e.Pager.Stats.PageIns == 0 {
		t.Error("re-fault was not a page-in")
	}
}

func TestElapsedAndCycles(t *testing.T) {
	r := newRig(DirtySPUR, RefMISS, 64)
	for i := 0; i < 100; i++ {
		r.read(dataAddr(i%4, i%128))
	}
	if r.e.Cycles == 0 || r.e.TotalCycles() < r.e.Cycles {
		t.Error("cycle accounting broken")
	}
	if r.e.ElapsedSeconds() <= 0 {
		t.Error("elapsed not positive")
	}
}

func TestEventsFromEngineRun(t *testing.T) {
	r := newRig(DirtySPUR, RefMISS, 64)
	r.read(dataAddr(0, 20))
	r.write(dataAddr(0, 20))
	r.write(heapAddr(0, 20))
	ev := EventsFrom(r.ctr, r.e.Pager.Stats, r.e.ElapsedSeconds())
	if ev.Nds != 2 || ev.Nzfod != 1 || ev.NwHit != 1 || ev.NwMiss != 1 {
		t.Errorf("events = %+v", ev)
	}
	if ev.Refs != 3 || ev.Misses != 2 {
		t.Errorf("refs/misses = %d/%d", ev.Refs, ev.Misses)
	}
	if ev.PageIns != 1 {
		t.Errorf("page-ins = %d", ev.PageIns)
	}
}

// TestPolicyEquivalenceOnEventCounts checks the paper's Table 3.3 claim
// N_ef = N_dm: running the same reference string under FAULT and SPUR must
// observe the same set of stale blocks.
func TestPolicyEquivalenceOnEventCounts(t *testing.T) {
	script := func(r *rig) {
		for p := 0; p < 6; p++ {
			for b := 0; b < 10; b++ {
				r.read(dataAddr(p, b))
			}
			for b := 5; b < 15; b++ {
				r.write(dataAddr(p, b))
			}
		}
	}
	rf := newRig(DirtyFAULT, RefMISS, 64)
	script(rf)
	rs := newRig(DirtySPUR, RefMISS, 64)
	script(rs)
	nef := rf.count(counters.EvExcessFault)
	ndm := rs.count(counters.EvDirtyBitMiss)
	if nef != ndm {
		t.Errorf("N_ef = %d but N_dm = %d", nef, ndm)
	}
	if nef == 0 {
		t.Error("script produced no stale blocks; test is vacuous")
	}
	// And both runs agree on the necessary fault count.
	if rf.count(counters.EvDirtyFault) != rs.count(counters.EvDirtyFault) {
		t.Errorf("N_ds differs: %d vs %d",
			rf.count(counters.EvDirtyFault), rs.count(counters.EvDirtyFault))
	}
}

// TestPROTEquivalentToSPUR verifies the paper's claim that applying the
// dirty-bit-miss idea directly to the protection field ("since the
// performance of this scheme is identical to what we implemented in SPUR,
// we will not discuss it separately") holds in simulation: same necessary
// faults, same stale-block refreshes, same cycles.
func TestPROTEquivalentToSPUR(t *testing.T) {
	script := func(r *rig) {
		for p := 0; p < 6; p++ {
			for b := 16; b < 26; b++ {
				r.read(dataAddr(p, b))
			}
			for b := 21; b < 31; b++ {
				r.write(dataAddr(p, b))
			}
			r.write(heapAddr(p, 20))
		}
	}
	rs := newRig(DirtySPUR, RefMISS, 64)
	script(rs)
	rp := newRig(DirtyPROT, RefMISS, 64)
	script(rp)

	if a, b := rs.count(counters.EvDirtyFault), rp.count(counters.EvDirtyFault); a != b {
		t.Errorf("N_ds differs: SPUR %d vs PROT %d", a, b)
	}
	if a, b := rs.count(counters.EvDirtyBitMiss), rp.count(counters.EvProtBitMiss); a != b {
		t.Errorf("stale refreshes differ: dirty-bit misses %d vs prot-bit misses %d", a, b)
	}
	if rp.count(counters.EvExcessFault) != 0 {
		t.Error("PROT paid excess faults")
	}
	if rs.e.Cycles != rp.e.Cycles {
		t.Errorf("cycles differ: SPUR %d vs PROT %d", rs.e.Cycles, rp.e.Cycles)
	}
}

func TestPROTPolicyMechanism(t *testing.T) {
	r := newRig(DirtyPROT, RefMISS, 64)
	r.read(dataAddr(0, 20))
	r.read(dataAddr(0, 21))
	r.write(dataAddr(0, 20)) // necessary fault; PTE raised to RW
	if r.count(counters.EvDirtyFault) != 1 || r.count(counters.EvProtBitMiss) != 0 {
		t.Fatalf("first write: nds=%d npm=%d", r.count(counters.EvDirtyFault), r.count(counters.EvProtBitMiss))
	}
	r.write(dataAddr(0, 21)) // stale cached protection: prot-bit miss, no fault
	if r.count(counters.EvDirtyFault) != 1 {
		t.Error("stale block faulted under PROT")
	}
	if r.count(counters.EvProtBitMiss) != 1 {
		t.Errorf("prot-bit misses = %d, want 1", r.count(counters.EvProtBitMiss))
	}
	r.write(dataAddr(0, 21)) // refreshed: proceeds clean
	if r.count(counters.EvProtBitMiss) != 1 {
		t.Error("refreshed block missed again")
	}
}

// TestTagIgnoringFlushCollateral configures SPUR's real flush hardware
// (no tag check) and verifies that kernel page flushes take innocent
// bystander blocks with them, unlike the hypothetical tag-checking flush.
func TestTagIgnoringFlushCollateral(t *testing.T) {
	r := newRig(DirtyFLUSH, RefMISS, 64)
	r.e.TagCheckFlush = false

	// Cache block 21 of page 32, which lives in one of page 0's 128 line
	// frames (4096 lines / 128 blocks-per-page = 32 pages of cache) but
	// does not conflict with the blocks the test touches on page 0.
	r.read(dataAddr(32, 21))
	// Trigger the FLUSH policy on page 0: the tag-ignoring flush sweeps
	// all 128 of page 0's frames and takes page 32's block with them.
	r.read(dataAddr(0, 20))
	r.write(dataAddr(0, 20))
	if _, hit := r.e.Cache.Probe(dataAddr(32, 21).Block()); hit {
		t.Error("tag-ignoring flush spared a conflicting page's block")
	}

	// The tag-checking flush spares it.
	r2 := newRig(DirtyFLUSH, RefMISS, 64)
	r2.e.TagCheckFlush = true
	r2.read(dataAddr(32, 21))
	r2.read(dataAddr(0, 20))
	r2.write(dataAddr(0, 20))
	if _, hit := r2.e.Cache.Probe(dataAddr(32, 21).Block()); !hit {
		t.Error("tag-checking flush took a bystander")
	}
}

// TestEngineFaultsByKind verifies the diagnostic breakdown.
func TestEngineFaultsByKind(t *testing.T) {
	r := newRig(DirtySPUR, RefMISS, 64)
	r.write(dataAddr(0, 20))
	r.write(heapAddr(0, 20))
	if r.e.FaultsByKind[vm.Data] != 1 || r.e.FaultsByKind[vm.Heap] != 1 {
		t.Errorf("breakdown = %v", r.e.FaultsByKind)
	}
}
