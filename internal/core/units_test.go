package core

import (
	"strconv"
	"testing"
)

func TestMiB(t *testing.T) {
	if MiB(5) != 5<<20 {
		t.Errorf("MiB(5) = %d", MiB(5))
	}
	if MiB(0) != 0 {
		t.Errorf("MiB(0) = %d", MiB(0))
	}
	defer func() {
		if recover() == nil {
			t.Error("negative MiB did not panic")
		}
	}()
	MiB(-1)
}

func TestMiBOverflow(t *testing.T) {
	if strconv.IntSize == 64 {
		// 2048 << 20 is zero in 32-bit int arithmetic; here it must be 2 GiB.
		if MiB(2048) != 2048<<20 {
			t.Errorf("MiB(2048) = %d", MiB(2048))
		}
		return
	}
	defer func() {
		if recover() == nil {
			t.Error("overflowing MiB did not panic on 32-bit int")
		}
	}()
	MiB(2048)
}
