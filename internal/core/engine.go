package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/counters"
	"repro/internal/faultinject"
	"repro/internal/pte"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/xlate"
)

// Engine is the reference-processing state machine: it drives every memory
// reference through the virtual-address cache, in-cache translation, the
// pager, and the configured reference/dirty-bit policies, charging cycles
// and raising counter events exactly where the hardware or the fault
// handlers would. It also implements vm.OS, so the page daemon's
// reference-bit reads/clears and page-out dirty checks flow back through the
// same policies.
type Engine struct {
	//spurlint:ignore statecomplete — component wiring; the cache's own state goes through Cache.ExportState/RestoreState
	Cache *cache.Cache
	//spurlint:ignore statecomplete — stateless in-cache translation unit, rebuilt when the machine is wired
	X *xlate.Unit
	//spurlint:ignore statecomplete — component wiring; the pager's own state goes through Pager.ExportState/RestoreState
	Pager *vm.Pager
	//spurlint:ignore statecomplete — component wiring; counters are armed per measured interval, not checkpointed
	Ctr *counters.Set
	//spurlint:ignore statecomplete — timing configuration from the spec, not accumulated state
	TP timing.Params

	//spurlint:ignore statecomplete — policy configuration from the spec, not accumulated state
	Dirty DirtyPolicy
	//spurlint:ignore statecomplete — policy configuration from the spec, not accumulated state
	Ref RefPolicy

	// TagCheckFlush selects the hypothetical tag-checking page flush for
	// kernel page flushes (reclaims, REF clears, FLUSH faults) instead of
	// SPUR's tag-ignoring one.
	//spurlint:ignore statecomplete — policy configuration from the spec, not accumulated state
	TagCheckFlush bool

	// Inject, when non-nil, applies per-reference hardware faults: a
	// forced counter wraparound, a flipped cached page-dirty bit, or a
	// corrupted line tag. A nil injector is inert.
	//spurlint:ignore statecomplete — fault-injection harness configuration; experiments never checkpoint under injection
	Inject *faultinject.Injector

	// Cycles accumulates reference-processing and fault-handler time.
	// Total machine time is Cycles + Pager.Cycles.
	Cycles uint64

	// FaultsByKind breaks necessary dirty faults down by page kind
	// (indexed by vm.PageKind), for workload diagnosis and ablations.
	FaultsByKind [4]uint64
}

var _ vm.OS = (*Engine)(nil)

// NewEngine wires an engine over the given substrates and installs it as
// the pager's OS layer.
func NewEngine(c *cache.Cache, x *xlate.Unit, pager *vm.Pager, ctr *counters.Set, tp timing.Params, dirty DirtyPolicy, ref RefPolicy) *Engine {
	e := &Engine{
		Cache: c, X: x, Pager: pager, Ctr: ctr, TP: tp,
		Dirty: dirty, Ref: ref, TagCheckFlush: true,
	}
	pager.SetOS(e)
	return e
}

// opEvent and opMissEvent map a trace.Op to its issue and miss counter
// events, replacing a three-way branch on the hottest path with one load.
var opEvent = [3]counters.Event{
	trace.OpIFetch: counters.EvIFetch,
	trace.OpRead:   counters.EvRead,
	trace.OpWrite:  counters.EvWrite,
}

var opMissEvent = [3]counters.Event{
	trace.OpIFetch: counters.EvIFetchMiss,
	trace.OpRead:   counters.EvReadMiss,
	trace.OpWrite:  counters.EvWriteMiss,
}

// Access processes one memory reference.
func (e *Engine) Access(r trace.Rec) {
	b := r.Addr.Block()

	if e.Inject != nil && e.Inject.Fire(faultinject.CounterWrap) {
		// The hardware counters jump to the edge of their 32-bit range;
		// the software shadow must carry the measurement across.
		e.Ctr.InjectWraparound(8)
	}

	e.Ctr.Inc(opEvent[r.Op])

	if l, hit := e.Cache.Probe(b); hit {
		if e.Inject != nil {
			e.injectLineFaults(l)
		}
		// Cache hit: the whole point of a virtual address cache — no
		// translation, single-cycle access.
		e.Cycles += uint64(e.TP.HitCycles)
		if r.Op == trace.OpWrite {
			e.writeHit(l, r.Addr.Page(), b)
		}
		return
	}
	e.miss(r.Op, b, r.Addr.Page())
}

// AccessBatch processes a buffer of references with one concrete call,
// replacing the per-reference interface dispatch of Source.Next + Access.
// The simulated outcome is identical to calling Access on each record in
// order.
func (e *Engine) AccessBatch(recs []trace.Rec) {
	for i := range recs {
		e.Access(recs[i])
	}
}

// injectLineFaults applies planned soft errors to the line just probed: a
// flipped cached page-dirty bit (silently corrupting the state the paper's
// policies maintain) or a corrupted tag (leaving a valid line that belongs
// to no resident page — the breach the continuous audit must catch). The
// corrupted tag flips block-address bit 24: the cache index and the segment
// are preserved, but the line now claims a page ±2^17 pages away, far
// outside any registered region. The caller checks Inject for nil; this
// runs on every cache hit, so the inert case must not cost a call.
func (e *Engine) injectLineFaults(l cache.LineRef) {
	if e.Inject.Fire(faultinject.DirtyBitFlip) {
		l.SetPageDirty(!l.PageDirty())
	}
	if !l.IsPTE() && e.Inject.Fire(faultinject.LineCorrupt) {
		l.SetAddr(l.Addr() ^ 1<<24)
	}
}

// miss handles a cache miss: translate, fault if needed, apply the
// reference-bit and (for writes) dirty-bit policy, and fill the block.
func (e *Engine) miss(op trace.Op, b addr.BlockAddr, p addr.GVPN) {
	e.Ctr.Inc(opMissEvent[op])
	e.Cycles += uint64(e.TP.HitCycles) // the probe that missed

	entry, xc, cached := e.X.TranslateCached(p)
	e.Cycles += xc
	if !cached {
		res := e.X.TranslateMiss(p)
		e.Cycles += res.Cycles
		e.chargeVictim(res.Victim, res.Evicted)
		entry = res.Entry
	}

	if !entry.Valid() {
		// Page fault: the pager makes the page resident and calls back
		// into MapPage, which installs the PTE per the dirty policy.
		e.Cycles += e.TP.FaultCycles
		e.Pager.EnsureResident(p)
		entry = e.X.Table().Lookup(p)
		if !entry.Valid() {
			panic(fmt.Sprintf("core: page %#x invalid after fault", uint64(p)))
		}
	}

	// The reference bit is checked only on cache misses: this is the MISS
	// bit approximation (and the mechanism REF builds on). Under NOREF
	// the hardware bit is left permanently set, so no fault can occur.
	if e.Ref != RefNONE && !entry.Referenced() {
		e.Ctr.Inc(counters.EvRefFault)
		e.Cycles += e.TP.FaultCycles
		var c uint64
		entry, c = e.X.UpdatePTE(p, func(en pte.Entry) pte.Entry { return en.WithReferenced(true) })
		e.Cycles += c
	}

	if op == trace.OpWrite {
		entry = e.writeMiss(p, entry)
	}

	// Fetch the block. Writes arrive owning the block (read-for-
	// ownership); reads arrive unowned.
	state := coherence.UnOwned
	if op == trace.OpWrite {
		state = coherence.OwnedExclusive
		e.Cache.IssueBus(coherence.BusReadOwn, b)
		e.Ctr.Inc(counters.EvWriteMissBlock)
	} else {
		e.Cache.IssueBus(coherence.BusRead, b)
	}
	e.Ctr.Inc(counters.EvBusRead)
	e.Cycles += e.TP.BlockFetchCycles()
	v, evicted := e.Cache.Fill(b, state, entry.Prot(), entry.Dirty(), false, op == trace.OpWrite)
	e.chargeVictim(v, evicted)
}

// writeHit applies the dirty-bit policy to a write that hit in the cache.
//
// Policy work can itself disturb the cache (the fault handler's PTE store
// may fetch the PTE block into the frame the written block occupies, and
// the FLUSH policy removes the whole page), so the faulting line's flags
// are captured first and the line is re-probed afterwards; if it was
// displaced, the write completes by refetching the block, exactly as the
// hardware would re-execute the store after the handler returns.
func (e *Engine) writeHit(l cache.LineRef, p addr.GVPN, b addr.BlockAddr) {
	wasClean := !l.BlockDirty()
	byRead := !l.FilledByWrite()

	if !e.Dirty.UsesProtectionEmulation() && !l.Prot().AllowsWrite() {
		// Under the non-emulating policies the protection field means
		// what it says: a write to a read-only page is a real
		// violation, which the synthetic workloads never produce.
		panic(fmt.Sprintf("core: write to read-only page %#x", uint64(p)))
	}

	switch e.Dirty {
	case DirtyMIN:
		// Idealized: perfect first-write detection with zero checking
		// cost. Only the intrinsic software update is charged.
		if !l.PageDirty() {
			if !e.X.Table().Lookup(p).Dirty() {
				e.necessaryFault(p)
			}
		}

	case DirtyFAULT, DirtyFLUSH:
		// The protection cached with the block is what the hardware
		// checks; the PTE's protection may have moved on.
		if !l.Prot().AllowsWrite() {
			page := e.Pager.Lookup(p)
			if page == nil || !page.Writable() {
				panic(fmt.Sprintf("core: protection fault on non-writable page %#x", uint64(p)))
			}
			if e.X.Table().Lookup(p).Dirty() {
				// The page is already writable; only this block's
				// cached protection is stale. The paper's excess
				// fault: full fault cost for no new information.
				e.Ctr.Inc(counters.EvExcessFault)
				e.Cycles += e.TP.FaultCycles
			} else {
				e.necessaryFault(p)
			}
		}

	case DirtySPUR:
		if !l.PageDirty() {
			if e.X.Table().Lookup(p).Dirty() {
				// The cached copy is merely out of date: refresh it
				// with a dirty bit miss (implemented by forcing a
				// cache miss; 25 cycles, not 1000).
				e.Ctr.Inc(counters.EvDirtyBitMiss)
				e.Cycles += e.TP.DirtyMissCycles
			} else {
				e.necessaryFault(p)
				// Returning from the fault refreshes the cached copy
				// through the same dirty-bit-miss mechanism. Its t_dm
				// is charged here, but it is not an N_dm event: the
				// paper's O(SPUR) = N_ds(t_ds + t_dm) + N_dm t_dm
				// books the fault-return refresh inside the N_ds term
				// and reserves N_dm for stale-block refreshes (= N_ef).
				e.Cycles += e.TP.DirtyMissCycles
			}
		}

	case DirtyWRITE:
		// Check the PTE on the first write to this cache block.
		if wasClean {
			entry, c := e.X.CheckPTE(p)
			e.Cycles += c
			if !entry.Dirty() {
				e.necessaryFault(p)
			}
		}

	case DirtyPROT:
		// The generalized SPUR scheme: the dirty-bit-miss idea applied
		// to the protection field itself, needing no extra line bit.
		if !l.Prot().AllowsWrite() {
			page := e.Pager.Lookup(p)
			if page == nil || !page.Writable() {
				panic(fmt.Sprintf("core: protection fault on non-writable page %#x", uint64(p)))
			}
			if e.X.Table().Lookup(p).Prot().AllowsWrite() {
				// Only the cached copy is stale: refresh it with a
				// protection bit miss instead of a 1000-cycle fault.
				e.Ctr.Inc(counters.EvProtBitMiss)
				e.Cycles += e.TP.DirtyMissCycles
			} else {
				e.necessaryFault(p)
				// The fault return refreshes the cached protection by
				// the same forced-miss mechanism.
				e.Cycles += e.TP.DirtyMissCycles
			}
		}
	}

	if wasClean && byRead {
		// A block brought in by a read (or ifetch) is being modified:
		// this is an N_w-hit block.
		e.Ctr.Inc(counters.EvWriteHitBlock)
	}

	entry := e.X.Table().Lookup(p)
	l, hit := e.Cache.Probe(b)
	if !hit {
		// Displaced by handler activity: the re-executed store misses
		// and refetches the block with fresh PTE snapshots.
		e.Ctr.Inc(counters.EvBusRead)
		e.Cycles += e.TP.BlockFetchCycles()
		e.Cache.IssueBus(coherence.BusReadOwn, b)
		v, evicted := e.Cache.Fill(b, coherence.OwnedExclusive, entry.Prot(), entry.Dirty(), false, true)
		e.chargeVictim(v, evicted)
		return
	}
	// The handler (or dirty-bit miss) leaves the cached snapshots fresh.
	l.SetProt(entry.Prot())
	l.SetPageDirty(entry.Dirty())
	l.SetBlockDirty(true)

	ns, busOp, need := coherence.OnLocalWrite(l.State())
	if need {
		_, inval := e.Cache.IssueBus(busOp, b)
		if inval {
			e.Ctr.Inc(counters.EvInval)
		}
	}
	l.SetState(ns)
}

// writeMiss applies the dirty-bit policy on the write-miss path, where the
// PTE is in hand anyway (translation just completed), so every policy can
// check it for free.
func (e *Engine) writeMiss(p addr.GVPN, entry pte.Entry) pte.Entry {
	if entry.Dirty() {
		// Already dirty means a write already faulted (or the policy
		// marked it at map time), which established writability; the
		// explicit pager check below would be a hash lookup per write
		// miss spent re-proving it.
		return entry
	}
	page := e.Pager.Lookup(p)
	if page == nil || !page.Writable() {
		panic(fmt.Sprintf("core: write to non-writable page %#x", uint64(p)))
	}
	e.necessaryFault(p)
	return e.X.Table().Lookup(p)
}

// necessaryFault is the software dirty-bit fault common to all policies:
// ~1000 cycles of handler (t_ds) that sets the PTE dirty bit — and, when
// dirty bits are emulated with protection, raises the page to read-write.
// Under FLUSH it then flushes the page so no stale read-only blocks remain
// (callers re-probe afterwards; the faulting store re-executes).
func (e *Engine) necessaryFault(p addr.GVPN) {
	e.Ctr.Inc(counters.EvDirtyFault)
	e.Cycles += e.TP.FaultCycles
	page := e.Pager.Lookup(p)
	if page == nil {
		panic(fmt.Sprintf("core: dirty fault on non-resident page %#x", uint64(p)))
	}
	page.SoftDirty = true
	e.FaultsByKind[page.Kind]++

	_, c := e.X.UpdatePTE(p, func(en pte.Entry) pte.Entry {
		en = en.WithDirty(true)
		if e.Dirty.UsesProtectionEmulation() {
			en = en.WithProt(pte.ProtReadWrite)
		}
		return en
	})
	e.Cycles += c

	if e.Dirty == DirtyFLUSH {
		e.flushPage(p)
	}
}

// chargeVictim accounts for a block displaced by any fill.
func (e *Engine) chargeVictim(v cache.Victim, evicted bool) {
	if !evicted || !v.WriteBack {
		return
	}
	e.Ctr.Inc(counters.EvBusWrite)
	e.Cycles += e.TP.WriteBackCycles()
}

// flushPage removes a page from the cache, charging the per-block flush
// work and write-backs, and raising the flush events.
func (e *Engine) flushPage(p addr.GVPN) cache.FlushResult {
	res := e.Cache.FlushPage(p, e.TagCheckFlush)
	e.Ctr.Inc(counters.EvPageFlush)
	e.Ctr.Add(counters.EvBlockFlush, uint64(res.Flushed))
	e.Ctr.Add(counters.EvBusWrite, uint64(res.WrittenBack))
	e.Cycles += uint64(res.Checked)*e.TP.FlushCheckCycles +
		uint64(res.Flushed)*e.TP.FlushBlockCycles +
		uint64(res.WrittenBack)*e.TP.WriteBackCycles()
	return res
}

// --- vm.OS implementation -------------------------------------------------

// MapPage installs the PTE for a page the pager just made resident. The
// dirty policy chooses the protection: under FAULT/FLUSH a writable page
// starts read-only so the first write faults; under the others it starts
// read-write with a clear dirty bit. The handler sets the reference bit —
// the faulting access references the page.
func (e *Engine) MapPage(pg *vm.Page) {
	prot := pte.ProtReadOnly
	if pg.Writable() && !e.Dirty.UsesProtectionEmulation() {
		prot = pte.ProtReadWrite
	}
	_, c := e.X.UpdatePTE(pg.VPN, func(pte.Entry) pte.Entry {
		return pte.Make(pg.Frame, prot).WithReferenced(true)
	})
	e.Cycles += c
}

// UnmapPage invalidates the PTE and flushes the page from the virtual
// cache, as the kernel must before reusing the frame.
func (e *Engine) UnmapPage(pg *vm.Page) {
	e.flushPage(pg.VPN)
	_, c := e.X.UpdatePTE(pg.VPN, func(pte.Entry) pte.Entry { return 0 })
	e.Cycles += c
}

// PageReferenced reads the page reference bit as the daemon sees it.
func (e *Engine) PageReferenced(pg *vm.Page) bool {
	if e.Ref == RefNONE {
		// NOREF: the machine-dependent read routine always returns
		// false, so the replacement scan treats every page alike.
		return false
	}
	return e.X.Table().Lookup(pg.VPN).Referenced()
}

// ClearReference clears the page reference bit. Under REF the daemon also
// flushes the page from the cache, guaranteeing the next reference misses
// and re-sets the bit — true reference bits, at the flush's price.
func (e *Engine) ClearReference(pg *vm.Page) {
	if e.Ref == RefNONE {
		// The clear routine has no effect; the hardware bit stays set.
		return
	}
	_, c := e.X.UpdatePTE(pg.VPN, func(en pte.Entry) pte.Entry { return en.WithReferenced(false) })
	e.Cycles += c
	if e.Ref == RefTRUE {
		e.flushPage(pg.VPN)
	}
}

// PageModified reports whether the page was written this residency, from
// the OS software dirty bit maintained by the fault handlers. (The PTE has
// already been invalidated when the daemon asks.)
func (e *Engine) PageModified(pg *vm.Page) bool { return pg.SoftDirty }

// KernelFlushPage exposes the kernel's page flush for multi-cache
// configurations, where unmapping or a REF-policy clear must flush every
// processor's cache, not just the faulting one's.
func (e *Engine) KernelFlushPage(p addr.GVPN) cache.FlushResult { return e.flushPage(p) }

// TotalCycles returns engine plus pager cycles.
func (e *Engine) TotalCycles() uint64 { return e.Cycles + e.Pager.Cycles }

// ElapsedSeconds converts total cycles to seconds of prototype time.
func (e *Engine) ElapsedSeconds() float64 { return e.TP.Seconds(e.TotalCycles()) }
