package core

// This file records the numbers published in the paper, so the harness can
// print paper-vs-measured comparisons and the tests can verify that the
// Section 3.2 models reproduce Table 3.4 exactly from Table 3.3's inputs.

// WorkloadName identifies one of the two synthetic workloads.
type WorkloadName string

// The paper's workloads.
const (
	// SLC is the SPUR Common Lisp system and compiler compiling a set of
	// benchmark programs.
	SLC WorkloadName = "SLC"
	// Workload1 is the CAD-tool developer script: compiles, link and
	// debug of espresso, a background PLA optimization, edits, and two
	// performance monitors.
	Workload1 WorkloadName = "WORKLOAD1"
)

// PaperRow33 is one row of Table 3.3 (event frequencies measured on the
// prototype). NwHit and NwMiss are in millions of blocks.
type PaperRow33 struct {
	Workload WorkloadName
	MemMB    int
	Nds      uint64
	Nzfod    uint64
	Nef      uint64 // N_ef = N_dm
	NwHitM   float64
	NwMissM  float64
	Elapsed  uint64 // seconds
}

// PaperTable33 is the published Table 3.3.
var PaperTable33 = []PaperRow33{
	{SLC, 5, 2349, 905, 237, 1.27, 7.38, 948},
	{SLC, 6, 1838, 905, 143, 0.839, 5.11, 502},
	{SLC, 8, 1661, 905, 120, 0.612, 3.68, 341},
	{Workload1, 5, 9860, 5286, 1534, 6.15, 34.0, 3016},
	{Workload1, 6, 7843, 5181, 456, 4.92, 20.4, 2535},
	{Workload1, 8, 7471, 5182, 364, 4.10, 17.3, 2555},
}

// Events converts the published row into the model-input vocabulary
// (block counts back in raw units).
func (r PaperRow33) Events() Events {
	return Events{
		Nds:    r.Nds,
		Nzfod:  r.Nzfod,
		Nef:    r.Nef,
		Ndm:    r.Nef,
		NwHit:  uint64(r.NwHitM * 1e6),
		NwMiss: uint64(r.NwMissM * 1e6),
	}
}

// PaperRow34 is one row of Table 3.4 (overhead of the dirty-bit
// alternatives, in millions of cycles, zero-fills excluded).
type PaperRow34 struct {
	Workload WorkloadName
	MemMB    int
	MCycles  map[DirtyPolicy]float64
}

// PaperTable34 is the published Table 3.4.
var PaperTable34 = []PaperRow34{
	{SLC, 5, map[DirtyPolicy]float64{DirtyMIN: 1.44, DirtyFAULT: 1.68, DirtyFLUSH: 2.17, DirtySPUR: 1.49, DirtyWRITE: 7.81}},
	{SLC, 6, map[DirtyPolicy]float64{DirtyMIN: 0.933, DirtyFAULT: 1.08, DirtyFLUSH: 1.40, DirtySPUR: 0.960, DirtyWRITE: 5.13}},
	{SLC, 8, map[DirtyPolicy]float64{DirtyMIN: 0.756, DirtyFAULT: 0.876, DirtyFLUSH: 1.13, DirtySPUR: 0.778, DirtyWRITE: 3.82}},
	{Workload1, 5, map[DirtyPolicy]float64{DirtyMIN: 4.57, DirtyFAULT: 6.11, DirtyFLUSH: 6.86, DirtySPUR: 4.73, DirtyWRITE: 35.3}},
	{Workload1, 6, map[DirtyPolicy]float64{DirtyMIN: 2.66, DirtyFAULT: 3.12, DirtyFLUSH: 3.99, DirtySPUR: 2.74, DirtyWRITE: 27.3}},
	{Workload1, 8, map[DirtyPolicy]float64{DirtyMIN: 2.29, DirtyFAULT: 2.65, DirtyFLUSH: 3.43, DirtySPUR: 2.36, DirtyWRITE: 22.8}},
}

// PaperRow35 is one row of Table 3.5 (page-out results from the Sprite
// development systems).
type PaperRow35 struct {
	Host        string
	MemMB       int
	UptimeHours int
	PageIns     uint64
	PotMod      uint64 // potentially modified pages (writable page-outs)
	NotMod      uint64 // of those, still clean at replacement
}

// PctNotMod returns the "Percent Not Modified" column.
func (r PaperRow35) PctNotMod() float64 { return 100 * float64(r.NotMod) / float64(r.PotMod) }

// PctExtraIO returns the "Percent Additional Paging I/O" column: the extra
// page-outs as a fraction of all paging transfers if dirty bits vanished.
func (r PaperRow35) PctExtraIO() float64 {
	return 100 * float64(r.NotMod) / float64(r.PageIns+r.PotMod)
}

// PaperTable35 is the published Table 3.5.
var PaperTable35 = []PaperRow35{
	{"mace", 8, 70, 15203, 2681, 488},
	{"sloth", 8, 37, 10566, 2146, 129},
	{"mace", 8, 46, 48722, 5198, 814},
	{"sage", 12, 45, 5246, 544, 14},
	{"fenugreek", 12, 36, 8556, 1154, 58},
	{"murder", 16, 119, 23302, 12944, 895},
}

// PaperRow41 is one row of Table 4.1 (reference-bit policy results).
type PaperRow41 struct {
	Workload WorkloadName
	MemMB    int
	Policy   RefPolicy
	PageIns  uint64
	// PageInsPct and ElapsedPct are relative to the MISS policy at the
	// same workload and memory size (100 = parity), as printed.
	PageInsPct int
	Elapsed    uint64 // seconds
	ElapsedPct int
}

// PaperTable41 is the published Table 4.1.
var PaperTable41 = []PaperRow41{
	{SLC, 5, RefMISS, 4647, 100, 948, 100},
	{SLC, 5, RefTRUE, 4738, 102, 1020, 108},
	{SLC, 5, RefNONE, 8230, 177, 1341, 141},
	{SLC, 6, RefMISS, 1833, 100, 502, 100},
	{SLC, 6, RefTRUE, 1866, 102, 534, 106},
	{SLC, 6, RefNONE, 3465, 189, 703, 140},
	{SLC, 8, RefMISS, 1056, 100, 341, 100},
	{SLC, 8, RefTRUE, 1062, 101, 342, 101},
	{SLC, 8, RefNONE, 1512, 143, 382, 112},
	{Workload1, 5, RefMISS, 11959, 100, 3016, 100},
	{Workload1, 5, RefTRUE, 11119, 93, 3153, 105},
	{Workload1, 5, RefNONE, 16045, 134, 3214, 107},
	{Workload1, 6, RefMISS, 3556, 100, 2535, 100},
	{Workload1, 6, RefTRUE, 3617, 102, 2677, 106},
	{Workload1, 6, RefNONE, 5073, 143, 2555, 101},
	{Workload1, 8, RefMISS, 1837, 100, 2555, 100},
	{Workload1, 8, RefTRUE, 1790, 97, 2701, 106},
	{Workload1, 8, RefNONE, 1926, 105, 2505, 98},
}

// MemorySizesMB are the main-memory sizes of the paper's sweeps.
var MemorySizesMB = []int{5, 6, 8}
