// Package core implements the subject of the paper: the alternative
// reference- and dirty-bit mechanisms for a virtual-address cache, the
// reference-processing engine that runs them against the SPUR memory system,
// and the analytic overhead models of Section 3.2.
package core

import "fmt"

// DirtyPolicy selects a dirty-bit implementation alternative (Table 3.1).
type DirtyPolicy uint8

const (
	// DirtyMIN is the minimal policy: only the intrinsic overhead of
	// updating the dirty bit in software, with no checking cost and no
	// excess faults. It is unbuildable — a lower bound for comparison.
	DirtyMIN DirtyPolicy = iota
	// DirtyFAULT emulates dirty bits with protection: writable pages are
	// mapped read-only until the first write faults; writes to blocks
	// cached while the page was still clean cause excess faults.
	DirtyFAULT
	// DirtyFLUSH is FAULT plus flushing the page from the cache when the
	// fault occurs, preventing excess faults at the price of the flush.
	DirtyFLUSH
	// DirtySPUR is what the prototype built: a copy of the page dirty bit
	// is cached with each block; when the cached copy says clean the
	// hardware checks the PTE, and if the cached copy is merely out of
	// date it is refreshed with a 25-cycle "dirty bit miss" instead of a
	// 1000-cycle fault.
	DirtySPUR
	// DirtyWRITE checks the PTE dirty bit on the first write to each
	// cache block, as the Sun-3 does (with a fault to software for the
	// update, to keep the comparison unbiased).
	DirtyWRITE
	// DirtyPROT is the generalized SPUR scheme the paper sketches: apply
	// the dirty-bit-miss idea directly to the protection field. On a
	// cached-protection violation the hardware first checks the PTE; a
	// merely out-of-date copy is refreshed with a "protection bit miss"
	// instead of a fault. Performance is identical to DirtySPUR, and the
	// extra per-line dirty bit disappears.
	DirtyPROT
)

// DirtyPolicies lists the alternatives in Table 3.1 order (the paper's
// five; DirtyPROT is the footnoted variant, in AllDirtyPolicies).
var DirtyPolicies = []DirtyPolicy{DirtyMIN, DirtyFAULT, DirtyFLUSH, DirtySPUR, DirtyWRITE}

// AllDirtyPolicies includes the generalized protection-bit-miss variant.
var AllDirtyPolicies = []DirtyPolicy{DirtyMIN, DirtyFAULT, DirtyFLUSH, DirtySPUR, DirtyWRITE, DirtyPROT}

// String names the policy as the paper does.
func (p DirtyPolicy) String() string {
	switch p {
	case DirtyMIN:
		return "MIN"
	case DirtyFAULT:
		return "FAULT"
	case DirtyFLUSH:
		return "FLUSH"
	case DirtySPUR:
		return "SPUR"
	case DirtyWRITE:
		return "WRITE"
	case DirtyPROT:
		return "PROT"
	}
	return fmt.Sprintf("DirtyPolicy(%d)", uint8(p))
}

// Describe returns the Table 3.1 description of the policy.
func (p DirtyPolicy) Describe() string {
	switch p {
	case DirtyMIN:
		return "Minimal policy. Includes only overhead intrinsic to all policies."
	case DirtyFAULT:
		return "Emulate dirty bits with protection. Writes to previously cached blocks cause excess faults."
	case DirtyFLUSH:
		return "Emulate dirty bits with protection. When a fault occurs, flush all blocks in that page from the cache, preventing excess faults."
	case DirtySPUR:
		return "Store a copy of the dirty bit with each cache block. Check the PTE before faulting; if the cached copy is merely out of date, update it with a dirty bit miss."
	case DirtyWRITE:
		return "Check the PTE on the first write to each cache block."
	case DirtyPROT:
		return "Emulate dirty bits with protection, but check the PTE before faulting; a stale cached protection is refreshed with a protection bit miss."
	}
	return "unknown"
}

// UsesProtectionEmulation reports whether the policy maps writable pages
// read-only until their first write (so the protection field doubles as the
// dirty-bit check).
func (p DirtyPolicy) UsesProtectionEmulation() bool {
	return p == DirtyFAULT || p == DirtyFLUSH || p == DirtyPROT
}

// ParseDirtyPolicy maps a policy name ("SPUR", "fault", ...) to its
// DirtyPolicy, for command-line and wire use. Matching is case-insensitive.
func ParseDirtyPolicy(s string) (DirtyPolicy, error) {
	for _, p := range AllDirtyPolicies {
		if equalFold(s, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown dirty policy %q (want MIN, FAULT, FLUSH, SPUR, WRITE or PROT)", s)
}

// RefPolicy selects a reference-bit policy (Section 4).
type RefPolicy uint8

const (
	// RefMISS is the miss-bit approximation: the reference bit is
	// checked (and set, via a fault) only on cache misses.
	RefMISS RefPolicy = iota
	// RefTRUE is true reference bits: the page daemon flushes a page
	// from the cache when it clears the page's reference bit, so the
	// next reference is guaranteed to miss and set the bit.
	RefTRUE
	// RefNONE eliminates reference bits: the routine reading the
	// hardware bit always returns false (the clock degenerates to FIFO)
	// and the bit is left set in hardware so reference faults never
	// occur.
	RefNONE
)

// RefPolicies lists the three policies in Table 4.1 order.
var RefPolicies = []RefPolicy{RefMISS, RefTRUE, RefNONE}

// String names the policy as the paper does.
func (p RefPolicy) String() string {
	switch p {
	case RefMISS:
		return "MISS"
	case RefTRUE:
		return "REF"
	case RefNONE:
		return "NOREF"
	}
	return fmt.Sprintf("RefPolicy(%d)", uint8(p))
}

// ParseRefPolicy maps a policy name ("MISS", "ref", "noref") to its
// RefPolicy, for command-line and wire use. Matching is case-insensitive.
func ParseRefPolicy(s string) (RefPolicy, error) {
	for _, p := range RefPolicies {
		if equalFold(s, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown reference policy %q (want MISS, REF or NOREF)", s)
}

// equalFold is strings.EqualFold for the ASCII names above, kept local so
// the policy file stays dependency-free.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
