package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/counters"
	"repro/internal/pte"
	"repro/internal/trace"
)

// Touch is the functional-warming counterpart of Access: it advances the
// machine's state for one reference — cache contents and line metadata,
// residency, page faults, reference and dirty bits, and the pager/daemon
// activity they trigger — without charging reference-processing time or
// raising the cache-performance events. The sampling engine drives the
// stream through Touch between representative intervals, so the state a
// representative interval starts from is the state the full run would have
// reached, and the VM events the full run takes in those spans are taken
// (and counted) at the same references.
//
// Touch mirrors Access's state transitions: misses fill the block (and the
// PTE block in-cache translation would fetch), displacing the same victims;
// write hits update the same line flags and take the same dirty-bit faults;
// page faults, reference faults and their handler PTE stores go through the
// same xlate and pager paths. What it omits is exactly the measurement: hit
// and miss counters, policy-check events (dirty-bit misses, excess faults,
// PTE checks), and the cycle costs of cache traffic. VM events — page
// faults and their kind breakdown, page-ins/outs, reference-bit traffic and
// page flushes — remain counted, so a machine warmed across a gap carries
// the full run's cumulative VM totals. The daemon's behavior is reference-
// driven (allocation pressure, reference bits), not time-driven, so leaving
// gap cycles uncharged does not perturb it.
func (e *Engine) Touch(r trace.Rec) {
	b := r.Addr.Block()
	if l, hit := e.Cache.Probe(b); hit {
		if r.Op == trace.OpWrite {
			e.touchWriteHit(l, r.Addr.Page(), b)
		}
		return
	}
	e.touchMiss(r.Op, b, r.Addr.Page())
}

// TouchBatch applies Touch to a buffer of references.
func (e *Engine) TouchBatch(recs []trace.Rec) {
	for i := range recs {
		e.Touch(recs[i])
	}
}

// touchMiss mirrors miss: warm the PTE block in, fault the page resident if
// needed, apply the reference-bit and dirty-bit policies, fill the block.
func (e *Engine) touchMiss(op trace.Op, b addr.BlockAddr, p addr.GVPN) {
	pteBlock := e.X.Table().PTEAddr(p).Block()
	if _, hit := e.Cache.Probe(pteBlock); !hit {
		e.Cache.IssueBus(coherence.BusRead, pteBlock)
		e.Cache.Fill(pteBlock, coherence.UnOwned, pte.ProtKernel, false, true, false)
	}
	entry := e.X.Table().Lookup(p)

	if !entry.Valid() {
		e.Cycles += e.TP.FaultCycles
		e.Pager.EnsureResident(p)
		entry = e.X.Table().Lookup(p)
		if !entry.Valid() {
			panic(fmt.Sprintf("core: page %#x invalid after warming fault", uint64(p)))
		}
	}

	if e.Ref != RefNONE && !entry.Referenced() {
		e.Ctr.Inc(counters.EvRefFault)
		e.Cycles += e.TP.FaultCycles
		var c uint64
		entry, c = e.X.UpdatePTE(p, func(en pte.Entry) pte.Entry { return en.WithReferenced(true) })
		e.Cycles += c
	}

	if op == trace.OpWrite && !entry.Dirty() {
		e.necessaryFault(p)
		entry = e.X.Table().Lookup(p)
	}

	state := coherence.UnOwned
	if op == trace.OpWrite {
		state = coherence.OwnedExclusive
		e.Cache.IssueBus(coherence.BusReadOwn, b)
	} else {
		e.Cache.IssueBus(coherence.BusRead, b)
	}
	e.Cache.Fill(b, state, entry.Prot(), entry.Dirty(), false, op == trace.OpWrite)
}

// touchWriteHit mirrors writeHit: take the necessary dirty fault the policy
// would take (policy-check events and stale-copy refresh costs are not
// measurement the warming pass keeps), then leave the line exactly as the
// re-executed store would — fresh PTE snapshots, block dirty, owned.
func (e *Engine) touchWriteHit(l cache.LineRef, p addr.GVPN, b addr.BlockAddr) {
	switch e.Dirty {
	case DirtyMIN, DirtySPUR:
		if !l.PageDirty() && !e.X.Table().Lookup(p).Dirty() {
			e.necessaryFault(p)
		}
	case DirtyFAULT, DirtyFLUSH:
		if !l.Prot().AllowsWrite() && !e.X.Table().Lookup(p).Dirty() {
			e.necessaryFault(p)
		}
	case DirtyWRITE:
		if !l.BlockDirty() && !e.X.Table().Lookup(p).Dirty() {
			e.necessaryFault(p)
		}
	case DirtyPROT:
		if !l.Prot().AllowsWrite() && !e.X.Table().Lookup(p).Prot().AllowsWrite() {
			e.necessaryFault(p)
		}
	}

	entry := e.X.Table().Lookup(p)
	l, hit := e.Cache.Probe(b)
	if !hit {
		// Displaced by handler activity (a FLUSH fault, or the PTE store
		// landing in this frame): refetch as the re-executed store would.
		e.Cache.IssueBus(coherence.BusReadOwn, b)
		e.Cache.Fill(b, coherence.OwnedExclusive, entry.Prot(), entry.Dirty(), false, true)
		return
	}
	l.SetProt(entry.Prot())
	l.SetPageDirty(entry.Dirty())
	l.SetBlockDirty(true)
	ns, busOp, need := coherence.OnLocalWrite(l.State())
	if need {
		e.Cache.IssueBus(busOp, b)
	}
	l.SetState(ns)
}
