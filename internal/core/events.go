package core

import (
	"repro/internal/counters"
	"repro/internal/vm"
)

// Events is the paper's event-frequency vocabulary (Table 3.3 and the
// Section 3.2 model parameters), extracted from the performance counters
// and pager statistics of one run.
type Events struct {
	// Nds is the number of necessary dirty-bit faults.
	Nds uint64
	// Nzfod is the number of zero-filled page faults.
	Nzfod uint64
	// Nef is the number of previously cached blocks that cause excess
	// faults (measured directly when running the FAULT policy).
	Nef uint64
	// Ndm is the number of dirty-bit misses (measured when running the
	// SPUR policy). The paper's Table 3.3 reports N_ef = N_dm: the two
	// mechanisms fire on exactly the same blocks.
	Ndm uint64
	// NwHit is the number of blocks brought into the cache by a read
	// that are later modified.
	NwHit uint64
	// NwMiss is the number of blocks brought into the cache by a write
	// miss.
	NwMiss uint64

	// PageIns and PageOuts are backing-store transfers.
	PageIns  uint64
	PageOuts uint64
	// RefFaults counts reference-bit faults; RefClears counts daemon
	// clears; PageFlushes counts kernel page flushes.
	RefFaults   uint64
	RefClears   uint64
	PageFlushes uint64

	// Refs is the total number of processor references; Misses the total
	// cache misses (all types).
	Refs   uint64
	Misses uint64

	// ElapsedSeconds is the modelled wall-clock time of the run.
	ElapsedSeconds float64
}

// EventsFrom extracts the event vocabulary from a run's counters, pager
// statistics, and elapsed time.
func EventsFrom(ctr *counters.Set, st vm.Stats, elapsed float64) Events {
	return EventsFromShadow(ctr.Snapshot(), st, elapsed)
}

// EventsFromShadow extracts the event vocabulary from a raw software-shadow
// vector instead of a live counter set. The sampling engine uses it on
// per-interval shadow *differences*, so the mapping from counter events to
// the paper's vocabulary lives in exactly one place for full runs and
// sampled intervals alike.
func EventsFromShadow(sh [counters.NumEvents]uint64, st vm.Stats, elapsed float64) Events {
	return Events{
		Nds:   sh[counters.EvDirtyFault],
		Nzfod: sh[counters.EvZeroFillFault],
		Nef:   sh[counters.EvExcessFault],
		// The SPUR and PROT mechanisms fire on the same stale blocks;
		// whichever ran, its refresh count is N_dm.
		Ndm:            sh[counters.EvDirtyBitMiss] + sh[counters.EvProtBitMiss],
		NwHit:          sh[counters.EvWriteHitBlock],
		NwMiss:         sh[counters.EvWriteMissBlock],
		PageIns:        st.PageIns,
		PageOuts:       st.PageOuts,
		RefFaults:      sh[counters.EvRefFault],
		RefClears:      sh[counters.EvRefClear],
		PageFlushes:    sh[counters.EvPageFlush],
		Refs:           sh[counters.EvIFetch] + sh[counters.EvRead] + sh[counters.EvWrite],
		Misses:         sh[counters.EvIFetchMiss] + sh[counters.EvReadMiss] + sh[counters.EvWriteMiss],
		ElapsedSeconds: elapsed,
	}
}

// Nstale returns the measured count of stale-block writes, whichever
// mechanism observed them (N_ef under FAULT, N_dm under SPUR).
func (ev Events) Nstale() uint64 {
	if ev.Ndm > ev.Nef {
		return ev.Ndm
	}
	return ev.Nef
}

// NecessaryExcludingZFOD returns N_ds - N_zfod, the intrinsic necessary
// faults the Table 3.4 models use (zero-fill pages are excluded because
// their faults are an artifact of Sprite's zero-fill convention, not of the
// dirty-bit mechanism).
func (ev Events) NecessaryExcludingZFOD() uint64 {
	if ev.Nzfod > ev.Nds {
		return 0
	}
	return ev.Nds - ev.Nzfod
}

// ExcessFraction returns N_ef / N_ds, the headline ratio ("these account
// for only 19% of the total faults, on average").
func (ev Events) ExcessFraction() float64 {
	if ev.Nds == 0 {
		return 0
	}
	return float64(ev.Nstale()) / float64(ev.Nds)
}

// ExcessFractionExcludingZFOD returns N_ef / (N_ds - N_zfod), the paper's
// 15%-34% range.
func (ev Events) ExcessFractionExcludingZFOD() float64 {
	n := ev.NecessaryExcludingZFOD()
	if n == 0 {
		return 0
	}
	return float64(ev.Nstale()) / float64(n)
}

// ReadBeforeWriteFraction returns N_w-hit / (N_w-hit + N_w-miss): the
// fraction of modified blocks read before they are written (~one fifth in
// the paper).
func (ev Events) ReadBeforeWriteFraction() float64 {
	tot := ev.NwHit + ev.NwMiss
	if tot == 0 {
		return 0
	}
	return float64(ev.NwHit) / float64(tot)
}

// PredictedExcessFraction evaluates the paper's simple probability model
// (footnote 3): with a uniform mix of read and write misses, infinite
// pages, and necessary faults only on write misses, the number of excess
// faults per necessary fault is geometric with parameter
// p_w = N_w-miss / (N_w-hit + N_w-miss), giving mean (1-p_w)/p_w.
func (ev Events) PredictedExcessFraction() float64 {
	tot := ev.NwHit + ev.NwMiss
	if tot == 0 || ev.NwMiss == 0 {
		return 0
	}
	pw := float64(ev.NwMiss) / float64(tot)
	return (1 - pw) / pw
}
