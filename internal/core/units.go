package core

import "fmt"

// MiB converts a mebibyte count to bytes with the arithmetic done in 64
// bits and range-checked, so `mb << 20` can't silently overflow int on a
// 32-bit platform (2048 << 20 == 0 there). Every experiment's memory-size
// math goes through here.
func MiB(mb int) int {
	b := int64(mb) << 20
	if mb < 0 || int64(int(b)) != b {
		panic(fmt.Sprintf("core: %d MiB does not fit in int", mb))
	}
	return int(b)
}
