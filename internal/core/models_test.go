package core

import (
	"math"
	"testing"

	"repro/internal/timing"
)

// TestModelsReproducePaperTable34 is the strongest validation available for
// the Section 3.2 cost models: evaluated over the published Table 3.3 event
// frequencies, they must reproduce the published Table 3.4 to rounding.
func TestModelsReproducePaperTable34(t *testing.T) {
	tp := timing.Default()
	for _, row33 := range PaperTable33 {
		var row34 *PaperRow34
		for i := range PaperTable34 {
			if PaperTable34[i].Workload == row33.Workload && PaperTable34[i].MemMB == row33.MemMB {
				row34 = &PaperTable34[i]
				break
			}
		}
		if row34 == nil {
			t.Fatalf("no Table 3.4 row for %s/%dMB", row33.Workload, row33.MemMB)
		}
		ev := row33.Events()
		for _, pol := range DirtyPolicies {
			got := float64(Overhead(pol, ev, tp)) / 1e6
			want := row34.MCycles[pol]
			// Published values carry 3 significant digits.
			if relErr := math.Abs(got-want) / want; relErr > 0.01 {
				t.Errorf("%s/%dMB O(%s) = %.3fM cycles, paper says %.3fM (err %.1f%%)",
					row33.Workload, row33.MemMB, pol, got, want, 100*relErr)
			}
		}
	}
}

func TestOverheadTableRelative(t *testing.T) {
	ev := PaperTable33[0].Events() // SLC @ 5MB
	row := OverheadTable(ev, timing.Default())
	if row.Relative[DirtyMIN] != 1.0 {
		t.Errorf("MIN relative = %v", row.Relative[DirtyMIN])
	}
	// Paper: FAULT 1.16, FLUSH 1.50, SPUR 1.03, WRITE 5.41.
	for pol, want := range map[DirtyPolicy]float64{
		DirtyFAULT: 1.16, DirtyFLUSH: 1.50, DirtySPUR: 1.03, DirtyWRITE: 5.41,
	} {
		if got := row.Relative[pol]; math.Abs(got-want) > 0.02 {
			t.Errorf("relative O(%s) = %.3f, want %.2f", pol, got, want)
		}
	}
}

func TestPolicyOrderingInvariant(t *testing.T) {
	// For every published row: MIN <= SPUR <= FAULT and WRITE worst.
	tp := timing.Default()
	for _, r := range PaperTable33 {
		ev := r.Events()
		min, spur := Overhead(DirtyMIN, ev, tp), Overhead(DirtySPUR, ev, tp)
		fault, flush := Overhead(DirtyFAULT, ev, tp), Overhead(DirtyFLUSH, ev, tp)
		write := Overhead(DirtyWRITE, ev, tp)
		if !(min <= spur && spur <= fault) {
			t.Errorf("%s/%d: ordering MIN=%d SPUR=%d FAULT=%d", r.Workload, r.MemMB, min, spur, fault)
		}
		if write <= fault || write <= flush {
			t.Errorf("%s/%d: WRITE=%d should be worst (FAULT=%d FLUSH=%d)", r.Workload, r.MemMB, write, fault, flush)
		}
	}
}

func TestFaultBeatsFlushBreakEven(t *testing.T) {
	tp := timing.Default()
	// With the paper's parameters (t_flush = t_ds/2), FAULT beats FLUSH
	// exactly when N_ef <= N_ds/2.
	mk := func(nds, nef uint64) Events { return Events{Nds: nds, Nef: nef, Ndm: nef} }
	if !FaultBeatsFlush(mk(1000, 400), tp) {
		t.Error("FAULT should win at N_ef = 0.4 N_ds")
	}
	if !FaultBeatsFlush(mk(1000, 500), tp) {
		t.Error("FAULT should tie/win at N_ef = 0.5 N_ds")
	}
	if FaultBeatsFlush(mk(1000, 501), tp) {
		t.Error("FLUSH should win past the break-even")
	}
	// Every published row is comfortably on FAULT's side.
	for _, r := range PaperTable33 {
		if !FaultBeatsFlush(r.Events(), tp) {
			t.Errorf("%s/%d: paper row on FLUSH's side", r.Workload, r.MemMB)
		}
	}
}

func TestEventDerivedRatios(t *testing.T) {
	// SLC @ 5MB: excess fraction 237/2349 = 10.1%; excluding zero-fills
	// 237/1444 = 16.4%; read-before-write 1.27/(1.27+7.38) = 14.7%.
	ev := PaperTable33[0].Events()
	if f := ev.ExcessFraction(); math.Abs(f-0.1009) > 0.001 {
		t.Errorf("ExcessFraction = %v", f)
	}
	if f := ev.ExcessFractionExcludingZFOD(); math.Abs(f-0.1641) > 0.001 {
		t.Errorf("ExcessFractionExcludingZFOD = %v", f)
	}
	if f := ev.ReadBeforeWriteFraction(); math.Abs(f-0.1468) > 0.001 {
		t.Errorf("ReadBeforeWriteFraction = %v", f)
	}
	// The footnote-3 model: (1-p_w)/p_w = NwHit/NwMiss = 0.172.
	if f := ev.PredictedExcessFraction(); math.Abs(f-1.27/7.38) > 0.001 {
		t.Errorf("PredictedExcessFraction = %v", f)
	}
}

func TestPaperRangesHold(t *testing.T) {
	// The abstract's claims over the published data: excess faults are
	// 19% of total faults on average (we measure over necessary faults
	// excluding zero-fills: 15%-34%), and roughly one fifth (16%-24%) of
	// modified blocks are read before written.
	var sumExcl float64
	for _, r := range PaperTable33 {
		ev := r.Events()
		excl := ev.ExcessFractionExcludingZFOD()
		if excl < 0.14 || excl > 0.35 {
			t.Errorf("%s/%d: excess fraction excl zfod %.2f outside 15%%-34%%", r.Workload, r.MemMB, excl)
		}
		sumExcl += excl
		rbw := ev.ReadBeforeWriteFraction()
		if rbw < 0.13 || rbw > 0.25 {
			t.Errorf("%s/%d: read-before-write %.2f outside ~one fifth", r.Workload, r.MemMB, rbw)
		}
	}
	if avg := sumExcl / float64(len(PaperTable33)); math.Abs(avg-0.19) > 0.03 {
		t.Errorf("average excess fraction %.3f, paper says ~19%%", avg)
	}
}

func TestTable35Percentages(t *testing.T) {
	// "with 8 megabytes of memory at least 80% of all modifiable pages
	// are modified. With 12 megabytes or more, the fraction is at least
	// 90%. … additional paging I/O … at most 3%."
	for _, r := range PaperTable35 {
		notMod := r.PctNotMod()
		if r.MemMB == 8 && notMod > 20 {
			t.Errorf("%s: %.1f%% not modified at 8MB", r.Host, notMod)
		}
		if r.MemMB >= 12 && notMod > 10 {
			t.Errorf("%s: %.1f%% not modified at %dMB", r.Host, notMod, r.MemMB)
		}
		if extra := r.PctExtraIO(); extra > 3.0 {
			t.Errorf("%s: %.1f%% extra paging I/O", r.Host, extra)
		}
	}
}

func TestEventsEdgeCases(t *testing.T) {
	var ev Events
	if ev.ExcessFraction() != 0 || ev.ExcessFractionExcludingZFOD() != 0 ||
		ev.ReadBeforeWriteFraction() != 0 || ev.PredictedExcessFraction() != 0 {
		t.Error("zero events should yield zero ratios")
	}
	ev = Events{Nds: 5, Nzfod: 9}
	if ev.NecessaryExcludingZFOD() != 0 {
		t.Error("NecessaryExcludingZFOD should saturate at zero")
	}
	ev = Events{Nef: 3, Ndm: 7}
	if ev.Nstale() != 7 {
		t.Error("Nstale should take the larger mechanism count")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range DirtyPolicies {
		if p.String() == "" || p.Describe() == "unknown" {
			t.Errorf("policy %d poorly described", p)
		}
	}
	for _, p := range RefPolicies {
		if p.String() == "" {
			t.Errorf("ref policy %d unnamed", p)
		}
	}
	if DirtyPolicy(99).String() == "" || RefPolicy(99).String() == "" {
		t.Error("fallback names empty")
	}
	if DirtyPolicy(99).Describe() != "unknown" {
		t.Error("fallback describe")
	}
}

func TestOverheadUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Overhead(DirtyPolicy(99), Events{}, timing.Default())
}
