package core

import "repro/internal/timing"

// Overhead evaluates the Section 3.2 analytic cost model for one dirty-bit
// policy over a set of measured event frequencies, returning cycles.
// Zero-fill faults are excluded, as in Table 3.4: N_ds - N_zfod is
// substituted for N_ds.
//
//	O(MIN)   = N_ds t_ds
//	O(FAULT) = (N_ds + N_ef) t_ds
//	O(FLUSH) = N_ds (t_ds + t_flush)
//	O(SPUR)  = N_ds (t_ds + t_dm) + N_dm t_dm
//	O(WRITE) = N_ds t_ds + N_w-hit t_dc
func Overhead(policy DirtyPolicy, ev Events, tp timing.Params) uint64 {
	nds := ev.NecessaryExcludingZFOD()
	switch policy {
	case DirtyMIN:
		return nds * tp.FaultCycles
	case DirtyFAULT:
		return (nds + ev.Nstale()) * tp.FaultCycles
	case DirtyFLUSH:
		return nds * (tp.FaultCycles + tp.PageFlushCycles)
	case DirtySPUR, DirtyPROT:
		// The generalized protection-bit-miss variant is, as the paper
		// notes, identical in performance to what SPUR built.
		return nds*(tp.FaultCycles+tp.DirtyMissCycles) + ev.Nstale()*tp.DirtyMissCycles
	case DirtyWRITE:
		return nds*tp.FaultCycles + ev.NwHit*tp.DirtyCheckCycles
	}
	panic("core: unknown dirty policy")
}

// OverheadRow is one line of Table 3.4: absolute cycles and the ratio to
// MIN for every policy.
type OverheadRow struct {
	Cycles   map[DirtyPolicy]uint64
	Relative map[DirtyPolicy]float64
}

// OverheadTable evaluates every policy's model over one set of events.
func OverheadTable(ev Events, tp timing.Params) OverheadRow {
	row := OverheadRow{
		Cycles:   make(map[DirtyPolicy]uint64, len(DirtyPolicies)),
		Relative: make(map[DirtyPolicy]float64, len(DirtyPolicies)),
	}
	for _, p := range DirtyPolicies {
		row.Cycles[p] = Overhead(p, ev, tp)
	}
	min := row.Cycles[DirtyMIN]
	for _, p := range DirtyPolicies {
		if min == 0 {
			row.Relative[p] = 1
			continue
		}
		row.Relative[p] = float64(row.Cycles[p]) / float64(min)
	}
	return row
}

// FaultBeatsFlush applies the paper's break-even analysis: FAULT is
// superior to FLUSH if there are at least twice as many necessary faults
// as excess faults (t_flush being roughly half of t_ds).
func FaultBeatsFlush(ev Events, tp timing.Params) bool {
	return Overhead(DirtyFAULT, ev, tp) <= Overhead(DirtyFLUSH, ev, tp)
}
