package core

import (
	"strings"
	"testing"
)

// Every declared policy constant must round-trip through String and the
// parser, case-insensitively: the names are the wire format of the daemon's
// API and the CLI's flag values.

func TestParseDirtyPolicyRoundTrip(t *testing.T) {
	for _, p := range AllDirtyPolicies {
		name := p.String()
		for _, s := range []string{name, strings.ToLower(name), mixedCase(name)} {
			got, err := ParseDirtyPolicy(s)
			if err != nil {
				t.Errorf("ParseDirtyPolicy(%q): %v", s, err)
				continue
			}
			if got != p {
				t.Errorf("ParseDirtyPolicy(%q) = %v, want %v", s, got, p)
			}
		}
	}
}

func TestParseRefPolicyRoundTrip(t *testing.T) {
	for _, p := range RefPolicies {
		name := p.String()
		for _, s := range []string{name, strings.ToLower(name), mixedCase(name)} {
			got, err := ParseRefPolicy(s)
			if err != nil {
				t.Errorf("ParseRefPolicy(%q): %v", s, err)
				continue
			}
			if got != p {
				t.Errorf("ParseRefPolicy(%q) = %v, want %v", s, got, p)
			}
		}
	}
}

// mixedCase upper-cases the first letter only ("SPUR" -> "Spur").
func mixedCase(name string) string {
	return name[:1] + strings.ToLower(name[1:])
}

func TestParseDirtyPolicyUnknown(t *testing.T) {
	for _, s := range []string{"", "bogus", "SPURR", "MI N", "FAULTY", "min ", " spur"} {
		got, err := ParseDirtyPolicy(s)
		if err == nil {
			t.Errorf("ParseDirtyPolicy(%q) = %v, want error", s, got)
			continue
		}
		// The message must quote the rejected input and name the valid
		// policies, so a typo on the command line is self-correcting.
		if !strings.Contains(err.Error(), "\""+s+"\"") && !strings.Contains(err.Error(), s) {
			t.Errorf("ParseDirtyPolicy(%q) error %q does not quote the input", s, err)
		}
		for _, want := range []string{"MIN", "FAULT", "FLUSH", "SPUR", "WRITE", "PROT"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("ParseDirtyPolicy(%q) error %q does not offer %s", s, err, want)
			}
		}
	}
}

func TestParseRefPolicyUnknown(t *testing.T) {
	for _, s := range []string{"", "bogus", "MISSS", "RE F", "noref "} {
		got, err := ParseRefPolicy(s)
		if err == nil {
			t.Errorf("ParseRefPolicy(%q) = %v, want error", s, got)
			continue
		}
		for _, want := range []string{"MISS", "REF", "NOREF"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("ParseRefPolicy(%q) error %q does not offer %s", s, err, want)
			}
		}
	}
}

func TestPolicyStringUnknownValue(t *testing.T) {
	if got := DirtyPolicy(200).String(); got != "DirtyPolicy(200)" {
		t.Errorf("DirtyPolicy(200).String() = %q", got)
	}
	if got := RefPolicy(200).String(); got != "RefPolicy(200)" {
		t.Errorf("RefPolicy(200).String() = %q", got)
	}
	// The fallback names must not parse back: they are diagnostics, not
	// policies.
	if _, err := ParseDirtyPolicy("DirtyPolicy(200)"); err == nil {
		t.Error("ParseDirtyPolicy accepted the fallback String form")
	}
	if _, err := ParseRefPolicy("RefPolicy(200)"); err == nil {
		t.Error("ParseRefPolicy accepted the fallback String form")
	}
}

// TestPolicyNamesDistinct guards the parser's precondition: every declared
// constant has a distinct, non-fallback name.
func TestPolicyNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range AllDirtyPolicies {
		name := p.String()
		if strings.HasPrefix(name, "DirtyPolicy(") {
			t.Errorf("policy %d has no real name", uint8(p))
		}
		if seen[name] {
			t.Errorf("duplicate policy name %q", name)
		}
		seen[name] = true
	}
	for _, p := range RefPolicies {
		name := p.String()
		if strings.HasPrefix(name, "RefPolicy(") {
			t.Errorf("ref policy %d has no real name", uint8(p))
		}
		if seen[name] {
			t.Errorf("duplicate policy name %q", name)
		}
		seen[name] = true
	}
}
