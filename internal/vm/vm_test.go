package vm

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/counters"
	"repro/internal/mem"
	"repro/internal/timing"
)

// fakeOS is a minimal policy layer: a software reference bit per page set on
// every map and cleared by the daemon, and a modified set driven by tests.
type fakeOS struct {
	ref      map[addr.GVPN]bool
	modified map[addr.GVPN]bool
	unmaps   int
	maps     int
	noRef    bool // emulate NOREF: referenced always reads false
	refOnMap bool // set the reference bit when a page is mapped
}

func newFakeOS() *fakeOS {
	return &fakeOS{ref: map[addr.GVPN]bool{}, modified: map[addr.GVPN]bool{}}
}

func (f *fakeOS) MapPage(pg *Page) {
	f.maps++
	if f.refOnMap {
		f.ref[pg.VPN] = true
	}
}
func (f *fakeOS) UnmapPage(pg *Page) { f.unmaps++ }
func (f *fakeOS) PageReferenced(pg *Page) bool {
	if f.noRef {
		return false
	}
	return f.ref[pg.VPN]
}
func (f *fakeOS) ClearReference(pg *Page)    { f.ref[pg.VPN] = false }
func (f *fakeOS) PageModified(pg *Page) bool { return f.modified[pg.VPN] }

func newPager(frames int) (*Pager, *fakeOS) {
	pool := mem.NewPool(frames, 0)
	pool.SetWatermarks(2, 4)
	pg := NewPager(pool, counters.New(), timing.Default())
	os := newFakeOS()
	pg.SetOS(os)
	return pg, os
}

func TestPageKinds(t *testing.T) {
	if Code.Writable() || !Data.Writable() || !Heap.Writable() || !Stack.Writable() {
		t.Error("Writable wrong")
	}
	if Code.ZeroFill() || Data.ZeroFill() || !Heap.ZeroFill() || !Stack.ZeroFill() {
		t.Error("ZeroFill wrong")
	}
	for _, k := range []PageKind{Code, Data, Heap, Stack} {
		if k.String() == "page?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestRegionOverlapPanics(t *testing.T) {
	pg, _ := newPager(16)
	pg.AddRegion(100, 10, Data)
	defer func() {
		if recover() == nil {
			t.Error("overlapping region did not panic")
		}
	}()
	pg.AddRegion(105, 10, Heap)
}

func TestFaultOutsideRegionPanics(t *testing.T) {
	pg, _ := newPager(16)
	defer func() {
		if recover() == nil {
			t.Error("wild fault did not panic")
		}
	}()
	pg.EnsureResident(999)
}

func TestFileBackedFaultIsPageIn(t *testing.T) {
	pg, _ := newPager(16)
	pg.AddRegion(100, 4, Data)
	page, f := pg.EnsureResident(101)
	if !f.PageIn || f.ZeroFill {
		t.Errorf("fault = %+v", f)
	}
	if !page.Resident || page.Kind != Data || !page.OnStore {
		t.Errorf("page = %+v", page)
	}
	if pg.Stats.PageIns != 1 || pg.Stats.ZeroFills != 0 {
		t.Errorf("stats = %+v", pg.Stats)
	}
	// Second fault on the same page is a no-op.
	_, f = pg.EnsureResident(101)
	if f.PageIn || f.ZeroFill {
		t.Error("resident page re-faulted")
	}
	if pg.ResidentPages() != 1 {
		t.Errorf("ResidentPages = %d", pg.ResidentPages())
	}
}

func TestZeroFillFault(t *testing.T) {
	pg, _ := newPager(16)
	pg.AddRegion(200, 4, Heap)
	page, f := pg.EnsureResident(200)
	if !f.ZeroFill || f.PageIn {
		t.Errorf("fault = %+v", f)
	}
	if page.OnStore {
		t.Error("fresh ZFOD page claims store copy")
	}
	if pg.Stats.ZeroFills != 1 {
		t.Errorf("stats = %+v", pg.Stats)
	}
}

// fillPages makes n pages resident starting at base.
func fillPages(pg *Pager, base addr.GVPN, n int) {
	for i := 0; i < n; i++ {
		pg.EnsureResident(base + addr.GVPN(i))
	}
}

func TestDaemonReclaimsUnderPressure(t *testing.T) {
	pg, os := newPager(8) // watermarks 2/4
	pg.AddRegion(0, 64, Data)
	fillPages(pg, 0, 20)
	if pg.Pool().Free() < 2 {
		t.Fatalf("daemon failed: free=%d", pg.Pool().Free())
	}
	if pg.Stats.Reclaims == 0 || os.unmaps == 0 {
		t.Error("nothing reclaimed")
	}
	if pg.ResidentPages()+pg.Pool().Free() != 8 {
		t.Errorf("frame conservation: resident=%d free=%d", pg.ResidentPages(), pg.Pool().Free())
	}
}

func TestSecondChanceOverFIFO(t *testing.T) {
	// With reference bits, a constantly re-referenced page survives;
	// under NOREF (always unreferenced) the ring degenerates to FIFO.
	pg, os := newPager(32)
	pg.AddRegion(0, 128, Data)
	hot := addr.GVPN(0)
	fillPages(pg, 0, 30)
	for i := 30; i < 100; i++ {
		os.ref[hot] = true // the hot page is re-referenced continuously
		pg.EnsureResident(addr.GVPN(i))
	}
	if !pg.Lookup(hot).Resident {
		t.Error("hot page reclaimed despite set reference bit")
	}

	pg2, os2 := newPager(32)
	os2.noRef = true
	pg2.AddRegion(0, 128, Data)
	fillPages(pg2, 0, 30)
	for i := 30; i < 100; i++ {
		os2.ref[0] = true // ignored under NOREF
		pg2.EnsureResident(addr.GVPN(i))
	}
	if pg2.Lookup(0) != nil && pg2.Lookup(0).Resident {
		t.Error("NOREF kept the old page alive")
	}
}

func TestReclaimWritesModifiedPages(t *testing.T) {
	pg, os := newPager(8)
	pg.AddRegion(0, 64, Data)
	fillPages(pg, 0, 6)
	os.modified[0] = true
	os.modified[1] = false
	// Force enough pressure to cycle everything out.
	fillPages(pg, 32, 20)
	st := pg.Stats
	if st.PageOuts == 0 {
		t.Fatal("no page-outs")
	}
	if st.WritablePageOuts == 0 || st.CleanWritablePageOuts == 0 {
		t.Errorf("page-out classification: %+v", st)
	}
	if st.CleanWritablePageOuts >= st.WritablePageOuts {
		t.Errorf("all writable page-outs clean? %+v", st)
	}
	if !pg.Lookup(0).EverDirtied {
		t.Error("EverDirtied not recorded")
	}
	if !pg.Lookup(0).OnStore {
		t.Error("modified page not on store after page-out")
	}
}

func TestZFODForcedWriteOnFirstReplacement(t *testing.T) {
	pg, _ := newPager(8)
	pg.AddRegion(0, 1, Heap)   // the one ZFOD page under test
	pg.AddRegion(32, 64, Data) // clean file-backed pressure pages
	pg.EnsureResident(0)
	fillPages(pg, 32, 12) // push page 0 out, unmodified
	if pg.Stats.ZFODForcedWrites != 1 || pg.Stats.PageOuts != 1 {
		t.Fatalf("first replacement: %+v", pg.Stats)
	}
	// Second replacement of the same (still clean) page writes nothing.
	ins := pg.Stats.PageIns
	pg.EnsureResident(0) // back in: now a page-in, it is on store
	if pg.Stats.PageIns != ins+1 {
		t.Error("re-fault of swapped ZFOD page was not a page-in")
	}
	fillPages(pg, 48, 12)
	if pg.Lookup(0).Resident {
		t.Fatal("page 0 survived pressure; ordering changed")
	}
	if pg.Stats.ZFODForcedWrites != 1 {
		t.Error("ZFOD page force-written twice")
	}
	if pg.Stats.PageOuts != 1 {
		t.Error("clean on-store page written out again")
	}
}

func TestReleaseRegion(t *testing.T) {
	pg, os := newPager(16)
	r := pg.AddRegion(0, 8, Heap)
	fillPages(pg, 0, 8)
	free := pg.Pool().Free()
	pg.ReleaseRegion(r)
	if pg.Pool().Free() != free+8 {
		t.Errorf("frames not returned: %d -> %d", free, pg.Pool().Free())
	}
	if pg.ResidentPages() != 0 || pg.Lookup(0) != nil {
		t.Error("pages survived region release")
	}
	if os.unmaps != 8 {
		t.Errorf("unmaps = %d", os.unmaps)
	}
	// Region is gone: faulting there panics now.
	defer func() {
		if recover() == nil {
			t.Error("fault in released region did not panic")
		}
	}()
	pg.EnsureResident(0)
}

func TestReleaseUnknownRegionPanics(t *testing.T) {
	pg, _ := newPager(8)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	pg.ReleaseRegion(Region{Start: 5, N: 3, Kind: Data})
}

func TestClockHandSurvivesRemovals(t *testing.T) {
	// Exercise removeFromClock with the hand pointing at the removed page.
	pg, _ := newPager(16)
	r := pg.AddRegion(0, 4, Data)
	fillPages(pg, 0, 4)
	pg.ReleaseRegion(r)
	r2 := pg.AddRegion(100, 2, Data)
	fillPages(pg, 100, 2)
	if pg.ResidentPages() != 2 {
		t.Errorf("ResidentPages = %d", pg.ResidentPages())
	}
	pg.ReleaseRegion(r2)
	if pg.ResidentPages() != 0 {
		t.Error("ring not empty")
	}
	// And the ring still works afterwards.
	pg.AddRegion(0, 4, Data)
	fillPages(pg, 0, 4)
	if pg.ResidentPages() != 4 {
		t.Error("ring broken after drain")
	}
}

func TestCyclesAccumulate(t *testing.T) {
	pg, _ := newPager(8)
	pg.AddRegion(0, 64, Data)
	fillPages(pg, 0, 20)
	if pg.Cycles == 0 {
		t.Error("pager charged no cycles")
	}
}

func TestCountersRaised(t *testing.T) {
	pool := mem.NewPool(8, 0)
	pool.SetWatermarks(2, 4)
	ctr := counters.New()
	pg := NewPager(pool, ctr, timing.Default())
	pg.SetOS(newFakeOS())
	pg.AddRegion(0, 64, Heap)
	fillPages(pg, 0, 20)
	if ctr.Count(counters.EvZeroFillFault) == 0 ||
		ctr.Count(counters.EvPageReclaim) == 0 ||
		ctr.Count(counters.EvDaemonScan) == 0 {
		t.Error("pager events not counted")
	}
}

func TestFrontHandClearsPastTarget(t *testing.T) {
	// Once the free target is met, the daemon's front hand keeps moving
	// for a bounded sweep, clearing reference bits without reclaiming.
	pg, os := newPager(64)
	pg.Pool().SetWatermarks(2, 4)
	pg.AddRegion(0, 256, Data)
	// Make everything referenced so the first sweep only clears.
	os.refOnMap = true
	fillPages(pg, 0, 80) // exceeds memory: the daemon must run
	if pg.Stats.Scans == 0 {
		t.Fatal("daemon never ran")
	}
	cleared := 0
	for vpn, ref := range os.ref {
		if p := pg.Lookup(vpn); p != nil && p.Resident && !ref {
			cleared++
		}
	}
	if cleared == 0 {
		t.Error("front hand cleared nothing past the free target")
	}
}

func TestAutoRegister(t *testing.T) {
	pg, _ := newPager(16)
	pg.AutoRegister = true
	page, f := pg.EnsureResident(424242)
	if page == nil || !f.PageIn {
		t.Fatalf("auto-registered fault: page=%v fault=%+v", page, f)
	}
	if page.Kind != Data || !page.Writable() {
		t.Errorf("auto page kind = %v", page.Kind)
	}
}
