package vm

import (
	"container/list"
	"fmt"

	"repro/internal/addr"
	"repro/internal/counters"
	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/timing"
)

// OS is the machine-dependent layer the pager calls back into. The
// reference/dirty-bit policy engines implement it: that boundary is exactly
// where Sprite's "machine dependent routine that reads the hardware
// reference bit" lives, which the paper's NOREF policy stubs out.
type OS interface {
	// MapPage installs the PTE for a page that just became resident
	// (pg.Frame is set). The dirty-bit policy decides the protection and
	// dirty bit it installs; the handler also sets the reference bit,
	// since the faulting access obviously references the page.
	MapPage(pg *Page)
	// UnmapPage invalidates the PTE and flushes the page's blocks from
	// the virtual cache, as the kernel must before reusing the frame.
	UnmapPage(pg *Page)
	// PageReferenced reads the page's reference bit as the daemon sees
	// it (always false under NOREF).
	PageReferenced(pg *Page) bool
	// ClearReference clears the reference bit; under REF it also flushes
	// the page from the cache so the next access faults the bit back on.
	ClearReference(pg *Page)
	// PageModified reports whether the page's contents differ from the
	// backing store and must be written out.
	PageModified(pg *Page) bool
}

// Stats counts pager activity. PageIns and the page-out breakdown feed
// Tables 3.5 and 4.1 directly.
type Stats struct {
	PageIns   uint64 // pages read from the backing store
	PageOuts  uint64 // pages written to the backing store
	Reclaims  uint64 // pages reclaimed by the daemon
	ZeroFills uint64 // zero-fill page creations
	Scans     uint64 // pages examined by the daemon

	// WritablePageOuts counts reclaimed writable pages ("potentially
	// modified" in Table 3.5); CleanWritablePageOuts counts those that
	// were still clean ("not modified") — the pages dirty bits save.
	WritablePageOuts      uint64
	CleanWritablePageOuts uint64
	// ZFODForcedWrites counts clean zero-fill pages written to swap on
	// first replacement anyway (Sprite's rule, footnote 4 of the paper).
	ZFODForcedWrites uint64

	// IORetries counts backing-store reads that failed transiently and
	// were retried (injected via faultinject.PageInIO).
	IORetries uint64
}

// MaxPageInRetries is the pager's retry budget for a failing backing-store
// read; exhausting it raises an *IOError panic, which the hardened runner
// converts into a RunFailure artifact.
const MaxPageInRetries = 4

// IOError is the terminal backing-store failure: every retry of a page-in
// failed. It is raised as a panic value because the fault path has no error
// return (the paper's machines simply hung on NFS outages); the hardened
// runner in internal/machine recovers it into a structured RunFailure.
type IOError struct {
	VPN      addr.GVPN
	Attempts int
}

// Error implements error.
func (e *IOError) Error() string {
	return fmt.Sprintf("vm: backing-store read of page %#x failed %d times (retry budget exhausted)",
		uint64(e.VPN), e.Attempts)
}

// Fault describes how EnsureResident satisfied a page fault.
type Fault struct {
	// PageIn is true if the page was read from the backing store.
	PageIn bool
	// ZeroFill is true if the page was created zero-filled.
	ZeroFill bool
}

// Pager is the Sprite-like virtual memory manager.
type Pager struct {
	//spurlint:ignore statecomplete — component wiring; the pool's free list goes through Pool.ExportFree/RestoreFree
	pool *mem.Pool
	//spurlint:ignore statecomplete — component wiring, re-established by SetOS when the machine is rebuilt
	os OS
	//spurlint:ignore statecomplete — component wiring; counters are armed per measured interval, not checkpointed
	ctr *counters.Set
	//spurlint:ignore statecomplete — timing configuration from the spec, not accumulated state
	tp timing.Params

	//spurlint:ignore statecomplete — rebuilt by replaying the warm-up reference stream (see sample.MachineState)
	regions []Region
	pages   map[addr.GVPN]*Page

	clock *list.List    // ring of resident pages, oldest at hand
	hand  *list.Element // next page the daemon examines

	// Cycles accumulates kernel CPU and I/O stall overhead attributable
	// to paging: zero-fill, page-in stalls, page-out queueing, daemon
	// scanning. Reference-processing costs are charged by the engine.
	Cycles uint64

	// Runnable, if set, reports how many processes could use the CPU; a
	// page-in stall overlaps with other work when it exceeds one.
	//spurlint:ignore statecomplete — callback wiring installed by the scheduler when the machine is rebuilt
	Runnable func() int

	// AutoRegister makes faults outside any region register a writable
	// data page on the fly instead of panicking. Trace replay uses it:
	// a stored trace carries addresses but not the region bookkeeping of
	// the run that produced it.
	//spurlint:ignore statecomplete — replay-harness configuration, set by the driver, not machine state
	AutoRegister bool

	// Inject, when non-nil, can fail backing-store reads transiently
	// (faultinject.PageInIO); the pager retries with exponential backoff
	// charged to the elapsed-time model, and raises *IOError past
	// MaxPageInRetries. A nil injector is inert.
	//spurlint:ignore statecomplete — fault-injection harness configuration; experiments never checkpoint under injection
	Inject *faultinject.Injector

	// Stats is the pager activity record.
	Stats Stats
}

// NewPager builds a pager over the frame pool. The OS callbacks are set
// with SetOS before first use (the policy engine and pager reference each
// other, so construction is two-phase).
func NewPager(pool *mem.Pool, ctr *counters.Set, tp timing.Params) *Pager {
	return &Pager{
		pool:  pool,
		ctr:   ctr,
		tp:    tp,
		pages: make(map[addr.GVPN]*Page),
		clock: list.New(),
	}
}

// SetOS installs the machine-dependent callbacks.
func (pg *Pager) SetOS(os OS) { pg.os = os }

// Pool exposes the frame pool.
func (pg *Pager) Pool() *mem.Pool { return pg.pool }

// AddRegion registers n pages starting at start with the given kind.
// Overlapping regions are a setup bug and panic.
func (pg *Pager) AddRegion(start addr.GVPN, n int, kind PageKind) Region {
	r := Region{Start: start, N: n, Kind: kind}
	for _, old := range pg.regions {
		if r.Start < old.End() && old.Start < r.End() {
			panic(fmt.Sprintf("vm: region %v overlaps %v", r, old))
		}
	}
	pg.regions = append(pg.regions, r)
	return r
}

// ReleaseRegion tears down a region: resident pages are unmapped and their
// frames freed, backing-store copies dropped, and the region forgotten.
// Used at process exit; nothing is written out.
func (pg *Pager) ReleaseRegion(r Region) {
	for i := 0; i < r.N; i++ {
		vpn := r.Start + addr.GVPN(i)
		page, ok := pg.pages[vpn]
		if !ok {
			continue
		}
		if page.Resident {
			pg.os.UnmapPage(page)
			pg.removeFromClock(page)
			pg.pool.Release(page.Frame)
			page.Resident = false
		}
		delete(pg.pages, vpn)
	}
	for i, old := range pg.regions {
		if old == r {
			pg.regions = append(pg.regions[:i], pg.regions[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("vm: release of unknown region %v", r))
}

// Lookup returns the instantiated page for vpn, or nil.
func (pg *Pager) Lookup(vpn addr.GVPN) *Page { return pg.pages[vpn] }

// page returns (creating if needed) the Page for vpn, or nil if no region
// covers it.
func (pg *Pager) page(vpn addr.GVPN) *Page {
	if p, ok := pg.pages[vpn]; ok {
		return p
	}
	for _, r := range pg.regions {
		if r.Contains(vpn) {
			p := &Page{
				VPN:     vpn,
				Kind:    r.Kind,
				OnStore: !r.Kind.ZeroFill(), // file-backed pages start on store
			}
			pg.pages[vpn] = p
			return p
		}
	}
	if pg.AutoRegister {
		p := &Page{VPN: vpn, Kind: Data, OnStore: true}
		pg.pages[vpn] = p
		return p
	}
	return nil
}

// EnsureResident handles a page fault on vpn: it reclaims frames if the
// free list is low, allocates a frame, fills the page (page-in or
// zero-fill), and asks the OS to map it. It returns the page and what
// happened. Faulting outside any region panics — the workload generators
// never do that, and silence would hide generator bugs.
func (pg *Pager) EnsureResident(vpn addr.GVPN) (*Page, Fault) {
	page := pg.page(vpn)
	if page == nil {
		panic(fmt.Sprintf("vm: fault outside any region: page %#x", uint64(vpn)))
	}
	if page.Resident {
		return page, Fault{}
	}

	if pg.pool.NeedsDaemon() {
		pg.runDaemon()
	}
	frame, ok := pg.pool.Alloc()
	if !ok {
		// The daemon should always free something; if every frame is
		// held this is a configuration error (memory smaller than the
		// pager's own floor).
		pg.runDaemon()
		frame, ok = pg.pool.Alloc()
		if !ok {
			panic("vm: out of frames even after forced reclaim")
		}
	}

	var f Fault
	if page.OnStore {
		f.PageIn = true
		pg.Stats.PageIns++
		pg.ctr.Inc(counters.EvPageIn)
		stall := pg.tp.PageInStallCycles
		if pg.Runnable != nil && pg.Runnable() > 1 {
			// Another process runs while this one waits for the disk:
			// most of the latency is hidden from elapsed time.
			stall = uint64(float64(stall) * pg.tp.PageInOverlapFactor)
		}
		// Injected transient I/O errors: each failed attempt costs the
		// full stall (the request went to the store and died) plus an
		// exponentially growing backoff wait, all charged to the
		// elapsed-time model. Past the retry budget the store is treated
		// as down and *IOError is raised for the hardened runner.
		for attempt := 1; pg.Inject.Fire(faultinject.PageInIO); attempt++ {
			pg.Stats.IORetries++
			pg.Cycles += stall + (pg.tp.PageInStallCycles>>3)<<uint(attempt)
			if attempt >= MaxPageInRetries {
				panic(&IOError{VPN: vpn, Attempts: attempt})
			}
		}
		pg.Cycles += stall
	} else {
		// Zero-fill-on-demand: the kernel maps a zeroed frame with the
		// dirty bit off (the first store will still take a dirty fault,
		// which the paper's N_zfod isolates from the intrinsic ones).
		f.ZeroFill = true
		pg.Stats.ZeroFills++
		pg.ctr.Inc(counters.EvZeroFillFault)
		pg.Cycles += pg.tp.ZeroFillCycles
	}

	page.Frame = frame
	page.Resident = true
	page.SoftDirty = false
	pg.insertBehindHand(page)
	pg.os.MapPage(page)
	return page, f
}

// ResidentPages returns the number of pages currently in the clock.
func (pg *Pager) ResidentPages() int { return pg.clock.Len() }
