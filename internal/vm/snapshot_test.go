package vm

import (
	"strings"
	"testing"

	"repro/internal/counters"
	"repro/internal/mem"
	"repro/internal/timing"
)

func restorePager(t *testing.T) *Pager {
	t.Helper()
	return NewPager(mem.NewPool(8, 0), counters.New(), timing.Default())
}

// TestRestoreStateRejectsCorruptSnapshots pins every validation error in
// RestoreState: each corrupt PagerState must be refused with a message
// naming the violated invariant, and a refused restore must leave the
// pager untouched — a half-applied snapshot is worse than a failed one.
func TestRestoreStateRejectsCorruptSnapshots(t *testing.T) {
	page := func(vpn uint64, resident bool) PageState {
		return PageState{VPN: vpn, Kind: Heap, Resident: resident}
	}
	cases := []struct {
		name string
		s    PagerState
		want string
	}{
		{
			name: "duplicate page",
			s: PagerState{
				Pages: []PageState{page(0x10, false), page(0x10, false)},
			},
			want: "lists page 0x10 twice",
		},
		{
			name: "ring shorter than resident set",
			s: PagerState{
				Pages: []PageState{page(0x10, true), page(0x11, true)},
				Clock: []uint64{0x10},
			},
			want: "ring has 1 pages but 2 are resident",
		},
		{
			name: "ring longer than resident set",
			s: PagerState{
				Pages: []PageState{page(0x10, true)},
				Clock: []uint64{0x10, 0x11},
			},
			want: "ring has 2 pages but 1 are resident",
		},
		{
			name: "ring names non-resident page",
			s: PagerState{
				Pages: []PageState{page(0x10, true), page(0x11, false)},
				Clock: []uint64{0x11},
			},
			want: "ring names non-resident page 0x11",
		},
		{
			name: "ring names unknown page",
			s: PagerState{
				Pages: []PageState{page(0x10, true)},
				Clock: []uint64{0x99},
			},
			want: "ring names non-resident page 0x99",
		},
		{
			name: "ring names page twice",
			s: PagerState{
				Pages: []PageState{page(0x10, true), page(0x11, true)},
				Clock: []uint64{0x10, 0x10},
			},
			want: "ring names page 0x10 twice",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pg := restorePager(t)
			good := PagerState{
				Pages: []PageState{page(0x1, true)},
				Clock: []uint64{0x1},
			}
			if err := pg.RestoreState(good); err != nil {
				t.Fatalf("restoring a valid snapshot failed: %v", err)
			}
			err := pg.RestoreState(tc.s)
			if err == nil {
				t.Fatalf("RestoreState accepted a corrupt snapshot, want %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("RestoreState error = %q, want it to contain %q", err, tc.want)
			}
			// The failed restore must not have clobbered the prior state.
			if pg.Lookup(0x1) == nil || pg.ResidentPages() != 1 {
				t.Fatalf("failed restore mutated the pager: %+v", pg.ExportState())
			}
		})
	}
}

// TestRestoreStateRoundTrip: export → restore into a fresh pager → export
// again must reproduce the snapshot exactly, including ring order.
func TestRestoreStateRoundTrip(t *testing.T) {
	s := PagerState{
		Pages: []PageState{
			{VPN: 0x10, Kind: Heap, Resident: true, Frame: 3, SoftDirty: true, EverDirtied: true},
			{VPN: 0x11, Kind: Heap, OnStore: true},
			{VPN: 0x20, Kind: Code, Resident: true, Frame: 1},
		},
		Clock:  []uint64{0x20, 0x10},
		Cycles: 12345,
	}
	s.Stats.PageIns = 7

	pg := restorePager(t)
	if err := pg.RestoreState(s); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	got := pg.ExportState()
	if len(got.Pages) != len(s.Pages) {
		t.Fatalf("round trip kept %d pages, want %d", len(got.Pages), len(s.Pages))
	}
	for i := range s.Pages {
		if got.Pages[i] != s.Pages[i] {
			t.Errorf("page %d: got %+v, want %+v", i, got.Pages[i], s.Pages[i])
		}
	}
	if len(got.Clock) != 2 || got.Clock[0] != 0x20 || got.Clock[1] != 0x10 {
		t.Errorf("ring order not preserved: got %v, want [0x20 0x10]", got.Clock)
	}
	if got.Cycles != s.Cycles || got.Stats != s.Stats {
		t.Errorf("stats/cycles: got %+v/%d, want %+v/%d", got.Stats, got.Cycles, s.Stats, s.Cycles)
	}
}
