// Package vm implements the Sprite-like virtual memory system the
// experiments run against: address-space regions, demand paging with
// zero-fill, a backing store, and the clock page daemon whose
// reference-bit reads/clears and page-out dirty-bit checks are exactly the
// hooks the paper's policies plug into.
package vm

import (
	"container/list"

	"repro/internal/addr"
)

// PageKind classifies a page for workload realism and reporting.
type PageKind uint8

const (
	// Code pages are read-only executable text, backed by the file system.
	Code PageKind = iota
	// Data pages are initialized writable data, backed by the file system.
	Data
	// Heap pages are zero-fill-on-demand.
	Heap
	// Stack pages are zero-fill-on-demand.
	Stack
)

// String names the kind.
func (k PageKind) String() string {
	switch k {
	case Code:
		return "code"
	case Data:
		return "data"
	case Heap:
		return "heap"
	case Stack:
		return "stack"
	}
	return "page?"
}

// Writable reports whether the kind permits user writes.
func (k PageKind) Writable() bool { return k != Code }

// ZeroFill reports whether first touch creates a zero page instead of
// reading the backing store.
func (k PageKind) ZeroFill() bool { return k == Heap || k == Stack }

// Page is the OS's software state for one virtual page.
type Page struct {
	// VPN is the page's global virtual page number.
	VPN addr.GVPN
	// Kind is the page classification from its region.
	Kind PageKind

	// Resident is true while a frame holds the page.
	Resident bool
	// Frame is the physical frame, valid while Resident.
	Frame addr.PFN

	// OnStore is true once the backing store holds the page's contents
	// (always for file-backed pages; for zero-fill pages only after
	// their first replacement).
	OnStore bool

	// SoftDirty is the operating system's dirty bit for the current
	// residency: set by the dirty-bit fault handler, cleared at page-out.
	SoftDirty bool

	// EverDirtied reports whether any residency of this page was ever
	// modified, for the Table 3.5 style accounting.
	EverDirtied bool

	// elem is the page's position in the clock ring while resident.
	elem *list.Element
}

// Writable reports whether user writes to the page are permitted.
func (pg *Page) Writable() bool { return pg.Kind.Writable() }

// Region describes a contiguous range of pages with common attributes,
// registered when a process segment is created.
type Region struct {
	Start addr.GVPN
	N     int
	Kind  PageKind
}

// Contains reports whether the region covers page p.
func (r Region) Contains(p addr.GVPN) bool {
	return p >= r.Start && p < r.Start+addr.GVPN(r.N)
}

// End returns one past the last page.
func (r Region) End() addr.GVPN { return r.Start + addr.GVPN(r.N) }
