package vm

import (
	"container/list"
	"fmt"
	"sort"

	"repro/internal/addr"
)

// PageState is the serializable form of one Page: everything the pager
// knows about the page, minus the clock-ring linkage (the ring is
// serialized separately, as an ordered VPN list, because the *order* is the
// state — it decides which page the daemon examines next).
type PageState struct {
	VPN         uint64   `json:"vpn"`
	Kind        PageKind `json:"kind"`
	Resident    bool     `json:"resident,omitempty"`
	Frame       addr.PFN `json:"frame,omitempty"`
	OnStore     bool     `json:"on_store,omitempty"`
	SoftDirty   bool     `json:"soft_dirty,omitempty"`
	EverDirtied bool     `json:"ever_dirtied,omitempty"`
}

// PagerState is a checkpoint of the pager's mutable state. Regions are not
// part of it: a restore regenerates the workload stream up to the
// checkpoint first, which re-registers every live region through the same
// Env calls the original run made, so the snapshot only carries what
// generation cannot rebuild — the instantiated pages, the clock ring, the
// statistics and the accumulated paging cycles.
type PagerState struct {
	// Pages lists every instantiated page in ascending VPN order.
	Pages []PageState `json:"pages"`
	// Clock lists the resident pages' VPNs in ring order starting at the
	// hand, so a restore rebuilds an identical replacement sequence.
	Clock  []uint64 `json:"clock"`
	Stats  Stats    `json:"stats"`
	Cycles uint64   `json:"cycles"`
}

// ExportState captures the pager's mutable state for a checkpoint.
func (pg *Pager) ExportState() PagerState {
	s := PagerState{Stats: pg.Stats, Cycles: pg.Cycles}
	vpns := make([]addr.GVPN, 0, len(pg.pages))
	for v := range pg.pages {
		vpns = append(vpns, v)
	}
	sort.Slice(vpns, func(i, j int) bool { return vpns[i] < vpns[j] })
	for _, v := range vpns {
		p := pg.pages[v]
		s.Pages = append(s.Pages, PageState{
			VPN: uint64(p.VPN), Kind: p.Kind,
			Resident: p.Resident, Frame: p.Frame,
			OnStore: p.OnStore, SoftDirty: p.SoftDirty, EverDirtied: p.EverDirtied,
		})
	}
	if pg.hand != nil {
		for e := pg.hand; ; {
			s.Clock = append(s.Clock, uint64(e.Value.(*Page).VPN))
			e = nextRing(pg.clock, e)
			if e == pg.hand {
				break
			}
		}
	}
	return s
}

// RestoreState overwrites the pager's mutable state from a checkpoint. The
// caller must already have re-registered the checkpoint's regions (by
// regenerating the workload stream); RestoreState replaces whatever pages
// and ring the regeneration pass left (normally none — generation alone
// never instantiates a page) with the checkpointed ones. Frame ownership is
// the caller's to restore in the frame pool; this method validates only the
// pager's own invariants: resident pages appear in the ring exactly once,
// and the ring names no non-resident page.
func (pg *Pager) RestoreState(s PagerState) error {
	pages := make(map[addr.GVPN]*Page, len(s.Pages))
	resident := 0
	for _, ps := range s.Pages {
		vpn := addr.GVPN(ps.VPN)
		if _, dup := pages[vpn]; dup {
			return fmt.Errorf("vm: snapshot lists page %#x twice", ps.VPN)
		}
		pages[vpn] = &Page{
			VPN: vpn, Kind: ps.Kind,
			Resident: ps.Resident, Frame: ps.Frame,
			OnStore: ps.OnStore, SoftDirty: ps.SoftDirty, EverDirtied: ps.EverDirtied,
		}
		if ps.Resident {
			resident++
		}
	}
	if len(s.Clock) != resident {
		return fmt.Errorf("vm: snapshot ring has %d pages but %d are resident", len(s.Clock), resident)
	}
	clock := list.New()
	for _, v := range s.Clock {
		p, ok := pages[addr.GVPN(v)]
		if !ok || !p.Resident {
			return fmt.Errorf("vm: snapshot ring names non-resident page %#x", v)
		}
		if p.elem != nil {
			return fmt.Errorf("vm: snapshot ring names page %#x twice", v)
		}
		p.elem = clock.PushBack(p)
	}
	pg.pages = pages
	pg.clock = clock
	pg.hand = clock.Front()
	pg.Stats = s.Stats
	pg.Cycles = s.Cycles
	return nil
}
