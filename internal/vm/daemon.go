package vm

import (
	"container/list"

	"repro/internal/counters"
)

// insertBehindHand places a newly resident page so that it is the last page
// the clock hand will reach: with an empty ring it becomes the hand; with a
// populated ring it is inserted just before the hand, making the ring a FIFO
// when no reference bits are ever observed set (the NOREF degeneration the
// paper describes).
func (pg *Pager) insertBehindHand(page *Page) {
	if pg.hand == nil {
		page.elem = pg.clock.PushBack(page)
		pg.hand = page.elem
		return
	}
	page.elem = pg.clock.InsertBefore(page, pg.hand)
}

// removeFromClock deletes a page from the ring, advancing the hand if it
// pointed at the page.
func (pg *Pager) removeFromClock(page *Page) {
	if page.elem == nil {
		return
	}
	if pg.hand == page.elem {
		pg.hand = nextRing(pg.clock, pg.hand)
		if pg.hand == page.elem { // last element
			pg.hand = nil
		}
	}
	pg.clock.Remove(page.elem)
	page.elem = nil
}

func nextRing(l *list.List, e *list.Element) *list.Element {
	if n := e.Next(); n != nil {
		return n
	}
	return l.Front()
}

// frontHandSweep is the number of extra pages the daemon examines (clearing
// reference bits without reclaiming) after reaching its free target — the
// constantly moving front hand of the BSD/Sprite clock, which keeps the
// reference information fresh and is exactly the work the REF policy's
// per-clear page flush multiplies.
const frontHandSweep = 192

// runDaemon is the Sprite page daemon: it sweeps the clock, clearing
// reference bits on referenced pages and reclaiming unreferenced ones,
// until the free list is back above the high watermark, then lets the
// front hand run on for a while clearing bits. A page whose reference bit
// was just cleared gets a full revolution of grace before it can be
// reclaimed, which is the classic second-chance behaviour.
func (pg *Pager) runDaemon() {
	if pg.clock.Len() == 0 {
		return
	}
	// Bound the sweep: two full revolutions always suffice (first clears,
	// second reclaims); needing more means the target is unreachable.
	limit := 2*pg.clock.Len() + 1
	extra := frontHandSweep
	for scanned := 0; scanned < limit; scanned++ {
		if pg.pool.AboveHighWater() {
			if extra <= 0 {
				return
			}
			extra--
		}
		if pg.clock.Len() == 0 {
			return
		}
		e := pg.hand
		page := e.Value.(*Page)
		pg.hand = nextRing(pg.clock, e)
		pg.Stats.Scans++
		pg.ctr.Inc(counters.EvDaemonScan)
		pg.Cycles += pg.tp.DaemonScanCycles

		if pg.os.PageReferenced(page) {
			pg.os.ClearReference(page)
			pg.ctr.Inc(counters.EvRefClear)
			continue
		}
		if !pg.pool.AboveHighWater() {
			pg.reclaim(page)
		}
	}
}

// reclaim evicts one resident page: unmap (which flushes the virtual
// cache), write to the backing store if needed, free the frame.
func (pg *Pager) reclaim(page *Page) {
	pg.os.UnmapPage(page)
	pg.removeFromClock(page)

	modified := pg.os.PageModified(page)
	if page.Writable() {
		pg.Stats.WritablePageOuts++
		if !modified {
			pg.Stats.CleanWritablePageOuts++
		}
	}
	// Sprite writes a zero-fill page to swap on its first replacement
	// even if the program never modified it (footnote 4).
	forcedZFOD := page.Kind.ZeroFill() && !page.OnStore && !modified
	if modified || forcedZFOD {
		if forcedZFOD {
			pg.Stats.ZFODForcedWrites++
		}
		pg.Stats.PageOuts++
		pg.ctr.Inc(counters.EvPageOut)
		pg.Cycles += pg.tp.PageOutCPUCycles
		page.OnStore = true
	}
	if modified {
		page.EverDirtied = true
	}

	page.SoftDirty = false
	page.Resident = false
	pg.pool.Release(page.Frame)
	pg.Stats.Reclaims++
	pg.ctr.Inc(counters.EvPageReclaim)
}
