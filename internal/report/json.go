package report

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Doc is the machine-readable form of one rendered artifact — the single
// serialization path shared by `cmd/tables -json` and the experiment
// service's /v1/tables endpoint, so a table never has two competing JSON
// shapes.
type Doc struct {
	// Title is the artifact's heading ("Table 3.3: Event Frequencies").
	Title string `json:"title"`
	// Header and Rows carry tabular artifacts cell-by-cell, already
	// stringified exactly as the text rendering prints them.
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	// Notes are the table's footnotes.
	Notes []string `json:"notes,omitempty"`
	// Text carries pre-rendered artifacts (figures, ASCII charts) that
	// have no tabular decomposition.
	Text string `json:"text,omitempty"`
}

// Doc converts the table to its machine-readable form.
func (t *Table) Doc() Doc {
	return Doc{Title: t.Title, Header: t.Header, Rows: t.Rows, Notes: t.Notes}
}

// TextDoc wraps a pre-rendered artifact (a figure or chart) as a Doc.
func TextDoc(title, text string) Doc { return Doc{Title: title, Text: text} }

// RenderJSON serializes docs as an indented JSON array with a trailing
// newline — deterministic for fixed inputs, so service responses built from
// the store are byte-identical to freshly computed ones.
func RenderJSON(docs []Doc) ([]byte, error) {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	if err := enc.Encode(docs); err != nil {
		return nil, fmt.Errorf("report: rendering JSON: %w", err)
	}
	return b.Bytes(), nil
}
