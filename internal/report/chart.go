package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Chart renders one or more named series as an ASCII line chart, for the
// sweep tools' terminal output.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height of the plot area in characters; defaults 60x16.
	Width, Height int

	series []series
}

type series struct {
	name   string
	mark   byte
	xs, ys []float64
}

var marks = []byte{'*', 'o', '+', 'x', '#', '@'}

// AddSeries appends a named series; points need not be sorted.
func (c *Chart) AddSeries(name string, xs, ys []float64) {
	if len(xs) != len(ys) {
		panic("report: chart series length mismatch")
	}
	mark := marks[len(c.series)%len(marks)]
	sx := append([]float64(nil), xs...)
	sy := append([]float64(nil), ys...)
	idx := make([]int, len(sx))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return sx[idx[a]] < sx[idx[b]] })
	oxs, oys := make([]float64, len(sx)), make([]float64, len(sy))
	for i, j := range idx {
		oxs[i], oys[i] = sx[j], sy[j]
	}
	c.series = append(c.series, series{name: name, mark: mark, xs: oxs, ys: oys})
}

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // y axis starts at zero: counts
	for _, s := range c.series {
		for i := range s.xs {
			minX = math.Min(minX, s.xs[i])
			maxX = math.Max(maxX, s.xs[i])
			maxY = math.Max(maxY, s.ys[i])
		}
	}
	if len(c.series) == 0 || maxX == minX {
		return c.Title + "\n(no data)\n"
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	put := func(x, y float64, mark byte) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(w-1)))
		row := int(math.Round((y - minY) / (maxY - minY) * float64(h-1)))
		r := h - 1 - row
		if r >= 0 && r < h && col >= 0 && col < w {
			grid[r][col] = mark
		}
	}
	for _, s := range c.series {
		// Linear interpolation between points so the series reads as a
		// curve, then the sample points themselves on top.
		for i := 1; i < len(s.xs); i++ {
			steps := w / max(1, len(s.xs)-1)
			for k := 0; k <= steps; k++ {
				f := float64(k) / float64(max(1, steps))
				put(s.xs[i-1]+f*(s.xs[i]-s.xs[i-1]), s.ys[i-1]+f*(s.ys[i]-s.ys[i-1]), '.')
			}
		}
	}
	for _, s := range c.series {
		for i := range s.xs {
			put(s.xs[i], s.ys[i], s.mark)
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "%s\n", c.YLabel)
	for r := 0; r < h; r++ {
		yv := minY + (maxY-minY)*float64(h-1-r)/float64(h-1)
		fmt.Fprintf(&b, "%10.0f |%s\n", yv, string(grid[r]))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*.4g%*.4g  %s\n", "", w/2, minX, w-w/2, maxX, c.XLabel)
	for _, s := range c.series {
		fmt.Fprintf(&b, "%12c %s\n", s.mark, s.name)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
