package report

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "bbbb"}}
	tbl.Add("x", 12)
	tbl.Add("longer", 3.5)
	tbl.Note("note %d", 7)
	s := tbl.String()
	for _, want := range []string{"T\n", "a", "bbbb", "x", "12", "longer", "3.5", "note 7"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q in:\n%s", want, s)
		}
	}
	// Columns align: every data line has the same prefix width for col 0.
	lines := strings.Split(s, "\n")
	var dataLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "x") || strings.HasPrefix(l, "longer") {
			dataLines = append(dataLines, l)
		}
	}
	if len(dataLines) != 2 {
		t.Fatalf("data lines = %d", len(dataLines))
	}
	if strings.Index(dataLines[0], "12") != strings.Index(dataLines[1], "3.5") {
		t.Error("columns misaligned")
	}
}

func TestFloatAdaptive(t *testing.T) {
	cases := map[float64]string{
		3.5:       "3.5",
		3:         "3",
		0:         "0",
		-2:        "-2",
		1234.5678: "1235",
		0.0042:    "0.0042",
		3.2e-05:   "3.2e-05", // a per-million-reference rate: not "0.00"
		1.23456:   "1.235",
	}
	for in, want := range cases {
		if got := Float(in); got != want {
			t.Errorf("Float(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableNoTitleNoHeader(t *testing.T) {
	tbl := &Table{}
	tbl.Add("only")
	s := tbl.String()
	if !strings.Contains(s, "only") || strings.Contains(s, "=") {
		t.Errorf("bare table rendering:\n%s", s)
	}
}

func TestRaggedRows(t *testing.T) {
	tbl := &Table{Header: []string{"a"}}
	tbl.Add("1", "2", "3") // wider than header
	s := tbl.String()
	if !strings.Contains(s, "3") {
		t.Error("extra columns dropped")
	}
}

func TestPctRatio(t *testing.T) {
	if Pct(1.02) != "(102%)" {
		t.Errorf("Pct = %q", Pct(1.02))
	}
	if Ratio(1.155) != "(1.16)" {
		t.Errorf("Ratio = %q", Ratio(1.155))
	}
}

func TestMCycles(t *testing.T) {
	cases := map[uint64]string{
		1_440_000:   "1.44",
		933_000:     "0.933",
		35_300_000:  "35.3",
		228_000_000: "228",
	}
	for in, want := range cases {
		if got := MCycles(in); got != want {
			t.Errorf("MCycles(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestDocRoundTrip(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "b"}}
	tbl.Add("x", 12)
	tbl.Note("n")
	d := tbl.Doc()
	if d.Title != "T" || len(d.Rows) != 1 || d.Rows[0][1] != "12" || d.Notes[0] != "n" {
		t.Fatalf("Doc = %+v", d)
	}
	// The Doc JSON round-trips losslessly, and a Table rebuilt from it
	// renders the same bytes — the property cmd/tables -json and the spurd
	// /v1/tables endpoint rely on to share one serialization path.
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Doc
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, back) {
		t.Errorf("round trip changed the doc: %+v vs %+v", d, back)
	}
	rebuilt := Table{Title: back.Title, Header: back.Header, Rows: back.Rows, Notes: back.Notes}
	if rebuilt.String() != tbl.String() {
		t.Error("rebuilt table renders differently")
	}
}

func TestTextDoc(t *testing.T) {
	d := TextDoc("Figure", "ascii art")
	if d.Title != "Figure" || d.Text != "ascii art" || d.Rows != nil {
		t.Errorf("TextDoc = %+v", d)
	}
}

func TestRenderJSON(t *testing.T) {
	docs := []Doc{TextDoc("F", "body"), {Title: "T", Header: []string{"a"}, Rows: [][]string{{"1"}}}}
	b, err := RenderJSON(docs)
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1] != '\n' {
		t.Error("output should end with a newline")
	}
	var back []Doc
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(docs, back) {
		t.Errorf("round trip changed docs: %+v vs %+v", docs, back)
	}
}

func TestChartRendering(t *testing.T) {
	c := &Chart{Title: "T", XLabel: "x", YLabel: "y", Width: 30, Height: 8}
	c.AddSeries("a", []float64{1, 2, 3}, []float64{10, 20, 15})
	c.AddSeries("b", []float64{3, 1, 2}, []float64{5, 5, 5}) // unsorted input
	s := c.String()
	for _, want := range []string{"T", "x", "y", "* a", "o b", "+---"} {
		if !strings.Contains(s, want) {
			t.Errorf("chart missing %q:\n%s", want, s)
		}
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	c := &Chart{Title: "E"}
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
	c.AddSeries("flatx", []float64{2, 2}, []float64{1, 3})
	if !strings.Contains(c.String(), "no data") {
		t.Error("zero x-range should degrade gracefully")
	}
}

func TestChartSeriesLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched series accepted")
		}
	}()
	(&Chart{}).AddSeries("bad", []float64{1}, []float64{1, 2})
}
