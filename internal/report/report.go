// Package report renders fixed-width tables in the style of the paper's
// tables, including paper-vs-measured comparison layouts.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, stringifying the cells with %v and float64s through
// Float, so a cell's magnitude never collapses to "0.00".
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = Float(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Float renders a float64 adaptively: integral values without a decimal
// tail, everything else to four significant digits. Unlike a fixed "%.2f",
// small per-million-reference rates keep their magnitude ("3.2e-05", never
// "0.00").
func Float(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}

	var b strings.Builder
	total := 0
	for _, w := range width {
		total += w + 2
	}
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", min(total, 100)))
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		line(t.Header)
		for i := range width {
			fmt.Fprintf(&b, "%-*s", width[i]+2, strings.Repeat("-", width[i]))
		}
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

// Pct formats a ratio as the paper prints its relative columns: "(102%)".
func Pct(x float64) string { return fmt.Sprintf("(%.0f%%)", 100*x) }

// Ratio formats a ratio as the paper's Table 3.4 relative row: "(1.16)".
func Ratio(x float64) string { return fmt.Sprintf("(%.2f)", x) }

// MCycles formats cycles in millions with three significant digits, as in
// Table 3.4.
func MCycles(c uint64) string {
	m := float64(c) / 1e6
	switch {
	case m >= 100:
		return fmt.Sprintf("%.0f", m)
	case m >= 10:
		return fmt.Sprintf("%.1f", m)
	case m >= 1:
		return fmt.Sprintf("%.2f", m)
	default:
		return fmt.Sprintf("%.3f", m)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
