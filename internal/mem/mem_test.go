package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestPoolGeometry(t *testing.T) {
	p := PoolForBytes(5<<20, 128)
	if p.Total() != 1280 {
		t.Errorf("Total = %d, want 1280", p.Total())
	}
	if p.Wired() != 128 || p.Allocatable() != 1152 || p.Free() != 1152 {
		t.Errorf("wired/allocatable/free = %d/%d/%d", p.Wired(), p.Allocatable(), p.Free())
	}
	if p.LowWater() < 1 || p.HighWater() <= p.LowWater() {
		t.Errorf("watermarks %d/%d", p.LowWater(), p.HighWater())
	}
}

func TestNewPoolPanics(t *testing.T) {
	for _, c := range []struct{ total, wired int }{{0, 0}, {10, 10}, {10, -1}, {-5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPool(%d,%d) did not panic", c.total, c.wired)
				}
			}()
			NewPool(c.total, c.wired)
		}()
	}
}

func TestAllocExhaustion(t *testing.T) {
	p := NewPool(10, 2)
	seen := map[addr.PFN]bool{}
	for i := 0; i < 8; i++ {
		f, ok := p.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if int(f) < 2 || int(f) >= 10 {
			t.Fatalf("allocated wired/out-of-range frame %d", f)
		}
		if seen[f] {
			t.Fatalf("frame %d allocated twice", f)
		}
		seen[f] = true
	}
	if _, ok := p.Alloc(); ok {
		t.Error("alloc succeeded past exhaustion")
	}
	if p.Free() != 0 {
		t.Errorf("Free = %d", p.Free())
	}
}

func TestReleaseRecycles(t *testing.T) {
	p := NewPool(10, 2)
	f, _ := p.Alloc()
	p.Release(f)
	g, ok := p.Alloc()
	if !ok || g != f {
		t.Errorf("LIFO reuse: got %d ok=%v, want %d", g, ok, f)
	}
}

func TestReleasePanics(t *testing.T) {
	p := NewPool(10, 2)
	for _, f := range []addr.PFN{0, 1, 10, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Release(%d) did not panic", f)
				}
			}()
			p.Release(f)
		}()
	}
	// Double release.
	f, _ := p.Alloc()
	p.Release(f)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	p.Release(f)
}

func TestWatermarkPredicates(t *testing.T) {
	p := NewPool(102, 2)
	p.SetWatermarks(5, 10)
	var held []addr.PFN
	for p.Free() >= 5 {
		f, _ := p.Alloc()
		held = append(held, f)
	}
	if !p.NeedsDaemon() {
		t.Error("below low water but NeedsDaemon false")
	}
	if p.AboveHighWater() {
		t.Error("AboveHighWater true below low water")
	}
	for p.Free() < 10 {
		p.Release(held[len(held)-1])
		held = held[:len(held)-1]
	}
	if p.NeedsDaemon() || !p.AboveHighWater() {
		t.Error("watermark predicates wrong after refill")
	}
}

func TestSetWatermarksPanics(t *testing.T) {
	p := NewPool(100, 0)
	for _, c := range []struct{ lo, hi int }{{0, 5}, {5, 5}, {5, 101}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetWatermarks(%d,%d) did not panic", c.lo, c.hi)
				}
			}()
			p.SetWatermarks(c.lo, c.hi)
		}()
	}
}

func TestAllocReleaseConservation(t *testing.T) {
	// Property: any alloc/release sequence conserves frames.
	f := func(ops []bool) bool {
		p := NewPool(64, 4)
		var held []addr.PFN
		for _, isAlloc := range ops {
			if isAlloc {
				if fr, ok := p.Alloc(); ok {
					held = append(held, fr)
				}
			} else if len(held) > 0 {
				p.Release(held[len(held)-1])
				held = held[:len(held)-1]
			}
		}
		return p.Free()+len(held) == p.Allocatable()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
