package mem

import (
	"fmt"

	"repro/internal/addr"
)

// ExportFree returns a copy of the free list in stack order (the next Alloc
// pops the last element). The order is real machine state: the list is LIFO
// over the release history, so it cannot be reconstructed from the resident
// set — a checkpoint that dropped it would replay different frame numbers
// and diverge from the run it claims to resume.
func (p *Pool) ExportFree() []addr.PFN {
	free := make([]addr.PFN, len(p.free))
	copy(free, p.free)
	return free
}

// RestoreFree overwrites the free list from a checkpoint and recomputes the
// in-use map (every non-wired frame not on the list is allocated). Frames
// must be in range and unique; anything else means the snapshot belongs to
// a different pool geometry or is corrupt.
func (p *Pool) RestoreFree(free []addr.PFN) error {
	if len(free) > p.total-p.wired {
		return fmt.Errorf("mem: snapshot free list of %d frames exceeds the %d allocatable", len(free), p.total-p.wired)
	}
	seen := make([]bool, p.total)
	for _, f := range free {
		if int(f) < p.wired || int(f) >= p.total {
			return fmt.Errorf("mem: snapshot frees wired or out-of-range frame %d", f)
		}
		if seen[f] {
			return fmt.Errorf("mem: snapshot frees frame %d twice", f)
		}
		seen[f] = true
	}
	p.free = append(p.free[:0], free...)
	for f := p.wired; f < p.total; f++ {
		p.inUse[f] = !seen[f]
	}
	return nil
}
