// Package mem provides the physical frame pool backing the simulated main
// memory.
//
// The paper's experiments vary main memory over 5, 6 and 8 megabytes; the
// pool is simply the set of 4 KB frames with a free list and a wired
// reservation (kernel text/data and the wired second-level page tables),
// plus the low/high watermarks the Sprite page daemon runs against.
package mem

import (
	"fmt"

	"repro/internal/addr"
)

// Pool is a physical frame allocator.
type Pool struct {
	//spurlint:ignore statecomplete — pool geometry fixed at construction from the spec
	total int
	//spurlint:ignore statecomplete — pool geometry fixed at construction from the spec
	wired int
	free  []addr.PFN
	//spurlint:ignore statecomplete — complement of the free list; RestoreFree rebuilds it
	inUse []bool // indexed by PFN, true while allocated

	//spurlint:ignore statecomplete — watermark configuration derived from the geometry at construction
	lowWater int
	//spurlint:ignore statecomplete — watermark configuration derived from the geometry at construction
	highWater int
}

// NewPool returns a pool of total frames, of which wired are permanently
// reserved (never allocatable). Watermarks default to 5% / 10% of the
// allocatable frames, matching the spirit of the BSD/Sprite page daemon.
func NewPool(total, wired int) *Pool {
	if total <= 0 || wired < 0 || wired >= total {
		panic(fmt.Sprintf("mem: bad pool geometry total=%d wired=%d", total, wired))
	}
	p := &Pool{
		total: total,
		wired: wired,
		inUse: make([]bool, total),
	}
	// Frames [0, wired) are the wired reservation; the rest start free.
	// The free list is kept LIFO so recently released frames are reused
	// first, as a real allocator would for cache warmth.
	for f := total - 1; f >= wired; f-- {
		p.free = append(p.free, addr.PFN(f)) //spurlint:ignore countersafe — f indexes frames of a few-MB memory (at most thousands), far below 2^32
	}
	avail := total - wired
	p.lowWater = max(1, avail/20)
	p.highWater = max(p.lowWater+1, avail/10)
	return p
}

// PoolForBytes returns a pool sized for a main memory of the given bytes
// with the given number of wired frames.
func PoolForBytes(memBytes int, wired int) *Pool {
	return NewPool(memBytes/addr.PageBytes, wired)
}

// Total returns the total number of frames.
func (p *Pool) Total() int { return p.total }

// Wired returns the number of permanently reserved frames.
func (p *Pool) Wired() int { return p.wired }

// Allocatable returns the number of frames the pager may use.
func (p *Pool) Allocatable() int { return p.total - p.wired }

// Free returns the current number of free frames.
func (p *Pool) Free() int { return len(p.free) }

// LowWater returns the free-frame count below which the page daemon starts.
func (p *Pool) LowWater() int { return p.lowWater }

// HighWater returns the free-frame count at which the page daemon stops.
func (p *Pool) HighWater() int { return p.highWater }

// SetWatermarks overrides the daemon thresholds. high must exceed low.
func (p *Pool) SetWatermarks(low, high int) {
	if low < 1 || high <= low || high > p.Allocatable() {
		panic(fmt.Sprintf("mem: bad watermarks %d/%d (allocatable %d)", low, high, p.Allocatable()))
	}
	p.lowWater, p.highWater = low, high
}

// NeedsDaemon reports whether free frames have fallen below the low
// watermark.
func (p *Pool) NeedsDaemon() bool { return len(p.free) < p.lowWater }

// AboveHighWater reports whether the daemon has replenished enough frames.
func (p *Pool) AboveHighWater() bool { return len(p.free) >= p.highWater }

// Alloc takes a free frame, reporting failure when memory is exhausted.
func (p *Pool) Alloc() (addr.PFN, bool) {
	if len(p.free) == 0 {
		return 0, false
	}
	f := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inUse[f] = true
	return f, true
}

// Release returns a frame to the free list. Releasing a wired or already
// free frame panics: both indicate pager corruption.
func (p *Pool) Release(f addr.PFN) {
	if int(f) < p.wired || int(f) >= p.total {
		panic(fmt.Sprintf("mem: release of wired or out-of-range frame %d", f))
	}
	if !p.inUse[f] {
		panic(fmt.Sprintf("mem: double release of frame %d", f))
	}
	p.inUse[f] = false
	p.free = append(p.free, f)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
