package cluster

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeSink records deliveries and can refuse a peer to simulate it being
// down.
type fakeSink struct {
	mu   sync.Mutex
	down map[string]bool
	got  map[string][]string // key -> peers delivered to
}

func newFakeSink() *fakeSink {
	return &fakeSink{down: map[string]bool{}, got: map[string][]string{}}
}

func (f *fakeSink) send(peer, key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[peer] {
		return errors.New("peer down")
	}
	f.got[key] = append(f.got[key], peer)
	return nil
}

func (f *fakeSink) setDown(peer string, down bool) {
	f.mu.Lock()
	f.down[peer] = down
	f.mu.Unlock()
}

func (f *fakeSink) deliveries(key string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.got[key]...)
}

func TestOutboxDeliversAndRetriesDownPeer(t *testing.T) {
	sink := newFakeSink()
	sink.setDown("http://n2", true)
	o, err := OpenOutbox(filepath.Join(t.TempDir(), "outbox.journal"), "v", sink.send, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := o.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := o.Enqueue("k1", []string{"http://n1", "http://n2"}); err != nil {
		t.Fatal(err)
	}
	// n1 gets its copy promptly; n2 stays pending.
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.deliveries("k1")) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := sink.deliveries("k1"); len(got) != 1 || got[0] != "http://n1" {
		t.Fatalf("deliveries = %v, want only n1 while n2 is down", got)
	}
	if st := o.Stats(); st.Pending != 1 {
		t.Fatalf("pending = %d, want 1 (n2 owed)", st.Pending)
	}
	// n2 comes back; the retry loop finishes the job.
	sink.setDown("http://n2", false)
	if !o.Flush(time.Now().Add(5 * time.Second)) {
		t.Fatalf("outbox never drained after n2 recovered: %+v", o.Stats())
	}
	if got := sink.deliveries("k1"); len(got) != 2 {
		t.Fatalf("deliveries = %v, want both replicas", got)
	}
	if st := o.Stats(); st.Enqueued != 1 || st.Delivered != 2 || st.Failed == 0 {
		t.Errorf("stats = %+v, want 1 enqueued, 2 delivered, >0 failed", st)
	}
}

// TestOutboxResumesAcrossRestart is the durability contract: intents
// journaled before a crash are delivered by the next process.
func TestOutboxResumesAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.journal")
	sink := newFakeSink()
	sink.setDown("http://n2", true)

	o, err := OpenOutbox(path, "v", sink.send, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Enqueue("k1", []string{"http://n1", "http://n2"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.deliveries("k1")) == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := o.Close(); err != nil { // "crash" with n2 still owed
		t.Fatal(err)
	}

	sink.setDown("http://n2", false)
	o2, err := OpenOutbox(path, "v", sink.send, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := o2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if !o2.Flush(time.Now().Add(5 * time.Second)) {
		t.Fatalf("restarted outbox never delivered the owed copy: %+v", o2.Stats())
	}
	got := sink.deliveries("k1")
	n2 := 0
	for _, p := range got {
		if p == "http://n2" {
			n2++
		}
	}
	if n2 != 1 {
		t.Fatalf("deliveries after restart = %v, want exactly one to n2", got)
	}
	// The settled delivery to n1 must not be replayed.
	n1 := 0
	for _, p := range got {
		if p == "http://n1" {
			n1++
		}
	}
	if n1 != 1 {
		t.Fatalf("deliveries = %v, want the settled n1 push not re-sent", got)
	}
}

// TestOutboxStaleVersionSetAside: an outbox journaled by another code
// version addresses another store; it must be set aside, not replayed.
func TestOutboxStaleVersionSetAside(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outbox.journal")
	sink := newFakeSink()
	sink.setDown("http://n1", true)
	o, err := OpenOutbox(path, "v1", sink.send, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Enqueue("k1", []string{"http://n1"}); err != nil {
		t.Fatal(err)
	}
	if err := o.Close(); err != nil {
		t.Fatal(err)
	}

	sink.setDown("http://n1", false)
	o2, err := OpenOutbox(path, "v2", sink.send, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := o2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if st := o2.Stats(); st.Pending != 0 {
		t.Fatalf("stale-version intent replayed: %+v", st)
	}
}
