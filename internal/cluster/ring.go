// Package cluster turns a set of spurd daemons into one fault-tolerant
// service. It owns the placement function — a consistent-hash ring with
// virtual nodes that maps every content-addressed result key to an owner
// plus M−1 replicas — and the durable replication outbox that gets a
// freshly computed blob onto every replica even across crashes of the
// computing node.
//
// The membership model is deliberately static: a peer list is
// configuration, like the paper's fixed SPUR board count, not a gossip
// protocol. What is dynamic is *health* — peers die and come back — and
// the design burden sits entirely on the read/repair path: any node can
// answer any request (by proxying, by serving a replica, or in the worst
// case by recomputing, since every result is a pure function of its spec),
// and a node that lost blobs repairs them from its replica set before
// falling back to the simulator.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is how many virtual nodes each peer contributes to the
// ring. 64 keeps the per-peer share of the key space within a few percent
// of uniform for small fleets without making ring construction noticeable.
const DefaultVNodes = 64

// point is one virtual node: a position on the ring and the peer it maps
// to.
type point struct {
	pos  uint64
	peer string
}

// Ring is an immutable consistent-hash ring over a static peer list. It is
// safe for concurrent use.
type Ring struct {
	peers  []string // sorted, deduped
	vnodes int
	points []point // sorted by pos
}

// NewRing builds a ring over peers (deduped; order does not matter — two
// nodes given the same peer set in any order compute identical placement)
// with vnodes virtual nodes per peer (0 = DefaultVNodes).
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer name")
		}
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer")
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, vnodes: vnodes}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, p := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{pos: ringHash(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Hash collisions between virtual nodes are broken by peer name so
		// every ring over the same peer set is identical.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// ringHash maps a label to a ring position: the first 8 bytes of its
// SHA-256, big-endian. Result keys are themselves hex SHA-256 of the
// experiment spec, so hashing the key string again keeps placement uniform
// and independent of the key's own encoding.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Peers returns the ring's sorted peer list.
func (r *Ring) Peers() []string { return append([]string(nil), r.peers...) }

// VNodes returns the virtual-node count per peer.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the peer that owns key: the peer of the first virtual node
// at or clockwise of the key's ring position.
func (r *Ring) Owner(key string) string { return r.Replicas(key, 1)[0] }

// Replicas returns the n distinct peers responsible for key, owner first,
// walking the ring clockwise from the key's position. n is clamped to the
// peer count, so Replicas(key, 3) on a 2-peer ring returns both peers.
func (r *Ring) Replicas(key string, n int) []string {
	if n < 1 {
		n = 1
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	pos := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Owns reports whether peer is among the n replicas of key.
func (r *Ring) Owns(peer, key string, n int) bool {
	for _, p := range r.Replicas(key, n) {
		if p == peer {
			return true
		}
	}
	return false
}
