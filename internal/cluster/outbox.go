package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
)

// This file is the durable half of replication. A node that computes a
// result owes a copy to every other replica of the key; that debt must
// survive the node crashing between the store write and the pushes. The
// Outbox journals the intent (fsynced, before the computing handler
// returns), a background sender retries each (key, replica) delivery until
// the replica acknowledges, and deliveries are journaled as they land so a
// restarted node resumes exactly the pushes it still owes. The blob bytes
// themselves are not journaled twice — they already sit, crash-safe, in
// the local result store, and the send callback rereads them.

// outboxJournalKind is the journal.Header.Kind of a replication outbox.
const outboxJournalKind = "spurd-outbox"

// outboxRecord is one journal entry: a replication intent or a delivery.
type outboxRecord struct {
	// Op is "enq" (result stored locally, copies owed to Peers) or "sent"
	// (Peer acknowledged the blob).
	Op string `json:"op"`
	// Key is the blob's content address in the result store.
	Key string `json:"key"`
	// Peers are the replicas owed a copy (enq records only).
	Peers []string `json:"peers,omitempty"`
	// Peer is the replica that acknowledged (sent records only).
	Peer string `json:"peer,omitempty"`
}

// Outbox is a durable at-least-once replication queue. It is safe for
// concurrent use; the background sender is its only goroutine.
type Outbox struct {
	send func(peer, key string) error
	logf func(string, ...any)
	// now and newTimer are the sender's clock, injectable so backoff tests
	// step deterministically instead of sleeping. Set before the sender
	// starts, never after.
	now      func() time.Time
	newTimer func(time.Duration) *time.Timer

	mu         sync.Mutex
	w          *journal.Writer            // guarded by mu: nil for a memory-only outbox
	pending    map[string]map[string]bool // guarded by mu: key -> replicas still owed
	enqueuedAt map[string]time.Time       // guarded by mu: when each owed key was first seen

	enqueued  atomic.Uint64
	delivered atomic.Uint64
	failed    atomic.Uint64

	wake      chan struct{}
	stop      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// OpenOutbox opens (or creates) the replication outbox journaled at path
// and starts its background sender. send pushes one blob to one peer and
// returns nil only when the peer has acknowledged it. An empty path keeps
// the queue in memory only (undelivered pushes die with the process —
// tests and memory-only stores). A journal written by a different code
// version is set aside (path+".stale"): its keys address a store keyed by
// that version, not this one.
func OpenOutbox(path, version string, send func(peer, key string) error, logf func(string, ...any)) (*Outbox, error) {
	return openOutboxWith(path, version, send, logf, time.Now, time.NewTimer)
}

// openOutboxWith is OpenOutbox with an injected clock and retry timer, so
// the sustained-failure backoff schedule is testable without real sleeps.
func openOutboxWith(path, version string, send func(peer, key string) error, logf func(string, ...any), now func() time.Time, newTimer func(time.Duration) *time.Timer) (*Outbox, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	o := &Outbox{
		send:       send,
		logf:       logf,
		now:        now,
		newTimer:   newTimer,
		pending:    map[string]map[string]bool{},
		enqueuedAt: map[string]time.Time{},
		wake:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if path != "" {
		w, pending, err := openOutboxJournal(path, version, logf)
		if err != nil {
			return nil, err
		}
		o.w = w
		o.pending = pending
		// Replayed debts carry no timestamp in the journal; their age is
		// measured from this recovery.
		for k := range pending {
			o.enqueuedAt[k] = now()
		}
	}
	go o.sender()
	if len(o.pending) > 0 {
		o.notify()
	}
	return o, nil
}

// openOutboxJournal creates or replays the journal at path, returning the
// writer and the owed deliveries it replayed. It builds the pending map
// locally rather than writing Outbox fields: the caller merges the result
// in before the outbox is published to any other goroutine.
func openOutboxJournal(path, version string, logf func(string, ...any)) (*journal.Writer, map[string]map[string]bool, error) {
	hdr := journal.Header{Kind: outboxJournalKind, Version: version}
	pending := map[string]map[string]bool{}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		w, err := journal.Create(path, hdr)
		return w, pending, err
	}
	rep, err := journal.Replay(path)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: outbox %s: %w", path, err)
	}
	if rep.Header.Kind != outboxJournalKind {
		return nil, nil, fmt.Errorf("cluster: %s is a %q journal, not an outbox", path, rep.Header.Kind)
	}
	if rep.Header.Version != version {
		logf("cluster: outbox %s was written by version %q (this is %q); setting it aside", path, rep.Header.Version, version)
		if err := os.Rename(path, path+".stale"); err != nil {
			return nil, nil, err
		}
		w, err := journal.Create(path, hdr)
		return w, pending, err
	}
	for i, b := range rep.Entries {
		var r outboxRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, nil, fmt.Errorf("cluster: outbox %s record %d: %w", path, i, err)
		}
		switch r.Op {
		case "enq":
			set := pending[r.Key]
			if set == nil {
				set = map[string]bool{}
				pending[r.Key] = set
			}
			for _, p := range r.Peers {
				set[p] = true
			}
		case "sent":
			if set := pending[r.Key]; set != nil {
				delete(set, r.Peer)
				if len(set) == 0 {
					delete(pending, r.Key)
				}
			}
		default:
			return nil, nil, fmt.Errorf("cluster: outbox %s record %d: unknown op %q", path, i, r.Op)
		}
	}
	w, _, err := journal.Open(path)
	return w, pending, err
}

// Enqueue records that key's blob is owed to peers and wakes the sender.
// The intent is fsynced before Enqueue returns: once it does, the copies
// will land even if this process dies immediately after.
func (o *Outbox) Enqueue(key string, peers []string) error {
	if len(peers) == 0 {
		return nil
	}
	o.mu.Lock()
	if o.w != nil {
		b, err := json.Marshal(outboxRecord{Op: "enq", Key: key, Peers: peers})
		if err != nil {
			o.mu.Unlock()
			return err
		}
		if err := o.w.Append(b); err != nil {
			o.mu.Unlock()
			return err
		}
	}
	set := o.pending[key]
	if set == nil {
		set = map[string]bool{}
		o.pending[key] = set
	}
	if _, ok := o.enqueuedAt[key]; !ok {
		o.enqueuedAt[key] = o.now()
	}
	for _, p := range peers {
		set[p] = true
	}
	o.mu.Unlock()
	o.enqueued.Add(1)
	o.notify()
	return nil
}

// notify wakes the sender without blocking (a full wake channel means a
// wake-up is already queued).
func (o *Outbox) notify() {
	select {
	case o.wake <- struct{}{}:
	default:
	}
}

// sender is the background delivery loop: drain everything pending, then
// sleep until woken or, while deliveries keep failing (a replica is down),
// until a capped exponential retry timer fires.
func (o *Outbox) sender() {
	defer close(o.done)
	backoff := time.Duration(0)
	for {
		var timer <-chan time.Time
		var t *time.Timer
		if backoff > 0 {
			t = o.newTimer(backoff)
			timer = t.C
		}
		select {
		case <-o.stop:
			if t != nil {
				t.Stop()
			}
			return
		case <-o.wake:
			if t != nil {
				t.Stop()
			}
		case <-timer:
		}
		if o.drain() {
			backoff = 0
			continue
		}
		// Something is still owed and its replica is unreachable; retry
		// on a capped exponential schedule.
		if backoff == 0 {
			backoff = 250 * time.Millisecond
		} else if backoff < 10*time.Second {
			backoff *= 2
		}
	}
}

// drain attempts every pending delivery once, in sorted order (determinism
// of attempt order makes drills reproducible). It reports whether the
// queue is empty afterwards.
func (o *Outbox) drain() bool {
	type pair struct{ key, peer string }
	o.mu.Lock()
	var work []pair
	for k, set := range o.pending {
		for p := range set {
			work = append(work, pair{k, p})
		}
	}
	o.mu.Unlock()
	sort.Slice(work, func(i, j int) bool {
		if work[i].key != work[j].key {
			return work[i].key < work[j].key
		}
		return work[i].peer < work[j].peer
	})
	for _, w := range work {
		select {
		case <-o.stop:
			return false
		default:
		}
		if err := o.send(w.peer, w.key); err != nil {
			o.failed.Add(1)
			o.logf("cluster: replicating %.12s to %s: %v", w.key, w.peer, err)
			continue
		}
		o.settle(w.key, w.peer)
	}
	o.mu.Lock()
	empty := len(o.pending) == 0
	o.mu.Unlock()
	return empty
}

// settle journals and forgets one acknowledged delivery.
func (o *Outbox) settle(key, peer string) {
	o.mu.Lock()
	if o.w != nil {
		if b, err := json.Marshal(outboxRecord{Op: "sent", Key: key, Peer: peer}); err == nil {
			if jerr := o.w.Append(b); jerr != nil {
				// The copy is delivered; worst case a restart re-pushes it
				// and the replica's idempotent Put absorbs the duplicate.
				o.logf("cluster: journaling delivery of %.12s to %s: %v", key, peer, jerr)
			}
		}
	}
	if set := o.pending[key]; set != nil {
		delete(set, peer)
		if len(set) == 0 {
			delete(o.pending, key)
			delete(o.enqueuedAt, key)
		}
	}
	o.mu.Unlock()
	o.delivered.Add(1)
}

// Stats snapshots the outbox for /healthz.
func (o *Outbox) Stats() Stats {
	o.mu.Lock()
	pending := 0
	for _, set := range o.pending {
		pending += len(set)
	}
	var oldest time.Time
	for _, at := range o.enqueuedAt {
		if oldest.IsZero() || at.Before(oldest) {
			oldest = at
		}
	}
	o.mu.Unlock()
	var age float64
	if !oldest.IsZero() {
		age = o.now().Sub(oldest).Seconds()
	}
	return Stats{
		Enqueued:     o.enqueued.Load(),
		Delivered:    o.delivered.Load(),
		Failed:       o.failed.Load(),
		Pending:      pending,
		OldestAgeSec: age,
	}
}

// Flush blocks until the outbox is empty or the deadline passes, polling
// the pending set. It is a test and drain helper, not a delivery
// guarantee — an unreachable replica keeps the queue non-empty.
func (o *Outbox) Flush(deadline time.Time) bool {
	for {
		o.mu.Lock()
		empty := len(o.pending) == 0
		o.mu.Unlock()
		if empty {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		o.notify()
		time.Sleep(10 * time.Millisecond)
	}
}

// Close stops the sender and closes the journal. Undelivered intents stay
// journaled for the next process. It is idempotent.
func (o *Outbox) Close() error {
	var err error
	o.closeOnce.Do(func() {
		close(o.stop)
		<-o.done
		o.mu.Lock()
		defer o.mu.Unlock()
		if o.w != nil {
			err = o.w.Close()
		}
	})
	return err
}
