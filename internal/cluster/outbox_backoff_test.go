package cluster

import (
	"sync"
	"testing"
	"time"
)

// TestOutboxBackoffSchedule pins the sender's retry schedule under
// sustained delivery failure with an injected timer: delays double from
// 250 ms, and a successful drain resets the ladder. No real sleeping — the
// fake timers fire immediately and the test reads the requested durations.
func TestOutboxBackoffSchedule(t *testing.T) {
	sink := newFakeSink()
	sink.setDown("http://n1", true)

	durations := make(chan time.Duration, 1024)
	newTimer := func(d time.Duration) *time.Timer {
		durations <- d
		return time.NewTimer(0) // fire immediately: the schedule, not the wait, is under test
	}
	o, err := openOutboxWith("", "v", sink.send, t.Logf, time.Now, newTimer)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := o.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := o.Enqueue("k1", []string{"http://n1"}); err != nil {
		t.Fatal(err)
	}

	want := []time.Duration{
		250 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
		2 * time.Second,
		4 * time.Second,
		8 * time.Second,
		16 * time.Second, // ladder top: 8 s is still under the 10 s cap check
		16 * time.Second, // and then it stays put
	}
	for i, w := range want {
		select {
		case got := <-durations:
			if got != w {
				t.Fatalf("backoff %d = %v, want %v", i, got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for backoff %d", i)
		}
	}

	// Heal the peer; the next (immediately-firing) retry drains the queue.
	sink.setDown("http://n1", false)
	if !o.Flush(time.Now().Add(5 * time.Second)) {
		t.Fatal("healed outbox did not drain")
	}
	for len(durations) > 0 {
		<-durations
	}

	// A fresh failure starts the ladder over at 250 ms, proving the reset.
	sink.setDown("http://n1", true)
	if err := o.Enqueue("k2", []string{"http://n1"}); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-durations:
		if got != 250*time.Millisecond {
			t.Fatalf("post-recovery backoff = %v, want 250ms", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for post-recovery backoff")
	}
	sink.setDown("http://n1", false)
	if !o.Flush(time.Now().Add(5 * time.Second)) {
		t.Fatal("outbox did not drain at test end")
	}
}

// TestOutboxStatsOldestAge drives the oldest-pending-age gauge with an
// injected clock: it tracks the first still-owed enqueue, not the latest,
// and drops to zero once the queue drains.
func TestOutboxStatsOldestAge(t *testing.T) {
	sink := newFakeSink()
	sink.setDown("http://n1", true)

	var mu sync.Mutex
	cur := time.Unix(1000, 0)
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return cur
	}
	advance := func(d time.Duration) {
		mu.Lock()
		cur = cur.Add(d)
		mu.Unlock()
	}

	o, err := openOutboxWith("", "v", sink.send, t.Logf, now, time.NewTimer)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := o.Close(); err != nil {
			t.Error(err)
		}
	}()

	if got := o.Stats().OldestAgeSec; got != 0 {
		t.Fatalf("empty outbox age = %v, want 0", got)
	}
	if err := o.Enqueue("k1", []string{"http://n1"}); err != nil {
		t.Fatal(err)
	}
	advance(30 * time.Second)
	if err := o.Enqueue("k2", []string{"http://n1"}); err != nil {
		t.Fatal(err)
	}
	s := o.Stats()
	if s.Pending != 2 {
		t.Fatalf("pending = %d, want 2", s.Pending)
	}
	if s.OldestAgeSec != 30 {
		t.Fatalf("oldest age = %v, want 30 (k1's, not k2's)", s.OldestAgeSec)
	}

	sink.setDown("http://n1", false)
	if !o.Flush(time.Now().Add(5 * time.Second)) {
		t.Fatal("outbox did not drain")
	}
	if got := o.Stats().OldestAgeSec; got != 0 {
		t.Fatalf("drained outbox age = %v, want 0", got)
	}
}
