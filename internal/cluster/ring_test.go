package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingPlacementIsDeterministicAndOrderIndependent(t *testing.T) {
	a, err := NewRing([]string{"http://n1", "http://n2", "http://n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://n3", "http://n1", "http://n2", "http://n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		ra, rb := a.Replicas(key, 2), b.Replicas(key, 2)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("peer order changed placement for %s: %v vs %v", key, ra, rb)
		}
		if ra[0] != a.Owner(key) {
			t.Fatalf("Replicas()[0] != Owner() for %s", key)
		}
	}
}

func TestRingReplicasAreDistinctAndClamped(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i)
		reps := r.Replicas(key, 2)
		if len(reps) != 2 || reps[0] == reps[1] {
			t.Fatalf("replicas of %s not 2 distinct peers: %v", key, reps)
		}
		all := r.Replicas(key, 99)
		if len(all) != 3 {
			t.Fatalf("clamped replicas of %s = %v, want all 3 peers", key, all)
		}
		if !r.Owns(reps[0], key, 2) || !r.Owns(reps[1], key, 2) {
			t.Fatalf("Owns disagrees with Replicas for %s", key)
		}
		for _, p := range []string{"a", "b", "c"} {
			if p != reps[0] && p != reps[1] && r.Owns(p, key, 2) {
				t.Fatalf("Owns(%s) true but not a replica of %s", p, key)
			}
		}
	}
}

// TestRingBalance checks virtual nodes spread ownership: with 3 peers no
// peer should own a wildly disproportionate share of keys.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for p, c := range counts {
		if c < n/6 || c > n/2+n/10 {
			t.Errorf("peer %s owns %d of %d keys — ring badly unbalanced: %v", p, c, n, counts)
		}
	}
}

func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Error("empty peer name accepted")
	}
}
