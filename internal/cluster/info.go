package cluster

// Info is the GET /v1/cluster response: one node's view of the fleet.
type Info struct {
	// Self is this node's advertised base URL; Version its code version.
	Self    string `json:"self"`
	Version string `json:"version"`
	// Replication is the replica count M every key is stored under;
	// VNodes the virtual nodes per peer on the placement ring.
	Replication int `json:"replication"`
	VNodes      int `json:"vnodes"`
	// Peers is the full static membership, sorted, with live health: the
	// node probes every peer's /healthz when answering.
	Peers []PeerHealth `json:"peers"`
}

// PeerHealth is one peer's probed state inside Info.
type PeerHealth struct {
	// URL is the peer's advertised base URL.
	URL string `json:"url"`
	// Status is "self" for the answering node, "ok" for a peer that
	// answered its health probe, "down" otherwise.
	Status string `json:"status"`
	// Err carries the probe failure for "down" peers.
	Err string `json:"err,omitempty"`
}

// Stats snapshots the replication outbox for /healthz.
type Stats struct {
	// Enqueued counts replication intents journaled this process;
	// Delivered counts blob pushes acknowledged by a replica (including
	// deliveries owed by a previous process).
	Enqueued  uint64 `json:"enqueued"`
	Delivered uint64 `json:"delivered"`
	// Failed counts delivery attempts that errored (the intent stays
	// queued and is retried); Pending is the current undelivered
	// (key, replica) pair count — the outbox depth.
	Failed  uint64 `json:"failed"`
	Pending int    `json:"pending"`
	// OldestAgeSec is how long the oldest still-undelivered intent has been
	// waiting, in seconds (0 when the queue is empty). A growing value under
	// a healthy network is the first sign of a stuck replica.
	OldestAgeSec float64 `json:"oldest_age_sec,omitempty"`
}
