package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

var testHeader = Header{Kind: "test", SpecKey: "abc123", Version: "4"}

func writeRecords(t *testing.T, path string, records ...string) {
	t.Helper()
	w, err := Create(path, testHeader)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, r := range records {
		if err := w.Append([]byte(r)); err != nil {
			t.Fatalf("Append(%q): %v", r, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	writeRecords(t, path, "one", "two", "three")

	rep, err := Replay(path)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Header != testHeader {
		t.Fatalf("header = %+v, want %+v", rep.Header, testHeader)
	}
	if rep.Torn {
		t.Fatal("clean journal reported torn")
	}
	want := []string{"one", "two", "three"}
	if len(rep.Entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(rep.Entries), len(want))
	}
	for i, w := range want {
		if string(rep.Entries[i]) != w {
			t.Fatalf("entry %d = %q, want %q", i, rep.Entries[i], w)
		}
	}
}

func TestJournalCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	writeRecords(t, path)
	if _, err := Create(path, testHeader); err == nil {
		t.Fatal("Create over an existing journal succeeded")
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	for name, chop := range map[string]int{
		"mid-frame-header": 3,
		"mid-payload":      1,
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name)
			writeRecords(t, path, "alpha", "beta")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-chop], 0o644); err != nil {
				t.Fatal(err)
			}
			rep, err := Replay(path)
			if err != nil {
				t.Fatalf("Replay of torn journal: %v", err)
			}
			if !rep.Torn {
				t.Fatal("torn journal not reported torn")
			}
			if len(rep.Entries) != 1 || string(rep.Entries[0]) != "alpha" {
				t.Fatalf("entries = %q, want just alpha", rep.Entries)
			}
		})
	}
}

func TestJournalCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	writeRecords(t, path, "alpha", "beta")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the last record's payload: CRC catches it, replay
	// keeps everything before it.
	if err := faultinject.FlipBit(path, (info.Size()-2)*8); err != nil {
		t.Fatal(err)
	}
	rep, err := Replay(path)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !rep.Torn || len(rep.Entries) != 1 || string(rep.Entries[0]) != "alpha" {
		t.Fatalf("torn=%v entries=%q, want torn with just alpha", rep.Torn, rep.Entries)
	}
}

func TestJournalOpenResumesAfterTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	writeRecords(t, path, "alpha", "beta")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	w, rep, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !rep.Torn || len(rep.Entries) != 1 {
		t.Fatalf("torn=%v entries=%d, want torn with one entry", rep.Torn, len(rep.Entries))
	}
	if err := w.Append([]byte("gamma")); err != nil {
		t.Fatalf("Append after resume: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rep, err = Replay(path)
	if err != nil {
		t.Fatalf("Replay after resume: %v", err)
	}
	if rep.Torn {
		t.Fatal("resumed journal still torn")
	}
	got := fmt.Sprintf("%s", rep.Entries)
	if got != "[alpha gamma]" {
		t.Fatalf("entries = %s, want [alpha gamma]", got)
	}
}

func TestJournalRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	notJournal := filepath.Join(dir, "not")
	if err := os.WriteFile(notJournal, []byte("hello world, definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(notJournal); err == nil {
		t.Fatal("Replay of a non-journal succeeded")
	}

	// A corrupt header frame is an error, not a torn tail: provenance is
	// unreadable, so nothing can be trusted.
	path := filepath.Join(dir, "j")
	writeRecords(t, path, "alpha")
	if err := faultinject.FlipBit(path, int64(len(magic)+frameHeader)*8); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path); err == nil {
		t.Fatal("Replay with corrupt header succeeded")
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append([]byte("x")); err == nil {
		t.Fatal("Append to closed journal succeeded")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic replace: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("content = %q, want v2", got)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestWriteFileAtomicCrashPoints(t *testing.T) {
	exits := 0
	prev := faultinject.SetCrashExit(func(int) { exits++ })
	defer faultinject.SetCrashExit(prev)
	defer faultinject.DisarmCrash()

	// pre-rename: the "crash" (a no-op exit hook) fires before the rename;
	// execution continues, so the file still lands — what matters is that
	// the point is hit between temp-file close and rename.
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	faultinject.ArmCrash(faultinject.CrashPreRename, 1)
	if err := WriteFileAtomic(path, []byte("x"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if exits != 1 {
		t.Fatalf("pre-rename crash point hit %d times, want 1", exits)
	}

	faultinject.ArmCrash(faultinject.CrashPreDirSync, 1)
	if err := WriteFileAtomic(path, []byte("y"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if exits != 2 {
		t.Fatalf("pre-dir-sync crash point hit %d times, want 2", exits)
	}
}

func TestJournalAppendCrashPoint(t *testing.T) {
	exits := 0
	prev := faultinject.SetCrashExit(func(int) { exits++ })
	defer faultinject.SetCrashExit(prev)
	defer faultinject.DisarmCrash()

	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, testHeader)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	faultinject.ArmCrash(faultinject.CrashPostJournalAppend, 2)
	if err := w.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if exits != 0 {
		t.Fatal("crash fired on first append, want second")
	}
	if err := w.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if exits != 1 {
		t.Fatalf("crash point hit %d times after second append, want 1", exits)
	}
}
