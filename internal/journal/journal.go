// Package journal is the crash-only persistence substrate for the
// experiment pipeline: an append-only record log with full fsync
// discipline, CRC-framed entries, and torn-tail-tolerant replay.
//
// A journal file is a fixed magic, then a sequence of frames. Each frame is
// a little-endian uint32 payload length, a uint32 IEEE CRC-32 of the
// payload, and the payload bytes. Frame 0 is the JSON-encoded Header, which
// binds the journal to what produced it — a kind, the canonical spec hash
// of the experiment, and the code version — so resuming from the wrong
// journal fails loudly instead of silently mixing results across specs.
//
// Every Append syncs the file before returning: once Append returns, the
// record survives a SIGKILL. A crash mid-Append leaves a torn final frame,
// which Replay detects (short frame or CRC mismatch) and drops; Open then
// truncates the tail so appends continue from the last intact record.
//
// The package also provides WriteFileAtomic, the one true crash-safe
// file-replace sequence (O_EXCL temp, write, fsync, rename, parent
// directory fsync) used by the result store, with faultinject crash points
// at each durability boundary so drills can kill a real process inside the
// windows the sequence exists to protect.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/faultinject"
)

// magic opens every journal file; replaying anything else fails immediately.
const magic = "SPURJRL1"

// frameHeader is the per-frame overhead: uint32 length + uint32 CRC.
const frameHeader = 8

// maxFrame bounds a single payload so a corrupt length field cannot make
// replay attempt a multi-gigabyte allocation.
const maxFrame = 64 << 20

// Header is frame 0 of every journal: what produced it. Replay returns it
// verbatim; resuming callers compare it against their own spec and refuse
// mismatches.
type Header struct {
	// Kind names the journal family ("memsweep", "table41", "spurd-jobs").
	Kind string `json:"kind"`
	// SpecKey is the canonical spec hash (an expstore key) of the
	// experiment the journal checkpoints, when there is one.
	SpecKey string `json:"spec_key,omitempty"`
	// Version is the code version that wrote the journal.
	Version string `json:"version"`
}

// Writer appends CRC-framed, fsynced records to a journal file. It is safe
// for concurrent use.
type Writer struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// Create creates a fresh journal at path (which must not exist), writes the
// header frame, and syncs both the file and its parent directory so the
// journal itself survives a crash.
func Create(path string, h Header) (*Writer, error) {
	hb, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("journal: encoding header: %w", err)
	}
	if err := faultinject.CheckDisk(faultinject.DiskCreate, path); err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create: %w", err)
	}
	w := &Writer{f: f, path: path}
	if _, err := faultWrite(f, []byte(magic)); err != nil {
		return nil, w.createFail(err)
	}
	if err := writeFrame(f, hb); err != nil {
		return nil, w.createFail(err)
	}
	if err := faultSync(f); err != nil {
		return nil, w.createFail(err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return nil, w.createFail(err)
	}
	return w, nil
}

// createFail abandons a half-created journal: close, remove, wrap.
func (w *Writer) createFail(err error) error {
	_ = w.f.Close()       // already failing; best-effort cleanup
	_ = os.Remove(w.path) // best-effort cleanup on the error path
	w.f = nil
	return fmt.Errorf("journal: create %s: %w", w.path, err)
}

// Open replays the journal at path, truncates any torn tail, and returns a
// Writer positioned to append after the last intact record plus everything
// the replay recovered.
func Open(path string) (*Writer, *Replayed, error) {
	rep, err := Replay(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	if rep.Torn {
		if err := f.Truncate(rep.Valid); err != nil {
			_ = f.Close() // already failing; best-effort cleanup
			return nil, nil, fmt.Errorf("journal: truncating torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // already failing; best-effort cleanup
			return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
		}
	}
	if _, err := f.Seek(rep.Valid, 0); err != nil {
		_ = f.Close() // already failing; best-effort cleanup
		return nil, nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	return &Writer{f: f, path: path}, rep, nil
}

// Append writes one record frame and syncs the file. When Append returns
// nil the record is durable: a SIGKILL immediately after loses nothing.
// When the write or the fsync fails (a full or dying disk), Append rolls
// the file back to its pre-append length so the journal holds exactly the
// records it held before, and the writer stays usable for a later retry;
// if the rollback itself fails the writer closes itself, and every later
// Append fails loudly rather than appending after an untrusted fsync.
func (w *Writer) Append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("journal: append to closed journal %s", w.path)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("journal: record of %d bytes exceeds frame limit", len(payload))
	}
	off, err := w.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return fmt.Errorf("journal: append to %s: %w", w.path, err)
	}
	if err := writeFrame(w.f, payload); err != nil {
		return w.revert(off, err)
	}
	if err := faultSync(w.f); err != nil {
		return w.revert(off, err)
	}
	faultinject.Crash(faultinject.CrashPostJournalAppend)
	return nil
}

// revert undoes a failed append: truncate back to the pre-append offset and
// sync, leaving state untouched. The rollback uses the real file operations,
// not the fault seam — it is the recovery path the seam exists to exercise.
func (w *Writer) revert(off int64, cause error) error {
	if w.f.Truncate(off) == nil && w.f.Sync() == nil {
		if _, err := w.f.Seek(off, 0); err == nil {
			return fmt.Errorf("journal: append to %s (rolled back): %w", w.path, cause)
		}
	}
	_ = w.f.Close() // poisoned: the rollback failed too; best-effort close
	w.f = nil
	return fmt.Errorf("journal: append to %s failed and rollback failed, journal closed: %w", w.path, cause)
}

// Close syncs and closes the journal. Closing twice is an error-free no-op.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	f := w.f
	w.f = nil
	if err := f.Sync(); err != nil {
		_ = f.Close() // already failing; best-effort cleanup
		return fmt.Errorf("journal: close %s: %w", w.path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close %s: %w", w.path, err)
	}
	return nil
}

// Path returns the journal's file path.
func (w *Writer) Path() string { return w.path }

// Replayed is the result of replaying a journal.
type Replayed struct {
	// Header is frame 0.
	Header Header
	// Entries are the intact record payloads in append order.
	Entries [][]byte
	// Torn reports that a trailing partial or corrupt frame was dropped —
	// the signature of a crash mid-append.
	Torn bool
	// Valid is the byte length of the intact prefix (where Open truncates
	// and resumes appending).
	Valid int64
}

// Replay reads the journal at path, returning every intact record. A
// malformed magic or header is an error (this is not a journal, or its
// provenance is unreadable); a torn or corrupt *tail* is expected crash
// debris and is reported via Torn, not an error.
func Replay(path string) (*Replayed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: replay: %w", err)
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("journal: %s is not a journal (bad magic)", path)
	}
	off := int64(len(magic))
	hb, next, ok := readFrame(data, off)
	if !ok {
		return nil, fmt.Errorf("journal: %s: corrupt header frame", path)
	}
	rep := &Replayed{}
	if err := json.Unmarshal(hb, &rep.Header); err != nil {
		return nil, fmt.Errorf("journal: %s: decoding header: %w", path, err)
	}
	off = next
	rep.Valid = off
	for off < int64(len(data)) {
		payload, next, ok := readFrame(data, off)
		if !ok {
			rep.Torn = true
			break
		}
		rep.Entries = append(rep.Entries, payload)
		off = next
		rep.Valid = off
	}
	return rep, nil
}

// writeFrame writes one length+CRC+payload frame.
func writeFrame(f *os.File, payload []byte) error {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := faultWrite(f, hdr[:]); err != nil {
		return err
	}
	_, err := faultWrite(f, payload)
	return err
}

// faultWrite writes b to f through the disk fault seam: an injected short
// write lands only its prefix — real torn bytes on a real file, exactly the
// debris a filling disk leaves — before returning the injected errno.
func faultWrite(f *os.File, b []byte) (int, error) {
	n, ferr := faultinject.CheckDiskWrite(f.Name(), len(b))
	if ferr == nil {
		return f.Write(b)
	}
	if n > 0 {
		if m, werr := f.Write(b[:n]); werr != nil {
			return m, werr
		}
	}
	return n, ferr
}

// faultSync fsyncs f through the disk fault seam.
func faultSync(f *os.File) error {
	if err := faultinject.CheckDisk(faultinject.DiskSync, f.Name()); err != nil {
		return err
	}
	return f.Sync()
}

// readFrame decodes the frame at off, returning the payload, the offset of
// the next frame, and whether the frame was intact (fully present with a
// matching CRC).
func readFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+frameHeader > int64(len(data)) {
		return nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if n > maxFrame || off+frameHeader+n > int64(len(data)) {
		return nil, 0, false
	}
	payload = data[off+frameHeader : off+frameHeader+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, off + frameHeader + n, true
}

// WriteFileAtomic replaces path with data crash-safely: write to an O_EXCL
// temp file next to it, fsync, close, rename over path, then fsync the
// parent directory. A crash at any point leaves either the old content, the
// new content, or a stray .tmp file — never a torn destination. Concurrent
// writers of identical bytes are benign (last rename wins).
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp, err := openExclTemp(path, perm)
	if err != nil {
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	if _, err := faultWrite(tmp, data); err != nil {
		_ = tmp.Close()           // already failing; best-effort cleanup
		_ = os.Remove(tmp.Name()) // best-effort cleanup on the error path
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	if err := faultSync(tmp); err != nil {
		_ = tmp.Close()           // already failing; best-effort cleanup
		_ = os.Remove(tmp.Name()) // best-effort cleanup on the error path
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup on the error path
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	faultinject.Crash(faultinject.CrashPreRename)
	if err := faultinject.CheckDisk(faultinject.DiskRename, path); err != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup on the error path
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name()) // best-effort cleanup on the error path
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	faultinject.Crash(faultinject.CrashPreDirSync)
	if err := syncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("journal: atomic write %s: %w", path, err)
	}
	return nil
}

// openExclTemp opens a fresh temp file next to path with O_EXCL, retrying
// with a numeric suffix if a concurrent writer holds the first name.
func openExclTemp(path string, perm os.FileMode) (*os.File, error) {
	if err := faultinject.CheckDisk(faultinject.DiskCreate, path); err != nil {
		return nil, err
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s.tmp%d", path, i)
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, perm)
		if os.IsExist(err) && i < 64 {
			continue
		}
		return f, err
	}
}

// syncDir fsyncs a directory so a just-created or just-renamed name in it
// survives a crash.
func syncDir(dir string) error {
	if err := faultinject.CheckDisk(faultinject.DiskSync, dir); err != nil {
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		_ = d.Close() // already failing; best-effort cleanup
		return err
	}
	return d.Close()
}

// SweepTemps removes orphaned atomic-write temp files under dir (recursing
// into subdirectories): the "<name>.tmp<N>" debris a crash between
// openExclTemp and rename leaves behind, which otherwise accumulates
// forever. Call it at startup before any writer is live — sweeping a temp
// file that belongs to an in-flight WriteFileAtomic makes that write fail
// loudly at rename with the destination untouched, which is safe but noisy.
// It returns how many files it removed; removal errors are joined but do
// not stop the sweep.
func SweepTemps(dir string) (removed int, err error) {
	var errs []error
	walkErr := filepath.WalkDir(dir, func(path string, d fs.DirEntry, werr error) error {
		if werr != nil {
			// A directory that vanished mid-walk is not sweep debris.
			errs = append(errs, werr)
			return nil
		}
		if d.IsDir() || !isTempName(d.Name()) {
			return nil
		}
		if rerr := os.Remove(path); rerr != nil {
			errs = append(errs, rerr)
			return nil
		}
		removed++
		return nil
	})
	if walkErr != nil {
		errs = append(errs, walkErr)
	}
	return removed, errors.Join(errs...)
}

// isTempName reports whether name matches openExclTemp's "<base>.tmp<N>"
// pattern. The digit check keeps the sweep from eating a user file that
// merely ends in ".tmp-something".
func isTempName(name string) bool {
	i := strings.LastIndex(name, ".tmp")
	if i < 0 {
		return false
	}
	digits := name[i+len(".tmp"):]
	if digits == "" {
		return false
	}
	for _, c := range digits {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
