package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/faultinject"
)

// newJournal creates a journal with one record in it and returns the writer.
func newJournal(t *testing.T, dir string) *Writer {
	t.Helper()
	w, err := Create(filepath.Join(dir, "j.journal"), Header{Kind: "test", Version: "v"})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("rec-0")); err != nil {
		t.Fatal(err)
	}
	return w
}

// replayPayloads replays the journal and returns its record payloads.
func replayPayloads(t *testing.T, path string) []string {
	t.Helper()
	rep, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range rep.Entries {
		out = append(out, string(e))
	}
	return out
}

func TestAppendShortWriteRollsBack(t *testing.T) {
	dir := t.TempDir()
	w := newJournal(t, dir)
	defer func() { _ = w.Close() }()

	// The next journal write lands only 3 bytes before ENOSPC: a torn
	// frame on disk. Append must report the error, roll the file back,
	// and leave the writer usable.
	faultinject.ArmDisk(faultinject.NewDisk(faultinject.DiskRule{
		Op: faultinject.DiskWrite, Path: "j.journal", Err: "enospc", Every: 1, Max: 1, Partial: 3,
	}))
	defer faultinject.DisarmDisk()

	err := w.Append([]byte("rec-1"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append under ENOSPC: %v", err)
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("append error should report the rollback: %v", err)
	}
	if got := replayPayloads(t, w.Path()); len(got) != 1 || got[0] != "rec-0" {
		t.Fatalf("journal after failed append = %v, want [rec-0]", got)
	}
	// The writer recovered: the retry goes through and replay sees both.
	if err := w.Append([]byte("rec-1")); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if got := replayPayloads(t, w.Path()); len(got) != 2 || got[1] != "rec-1" {
		t.Fatalf("journal after retry = %v", got)
	}
}

func TestAppendSyncFaultRollsBack(t *testing.T) {
	dir := t.TempDir()
	w := newJournal(t, dir)
	defer func() { _ = w.Close() }()

	faultinject.ArmDisk(faultinject.NewDisk(faultinject.DiskRule{
		Op: faultinject.DiskSync, Path: "j.journal", Every: 1, Max: 1,
	}))
	defer faultinject.DisarmDisk()

	if err := w.Append([]byte("rec-1")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("append under EIO fsync: %v", err)
	}
	if got := replayPayloads(t, w.Path()); len(got) != 1 {
		t.Fatalf("journal after failed fsync = %v, want [rec-0]", got)
	}
	if err := w.Append([]byte("rec-1")); err != nil {
		t.Fatalf("retry after fsync rollback: %v", err)
	}
}

func TestCreateFaultLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	faultinject.ArmDisk(faultinject.NewDisk(faultinject.DiskRule{
		Op: faultinject.DiskCreate, Err: "enospc", Every: 1, Max: 1,
	}))
	defer faultinject.DisarmDisk()

	path := filepath.Join(dir, "j.journal")
	if _, err := Create(path, Header{Kind: "t", Version: "v"}); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("create under ENOSPC: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("failed create left a file behind")
	}
}

// TestWriteFileAtomicFaults injects a fault at every durability boundary of
// the atomic-replace sequence and checks the contract each time: the
// destination keeps its old content (or, past the rename, the complete new
// content), and no temp debris survives the error path.
func TestWriteFileAtomicFaults(t *testing.T) {
	boundaries := []struct {
		name string
		rule faultinject.DiskRule
		// renamed reports the destination is allowed to hold the new
		// content: the fault fired after the rename.
		renamed bool
	}{
		{"create", faultinject.DiskRule{Op: faultinject.DiskCreate, Err: "enospc", Every: 1, Max: 1}, false},
		{"short-write", faultinject.DiskRule{Op: faultinject.DiskWrite, Err: "enospc", Every: 1, Max: 1, Partial: 2}, false},
		{"fsync", faultinject.DiskRule{Op: faultinject.DiskSync, Path: ".tmp", Every: 1, Max: 1}, false},
		{"rename", faultinject.DiskRule{Op: faultinject.DiskRename, Every: 1, Max: 1}, false},
		{"dir-sync", faultinject.DiskRule{Op: faultinject.DiskSync, Every: 2, Max: 1}, true},
	}
	for _, b := range boundaries {
		t.Run(b.name, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "blob.json")
			if err := WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
				t.Fatal(err)
			}
			faultinject.ArmDisk(faultinject.NewDisk(b.rule))
			defer faultinject.DisarmDisk()

			err := WriteFileAtomic(path, []byte("new"), 0o644)
			if err == nil {
				t.Fatal("injected fault did not surface")
			}
			got, rerr := os.ReadFile(path)
			if rerr != nil {
				t.Fatalf("destination unreadable after fault: %v", rerr)
			}
			want := "old"
			if b.renamed {
				want = "new"
			}
			if string(got) != want {
				t.Fatalf("destination = %q after %s fault, want %q", got, b.name, want)
			}
			ents, derr := os.ReadDir(dir)
			if derr != nil {
				t.Fatal(derr)
			}
			for _, e := range ents {
				if isTempName(e.Name()) {
					t.Fatalf("temp debris %s survived the %s error path", e.Name(), b.name)
				}
			}
		})
	}
}

// TestWriteFileAtomicDirSyncFiresOnDir pins that the second DiskSync of an
// atomic write is the parent-directory sync: an Every=2 rule matching all
// paths skips the temp file's fsync and fires on the directory itself.
func TestWriteFileAtomicDirSyncFiresOnDir(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.NewDisk(faultinject.DiskRule{Op: faultinject.DiskSync, Every: 2, Max: 1})
	faultinject.ArmDisk(in)
	defer faultinject.DisarmDisk()
	err := WriteFileAtomic(filepath.Join(dir, "x"), []byte("v"), 0o644)
	if err == nil {
		t.Fatal("dir-sync rule did not fire")
	}
	if lg := in.DiskLog(); len(lg) != 1 || lg[0].Path != dir {
		t.Fatalf("disk log = %+v, want one firing on %s", lg, dir)
	}
}

func TestSweepTemps(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	keep := []string{"blob.json", "j.journal", "x.tmp", "y.tmpz", "z.tmp1x"}
	sweep := []string{"blob.json.tmp0", "blob.json.tmp12", filepath.Join("sub", "a.tmp3")}
	for _, n := range append(append([]string{}, keep...), sweep...) {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := SweepTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(sweep) {
		t.Fatalf("removed %d, want %d", removed, len(sweep))
	}
	for _, n := range keep {
		if _, err := os.Stat(filepath.Join(dir, n)); err != nil {
			t.Fatalf("sweep ate %s: %v", n, err)
		}
	}
	for _, n := range sweep {
		if _, err := os.Stat(filepath.Join(dir, n)); !os.IsNotExist(err) {
			t.Fatalf("sweep left %s behind", n)
		}
	}
}

// TestSweepTempsAfterCrash stages the real crash: a planted kill between
// the temp file's fsync and its rename leaves a .tmp orphan on disk, and a
// restart's sweep removes it while the destination stays untouched.
func TestSweepTempsAfterCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob.json")
	if err := WriteFileAtomic(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}

	type crashed struct{}
	prev := faultinject.SetCrashExit(func(int) { panic(crashed{}) })
	defer faultinject.SetCrashExit(prev)
	faultinject.ArmCrash(faultinject.CrashPreRename, 1)
	defer faultinject.DisarmCrash()

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("planted crash did not fire")
			} else if _, ok := r.(crashed); !ok {
				panic(r)
			}
		}()
		_ = WriteFileAtomic(path, []byte("new"), 0o644)
	}()

	// The "process" died pre-rename: destination old, one orphan temp.
	if got, err := os.ReadFile(path); err != nil || string(got) != "old" {
		t.Fatalf("destination after crash = %q, %v", got, err)
	}
	orphans := 0
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if isTempName(e.Name()) {
			orphans++
		}
	}
	if orphans != 1 {
		t.Fatalf("crash left %d orphan temps, want 1", orphans)
	}

	removed, err := SweepTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("restart sweep removed %d, want 1", removed)
	}
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("destination after sweep = %q", got)
	}
}
