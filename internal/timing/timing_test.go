package timing

import (
	"math"
	"testing"
)

func TestDefaultMatchesPaperTables(t *testing.T) {
	p := Default()
	// Table 2.1.
	if p.ProcessorCycleNS != 150 || p.BackplaneCycleNS != 125 {
		t.Errorf("cycle times %v/%v", p.ProcessorCycleNS, p.BackplaneCycleNS)
	}
	if p.MemFirstWord != 3 || p.MemNextWord != 1 {
		t.Errorf("memory timing %d/%d", p.MemFirstWord, p.MemNextWord)
	}
	// Table 3.2.
	if p.FaultCycles != 1000 {
		t.Errorf("t_ds = %d, want 1000", p.FaultCycles)
	}
	if p.PageFlushCycles != 500 {
		t.Errorf("t_flush = %d, want 500", p.PageFlushCycles)
	}
	if p.DirtyMissCycles != 25 {
		t.Errorf("t_dm = %d, want 25", p.DirtyMissCycles)
	}
	if p.DirtyCheckCycles != 5 {
		t.Errorf("t_dc = %d, want 5", p.DirtyCheckCycles)
	}
}

func TestBlockFetchCycles(t *testing.T) {
	p := Default()
	// 32-byte block, 3 cycles to first word, 1 to each of the next 7.
	if got := p.BlockFetchCycles(); got != 10 {
		t.Errorf("BlockFetchCycles = %d, want 10", got)
	}
	if p.WriteBackCycles() != p.BlockFetchCycles() {
		t.Error("write-back should cost a block transfer")
	}
	if p.MissPenaltyCycles() != p.BlockFetchCycles() {
		t.Error("miss penalty should be the block fetch")
	}
}

func TestPageFlushEstimateConsistent(t *testing.T) {
	// The paper's 500-cycle t_flush: 128 checks (~1 cycle each, with two
	// instructions of loop overhead folded in), 10% flushed at ~10 cycles.
	p := Default()
	perBlock := 128*(p.FlushCheckCycles+2) + 13*p.FlushBlockCycles
	if perBlock < 400 || perBlock > 650 {
		t.Errorf("per-block flush components imply %d cycles, inconsistent with t_flush=%d",
			perBlock, p.PageFlushCycles)
	}
}

func TestSeconds(t *testing.T) {
	p := Default()
	got := p.Seconds(1e9)
	if math.Abs(got-150) > 1e-9 {
		t.Errorf("1e9 cycles = %v s, want 150", got)
	}
}

func TestMIPS(t *testing.T) {
	p := Default()
	if math.Abs(p.MIPS()-6.6666667) > 1e-3 {
		t.Errorf("MIPS = %v", p.MIPS())
	}
}
