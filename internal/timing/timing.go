// Package timing collects every cycle-count and latency parameter of the
// cost models: the machine configuration of Table 2.1, the measured time
// parameters of Table 3.2, and the pager costs the elapsed-time model needs.
//
// All times are in processor cycles unless stated otherwise. The prototype's
// processor cycle is 150 ns; because of noise problems the prototype ran at
// 1.5x the design cycle and with the instruction buffer disabled, landing at
// roughly 1.5 MIPS — the paper argues (and we assume) that the relative
// processor/I-O speed is a second-order effect, so the parameters below are
// inputs, not conclusions.
package timing

// Params is the full set of timing parameters.
type Params struct {
	// ProcessorCycleNS is the processor cycle time in nanoseconds
	// (Table 2.1: 150 ns).
	ProcessorCycleNS float64
	// BackplaneCycleNS is the bus cycle time (Table 2.1: 125 ns).
	BackplaneCycleNS float64

	// MemFirstWord is the memory latency to the first word of a block
	// (Table 2.1: 3 cycles); MemNextWord is per additional word (1 cycle).
	MemFirstWord int
	MemNextWord  int
	// WordsPerBlock is the block size in 32-bit words (32 B / 4 B = 8).
	WordsPerBlock int

	// HitCycles is the cost of a cache hit (the virtual cache's reason to
	// exist: one cycle, no translation).
	HitCycles int

	// PTECheckCycles is the cost to check a PTE resident in the cache
	// (3 cycles; with the ~2-cycle weighted miss penalty this yields the
	// paper's t_dc ≈ 5).
	PTECheckCycles int
	// L2WordCycles is the cost to read a wired second-level PTE directly
	// from memory.
	L2WordCycles int

	// FaultCycles is t_ds: the measured cost of a fault to the software
	// handler — switch to the kernel stack, read the CC status register,
	// decode the instruction, update the PTE (Table 3.2: ~1000 cycles;
	// the handler is untuned and the paper notes tuning it would not
	// change the conclusions).
	FaultCycles uint64
	// DirtyMissCycles is t_dm: refreshing a stale cached page dirty bit
	// by forcing a cache miss (Table 3.2: 25 cycles).
	DirtyMissCycles uint64
	// PageFlushCycles is t_flush: flushing a page with the hypothetical
	// tag-checking flush — 128 blocks to check, two instructions of loop
	// overhead, 90% of blocks at 1 cycle, 10% flushed at 10 cycles
	// (Table 3.2: ~500 cycles).
	PageFlushCycles uint64
	// DirtyCheckCycles is t_dc: checking the PTE dirty bit on a write hit
	// to a clean block (Table 3.2: ~5 cycles).
	DirtyCheckCycles uint64

	// FlushCheckCycles and FlushBlockCycles are the per-block components
	// behind PageFlushCycles, used when the simulator charges a flush by
	// its actual per-block work instead of the fixed estimate.
	FlushCheckCycles uint64
	FlushBlockCycles uint64

	// DaemonScanCycles is the pager's cost to examine one page.
	DaemonScanCycles uint64
	// ZeroFillCycles is the kernel's cost to zero a fresh 4 KB page.
	ZeroFillCycles uint64
	// PageOutCPUCycles is the CPU cost to queue a page for write-out (the
	// transfer itself is asynchronous).
	PageOutCPUCycles uint64
	// PageInStallCycles is the elapsed-time cost of a synchronous page-in
	// from the backing store when no other process can use the CPU. The
	// paper's machines paged over Sprite's network file system; its
	// elapsed times imply an effective cost well over 100 ms per page-in
	// under load (service plus queueing plus the work lost to the wait).
	// Page-in *counts* in this reproduction are at paper scale (the
	// footprints are unscaled), so the latency stays at real scale too,
	// which preserves the paper's elapsed-time proportions.
	PageInStallCycles uint64
	// PageInOverlapFactor is the fraction of the stall that still costs
	// elapsed time when other processes are runnable: a multiprogrammed
	// machine overlaps page waits with other work (WORKLOAD1's background
	// espresso hides most of the foreground's page-in time; SLC's single
	// process cannot hide any).
	PageInOverlapFactor float64
}

// Default returns the SPUR prototype parameters.
func Default() Params {
	return Params{
		ProcessorCycleNS: 150,
		BackplaneCycleNS: 125,
		MemFirstWord:     3,
		MemNextWord:      1,
		WordsPerBlock:    8,
		HitCycles:        1,
		PTECheckCycles:   3,
		L2WordCycles:     3,
		FaultCycles:      1000,
		DirtyMissCycles:  25,
		PageFlushCycles:  500,
		DirtyCheckCycles: 5,
		FlushCheckCycles: 1,
		FlushBlockCycles: 10,
		DaemonScanCycles: 30,
		ZeroFillCycles:   1100, // 1024 word stores plus loop overhead
		PageOutCPUCycles: 800,
		// ~27 ms of un-overlapped stall per page-in (Table 4.1's SLC
		// elapsed times at our CPU scale imply roughly this).
		PageInStallCycles:   180_000,
		PageInOverlapFactor: 0.15,
	}
}

// BlockFetchCycles is the bus occupancy to fetch one 32-byte block: first
// word plus seven successors (Table 2.1: 3 + 7x1 = 10 cycles). The derived
// quantities take pointer receivers: they run on every cache miss, and a
// value receiver would copy the whole parameter block per call.
func (p *Params) BlockFetchCycles() uint64 {
	return uint64(p.MemFirstWord + (p.WordsPerBlock-1)*p.MemNextWord)
}

// WriteBackCycles is the bus occupancy to write one block back.
func (p *Params) WriteBackCycles() uint64 { return p.BlockFetchCycles() }

// MissPenaltyCycles is the cost of a simple cache miss: fetch the block
// (translation is charged separately by the xlate unit).
func (p *Params) MissPenaltyCycles() uint64 { return p.BlockFetchCycles() }

// Seconds converts processor cycles to seconds.
func (p *Params) Seconds(cycles uint64) float64 {
	return float64(cycles) * p.ProcessorCycleNS * 1e-9
}

// MIPS returns the approximate native instruction rate implied by the cycle
// time, for reporting.
func (p *Params) MIPS() float64 { return 1e3 / p.ProcessorCycleNS }
