package proc

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/trace"
)

// countRunner emits n reads at a fixed address.
type countRunner struct {
	n    int
	addr addr.GVA
}

func (c *countRunner) Step() trace.Rec {
	c.n--
	return trace.Rec{Op: trace.OpRead, Addr: c.addr}
}
func (c *countRunner) Done() bool { return c.n <= 0 }

func TestNewSchedulerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero quantum")
		}
	}()
	NewScheduler(0)
}

func TestEmptyScheduler(t *testing.T) {
	s := NewScheduler(10)
	if _, ok := s.Next(); ok {
		t.Error("empty scheduler produced a reference")
	}
}

func TestRoundRobinInterleaving(t *testing.T) {
	s := NewScheduler(3)
	s.Add(&Task{PID: 1, Runner: &countRunner{n: 9, addr: 100}})
	s.Add(&Task{PID: 2, Runner: &countRunner{n: 9, addr: 200}})
	var order []int32
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		order = append(order, r.PID)
	}
	if len(order) != 18 {
		t.Fatalf("emitted %d refs, want 18", len(order))
	}
	// Quantum 3: 1,1,1,2,2,2,1,1,1,...
	want := []int32{1, 1, 1, 2, 2, 2, 1, 1, 1, 2, 2, 2, 1, 1, 1, 2, 2, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order[%d] = %d, want %d (full: %v)", i, order[i], want[i], order)
		}
	}
	if s.Switches == 0 {
		t.Error("no context switches counted")
	}
}

func TestPIDStamping(t *testing.T) {
	s := NewScheduler(5)
	s.Add(&Task{PID: 42, Runner: &countRunner{n: 1, addr: 7}})
	r, ok := s.Next()
	if !ok || r.PID != 42 {
		t.Errorf("rec = %+v ok=%v", r, ok)
	}
}

func TestOnExitAndReaping(t *testing.T) {
	s := NewScheduler(2)
	var exited []int32
	s.OnExit = func(t *Task) { exited = append(exited, t.PID) }
	s.Add(&Task{PID: 1, Runner: &countRunner{n: 1, addr: 1}})
	s.Add(&Task{PID: 2, Runner: &countRunner{n: 4, addr: 2}})
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Errorf("refs = %d, want 5", n)
	}
	if len(exited) != 2 || exited[0] != 1 || exited[1] != 2 {
		t.Errorf("exit order = %v", exited)
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after drain", s.Len())
	}
}

func TestAddDuringRun(t *testing.T) {
	s := NewScheduler(2)
	s.Add(&Task{PID: 1, Runner: &countRunner{n: 2, addr: 1}})
	s.Next()
	s.Add(&Task{PID: 2, Runner: &countRunner{n: 2, addr: 2}})
	total := 1
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		total++
	}
	if total != 4 {
		t.Errorf("total = %d, want 4", total)
	}
}
