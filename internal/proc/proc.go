// Package proc provides the process abstraction and the round-robin
// scheduler that interleaves the synthetic workloads' reference streams.
//
// SPUR processes share the global virtual address space (each gets distinct
// segments), so a context switch neither flushes nor tags the cache; the
// scheduler's only job is realistic interleaving, which is what makes the
// combined working set — not any single process's — contend for memory.
package proc

import "repro/internal/trace"

// Runner generates one process's reference stream.
type Runner interface {
	// Step emits the process's next reference.
	Step() trace.Rec
	// Done reports whether the process has finished its work. Once Done
	// returns true the scheduler reaps the task; Step is not called
	// again.
	Done() bool
}

// Horizoned is optionally implemented by Runners whose Step can mutate
// shared machine state — releasing a memory region, most importantly. Batch
// generation runs ahead of the machine consuming the references, so a
// release inside a half-filled batch would tear pages down *before* the
// machine replays the references that were generated while they existed.
//
// StepHorizon returns a lower bound on how many consecutive Step calls are
// guaranteed to neither mutate the environment nor run past Done: the
// scheduler may take that many steps blindly, with no per-step checks. A
// zero horizon means the very next step could mutate (or the task has
// finished); NextBatch then flushes what it has buffered so the mutating
// step only ever runs against an empty buffer, which puts the mutation at
// exactly the stream position the per-reference path gives it.
// Under-estimating the horizon is safe (it only costs extra flushes);
// over-estimating is not.
type Horizoned interface {
	StepHorizon() int64
}

// BatchStepper is optionally implemented by Horizoned Runners that can emit
// a run of steps with one call. StepBatch(buf) must produce exactly the
// records len(buf) successive Step calls would — it exists only to strip the
// per-step interface dispatch from the generation hot loop. Callers must
// bound len(buf) by StepHorizon(); the runner omits the per-step mutation
// and Done checks on the strength of that bound.
type BatchStepper interface {
	StepBatch(buf []trace.Rec)
}

// Task is one schedulable process.
type Task struct {
	PID    int32
	Name   string
	Runner Runner
}

// Scheduler interleaves tasks round-robin with a fixed quantum of
// references.
type Scheduler struct {
	quantum int
	left    int
	cur     int
	tasks   []*Task

	// OnExit, if set, is called when a finished task is reaped (process
	// teardown: releasing its regions and segment).
	OnExit func(*Task)

	// Switches counts context switches.
	Switches uint64
}

// NewScheduler returns a scheduler with the given quantum (references per
// time slice).
func NewScheduler(quantum int) *Scheduler {
	if quantum <= 0 {
		panic("proc: quantum must be positive")
	}
	return &Scheduler{quantum: quantum, left: quantum}
}

// Add enqueues a task.
func (s *Scheduler) Add(t *Task) { s.tasks = append(s.tasks, t) }

// Len returns the number of live tasks.
func (s *Scheduler) Len() int { return len(s.tasks) }

// Tasks returns the live tasks (read-only view for inspection).
func (s *Scheduler) Tasks() []*Task { return s.tasks }

// Next returns the next reference in the interleaved stream, or false when
// every task has finished.
func (s *Scheduler) Next() (trace.Rec, bool) {
	for {
		if len(s.tasks) == 0 {
			return trace.Rec{}, false
		}
		if s.cur >= len(s.tasks) {
			s.cur = 0
		}
		t := s.tasks[s.cur]
		if t.Runner.Done() {
			s.reap(s.cur)
			continue
		}
		if s.left <= 0 {
			s.cur = (s.cur + 1) % len(s.tasks)
			s.left = s.quantum
			s.Switches++
			continue
		}
		s.left--
		r := t.Runner.Step()
		r.PID = t.PID
		return r, true
	}
}

// NextBatch fills buf with the next references of the interleaved stream and
// returns how many it produced (zero means every task has finished, never a
// spurious stall). The sequence is exactly what repeated Next calls would
// yield — Done is checked before every step, quantum expiry switches tasks at
// the same points, and reaping is identical — the batch form only exists so
// the inner stepping loop runs on a concrete Runner without per-reference
// dispatch overhead around it.
//
// Environment mutations must additionally keep their position relative to
// the *consumption* of the stream, not just its generation: reaping tears a
// task's regions down, and a Horizoned step can release a heap generation.
// Any buffered references were generated while those regions existed and
// have not been replayed yet, so the batch is returned (flushed) first and
// the mutating step or reap runs at the top of the next call, against an
// empty buffer — the same consume-then-release order the per-reference path
// has.
func (s *Scheduler) NextBatch(buf []trace.Rec) int {
	n := 0
	for n < len(buf) {
		if len(s.tasks) == 0 {
			return n
		}
		if s.cur >= len(s.tasks) {
			s.cur = 0
		}
		t := s.tasks[s.cur]
		if t.Runner.Done() {
			if n > 0 {
				return n // flush before the reap releases the task's regions
			}
			s.reap(s.cur)
			continue
		}
		if s.left <= 0 {
			s.cur = (s.cur + 1) % len(s.tasks)
			s.left = s.quantum
			s.Switches++
			continue
		}
		// Run the current task up to its quantum or the buffer's end. A
		// Horizoned runner vouches for stretches of steps that cannot
		// mutate the environment or finish, so those run in a tight loop
		// with no per-step checks; otherwise Done is re-checked before
		// each step exactly as Next does. Either way the emitted stream
		// is identical to repeated Next calls.
		run := t.Runner
		pid := t.PID
		hz, _ := run.(Horizoned)
		bs, _ := run.(BatchStepper)
		if hz == nil {
			for s.left > 0 && n < len(buf) && !run.Done() {
				s.left--
				r := run.Step()
				r.PID = pid
				buf[n] = r
				n++
			}
			continue
		}
		for s.left > 0 && n < len(buf) {
			h := hz.StepHorizon()
			if h <= 0 {
				if n > 0 {
					return n // flush before a step that may release a region
				}
				if run.Done() {
					break // reap at the top of the outer loop
				}
				// The possibly-mutating step itself runs against the
				// empty buffer — the same position the per-reference
				// path gives the mutation.
				h = 1
			}
			steps := int64(s.left)
			if b := int64(len(buf) - n); b < steps {
				steps = b
			}
			if h < steps {
				steps = h
			}
			s.left -= int(steps)
			if bs != nil {
				chunk := buf[n : n+int(steps)]
				bs.StepBatch(chunk)
				for i := range chunk {
					chunk[i].PID = pid
				}
				n += int(steps)
				continue
			}
			for ; steps > 0; steps-- {
				r := run.Step()
				r.PID = pid
				buf[n] = r
				n++
			}
		}
	}
	return n
}

func (s *Scheduler) reap(i int) {
	t := s.tasks[i]
	s.tasks = append(s.tasks[:i], s.tasks[i+1:]...)
	if s.cur >= len(s.tasks) {
		s.cur = 0
	}
	s.left = s.quantum
	if s.OnExit != nil {
		s.OnExit(t)
	}
}
