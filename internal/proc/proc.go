// Package proc provides the process abstraction and the round-robin
// scheduler that interleaves the synthetic workloads' reference streams.
//
// SPUR processes share the global virtual address space (each gets distinct
// segments), so a context switch neither flushes nor tags the cache; the
// scheduler's only job is realistic interleaving, which is what makes the
// combined working set — not any single process's — contend for memory.
package proc

import "repro/internal/trace"

// Runner generates one process's reference stream.
type Runner interface {
	// Step emits the process's next reference.
	Step() trace.Rec
	// Done reports whether the process has finished its work. Once Done
	// returns true the scheduler reaps the task; Step is not called
	// again.
	Done() bool
}

// Task is one schedulable process.
type Task struct {
	PID    int32
	Name   string
	Runner Runner
}

// Scheduler interleaves tasks round-robin with a fixed quantum of
// references.
type Scheduler struct {
	quantum int
	left    int
	cur     int
	tasks   []*Task

	// OnExit, if set, is called when a finished task is reaped (process
	// teardown: releasing its regions and segment).
	OnExit func(*Task)

	// Switches counts context switches.
	Switches uint64
}

// NewScheduler returns a scheduler with the given quantum (references per
// time slice).
func NewScheduler(quantum int) *Scheduler {
	if quantum <= 0 {
		panic("proc: quantum must be positive")
	}
	return &Scheduler{quantum: quantum, left: quantum}
}

// Add enqueues a task.
func (s *Scheduler) Add(t *Task) { s.tasks = append(s.tasks, t) }

// Len returns the number of live tasks.
func (s *Scheduler) Len() int { return len(s.tasks) }

// Tasks returns the live tasks (read-only view for inspection).
func (s *Scheduler) Tasks() []*Task { return s.tasks }

// Next returns the next reference in the interleaved stream, or false when
// every task has finished.
func (s *Scheduler) Next() (trace.Rec, bool) {
	for {
		if len(s.tasks) == 0 {
			return trace.Rec{}, false
		}
		if s.cur >= len(s.tasks) {
			s.cur = 0
		}
		t := s.tasks[s.cur]
		if t.Runner.Done() {
			s.reap(s.cur)
			continue
		}
		if s.left <= 0 {
			s.cur = (s.cur + 1) % len(s.tasks)
			s.left = s.quantum
			s.Switches++
			continue
		}
		s.left--
		r := t.Runner.Step()
		r.PID = t.PID
		return r, true
	}
}

func (s *Scheduler) reap(i int) {
	t := s.tasks[i]
	s.tasks = append(s.tasks[:i], s.tasks[i+1:]...)
	if s.cur >= len(s.tasks) {
		s.cur = 0
	}
	s.left = s.quantum
	if s.OnExit != nil {
		s.OnExit(t)
	}
}
