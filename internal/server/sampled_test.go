package server

// Tests for /v1/sweep with sample=true: sampled estimates are memoized
// under their own store kind (never colliding with the exact sweep of the
// same spec), render the sampled CSV byte-identically to the local driver,
// and the chart rendering — which cannot show error bars — is rejected.

import (
	"bytes"
	"context"
	"testing"

	spur "repro"
	"repro/internal/core"
	"repro/pkg/client"
)

func TestSweepSampled(t *testing.T) {
	s, _, c := newTestServer(t, Config{})
	exact := client.SweepRequest{
		Workloads: []string{"SLC"},
		SizesMB:   []int{6, 8},
		Refs:      testRefs,
		Seed:      3,
	}
	sampledReq := exact
	sampledReq.Sample = true
	sampledReq.IntervalLen = 20_000

	body, meta, err := c.Sweep(context.Background(), sampledReq)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Cached {
		t.Error("first sampled sweep claims cached")
	}

	// Byte-identical to the local sampled driver.
	rows, err := spur.MemorySweepSampled(
		spur.MemorySweepOptions{
			Workloads: []core.WorkloadName{core.SLC},
			SizesMB:   []int{6, 8},
			Refs:      testRefs,
			Seed:      3,
		},
		spur.SampleOptions{IntervalLen: 20_000},
	)
	if err != nil {
		t.Fatal(err)
	}
	if local := spur.SampledSweepCSV(rows); string(body) != local {
		t.Errorf("remote sampled CSV differs from local:\n--- remote ---\n%s--- local ---\n%s", body, local)
	}

	// Second identical request: a store hit with the same bytes.
	again, meta2, err := c.Sweep(context.Background(), sampledReq)
	if err != nil {
		t.Fatal(err)
	}
	if !meta2.Cached || meta2.Key != meta.Key {
		t.Errorf("repeat sampled sweep missed the store (cached=%v, key %q vs %q)", meta2.Cached, meta2.Key, meta.Key)
	}
	if !bytes.Equal(body, again) {
		t.Error("cached sampled sweep returned different bytes")
	}

	// The exact sweep of the same spec lives under a different key: an
	// estimate must never be served where exact counts were asked for.
	_, exactMeta, err := c.Sweep(context.Background(), exact)
	if err != nil {
		t.Fatal(err)
	}
	if exactMeta.Cached {
		t.Error("exact sweep was served from the sampled result")
	}
	if exactMeta.Key == meta.Key {
		t.Errorf("exact and sampled sweeps share key %q", meta.Key)
	}
	if st := s.Store().Stats(); st.Puts != 2 {
		t.Errorf("store puts = %d, want 2 (one sampled, one exact)", st.Puts)
	}
}

func TestSweepSampledRejectsChart(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	req := client.SweepRequest{
		Workloads: []string{"SLC"}, SizesMB: []int{8}, Refs: testRefs,
		Sample: true, Format: client.FormatChart,
	}
	// Normalize fails client-side before any bytes hit the wire; the
	// server applies the same rule to hand-rolled requests.
	if _, _, err := c.Sweep(context.Background(), req); err == nil {
		t.Fatal("sampled chart request accepted")
	}
}
