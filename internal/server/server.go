// Package server is the spurd experiment daemon: an HTTP/JSON service that
// turns the repository's deterministic experiment drivers into a shared,
// memoizing facility. Because PR 2 made every run a pure function of its
// canonical spec, the daemon can answer a repeated request from its
// content-addressed result store (internal/expstore) in microseconds
// instead of re-simulating for minutes, dedupe identical in-flight
// requests down to one computation, and shed excess load with 429 +
// Retry-After instead of melting down.
//
// Endpoints:
//
//	POST /v1/run          one simulator run (hardened; fault plans allowed)
//	POST /v1/sweep        the memory-size study, as CSV or ASCII charts
//	GET  /v1/tables/{id}  any paper table/figure in the shared Doc JSON
//	GET  /healthz         store counters, queue occupancy, drain state
//
// Wire types live in repro/pkg/client, which is also the typed client.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	spur "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/expstore"
	"repro/internal/faultinject"
	"repro/internal/report"
	"repro/pkg/client"
)

// Config assembles a daemon.
type Config struct {
	// StoreDir roots the on-disk result store; empty keeps results in
	// memory only. Ignored when Store is set.
	StoreDir string
	// Store, when non-nil, is used directly (tests share one store
	// across servers this way).
	Store *expstore.Store
	// MaxRun bounds concurrently executing jobs (default GOMAXPROCS);
	// MaxQueue bounds jobs waiting for a slot before admission control
	// sheds load with 429 (0 = default 4×MaxRun; negative = no waiting
	// room, shed as soon as every slot is busy).
	MaxRun   int
	MaxQueue int
	// Parallel is the per-sweep worker bound handed to the experiment
	// engine (default MaxRun). Results are identical at any setting.
	Parallel int
	// Version is the code-version component of every store key
	// (default spur.Version).
	Version string
	// JobJournal, when set, makes accepted jobs durable: every admitted
	// job is journaled (fsynced) before it computes, and RecoverJobs
	// recomputes whatever an earlier process accepted but never finished.
	JobJournal string
	// ScrubEvery, when positive, runs a background store integrity pass
	// (expstore.Scrub) at that cadence, quarantining bit-rotted blobs.
	// In cluster mode each pass is followed by replica repair
	// (RepairFromPeers), so a node heals from its peers before anything
	// recomputes.
	ScrubEvery time.Duration

	// Self and Peers turn the node into a cluster member: Self is this
	// node's advertised base URL and must appear in Peers, the full static
	// membership (every node gets the same list; order does not matter).
	// An empty Peers list runs the classic single-node daemon.
	Self  string
	Peers []string
	// Replication is how many nodes hold each result (owner + M−1
	// replicas; default 2, clamped to the peer count).
	Replication int
	// VNodes is the virtual-node count per peer on the placement ring
	// (default cluster.DefaultVNodes).
	VNodes int
	// MaxHops bounds proxy forwarding so inconsistent peer lists degrade
	// into local computes instead of forwarding loops (default 2).
	MaxHops int
	// Outbox journals replication debts durably ("" = in-memory outbox:
	// pushes pending at a crash are healed later by scrub repair).
	Outbox string
	// PeerTimeout bounds peer probes and blob transfers (default 5s).
	// Proxied requests are bounded by the requester's context instead —
	// a forwarded compute legitimately takes as long as a local one.
	PeerTimeout time.Duration
	// BreakerThreshold consecutive failures open a peer's outgoing
	// circuit breaker (default 3); BreakerCooldown is how long the open
	// breaker skips that peer before admitting a half-open probe
	// (default 5s). Breakers gate proxying, replication pushes, and
	// repair fetches — never health probes.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// NetFaults, when non-nil, is the deterministic network fault plane:
	// incoming requests pass through its Middleware, and every outgoing
	// peer call (proxy, blob push, repair fetch, health probe) through
	// its Transport. The injector is shared, not copied, so a torture
	// driver can re-arm rules per round with SetRules.
	NetFaults *faultinject.NetInjector

	// Logf, when set, receives one line per computed (not cached) job.
	Logf func(format string, args ...any)
}

func (c Config) fill() Config {
	if c.MaxRun <= 0 {
		c.MaxRun = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxRun
	} else if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.Parallel <= 0 {
		c.Parallel = c.MaxRun
	}
	if c.Version == "" {
		c.Version = spur.Version
	}
	if len(c.Peers) > 0 {
		if c.Replication <= 0 {
			c.Replication = 2
		}
		if c.Replication > len(c.Peers) {
			c.Replication = len(c.Peers)
		}
		if c.MaxHops <= 0 {
			c.MaxHops = 2
		}
		if c.PeerTimeout <= 0 {
			c.PeerTimeout = 5 * time.Second
		}
		if c.BreakerThreshold <= 0 {
			c.BreakerThreshold = 3
		}
		if c.BreakerCooldown <= 0 {
			c.BreakerCooldown = 5 * time.Second
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the daemon; it implements http.Handler.
type Server struct {
	cfg      Config
	store    *expstore.Store
	q        *queue
	fl       *flight
	jobs     *jobLog
	cluster  *clusterNode
	mux      *http.ServeMux
	handler  http.Handler
	start    time.Time
	draining atomic.Bool

	recoverWG sync.WaitGroup
	stopScrub chan struct{}
	closeOnce sync.Once
}

// New assembles a server (opening the store if Config.Store is nil).
func New(cfg Config) (*Server, error) {
	cfg = cfg.fill()
	store := cfg.Store
	if store == nil {
		var err error
		store, err = expstore.Open(cfg.StoreDir, expstore.Options{})
		if err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:   cfg,
		store: store,
		q:     newQueue(cfg.MaxRun, cfg.MaxQueue),
		fl:    newFlight(),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	if cfg.JobJournal != "" {
		jobs, err := openJobLog(cfg.JobJournal, cfg.Version, cfg.Logf)
		if err != nil {
			return nil, err
		}
		s.jobs = jobs
	}
	if len(cfg.Peers) > 0 {
		node, err := newClusterNode(cfg)
		if err != nil {
			return nil, err
		}
		outbox, err := cluster.OpenOutbox(cfg.Outbox, cfg.Version, s.sendBlob, cfg.Logf)
		if err != nil {
			return nil, err
		}
		node.outbox = outbox
		s.cluster = node
		s.mux.HandleFunc("GET /v1/cluster", s.handleCluster)
		s.mux.HandleFunc("GET /v1/cluster/keys", s.handleClusterKeys)
		s.mux.HandleFunc("GET /v1/cluster/blob/{key}", s.handleBlobGet)
		s.mux.HandleFunc("PUT /v1/cluster/blob/{key}", s.handleBlobPut)
		s.mux.HandleFunc("POST /v1/cluster/scrub", s.handleClusterScrub)
	}
	if cfg.ScrubEvery > 0 {
		s.stopScrub = make(chan struct{})
		go s.scrubLoop()
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/tables/{id}", s.handleTables)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.handler = s.mux
	if cfg.NetFaults != nil {
		s.handler = cfg.NetFaults.Middleware(cfg.Self, s.mux)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

// Store exposes the result store (for /healthz-style introspection and
// tests).
func (s *Server) Store() *expstore.Store { return s.store }

// StartDraining flips /healthz to "draining"; the caller then runs
// http.Server.Shutdown, which stops new connections and waits for
// in-flight requests.
func (s *Server) StartDraining() { s.draining.Store(true) }

// Close stops the background scrubber and closes the job journal. It is
// idempotent; call it after the HTTP server has drained.
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		if s.stopScrub != nil {
			close(s.stopScrub)
		}
		if s.cluster != nil && s.cluster.outbox != nil {
			if oerr := s.cluster.outbox.Close(); oerr != nil {
				err = oerr
			}
		}
		if s.jobs != nil {
			if jerr := s.jobs.close(); jerr != nil {
				err = jerr
			}
		}
	})
	return err
}

// scrubLoop periodically verifies every stored blob against its embedded
// hash, quarantining bit rot before a request can trip over it.
func (s *Server) scrubLoop() {
	t := time.NewTicker(s.cfg.ScrubEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopScrub:
			return
		case <-t.C:
			rep := s.store.Scrub()
			if rep.Quarantined > 0 || rep.Errors > 0 {
				s.cfg.Logf("spurd: scrub: %d blobs scanned, %d quarantined, %d unreadable", rep.Scanned, rep.Quarantined, rep.Errors)
			}
			// In cluster mode the scrub's second half refills what the
			// first half (or a crash) removed — from replicas, not the
			// simulator.
			if s.cluster != nil {
				s.RepairFromPeers(context.Background())
			}
		}
	}
}

// jobFn computes one job's stored bytes; cache reports whether they may be
// persisted.
type jobFn func(ctx context.Context) (data []byte, cache bool, err error)

// memoize is the service's core loop: serve key from the store if
// present; otherwise let exactly one request compute it (in-flight dedupe)
// under a bounded-queue slot (admission control), persisting the bytes
// when fn says they are cacheable. The computation runs detached from the
// requester's context so an abandoned request still fills the store for
// the retry.
//
// With a job journal configured, the job is journaled durable between
// admission and completion: the accept record (kind + spec) lands, fsynced,
// before fn runs, and the done record only once the result is safely in the
// store (or fn failed — by determinism a retry would fail identically). A
// process killed in between owes the job, and RecoverJobs repays it.
func (s *Server) memoize(ctx context.Context, key expstore.Key, kind string, spec any, fn jobFn) (data []byte, cached bool, err error) {
	if data, ok := s.store.Get(key); ok {
		return data, true, nil
	}
	// Repair before recompute: a clustered node missing a blob (never
	// computed here, lost to a crash, or quarantined as corrupt) first
	// asks the key's other replicas, verifying the sealed envelope before
	// trusting anything. Only when no replica can produce the bytes does
	// the simulator run.
	if s.cluster != nil {
		if data, ok := s.fetchFromReplicas(ctx, key); ok {
			return data, true, nil
		}
	}
	data, _, err = s.fl.do(ctx, key, func() ([]byte, error) {
		release, err := s.q.acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		if s.jobs != nil {
			if jerr := s.jobs.accept(kind, key, spec); jerr != nil {
				s.cfg.Logf("spurd: journaling %s job %.12s: %v", kind, key, jerr)
			}
		}
		data, cache, err := fn(context.WithoutCancel(ctx))
		persisted := true
		if err == nil && cache {
			if perr := s.store.Put(key, data); perr != nil {
				// Leave the job pending: the result never reached the
				// store, so a restart should recompute and re-persist it.
				persisted = false
				s.cfg.Logf("spurd: store put %s: %v", key, perr)
			} else {
				// The durable replication debt is journaled before the
				// response leaves: a crash right here still gets the blob
				// onto every replica.
				s.replicate(key)
			}
		}
		if s.jobs != nil && persisted {
			if jerr := s.jobs.done(key); jerr != nil {
				s.cfg.Logf("spurd: journaling %s done %.12s: %v", kind, key, jerr)
			}
		}
		return data, err
	})
	return data, false, err
}

// --- /v1/run -----------------------------------------------------------------

// runPayload is the stored (and served) body of one run.
type runPayload struct {
	Result  spur.Result      `json:"result"`
	Failure *spur.RunFailure `json:"failure,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req client.RunRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := req.Normalize(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := expstore.KeyOf(s.cfg.Version, "run", req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.proxyIfRemote(w, r, key, req) {
		return
	}
	data, cached, err := s.memoize(r.Context(), key, "run", req, s.runJob(key, req))
	if err != nil {
		writeComputeError(w, err)
		return
	}
	var p runPayload
	if err := json.Unmarshal(data, &p); err != nil {
		httpError(w, http.StatusInternalServerError, "corrupt stored run: %v", err)
		return
	}
	writeJSON(w, client.RunResponse{Key: string(key), Cached: cached, Result: p.Result, Failure: p.Failure})
}

// runJob is the compute closure behind /v1/run, shared with job recovery.
func (s *Server) runJob(key expstore.Key, req client.RunRequest) jobFn {
	return func(ctx context.Context) ([]byte, bool, error) {
		t0 := time.Now()
		p, err := s.computeRun(req)
		if err != nil {
			return nil, false, err
		}
		s.cfg.Logf("spurd: run %s computed in %s (failure=%v)", key[:12], time.Since(t0).Round(time.Millisecond), p.Failure != nil)
		data, err := json.Marshal(p)
		// Quarantined runs are served but never cached: a deadline
		// failure is load-dependent, and keeping failures out of the
		// store means a fixed simulator never replays a stale crash.
		return data, err == nil && p.Failure == nil, err
	}
}

func (s *Server) computeRun(req client.RunRequest) (runPayload, error) {
	cfg := spur.DefaultConfig()
	cfg.MemoryBytes = core.MiB(req.MemMB)
	cfg.CacheBytes = req.CacheKB << 10
	cfg.TotalRefs = req.Refs
	cfg.Seed = req.Seed
	var err error
	if cfg.Dirty, err = core.ParseDirtyPolicy(req.Dirty); err != nil {
		return runPayload{}, err
	}
	if cfg.Ref, err = core.ParseRefPolicy(req.Ref); err != nil {
		return runPayload{}, err
	}
	cfg.Faults = req.Faults

	var spec spur.Spec
	switch {
	case req.Spec != nil:
		spec = *req.Spec
	case req.Workload == client.WorkloadW1:
		spec = spur.Workload1()
	case req.Workload == client.WorkloadWindow:
		spec = spur.Window()
	default:
		spec = spur.SLC()
	}

	// Every server-side run goes through the hardened runner: a panicking
	// configuration must quarantine the run, not kill the daemon.
	var opts spur.RunOptions
	if h := req.Hardened; h != nil {
		opts = spur.RunOptions{
			AuditEvery: h.AuditEvery,
			Deadline:   time.Duration(h.DeadlineMS) * time.Millisecond,
			TraceTail:  h.TraceTail,
		}
	}
	res, fail := spur.RunHardened(cfg, spec, opts)
	return runPayload{Result: res, Failure: fail}, nil
}

// --- /v1/sweep ---------------------------------------------------------------

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req client.SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := req.Normalize(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Format is presentation only: both renderings share one stored
	// result, so it is excluded from the content address. Sampled sweeps
	// get their own kind: an estimate with error bars must never be served
	// where an exact sweep was asked for, or vice versa.
	kind := "sweep"
	if req.Sample {
		kind = "sweep-sampled"
	}
	keyReq := req
	keyReq.Format = ""
	key, err := expstore.KeyOf(s.cfg.Version, kind, keyReq)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The proxied body keeps Format: the key ignores presentation, the
	// serving node must not.
	if s.proxyIfRemote(w, r, key, req) {
		return
	}
	// Only a sweep that would actually compute is sheddable; a cache hit
	// costs nothing and is served even mid-drill.
	if !s.store.Has(key) && s.shedHeavy(w, kind) {
		return
	}
	job := s.sweepJob(key, req)
	if req.Sample {
		job = s.sampledSweepJob(key, req)
	}
	data, cached, err := s.memoize(r.Context(), key, kind, keyReq, job)
	if err != nil {
		writeComputeError(w, err)
		return
	}
	if req.Sample {
		var rows []spur.SampledRow
		if err := json.Unmarshal(data, &rows); err != nil {
			httpError(w, http.StatusInternalServerError, "corrupt stored sampled sweep: %v", err)
			return
		}
		w.Header().Set("X-Spur-Key", string(key))
		w.Header().Set("X-Spur-Cached", strconv.FormatBool(cached))
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		// Write errors here mean the client hung up; nothing to do.
		_, _ = fmt.Fprint(w, spur.SampledSweepCSV(rows))
		return
	}
	var rows []spur.MemorySweepRow
	if err := json.Unmarshal(data, &rows); err != nil {
		httpError(w, http.StatusInternalServerError, "corrupt stored sweep: %v", err)
		return
	}
	w.Header().Set("X-Spur-Key", string(key))
	w.Header().Set("X-Spur-Cached", strconv.FormatBool(cached))
	switch req.Format {
	case client.FormatChart:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		// One chart per workload in first-seen row order, each followed
		// by a newline — exactly what the local driver prints.
		seen := map[core.WorkloadName]bool{}
		for _, row := range rows {
			if !seen[row.Workload] {
				seen[row.Workload] = true
				// Write errors here mean the client hung up; nothing to do.
				_, _ = fmt.Fprintln(w, spur.MemorySweepChart(rows, row.Workload))
			}
		}
	default:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		// Write errors here mean the client hung up; nothing to do.
		_, _ = fmt.Fprint(w, spur.MemorySweepCSV(rows))
	}
}

// sweepJob is the compute closure behind /v1/sweep, shared with job
// recovery.
func (s *Server) sweepJob(key expstore.Key, req client.SweepRequest) jobFn {
	return func(ctx context.Context) ([]byte, bool, error) {
		t0 := time.Now()
		rows, err := s.computeSweep(ctx, req)
		if err != nil {
			return nil, false, err
		}
		s.cfg.Logf("spurd: sweep %s (%d rows) computed in %s", key[:12], len(rows), time.Since(t0).Round(time.Millisecond))
		data, err := json.Marshal(rows)
		return data, err == nil, err
	}
}

// sampledSweepJob is the compute closure behind /v1/sweep with
// sample=true, shared with job recovery.
func (s *Server) sampledSweepJob(key expstore.Key, req client.SweepRequest) jobFn {
	return func(ctx context.Context) ([]byte, bool, error) {
		t0 := time.Now()
		rows, err := s.computeSampledSweep(ctx, req)
		if err != nil {
			return nil, false, err
		}
		s.cfg.Logf("spurd: sampled sweep %s (%d rows) computed in %s", key[:12], len(rows), time.Since(t0).Round(time.Millisecond))
		data, err := json.Marshal(rows)
		return data, err == nil, err
	}
}

func (s *Server) computeSampledSweep(ctx context.Context, req client.SweepRequest) ([]spur.SampledRow, error) {
	opts := spur.MemorySweepOptions{
		SizesMB:  req.SizesMB,
		Refs:     req.Refs,
		Seed:     req.Seed,
		Reps:     req.Reps,
		Parallel: s.cfg.Parallel,
	}
	for _, name := range req.Workloads {
		opts.Workloads = append(opts.Workloads, core.WorkloadName(name))
	}
	for _, name := range req.Policies {
		p, err := core.ParseRefPolicy(name)
		if err != nil {
			return nil, err
		}
		opts.Policies = append(opts.Policies, p)
	}
	so := spur.SampleOptions{
		Intervals:   req.Intervals,
		IntervalLen: req.IntervalLen,
		Warmup:      req.Warmup,
	}
	rows, err := spur.MemorySweepSampled(opts, so)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

func (s *Server) computeSweep(ctx context.Context, req client.SweepRequest) ([]spur.MemorySweepRow, error) {
	opts := spur.MemorySweepOptions{
		SizesMB:    req.SizesMB,
		Refs:       req.Refs,
		Seed:       req.Seed,
		Reps:       req.Reps,
		AuditEvery: req.AuditEvery,
		Parallel:   s.cfg.Parallel,
		Context:    ctx,
	}
	for _, name := range req.Workloads {
		opts.Workloads = append(opts.Workloads, core.WorkloadName(name))
	}
	for _, name := range req.Policies {
		p, err := core.ParseRefPolicy(name)
		if err != nil {
			return nil, err
		}
		opts.Policies = append(opts.Policies, p)
	}
	rows := spur.MemorySweep(opts)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// --- /v1/tables/{id} ---------------------------------------------------------

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !client.ValidTableID(id) {
		httpError(w, http.StatusNotFound, "unknown table %q (valid: %s)", id, strings.Join(client.TableIDs, " "))
		return
	}
	q, err := parseTablesQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := q.Normalize(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := expstore.KeyOf(s.cfg.Version, "tables/"+id, q)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.proxyIfRemote(w, r, key, nil) {
		return
	}
	if !s.store.Has(key) && s.shedHeavy(w, "tables/"+id) {
		return
	}
	data, cached, err := s.memoize(r.Context(), key, "tables/"+id, q, s.tablesJob(key, id, q))
	if err != nil {
		writeComputeError(w, err)
		return
	}
	// report.Doc and client.Doc share one JSON shape — the single
	// serialization path `cmd/tables -json` also uses.
	var docs []client.Doc
	if err := json.Unmarshal(data, &docs); err != nil {
		httpError(w, http.StatusInternalServerError, "corrupt stored tables: %v", err)
		return
	}
	writeJSON(w, client.TablesResponse{ID: id, Key: string(key), Cached: cached, Docs: docs})
}

func parseTablesQuery(r *http.Request) (client.TablesQuery, error) {
	q := client.TablesQuery{Paper: true}
	v := r.URL.Query()
	var err error
	if s := v.Get("refs"); s != "" {
		if q.Refs, err = strconv.ParseInt(s, 10, 64); err != nil {
			return q, fmt.Errorf("bad refs %q", s)
		}
	}
	if s := v.Get("seed"); s != "" {
		if q.Seed, err = strconv.ParseUint(s, 10, 64); err != nil {
			return q, fmt.Errorf("bad seed %q", s)
		}
	}
	if s := v.Get("reps"); s != "" {
		if q.Reps, err = strconv.Atoi(s); err != nil {
			return q, fmt.Errorf("bad reps %q", s)
		}
	}
	if s := v.Get("paper"); s != "" {
		if q.Paper, err = strconv.ParseBool(s); err != nil {
			return q, fmt.Errorf("bad paper %q", s)
		}
	}
	return q, nil
}

// tablesJob is the compute closure behind /v1/tables/{id}, shared with job
// recovery.
func (s *Server) tablesJob(key expstore.Key, id string, q client.TablesQuery) jobFn {
	return func(ctx context.Context) ([]byte, bool, error) {
		t0 := time.Now()
		docs, err := s.computeTables(ctx, id, q)
		if err != nil {
			return nil, false, err
		}
		s.cfg.Logf("spurd: tables/%s %s computed in %s", id, key[:12], time.Since(t0).Round(time.Millisecond))
		data, err := json.Marshal(docs)
		return data, err == nil, err
	}
}

func (s *Server) computeTables(ctx context.Context, id string, q client.TablesQuery) ([]report.Doc, error) {
	var docs []report.Doc
	add := func(d report.Doc) { docs = append(docs, d) }
	switch id {
	case "2.1":
		add(spur.Table21().Doc())
	case "3.1":
		add(spur.Table31().Doc())
	case "3.2":
		add(spur.Table32().Doc())
	case "f3.1":
		add(report.TextDoc("Figure 3.1", spur.Figure31()))
	case "f3.2":
		add(report.TextDoc("Figure 3.2", spur.Figure32()))
	case "3.3":
		rows := spur.Table33(spur.Table33Options{Refs: q.Refs, Seed: q.Seed})
		add(spur.RenderTable33(rows, q.Paper).Doc())
	case "3.4":
		rows := spur.Table33(spur.Table33Options{Refs: q.Refs, Seed: q.Seed})
		add(spur.Table34(rows).Doc())
		if q.Paper {
			add(spur.PaperTable34().Doc())
		}
	case "3.5":
		add(spur.RenderTable35(spur.Table35(q.Seed), q.Paper).Doc())
	case "4.1":
		rows := spur.Table41(spur.Table41Options{
			Refs: q.Refs, Reps: q.Reps, Seed: q.Seed,
			Parallel: s.cfg.Parallel, Context: ctx,
		})
		add(spur.RenderTable41(rows, q.Paper).Doc())
	case "ext":
		add(spur.RenderCacheSweep(spur.CacheSweep(spur.CacheSweepOptions{Refs: q.Refs, Seed: q.Seed})).Doc())
		rows := spur.Table33(spur.Table33Options{Refs: q.Refs, Seed: q.Seed, SizesMB: []int{5}})
		add(spur.RenderFaultHandlerSweep(spur.FaultHandlerSweep(rows[0].Events)).Doc())
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return docs, nil
}

// --- /healthz ----------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	h := client.Health{
		Status:  status,
		Version: s.cfg.Version,
		Store:   s.store.Stats(),
		Queue:   s.q.stats(s.fl.deduped.Load()),
		Uptime:  client.Duration(time.Since(s.start)),
	}
	if s.jobs != nil {
		h.Jobs = s.jobs.stats()
	}
	if c := s.cluster; c != nil {
		h.Cluster = &client.ClusterStats{
			Self:        c.self,
			Peers:       len(c.ring.Peers()),
			Replication: c.rep,
			Outbox:      c.outbox.Stats(),
			Breakers:    c.breakerStates(),
		}
	}
	writeJSON(w, h)
}

// shedHeavy sheds one heavy request (the batch op class: sweeps and table
// builds) with 429 when the fleet is degraded: some peer's outgoing
// breaker is open — its share of traffic is landing here — and the local
// waiting room is already more than half full. Interactive runs, cache
// hits, health probes, and blob transfers are never shed this way; they
// are how the fleet keeps serving and heals.
func (s *Server) shedHeavy(w http.ResponseWriter, op string) bool {
	c := s.cluster
	if c == nil || !c.anyBreakerOpen() {
		return false
	}
	if s.q.waitingCount()*2 <= s.cfg.MaxQueue {
		return false
	}
	s.q.rejected.Add(1)
	after := int(s.cfg.BreakerCooldown.Seconds())
	if after < 1 {
		after = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(after))
	httpError(w, http.StatusTooManyRequests, "fleet degraded (peer breaker open) and queue backed up: shedding %s", op)
	return true
}

// --- plumbing ----------------------------------------------------------------

// maxBodyBytes bounds request bodies; inline workload specs fit easily.
const maxBodyBytes = 1 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "parsing request: %v", err)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encode errors mean the client hung up mid-response; the status line
	// is already sent, so there is nothing useful left to report.
	_ = enc.Encode(v)
}

func writeComputeError(w http.ResponseWriter, err error) {
	var busy busyError
	switch {
	case errors.As(err, &busy):
		w.Header().Set("Retry-After", strconv.Itoa(int(busy.after.Seconds())))
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusServiceUnavailable, "request abandoned: %v", err)
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Best effort: the status code is already on the wire.
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
