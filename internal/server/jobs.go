package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/expstore"
	"repro/internal/journal"
	"repro/pkg/client"
)

// This file makes accepted jobs durable. Every job the daemon admits is
// appended to an fsynced journal (an "accept" record carrying the job's
// kind, store key and normalized spec) before any simulation starts, and a
// "done" record lands once the result is safely in the store. A daemon that
// is killed mid-job therefore restarts knowing exactly which computations it
// owes: RecoverJobs replays the journal and recomputes every accepted,
// un-finished job in the background, filling the store the crashed process
// was about to fill. Because every job is a pure function of its spec, the
// recovered bytes are identical to what the dead daemon would have produced.

// jobJournalKind is the journal.Header.Kind of a spurd job journal.
const jobJournalKind = "spurd-jobs"

// jobRecord is one journal entry: a job acceptance or completion.
type jobRecord struct {
	// Op is "accept" (job admitted, compute about to start) or "done"
	// (result persisted, or deterministically failed — either way there is
	// nothing left to recover).
	Op string `json:"op"`
	// Kind routes recovery: "run", "sweep", or "tables/<id>". Empty for
	// done records.
	Kind string `json:"kind,omitempty"`
	// Key is the job's content address in the result store.
	Key string `json:"key"`
	// Spec is the normalized request, as the handler hashed it. Empty for
	// done records.
	Spec json.RawMessage `json:"spec,omitempty"`
}

// jobLog is the durable accept/done journal plus its live counters.
type jobLog struct {
	mu      sync.Mutex
	w       *journal.Writer // guarded by mu
	pending map[string]bool // guarded by mu: keys accepted but not yet done

	accepted  atomic.Uint64
	completed atomic.Uint64
	recovered atomic.Uint64

	// replayed holds the jobs owed from the previous process, in arrival
	// order. It is written at open time and drained once by RecoverJobs
	// before the listener starts, so it needs no lock.
	replayed []jobRecord
}

// openJobLog opens (or creates) the job journal at path, replaying any
// existing records into the owed-jobs list. A journal written by a
// different code version is set aside (renamed to path+".stale") rather
// than replayed: its keys would never match this version's store addresses.
func openJobLog(path, version string, logf func(string, ...any)) (*jobLog, error) {
	hdr := journal.Header{Kind: jobJournalKind, Version: version}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		w, err := journal.Create(path, hdr)
		if err != nil {
			return nil, err
		}
		return &jobLog{w: w, pending: map[string]bool{}}, nil
	}
	rep, err := journal.Replay(path)
	if err != nil {
		return nil, fmt.Errorf("server: job journal %s: %w", path, err)
	}
	if rep.Header.Kind != jobJournalKind {
		return nil, fmt.Errorf("server: %s is a %q journal, not a job journal", path, rep.Header.Kind)
	}
	if rep.Header.Version != version {
		logf("spurd: job journal %s was written by version %q (this is %q); setting it aside", path, rep.Header.Version, version)
		if err := os.Rename(path, path+".stale"); err != nil {
			return nil, err
		}
		w, err := journal.Create(path, hdr)
		if err != nil {
			return nil, err
		}
		return &jobLog{w: w, pending: map[string]bool{}}, nil
	}

	// Replay: a done record settles every prior accept of its key, so a
	// job that was accepted, crashed, re-accepted on recovery and finished
	// stays settled. Order is preserved for the survivors.
	byKey := map[string]jobRecord{}
	var order []string
	for i, b := range rep.Entries {
		var r jobRecord
		if err := json.Unmarshal(b, &r); err != nil {
			return nil, fmt.Errorf("server: job journal %s record %d: %w", path, i, err)
		}
		switch r.Op {
		case "accept":
			if _, ok := byKey[r.Key]; !ok {
				order = append(order, r.Key)
			}
			byKey[r.Key] = r
		case "done":
			delete(byKey, r.Key)
		default:
			return nil, fmt.Errorf("server: job journal %s record %d: unknown op %q", path, i, r.Op)
		}
	}
	w, _, err := journal.Open(path)
	if err != nil {
		return nil, err
	}
	l := &jobLog{w: w, pending: map[string]bool{}}
	for _, k := range order {
		if r, ok := byKey[k]; ok {
			l.replayed = append(l.replayed, r)
			l.pending[k] = true
		}
	}
	return l, nil
}

// accept journals a job admission before its computation starts.
func (l *jobLog) accept(kind string, key expstore.Key, spec any) error {
	sb, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	b, err := json.Marshal(jobRecord{Op: "accept", Kind: kind, Key: string(key), Spec: sb})
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Append(b); err != nil {
		return err
	}
	l.accepted.Add(1)
	l.pending[string(key)] = true
	return nil
}

// done journals a job completion: its result is in the store, or it failed
// deterministically (recomputing would fail identically).
func (l *jobLog) done(key expstore.Key) error {
	b, err := json.Marshal(jobRecord{Op: "done", Key: string(key)})
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.Append(b); err != nil {
		return err
	}
	l.completed.Add(1)
	delete(l.pending, string(key))
	return nil
}

func (l *jobLog) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Close()
}

func (l *jobLog) stats() *client.JobsStats {
	l.mu.Lock()
	pending := len(l.pending)
	l.mu.Unlock()
	return &client.JobsStats{
		Journaled: l.accepted.Load(),
		Completed: l.completed.Load(),
		Recovered: l.recovered.Load(),
		Pending:   pending,
	}
}

// RecoverJobs recomputes every job the previous process accepted but never
// finished, in the background (one goroutine, arrival order — recovery must
// not starve live traffic of queue slots). It returns how many jobs are
// owed; WaitJobs blocks until they are settled.
func (s *Server) RecoverJobs() int {
	if s.jobs == nil {
		return 0
	}
	owed := s.jobs.replayed
	s.jobs.replayed = nil
	if len(owed) == 0 {
		return 0
	}
	s.recoverWG.Add(1)
	go func() {
		defer s.recoverWG.Done()
		for _, rec := range owed {
			if err := s.recoverJob(rec); err != nil {
				s.cfg.Logf("spurd: recovering %s job %.12s: %v", rec.Kind, rec.Key, err)
				continue
			}
			s.jobs.recovered.Add(1)
		}
	}()
	return len(owed)
}

// WaitJobs blocks until background job recovery has settled (or ctx
// expires).
func (s *Server) WaitJobs(ctx context.Context) error {
	ch := make(chan struct{})
	go func() {
		s.recoverWG.Wait()
		close(ch)
	}()
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// recoverJob replays one journaled accept record through the same memoize
// path a live request takes: if the crashed process managed to persist the
// result, this is a store hit; otherwise it recomputes and persists it.
func (s *Server) recoverJob(rec jobRecord) error {
	key := expstore.Key(rec.Key)
	ctx := context.Background()
	switch {
	case rec.Kind == "run":
		var req client.RunRequest
		if err := json.Unmarshal(rec.Spec, &req); err != nil {
			return err
		}
		_, _, err := s.memoize(ctx, key, rec.Kind, req, s.runJob(key, req))
		return err
	case rec.Kind == "sweep":
		var req client.SweepRequest
		if err := json.Unmarshal(rec.Spec, &req); err != nil {
			return err
		}
		_, _, err := s.memoize(ctx, key, rec.Kind, req, s.sweepJob(key, req))
		return err
	case rec.Kind == "sweep-sampled":
		var req client.SweepRequest
		if err := json.Unmarshal(rec.Spec, &req); err != nil {
			return err
		}
		_, _, err := s.memoize(ctx, key, rec.Kind, req, s.sampledSweepJob(key, req))
		return err
	case strings.HasPrefix(rec.Kind, "tables/"):
		id := strings.TrimPrefix(rec.Kind, "tables/")
		if !client.ValidTableID(id) {
			return fmt.Errorf("unknown table %q", id)
		}
		var q client.TablesQuery
		if err := json.Unmarshal(rec.Spec, &q); err != nil {
			return err
		}
		_, _, err := s.memoize(ctx, key, rec.Kind, q, s.tablesJob(key, id, q))
		return err
	default:
		return fmt.Errorf("unknown job kind %q", rec.Kind)
	}
}
