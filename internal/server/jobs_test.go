package server

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	spur "repro"
	"repro/internal/core"
	"repro/internal/expstore"
	"repro/pkg/client"
)

func testJobLog(t *testing.T, path string) *jobLog {
	t.Helper()
	l, err := openJobLog(path, spur.Version, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestJobLogReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	l := testJobLog(t, path)
	k1 := expstore.Key(strings.Repeat("1", 64))
	k2 := expstore.Key(strings.Repeat("2", 64))
	if err := l.accept("sweep", k1, client.SweepRequest{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.accept("run", k2, client.RunRequest{Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.done(k1); err != nil {
		t.Fatal(err)
	}
	st := l.stats()
	if st.Journaled != 2 || st.Completed != 1 || st.Pending != 1 {
		t.Fatalf("live stats = %+v, want 2 journaled, 1 completed, 1 pending", st)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	// A fresh process owes exactly the accepted-but-unfinished job.
	l2 := testJobLog(t, path)
	if len(l2.replayed) != 1 || l2.replayed[0].Key != string(k2) || l2.replayed[0].Kind != "run" {
		t.Fatalf("replayed = %+v, want the one unfinished run job", l2.replayed)
	}
	if st := l2.stats(); st.Pending != 1 {
		t.Fatalf("replayed pending = %d, want 1", st.Pending)
	}
	// Settling it and reopening owes nothing.
	if err := l2.done(k2); err != nil {
		t.Fatal(err)
	}
	if err := l2.close(); err != nil {
		t.Fatal(err)
	}
	l3 := testJobLog(t, path)
	if len(l3.replayed) != 0 {
		t.Fatalf("replayed after settle = %+v, want none", l3.replayed)
	}
	_ = l3.close()
}

func TestJobLogStaleVersionSetAside(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	l, err := openJobLog(path, "old-version", func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	k := expstore.Key(strings.Repeat("a", 64))
	if err := l.accept("run", k, client.RunRequest{}); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	// A new code version must not replay old-version jobs: their keys
	// address a different result space.
	l2 := testJobLog(t, path)
	defer func() { _ = l2.close() }()
	if len(l2.replayed) != 0 {
		t.Fatalf("replayed across versions = %+v, want none", l2.replayed)
	}
	if _, err := os.Stat(path + ".stale"); err != nil {
		t.Fatalf("stale journal not set aside: %v", err)
	}
}

// TestJobRecovery is the durable-jobs drill: a daemon that accepted a sweep
// but died before finishing it restarts, recovers the job from the journal,
// and then serves the request from the store — byte-identical to a local
// run of the same spec.
func TestJobRecovery(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "jobs.journal")
	storeDir := filepath.Join(dir, "store")

	// The "crashed" process: journal an accepted sweep, never finish it.
	req := client.SweepRequest{Workloads: []string{"SLC"}, SizesMB: []int{5}, Refs: testRefs, Seed: 9}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	keyReq := req
	keyReq.Format = ""
	key, err := expstore.KeyOf(spur.Version, "sweep", keyReq)
	if err != nil {
		t.Fatal(err)
	}
	l := testJobLog(t, jpath)
	if err := l.accept("sweep", key, keyReq); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	// The restarted process: recovery recomputes the owed sweep.
	s, err := New(Config{StoreDir: storeDir, JobJournal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if n := s.RecoverJobs(); n != 1 {
		t.Fatalf("RecoverJobs = %d, want 1", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.WaitJobs(ctx); err != nil {
		t.Fatalf("WaitJobs: %v", err)
	}
	if _, ok := s.Store().Get(key); !ok {
		t.Fatal("recovered sweep is not in the store")
	}
	st := s.jobs.stats()
	if st.Recovered != 1 || st.Pending != 0 {
		t.Fatalf("jobs stats = %+v, want 1 recovered, 0 pending", st)
	}

	// A client asking for the same sweep is served from the store,
	// byte-identical to a local serial run.
	ts := httptest.NewServer(s)
	defer ts.Close()
	c := client.New(ts.URL)
	body, meta, err := c.Sweep(context.Background(), client.SweepRequest{
		Workloads: []string{"SLC"}, SizesMB: []int{5}, Refs: testRefs, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Cached {
		t.Fatal("post-recovery request was recomputed, not served from the store")
	}
	want := spur.MemorySweepCSV(spur.MemorySweep(spur.MemorySweepOptions{
		SizesMB: []int{5}, Refs: testRefs, Seed: 9,
		Workloads: []core.WorkloadName{core.SLC},
	}))
	if string(body) != want {
		t.Fatalf("recovered sweep differs from local run:\n%s\nvs\n%s", body, want)
	}

	// Health reports the journal counters.
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Jobs == nil || h.Jobs.Recovered != 1 {
		t.Fatalf("healthz jobs = %+v, want recovered=1", h.Jobs)
	}
}

// TestDrainPersistsJobs is the SIGTERM-drain chaos drill, in-process: a
// daemon with a journaled, unfinished job drains and closes; a second
// daemon over the same journal and store completes the job and serves it
// byte-identical.
func TestDrainPersistsJobs(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "jobs.journal")
	storeDir := filepath.Join(dir, "store")
	req := client.SweepRequest{Workloads: []string{"SLC"}, SizesMB: []int{4}, Refs: testRefs, Seed: 3}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	keyReq := req
	keyReq.Format = ""
	key, err := expstore.KeyOf(spur.Version, "sweep", keyReq)
	if err != nil {
		t.Fatal(err)
	}

	// Daemon 1 accepts the job and "dies" (drain + close) before finishing:
	// simulated by journaling the accept exactly as memoize does, then
	// closing — the compute never happens.
	s1, err := New(Config{StoreDir: storeDir, JobJournal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	s1.StartDraining()
	if err := s1.jobs.accept("sweep", key, keyReq); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Daemon 2 inherits journal + store and repays the job.
	s2, err := New(Config{StoreDir: storeDir, JobJournal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s2.Close() }()
	if n := s2.RecoverJobs(); n != 1 {
		t.Fatalf("RecoverJobs = %d, want 1", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s2.WaitJobs(ctx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s2)
	defer ts.Close()
	body, meta, err := client.New(ts.URL).Sweep(context.Background(), client.SweepRequest{
		Workloads: []string{"SLC"}, SizesMB: []int{4}, Refs: testRefs, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Cached {
		t.Fatal("restarted daemon recomputed a job it should have recovered")
	}
	want := spur.MemorySweepCSV(spur.MemorySweep(spur.MemorySweepOptions{
		SizesMB: []int{4}, Refs: testRefs, Seed: 3,
		Workloads: []core.WorkloadName{core.SLC},
	}))
	if string(body) != want {
		t.Fatalf("recovered sweep differs from local run:\n%s\nvs\n%s", body, want)
	}
}
