package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	spur "repro"
	"repro/internal/cluster"
	"repro/internal/expstore"
	"repro/pkg/client"
)

// drillClient makes the tests' direct HTTP calls. Keep-alives are off
// because nodes are killed and restarted on the same address mid-test: a
// pooled connection into the dead instance would surface as an EOF that
// has nothing to do with the behavior under test.
var drillClient = &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}

// testNode is one fleet member run in-process: a real Server behind a real
// TCP listener, killable and restartable on the same address and store.
type testNode struct {
	t        *testing.T
	url      string
	addr     string
	storeDir string
	cfg      Config
	srv      *Server
	hs       *http.Server
	computes atomic.Int64
	done     chan struct{}
}

// start binds (or rebinds) the node's address and serves a fresh Server
// over the node's persistent store and outbox journal.
func (n *testNode) start(ln net.Listener) {
	n.t.Helper()
	if ln == nil {
		var err error
		if ln, err = net.Listen("tcp", n.addr); err != nil {
			n.t.Fatalf("rebinding %s: %v", n.addr, err)
		}
	}
	srv, err := New(n.cfg)
	if err != nil {
		n.t.Fatal(err)
	}
	n.srv = srv
	n.hs = &http.Server{Handler: srv}
	n.done = make(chan struct{})
	go func(hs *http.Server, done chan struct{}) {
		defer close(done)
		// ErrServerClosed is the normal kill path; anything else would
		// surface as the test's requests failing.
		_ = hs.Serve(ln)
	}(n.hs, n.done)
}

// kill stops the node abruptly: listener and connections die mid-flight,
// no drain. Journals stay on disk exactly as a crash would leave them.
func (n *testNode) kill() {
	n.t.Helper()
	if err := n.hs.Close(); err != nil {
		n.t.Logf("killing node %s: %v", n.url, err)
	}
	<-n.done
	// The process would be gone after SIGKILL; releasing the journal file
	// handles stands in for that so the restart can reopen them.
	if err := n.srv.Close(); err != nil {
		n.t.Logf("closing killed node %s: %v", n.url, err)
	}
}

// wipeStore simulates losing the node's disk.
func (n *testNode) wipeStore() {
	n.t.Helper()
	if err := os.RemoveAll(n.storeDir); err != nil {
		n.t.Fatal(err)
	}
}

// testCluster is a 3-node fleet plus the ring the tests use to predict
// placement.
type testCluster struct {
	nodes []*testNode
	urls  []string
	ring  *cluster.Ring
	rep   int
}

func startCluster(t *testing.T, n, replication int) *testCluster {
	t.Helper()
	// Peer URLs must be known before any node starts, so bind first.
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	ring, err := cluster.NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{urls: urls, ring: ring, rep: replication}
	for i := range urls {
		node := &testNode{
			t:        t,
			url:      urls[i],
			addr:     strings.TrimPrefix(urls[i], "http://"),
			storeDir: t.TempDir(),
		}
		node.cfg = Config{
			StoreDir:    node.storeDir,
			Self:        node.url,
			Peers:       urls,
			Replication: replication,
			Outbox:      node.storeDir + "/outbox.journal",
			PeerTimeout: 2 * time.Second,
			Logf: func(format string, args ...any) {
				if strings.Contains(format, "computed") {
					node.computes.Add(1)
				}
			},
		}
		node.start(lns[i])
		tc.nodes = append(tc.nodes, node)
		t.Cleanup(func() {
			if err := node.hs.Close(); err == nil || err == http.ErrServerClosed {
				_ = node.srv.Close()
			}
		})
	}
	return tc
}

func (tc *testCluster) node(url string) *testNode {
	for _, n := range tc.nodes {
		if n.url == url {
			return n
		}
	}
	tc.nodes[0].t.Fatalf("no node at %s", url)
	return nil
}

// placement returns (replica URLs owner-first, one non-replica URL) for a
// key, skipping t if the replication factor leaves no non-replica.
func (tc *testCluster) placement(key expstore.Key) (replicas []string, outsider string) {
	replicas = tc.ring.Replicas(string(key), tc.rep)
	for _, u := range tc.urls {
		in := false
		for _, r := range replicas {
			if r == u {
				in = true
			}
		}
		if !in {
			return replicas, u
		}
	}
	return replicas, ""
}

// sweepKey computes the store key for a sweep request exactly as the
// server does (Format stripped).
func sweepKey(t *testing.T, req client.SweepRequest) expstore.Key {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	req.Format = ""
	key, err := expstore.KeyOf(spur.Version, "sweep", req)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func testSweepReq(seed uint64) client.SweepRequest {
	return client.SweepRequest{
		Workloads: []string{"SLC"},
		SizesMB:   []int{2, 3},
		Policies:  []string{"MISS"},
		Refs:      testRefs / 4,
		Seed:      seed,
	}
}

// rawSweep posts a sweep straight at one node (no client retries) and
// returns body + the node that served it.
func rawSweep(t *testing.T, url string, req client.SweepRequest, hops int) (body []byte, servedBy string, status int) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/sweep", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if hops >= 0 {
		hreq.Header.Set("X-Spur-Hops", fmt.Sprint(hops))
	}
	resp, err := drillClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST %s/v1/sweep: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), resp.Header.Get("X-Spur-Node"), resp.StatusCode
}

// waitReplicated polls until every replica of key holds the blob (the
// outbox delivers asynchronously) or the deadline passes.
func (tc *testCluster) waitReplicated(t *testing.T, key expstore.Key) {
	t.Helper()
	replicas, _ := tc.placement(key)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, u := range replicas {
			if !tc.node(u).srv.Store().Has(key) {
				all = false
			}
		}
		if all {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("blob %.12s not on all replicas %v within deadline", key, replicas)
}

// TestPeerAnswered pins breaker accounting for peer statuses:
// a plain 4xx is a healthy authoritative answer, but 429 is the peer
// shedding load and must count as a failure so the breaker can open.
func TestPeerAnswered(t *testing.T) {
	cases := []struct {
		code int
		want bool
	}{
		{http.StatusNotFound, true},
		{http.StatusBadRequest, true},
		{http.StatusTooManyRequests, false},
		{http.StatusInternalServerError, false},
		{http.StatusBadGateway, false},
		{http.StatusOK, false}, // never asked for 2xx; callers Record(true) directly
	}
	for _, c := range cases {
		if got := peerAnswered(c.code); got != c.want {
			t.Errorf("peerAnswered(%d) = %v, want %v", c.code, got, c.want)
		}
	}
}

func TestClusterProxyRoutesToReplica(t *testing.T) {
	tc := startCluster(t, 3, 2)
	req := testSweepReq(11)
	key := sweepKey(t, req)
	replicas, outsider := tc.placement(key)
	if outsider == "" {
		t.Fatal("replication 2 of 3 must leave one non-replica")
	}

	body, servedBy, status := rawSweep(t, outsider, req, -1)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if servedBy != replicas[0] {
		t.Errorf("served by %s, want owner %s (via proxy from %s)", servedBy, replicas[0], outsider)
	}
	if tc.node(outsider).computes.Load() != 0 {
		t.Error("non-replica computed instead of proxying")
	}
	tc.waitReplicated(t, key)
	if tc.node(outsider).srv.Store().Has(key) {
		t.Error("non-replica ended up holding the blob")
	}
}

func TestClusterHopBudgetServesLocally(t *testing.T) {
	tc := startCluster(t, 3, 2)
	req := testSweepReq(12)
	key := sweepKey(t, req)
	_, outsider := tc.placement(key)

	// A request arriving with the hop budget already spent must not be
	// forwarded again — the node computes locally and says so.
	body, servedBy, status := rawSweep(t, outsider, req, 2)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if servedBy != outsider {
		t.Errorf("served by %s, want local serve on %s after hop budget", servedBy, outsider)
	}
	if tc.node(outsider).computes.Load() == 0 {
		t.Error("hop-exhausted node did not compute locally")
	}
}

func TestClusterAllReplicasDownComputesLocally(t *testing.T) {
	tc := startCluster(t, 3, 2)
	req := testSweepReq(13)
	key := sweepKey(t, req)
	replicas, outsider := tc.placement(key)
	for _, u := range replicas {
		tc.node(u).kill()
	}

	body, servedBy, status := rawSweep(t, outsider, req, -1)
	if status != http.StatusOK {
		t.Fatalf("status %d with replicas down: %s", status, body)
	}
	if servedBy != outsider {
		t.Errorf("served by %s, want availability-first local compute on %s", servedBy, outsider)
	}
}

func TestClusterHealthzReportsFleet(t *testing.T) {
	tc := startCluster(t, 3, 2)
	c := client.New(tc.urls[0])
	c.Retries = -1
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil {
		t.Fatal("clustered /healthz has no cluster section")
	}
	if h.Cluster.Self != tc.urls[0] || h.Cluster.Peers != 3 || h.Cluster.Replication != 2 {
		t.Errorf("cluster stats %+v, want self=%s peers=3 replication=2", h.Cluster, tc.urls[0])
	}
	if h.Version != spur.Version {
		t.Errorf("healthz version %q, want %q", h.Version, spur.Version)
	}
}

func TestClusterMembershipEndpoint(t *testing.T) {
	tc := startCluster(t, 3, 2)
	tc.nodes[2].kill()

	resp, err := drillClient.Get(tc.urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info cluster.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Self != tc.urls[0] || len(info.Peers) != 3 {
		t.Fatalf("membership %+v, want self + 3 peers", info)
	}
	status := map[string]string{}
	for _, p := range info.Peers {
		status[p.URL] = p.Status
	}
	if status[tc.urls[0]] != "self" || status[tc.urls[1]] != "ok" || status[tc.urls[2]] != "down" {
		t.Errorf("peer status %v, want self/ok/down", status)
	}
}

func TestClusterRepairWithoutRecompute(t *testing.T) {
	tc := startCluster(t, 3, 2)
	req := testSweepReq(14)
	key := sweepKey(t, req)
	replicas, _ := tc.placement(key)
	owner := tc.node(replicas[0])

	want, _, status := rawSweep(t, owner.url, req, -1)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	tc.waitReplicated(t, key)

	// The second replica loses its disk and restarts empty.
	victim := tc.node(replicas[1])
	victim.kill()
	victim.wipeStore()
	victim.start(nil)
	if victim.srv.Store().Has(key) {
		t.Fatal("wiped node still has the blob")
	}

	// One on-demand scrub+repair pass must refill it from the owner —
	// hash-verified, counted, and with zero simulator work.
	resp, err := drillClient.Post(victim.url+"/v1/cluster/scrub", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep struct {
		Scrub  expstore.ScrubReport `json:"scrub"`
		Repair RepairReport         `json:"repair"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Repair.Repaired == 0 {
		t.Fatalf("repair pass restored nothing: %+v", rep.Repair)
	}
	if !victim.srv.Store().Has(key) {
		t.Fatal("blob not restored on the wiped replica")
	}
	if got := victim.srv.Store().Stats().Repaired; got == 0 {
		t.Error("store Repaired counter not bumped")
	}
	if victim.computes.Load() != 0 {
		t.Error("repair recomputed instead of fetching from a replica")
	}

	// And the repaired bytes answer requests byte-identically.
	got, _, status := rawSweep(t, victim.url, req, -1)
	if status != http.StatusOK {
		t.Fatalf("status %d after repair", status)
	}
	if !bytes.Equal(got, want) {
		t.Error("repaired node serves different bytes than the original compute")
	}
	if victim.computes.Load() != 0 {
		t.Error("serving the repaired blob burned simulator cycles")
	}
}

// TestClusterKillDrill is the acceptance drill: three nodes, live load, one
// node killed mid-drill. Every request — before, during, after — completes,
// repeated requests return byte-identical bodies, and the restarted node is
// healed from its replicas without recomputing anything.
func TestClusterKillDrill(t *testing.T) {
	tc := startCluster(t, 3, 2)
	fleet, err := client.NewFleet(tc.urls, client.FleetOptions{Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	fleet.Template.Backoff = 5 * time.Millisecond
	fleet.Template.MaxBackoff = 50 * time.Millisecond

	ctx := context.Background()
	seeds := []uint64{21, 22, 23, 24}
	baseline := map[uint64][]byte{}
	for _, seed := range seeds {
		body, _, err := fleet.Sweep(ctx, testSweepReq(seed))
		if err != nil {
			t.Fatalf("baseline sweep seed %d: %v", seed, err)
		}
		baseline[seed] = body
	}
	for _, seed := range seeds {
		tc.waitReplicated(t, sweepKey(t, testSweepReq(seed)))
	}

	// Kill one replica-holding node mid-drill.
	victim := tc.node(tc.ring.Replicas(string(sweepKey(t, testSweepReq(seeds[0]))), 2)[0])
	victim.kill()

	// The degraded fleet still answers everything: the old seeds
	// byte-identically (from surviving replicas), and brand-new work too.
	newSeeds := []uint64{25, 26}
	for _, seed := range seeds {
		body, _, err := fleet.Sweep(ctx, testSweepReq(seed))
		if err != nil {
			t.Fatalf("degraded sweep seed %d: %v", seed, err)
		}
		if !bytes.Equal(body, baseline[seed]) {
			t.Errorf("seed %d: degraded fleet returned different bytes", seed)
		}
	}
	for _, seed := range newSeeds {
		body, _, err := fleet.Sweep(ctx, testSweepReq(seed))
		if err != nil {
			t.Fatalf("sweep seed %d with a node down: %v", seed, err)
		}
		baseline[seed] = body
	}

	// Restart the victim on its old store and scrub: anything it now owes
	// (computed while it was dead) is pulled from replicas, not recomputed.
	victim.start(nil)
	computesBefore := victim.computes.Load()
	resp, err := drillClient.Post(victim.url+"/v1/cluster/scrub", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if victim.computes.Load() != computesBefore {
		t.Error("post-restart repair recomputed results")
	}
	for seed := range baseline {
		key := sweepKey(t, testSweepReq(seed))
		if tc.ring.Owns(victim.url, string(key), 2) && !victim.srv.Store().Has(key) {
			t.Errorf("restarted node missing replica blob for seed %d", seed)
		}
	}

	// Whole-fleet replay: every node, every seed, byte-identical.
	for _, seed := range append(seeds, newSeeds...) {
		body, _, err := fleet.Sweep(ctx, testSweepReq(seed))
		if err != nil {
			t.Fatalf("healed-fleet sweep seed %d: %v", seed, err)
		}
		if !bytes.Equal(body, baseline[seed]) {
			t.Errorf("seed %d: healed fleet returned different bytes", seed)
		}
	}
}
