package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expstore"
	"repro/pkg/client"
)

// busyError is the admission controller's load-shedding signal; handlers
// map it to 429 with a Retry-After header.
type busyError struct{ after time.Duration }

func (e busyError) Error() string {
	return fmt.Sprintf("server at capacity, retry after %s", e.after)
}

// queue is the daemon's bounded job queue: MaxRun jobs hold worker slots,
// up to MaxQueue more wait for one, and everything beyond that is shed
// immediately with a retry hint instead of being allowed to pile up.
type queue struct {
	slots    chan struct{}
	maxQueue int

	mu       sync.Mutex
	waiting  int // guarded by mu
	running  atomic.Int64
	rejected atomic.Uint64
}

func newQueue(maxRun, maxQueue int) *queue {
	return &queue{slots: make(chan struct{}, maxRun), maxQueue: maxQueue}
}

// acquire claims a worker slot, waiting in the bounded queue if all slots
// are busy. It returns a release func, or a busyError when the queue is
// full (admission control), or the context's error if the caller gives up
// while waiting.
func (q *queue) acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot means no queueing and no shedding,
	// regardless of how small the waiting room is.
	select {
	case q.slots <- struct{}{}:
		q.running.Add(1)
		return func() {
			q.running.Add(-1)
			<-q.slots
		}, nil
	default:
	}
	q.mu.Lock()
	if q.waiting >= q.maxQueue {
		waiting := q.waiting
		q.mu.Unlock()
		q.rejected.Add(1)
		// Experiments run for seconds; hint proportionally to the
		// backlog, capped so clients never stall for minutes.
		after := time.Duration(1+waiting) * time.Second
		if after > 30*time.Second {
			after = 30 * time.Second
		}
		return nil, busyError{after: after}
	}
	q.waiting++
	q.mu.Unlock()
	defer func() {
		q.mu.Lock()
		q.waiting--
		q.mu.Unlock()
	}()
	select {
	case q.slots <- struct{}{}:
		q.running.Add(1)
		return func() {
			q.running.Add(-1)
			<-q.slots
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// waitingCount is the current queued-but-not-running depth, for the
// degraded-fleet load shedder.
func (q *queue) waitingCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiting
}

// stats snapshots the queue for /healthz.
func (q *queue) stats(deduped uint64) client.QueueStats {
	q.mu.Lock()
	waiting := q.waiting
	q.mu.Unlock()
	return client.QueueStats{
		Running:  int(q.running.Load()),
		Waiting:  waiting,
		MaxRun:   cap(q.slots),
		MaxQueue: q.maxQueue,
		Rejected: q.rejected.Load(),
		Deduped:  deduped,
	}
}

// flight deduplicates identical in-flight computations: the first request
// for a key becomes the leader and computes; followers block on the
// leader's result instead of queueing duplicate simulator work.
type flight struct {
	mu      sync.Mutex
	calls   map[expstore.Key]*call // guarded by mu
	deduped atomic.Uint64
}

type call struct {
	done chan struct{}
	data []byte
	err  error
}

func newFlight() *flight { return &flight{calls: make(map[expstore.Key]*call)} }

// do runs fn once per key across concurrent callers. The leader (leader ==
// true) executes fn; followers wait for its outcome or their own context,
// whichever ends first.
func (f *flight) do(ctx context.Context, k expstore.Key, fn func() ([]byte, error)) (data []byte, leader bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[k]; ok {
		f.mu.Unlock()
		f.deduped.Add(1)
		select {
		case <-c.done:
			return c.data, false, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	f.calls[k] = c
	f.mu.Unlock()

	c.data, c.err = fn()
	f.mu.Lock()
	delete(f.calls, k)
	f.mu.Unlock()
	close(c.done)
	return c.data, true, c.err
}
