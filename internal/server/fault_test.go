package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/pkg/client"
)

// TestHealthzReportsBreakersAndOutboxAge drills the degraded-fleet
// observability surface: with one peer dead, /healthz on the survivor
// must show the undelivered outbox backlog, its growing age, and — once
// the survivor's outgoing breaker trips — that peer marked "open".
func TestHealthzReportsBreakersAndOutboxAge(t *testing.T) {
	tc := startCluster(t, 2, 2)
	survivor, victim := tc.nodes[0], tc.nodes[1]
	victim.kill()

	// A compute on the survivor owes its result to the dead replica.
	req := testSweepReq(41)
	if _, _, status := rawSweep(t, survivor.url, req, -1); status != http.StatusOK {
		t.Fatalf("sweep on survivor: status %d", status)
	}
	time.Sleep(50 * time.Millisecond) // let the owed intent age measurably

	c := client.New(survivor.url)
	c.Retries = -1
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Cluster == nil {
		t.Fatal("clustered /healthz has no cluster section")
	}
	if h.Cluster.Outbox.Pending < 1 {
		t.Fatalf("outbox pending = %d, want >= 1 (victim is dead)", h.Cluster.Outbox.Pending)
	}
	if h.Cluster.Outbox.OldestAgeSec <= 0 {
		t.Fatalf("oldest pending age = %v, want > 0", h.Cluster.Outbox.OldestAgeSec)
	}
	if got := h.Cluster.Breakers[victim.url]; got == "" {
		t.Fatalf("breakers %v missing entry for %s", h.Cluster.Breakers, victim.url)
	}

	// Three straight inventory failures (default threshold) trip the
	// survivor's breaker for the dead peer.
	for i := 0; i < 3; i++ {
		survivor.srv.RepairFromPeers(context.Background())
	}
	h, err = c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Cluster.Breakers[victim.url]; got != "open" {
		t.Fatalf("breaker for dead peer = %q, want open (map %v)", got, h.Cluster.Breakers)
	}
}

// TestNetFaultMiddlewareDropsSeededRequests wires a NetInjector into a
// single node and checks the listener-side drop rule fires on exactly the
// scheduled request — and that the same seed gives the same schedule.
func TestNetFaultMiddlewareDropsSeededRequests(t *testing.T) {
	inj := faultinject.NewNet(faultinject.NetRule{
		Fault: faultinject.NetDrop, Op: "healthz", Every: 2,
	})
	srv, err := New(Config{NetFaults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	var outcomes []bool
	for i := 0; i < 6; i++ {
		req, err := http.NewRequest(http.MethodGet, hs.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := drillClient.Do(req)
		if err != nil {
			outcomes = append(outcomes, false)
			continue
		}
		resp.Body.Close()
		outcomes = append(outcomes, resp.StatusCode == http.StatusOK)
	}
	want := []bool{true, false, true, false, true, false} // every 2nd call dropped
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("healthz outcomes = %v, want %v (drop cadence every=2)", outcomes, want)
		}
	}
	lg := inj.NetLog()
	if len(lg) != 3 {
		t.Fatalf("injector logged %d faults, want 3", len(lg))
	}
	for _, r := range lg {
		if r.Op != "healthz" {
			t.Fatalf("fault fired on op %q, want healthz", r.Op)
		}
	}
}

// TestShedsHeavyOpsWhenDegraded pins the op-class load shedder: with a
// peer's breaker open and the waiting room over half full, a sweep that
// would compute is shed with 429 + Retry-After, while a cache hit for the
// very same key is still served.
func TestShedsHeavyOpsWhenDegraded(t *testing.T) {
	urls := []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}
	srv, err := New(Config{
		Self:        urls[0],
		Peers:       urls,
		Replication: 1, // this node owns what it computes; no proxying
		MaxRun:      1,
		MaxQueue:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Trip the peer's breaker: three consecutive recorded failures.
	br := srv.cluster.breakers[urls[1]]
	for i := 0; i < 3; i++ {
		if !br.Allow() {
			t.Fatal("breaker opened early")
		}
		br.Record(false)
	}
	if !srv.cluster.anyBreakerOpen() {
		t.Fatal("breaker did not open")
	}

	// Fill the slot and more than half the waiting room.
	release, err := srv.q.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	waitCtx, cancelWaiters := context.WithCancel(context.Background())
	defer cancelWaiters()
	for i := 0; i < 2; i++ {
		go func() {
			if rel, err := srv.q.acquire(waitCtx); err == nil {
				rel()
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.q.waitingCount() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue waiters never parked")
		}
		time.Sleep(time.Millisecond)
	}

	req := testSweepReq(43)
	body, _, status := rawSweepVia(t, srv, req)
	if status != http.StatusTooManyRequests {
		t.Fatalf("degraded sweep: status %d body %s, want 429", status, body)
	}

	// The same key served from cache bypasses the shedder entirely.
	key := sweepKey(t, req)
	if err := srv.store.Put(key, []byte("[]")); err != nil {
		t.Fatal(err)
	}
	body, hdr, status := rawSweepVia(t, srv, req)
	if status != http.StatusOK {
		t.Fatalf("cached sweep under degradation: status %d body %s, want 200", status, body)
	}
	if hdr.Get("X-Spur-Cached") != "true" {
		t.Fatalf("cached sweep not marked cached (headers %v)", hdr)
	}
}

// rawSweepVia posts a sweep straight at an in-process handler.
func rawSweepVia(t *testing.T, h http.Handler, req client.SweepRequest) ([]byte, http.Header, int) {
	t.Helper()
	payload := mustJSON(t, req)
	hr := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(payload))
	hr.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, hr)
	return rec.Body.Bytes(), rec.Result().Header, rec.Code
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestOutboxBreakerRecovers checks the full heal cycle end to end: a dead
// replica trips the survivor's breaker, the outbox holds the debt, and
// once the replica is back a half-open probe closes the breaker and the
// blob is delivered.
func TestOutboxBreakerRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second recovery drill")
	}
	tc := startCluster(t, 2, 2)
	survivor, victim := tc.nodes[0], tc.nodes[1]
	victim.kill()

	req := testSweepReq(47)
	if _, _, status := rawSweep(t, survivor.url, req, -1); status != http.StatusOK {
		t.Fatalf("sweep on survivor: status %d", status)
	}
	key := sweepKey(t, req)
	if !survivor.srv.Store().Has(key) {
		t.Fatal("survivor did not store its compute")
	}

	victim.start(nil)
	// The outbox retries on capped backoff and the breaker admits a probe
	// after its cooldown (5 s default); within the deadline the revived
	// replica must hold the blob.
	deadline := time.Now().Add(25 * time.Second)
	for !victim.srv.Store().Has(key) {
		if time.Now().After(deadline) {
			st := survivor.srv.cluster.outbox.Stats()
			t.Fatalf("revived replica never got %.12s (outbox %+v, breakers %v)",
				key, st, survivor.srv.cluster.breakerStates())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got := survivor.srv.cluster.breakerStates()[victim.url]; got != "closed" {
		t.Fatalf("breaker after recovery = %q, want closed", got)
	}
}
