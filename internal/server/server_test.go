package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	spur "repro"
	"repro/internal/core"
	"repro/internal/expstore"
	"repro/pkg/client"
)

// testRefs keeps service-test simulations quick.
const testRefs = 200_000

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	if cfg.StoreDir == "" && cfg.Store == nil {
		cfg.StoreDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	c := client.New(ts.URL)
	c.Retries = -1 // tests assert statuses, not retry behavior
	return s, ts, c
}

// TestSweepMemoized is the PR's acceptance criterion: an identical
// /v1/sweep request served twice returns byte-identical CSV, with the
// second response answered from the store — hit counter up, zero new
// simulator work — and both byte-identical to the local serial sweep.
func TestSweepMemoized(t *testing.T) {
	var computes atomic.Int64
	s, _, c := newTestServer(t, Config{
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "computed") {
				computes.Add(1)
			}
		},
	})
	req := client.SweepRequest{
		Workloads: []string{"SLC"},
		SizesMB:   []int{4, 5},
		Refs:      testRefs,
		Seed:      7,
		Reps:      2,
	}
	first, meta1, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if meta1.Cached {
		t.Error("first sweep claims cached")
	}
	hitsBefore := s.Store().Stats().Hits()
	second, meta2, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !meta2.Cached {
		t.Error("second identical sweep not served from the store")
	}
	if meta1.Key == "" || meta1.Key != meta2.Key {
		t.Errorf("keys differ: %q vs %q", meta1.Key, meta2.Key)
	}
	if !bytes.Equal(first, second) {
		t.Error("second response not byte-identical to the first")
	}
	if got := s.Store().Stats().Hits(); got != hitsBefore+1 {
		t.Errorf("store hits %d -> %d, want one more", hitsBefore, got)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("%d sweep computations, want 1 (no simulator cycles on the re-run)", n)
	}

	// And the store-backed remote output matches the local serial sweep
	// byte for byte.
	local := spur.MemorySweepCSV(spur.MemorySweep(spur.MemorySweepOptions{
		Workloads: []core.WorkloadName{core.SLC},
		SizesMB:   []int{4, 5},
		Refs:      testRefs,
		Seed:      7,
		Reps:      2,
		Parallel:  1,
	}))
	if string(first) != local {
		t.Error("remote CSV differs from local serial sweep")
	}

	// Equivalent spellings of the same experiment share one key: the
	// normalizer fills identical defaults.
	spelled := req
	spelled.Policies = []string{"miss", "Ref", "NOREF"}
	spelled.Format = client.FormatCSV
	third, meta3, err := c.Sweep(context.Background(), spelled)
	if err != nil {
		t.Fatal(err)
	}
	if !meta3.Cached || meta3.Key != meta1.Key {
		t.Errorf("equivalent request missed the store (cached=%v key=%q)", meta3.Cached, meta3.Key)
	}
	if !bytes.Equal(first, third) {
		t.Error("equivalent request returned different bytes")
	}
}

func TestSweepChartFormatSharesStore(t *testing.T) {
	s, _, c := newTestServer(t, Config{})
	req := client.SweepRequest{
		Workloads: []string{"SLC"}, SizesMB: []int{4, 5}, Refs: testRefs,
	}
	if _, _, err := c.Sweep(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	req.Format = client.FormatChart
	chart, meta, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Cached {
		t.Error("chart rendering of a stored sweep re-simulated")
	}
	if !strings.Contains(string(chart), "Page-ins vs memory size") {
		t.Errorf("chart body missing title:\n%s", chart)
	}
	if st := s.Store().Stats(); st.Puts != 1 {
		t.Errorf("store puts = %d, want 1 shared entry", st.Puts)
	}
}

func TestRunMemoized(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	req := client.RunRequest{Workload: "slc", MemMB: 5, Refs: testRefs, Seed: 3}
	r1, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Error("first run claims cached")
	}
	if r1.Result.Refs != testRefs || r1.Result.Events.PageIns == 0 {
		t.Errorf("implausible result: %+v", r1.Result)
	}
	r2, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.Key != r1.Key {
		t.Errorf("re-run not cached (cached=%v, keys %q vs %q)", r2.Cached, r2.Key, r1.Key)
	}
	a, _ := json.Marshal(r1.Result)
	b, _ := json.Marshal(r2.Result)
	if !bytes.Equal(a, b) {
		t.Error("cached result differs from computed result")
	}

	// The same run against a local simulator gives the same numbers.
	cfg := spur.DefaultConfig()
	cfg.MemoryBytes = core.MiB(5)
	cfg.TotalRefs = testRefs
	cfg.Seed = 3
	local := spur.Run(cfg, spur.SLC())
	if local.Events != r1.Result.Events {
		t.Errorf("remote events diverge from local run:\nremote %+v\nlocal  %+v", r1.Result.Events, local.Events)
	}
}

func TestRunHardenedAndFaults(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	req := client.RunRequest{
		Workload: "slc", MemMB: 5, Refs: testRefs, Seed: 3,
		Faults:   []spur.FaultPlan{{Kind: spur.FaultSnoopDelay, Every: 50_000}},
		Hardened: &client.HardenedOptions{AuditEvery: 100_000},
	}
	r, err := c.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r.Failure != nil {
		t.Fatalf("benign fault plan quarantined the run: %v", r.Failure)
	}
	if r.Result.Refs != testRefs {
		t.Errorf("refs = %d", r.Result.Refs)
	}
}

func TestRunValidation(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	for name, req := range map[string]client.RunRequest{
		"unknown workload": {Workload: "doom"},
		"bad dirty":        {Dirty: "SHINY"},
		"bad ref":          {Ref: "MAYBE"},
		"negative refs":    {Refs: -1},
		"spec and name":    {Workload: "slc", Spec: &spur.Spec{}},
	} {
		_, err := c.Run(context.Background(), req)
		se, ok := err.(*client.StatusError)
		if !ok || se.Code != http.StatusBadRequest {
			t.Errorf("%s: err = %v, want 400", name, err)
		}
	}
}

func TestTablesEndpoint(t *testing.T) {
	_, _, c := newTestServer(t, Config{})
	resp, err := c.Tables(context.Background(), "2.1", client.TablesQuery{Paper: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) != 1 || !strings.Contains(resp.Docs[0].Title, "Table 2.1") {
		t.Fatalf("docs = %+v", resp.Docs)
	}
	if len(resp.Docs[0].Rows) == 0 {
		t.Error("table has no rows")
	}
	again, err := c.Tables(context.Background(), "2.1", client.TablesQuery{Paper: true})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("second tables fetch not cached")
	}
	// Figures arrive as pre-rendered text docs.
	fig, err := c.Tables(context.Background(), "f3.1", client.TablesQuery{Paper: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Docs) != 1 || fig.Docs[0].Text == "" {
		t.Errorf("figure docs = %+v", fig.Docs)
	}
	if _, err := c.Tables(context.Background(), "9.9", client.TablesQuery{}); err == nil {
		t.Error("unknown table id accepted")
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, _, c := newTestServer(t, Config{MaxRun: 3, MaxQueue: 5})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != spur.Version {
		t.Errorf("health = %+v", h)
	}
	if h.Queue.MaxRun != 3 || h.Queue.MaxQueue != 5 {
		t.Errorf("queue config = %+v", h.Queue)
	}
	s.StartDraining()
	h, err = c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("status = %q after StartDraining", h.Status)
	}
}

func TestAdmissionControl(t *testing.T) {
	s, _, c := newTestServer(t, Config{MaxRun: 1, MaxQueue: -1})
	// Occupy the only worker slot directly, so the next request must be
	// shed — no timing dependence.
	release, err := s.q.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	_, err = c.Run(context.Background(), client.RunRequest{Refs: 1000})
	se, ok := err.(*client.StatusError)
	if !ok || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want 429", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("shed request blocked instead of failing fast")
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Queue.Rejected == 0 {
		t.Error("rejection not counted")
	}
	// healthz itself never queues — it stayed reachable throughout.
}

func TestRetryAfterHeader(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{MaxRun: 1, MaxQueue: -1})
	release, err := s.q.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", strings.NewReader(`{"refs":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestInFlightDedupe(t *testing.T) {
	fl := newFlight()
	var invocations atomic.Int64
	entered := make(chan struct{})
	proceed := make(chan struct{})
	key, done := makeKey(t), make(chan []byte, 2)
	leaderFn := func() ([]byte, error) {
		invocations.Add(1)
		close(entered)
		<-proceed
		return []byte("answer"), nil
	}
	go func() {
		data, _, _ := fl.do(context.Background(), key, leaderFn)
		done <- data
	}()
	<-entered // the leader is inside fn; the follower must not re-enter
	go func() {
		data, _, _ := fl.do(context.Background(), key, leaderFn)
		done <- data
	}()
	// Give the follower a moment to attach, then let the leader finish.
	time.Sleep(10 * time.Millisecond)
	close(proceed)
	for i := 0; i < 2; i++ {
		if string(<-done) != "answer" {
			t.Error("wrong answer")
		}
	}
	if n := invocations.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if fl.deduped.Load() != 1 {
		t.Errorf("deduped = %d", fl.deduped.Load())
	}
}

func TestConcurrentIdenticalRequestsComputeOnce(t *testing.T) {
	var computes atomic.Int64
	s, _, c := newTestServer(t, Config{
		MaxRun: 4,
		Logf: func(format string, args ...any) {
			if strings.Contains(format, "computed") {
				computes.Add(1)
			}
		},
	})
	req := client.RunRequest{Workload: "slc", MemMB: 5, Refs: testRefs, Seed: 11}
	var wg sync.WaitGroup
	results := make([]*client.RunResponse, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := c.Run(context.Background(), req)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Errorf("%d computations for 4 identical concurrent requests", n)
	}
	for _, r := range results[1:] {
		if r == nil || results[0] == nil {
			continue
		}
		if r.Key != results[0].Key {
			t.Error("keys diverged across concurrent identical requests")
		}
	}
	if st := s.Store().Stats(); st.Puts != 1 {
		t.Errorf("puts = %d", st.Puts)
	}
}

func makeKey(t *testing.T) expstore.Key {
	t.Helper()
	k, err := expstore.KeyOf("test", "flight", 1)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
