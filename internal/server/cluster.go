package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/expstore"
	"repro/pkg/client"
)

// This file makes a spurd node fleet-aware. Placement comes from
// internal/cluster's consistent-hash ring: every result key has an owner
// and M−1 replicas. A node that receives a request it is not a replica for
// proxies it to the owner (bounded hop count, failing over through the
// replica list); a node that computes a result replicates it to the other
// replicas through the durable outbox; and a node that is missing a blob
// it should hold — a miss, a quarantined corruption, a disk lost to a
// crash — first repairs it from a replica (re-verifying the sealed
// envelope) before burning simulator cycles on a recompute.

const (
	// hopHeader counts proxy forwards so a misconfigured fleet degrades
	// into local computes instead of a forwarding loop.
	hopHeader = "X-Spur-Hops"
	// nodeHeader names the node that actually produced the response, so
	// drills can assert where a request landed.
	nodeHeader = "X-Spur-Node"
	// maxBlobBytes bounds a replicated blob (matches the journal's frame
	// bound; the biggest sweep payloads are far below it).
	maxBlobBytes = 64 << 20
)

// clusterNode is the server's view of the fleet.
type clusterNode struct {
	self    string
	ring    *cluster.Ring
	rep     int
	maxHops int
	outbox  *cluster.Outbox
	hc      *http.Client
	// breakers holds one outgoing circuit breaker per other peer. The map
	// is static after newClusterNode; each Breaker locks itself. Health
	// probes bypass it — an operator must see a down peer as down, not as
	// breaker-skipped.
	breakers map[string]*client.Breaker
}

// newClusterNode validates the cluster Config fields and assembles the
// node (outbox not yet attached; New wires it once the store exists).
func newClusterNode(cfg Config) (*clusterNode, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("server: cluster mode needs Self (this node's advertised URL)")
	}
	ring, err := cluster.NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	found := false
	for _, p := range ring.Peers() {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("server: Self %q is not in the peer list %v", cfg.Self, cfg.Peers)
	}
	hc := &http.Client{}
	if cfg.NetFaults != nil {
		hc.Transport = cfg.NetFaults.Transport(nil)
	}
	c := &clusterNode{
		self:     cfg.Self,
		ring:     ring,
		rep:      cfg.Replication,
		maxHops:  cfg.MaxHops,
		hc:       hc,
		breakers: make(map[string]*client.Breaker),
	}
	for _, p := range ring.Peers() {
		if p != cfg.Self {
			c.breakers[p] = client.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil)
		}
	}
	return c, nil
}

// breakerStates reports every peer's outgoing-breaker position, sorted by
// the map's peer URLs, for /healthz.
func (c *clusterNode) breakerStates() map[string]string {
	out := make(map[string]string, len(c.breakers))
	for p, b := range c.breakers {
		out[p] = b.State().String()
	}
	return out
}

// anyBreakerOpen reports whether some peer is currently being skipped —
// the signal that this node is absorbing a degraded fleet's extra load.
func (c *clusterNode) anyBreakerOpen() bool {
	for _, b := range c.breakers {
		if b.State() == client.BreakerOpen {
			return true
		}
	}
	return false
}

// replicas returns key's replica set, owner first.
func (c *clusterNode) replicas(key expstore.Key) []string {
	return c.ring.Replicas(string(key), c.rep)
}

// isReplica reports whether this node is in key's replica set.
func (c *clusterNode) isReplica(key expstore.Key) bool {
	return c.ring.Owns(c.self, string(key), c.rep)
}

// --- request routing ---------------------------------------------------------

// proxyIfRemote routes a request whose key this node does not replicate:
// it forwards to the owner, failing over through the replica list, and
// streams the first usable response back. It returns true when the
// response has been written. A false return means the caller should serve
// locally — either this node is a replica, the hop budget is spent, or
// every replica is unreachable (any node can compute any result, so
// availability wins).
func (s *Server) proxyIfRemote(w http.ResponseWriter, r *http.Request, key expstore.Key, body any) bool {
	c := s.cluster
	if c == nil {
		return false
	}
	if c.isReplica(key) {
		w.Header().Set(nodeHeader, c.self)
		return false
	}
	hops := 0
	if h := r.Header.Get(hopHeader); h != "" {
		hops, _ = strconv.Atoi(h)
	}
	if hops >= c.maxHops {
		s.cfg.Logf("spurd: hop budget (%d) spent for %.12s; serving locally", c.maxHops, key)
		w.Header().Set(nodeHeader, c.self)
		return false
	}
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			w.Header().Set(nodeHeader, c.self)
			return false
		}
	}
	for _, peer := range c.replicas(key) {
		br := c.breakers[peer]
		if !br.Allow() {
			s.cfg.Logf("spurd: proxying %.12s: skipping %s (breaker open)", key, peer)
			continue
		}
		resp, err := c.forward(r, peer, payload, hops+1)
		if err != nil {
			br.Record(false)
			s.cfg.Logf("spurd: proxying %.12s to %s: %v", key, peer, err)
			continue
		}
		if resp.StatusCode/100 == 5 {
			br.Record(false)
			_ = resp.Body.Close() // failing over; the body is dead weight
			s.cfg.Logf("spurd: proxying %.12s to %s: status %d", key, peer, resp.StatusCode)
			continue
		}
		br.Record(true)
		copyResponse(w, resp)
		_ = resp.Body.Close() // drained by copyResponse; close is bookkeeping
		return true
	}
	s.cfg.Logf("spurd: no replica of %.12s reachable; computing locally", key)
	w.Header().Set(nodeHeader, c.self)
	return false
}

// forward re-issues r against peer with the hop counter bumped. The
// caller's context bounds the wait: proxied computes can take as long as
// local ones, so there is no per-peer timeout here — a dead peer fails
// fast at connect time.
func (c *clusterNode) forward(r *http.Request, peer string, payload []byte, hops int) (*http.Response, error) {
	url := peer + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(hopHeader, strconv.Itoa(hops))
	return c.hc.Do(req)
}

// copyResponse streams an upstream response through, preserving the
// headers the service's clients read.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	for _, h := range []string{"Content-Type", "X-Spur-Key", "X-Spur-Cached", nodeHeader, "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	// A copy error means our client hung up; the upstream result is safe
	// in the owner's store regardless.
	_, _ = io.Copy(w, resp.Body)
}

// --- replication -------------------------------------------------------------

// replicate queues key's blob for delivery to every other replica. Called
// after a successful store Put; the outbox journal makes the debt durable.
func (s *Server) replicate(key expstore.Key) {
	c := s.cluster
	if c == nil || c.outbox == nil {
		return
	}
	var targets []string
	for _, p := range c.replicas(key) {
		if p != c.self {
			targets = append(targets, p)
		}
	}
	if err := c.outbox.Enqueue(string(key), targets); err != nil {
		s.cfg.Logf("spurd: enqueueing replication of %.12s: %v", key, err)
	}
}

// sendBlob is the outbox's delivery callback: push one sealed blob to one
// replica. A blob that has vanished locally settles the intent (nothing
// left to push; anti-entropy will heal the replica from another copy).
func (s *Server) sendBlob(peer, key string) error {
	sealed, ok := s.store.GetSealed(expstore.Key(key))
	if !ok {
		s.cfg.Logf("spurd: replication of %.12s to %s dropped: blob no longer held locally", key, peer)
		return nil
	}
	br := s.cluster.breakers[peer]
	if !br.Allow() {
		// The outbox keeps the debt and retries on its backoff schedule;
		// skipping here just avoids hammering a peer everyone agrees is down.
		return fmt.Errorf("peer %s: %w", peer, errPeerBreakerOpen)
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.PeerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, peer+"/v1/cluster/blob/"+key, bytes.NewReader(sealed))
	if err != nil {
		br.Record(false)
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := s.cluster.hc.Do(req)
	if err != nil {
		br.Record(false)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// The peer answered, so it is alive; a 4xx (rejected envelope) is
		// an authoritative answer, not an availability failure.
		br.Record(peerAnswered(resp.StatusCode))
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("peer %s: status %d: %s", peer, resp.StatusCode, bytes.TrimSpace(b))
	}
	br.Record(true)
	return nil
}

// errPeerBreakerOpen marks a peer call skipped by its open breaker.
var errPeerBreakerOpen = errors.New("circuit breaker open")

// peerAnswered reports whether a non-2xx status still counts as a healthy
// peer for breaker accounting: any 4xx except 429. A 429 is the peer
// shedding load, and must count against it like an availability failure
// (mirroring the client's authoritative()), or the breaker never opens and
// backoff pressure on an overloaded peer is never reduced.
func peerAnswered(code int) bool {
	return code/100 == 4 && code != http.StatusTooManyRequests
}

// --- repair ------------------------------------------------------------------

// fetchFromReplicas tries to fill a local miss from the key's other
// replicas before the caller falls back to recomputing. The fetched
// envelope is hash-verified by PutSealed, counted in Stats.Repaired, and
// persisted, so the repair also heals this node's disk.
func (s *Server) fetchFromReplicas(ctx context.Context, key expstore.Key) ([]byte, bool) {
	c := s.cluster
	if c == nil {
		return nil, false
	}
	for _, peer := range c.replicas(key) {
		if peer == c.self {
			continue
		}
		sealed, err := c.getBlob(ctx, peer, string(key), s.cfg.PeerTimeout)
		if err != nil {
			continue
		}
		if err := s.store.PutSealed(key, sealed, true); err != nil {
			s.cfg.Logf("spurd: repairing %.12s from %s: %v", key, peer, err)
			continue
		}
		s.cfg.Logf("spurd: repaired %.12s from replica %s", key, peer)
		if data, ok := s.store.Get(key); ok {
			return data, true
		}
	}
	return nil, false
}

// RepairReport summarizes one anti-entropy pass over the fleet.
type RepairReport struct {
	// PeersChecked peers answered their key inventory; PeerErrors did not.
	PeersChecked int `json:"peers_checked"`
	PeerErrors   int `json:"peer_errors"`
	// KeysChecked keys on those peers belong to this node's replica share;
	// Repaired of them were missing (or quarantined) locally and were
	// restored from the peer, hash-verified, without recompute. Errors are
	// failed blob fetches or rejected envelopes.
	KeysChecked int `json:"keys_checked"`
	Repaired    int `json:"repaired"`
	Errors      int `json:"errors"`
}

// RepairFromPeers is the cluster half of the scrubber: ask every peer for
// its key inventory and pull in any key this node should replicate but
// does not hold. Paired with the store's Scrub (which turns corruption
// into absence), it restores a node after a crash or disk loss from its
// replicas, recomputing nothing.
func (s *Server) RepairFromPeers(ctx context.Context) RepairReport {
	var rep RepairReport
	c := s.cluster
	if c == nil {
		return rep
	}
	for _, peer := range c.ring.Peers() {
		if peer == c.self {
			continue
		}
		keys, err := c.getKeys(ctx, peer, s.cfg.PeerTimeout)
		if err != nil {
			rep.PeerErrors++
			s.cfg.Logf("spurd: repair: inventory from %s: %v", peer, err)
			continue
		}
		rep.PeersChecked++
		for _, k := range keys {
			key := expstore.Key(k)
			if !c.isReplica(key) {
				continue
			}
			rep.KeysChecked++
			if s.store.Has(key) {
				continue
			}
			sealed, err := c.getBlob(ctx, peer, k, s.cfg.PeerTimeout)
			if err != nil {
				rep.Errors++
				continue
			}
			if err := s.store.PutSealed(key, sealed, true); err != nil {
				rep.Errors++
				s.cfg.Logf("spurd: repair: %.12s from %s: %v", k, peer, err)
				continue
			}
			rep.Repaired++
		}
	}
	if rep.Repaired > 0 {
		s.cfg.Logf("spurd: repair: restored %d blobs from replicas (%d keys checked across %d peers)",
			rep.Repaired, rep.KeysChecked, rep.PeersChecked)
	}
	return rep
}

// getBlob fetches one sealed blob from a peer. Verification happens at
// PutSealed; this only moves bytes.
func (c *clusterNode) getBlob(ctx context.Context, peer, key string, timeout time.Duration) ([]byte, error) {
	br := c.breakers[peer]
	if !br.Allow() {
		return nil, fmt.Errorf("peer %s: %w", peer, errPeerBreakerOpen)
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cluster/blob/"+key, nil)
	if err != nil {
		br.Record(false)
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		br.Record(false)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// A 404 — the peer does not hold the blob — is a healthy answer.
		br.Record(peerAnswered(resp.StatusCode))
		return nil, fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobBytes))
	br.Record(err == nil)
	return b, err
}

// getKeys fetches a peer's store inventory.
func (c *clusterNode) getKeys(ctx context.Context, peer string, timeout time.Duration) ([]string, error) {
	br := c.breakers[peer]
	if !br.Allow() {
		return nil, fmt.Errorf("peer %s: %w", peer, errPeerBreakerOpen)
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cluster/keys", nil)
	if err != nil {
		br.Record(false)
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		br.Record(false)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		br.Record(peerAnswered(resp.StatusCode))
		return nil, fmt.Errorf("peer %s: status %d", peer, resp.StatusCode)
	}
	var out struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBlobBytes)).Decode(&out); err != nil {
		br.Record(false)
		return nil, err
	}
	br.Record(true)
	return out.Keys, nil
}

// --- cluster endpoints -------------------------------------------------------

// handleCluster answers GET /v1/cluster: this node's membership view with
// a live health probe of every peer.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	c := s.cluster
	info := cluster.Info{
		Self:        c.self,
		Version:     s.cfg.Version,
		Replication: c.rep,
		VNodes:      c.ring.VNodes(),
	}
	for _, peer := range c.ring.Peers() {
		ph := cluster.PeerHealth{URL: peer, Status: "ok"}
		if peer == c.self {
			ph.Status = "self"
		} else if err := c.probe(r.Context(), peer, s.cfg.PeerTimeout); err != nil {
			ph.Status = "down"
			ph.Err = err.Error()
		}
		info.Peers = append(info.Peers, ph)
	}
	writeJSON(w, info)
}

// probe checks one peer's /healthz. It deliberately bypasses the peer's
// breaker: probes are how an operator (and GET /v1/cluster) sees a down
// peer as down, and their outcome must not depend on breaker state.
func (c *clusterNode) probe(ctx context.Context, peer string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// handleClusterKeys answers GET /v1/cluster/keys: the store inventory
// anti-entropy repair walks.
func (s *Server) handleClusterKeys(w http.ResponseWriter, r *http.Request) {
	keys := s.store.Keys()
	out := struct {
		Keys []string `json:"keys"`
	}{Keys: make([]string, len(keys))}
	for i, k := range keys {
		out.Keys[i] = string(k)
	}
	writeJSON(w, out)
}

// handleBlobGet serves one sealed blob for replica transfer.
func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	key := expstore.Key(r.PathValue("key"))
	sealed, ok := s.store.GetSealed(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no blob %.12s on this node", string(key))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// A write error means the fetching peer hung up; it will retry.
	_, _ = w.Write(sealed)
}

// handleBlobPut accepts a replicated sealed blob. The envelope hash is
// verified before anything is persisted; accepting a duplicate is a no-op
// success, which makes outbox retries idempotent.
func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	key := expstore.Key(r.PathValue("key"))
	sealed, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading blob: %v", err)
		return
	}
	if err := s.store.PutSealed(key, sealed, false); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleClusterScrub answers POST /v1/cluster/scrub: an on-demand
// integrity pass — local scrub (quarantine rot) then replica repair (refill
// what is missing) — so drills do not have to wait for the background
// cadence.
func (s *Server) handleClusterScrub(w http.ResponseWriter, r *http.Request) {
	scrub := s.store.Scrub()
	repair := s.RepairFromPeers(r.Context())
	writeJSON(w, struct {
		Scrub  expstore.ScrubReport `json:"scrub"`
		Repair RepairReport         `json:"repair"`
	}{scrub, repair})
}
