package counters

import (
	"strings"
	"testing"
)

// TestRestoreModeMismatch pins the failure mode of restoring a checkpoint
// whose mode register is out of range: Restore goes through SetMode, which
// panics rather than loading a mode the hardware does not have. A snapshot
// carrying such a mode is corrupt, and silently clamping it would wire the
// restored counters differently from the machine that was captured.
func TestRestoreModeMismatch(t *testing.T) {
	for _, mode := range []int{-1, NumModes, NumModes + 7} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("Restore with mode %d did not panic", mode)
					return
				}
				if msg, ok := r.(string); !ok || !strings.Contains(msg, "invalid mode") {
					t.Errorf("Restore with mode %d panicked with %v, want invalid-mode message", mode, r)
				}
			}()
			s := New()
			var hw [HardwareCounters + 1]uint32
			var shadow [NumEvents]uint64
			s.Restore(mode, hw, shadow)
		}()
	}
}

// TestRestoreRoundTrip: a valid mode restores bit-for-bit, including the
// spill slot and any wraparound already present in the hardware view.
func TestRestoreRoundTrip(t *testing.T) {
	src := New()
	src.SetMode(1)
	src.Add(EvReadMiss, 3)          // wired to a hardware slot in mode 1
	src.Add(EvDirtyFault, 1<<33+17) // unwired in mode 1: lands in the spill slot, wraps 32 bits

	dst := New()
	dst.Restore(src.Mode(), src.HardwareSnapshot(), src.Snapshot())
	if dst.Mode() != src.Mode() {
		t.Fatalf("mode: got %d, want %d", dst.Mode(), src.Mode())
	}
	if dst.HardwareSnapshot() != src.HardwareSnapshot() {
		t.Fatalf("hardware counters: got %v, want %v", dst.HardwareSnapshot(), src.HardwareSnapshot())
	}
	if dst.Snapshot() != src.Snapshot() {
		t.Fatalf("shadow counters differ after restore")
	}

	// The restored set must also be wired for its mode: counting must hit
	// the same hardware slot as on the source.
	src.Add(EvReadMiss, 1)
	dst.Add(EvReadMiss, 1)
	if dst.HardwareSnapshot() != src.HardwareSnapshot() {
		t.Fatalf("post-restore Add diverged: got %v, want %v", dst.HardwareSnapshot(), src.HardwareSnapshot())
	}
}
