package counters

import (
	"testing"
	"testing/quick"
)

func TestEventNamesComplete(t *testing.T) {
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == "" {
			t.Errorf("event %d has no name", e)
		}
	}
	if Event(-1).String() != "event(-1)" {
		t.Errorf("out-of-range name = %q", Event(-1).String())
	}
	if Event(NumEvents).String() == eventNames[0] {
		t.Error("out-of-range event aliased a real name")
	}
}

func TestModeMapEventsValid(t *testing.T) {
	for m, row := range modeMap {
		seen := map[Event]bool{}
		for i, e := range row {
			if e < 0 || e >= NumEvents {
				t.Errorf("mode %d counter %d wires invalid event %d", m, i, e)
			}
			if seen[e] {
				t.Errorf("mode %d wires event %v to two counters", m, e)
			}
			seen[e] = true
		}
	}
}

func TestShadowCountsRegardlessOfMode(t *testing.T) {
	s := New()
	s.SetMode(0)
	s.Inc(EvDirtyFault) // dirty-fault is not in mode 0's first counters? it is (index 11)
	s.SetMode(3)
	s.Inc(EvDirtyFault)
	if got := s.Count(EvDirtyFault); got != 2 {
		t.Errorf("shadow = %d, want 2", got)
	}
}

func TestHardwareCountsOnlySelectedMode(t *testing.T) {
	s := New()
	s.SetMode(2)
	s.Add(EvExcessFault, 5)
	// In mode 2, excess-fault is wired to counter 2.
	if got := s.Hardware(2); got != 5 {
		t.Errorf("hw[2] = %d, want 5", got)
	}
	if s.HardwareEvent(2) != EvExcessFault {
		t.Errorf("hw[2] wires %v", s.HardwareEvent(2))
	}
	// Switching modes must not clear hardware counters (as on the chip).
	s.SetMode(0)
	s.Add(EvExcessFault, 3) // not wired in mode 0
	s.SetMode(2)
	if got := s.Hardware(2); got != 5 {
		t.Errorf("hw[2] after mode round-trip = %d, want 5", got)
	}
	if got := s.Count(EvExcessFault); got != 8 {
		t.Errorf("shadow = %d, want 8", got)
	}
}

func TestHardwareWraps32Bits(t *testing.T) {
	s := New()
	s.SetMode(0)
	s.Add(EvIFetch, 1<<32+7)
	if got := s.Hardware(0); got != 7 {
		t.Errorf("hw wrap = %d, want 7", got)
	}
	if got := s.Count(EvIFetch); got != 1<<32+7 {
		t.Errorf("shadow = %d", got)
	}
}

func TestSetModePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SetMode(4) did not panic")
		}
	}()
	New().SetMode(NumModes)
}

func TestReset(t *testing.T) {
	s := New()
	s.Inc(EvRead)
	s.Reset()
	if s.Count(EvRead) != 0 || s.Hardware(1) != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestSnapshotDiff(t *testing.T) {
	s := New()
	s.Add(EvRead, 10)
	before := s.Snapshot()
	s.Add(EvRead, 5)
	s.Add(EvWrite, 2)
	d := Diff(s.Snapshot(), before)
	if d[EvRead] != 5 || d[EvWrite] != 2 {
		t.Errorf("diff = read %d write %d", d[EvRead], d[EvWrite])
	}
}

func TestDiffSaturates(t *testing.T) {
	var a, b [NumEvents]uint64
	a[EvRead] = 3
	b[EvRead] = 5
	if d := Diff(a, b); d[EvRead] != 0 {
		t.Errorf("Diff should saturate at 0, got %d", d[EvRead])
	}
}

// TestShadowSurvivesInjectedWraparound injects a hardware wraparound
// mid-run — the faultinject.CounterWrap fault — and proves the 64-bit
// software shadow keeps the true totals while the 32-bit hardware view
// wraps, across interleaved mode changes as on the chip.
func TestShadowSurvivesInjectedWraparound(t *testing.T) {
	s := New()
	s.SetMode(0)
	s.Add(EvRead, 1000) // hw[1] in mode 0

	// Fault injection: every hardware counter jumps to 8 below the limit.
	s.InjectWraparound(8)
	if got := s.Hardware(1); got != ^uint32(0)-8 {
		t.Fatalf("hw after injection = %d", got)
	}

	// The run continues: 100 more reads wrap the hardware counter.
	s.Add(EvRead, 100)
	if got := s.Hardware(1); got != 91 { // (2^32-9 + 100) mod 2^32
		t.Errorf("hw after wrap = %d, want 91", got)
	}
	if got := s.Count(EvRead); got != 1100 {
		t.Errorf("shadow lost counts across the wrap: %d, want 1100", got)
	}

	// Mode set mid-run (the paper's measurement procedure): the shadow
	// keeps accumulating every event while the hardware view re-wires.
	s.SetMode(2)
	s.Add(EvRead, 50) // hw[10] in mode 2
	s.Add(EvDirtyFault, 3)
	if got := s.Count(EvRead); got != 1150 {
		t.Errorf("shadow after mode set = %d, want 1150", got)
	}
	if got := s.Count(EvDirtyFault); got != 3 {
		t.Errorf("dirty-fault shadow = %d, want 3", got)
	}
	// The injected wrap also poisoned mode 2's counters; the wrapped
	// hardware value is small while the shadow holds the truth.
	if hw := s.Hardware(10); uint64(hw) == s.Count(EvRead) {
		t.Error("hardware counter should have diverged from the shadow")
	}
}

func TestShadowMatchesManualSum(t *testing.T) {
	// Property: for any sequence of (event, n) additions, the shadow equals
	// the arithmetic sum, independent of interleaved mode changes.
	f := func(evs []uint8, ns []uint8) bool {
		s := New()
		var want [NumEvents]uint64
		for i, raw := range evs {
			e := Event(int(raw) % int(NumEvents))
			n := uint64(1)
			if i < len(ns) {
				n = uint64(ns[i])
			}
			s.SetMode(i % NumModes)
			s.Add(e, n)
			want[e] += n
		}
		return s.Snapshot() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWiredTableMatchesModeMap(t *testing.T) {
	// The precomputed wired table in Add must be exactly equivalent to
	// scanning modeMap for the event: the same counter hit for every wired
	// (mode, event) pair, and the write-only spill slot for unwired ones.
	for m := 0; m < NumModes; m++ {
		for e := Event(0); e < NumEvents; e++ {
			scan := HardwareCounters
			for i, ev := range modeMap[m] {
				if ev == e {
					if scan != HardwareCounters {
						t.Fatalf("mode %d wires %v twice", m, e)
					}
					scan = i
				}
			}
			if got := int(wired[m][e]); got != scan {
				t.Errorf("mode %d event %v: wired=%d modeMap scan=%d", m, e, got, scan)
			}
		}
	}
}

func TestAddHitsWiredCounter(t *testing.T) {
	for m := 0; m < NumModes; m++ {
		s := New()
		s.SetMode(m)
		for e := Event(0); e < NumEvents; e++ {
			s.Add(e, 3)
		}
		for i, ev := range modeMap[m] {
			if s.Hardware(i) != 3 {
				t.Errorf("mode %d counter %d (%v) = %d, want 3", m, i, ev, s.Hardware(i))
			}
		}
	}
}
