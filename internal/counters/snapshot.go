package counters

// HardwareSnapshot returns a copy of the sixteen 32-bit hardware counters
// plus the write-only spill slot, for checkpointing. The hardware-accurate
// view is part of the machine state (the chip does not clear on mode
// changes), so a restored machine must reproduce it bit for bit — including
// any wraparound already suffered.
func (s *Set) HardwareSnapshot() [HardwareCounters + 1]uint32 { return s.hw }

// Restore overwrites the counter block wholesale from a checkpoint: the
// mode register, the hardware counters (with spill slot), and the 64-bit
// software shadow. SetMode validates the mode.
func (s *Set) Restore(mode int, hw [HardwareCounters + 1]uint32, shadow [NumEvents]uint64) {
	s.SetMode(mode)
	s.hw = hw
	s.shadow = shadow
}
