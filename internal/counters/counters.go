// Package counters models the SPUR cache controller's on-chip performance
// counters [Wood87], which made the measurements in the paper possible.
//
// The cache controller contains sixteen 32-bit hardware counters. A mode
// register selects one of four sets of events to be measured; each mode wires
// a different group of sixteen event signals to the counters. Events include
// instruction fetches, processor reads and writes, the number of times each
// reference type misses in the cache, the behaviour of the in-cache address
// translation algorithm, and the Berkeley Ownership coherency protocol.
//
// The simulator raises an Event for everything of interest; the hardware
// counters count only the events selected by the current mode (with 32-bit
// wraparound, as on the chip), while a 64-bit software shadow accumulates
// every event so experiments never lose information. Measurement code reads
// the shadow; the hardware-accurate view exists so the counter subsystem
// itself can be exercised and tested as the paper's instrument.
package counters

import "fmt"

// Event identifies one countable event signal in the cache controller.
type Event int

// The event signals exposed by the simulated cache controller. The grouping
// mirrors the four measurement domains of the real chip: processor
// references, cache misses, in-cache translation, and the virtual-memory /
// coherency events this study added.
const (
	// Processor reference events.
	EvIFetch Event = iota // instruction fetch issued
	EvRead                // processor data read issued
	EvWrite               // processor data write issued

	// Cache miss events, by reference type.
	EvIFetchMiss // instruction fetch missed in the cache
	EvReadMiss   // data read missed in the cache
	EvWriteMiss  // data write missed in the cache

	// In-cache translation events [Wood86].
	EvPTEHit    // first-level PTE found in the cache
	EvPTEMiss   // first-level PTE missed; block fetched
	EvL2Access  // second-level (wired) page table consulted
	EvXlateWalk // translation performed (one per cache miss)

	// Dirty- and reference-bit events (the subject of the paper).
	EvDirtyFault     // necessary dirty-bit fault (first write to a clean page): N_ds
	EvZeroFillFault  // zero-filled page fault: N_zfod
	EvExcessFault    // excess protection fault on a previously cached block (FAULT policy): N_ef
	EvDirtyBitMiss   // dirty-bit miss (SPUR policy refresh of a stale cached dirty bit): N_dm
	EvProtBitMiss    // protection bit miss (the generalized PROT policy's refresh)
	EvDirtyCheck     // PTE dirty-bit check on a write hit to a clean block (WRITE policy)
	EvRefFault       // reference-bit fault (setting the page reference bit)
	EvWriteHitBlock  // block brought in by a read, later modified: N_w-hit
	EvWriteMissBlock // block brought into the cache by a write miss: N_w-miss

	// Virtual-memory events.
	EvPageIn      // page read from backing store
	EvPageOut     // page written to backing store
	EvPageReclaim // page reclaimed by the page daemon
	EvDaemonScan  // page examined by the page daemon
	EvRefClear    // reference bit cleared by the daemon
	EvPageFlush   // page flushed from the cache
	EvBlockFlush  // single cache block flushed

	// Bus / coherency events.
	EvBusRead    // bus read (block fetch)
	EvBusWrite   // bus write (write-back)
	EvInval      // invalidation received by a snooping cache
	EvOwnerShift // ownership transferred between caches

	NumEvents // number of defined events
)

var eventNames = [NumEvents]string{
	"ifetch", "read", "write",
	"ifetch-miss", "read-miss", "write-miss",
	"pte-hit", "pte-miss", "l2-access", "xlate-walk",
	"dirty-fault", "zfod-fault", "excess-fault", "dirty-bit-miss", "prot-bit-miss", "dirty-check",
	"ref-fault", "whit-block", "wmiss-block",
	"page-in", "page-out", "page-reclaim", "daemon-scan", "ref-clear",
	"page-flush", "block-flush",
	"bus-read", "bus-write", "inval", "owner-shift",
}

// String returns the short mnemonic for the event.
func (e Event) String() string {
	if e < 0 || e >= NumEvents {
		return fmt.Sprintf("event(%d)", int(e))
	}
	return eventNames[e]
}

// HardwareCounters is the number of physical counters on the chip.
const HardwareCounters = 16

// NumModes is the number of selectable event sets.
const NumModes = 4

// modeMap wires events to the sixteen hardware counters for each mode.
// Mode 0: processor references and misses. Mode 1: in-cache translation.
// Mode 2: dirty/reference-bit events. Mode 3: VM and bus traffic.
var modeMap = [NumModes][HardwareCounters]Event{
	{EvIFetch, EvRead, EvWrite, EvIFetchMiss, EvReadMiss, EvWriteMiss,
		EvXlateWalk, EvBusRead, EvBusWrite, EvPageIn, EvPageOut, EvDirtyFault,
		EvRefFault, EvPageFlush, EvBlockFlush, EvInval},
	{EvXlateWalk, EvPTEHit, EvPTEMiss, EvL2Access, EvIFetchMiss, EvReadMiss,
		EvWriteMiss, EvBusRead, EvBusWrite, EvIFetch, EvRead, EvWrite,
		EvPageIn, EvPageOut, EvInval, EvOwnerShift},
	{EvDirtyFault, EvZeroFillFault, EvExcessFault, EvDirtyBitMiss, EvDirtyCheck,
		EvRefFault, EvWriteHitBlock, EvWriteMissBlock, EvWrite, EvWriteMiss,
		EvRead, EvReadMiss, EvPageIn, EvPageOut, EvRefClear, EvPageFlush},
	{EvPageIn, EvPageOut, EvPageReclaim, EvDaemonScan, EvRefClear, EvPageFlush,
		EvBlockFlush, EvBusRead, EvBusWrite, EvInval, EvOwnerShift, EvZeroFillFault,
		EvDirtyFault, EvRefFault, EvRead, EvWrite},
}

// wired[mode][event] is the index of the hardware counter that event drives
// under that mode, or the write-only spill slot (index HardwareCounters)
// when the mode does not wire it. It is the inverse of modeMap, precomputed
// once so Add — the hottest function in the whole simulator, called several
// times per memory reference — indexes a table instead of scanning all
// sixteen wirings; routing unwired events to the spill slot instead of
// branching keeps the hot path straight-line.
var wired [NumModes][NumEvents]int8

func init() {
	for m := range modeMap {
		for e := range wired[m] {
			wired[m][e] = HardwareCounters
		}
		for i, ev := range modeMap[m] {
			if wired[m][ev] != HardwareCounters {
				// Each event signal reaches at most one counter per mode
				// (a wiring, not a fan-out); the single-index fast path in
				// Add is only equivalent to scanning modeMap under this
				// invariant, so a violation must fail at startup.
				panic(fmt.Sprintf("counters: event %v wired twice in mode %d", ev, m))
			}
			//spurlint:ignore countersafe — i indexes the sixteen hardware counters, always within int8
			wired[m][ev] = int8(i)
		}
	}
}

// Set is one cache controller's performance-counter block: sixteen 32-bit
// hardware counters behind a mode register, plus the 64-bit software shadow
// of every event.
type Set struct {
	mode int
	// w caches &wired[mode] so Add — called several times per memory
	// reference — is one indexed load instead of a two-dimensional one.
	//spurlint:ignore statecomplete — derived cache of &wired[mode]; SetMode recomputes it on restore
	w *[NumEvents]int8
	// hw has one extra slot beyond the sixteen physical counters: the
	// write-only spill that absorbs events the current mode leaves
	// unwired, so Add needs no wired/unwired branch.
	hw     [HardwareCounters + 1]uint32
	shadow [NumEvents]uint64
}

// New returns a counter set in mode 0 with all counters clear.
func New() *Set { return &Set{w: &wired[0]} }

// Mode returns the current mode-register value.
func (s *Set) Mode() int { return s.mode }

// SetMode selects one of the four event sets. Like the hardware, changing
// the mode does not clear the counters. SetMode panics on an invalid mode;
// the mode register is two bits wide and the simulator never computes it.
func (s *Set) SetMode(mode int) {
	if mode < 0 || mode >= NumModes {
		panic(fmt.Sprintf("counters: invalid mode %d", mode))
	}
	s.mode = mode
	s.w = &wired[mode]
}

// Add raises event e n times.
func (s *Set) Add(e Event, n uint64) {
	s.shadow[e] += n
	//spurlint:ignore countersafe — the hardware counters are 32-bit by design; wraparound here is the modeled chip behavior the shadow counters exist to repair
	s.hw[s.w[e]] += uint32(n)
}

// Inc raises event e once.
func (s *Set) Inc(e Event) { s.Add(e, 1) }

// Hardware returns the value of physical counter i under the current mode.
func (s *Set) Hardware(i int) uint32 { return s.hw[i] }

// HardwareEvent returns which event physical counter i counts in the current
// mode.
func (s *Set) HardwareEvent(i int) Event { return modeMap[s.mode][i] }

// Count returns the 64-bit software-shadow total for event e.
func (s *Set) Count(e Event) uint64 { return s.shadow[e] }

// InjectWraparound forces every hardware counter to within slack events of
// the 32-bit limit, so the next few events wrap it to near zero. This is the
// fault-injection hook exercising the software shadow: the shadow is
// untouched, so measurements survive the wrap while the hardware-accurate
// view visibly loses 2^32 counts.
func (s *Set) InjectWraparound(slack uint32) {
	for i := 0; i < HardwareCounters; i++ {
		s.hw[i] = ^uint32(0) - slack
	}
}

// Reset clears the hardware counters and the software shadow.
func (s *Set) Reset() {
	s.hw = [HardwareCounters + 1]uint32{}
	s.shadow = [NumEvents]uint64{}
}

// Snapshot returns a copy of the full software shadow, indexed by Event.
func (s *Set) Snapshot() [NumEvents]uint64 { return s.shadow }

// Diff returns the per-event difference s - earlier, saturating at zero if
// the earlier snapshot is somehow ahead (it cannot be in normal use).
func Diff(later, earlier [NumEvents]uint64) [NumEvents]uint64 {
	var d [NumEvents]uint64
	for i := range d {
		if later[i] >= earlier[i] {
			d[i] = later[i] - earlier[i]
		}
	}
	return d
}
