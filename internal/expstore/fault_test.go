package expstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/journal"
)

func testKey(t *testing.T, i int) Key {
	t.Helper()
	k, err := KeyOf("v-test", "run", map[string]int{"i": i})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestPutUnderENOSPCLeavesStateUntouched(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, 1)

	faultinject.ArmDisk(faultinject.NewDisk(faultinject.DiskRule{
		Op: faultinject.DiskWrite, Path: dir, Err: "enospc", Every: 1, Max: 1, Partial: 4,
	}))
	defer faultinject.DisarmDisk()

	if err := s.Put(k, []byte(`{"v":1}`)); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("put under ENOSPC: %v", err)
	}
	// Nothing landed: no blob, no temp debris, and a fresh store misses.
	if _, err := os.Stat(s.path(k)); !os.IsNotExist(err) {
		t.Fatal("failed put left a blob")
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(k); ok {
		t.Fatal("failed put visible to a fresh store")
	}
	// The disk recovered (Max=1): the retry persists durably.
	if err := s.Put(k, []byte(`{"v":1}`)); err != nil {
		t.Fatalf("retry after ENOSPC: %v", err)
	}
	if got, ok := s2.Get(k); !ok || string(got) != `{"v":1}` {
		t.Fatalf("retried put not readable: %q %v", got, ok)
	}
}

func TestGetUnderEIOIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxEntries: -1}) // no LRU front: force disk reads
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, 2)
	if err := s.Put(k, []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}

	faultinject.ArmDisk(faultinject.NewDisk(faultinject.DiskRule{
		Op: faultinject.DiskRead, Path: dir, Every: 1, Max: 1,
	}))
	defer faultinject.DisarmDisk()

	if _, ok := s.Get(k); ok {
		t.Fatal("read under EIO served data")
	}
	// The blob itself is intact — an unreadable sector is not quarantined
	// (there is nothing to rename), and the next read serves it.
	if got, ok := s.Get(k); !ok || string(got) != `{"v":2}` {
		t.Fatalf("get after EIO cleared: %q %v", got, ok)
	}
	if c := s.Stats().Corrupt; c != 0 {
		t.Fatalf("EIO counted as corruption: %d", c)
	}
}

func TestOpenSweepsOrphanTemps(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(shard, "abcd.json.tmp0")
	if err := os.WriteFile(orphan, []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("Open left crash debris in place")
	}
}

// TestScrubRacesPutAndGet runs a continuous scrub loop against concurrent
// writers and readers of the same key space. Under -race this is the proof
// that the quarantine path, the LRU front, and the stats counters share
// state safely; functionally it checks that no intact blob is ever
// quarantined and every Get serves the bytes that were put.
func TestScrubRacesPutAndGet(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxEntries: 4}) // tiny front: force disk traffic
	if err != nil {
		t.Fatal(err)
	}
	const keys = 16
	const iters = 50

	payload := func(i int) []byte {
		b, err := json.Marshal(map[string]int{"i": i})
		if err != nil {
			panic(err)
		}
		return b
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrubDone := make(chan struct{})
	go func() {
		defer close(scrubDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Scrub()
		}
	}()
	var fail sync.Map
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				i := (g*iters + n) % keys
				k, kerr := KeyOf("v-race", "run", map[string]int{"i": i})
				if kerr != nil {
					fail.Store(fmt.Sprintf("g%d-key", g), kerr)
					return
				}
				if err := s.Put(k, payload(i)); err != nil {
					fail.Store(fmt.Sprintf("g%d-put-%d", g, n), err)
					return
				}
				got, ok := s.Get(k)
				if !ok {
					fail.Store(fmt.Sprintf("g%d-get-%d", g, n), errors.New("miss after put"))
					return
				}
				if string(got) != string(payload(i)) {
					fail.Store(fmt.Sprintf("g%d-data-%d", g, n), fmt.Errorf("got %s", got))
					return
				}
			}
		}(g)
	}
	// The scrubber races the workers for their whole lifetime; only then is
	// it stopped.
	wg.Wait()
	close(stop)
	<-scrubDone

	fail.Range(func(k, v any) bool {
		t.Errorf("%v: %v", k, v)
		return true
	})
	if c := s.Stats().Corrupt; c != 0 {
		t.Fatalf("scrub quarantined %d intact blobs", c)
	}
}

// A corrupt blob planted mid-race must still be quarantined exactly once
// even when Scrub and Get discover it concurrently.
func TestConcurrentQuarantineCountsOnce(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxEntries: -1})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, 3)
	if err := s.Put(k, []byte(`{"v":3}`)); err != nil {
		t.Fatal(err)
	}
	if err := faultinject.FlipBit(s.path(k), 120); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Get(k)
			s.Scrub()
		}()
	}
	wg.Wait()
	if c := s.Stats().Corrupt; c != 1 {
		t.Fatalf("quarantine counted %d times, want 1", c)
	}
}

// journal.SweepTemps must not interfere with a healthy concurrent writer:
// sweeping while puts are in flight can at worst fail one put loudly, and
// with the sweep done before the store serves (as Open does) not even that.
func TestSweepThenServe(t *testing.T) {
	dir := t.TempDir()
	if _, err := journal.SweepTemps(dir); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(t, 4)
	if err := s.Put(k, []byte(`{"v":4}`)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("get after sweep")
	}
}
