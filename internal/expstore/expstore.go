// Package expstore is a content-addressed result store for deterministic
// experiments. PR 2 made every run a pure function of its canonical spec
// — {config, workload spec, seed, reps, code version} — so a result can be
// memoized under a hash of that spec and replayed forever without burning
// simulator cycles.
//
// The store is two-level: an in-memory LRU front for the hot keys a serving
// daemon sees, backed by an on-disk directory of immutable JSON blobs.
// Disk writes are crash-safe by construction (O_EXCL temp file + rename),
// concurrent writers of the same key are harmless (first rename wins, the
// bytes are identical by determinism), and hit/miss/eviction counters feed
// the daemon's /healthz endpoint.
package expstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Key is the content address of one experiment result: the hex SHA-256 of
// the canonical serialization of everything the result depends on.
type Key string

// KeyOf computes the content address for an experiment. version is the
// code version (results are invalidated wholesale when the simulator
// changes), kind names the experiment family ("run", "sweep", "tables"),
// and spec is the canonicalized request — callers must apply defaults
// before hashing so equivalent requests share a key. Hashing marshals spec
// through encoding/json, which is deterministic for structs (declaration
// order) and maps (sorted keys).
func KeyOf(version, kind string, spec any) (Key, error) {
	payload, err := json.Marshal(struct {
		Version string `json:"version"`
		Kind    string `json:"kind"`
		Spec    any    `json:"spec"`
	}{version, kind, spec})
	if err != nil {
		return "", fmt.Errorf("expstore: canonicalizing %s spec: %w", kind, err)
	}
	sum := sha256.Sum256(payload)
	return Key(hex.EncodeToString(sum[:])), nil
}

func (k Key) valid() bool {
	if len(k) != 2*sha256.Size {
		return false
	}
	for _, c := range k {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// MemHits served from the LRU front; DiskHits from the backing
	// directory (promoting the entry into the front); Misses found
	// nothing.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	// Puts counts successful stores (including rediscovered concurrent
	// writes); Evictions counts LRU-front expulsions (the disk copy
	// remains).
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe the current LRU front.
	Entries int `json:"entries"`
	Bytes   int `json:"bytes"`
}

// Hits is the total over both levels.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits }

// Options tunes a store.
type Options struct {
	// MaxEntries bounds the LRU front's entry count (default 512;
	// negative disables the front entirely).
	MaxEntries int
	// MaxBytes bounds the LRU front's payload bytes (default 256 MiB).
	MaxBytes int
}

// defaultMaxBytes caps the LRU front's payload (a compile-time constant, so
// the untyped arithmetic is range-checked by the compiler).
const defaultMaxBytes = 256 << 20

func (o Options) fill() Options {
	if o.MaxEntries == 0 {
		o.MaxEntries = 512
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = defaultMaxBytes
	}
	return o
}

type entry struct {
	key  Key
	data []byte
}

// Store is a two-level content-addressed result store. It is safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu    sync.Mutex
	lru   *list.List // front = most recent; values are *entry
	index map[Key]*list.Element
	bytes int
	stats Stats
}

// Open creates (if needed) and opens the store rooted at dir. An empty dir
// yields a memory-only store: the LRU front works, disk persistence is
// disabled.
func Open(dir string, opts Options) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("expstore: opening %s: %w", dir, err)
		}
	}
	return &Store{
		dir:   dir,
		opts:  opts.fill(),
		lru:   list.New(),
		index: make(map[Key]*list.Element),
	}, nil
}

// Dir returns the backing directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// path shards blobs by the key's first byte so one directory never holds
// every result: <dir>/ab/abcdef....json.
func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, string(k[:2]), string(k)+".json")
}

// Get returns the stored bytes for k and whether they were found. Callers
// must not mutate the returned slice.
func (s *Store) Get(k Key) ([]byte, bool) {
	if !k.valid() {
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.index[k]; ok {
		s.lru.MoveToFront(el)
		s.stats.MemHits++
		data := el.Value.(*entry).data
		s.mu.Unlock()
		return data, true
	}
	s.mu.Unlock()

	if s.dir != "" {
		if data, err := os.ReadFile(s.path(k)); err == nil {
			s.mu.Lock()
			s.stats.DiskHits++
			s.admit(k, data)
			s.mu.Unlock()
			return data, true
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	return nil, false
}

// Put stores data under k: an atomic O_EXCL-temp-plus-rename disk write
// (so a crash never leaves a torn blob, and concurrent writers of the same
// key are benign) and admission into the LRU front. Re-putting an existing
// key is a no-op success — by determinism the bytes are identical.
func (s *Store) Put(k Key, data []byte) error {
	if !k.valid() {
		return fmt.Errorf("expstore: invalid key %q", k)
	}
	if s.dir != "" {
		path := s.path(k)
		if _, err := os.Stat(path); err != nil {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return fmt.Errorf("expstore: put %s: %w", k, err)
			}
			tmp, err := openExclTemp(path)
			if err != nil {
				return fmt.Errorf("expstore: put %s: %w", k, err)
			}
			if _, werr := tmp.Write(data); werr != nil {
				_ = tmp.Close() // already failing; best-effort cleanup
				_ = os.Remove(tmp.Name())
				return fmt.Errorf("expstore: put %s: %w", k, werr)
			}
			if cerr := tmp.Close(); cerr != nil {
				_ = os.Remove(tmp.Name()) // best-effort cleanup on the error path
				return fmt.Errorf("expstore: put %s: %w", k, cerr)
			}
			// First rename wins; a concurrent writer's rename of
			// identical bytes over ours is equally fine.
			if rerr := os.Rename(tmp.Name(), path); rerr != nil {
				_ = os.Remove(tmp.Name()) // best-effort cleanup on the error path
				return fmt.Errorf("expstore: put %s: %w", k, rerr)
			}
		}
	}
	s.mu.Lock()
	s.stats.Puts++
	s.admit(k, data)
	s.mu.Unlock()
	return nil
}

// openExclTemp opens a fresh temp file next to path with O_EXCL, retrying
// with a numeric suffix if a concurrent writer holds the first name.
func openExclTemp(path string) (*os.File, error) {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s.tmp%d", path, i)
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) && i < 64 {
			continue
		}
		return f, err
	}
}

// admit inserts (or refreshes) k in the LRU front and evicts from the back
// until the bounds hold again. Caller holds s.mu.
func (s *Store) admit(k Key, data []byte) {
	if s.opts.MaxEntries < 0 || len(data) > s.opts.MaxBytes {
		return
	}
	if el, ok := s.index[k]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.index[k] = s.lru.PushFront(&entry{key: k, data: data})
	s.bytes += len(data)
	for s.lru.Len() > s.opts.MaxEntries || s.bytes > s.opts.MaxBytes {
		back := s.lru.Back()
		if back == nil || back == s.lru.Front() {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.index, e.key)
		s.bytes -= len(e.data)
		s.stats.Evictions++
	}
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	return st
}

// Len reports how many blobs the backing directory holds (0 for
// memory-only stores). It walks the shard directories, so it is a
// diagnostic, not a hot-path call.
func (s *Store) Len() int {
	if s.dir == "" {
		return 0
	}
	n := 0
	// The walk callback never returns an error, and unreadable entries are
	// simply not counted — acceptable for a diagnostic.
	_ = filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n
}
