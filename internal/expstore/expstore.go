// Package expstore is a content-addressed result store for deterministic
// experiments. PR 2 made every run a pure function of its canonical spec
// — {config, workload spec, seed, reps, code version} — so a result can be
// memoized under a hash of that spec and replayed forever without burning
// simulator cycles.
//
// The store is two-level: an in-memory LRU front for the hot keys a serving
// daemon sees, backed by an on-disk directory of immutable JSON blobs.
// Disk writes are crash-safe by construction (O_EXCL temp file, fsync,
// rename, directory fsync via journal.WriteFileAtomic), concurrent writers
// of the same key are harmless (the bytes are identical by determinism),
// and hit/miss/eviction counters feed the daemon's /healthz endpoint.
//
// The store is also self-healing. Every blob is sealed in an envelope that
// carries the SHA-256 of its payload, every disk read re-verifies that hash
// before serving, and Scrub sweeps the whole directory on demand (the
// daemon runs it periodically). A blob that fails verification — bit rot, a
// truncated write from a pre-envelope crash, manual tampering — is
// quarantined: renamed aside with a .corrupt suffix, never deleted, counted
// in Stats.Corrupt, and surfaced in /healthz. The next Get misses and the
// caller transparently recomputes and re-stores the result.
package expstore

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/journal"
)

// Key is the content address of one experiment result: the hex SHA-256 of
// the canonical serialization of everything the result depends on.
type Key string

// KeyOf computes the content address for an experiment. version is the
// code version (results are invalidated wholesale when the simulator
// changes), kind names the experiment family ("run", "sweep", "tables"),
// and spec is the canonicalized request — callers must apply defaults
// before hashing so equivalent requests share a key. Hashing marshals spec
// through encoding/json, which is deterministic for structs (declaration
// order) and maps (sorted keys).
func KeyOf(version, kind string, spec any) (Key, error) {
	payload, err := json.Marshal(struct {
		Version string `json:"version"`
		Kind    string `json:"kind"`
		Spec    any    `json:"spec"`
	}{version, kind, spec})
	if err != nil {
		return "", fmt.Errorf("expstore: canonicalizing %s spec: %w", kind, err)
	}
	sum := sha256.Sum256(payload)
	return Key(hex.EncodeToString(sum[:])), nil
}

func (k Key) valid() bool {
	if len(k) != 2*sha256.Size {
		return false
	}
	for _, c := range k {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	// MemHits served from the LRU front; DiskHits from the backing
	// directory (promoting the entry into the front); Misses found
	// nothing.
	MemHits  uint64 `json:"mem_hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	// Puts counts successful stores (including rediscovered concurrent
	// writes); Evictions counts LRU-front expulsions (the disk copy
	// remains).
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	// Corrupt counts blobs that failed content verification and were
	// quarantined (renamed aside, never deleted); Scrubs counts completed
	// integrity passes over the backing directory.
	Corrupt uint64 `json:"corrupt"`
	Scrubs  uint64 `json:"scrubs"`
	// Repaired counts blobs restored from a cluster replica (verified
	// sealed envelopes accepted by PutSealed with repair=true) instead of
	// being recomputed.
	Repaired uint64 `json:"repaired"`
	// Entries and Bytes describe the current LRU front.
	Entries int `json:"entries"`
	Bytes   int `json:"bytes"`
}

// Hits is the total over both levels.
func (s Stats) Hits() uint64 { return s.MemHits + s.DiskHits }

// Options tunes a store.
type Options struct {
	// MaxEntries bounds the LRU front's entry count (default 512;
	// negative disables the front entirely).
	MaxEntries int
	// MaxBytes bounds the LRU front's payload bytes (default 256 MiB).
	MaxBytes int
}

// defaultMaxBytes caps the LRU front's payload (a compile-time constant, so
// the untyped arithmetic is range-checked by the compiler).
const defaultMaxBytes = 256 << 20

func (o Options) fill() Options {
	if o.MaxEntries == 0 {
		o.MaxEntries = 512
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = defaultMaxBytes
	}
	return o
}

type entry struct {
	key  Key
	data []byte
}

// Store is a two-level content-addressed result store. It is safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu    sync.Mutex
	lru   *list.List            // guarded by mu: front = most recent; values are *entry
	index map[Key]*list.Element // guarded by mu
	bytes int                   // guarded by mu
	stats Stats                 // guarded by mu
}

// Open creates (if needed) and opens the store rooted at dir. An empty dir
// yields a memory-only store: the LRU front works, disk persistence is
// disabled. Opening also sweeps orphaned atomic-write temp files — the
// debris of a crash between temp create and rename — so they cannot
// accumulate across process lifetimes.
func Open(dir string, opts Options) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("expstore: opening %s: %w", dir, err)
		}
		// Best-effort: an unremovable orphan resurfaces at the next write,
		// which fails loudly there.
		_, _ = journal.SweepTemps(dir)
	}
	return &Store{
		dir:   dir,
		opts:  opts.fill(),
		lru:   list.New(),
		index: make(map[Key]*list.Element),
	}, nil
}

// Dir returns the backing directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// path shards blobs by the key's first byte so one directory never holds
// every result: <dir>/ab/abcdef....json.
func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, string(k[:2]), string(k)+".json")
}

// Get returns the stored bytes for k and whether they were found. Disk
// reads are verified against the envelope's payload hash before serving; a
// blob that fails verification is quarantined and reported as a miss, so
// the caller recomputes instead of consuming rot. Callers must not mutate
// the returned slice.
func (s *Store) Get(k Key) ([]byte, bool) {
	if !k.valid() {
		return nil, false
	}
	s.mu.Lock()
	if el, ok := s.index[k]; ok {
		s.lru.MoveToFront(el)
		s.stats.MemHits++
		data := el.Value.(*entry).data
		s.mu.Unlock()
		return data, true
	}
	s.mu.Unlock()

	if s.dir != "" {
		if raw, err := readBlob(s.path(k)); err == nil {
			data, verr := openBlob(raw)
			if verr == nil {
				s.mu.Lock()
				s.stats.DiskHits++
				s.admit(k, data)
				s.mu.Unlock()
				return data, true
			}
			s.quarantine(k)
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	return nil, false
}

// quarantine sets a corrupt blob aside — renamed with a .corrupt suffix,
// never deleted, so the evidence survives for forensics — and counts it.
// Concurrent quarantines of the same blob count once (first rename wins).
func (s *Store) quarantine(k Key) {
	path := s.path(k)
	for i := 0; i < 64; i++ {
		dst := path + ".corrupt"
		if i > 0 {
			dst = fmt.Sprintf("%s.corrupt%d", path, i)
		}
		if _, err := os.Stat(dst); err == nil {
			continue // earlier quarantine of the same key holds this name
		}
		if err := os.Rename(path, dst); err != nil {
			if os.IsNotExist(err) {
				return // a concurrent quarantine already moved it
			}
			continue
		}
		s.mu.Lock()
		s.stats.Corrupt++
		s.mu.Unlock()
		return
	}
}

// ScrubReport summarizes one integrity pass over the backing directory.
type ScrubReport struct {
	// Scanned blobs were read and verified; Quarantined of them failed and
	// were set aside; Errors are blobs that could not be read at all.
	Scanned     int `json:"scanned"`
	Quarantined int `json:"quarantined"`
	Errors      int `json:"errors"`
}

// Scrub verifies every blob in the backing directory against its embedded
// payload hash, quarantining any that fail. It is safe to run concurrently
// with serving — a blob quarantined mid-flight just turns the next Get into
// a miss-and-recompute. Memory-only stores scrub trivially.
func (s *Store) Scrub() ScrubReport {
	var r ScrubReport
	if s.dir != "" {
		// The walk callback never returns an error; unreadable entries are
		// counted in Errors.
		_ = filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				r.Errors++
				return nil
			}
			if d.IsDir() || !strings.HasSuffix(path, ".json") {
				return nil
			}
			k := Key(strings.TrimSuffix(filepath.Base(path), ".json"))
			if !k.valid() {
				return nil // foreign file; not ours to judge
			}
			r.Scanned++
			raw, rerr := readBlob(path)
			if rerr != nil {
				r.Errors++
				return nil
			}
			if _, verr := openBlob(raw); verr != nil {
				s.quarantine(k)
				r.Quarantined++
			}
			return nil
		})
	}
	s.mu.Lock()
	s.stats.Scrubs++
	s.mu.Unlock()
	return r
}

// Put stores data under k: a sealed, fully fsynced atomic disk write
// (temp file Sync before rename, then parent directory sync, via
// journal.WriteFileAtomic — a crash never leaves a torn blob) and
// admission into the LRU front. Re-putting an existing key is a no-op
// success — by determinism the bytes are identical.
func (s *Store) Put(k Key, data []byte) error {
	if !k.valid() {
		return fmt.Errorf("expstore: invalid key %q", k)
	}
	if s.dir != "" {
		// The envelope embeds the payload verbatim as a JSON value, so the
		// store can only persist JSON — which every result payload is.
		if !json.Valid(data) {
			return fmt.Errorf("expstore: put %s: payload is not valid JSON", k)
		}
		path := s.path(k)
		if _, err := os.Stat(path); err != nil {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return fmt.Errorf("expstore: put %s: %w", k, err)
			}
			if err := journal.WriteFileAtomic(path, sealBlob(data), 0o644); err != nil {
				return fmt.Errorf("expstore: put %s: %w", k, err)
			}
		}
	}
	s.mu.Lock()
	s.stats.Puts++
	s.admit(k, data)
	s.mu.Unlock()
	return nil
}

// envelope is the on-disk blob format: the payload plus the hex SHA-256 of
// its bytes, so any read can prove the disk still holds what was written.
// (The store's *key* hashes the experiment spec, not the payload, so the
// filename alone cannot authenticate the content — the envelope can.)
type envelope struct {
	Sum  string          `json:"sha256"`
	Data json.RawMessage `json:"data"`
}

// sealBlob wraps payload in an envelope. The payload bytes are embedded
// verbatim, so unsealing returns exactly what was sealed.
func sealBlob(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	buf := make([]byte, 0, len(payload)+96)
	buf = append(buf, `{"sha256":"`...)
	buf = append(buf, hex.EncodeToString(sum[:])...)
	buf = append(buf, `","data":`...)
	buf = append(buf, payload...)
	buf = append(buf, '}')
	return buf
}

// readBlob reads a blob file through the disk fault seam, so a dying
// sector under the store is drillable end to end: an injected EIO turns
// the read into a miss and the caller recomputes or repairs, exactly as it
// would for real rot.
func readBlob(path string) ([]byte, error) {
	if err := faultinject.CheckDisk(faultinject.DiskRead, path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}

// openBlob verifies a sealed blob and returns its payload. Anything that
// is not a well-formed envelope with a matching hash is corrupt.
func openBlob(raw []byte) ([]byte, error) {
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("expstore: not a sealed blob: %w", err)
	}
	sum := sha256.Sum256(env.Data)
	if hex.EncodeToString(sum[:]) != env.Sum {
		return nil, errors.New("expstore: payload hash mismatch")
	}
	return env.Data, nil
}

// admit inserts (or refreshes) k in the LRU front and evicts from the back
// until the bounds hold again. Caller holds s.mu.
func (s *Store) admit(k Key, data []byte) {
	if s.opts.MaxEntries < 0 || len(data) > s.opts.MaxBytes {
		return
	}
	if el, ok := s.index[k]; ok {
		s.lru.MoveToFront(el)
		return
	}
	s.index[k] = s.lru.PushFront(&entry{key: k, data: data})
	s.bytes += len(data)
	for s.lru.Len() > s.opts.MaxEntries || s.bytes > s.opts.MaxBytes {
		back := s.lru.Back()
		if back == nil || back == s.lru.Front() {
			break
		}
		e := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.index, e.key)
		s.bytes -= len(e.data)
		s.stats.Evictions++
	}
}

// Has reports whether the store holds a verified copy of k — in the LRU
// front, or on disk with a valid envelope. A corrupt disk blob is
// quarantined on the spot and reported as absent, so cluster repair treats
// rot and loss identically.
func (s *Store) Has(k Key) bool {
	if !k.valid() {
		return false
	}
	s.mu.Lock()
	_, ok := s.index[k]
	s.mu.Unlock()
	if ok {
		return true
	}
	if s.dir == "" {
		return false
	}
	raw, err := readBlob(s.path(k))
	if err != nil {
		return false
	}
	if _, verr := openBlob(raw); verr != nil {
		s.quarantine(k)
		return false
	}
	return true
}

// Keys lists every key the store holds, sorted: the on-disk inventory plus
// (for memory-only stores) the LRU front. It walks the shard directories,
// so it is an anti-entropy/diagnostic call, not a hot-path one. Corruption
// is not checked here — a corrupt blob is discovered and quarantined when
// it is read.
func (s *Store) Keys() []Key {
	set := map[Key]bool{}
	if s.dir != "" {
		// The walk callback never returns an error; unreadable entries are
		// simply skipped — the scrubber reports them.
		_ = filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
				return nil
			}
			if k := Key(strings.TrimSuffix(filepath.Base(path), ".json")); k.valid() {
				set[k] = true
			}
			return nil
		})
	} else {
		s.mu.Lock()
		for k := range s.index {
			set[k] = true
		}
		s.mu.Unlock()
	}
	keys := make([]Key, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// GetSealed returns k's blob in its sealed on-disk envelope form, for
// replica transfer: the receiver re-verifies the embedded payload hash
// before accepting, so a byte flipped in transit (or on this node's disk)
// can never propagate. Memory-only hits are sealed on the fly.
func (s *Store) GetSealed(k Key) ([]byte, bool) {
	if !k.valid() {
		return nil, false
	}
	if s.dir != "" {
		raw, err := readBlob(s.path(k))
		if err == nil {
			if _, verr := openBlob(raw); verr == nil {
				return raw, true
			}
			s.quarantine(k)
			return nil, false
		}
	}
	s.mu.Lock()
	el, ok := s.index[k]
	var data []byte
	if ok {
		data = el.Value.(*entry).data
	}
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	return sealBlob(data), true
}

// PutSealed stores a blob received in sealed envelope form, verifying the
// embedded payload hash before anything touches disk. With repair=true the
// accept is counted in Stats.Repaired — the cluster healed this blob from
// a replica instead of recomputing it. Re-putting an existing key is a
// no-op success, which makes replication pushes idempotent.
func (s *Store) PutSealed(k Key, sealed []byte, repair bool) error {
	if !k.valid() {
		return fmt.Errorf("expstore: invalid key %q", k)
	}
	data, err := openBlob(sealed)
	if err != nil {
		return fmt.Errorf("expstore: put sealed %s: %w", k, err)
	}
	if s.dir != "" {
		path := s.path(k)
		if _, err := os.Stat(path); err != nil {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return fmt.Errorf("expstore: put sealed %s: %w", k, err)
			}
			if err := journal.WriteFileAtomic(path, sealed, 0o644); err != nil {
				return fmt.Errorf("expstore: put sealed %s: %w", k, err)
			}
		}
	}
	s.mu.Lock()
	s.stats.Puts++
	if repair {
		s.stats.Repaired++
	}
	s.admit(k, data)
	s.mu.Unlock()
	return nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.lru.Len()
	st.Bytes = s.bytes
	return st
}

// Len reports how many blobs the backing directory holds (0 for
// memory-only stores). It walks the shard directories, so it is a
// diagnostic, not a hot-path call.
func (s *Store) Len() int {
	if s.dir == "" {
		return 0
	}
	n := 0
	// The walk callback never returns an error, and unreadable entries are
	// simply not counted — acceptable for a diagnostic.
	_ = filepath.WalkDir(s.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".json") {
			n++
		}
		return nil
	})
	return n
}
