package expstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

func TestKeyOfCanonical(t *testing.T) {
	type spec struct {
		A int
		B string
	}
	k1, err := KeyOf("v1", "run", spec{1, "x"})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := KeyOf("v1", "run", spec{1, "x"})
	if k1 != k2 {
		t.Error("identical specs hashed differently")
	}
	if !k1.valid() {
		t.Errorf("key %q not a hex sha256", k1)
	}
	// Every dependency participates in the address.
	for name, k := range map[string]Key{
		"spec":    mustKey(t, "v1", "run", spec{2, "x"}),
		"kind":    mustKey(t, "v1", "sweep", spec{1, "x"}),
		"version": mustKey(t, "v2", "run", spec{1, "x"}),
	} {
		if k == k1 {
			t.Errorf("changing %s did not change the key", name)
		}
	}
}

func mustKey(t *testing.T, version, kind string, spec any) Key {
	t.Helper()
	k, err := KeyOf(version, kind, spec)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "store"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "v1", "run", "payload")
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(k, []byte(`"result"`)); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok || string(got) != `"result"` {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Misses != 1 || st.MemHits != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}

	// A fresh store over the same directory serves the blob from disk.
	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, ok = s2.Get(k)
	if !ok || string(got) != `"result"` {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Errorf("reopened stats = %+v", st)
	}
	// The promotion landed in the front: second read is a memory hit.
	s2.Get(k)
	if st := s2.Stats(); st.MemHits != 1 {
		t.Errorf("promotion missing: %+v", st)
	}
	if n := s2.Len(); n != 1 {
		t.Errorf("Len = %d", n)
	}
}

func TestStoreAtomicWrite(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "v1", "run", 42)
	if err := s.Put(k, []byte(`"same"`)); err != nil {
		t.Fatal(err)
	}
	// Re-putting an existing key is a no-op success, and no temp files
	// survive any Put.
	if err := s.Put(k, []byte(`"same"`)); err != nil {
		t.Fatal(err)
	}
	found := 0
	filepath.WalkDir(s.Dir(), func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() {
			if strings.Contains(path, ".tmp") {
				t.Errorf("leftover temp file %s", path)
			}
			found++
		}
		return nil
	})
	if found != 1 {
		t.Errorf("%d files on disk", found)
	}
}

func TestStoreConcurrentSameKey(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "v1", "run", "contended")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(k, []byte(`"deterministic bytes"`)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, ok := s.Get(k)
	if !ok || string(got) != `"deterministic bytes"` {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := Open("", Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = mustKey(t, "v1", "run", i)
		if err := s.Put(keys[i], []byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Memory-only store: evicted entries are gone for good.
	if _, ok := s.Get(keys[0]); ok {
		t.Error("oldest entry survived a full front")
	}
	if _, ok := s.Get(keys[2]); !ok {
		t.Error("newest entry evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}

	// Recency, not insertion order, decides the victim.
	s.Get(keys[1]) // refresh
	k3 := mustKey(t, "v1", "run", 3)
	s.Put(k3, []byte("r3"))
	if _, ok := s.Get(keys[1]); !ok {
		t.Error("recently used entry evicted")
	}
}

func TestByteBound(t *testing.T) {
	s, err := Open("", Options{MaxEntries: 100, MaxBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustKey(t, "v", "k", "a"), mustKey(t, "v", "k", "b")
	s.Put(a, []byte("123456"))
	s.Put(b, []byte("7890ab"))
	if st := s.Stats(); st.Evictions != 1 || st.Bytes > 10 {
		t.Errorf("stats = %+v", st)
	}
	// Oversized payloads bypass the front without evicting everything.
	big := mustKey(t, "v", "k", "big")
	s.Put(big, make([]byte, 64))
	if st := s.Stats(); st.Entries != 1 {
		t.Errorf("oversized payload disturbed the front: %+v", st)
	}
}

func TestGetQuarantinesCorruptBlob(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "v1", "run", "soon to rot")
	if err := s.Put(k, []byte(`{"result":1}`)); err != nil {
		t.Fatal(err)
	}

	// Corrupt the payload on disk, then reopen the store so the LRU front
	// is cold and Get must read the disk copy.
	path := filepath.Join(s.Dir(), string(k[:2]), string(k)+".json")
	if err := faultinject.FlipBit(path, 200); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := s2.Get(k); ok {
		t.Fatalf("corrupt blob served: %q", data)
	}
	st := s2.Stats()
	if st.Corrupt != 1 || st.Misses != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want corrupt=1 miss=1 diskhits=0", st)
	}
	// The blob was renamed aside, not deleted.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt blob still at %s (err=%v)", path, err)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("quarantined blob missing: %v", err)
	}
	if n := s2.Len(); n != 0 {
		t.Errorf("Len = %d after quarantine, want 0", n)
	}

	// The key is reusable: a recompute re-stores and serves cleanly.
	if err := s2.Put(k, []byte(`{"result":1}`)); err != nil {
		t.Fatalf("Put after quarantine: %v", err)
	}
	s3, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := s3.Get(k); !ok || string(data) != `{"result":1}` {
		t.Fatalf("healed Get = %q, %v", data, ok)
	}
}

func TestScrub(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = mustKey(t, "v1", "run", i)
		if err := s.Put(keys[i], []byte(fmt.Sprintf(`{"r":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if r := s.Scrub(); r.Scanned != 3 || r.Quarantined != 0 || r.Errors != 0 {
		t.Fatalf("clean scrub = %+v", r)
	}

	// Rot two of the three, plus a legacy unsealed blob under a fresh key
	// (pre-envelope format: also quarantined).
	for _, k := range keys[:2] {
		path := filepath.Join(s.Dir(), string(k[:2]), string(k)+".json")
		if err := faultinject.FlipBit(path, 180); err != nil {
			t.Fatal(err)
		}
	}
	legacy := mustKey(t, "v1", "run", "legacy")
	legacyPath := filepath.Join(s.Dir(), string(legacy[:2]), string(legacy)+".json")
	if err := os.MkdirAll(filepath.Dir(legacyPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(legacyPath, []byte(`{"r":"unsealed"}`), 0o644); err != nil {
		t.Fatal(err)
	}

	r := s.Scrub()
	if r.Scanned != 4 || r.Quarantined != 3 || r.Errors != 0 {
		t.Fatalf("scrub = %+v, want scanned=4 quarantined=3", r)
	}
	st := s.Stats()
	if st.Corrupt != 3 || st.Scrubs != 2 {
		t.Errorf("stats = %+v, want corrupt=3 scrubs=2", st)
	}
	// Quarantined files still exist alongside the one healthy blob.
	if n := s.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
	if _, err := os.Stat(legacyPath + ".corrupt"); err != nil {
		t.Errorf("legacy blob not quarantined: %v", err)
	}
	// A second scrub of the survivors is clean.
	if r := s.Scrub(); r.Scanned != 1 || r.Quarantined != 0 {
		t.Fatalf("re-scrub = %+v", r)
	}
}

func TestQuarantineNeverOverwrites(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "v1", "run", "repeat offender")
	path := filepath.Join(s.Dir(), string(k[:2]), string(k)+".json")
	// Corrupt and quarantine the same key twice: both corpses survive.
	for i := 0; i < 2; i++ {
		if err := s.Put(k, []byte(`{"x":1}`)); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.FlipBit(path, 150); err != nil {
			t.Fatal(err)
		}
		fresh, err := Open(s.Dir(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := fresh.Get(k); ok {
			t.Fatal("corrupt blob served")
		}
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("first corpse missing: %v", err)
	}
	if _, err := os.Stat(path + ".corrupt1"); err != nil {
		t.Errorf("second corpse missing: %v", err)
	}
}

func TestInvalidKey(t *testing.T) {
	s, _ := Open("", Options{})
	if err := s.Put(Key("../../etc/passwd"), []byte("x")); err == nil {
		t.Error("path-traversal key accepted")
	}
	if _, ok := s.Get(Key("short")); ok {
		t.Error("invalid key hit")
	}
}
