package expstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestSealedTransferRoundTrip is the replica-transfer contract: the sealed
// form one store hands out is accepted, verified, and served identically
// by another.
func TestSealedTransferRoundTrip(t *testing.T) {
	src, err := Open(filepath.Join(t.TempDir(), "src"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst, err := Open(filepath.Join(t.TempDir(), "dst"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "v1", "run", "sealed-roundtrip")
	payload := []byte(`{"rows":[1,2,3]}`)
	if err := src.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	sealed, ok := src.GetSealed(k)
	if !ok {
		t.Fatal("GetSealed missed a stored key")
	}
	if err := dst.PutSealed(k, sealed, true); err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("transferred payload = %q, %v; want %q", got, ok, payload)
	}
	if st := dst.Stats(); st.Repaired != 1 {
		t.Errorf("Repaired = %d, want 1", st.Repaired)
	}
	// A replication push (repair=false) counts as a plain put.
	dst2, err := Open(filepath.Join(t.TempDir(), "dst2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst2.PutSealed(k, sealed, false); err != nil {
		t.Fatal(err)
	}
	if st := dst2.Stats(); st.Repaired != 0 || st.Puts != 1 {
		t.Errorf("stats after replication push = %+v, want 1 put, 0 repaired", st)
	}
	// Idempotent: re-pushing the same sealed blob is a no-op success.
	if err := dst2.PutSealed(k, sealed, false); err != nil {
		t.Fatal(err)
	}
}

// TestPutSealedRejectsTamperedEnvelope: a bit flipped in transit must be
// refused before it reaches disk.
func TestPutSealedRejectsTamperedEnvelope(t *testing.T) {
	src, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "v1", "run", "tampered")
	if err := src.Put(k, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	sealed, ok := src.GetSealed(k)
	if !ok {
		t.Fatal("GetSealed missed")
	}
	bad := bytes.Replace(sealed, []byte(`"x":1`), []byte(`"x":2`), 1)
	dst, err := Open(filepath.Join(t.TempDir(), "dst"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.PutSealed(k, bad, true); err == nil {
		t.Fatal("tampered envelope accepted")
	}
	if dst.Has(k) {
		t.Error("tampered blob landed in the store")
	}
}

// TestMemoryOnlySealing: a memory-only store seals on the fly, so even a
// diskless node can donate blobs to a repairing replica.
func TestMemoryOnlySealing(t *testing.T) {
	s, err := Open("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := mustKey(t, "v1", "run", "memonly")
	payload := []byte(`{"mem":true}`)
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	sealed, ok := s.GetSealed(k)
	if !ok {
		t.Fatal("GetSealed missed a memory-only key")
	}
	got, err := openBlob(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("sealed payload = %q, want %q", got, payload)
	}
	if keys := s.Keys(); len(keys) != 1 || keys[0] != k {
		t.Errorf("Keys() = %v, want [%s]", keys, k)
	}
}

func TestHasAndKeys(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	k1 := mustKey(t, "v1", "run", "one")
	k2 := mustKey(t, "v1", "run", "two")
	if s.Has(k1) {
		t.Fatal("Has on empty store")
	}
	for _, k := range []Key{k1, k2} {
		if err := s.Put(k, []byte(`{}`)); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Has(k1) || !s.Has(k2) {
		t.Fatal("Has missed stored keys")
	}
	keys := s.Keys()
	if len(keys) != 2 {
		t.Fatalf("Keys() = %v, want 2 keys", keys)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("Keys() not sorted: %v", keys)
		}
	}

	// A corrupted blob is treated as absent by Has — and quarantined, so
	// repair can land a fresh copy.
	path := s.path(k1)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Drop the LRU copy so Has consults disk.
	fresh, err := Open(s.Dir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Has(k1) {
		t.Error("Has served a corrupt blob")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Error("corrupt blob not quarantined by Has")
	}
}
