package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func TestOpString(t *testing.T) {
	if OpIFetch.String() != "ifetch" || OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Error("op names wrong")
	}
	if !strings.Contains(Op(7).String(), "7") {
		t.Error("bad fallback")
	}
}

func TestSliceSource(t *testing.T) {
	recs := []Rec{{PID: 1, Op: OpRead, Addr: 100}, {PID: 2, Op: OpWrite, Addr: 200}}
	s := NewSliceSource(recs)
	for i := range recs {
		r, ok := s.Next()
		if !ok || r != recs[i] {
			t.Fatalf("rec %d = %+v ok=%v", i, r, ok)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("source did not end")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r != recs[0] {
		t.Error("Reset failed")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	f := func(pids []int32, ops []uint8, addrs []uint64) bool {
		n := len(pids)
		if len(ops) < n {
			n = len(ops)
		}
		if len(addrs) < n {
			n = len(addrs)
		}
		recs := make([]Rec, n)
		for i := 0; i < n; i++ {
			recs[i] = Rec{
				PID:  pids[i],
				Op:   Op(ops[i] % 3),
				Addr: addr.GVA(addrs[i] & (1<<addr.GlobalBits - 1)),
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		if w.Count() != uint64(n) {
			return false
		}
		r := NewReader(&buf)
		for i := 0; i < n; i++ {
			got, ok := r.Next()
			if !ok || got != recs[i] {
				return false
			}
		}
		_, ok := r.Next()
		return !ok && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, ok := r.Next(); ok {
		t.Error("read from empty trace")
	}
	if r.Err() != nil {
		t.Errorf("empty trace errored: %v", r.Err())
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("XXXXjunkjunkjunkjunk"))
	if _, ok := r.Next(); ok {
		t.Error("read past bad magic")
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "magic") {
		t.Errorf("err = %v", r.Err())
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Rec{PID: 1, Op: OpRead, Addr: 5})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	r := NewReader(bytes.NewReader(trunc))
	if _, ok := r.Next(); ok {
		t.Error("read truncated record")
	}
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "truncated") {
		t.Errorf("err = %v", r.Err())
	}
}

func TestBadOp(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Rec{PID: 1, Op: OpRead, Addr: 5})
	w.Flush()
	b := buf.Bytes()
	b[4+4] = 9 // corrupt the op byte of the first record
	r := NewReader(bytes.NewReader(b))
	if _, ok := r.Next(); ok {
		t.Error("read record with bad op")
	}
	if r.Err() == nil {
		t.Error("no error for bad op")
	}
}

func TestSummary(t *testing.T) {
	s := NewSummary()
	s.Add(Rec{Op: OpIFetch, Addr: 0})
	s.Add(Rec{Op: OpRead, Addr: 32})                  // same page, next block
	s.Add(Rec{Op: OpWrite, Addr: addr.PageBytes})     // next page
	s.Add(Rec{Op: OpWrite, Addr: addr.PageBytes + 1}) // same block
	if s.Total() != 4 {
		t.Errorf("Total = %d", s.Total())
	}
	if len(s.Pages) != 2 || len(s.Blocks) != 3 {
		t.Errorf("pages=%d blocks=%d", len(s.Pages), len(s.Blocks))
	}
	str := s.String()
	for _, want := range []string{"refs=4", "write=2", "pages=2"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}
