package trace

import (
	"bytes"
	"testing"
)

// FuzzTraceCodec feeds arbitrary bytes to the trace decoder — which must
// never panic, only return records or a diagnosed error — and checks the
// round-trip property: whatever records decode, re-encoding and re-decoding
// them reproduces the same records with no error.
//
// Run with: go test -fuzz=FuzzTraceCodec ./internal/trace
func FuzzTraceCodec(f *testing.F) {
	// Seed corpus: an empty stream, a bare header, one valid record, a
	// truncated record, a bad magic, and a bad op.
	f.Add([]byte{})
	f.Add([]byte("SPT1"))
	valid := &bytes.Buffer{}
	w := NewWriter(valid)
	_ = w.Write(Rec{PID: 7, Op: OpWrite, Addr: 0x3_f00d_beef})
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-3])
	f.Add([]byte("SPTX" + "aaaaaaaaaaaaa"))
	f.Add(append([]byte("SPT1"), 1, 2, 3, 4, 99, 0, 0, 0, 0, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var recs []Rec
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			recs = append(recs, rec)
		}
		// A diagnosed error and decoded records may coexist (the error
		// came after a valid prefix); a panic may not happen at all.

		// Round-trip whatever decoded.
		out := &bytes.Buffer{}
		w := NewWriter(out)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if w.Count() != uint64(len(recs)) {
			t.Fatalf("writer counted %d of %d records", w.Count(), len(recs))
		}

		r2 := NewReader(bytes.NewReader(out.Bytes()))
		for i, want := range recs {
			got, ok := r2.Next()
			if !ok {
				t.Fatalf("round-trip lost record %d: %v", i, r2.Err())
			}
			if got != want {
				t.Fatalf("record %d: %+v != %+v", i, got, want)
			}
		}
		if _, ok := r2.Next(); ok {
			t.Fatal("round-trip grew extra records")
		}
		if err := r2.Err(); err != nil {
			t.Fatalf("round-trip stream errored: %v", err)
		}

		// A fully valid input decodes to exactly the bytes it came from.
		if r.Err() == nil && len(data) >= 4 {
			if !bytes.Equal(out.Bytes(), data[:4+len(recs)*recSize]) {
				t.Fatal("re-encoding a clean stream changed its bytes")
			}
		}
	})
}
