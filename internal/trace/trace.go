// Package trace defines the memory-reference records flowing from the
// workload generators into the simulator, plus a compact binary codec so
// traces can be captured, stored, and replayed.
//
// The paper explains why its authors could not use trace-driven simulation:
// observing enough paging activity needs hundreds of millions of references,
// beyond 1989's ability to store and simulate, which is what pushed them to
// hardware counters. At today's scales the same experiments fit in a
// generated (or recorded) trace, so this reproduction supports both
// streaming generation and record/replay.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/addr"
)

// Op is the reference type.
type Op uint8

const (
	// OpIFetch is an instruction fetch.
	OpIFetch Op = iota
	// OpRead is a processor data read.
	OpRead
	// OpWrite is a processor data write.
	OpWrite
)

// String returns the mnemonic.
func (op Op) String() string {
	switch op {
	case OpIFetch:
		return "ifetch"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Rec is one memory reference in the global virtual address space.
type Rec struct {
	// PID identifies the process issuing the reference (for reporting;
	// the cache is globally addressed, so no per-process state is kept).
	PID int32
	// Op is the reference type.
	Op Op
	// Addr is the global virtual byte address referenced.
	Addr addr.GVA
}

// Source produces a reference stream. Next returns false when the stream is
// exhausted.
type Source interface {
	Next() (Rec, bool)
}

// BatchSource is a Source that can fill a caller-owned buffer with many
// records per call. The records must be exactly those the same number of
// successive Next calls would have returned — batching changes dispatch
// cost, never the stream — which is what lets the machine runner consume
// buffers while staying bit-identical to per-reference pulls.
type BatchSource interface {
	Source
	// NextBatch fills buf with up to len(buf) records and returns how many
	// it produced. Zero means the stream is exhausted (len(buf) > 0).
	NextBatch(buf []Rec) int
}

// SliceSource replays a fixed slice of records.
type SliceSource struct {
	recs []Rec
	i    int
}

// NewSliceSource returns a Source replaying recs.
func NewSliceSource(recs []Rec) *SliceSource { return &SliceSource{recs: recs} }

// Next implements Source.
func (s *SliceSource) Next() (Rec, bool) {
	if s.i >= len(s.recs) {
		return Rec{}, false
	}
	r := s.recs[s.i]
	s.i++
	return r, true
}

// NextBatch implements BatchSource.
func (s *SliceSource) NextBatch(buf []Rec) int {
	n := copy(buf, s.recs[s.i:])
	s.i += n
	return n
}

// Reset rewinds the source for another replay.
func (s *SliceSource) Reset() { s.i = 0 }

// magic identifies the trace file format.
var magic = [4]byte{'S', 'P', 'T', '1'}

// recSize is the on-disk record size: 4 (pid) + 1 (op) + 8 (addr).
const recSize = 13

// Writer encodes records to a stream.
type Writer struct {
	w     *bufio.Writer
	wrote bool
	n     uint64
}

// NewWriter returns a trace writer over w. The header is emitted lazily on
// the first record (or on Flush).
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

func (tw *Writer) header() error {
	if tw.wrote {
		return nil
	}
	tw.wrote = true
	_, err := tw.w.Write(magic[:])
	return err
}

// Write appends one record.
func (tw *Writer) Write(r Rec) error {
	if err := tw.header(); err != nil {
		return err
	}
	var buf [recSize]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(r.PID))
	buf[4] = byte(r.Op)
	binary.LittleEndian.PutUint64(buf[5:], uint64(r.Addr))
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.n++
	return nil
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush completes the stream.
func (tw *Writer) Flush() error {
	if err := tw.header(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader decodes a trace stream and implements Source.
type Reader struct {
	r      *bufio.Reader
	err    error
	header bool
}

// NewReader returns a trace reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Err returns the first error encountered, if any (io.EOF is not an error).
func (tr *Reader) Err() error { return tr.err }

// Next implements Source.
func (tr *Reader) Next() (Rec, bool) {
	if tr.err != nil {
		return Rec{}, false
	}
	if !tr.header {
		var m [4]byte
		if _, err := io.ReadFull(tr.r, m[:]); err != nil {
			tr.fail(err)
			return Rec{}, false
		}
		if m != magic {
			tr.err = fmt.Errorf("trace: bad magic %q", m)
			return Rec{}, false
		}
		tr.header = true
	}
	var buf [recSize]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		tr.fail(err)
		return Rec{}, false
	}
	op := Op(buf[4])
	if op > OpWrite {
		tr.err = fmt.Errorf("trace: bad op %d", buf[4])
		return Rec{}, false
	}
	return Rec{
		PID:  int32(binary.LittleEndian.Uint32(buf[0:])),
		Op:   op,
		Addr: addr.GVA(binary.LittleEndian.Uint64(buf[5:])),
	}, true
}

func (tr *Reader) fail(err error) {
	if err == io.EOF {
		return // clean end of stream
	}
	if err == io.ErrUnexpectedEOF {
		tr.err = fmt.Errorf("trace: truncated record")
		return
	}
	tr.err = err
}

// Summary accumulates per-op and footprint statistics over a stream.
type Summary struct {
	Ops    [3]uint64
	Pages  map[addr.GVPN]struct{}
	Blocks map[addr.BlockAddr]struct{}
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{
		Pages:  make(map[addr.GVPN]struct{}),
		Blocks: make(map[addr.BlockAddr]struct{}),
	}
}

// Add folds one record into the summary.
func (s *Summary) Add(r Rec) {
	s.Ops[r.Op]++
	s.Pages[r.Addr.Page()] = struct{}{}
	s.Blocks[r.Addr.Block()] = struct{}{}
}

// Total returns the number of records summarized.
func (s *Summary) Total() uint64 { return s.Ops[0] + s.Ops[1] + s.Ops[2] }

// String renders the summary.
func (s *Summary) String() string {
	return fmt.Sprintf("refs=%d (ifetch=%d read=%d write=%d) pages=%d blocks=%d footprint=%.1fMB",
		s.Total(), s.Ops[OpIFetch], s.Ops[OpRead], s.Ops[OpWrite],
		len(s.Pages), len(s.Blocks), float64(len(s.Pages)*addr.PageBytes)/(1<<20))
}
