package machine

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/pte"
	"repro/internal/vm"
)

// Audit checks the cross-structure invariants of a machine after (or
// during) a run: every valid cache line belongs to a resident page with a
// valid PTE, PTE lines belong to the reserved segment, and the PTE's frame
// matches the pager's. It returns the first violation found, or nil.
//
// The simulator's tests run audits after stress runs; a released simulator
// keeps the auditor public so new policies and workloads can be checked the
// same way.
func Audit(m *Machine) error {
	return auditCache(m.Cfg, m.Cache, m)
}

// AuditMP audits every processor's cache of a multiprocessor, then the
// coherence invariants across them: at most one owner per block, and an
// exclusively owned block cached nowhere else.
func AuditMP(m *MP) error {
	for i, c := range m.Caches {
		if err := auditCache(m.Cfg, c, m); err != nil {
			return fmt.Errorf("cpu %d: %w", i, err)
		}
	}
	type holder struct {
		owners, copies int
		exclusive      bool
	}
	blocks := map[addr.BlockAddr]*holder{}
	for _, c := range m.Caches {
		for i := 0; i < c.Lines(); i++ {
			l := c.LineAt(i)
			if !l.Valid() {
				continue
			}
			h := blocks[l.Addr]
			if h == nil {
				h = &holder{}
				blocks[l.Addr] = h
			}
			h.copies++
			if l.State.Owned() {
				h.owners++
			}
			if l.State == coherence.OwnedExclusive {
				h.exclusive = true
			}
		}
	}
	// Check in ascending block order so a multi-violation machine reports
	// the same first breach on every run — failure artifacts are diffed
	// and deduplicated, so the report must be as deterministic as the run.
	addrs := make([]addr.BlockAddr, 0, len(blocks))
	for b := range blocks {
		addrs = append(addrs, b)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, b := range addrs {
		h := blocks[b]
		if h.owners > 1 {
			return fmt.Errorf("block %#x has %d owners", uint64(b), h.owners)
		}
		if h.exclusive && h.copies > 1 {
			return fmt.Errorf("block %#x exclusive yet cached %d times", uint64(b), h.copies)
		}
	}
	return nil
}

// auditedMachine is the view auditCache needs from either machine flavour.
type auditedMachine interface {
	pagerView() pagerView
}

type pagerView struct {
	lookup   func(addr.GVPN) pageView
	pteValid func(addr.GVPN) (valid bool, pfn addr.PFN)
}

type pageView struct {
	exists   bool
	resident bool
	frame    addr.PFN
}

func (m *Machine) pagerView() pagerView { return viewOf(m.Pager.Lookup, m.Table.Lookup) }
func (m *MP) pagerView() pagerView      { return viewOf(m.Pager.Lookup, m.Table.Lookup) }

func viewOf(lookup func(addr.GVPN) *vm.Page, pteLookup func(addr.GVPN) pte.Entry) pagerView {
	return pagerView{
		lookup: func(p addr.GVPN) pageView {
			pg := lookup(p)
			if pg == nil {
				return pageView{}
			}
			return pageView{exists: true, resident: pg.Resident, frame: pg.Frame}
		},
		pteValid: func(p addr.GVPN) (bool, addr.PFN) {
			e := pteLookup(p)
			return e.Valid(), e.PFN()
		},
	}
}

func auditCache(cfg Config, c *cache.Cache, m auditedMachine) error {
	v := m.pagerView()
	for i := 0; i < c.Lines(); i++ {
		l := c.LineAt(i)
		if !l.Valid() {
			continue
		}
		page := l.Addr.Page()
		if l.IsPTE {
			if uint64(page.Base())>>addr.SegmentShift != uint64(PTESegment) {
				return fmt.Errorf("line %d: PTE block %#x outside the PTE segment", i, uint64(l.Addr))
			}
			continue
		}
		pg := v.lookup(page)
		if !pg.exists || !pg.resident {
			return fmt.Errorf("line %d: block %#x of non-resident page %#x", i, uint64(l.Addr), uint64(page))
		}
		valid, pfn := v.pteValid(page)
		if !valid {
			return fmt.Errorf("line %d: block %#x cached but PTE invalid", i, uint64(l.Addr))
		}
		if pfn != pg.frame {
			return fmt.Errorf("page %#x: PTE frame %d != pager frame %d", uint64(page), pfn, pg.frame)
		}
	}
	return nil
}
