package machine

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

func TestNewPanicsWithoutSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(Config{})
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CacheBytes != 128<<10 || cfg.MemoryBytes != 8<<20 {
		t.Errorf("default sizes: cache %d mem %d", cfg.CacheBytes, cfg.MemoryBytes)
	}
	if cfg.Dirty != core.DirtySPUR || cfg.Ref != core.RefMISS {
		t.Error("default policies should match the prototype")
	}
}

func TestSegmentAllocator(t *testing.T) {
	m := New(DefaultConfig())
	s1 := m.AllocSegment()
	s2 := m.AllocSegment()
	if s1 == s2 {
		t.Fatal("duplicate segments")
	}
	if s1 == KernelSegment || s1 == PTESegment {
		t.Fatal("allocator handed out a reserved segment")
	}
	m.FreeSegment(s1)
	if got := m.AllocSegment(); got != s1 {
		t.Errorf("freed segment not reused: got %d want %d", got, s1)
	}
}

func TestSegmentFreeReservedPanics(t *testing.T) {
	m := New(DefaultConfig())
	for _, s := range []addr.SegmentID{KernelSegment, PTESegment} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("freeing reserved segment %d did not panic", s)
				}
			}()
			m.FreeSegment(s)
		}()
	}
}

func TestSegmentExhaustion(t *testing.T) {
	m := New(DefaultConfig())
	for i := 0; i < int(PTESegment)-1; i++ {
		m.AllocSegment()
	}
	defer func() {
		if recover() == nil {
			t.Error("exhaustion did not panic")
		}
	}()
	m.AllocSegment()
}

func TestRunWithSliceSource(t *testing.T) {
	m := New(DefaultConfig())
	seg := m.AllocSegment()
	m.AddRegion(addr.PageIn(seg, 0), 4, vm.Data)
	base := addr.PageIn(seg, 0).Base()
	recs := []trace.Rec{
		{Op: trace.OpRead, Addr: base + 640},
		{Op: trace.OpWrite, Addr: base + 640},
		{Op: trace.OpRead, Addr: base + 640},
	}
	res := m.Run(trace.NewSliceSource(recs), 10)
	if res.Refs != 3 {
		t.Errorf("Refs = %d", res.Refs)
	}
	if res.Events.Misses != 1 || res.Events.Nds != 1 {
		t.Errorf("events = %+v", res.Events)
	}
	if res.Cycles == 0 || res.ElapsedSeconds <= 0 {
		t.Error("no time accounted")
	}
}

func TestRunHonorsBudget(t *testing.T) {
	m := New(DefaultConfig())
	seg := m.AllocSegment()
	m.AddRegion(addr.PageIn(seg, 0), 4, vm.Data)
	base := addr.PageIn(seg, 0).Base()
	var recs []trace.Rec
	for i := 0; i < 100; i++ {
		recs = append(recs, trace.Rec{Op: trace.OpRead, Addr: base + 640})
	}
	res := m.Run(trace.NewSliceSource(recs), 40)
	if res.Refs != 40 {
		t.Errorf("Refs = %d, want 40 (budget)", res.Refs)
	}
}

func TestRunSpecSmoke(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 5 << 20
	cfg.TotalRefs = 300_000
	res := RunSpec(cfg, workload.SLCSpec())
	if res.Refs != 300_000 {
		t.Fatalf("Refs = %d", res.Refs)
	}
	ev := res.Events
	if ev.Refs != uint64(res.Refs) {
		t.Errorf("counter refs %d != run refs %d", ev.Refs, res.Refs)
	}
	if ev.Misses == 0 || ev.Nds == 0 || ev.PageIns == 0 {
		t.Errorf("dead run: %+v", ev)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() core.Events {
		cfg := DefaultConfig()
		cfg.MemoryBytes = 5 << 20
		cfg.TotalRefs = 200_000
		cfg.Seed = 99
		return RunSpec(cfg, workload.Workload1Spec()).Events
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("same config produced different events:\n%+v\n%+v", a, b)
	}
}

func TestPageInStallOverlap(t *testing.T) {
	// With a multiprogrammed source (Runnable > 1) the pager charges only
	// the overlap fraction of each stall; a bare source charges it fully.
	mkRecs := func(m *Machine) []trace.Rec {
		seg := m.AllocSegment()
		m.AddRegion(addr.PageIn(seg, 0), 64, vm.Data)
		base := addr.PageIn(seg, 0).Base()
		var recs []trace.Rec
		for i := 0; i < 32; i++ {
			recs = append(recs, trace.Rec{Op: trace.OpRead, Addr: base + addr.GVA(i*addr.PageBytes)})
		}
		return recs
	}
	cfg := DefaultConfig()

	m1 := New(cfg)
	m1.Run(trace.NewSliceSource(mkRecs(m1)), 1<<30)
	solo := m1.Pager.Cycles

	m2 := New(cfg)
	src := trace.NewSliceSource(mkRecs(m2))
	m2.Pager.Runnable = func() int { return 3 }
	m2.Run(src, 1<<30)
	shared := m2.Pager.Cycles

	if shared >= solo {
		t.Errorf("overlapped stalls (%d) not cheaper than solo (%d)", shared, solo)
	}
}

func TestPolicyConfigsPropagate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Dirty = core.DirtyFAULT
	cfg.Ref = core.RefNONE
	cfg.TagCheckFlush = false
	m := New(cfg)
	if m.Engine.Dirty != core.DirtyFAULT || m.Engine.Ref != core.RefNONE || m.Engine.TagCheckFlush {
		t.Error("config not propagated to engine")
	}
}

func TestAuditAfterStressRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 5 << 20
	cfg.TotalRefs = 400_000
	m := New(cfg)
	script := workload.NewScript(m, 3, workload.Workload1Spec())
	m.Run(script, cfg.TotalRefs)
	if err := Audit(m); err != nil {
		t.Fatalf("audit failed: %v", err)
	}
}

func TestAuditCatchesCorruption(t *testing.T) {
	cfg := DefaultConfig()
	m := New(cfg)
	seg := m.AllocSegment()
	m.AddRegion(addr.PageIn(seg, 0), 4, vm.Data)
	base := addr.PageIn(seg, 0).Base()
	m.Run(trace.NewSliceSource([]trace.Rec{{Op: trace.OpRead, Addr: base + 640}}), 10)
	if err := Audit(m); err != nil {
		t.Fatalf("clean machine failed audit: %v", err)
	}
	// Corrupt: invalidate the PTE behind the cache's back.
	m.Table.Invalidate(base.Page())
	if Audit(m) == nil {
		t.Error("audit missed a cached block with an invalid PTE")
	}
}

func TestFrameConservationUnderStress(t *testing.T) {
	// After heavy paging, every allocatable frame is either free or holds
	// exactly one resident page: the pager never leaks or double-uses.
	cfg := DefaultConfig()
	cfg.MemoryBytes = 5 << 20
	cfg.TotalRefs = 500_000
	m := New(cfg)
	script := workload.NewScript(m, 7, workload.SLCSpec())
	m.Run(script, cfg.TotalRefs)
	if got := m.Pager.ResidentPages() + m.Pool.Free(); got != m.Pool.Allocatable() {
		t.Errorf("frames: resident+free = %d, allocatable = %d", got, m.Pool.Allocatable())
	}
	// And resident pages hold distinct frames.
	seen := map[uint32]bool{}
	count := 0
	for p := addr.GVPN(0); count < m.Pager.ResidentPages(); p++ {
		if p > 1<<30 {
			t.Fatal("runaway scan")
		}
		pg := m.Pager.Lookup(p)
		if pg == nil || !pg.Resident {
			continue
		}
		count++
		if seen[uint32(pg.Frame)] {
			t.Fatalf("frame %d holds two pages", pg.Frame)
		}
		seen[uint32(pg.Frame)] = true
	}
}

// perRefSource strips a script's batch capability so Run takes the
// per-reference path, while keeping Runnable visible to the pager.
type perRefSource struct{ s *workload.Script }

func (p perRefSource) Next() (trace.Rec, bool) { return p.s.Next() }
func (p perRefSource) Runnable() int           { return p.s.Runnable() }

// TestBatchedRunMatchesPerRef runs the same machine and workload twice —
// once through the batched fast path, once per reference — and requires
// identical results. The stream being identical is necessary but not
// sufficient: batch generation runs ahead of consumption, so a job releasing
// a heap generation (or a reaped task tearing its regions down) mid-batch
// would unmap pages before the machine replays the references generated
// while they existed. The spec here is tuned to make that constant traffic:
// tiny heap generations with a high allocation rate, short-lived foreground
// jobs, and a fast monitor, all switching mid-batch on a sub-batch quantum.
func TestBatchedRunMatchesPerRef(t *testing.T) {
	churny := func(name string, refs int64) workload.JobSpec {
		return workload.JobSpec{Params: workload.JobParams{
			Name: name, Refs: refs,
			CodePages: 4, HotCodeFrac: 0.3,
			DataPages: 96, HeapPages: 2, StackPages: 2,
			PIFetch: 0.5, PJump: 0.05, PFarJump: 0.1,
			PStack: 0.1, PAlloc: 0.3, PScanHeap: 0.1,
			PWritePage: 0.5, WriteRO: 0.3, WriteRMW: 0.2,
			ReadPassWrite: 0.01, PBackWrite: 0.01,
			PSeq: 0.3, PHotData: 0.3, HotDataFrac: 0.25, PHotWrite: 0.3,
			PRevisitWrite: 0.1, WindowPages: 4,
		}}
	}
	spec := workload.Spec{
		Name:       "churn",
		Background: []workload.JobSpec{churny("bg", 1)},
		Foreground: []workload.JobSpec{churny("fg1", 9_000), churny("fg2", 6_000)},
		Monitors: []workload.MonitorSpec{{
			Spec:   churny("mon", 2_000),
			Period: 11_000,
		}},
		Quantum: 3_000,
	}
	run := func(batched bool) Result {
		cfg := DefaultConfig()
		cfg.MemoryBytes = 1 << 20
		m := New(cfg)
		s := workload.NewScript(m, 11, spec)
		var src trace.Source = s
		if !batched {
			src = perRefSource{s}
		}
		return m.Run(src, 300_000)
	}
	batch, perRef := run(true), run(false)
	if batch != perRef {
		t.Errorf("batched run diverged from per-reference run:\nbatched %+v\nper-ref %+v", batch, perRef)
	}
	if batch.Refs != 300_000 || batch.Pager.PageOuts == 0 || batch.Pager.ZeroFills == 0 {
		t.Errorf("run too quiet to prove anything: %+v", batch.Pager)
	}
}
