// Package machine assembles the full SPUR simulator — virtual-address
// cache, in-cache translation, pager, policy engine, performance counters —
// and runs workloads against it.
package machine

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/pte"
	"repro/internal/timing"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
	"repro/internal/xlate"
)

// Reserved segments of the global virtual space.
const (
	// KernelSegment is reserved for the OS (never allocated to jobs).
	KernelSegment = addr.SegmentID(0)
	// PTESegment holds the first-level page table array.
	PTESegment = addr.SegmentID(addr.MaxSegmentID)
)

// Config selects the machine and experiment parameters.
type Config struct {
	// MemoryBytes is main memory (the paper sweeps 5, 6, 8 MB).
	MemoryBytes int
	// CacheBytes is the unified virtual-address cache (128 KB).
	CacheBytes int
	// WiredFrames is the kernel + wired page-table reservation.
	WiredFrames int

	// Dirty and Ref select the policies under test.
	Dirty core.DirtyPolicy
	Ref   core.RefPolicy
	// TagCheckFlush selects the tag-checking page flush the paper
	// assumes for its comparisons (false = SPUR's tag-ignoring flush).
	TagCheckFlush bool

	// Timing is the cycle-cost parameter set.
	Timing timing.Params

	// Seed drives the workload generators; repetitions vary it.
	Seed uint64
	// TotalRefs is the reference budget of one run.
	TotalRefs int64

	// Faults schedules deterministic fault injection (chaos runs). Empty
	// means no faults. Each run builds a fresh injector from these plans,
	// so a configuration replays bit-for-bit.
	Faults []faultinject.Plan
}

// DefaultConfig returns the prototype configuration at the reproduction's
// reference scale.
func DefaultConfig() Config {
	return Config{
		MemoryBytes:   core.MiB(8),
		CacheBytes:    128 << 10,
		WiredFrames:   128, // kernel + wired second-level page tables
		Dirty:         core.DirtySPUR,
		Ref:           core.RefMISS,
		TagCheckFlush: true,
		Timing:        timing.Default(),
		Seed:          1,
		TotalRefs:     20_000_000,
	}
}

// Machine is one assembled simulator instance.
type Machine struct {
	//spurlint:ignore statecomplete — the spec itself; sample keys snapshots by config hash instead of serializing it
	Cfg   Config
	Ctr   *counters.Set
	Cache *cache.Cache
	Table *pte.Table
	//spurlint:ignore statecomplete — stateless in-cache translation unit, rebuilt when the machine is wired
	X      *xlate.Unit
	Pool   *mem.Pool
	Pager  *vm.Pager
	Engine *core.Engine
	//spurlint:ignore statecomplete — fault-injection harness configuration; experiments never checkpoint under injection
	Inject *faultinject.Injector

	// Segment allocation is a pure function of the workload stream: replaying
	// the recorded warm-up prefix (sample.MachineState.Refs) reconstructs it.
	//spurlint:ignore statecomplete — rebuilt by replaying the warm-up reference stream
	segNext addr.SegmentID
	//spurlint:ignore statecomplete — rebuilt by replaying the warm-up reference stream
	segFree []addr.SegmentID

	//spurlint:ignore statecomplete — rebuilt by replaying the warm-up reference stream
	refs int64
}

var _ workload.Env = (*Machine)(nil)

// New assembles a machine.
func New(cfg Config) *Machine {
	if cfg.MemoryBytes <= 0 || cfg.CacheBytes <= 0 {
		panic("machine: config missing sizes")
	}
	ctr := counters.New()
	c := cache.New(cfg.CacheBytes)
	tbl := pte.NewTable(PTESegment)
	x := xlate.New(tbl, c, ctr, cfg.Timing)
	pool := mem.PoolForBytes(cfg.MemoryBytes, cfg.WiredFrames)
	pager := vm.NewPager(pool, ctr, cfg.Timing)
	e := core.NewEngine(c, x, pager, ctr, cfg.Timing, cfg.Dirty, cfg.Ref)
	e.TagCheckFlush = cfg.TagCheckFlush
	inj := faultinject.New(cfg.Faults...)
	if inj.Active() {
		// Only fault-plan runs pay for injection checks on the hot path;
		// a nil *faultinject.Injector is valid and inert, so the common
		// no-faults configuration leaves the engine and pager unwired.
		e.Inject = inj
		pager.Inject = inj
	}
	return &Machine{
		Cfg: cfg, Ctr: ctr, Cache: c, Table: tbl, X: x,
		Pool: pool, Pager: pager, Engine: e, Inject: inj,
		segNext: KernelSegment + 1,
	}
}

// AddRegion implements workload.Env.
func (m *Machine) AddRegion(start addr.GVPN, n int, kind vm.PageKind) vm.Region {
	return m.Pager.AddRegion(start, n, kind)
}

// ReleaseRegion implements workload.Env.
func (m *Machine) ReleaseRegion(r vm.Region) { m.Pager.ReleaseRegion(r) }

// AllocSegment implements workload.Env.
func (m *Machine) AllocSegment() addr.SegmentID {
	if n := len(m.segFree); n > 0 {
		s := m.segFree[n-1]
		m.segFree = m.segFree[:n-1]
		return s
	}
	if m.segNext >= PTESegment {
		panic("machine: global segment space exhausted")
	}
	s := m.segNext
	m.segNext++
	return s
}

// FreeSegment implements workload.Env.
func (m *Machine) FreeSegment(s addr.SegmentID) {
	if s == KernelSegment || s >= PTESegment {
		panic(fmt.Sprintf("machine: freeing reserved segment %d", s))
	}
	m.segFree = append(m.segFree, s)
}

// Result summarizes one run.
type Result struct {
	// Events is the paper's event vocabulary for the run.
	Events core.Events
	// Pager is the raw pager statistics (Table 3.5 columns).
	Pager vm.Stats
	// Cycles is total machine time; ElapsedSeconds its wall-clock
	// equivalent at the prototype's 150 ns cycle.
	Cycles         uint64
	ElapsedSeconds float64
	// Refs is how many references actually ran.
	Refs int64
}

// bindRunnable connects a source's runnable-process count to the pager, so
// page-in stalls overlap with other processes' work. The plain and hardened
// runners both go through it: the capability assertion lives in one place
// so the two paths cannot drift.
func bindRunnable(p *vm.Pager, src trace.Source) {
	if r, ok := src.(interface{ Runnable() int }); ok {
		p.Runnable = r.Runnable
	}
}

// runBatchSize is the reference buffer filled per batch-source call. One
// page of records keeps the buffer cache-resident while amortizing the
// per-reference interface dispatch to one call in a few thousand.
const runBatchSize = 4096

// Run drives up to n references from src through the engine and returns the
// run summary. Counters are not reset, so successive Runs accumulate; use a
// fresh Machine per experiment. Sources that report their runnable process
// count (like workload scripts) let the pager overlap page-in stalls with
// other processes' work. Batch sources are consumed a buffer at a time;
// the reference sequence (and so every simulated outcome) is identical
// either way.
func (m *Machine) Run(src trace.Source, n int64) Result {
	bindRunnable(m.Pager, src)
	if bs, ok := src.(trace.BatchSource); ok {
		return m.runBatched(bs, n)
	}
	var i int64
	for ; i < n; i++ {
		rec, ok := src.Next()
		if !ok {
			break
		}
		m.Engine.Access(rec)
	}
	m.refs += i
	return m.Snapshot()
}

// runBatched is Run's buffered fast path: the source fills a reusable
// record buffer, and the engine consumes it with a single concrete call
// per batch instead of two interface dispatches per reference.
func (m *Machine) runBatched(src trace.BatchSource, n int64) Result {
	buf := make([]trace.Rec, runBatchSize)
	var i int64
	for i < n {
		want := n - i
		if want > runBatchSize {
			want = runBatchSize
		}
		k := src.NextBatch(buf[:want])
		if k == 0 {
			break
		}
		m.Engine.AccessBatch(buf[:k])
		i += int64(k)
	}
	m.refs += i
	return m.Snapshot()
}

// Snapshot returns the machine's cumulative result.
func (m *Machine) Snapshot() Result {
	elapsed := m.Engine.ElapsedSeconds()
	return Result{
		Events:         core.EventsFrom(m.Ctr, m.Pager.Stats, elapsed),
		Pager:          m.Pager.Stats,
		Cycles:         m.Engine.TotalCycles(),
		ElapsedSeconds: elapsed,
		Refs:           m.refs,
	}
}

// RunSpec assembles a fresh machine for cfg, instantiates the workload spec
// on it, and runs the configured reference budget.
func RunSpec(cfg Config, spec workload.Spec) Result {
	m := New(cfg)
	script := workload.NewScript(m, cfg.Seed, spec)
	return m.Run(script, cfg.TotalRefs)
}
