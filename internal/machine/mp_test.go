package machine

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

func mpConfig() Config {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 6 << 20
	return cfg
}

func TestNewMPBounds(t *testing.T) {
	for _, bad := range []int{0, 13, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMP(%d) accepted", bad)
				}
			}()
			NewMP(mpConfig(), bad)
		}()
	}
	if m := NewMP(mpConfig(), 4); len(m.CPUs) != 4 || m.Bus.Ports() != 4 {
		t.Error("wrong CPU/bus wiring")
	}
}

// runShared drives the shared workload round-robin for n references.
func runShared(t *testing.T, cfg Config, cpus int, n int) (*MP, *workload.SharedWorkload) {
	t.Helper()
	m := NewMP(cfg, cpus)
	w := workload.NewSharedWorkload(m, 1, workload.DefaultSharedParams(cpus))
	for i := 0; i < n; i++ {
		cpu := i % cpus
		m.Access(cpu, w.Step(cpu))
	}
	return m, w
}

// TestMPCoherenceInvariants runs a real shared workload and then audits
// every cache line: a block may have at most one owner, and an exclusively
// owned block may be cached nowhere else.
func TestMPCoherenceInvariants(t *testing.T) {
	m, _ := runShared(t, mpConfig(), 4, 400_000)
	holders := map[addr.BlockAddr][]coherence.State{}
	for _, c := range m.Caches {
		for i := 0; i < c.Lines(); i++ {
			l := c.LineAt(i)
			if l.Valid() {
				holders[l.Addr] = append(holders[l.Addr], l.State)
			}
		}
	}
	if len(holders) == 0 {
		t.Fatal("caches empty after run")
	}
	sharedBlocks := 0
	for b, states := range holders {
		owners, excl := 0, 0
		for _, s := range states {
			if s.Owned() {
				owners++
			}
			if s == coherence.OwnedExclusive {
				excl++
			}
		}
		if owners > 1 {
			t.Fatalf("block %#x owned by %d caches: %v", uint64(b), owners, states)
		}
		if excl > 0 && len(states) > 1 {
			t.Fatalf("block %#x exclusive yet cached %d times: %v", uint64(b), len(states), states)
		}
		if len(states) > 1 {
			sharedBlocks++
		}
	}
	if sharedBlocks == 0 {
		t.Error("no block was ever shared between caches; workload not exercising sharing")
	}
}

// TestMPDirtyFaultOncePerPage: however many CPUs write a shared page, the
// software dirty bit is set by exactly one necessary fault per residency.
func TestMPDirtyFaultOncePerPage(t *testing.T) {
	cfg := mpConfig()
	cfg.MemoryBytes = 32 << 20 // no paging: each page faults dirty at most once
	m := NewMP(cfg, 4)
	w := workload.NewSharedWorkload(m, 1, workload.DefaultSharedParams(4))
	for i := 0; i < 400_000; i++ {
		cpu := i % 4
		m.Access(cpu, w.Step(cpu))
	}
	// Count dirtied shared pages via the pager's software bits.
	dirtyPages := 0
	for p := w.Shared().Start; p < w.Shared().End(); p++ {
		if pg := m.Pager.Lookup(p); pg != nil && pg.SoftDirty {
			dirtyPages++
		}
	}
	nds := m.Ctr.Count(counters.EvDirtyFault)
	// Some dirty faults belong to private heap/stack pages; shared-page
	// faults cannot exceed one per dirty page.
	if nds == 0 || dirtyPages == 0 {
		t.Fatalf("nds=%d dirtyShared=%d", nds, dirtyPages)
	}
	if m.Events().Nds != nds {
		t.Error("Events() disagrees with counters")
	}
}

// TestMPStaleCopiesScaleWithCPUs: with dirty bits emulated by protection,
// a page's first write repairs only the writer's cached blocks — every
// other CPU still holds stale read-only copies and faults on its first
// write. More CPUs, more excess faults per necessary fault: the
// multiprocessor is where the paper's SPUR scheme earns more than 16%.
func TestMPStaleCopiesScaleWithCPUs(t *testing.T) {
	ratio := func(cpus int) float64 {
		cfg := mpConfig()
		cfg.MemoryBytes = 32 << 20
		cfg.Dirty = core.DirtyFAULT
		m := NewMP(cfg, cpus)
		w := workload.NewSharedWorkload(m, 1, workload.DefaultSharedParams(cpus))
		for i := 0; i < cpus*250_000; i++ {
			cpu := i % cpus
			m.Access(cpu, w.Step(cpu))
		}
		ev := m.Events()
		return float64(ev.Nef) / float64(max64(ev.Nds, 1))
	}
	r1, r8 := ratio(1), ratio(8)
	if r8 <= r1 {
		t.Errorf("excess/necessary did not grow with CPUs: 1p=%.3f 8p=%.3f", r1, r8)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// TestMPUnmapFlushesAllCaches: after the daemon reclaims a page, no cache
// may still hold any of its blocks.
func TestMPUnmapFlushesAllCaches(t *testing.T) {
	cfg := mpConfig()
	cfg.MemoryBytes = 5 << 20
	m, w := runShared(t, cfg, 4, 600_000)
	if m.Pager.Stats.Reclaims == 0 {
		t.Skip("no reclaims at this scale; nothing to audit")
	}
	// Audit: every valid non-PTE cache line belongs to a resident page.
	for ci, c := range m.Caches {
		for i := 0; i < c.Lines(); i++ {
			l := c.LineAt(i)
			if !l.Valid() || l.IsPTE {
				continue
			}
			pg := m.Pager.Lookup(l.Addr.Page())
			if pg == nil || !pg.Resident {
				t.Fatalf("cache %d holds block %#x of a non-resident page", ci, uint64(l.Addr))
			}
		}
	}
	_ = w
}

// TestMPSoloMatchesUniprocessorShape: a 1-CPU MP machine behaves like the
// uniprocessor on the same record stream.
func TestMPSoloMatchesUniprocessorShape(t *testing.T) {
	cfg := mpConfig()

	uni := New(cfg)
	seg := uni.AllocSegment()
	uni.AddRegion(addr.PageIn(seg, 0), 8, vm.Data)
	base := addr.PageIn(seg, 0).Base()

	mp := NewMP(cfg, 1)
	seg2 := mp.AllocSegment()
	mp.AddRegion(addr.PageIn(seg2, 0), 8, vm.Data)
	base2 := addr.PageIn(seg2, 0).Base()

	ops := []trace.Op{trace.OpRead, trace.OpWrite, trace.OpRead, trace.OpWrite, trace.OpIFetch}
	for i := 0; i < 2000; i++ {
		off := addr.GVA((i % 900) * 32)
		op := ops[i%len(ops)]
		if op == trace.OpIFetch {
			op = trace.OpRead // the toy region is data
		}
		uni.Engine.Access(trace.Rec{Op: op, Addr: base + off})
		mp.Access(0, trace.Rec{Op: op, Addr: base2 + off})
	}
	u := uni.Ctr.Snapshot()
	p := mp.Ctr.Snapshot()
	for _, ev := range []counters.Event{counters.EvDirtyFault, counters.EvReadMiss, counters.EvWriteMiss, counters.EvPageIn} {
		if u[ev] != p[ev] {
			t.Errorf("%v: uni %d vs mp(1) %d", ev, u[ev], p[ev])
		}
	}
}

func TestAuditMPAfterStressRun(t *testing.T) {
	cfg := mpConfig()
	cfg.MemoryBytes = 5 << 20
	m, _ := runShared(t, cfg, 4, 500_000)
	if err := AuditMP(m); err != nil {
		t.Fatalf("MP audit failed: %v", err)
	}
}

func TestMPBusUtilizationGrowsWithCPUs(t *testing.T) {
	util := func(cpus int) float64 {
		cfg := mpConfig()
		cfg.MemoryBytes = 32 << 20
		m := NewMP(cfg, cpus)
		w := workload.NewSharedWorkload(m, 1, workload.DefaultSharedParams(cpus))
		refs := cpus * 150_000
		for i := 0; i < refs; i++ {
			m.Access(i%cpus, w.Step(i%cpus))
		}
		// Per-CPU wall time is roughly total/cpus; the shared bus sees
		// the sum, so its utilization grows with the board count.
		return m.Bus.Utilization(m.TotalCycles() / uint64(cpus))
	}
	u1, u8 := util(1), util(8)
	if u8 <= u1 {
		t.Errorf("bus utilization did not grow with CPUs: 1p=%.3f 8p=%.3f", u1, u8)
	}
}
