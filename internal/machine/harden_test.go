package machine

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/workload"
)

func hardenCfg() Config {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 5 << 20
	cfg.TotalRefs = 200_000
	cfg.Seed = 11
	return cfg
}

// TestRunHardenedCleanMatchesPlainRun: without faults, hardening is
// observationally free — same events, same cycles, same refs.
func TestRunHardenedCleanMatchesPlainRun(t *testing.T) {
	cfg := hardenCfg()
	plain := RunSpec(cfg, workload.SLCSpec())
	hard, fail := RunSpecHardened(cfg, workload.SLCSpec(), RunOptions{AuditEvery: 50_000})
	if fail != nil {
		t.Fatalf("clean hardened run failed: %v", fail)
	}
	if !reflect.DeepEqual(plain, hard) {
		t.Errorf("hardened result diverged:\nplain %+v\nhard  %+v", plain, hard)
	}
}

// TestRunHardenedRecoversIOExhaustion: a permanently failing backing store
// (PageInIO at every opportunity) exhausts the pager's retry budget; the
// resulting *vm.IOError panic becomes a structured RunFailure with a written
// repro bundle instead of a crashed test binary.
func TestRunHardenedRecoversIOExhaustion(t *testing.T) {
	dir := t.TempDir()
	cfg := hardenCfg()
	cfg.Faults = []faultinject.Plan{{Kind: faultinject.PageInIO, Every: 1}}
	res, fail := RunSpecHardened(cfg, workload.SLCSpec(), RunOptions{
		ArtifactDir: dir, TraceTail: 16,
	})
	if fail == nil {
		t.Fatal("permanent I/O failure did not fail the run")
	}
	if fail.Kind != FailPanic {
		t.Errorf("kind = %s, want %s", fail.Kind, FailPanic)
	}
	if !strings.Contains(fail.Reason, "backing-store") {
		t.Errorf("reason = %q", fail.Reason)
	}
	if len(fail.Tail) == 0 || len(fail.Tail) > 16 {
		t.Errorf("tail has %d records", len(fail.Tail))
	}
	if len(fail.Injections) == 0 {
		t.Error("no injection log in the failure")
	}
	if res.Refs >= cfg.TotalRefs {
		t.Error("failed run claims to have completed")
	}

	// The bundle on disk round-trips and reproduces the config.
	if fail.BundlePath == "" {
		t.Fatal("no bundle written")
	}
	data, err := os.ReadFile(fail.BundlePath)
	if err != nil {
		t.Fatal(err)
	}
	var loaded RunFailure
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatalf("bundle does not parse: %v", err)
	}
	if loaded.Config.Seed != cfg.Seed || len(loaded.Config.Faults) != 1 ||
		loaded.Config.Faults[0].Kind != faultinject.PageInIO {
		t.Errorf("bundle config does not reproduce the run: %+v", loaded.Config)
	}
}

// TestTransientIOFaultsRetryAndComplete: sparse transient I/O errors are
// absorbed by retry-with-backoff — the run completes, the retries are
// counted, and the backoff shows up in elapsed time.
func TestTransientIOFaultsRetryAndComplete(t *testing.T) {
	cfg := hardenCfg()
	clean, fail := RunSpecHardened(cfg, workload.SLCSpec(), RunOptions{})
	if fail != nil {
		t.Fatal(fail)
	}

	cfg2 := cfg
	cfg2.Faults = []faultinject.Plan{{Kind: faultinject.PageInIO, Every: 10, Seed: 5}}
	m := New(cfg2)
	script := workload.NewScript(m, cfg2.Seed, workload.SLCSpec())
	res, fail := m.RunHardened(script, cfg2.TotalRefs, RunOptions{})
	if fail != nil {
		t.Fatalf("transient faults killed the run: %v", fail)
	}
	if m.Pager.Stats.IORetries == 0 {
		t.Fatal("no retries recorded despite injected transient errors")
	}
	if res.Refs != clean.Refs {
		t.Errorf("refs %d != clean %d", res.Refs, clean.Refs)
	}
	if res.Cycles <= clean.Cycles {
		t.Error("retry/backoff cost did not appear in the elapsed-time model")
	}
	// The retries changed only time, not behaviour: same event counts
	// (elapsed time differs by exactly the backoff, so exclude it).
	gotEv, wantEv := res.Events, clean.Events
	gotEv.ElapsedSeconds, wantEv.ElapsedSeconds = 0, 0
	if gotEv != wantEv {
		t.Errorf("transient I/O retries changed simulated events:\n%+v\n%+v", gotEv, wantEv)
	}
}

// TestContinuousAuditCatchesInjectedCorruption: corrupted line tags are an
// invariant breach the continuous audit must catch mid-run.
func TestContinuousAuditCatchesInjectedCorruption(t *testing.T) {
	dir := t.TempDir()
	cfg := hardenCfg()
	cfg.Faults = []faultinject.Plan{{Kind: faultinject.LineCorrupt, Every: 2000}}
	_, fail := RunSpecHardened(cfg, workload.SLCSpec(), RunOptions{
		AuditEvery: 500, ArtifactDir: dir,
	})
	if fail == nil {
		t.Fatal("injected line corruption never tripped the audit")
	}
	if fail.Kind != FailAudit {
		t.Fatalf("kind = %s (%s), want %s", fail.Kind, fail.Reason, FailAudit)
	}
	if !strings.Contains(fail.Reason, "page") {
		t.Errorf("audit reason = %q", fail.Reason)
	}
	if fail.BundlePath == "" {
		t.Error("no repro bundle for the audit breach")
	}
}

// TestHardenedRunReproducibleBitForBit: the acceptance criterion — a run
// with any fault plan replays exactly from its configuration, including
// which injections fired and where the run failed.
func TestHardenedRunReproducibleBitForBit(t *testing.T) {
	run := func() (Result, *RunFailure, []faultinject.Record) {
		cfg := hardenCfg()
		cfg.Faults = []faultinject.Plan{
			{Kind: faultinject.CounterWrap, Every: 30_000, Seed: 3},
			{Kind: faultinject.DirtyBitFlip, Every: 7000, Seed: 9},
			{Kind: faultinject.PageInIO, Every: 25, Seed: 17},
		}
		m := New(cfg)
		script := workload.NewScript(m, cfg.Seed, workload.SLCSpec())
		res, fail := m.RunHardened(script, cfg.TotalRefs, RunOptions{AuditEvery: 20_000})
		return res, fail, m.Inject.Log()
	}
	res1, fail1, log1 := run()
	res2, fail2, log2 := run()
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("results diverged:\n%+v\n%+v", res1, res2)
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Error("injection logs diverged")
	}
	if (fail1 == nil) != (fail2 == nil) {
		t.Fatalf("one run failed, the other did not: %v vs %v", fail1, fail2)
	}
	if fail1 != nil && (fail1.Kind != fail2.Kind || fail1.Refs != fail2.Refs) {
		t.Errorf("failures diverged: %v vs %v", fail1, fail2)
	}
}

// TestCounterWrapInvisibleToMeasurements: injected hardware wraparounds do
// not perturb any measured result, because measurement reads the 64-bit
// software shadow — while the hardware view visibly diverges.
func TestCounterWrapInvisibleToMeasurements(t *testing.T) {
	cfg := hardenCfg()
	clean, fail := RunSpecHardened(cfg, workload.SLCSpec(), RunOptions{})
	if fail != nil {
		t.Fatal(fail)
	}

	cfg2 := cfg
	cfg2.Faults = []faultinject.Plan{{Kind: faultinject.CounterWrap, Every: 10_000}}
	m := New(cfg2)
	script := workload.NewScript(m, cfg2.Seed, workload.SLCSpec())
	wrapped, fail := m.RunHardened(script, cfg2.TotalRefs, RunOptions{})
	if fail != nil {
		t.Fatal(fail)
	}
	if !reflect.DeepEqual(clean, wrapped) {
		t.Errorf("counter wraparound leaked into measurements:\n%+v\n%+v", clean, wrapped)
	}
	if m.Inject.Fired(faultinject.CounterWrap) == 0 {
		t.Fatal("no wraparounds were injected")
	}
	// The hardware-accurate view did lose counts: at least one hardware
	// counter disagrees with its shadow modulo 2^32.
	diverged := false
	for i := 0; i < 16; i++ {
		ev := m.Ctr.HardwareEvent(i)
		if uint64(m.Ctr.Hardware(i)) != m.Ctr.Count(ev)&0xFFFF_FFFF {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("hardware counters survived an injected wraparound unscathed")
	}
}

// TestRunHardenedDeadline: a hopeless wall-clock budget stops the run with a
// deadline failure instead of hanging the sweep.
func TestRunHardenedDeadline(t *testing.T) {
	cfg := hardenCfg()
	cfg.TotalRefs = 50_000_000 // far more than a nanosecond of work
	res, fail := RunSpecHardened(cfg, workload.SLCSpec(), RunOptions{
		Deadline: time.Nanosecond, SkipFinalAudit: true,
	})
	if fail == nil || fail.Kind != FailDeadline {
		t.Fatalf("fail = %v, want deadline", fail)
	}
	if res.Refs == 0 || res.Refs >= cfg.TotalRefs {
		t.Errorf("refs at deadline = %d", res.Refs)
	}
}

// TestMPSnoopDropBreaksCoherenceAndIsAudited: dropped snoops let stale
// copies survive; the multiprocessor's continuous auditor catches the
// coherence breach (at most one owner, exclusive means alone).
func TestMPSnoopDropBreaksCoherenceAndIsAudited(t *testing.T) {
	cfg := mpConfig()
	cfg.MemoryBytes = 32 << 20
	cfg.Faults = []faultinject.Plan{{Kind: faultinject.SnoopDrop, Every: 3}}
	m := NewMP(cfg, 4)
	w := workload.NewSharedWorkload(m, 1, workload.DefaultSharedParams(4))
	auditor := m.Auditor(1000)
	var breach error
	for i := 0; i < 400_000 && breach == nil; i++ {
		m.Access(i%4, w.Step(i%4))
		breach = auditor.Tick()
	}
	if m.Bus.DroppedSnoops == 0 {
		t.Fatal("no snoops were dropped")
	}
	if breach == nil {
		t.Fatal("dropped snoops never tripped the MP coherence audit")
	}
}

// TestAuditorCadence: the auditor fires exactly every N ticks.
func TestAuditorCadence(t *testing.T) {
	calls := 0
	a := NewContinuousAuditor(10, func() error { calls++; return nil })
	for i := 0; i < 95; i++ {
		if err := a.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 9 {
		t.Errorf("auditor ran %d times over 95 ticks at cadence 10", calls)
	}
	var nilAud *ContinuousAuditor
	if nilAud.Tick() != nil {
		t.Error("nil auditor audited")
	}
}

func TestWriteBundleConcurrentCollisions(t *testing.T) {
	// Quarantined cells of a parallel sweep write their repro bundles
	// concurrently. Even when every failure derives the same base filename,
	// the O_EXCL create loop must give each its own file without clobbering.
	dir := t.TempDir()
	cfg := DefaultConfig()
	const writers = 8
	var wg sync.WaitGroup
	paths := make([]string, writers)
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := &RunFailure{Kind: FailPanic, Reason: "synthetic", Config: cfg, Seed: cfg.Seed}
			paths[i], errs[i] = f.WriteBundle(dir)
		}(i)
	}
	wg.Wait()
	seen := map[string]bool{}
	for i := 0; i < writers; i++ {
		if errs[i] != nil {
			t.Fatalf("writer %d: %v", i, errs[i])
		}
		if seen[paths[i]] {
			t.Fatalf("two writers got the same bundle path %s", paths[i])
		}
		seen[paths[i]] = true
	}
	got, _ := filepath.Glob(filepath.Join(dir, "runfailure-*.json"))
	if len(got) != writers {
		t.Errorf("%d bundles on disk, want %d", len(got), writers)
	}
}
