package machine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"time"

	"repro/internal/faultinject"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file is the hardened experiment runner. The plain Run assumes every
// component behaves perfectly and lets a single panic or invariant breach
// kill an entire multi-hour sweep; the hardened runner converts crashes into
// structured RunFailure artifacts (config + seed + last-N trace records, a
// reproducible-by-construction bundle), audits the machine's cross-structure
// invariants continuously instead of only post-run, and enforces per-run
// wall-clock deadlines — so a sweep quarantines a bad run and completes.

// FailureKind classifies how a hardened run died.
type FailureKind string

const (
	// FailPanic is a recovered crash (including vm.IOError exhaustion).
	FailPanic FailureKind = "panic"
	// FailAudit is a continuous-audit invariant breach.
	FailAudit FailureKind = "audit"
	// FailDeadline is a per-run wall-clock budget overrun.
	FailDeadline FailureKind = "deadline"
)

// RunOptions hardens one run: invariant-audit cadence, a wall-clock
// deadline, and what a failure's repro bundle should capture. The zero
// value is a plain run (final audit only, no deadline, default trace tail).
// None of the knobs affect simulated decisions, so hardened results are
// bit-identical to unhardened ones; the spurd daemon accepts the same
// knobs on the wire as repro/pkg/client.HardenedOptions.
type RunOptions struct {
	// AuditEvery invokes Audit every N references (continuous invariant
	// auditing). Zero disables mid-run audits; a final audit still runs.
	AuditEvery int64
	// Deadline is the per-run wall-clock budget; zero means none. The
	// deadline affects only where a run is cut off, never the simulated
	// decisions, so partial results stay deterministic per reference.
	Deadline time.Duration
	// TraceTail is how many trailing trace records the repro bundle
	// keeps (default 64).
	TraceTail int
	// ArtifactDir, when set, receives a JSON repro bundle per failure.
	ArtifactDir string
	// SkipFinalAudit disables the end-of-run audit (for callers that
	// audit on their own cadence).
	SkipFinalAudit bool
}

const defaultTraceTail = 64

// deadlineStride is how many references pass between wall-clock checks.
const deadlineStride = 4096

// RunFailure is the structured artifact of a failed hardened run: enough to
// reproduce the failure bit-for-bit (the config embeds the workload seed and
// the fault-injection plans) plus the trailing trace records and the
// injection log for diagnosis without a rerun.
type RunFailure struct {
	Kind   FailureKind `json:"kind"`
	Reason string      `json:"reason"`
	// Config reproduces the run: machine geometry, policies, Seed, and
	// the deterministic fault-injection plans.
	Config Config `json:"config"`
	Seed   uint64 `json:"seed"`
	// Refs is how many references completed before the failure.
	Refs int64 `json:"refs"`
	// Tail is the last-N trace records leading into the failure.
	Tail []trace.Rec `json:"tail,omitempty"`
	// Injections is the fault injector's record of what actually fired.
	Injections []faultinject.Record `json:"injections,omitempty"`
	// Stack is the recovered goroutine stack (panics only).
	Stack string `json:"stack,omitempty"`
	// BundlePath is where the bundle was written, if anywhere.
	BundlePath string `json:"-"`
}

// Error implements error.
func (f *RunFailure) Error() string {
	return fmt.Sprintf("run failed (%s) after %d refs: %s", f.Kind, f.Refs, f.Reason)
}

// WriteBundle writes the failure as an indented JSON repro bundle under dir,
// creating the directory if needed, and records the path in BundlePath. The
// filename is derived from the run configuration; collisions get a numeric
// suffix so sweep repetitions never clobber each other.
func (f *RunFailure) WriteBundle(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	base := fmt.Sprintf("runfailure-%s-%s-%dmb-seed%d-%s",
		f.Config.Dirty, f.Config.Ref, f.Config.MemoryBytes>>20, f.Seed, f.Kind)
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	for i := 0; ; i++ {
		name := base + ".json"
		if i > 0 {
			name = fmt.Sprintf("%s-%d.json", base, i)
		}
		path := filepath.Join(dir, name)
		w, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			continue
		}
		if err != nil {
			return "", err
		}
		_, werr := w.Write(data)
		// Bundles exist to survive the crash that produced them; fsync so
		// a dying process (or machine) cannot take the evidence with it.
		serr := w.Sync()
		cerr := w.Close()
		if werr != nil {
			return "", werr
		}
		if serr != nil {
			return "", serr
		}
		if cerr != nil {
			return "", cerr
		}
		f.BundlePath = path
		return path, nil
	}
}

// tailBuffer is a fixed-size ring of the most recent trace records. The
// push is O(1): a full ring overwrites its oldest slot instead of shifting
// the whole buffer, which at sweep scale (one push per reference) used to
// cost a 1.5 KB memmove per reference — several percent of total CPU.
type tailBuffer struct {
	recs []trace.Rec
	n    int
	head int // index of the oldest record once the ring is full
}

func newTailBuffer(n int) *tailBuffer {
	if n <= 0 {
		n = defaultTraceTail
	}
	return &tailBuffer{recs: make([]trace.Rec, 0, n), n: n}
}

func (t *tailBuffer) push(r trace.Rec) {
	if len(t.recs) < t.n {
		t.recs = append(t.recs, r)
		return
	}
	t.recs[t.head] = r
	t.head++
	if t.head == t.n {
		t.head = 0
	}
}

// snapshot returns the buffered records, oldest first.
func (t *tailBuffer) snapshot() []trace.Rec {
	out := make([]trace.Rec, len(t.recs))
	k := copy(out, t.recs[t.head:])
	copy(out[k:], t.recs[:t.head])
	return out
}

// ContinuousAuditor invokes an audit function once every Every ticks. It is
// the cadence mechanism behind RunOptions.AuditEvery, exported so drivers
// that own their access loop (the multiprocessor examples, custom trace
// replayers) can audit mid-run the same way.
type ContinuousAuditor struct {
	every int64
	n     int64
	audit func() error
}

// NewContinuousAuditor returns an auditor calling audit every 'every' ticks;
// every <= 0 never audits.
func NewContinuousAuditor(every int64, audit func() error) *ContinuousAuditor {
	return &ContinuousAuditor{every: every, audit: audit}
}

// Tick advances the auditor one event and runs the audit when the cadence
// comes due. A nil auditor never audits. The disabled check stays small
// enough to inline so a disabled auditor costs its callers' per-reference
// loops nothing but a branch.
func (a *ContinuousAuditor) Tick() error {
	if a == nil || a.every <= 0 {
		return nil
	}
	return a.tick()
}

func (a *ContinuousAuditor) tick() error {
	a.n++
	if a.n%a.every != 0 {
		return nil
	}
	return a.audit()
}

// Auditor returns a ContinuousAuditor over this machine's invariants.
func (m *Machine) Auditor(every int64) *ContinuousAuditor {
	return NewContinuousAuditor(every, func() error { return Audit(m) })
}

// Auditor returns a ContinuousAuditor over the multiprocessor's invariants
// (per-cache audits plus the cross-cache coherence invariants).
func (m *MP) Auditor(every int64) *ContinuousAuditor {
	return NewContinuousAuditor(every, func() error { return AuditMP(m) })
}

// failure assembles a RunFailure for this machine and writes the bundle if
// opts asks for one (a bundle-write error is reported in Reason rather than
// masking the original failure).
func (m *Machine) failure(kind FailureKind, reason string, stack string, tail *tailBuffer, opts RunOptions) *RunFailure {
	f := &RunFailure{
		Kind:       kind,
		Reason:     reason,
		Config:     m.Cfg,
		Seed:       m.Cfg.Seed,
		Refs:       m.refs,
		Injections: m.Inject.Log(),
		Stack:      stack,
	}
	if tail != nil {
		f.Tail = tail.snapshot()
	}
	if opts.ArtifactDir != "" {
		if _, err := f.WriteBundle(opts.ArtifactDir); err != nil {
			f.Reason += fmt.Sprintf(" (bundle write failed: %v)", err)
		}
	}
	return f
}

// RunHardened drives up to n references from src through the engine under
// panic recovery, continuous invariant auditing, and an optional wall-clock
// deadline. It always returns the cumulative snapshot; a non-nil RunFailure
// reports why the run stopped early. Counters accumulate across calls, as
// with Run.
func (m *Machine) RunHardened(src trace.Source, n int64, opts RunOptions) (Result, *RunFailure) {
	tail := newTailBuffer(opts.TraceTail)
	auditor := m.Auditor(opts.AuditEvery)
	// The deadline reads the wall clock, which is normally banned in model
	// code: simulated results must be a pure function of the spec. It is
	// safe here because the clock decides only *whether the run is cut
	// off*, never any simulated value — a run that beats its deadline is
	// bit-identical to an unhardened run, and one that doesn't returns a
	// FailDeadline artifact, not a result row (the daemon's store never
	// caches failures as results).
	var deadline time.Time
	if opts.Deadline > 0 {
		deadline = time.Now().Add(opts.Deadline) //spurlint:ignore determinism — wall clock only aborts the run; it cannot alter any simulated value
	}

	var fail *RunFailure
	func() {
		defer func() {
			if r := recover(); r != nil {
				fail = m.failure(FailPanic, fmt.Sprint(r), string(debug.Stack()), tail, opts)
			}
		}()
		bindRunnable(m.Pager, src)
		// Batch sources refill a reusable buffer; plain sources are pulled
		// one record at a time. Either way every reference passes through
		// the same per-record body below — tail capture, access, audit
		// cadence and the deadline stride are position-identical, so a
		// hardened batched run is bit-for-bit a hardened unbatched one.
		bs, batched := src.(trace.BatchSource)
		var buf []trace.Rec
		if batched {
			buf = make([]trace.Rec, runBatchSize)
		}
		var one [1]trace.Rec
		for i := int64(0); i < n; {
			recs := one[:1]
			if batched {
				want := n - i
				if want > runBatchSize {
					want = runBatchSize
				}
				k := bs.NextBatch(buf[:want])
				if k == 0 {
					break
				}
				recs = buf[:k]
			} else {
				rec, ok := src.Next()
				if !ok {
					break
				}
				one[0] = rec
			}
			if opts.AuditEvery <= 0 && deadline.IsZero() {
				// Neither mid-run audits nor a deadline: the per-record
				// body reduces to the tail capture and the access itself.
				// Bit-identical to the full body below — the skipped
				// checks are no-ops in this configuration.
				for _, rec := range recs {
					tail.push(rec)
					m.Engine.Access(rec)
					m.refs++
				}
				i += int64(len(recs))
				continue
			}
			for _, rec := range recs {
				tail.push(rec)
				m.Engine.Access(rec)
				m.refs++
				i++
				if err := auditor.Tick(); err != nil {
					fail = m.failure(FailAudit, err.Error(), "", tail, opts)
					return
				}
				//spurlint:ignore determinism — wall clock only aborts the run; it cannot alter any simulated value
				if !deadline.IsZero() && i%deadlineStride == 0 && time.Now().After(deadline) {
					fail = m.failure(FailDeadline,
						fmt.Sprintf("run exceeded its %v budget", opts.Deadline), "", tail, opts)
					return
				}
			}
		}
		if !opts.SkipFinalAudit {
			if err := Audit(m); err != nil {
				fail = m.failure(FailAudit, "post-run: "+err.Error(), "", tail, opts)
			}
		}
	}()
	return m.Snapshot(), fail
}

// RunSpecHardened assembles a fresh machine for cfg, instantiates the
// workload spec on it, and runs the configured reference budget under the
// hardened runner. Machine and workload construction are guarded too: a
// panicking constructor yields a RunFailure instead of killing the caller.
func RunSpecHardened(cfg Config, spec workload.Spec, opts RunOptions) (res Result, fail *RunFailure) {
	var m *Machine
	var script *workload.Script
	func() {
		defer func() {
			if r := recover(); r != nil {
				fail = &RunFailure{
					Kind: FailPanic, Reason: "setup: " + fmt.Sprint(r),
					Config: cfg, Seed: cfg.Seed, Stack: string(debug.Stack()),
				}
				if opts.ArtifactDir != "" {
					if _, err := fail.WriteBundle(opts.ArtifactDir); err != nil {
						fail.Reason += fmt.Sprintf(" (bundle write failed: %v)", err)
					}
				}
			}
		}()
		m = New(cfg)
		script = workload.NewScript(m, cfg.Seed, spec)
	}()
	if fail != nil {
		return Result{}, fail
	}
	return m.RunHardened(script, cfg.TotalRefs, opts)
}
