package machine

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/faultinject"
	"repro/internal/mem"
	"repro/internal/pte"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
	"repro/internal/xlate"
)

// MP is a multiprocessor SPUR workstation: up to twelve processor boards,
// each with its own 128 KB virtual-address cache and cache controller, all
// snooping one shared bus under the Berkeley Ownership protocol, sharing
// main memory, the page tables, and the operating system's pager.
//
// The paper's prototype is the one-CPU special case; the multiprocessor is
// where its design choices earn their keep — software PTE updates avoid an
// atomic-update memory system, and shared pages cached clean by several
// processors multiply the stale-copy events (each CPU's cached protection
// or page dirty bit goes stale independently).
type MP struct {
	Cfg    Config
	Bus    *coherence.Bus
	Caches []*cache.Cache
	CPUs   []*core.Engine
	Table  *pte.Table
	Pool   *mem.Pool
	Pager  *vm.Pager
	Ctr    *counters.Set
	Inject *faultinject.Injector

	cur     int // CPU whose access is in progress (for OS callbacks)
	segNext addr.SegmentID
	segFree []addr.SegmentID

	refs int64
}

var _ workload.Env = (*MP)(nil)
var _ vm.OS = (*MP)(nil)

// MaxCPUs is the SPUR backplane limit.
const MaxCPUs = 12

// NewMP assembles an n-processor machine.
func NewMP(cfg Config, n int) *MP {
	if n < 1 || n > MaxCPUs {
		panic(fmt.Sprintf("machine: %d CPUs (SPUR holds 1-%d boards)", n, MaxCPUs))
	}
	if cfg.MemoryBytes <= 0 || cfg.CacheBytes <= 0 {
		panic("machine: config missing sizes")
	}
	ctr := counters.New()
	tbl := pte.NewTable(PTESegment)
	pool := mem.PoolForBytes(cfg.MemoryBytes, cfg.WiredFrames)
	pager := vm.NewPager(pool, ctr, cfg.Timing)

	inj := faultinject.New(cfg.Faults...)
	// As in New: only fault-plan runs wire the injector into the hot
	// paths; a nil injector is valid and inert.
	if inj.Active() {
		pager.Inject = inj
	}
	m := &MP{
		Cfg: cfg, Bus: coherence.NewBus(), Table: tbl,
		Pool: pool, Pager: pager, Ctr: ctr, Inject: inj,
		segNext: KernelSegment + 1,
	}
	if inj.Active() {
		m.Bus.Inject = inj
	}
	for i := 0; i < n; i++ {
		c := cache.New(cfg.CacheBytes)
		c.AttachBus(m.Bus)
		x := xlate.New(tbl, c, ctr, cfg.Timing)
		e := core.NewEngine(c, x, pager, ctr, cfg.Timing, cfg.Dirty, cfg.Ref)
		e.TagCheckFlush = cfg.TagCheckFlush
		if inj.Active() {
			e.Inject = inj
		}
		m.Caches = append(m.Caches, c)
		m.CPUs = append(m.CPUs, e)
	}
	// The engines each installed themselves; the multiprocessor OS layer
	// replaces them so unmaps and reference clears reach every cache.
	pager.SetOS(m)
	return m
}

// Access drives one reference on the given CPU.
func (m *MP) Access(cpu int, r trace.Rec) {
	m.cur = cpu
	m.CPUs[cpu].Access(r)
	m.refs++
}

// TotalCycles sums every CPU's reference-processing time plus the shared
// pager overhead.
func (m *MP) TotalCycles() uint64 {
	t := m.Pager.Cycles
	for _, e := range m.CPUs {
		t += e.Cycles
	}
	return t
}

// Refs returns the number of references driven so far.
func (m *MP) Refs() int64 { return m.refs }

// Events extracts the shared counters in the paper's vocabulary.
func (m *MP) Events() core.Events {
	return core.EventsFrom(m.Ctr, m.Pager.Stats, m.Cfg.Timing.Seconds(m.TotalCycles()))
}

// --- workload.Env ----------------------------------------------------------

// AddRegion implements workload.Env.
func (m *MP) AddRegion(start addr.GVPN, n int, kind vm.PageKind) vm.Region {
	return m.Pager.AddRegion(start, n, kind)
}

// ReleaseRegion implements workload.Env.
func (m *MP) ReleaseRegion(r vm.Region) { m.Pager.ReleaseRegion(r) }

// AllocSegment implements workload.Env.
func (m *MP) AllocSegment() addr.SegmentID {
	if k := len(m.segFree); k > 0 {
		s := m.segFree[k-1]
		m.segFree = m.segFree[:k-1]
		return s
	}
	if m.segNext >= PTESegment {
		panic("machine: global segment space exhausted")
	}
	s := m.segNext
	m.segNext++
	return s
}

// FreeSegment implements workload.Env.
func (m *MP) FreeSegment(s addr.SegmentID) {
	if s == KernelSegment || s >= PTESegment {
		panic(fmt.Sprintf("machine: freeing reserved segment %d", s))
	}
	m.segFree = append(m.segFree, s)
}

// --- vm.OS: the multiprocessor kernel --------------------------------------

// MapPage installs the PTE on the faulting CPU (whose handler is running).
func (m *MP) MapPage(pg *vm.Page) { m.CPUs[m.cur].MapPage(pg) }

// UnmapPage flushes the page from every processor's cache — on a real
// multiprocessor this is the expensive TLB-shootdown analogue the paper's
// REF policy multiplies — then invalidates the PTE once.
func (m *MP) UnmapPage(pg *vm.Page) {
	for _, e := range m.CPUs {
		e.KernelFlushPage(pg.VPN)
	}
	e := m.CPUs[m.cur]
	_, c := e.X.UpdatePTE(pg.VPN, func(pte.Entry) pte.Entry { return 0 })
	e.Cycles += c
}

// PageReferenced reads the shared PTE's reference bit per the policy.
func (m *MP) PageReferenced(pg *vm.Page) bool { return m.CPUs[m.cur].PageReferenced(pg) }

// ClearReference clears the shared reference bit; under REF the clear must
// flush the page from every cache so any processor's next touch misses.
func (m *MP) ClearReference(pg *vm.Page) {
	if m.Cfg.Ref == core.RefNONE {
		return
	}
	e := m.CPUs[m.cur]
	_, c := e.X.UpdatePTE(pg.VPN, func(en pte.Entry) pte.Entry { return en.WithReferenced(false) })
	e.Cycles += c
	if m.Cfg.Ref == core.RefTRUE {
		for _, cpu := range m.CPUs {
			cpu.KernelFlushPage(pg.VPN)
		}
	}
}

// PageModified reports the OS software dirty bit.
func (m *MP) PageModified(pg *vm.Page) bool { return pg.SoftDirty }
