package spur

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// The differential goldens pin the simulator's observable output — every
// paper table and the extension sweeps, at reduced reference budgets — to
// byte-exact files under testdata/goldens. Any change to the core that
// alters a single simulated decision shows up as a golden diff, which is
// what let the flat-core rewrite land with proof of equivalence: the files
// were captured from the struct-per-line/map-based core immediately before
// the swap and have not been regenerated since.
//
// Regenerate (only when an output change is intended and understood) with:
//
//	go test -run TestGoldens -update-goldens .
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/goldens from the current core")

// goldenRefs keeps each golden run small enough for CI while still paging
// heavily (hundreds of page-ins per run at the paper's memory sizes).
const goldenRefs = 300_000

func goldenCases() []struct {
	name   string
	render func() string
} {
	return []struct {
		name   string
		render func() string
	}{
		{"table21", func() string { return Table21().String() }},
		{"table31", func() string { return Table31().String() }},
		{"table32", func() string { return Table32().String() }},
		{"figure31", Figure31},
		{"figure32", Figure32},
		{"paper-table34", func() string { return PaperTable34().String() }},
		{"table33-34", func() string {
			rows := Table33(Table33Options{Refs: goldenRefs, Seed: 1, SizesMB: []int{5, 8}})
			return RenderTable33(rows, true).String() + "\n" + Table34(rows).String()
		}},
		{"table35", func() string {
			return RenderTable35(Table35Scaled(1, 0.02), true).String()
		}},
		{"table41", func() string {
			rows := Table41(Table41Options{Refs: goldenRefs, Reps: 2, Seed: 1, SizesMB: []int{5, 8}})
			return RenderTable41(rows, true).String()
		}},
		{"memsweep", func() string {
			rows := MemorySweep(MemorySweepOptions{
				SizesMB: []int{4, 6, 8},
				Refs:    goldenRefs,
				Seed:    1,
				Reps:    2,
			})
			return MemorySweepCSV(rows) + "\n" +
				MemorySweepChart(rows, core.SLC) + "\n" +
				MemorySweepChart(rows, core.Workload1)
		}},
		{"cachesweep", func() string {
			rows := CacheSweep(CacheSweepOptions{
				CacheSizes: []int{32 << 10, 256 << 10, MiB(1)},
				MemMB:      5,
				Refs:       goldenRefs,
				Seed:       1,
			})
			return RenderCacheSweep(rows).String()
		}},
		{"faulthandlersweep", func() string {
			rows := Table33(Table33Options{Refs: goldenRefs, Seed: 1, SizesMB: []int{5}})
			return RenderFaultHandlerSweep(FaultHandlerSweep(rows[0].Events)).String()
		}},
	}
}

func TestGoldens(t *testing.T) {
	for _, tc := range goldenCases() {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "goldens", tc.name+".golden")
			got := tc.render()
			if *updateGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-goldens to capture): %v", err)
			}
			if got != string(want) {
				t.Fatalf("output differs from pre-rewrite golden %s\n%s", path, firstDiff(string(want), got))
			}
		})
	}
}

// firstDiff locates the first differing line so a golden failure points at
// the divergent cell instead of dumping two full tables.
func firstDiff(want, got string) string {
	wl, gl := splitLines(want), splitLines(got)
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("line %d:\n  golden: %q\n  got:    %q", i+1, w, g)
		}
	}
	return "lengths differ only"
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
