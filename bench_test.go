package spur

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (at a reduced reference budget so iterations stay tractable)
// and additionally benchmarks the simulator's primitives. Run with
//
//	go test -bench=. -benchmem
//
// The Table benches report the headline quantity of each table through
// b.ReportMetric so the regenerated shape is visible in the bench output.

import (
	"fmt"
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

const benchRefs = 2_000_000

// BenchmarkTable21 regenerates the system-configuration table.
func BenchmarkTable21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table21().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable31 regenerates the dirty-bit alternatives taxonomy.
func BenchmarkTable31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table31().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable32 regenerates the time-parameter table.
func BenchmarkTable32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Table32().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable33 regenerates the event-frequency table (both workloads,
// all three memory sizes) at a reduced reference budget.
func BenchmarkTable33(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table33(Table33Options{Refs: benchRefs, Seed: uint64(i + 1)})
		ev := rows[len(rows)-1].Events // WORKLOAD1 @ 8MB
		b.ReportMetric(float64(ev.Nds), "Nds-W1@8MB")
		b.ReportMetric(ev.ExcessFractionExcludingZFOD(), "excess-frac")
	}
}

// BenchmarkTable34 evaluates the Section 3.2 overhead models — over the
// published Table 3.3 inputs (the exact reproduction) and over a measured
// run.
func BenchmarkTable34(b *testing.B) {
	tp := Timing()
	for i := 0; i < b.N; i++ {
		for _, r := range core.PaperTable33 {
			row := core.OverheadTable(r.Events(), tp)
			if row.Relative[DirtySPUR] > row.Relative[DirtyFAULT] {
				b.Fatal("model ordering violated")
			}
		}
	}
	row := core.OverheadTable(core.PaperTable33[0].Events(), tp)
	b.ReportMetric(row.Relative[DirtyFAULT], "rel-FAULT-SLC@5")
	b.ReportMetric(row.Relative[DirtyWRITE], "rel-WRITE-SLC@5")
}

// BenchmarkTable35 regenerates the Sprite page-out study. Pressure on the
// hosts builds over the run, so this bench needs the full budget and takes
// several seconds per iteration.
func BenchmarkTable35(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table35(uint64(i + 1))
		b.ReportMetric(rows[0].PctNotMod, "pct-notmod-mace8MB")
	}
}

// BenchmarkTable41 regenerates the reference-bit policy comparison at a
// reduced budget with one repetition.
func BenchmarkTable41(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := Table41(Table41Options{Refs: benchRefs, Reps: 1, Seed: uint64(i + 1)})
		for _, r := range rows {
			if r.Workload == core.SLC && r.MemMB == 5 && r.Policy == RefNONE {
				b.ReportMetric(100*r.RelPageIns, "NOREF-pageins-pct-SLC@5")
			}
		}
	}
}

// BenchmarkMemorySweepParallel measures the memory-size sweep through the
// bounded parallel engine at increasing -par, demonstrating near-linear
// scaling on multi-core hosts (the sweep's cells are fully independent).
// Output is byte-identical across the sub-benchmarks; only wall-clock
// changes.
func BenchmarkMemorySweepParallel(b *testing.B) {
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := MemorySweep(MemorySweepOptions{
					Workloads: []core.WorkloadName{core.SLC},
					SizesMB:   []int{4, 5, 6, 8},
					Refs:      1_000_000,
					Seed:      uint64(i + 1),
					Reps:      2,
					Parallel:  par,
				})
				if len(rows) != 4*len(RefPolicies) {
					b.Fatalf("rows = %d", len(rows))
				}
				b.ReportMetric(rows[0].PageIns.Mean, "pageins-SLC@4MB-MISS")
			}
		})
	}
}

// BenchmarkFigure31 runs the excess-fault demonstration.
func BenchmarkFigure31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Figure31() == "" {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure32 renders the PTE / cache-line formats.
func BenchmarkFigure32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if Figure32() == "" {
			b.Fatal("empty figure")
		}
	}
}

// --- simulator primitives --------------------------------------------------

func benchMachine(dirty DirtyPolicy) (*addr.SegmentID, addr.GVA, func(trace.Rec)) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 4 << 20
	cfg.Dirty = dirty
	m := NewMachine(cfg)
	seg := m.AllocSegment()
	m.AddRegion(addr.PageIn(seg, 0), 512, vm.Data)
	base := addr.PageIn(seg, 0).Base()
	return &seg, base, m.Engine.Access
}

// BenchmarkCacheHit measures the hit fast path: the whole point of a
// virtual address cache.
func BenchmarkCacheHit(b *testing.B) {
	_, base, access := benchMachine(DirtySPUR)
	r := trace.Rec{Op: trace.OpRead, Addr: base + 20*addr.BlockBytes}
	access(r) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		access(r)
	}
}

// BenchmarkCacheMissXlate measures the miss path including in-cache
// translation (two alternating conflicting blocks, resident page).
func BenchmarkCacheMissXlate(b *testing.B) {
	_, base, access := benchMachine(DirtySPUR)
	a1 := base + 20*addr.BlockBytes
	a2 := a1 + 128<<10 // same cache index, different tag
	access(trace.Rec{Op: trace.OpRead, Addr: a1})
	access(trace.Rec{Op: trace.OpRead, Addr: a2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := a1
		if i&1 == 1 {
			a = a2
		}
		access(trace.Rec{Op: trace.OpRead, Addr: a})
	}
}

// BenchmarkWriteHit measures the write-hit path per dirty policy — where
// the alternatives differ.
func BenchmarkWriteHit(b *testing.B) {
	for _, pol := range DirtyPolicies {
		b.Run(pol.String(), func(b *testing.B) {
			_, base, access := benchMachine(pol)
			r := trace.Rec{Op: trace.OpWrite, Addr: base + 20*addr.BlockBytes}
			access(r) // fault once, warm the block
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				access(r)
			}
		})
	}
}

// BenchmarkWorkloadGen measures reference generation alone (scheduler +
// job behaviours), without the memory system.
func BenchmarkWorkloadGen(b *testing.B) {
	cfg := DefaultConfig()
	m := NewMachine(cfg)
	script := workload.NewScript(m, 1, Workload1())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := script.Next(); !ok {
			b.Fatal("generator ran dry")
		}
	}
}

// BenchmarkEndToEnd measures full simulation throughput (references per
// second through generator + engine + pager), the number that sizes every
// experiment above.
func BenchmarkEndToEnd(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 6 << 20
	m := NewMachine(cfg)
	script := workload.NewScript(m, 1, SLC())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, ok := script.Next()
		if !ok {
			b.Fatal("generator ran dry")
		}
		m.Engine.Access(rec)
	}
}

// BenchmarkExtensionCacheSweep runs the cache-size sensitivity study at a
// reduced budget.
func BenchmarkExtensionCacheSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := CacheSweep(CacheSweepOptions{
			CacheSizes: []int{128 << 10, 8 << 20},
			Refs:       1_000_000,
			Seed:       uint64(i + 1),
		})
		b.ReportMetric(rows[3].RelPageIns, "MISS-vs-REF-8MB-cache")
	}
}

// BenchmarkMPSharedWorkload measures multiprocessor simulation throughput
// and the growth of stale-copy events with the processor count.
func BenchmarkMPSharedWorkload(b *testing.B) {
	for _, cpus := range []int{1, 4, 12} {
		b.Run(itoa(cpus)+"cpu", func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.MemoryBytes = 32 << 20
			cfg.Dirty = DirtyFAULT
			m := machine.NewMP(cfg, cpus)
			w := workload.NewSharedWorkload(m, 1, workload.DefaultSharedParams(cpus))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cpu := i % cpus
				m.Access(cpu, w.Step(cpu))
			}
			ev := m.Events()
			if ev.Nds > 0 {
				b.ReportMetric(float64(ev.Nstale())/float64(ev.Nds), "stale-per-necessary")
			}
		})
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

// BenchmarkWorkloadGenBatch measures batched reference generation alone
// (NextBatch, as the sampling profiler and measuring pass consume the
// stream), the floor under every sampled-run projection: even a skipped
// gap costs this much per reference.
func BenchmarkWorkloadGenBatch(b *testing.B) {
	cfg := DefaultConfig()
	m := NewMachine(cfg)
	script := workload.NewScript(m, 1, Workload1())
	buf := make([]trace.Rec, 4096)
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := b.N - done
		if n > len(buf) {
			n = len(buf)
		}
		k := script.NextBatch(buf[:n])
		if k == 0 {
			b.Fatal("generator ran dry")
		}
		done += k
	}
}

// BenchmarkTouchWarm measures functional warming throughput (generation
// plus Engine.Touch per reference): the rate at which the sampled
// measuring pass advances cache and VM state between representative
// intervals. The gap between this and BenchmarkEndToEnd is what interval
// sampling saves per gap reference.
func BenchmarkTouchWarm(b *testing.B) {
	cfg := DefaultConfig()
	cfg.MemoryBytes = 6 << 20
	m := NewMachine(cfg)
	script := workload.NewScript(m, 1, SLC())
	buf := make([]trace.Rec, 4096)
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := b.N - done
		if n > len(buf) {
			n = len(buf)
		}
		k := script.NextBatch(buf[:n])
		if k == 0 {
			b.Fatal("generator ran dry")
		}
		m.Engine.TouchBatch(buf[:k])
		done += k
	}
}

// BenchmarkMemorySweepSampledCell estimates one sweep cell by interval
// sampling, end to end: profile, cluster, exact prefix, warmed
// representatives, tail warming. Reported alongside
// BenchmarkMemorySweepParallel it shows what the estimator costs where the
// exact sweep's price is already known.
func BenchmarkMemorySweepSampledCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := MemorySweepSampled(MemorySweepOptions{
			Workloads: []core.WorkloadName{core.SLC},
			SizesMB:   []int{6},
			Policies:  []RefPolicy{RefMISS},
			Refs:      4_000_000,
			Seed:      uint64(i + 1),
		}, SampleOptions{IntervalLen: 250_000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[0].Estimate.SimulatedRefs), "simrefs")
	}
}
