package spur

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/stats"
)

// SweepRep is one repetition of a sweep cell: its derived workload seed and
// the (possibly quarantined) hardened-run outcome.
type SweepRep struct {
	Seed   uint64
	Result Result
	// Failure is non-nil when this repetition was quarantined: its run
	// crashed, breached an invariant, or overran its deadline. Result then
	// holds whatever completed before the failure.
	Failure *RunFailure
}

// MemorySweepRow is one point of the memory-size study: a workload at one
// memory size under one reference-bit policy, measured over Reps
// repetitions with per-repetition derived seeds.
type MemorySweepRow struct {
	Workload core.WorkloadName
	MemMB    int
	Policy   RefPolicy
	// Result and Failure are repetition 0's outcome, the cell's canonical
	// run (charts and the per-run CSV columns read these).
	Result  Result
	Failure *RunFailure
	// Reps holds every repetition in repetition order.
	Reps []SweepRep
	// Summaries over the non-quarantined repetitions (CI95 via the
	// Student-t half-width, as Table 4.1 computes it).
	PageIns   stats.Summary
	Elapsed   stats.Summary // seconds
	RefFaults stats.Summary
	Flushes   stats.Summary
}

// MemorySweepOptions parameterises the memory-size study. The zero value
// runs the full design: both workloads, all reference-bit policies,
// 4-16 MB, one repetition, GOMAXPROCS-wide. Results depend only on the
// experiment knobs (never on Parallel, Progress or scheduling), which is
// what lets the spurd daemon memoize sweeps by content address — its wire
// form, repro/pkg/client.SweepRequest, mirrors exactly the result-shaping
// fields here.
type MemorySweepOptions struct {
	// SizesMB defaults to 4..16 MB (the paper sweeps only 5, 6, 8 and
	// closes with "we are conducting further studies to evaluate ...
	// larger memory sizes").
	SizesMB []int
	// Policies defaults to all three reference-bit policies.
	Policies []RefPolicy
	// Workloads defaults to both.
	Workloads []core.WorkloadName
	Refs      int64
	// Seed is the experiment seed. Each (cell, repetition) derives its own
	// workload seed from it via parallel.DeriveSeed, so no two cells share
	// an RNG stream.
	Seed uint64
	// Reps is the number of repetitions per cell (the paper ran five, with
	// a randomized experiment design); 0 means 1.
	Reps int

	// Parallel bounds how many cells run concurrently (1 = serial; <= 0
	// means GOMAXPROCS). Results are byte-identical at any setting: every
	// run's seed depends only on (Seed, cell, rep), and result slots are
	// indexed by cell coordinates, not completion order.
	Parallel int
	// Progress, when set, is called after each run completes with the
	// count done and the total. Calls are serialized.
	Progress func(done, total int)
	// Context, when non-nil, cancels the sweep early; runs not yet
	// started are skipped and their repetitions stay zero-valued.
	Context context.Context

	// Hardening. AuditEvery audits machine invariants every N references
	// of every cell (0 = final audit only); ArtifactDir receives a JSON
	// repro bundle per quarantined run; Deadline bounds each run's
	// wall-clock time (zero = unbounded).
	AuditEvery  int64
	ArtifactDir string
	Deadline    time.Duration

	// Configure, when set, can adjust each cell's config before it runs
	// (e.g. schedule fault injection for specific cells in chaos drills).
	// It runs concurrently across cells and must not mutate shared state.
	Configure func(cfg *Config, wl core.WorkloadName, memMB int, pol RefPolicy)

	// Checkpoint hooks, installed by MemorySweepJournaled: repetitions
	// replayed from a journal to pre-seed, the already-done predicate, and
	// the per-completion record hook (called concurrently across workers).
	preseed  []ckptEntry
	skipDone func(cell, rep int) bool
	onRep    func(cell, rep int, r SweepRep)
}

func (o *MemorySweepOptions) fill() {
	if len(o.SizesMB) == 0 {
		o.SizesMB = []int{4, 5, 6, 7, 8, 10, 12, 16}
	}
	if len(o.Policies) == 0 {
		o.Policies = RefPolicies
	}
	if len(o.Workloads) == 0 {
		o.Workloads = []core.WorkloadName{core.SLC, core.Workload1}
	}
	if o.Refs == 0 {
		o.Refs = 8_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Reps <= 0 {
		o.Reps = 1
	}
}

// MemorySweep runs the paper's closing question — what happens to
// reference-bit maintenance as memories keep growing — as a parameter
// sweep: page-ins and elapsed time for each policy across memory sizes.
// The paper's prediction: the benefit of reference bits "will tend to
// decrease and may eventually become a hindrance".
//
// The sweep follows the paper's experiment design: Reps repetitions per
// cell, executed in a deterministically shuffled order (randomized
// experiment design), each repetition on its own derived seed. Runs are
// dispatched Parallel at a time through the bounded engine; every run stays
// under the hardened runner, so a run that crashes, breaches an invariant,
// or overruns its deadline is quarantined — its repetition carries the
// RunFailure (and repro bundle, if ArtifactDir is set) — while all sibling
// runs complete normally.
func MemorySweep(opts MemorySweepOptions) []MemorySweepRow {
	opts.fill()
	runOpts := RunOptions{
		AuditEvery:  opts.AuditEvery,
		Deadline:    opts.Deadline,
		ArtifactDir: opts.ArtifactDir,
	}

	cells := sweepCells(opts)
	rows := make([]MemorySweepRow, len(cells))
	for i, c := range cells {
		rows[i] = MemorySweepRow{
			Workload: c.wl, MemMB: c.mb, Policy: c.pol,
			Reps: make([]SweepRep, opts.Reps),
		}
	}
	// Repetitions replayed from a checkpoint journal land in their slots
	// before dispatch; skipDone keeps the engine from recomputing them.
	for _, e := range opts.preseed {
		rows[e.Cell].Reps[e.Rep] = SweepRep{Seed: e.Seed, Result: e.Result, Failure: e.Failure}
	}

	// Randomized experiment design: the execution order of the (cell, rep)
	// runs is shuffled deterministically per seed. Result slots are indexed
	// by coordinates, so the output never depends on this order — only the
	// interleaving of resource pressure does, which is what the paper's
	// design randomizes against.
	type job struct{ cell, rep int }
	jobs := make([]job, 0, len(cells)*opts.Reps)
	for ci := range cells {
		for rep := 0; rep < opts.Reps; rep++ {
			jobs = append(jobs, job{ci, rep})
		}
	}
	stats.Shuffle(jobs, opts.Seed*0x9e3779b9+17)

	popts := parallel.Options{
		Workers:  opts.Parallel,
		Context:  opts.Context,
		Progress: opts.Progress,
	}
	if opts.skipDone != nil {
		popts.Skip = func(i int) bool { return opts.skipDone(jobs[i].cell, jobs[i].rep) }
	}
	// A cancelled context leaves the unvisited cells zero-valued; callers
	// that pass a context observe it themselves, so the error adds nothing.
	_ = parallel.ForEach(len(jobs), popts, func(i int) {
		j := jobs[i]
		c := cells[j.cell]
		cfg := DefaultConfig()
		cfg.MemoryBytes = core.MiB(c.mb)
		cfg.TotalRefs = opts.Refs
		cfg.Seed = parallel.DeriveSeed(opts.Seed, uint64(j.cell), uint64(j.rep))
		cfg.Ref = c.pol
		if opts.Configure != nil {
			opts.Configure(&cfg, c.wl, c.mb, c.pol)
		}
		spec := SLC()
		if c.wl == core.Workload1 {
			spec = Workload1()
		}
		res, fail := RunHardened(cfg, spec, runOpts)
		// Each job owns its (cell, rep) slot; no two jobs share memory.
		sr := SweepRep{Seed: cfg.Seed, Result: res, Failure: fail}
		rows[j.cell].Reps[j.rep] = sr
		if opts.onRep != nil {
			opts.onRep(j.cell, j.rep, sr)
		}
	})

	for i := range rows {
		r := &rows[i]
		r.Result = r.Reps[0].Result
		r.Failure = r.Reps[0].Failure
		var pageIns, elapsed, refFaults, flushes []float64
		for _, rep := range r.Reps {
			if rep.Failure != nil {
				continue
			}
			ev := rep.Result.Events
			pageIns = append(pageIns, float64(ev.PageIns))
			elapsed = append(elapsed, rep.Result.ElapsedSeconds)
			refFaults = append(refFaults, float64(ev.RefFaults))
			flushes = append(flushes, float64(ev.PageFlushes))
		}
		r.PageIns = stats.Summarize(pageIns)
		r.Elapsed = stats.Summarize(elapsed)
		r.RefFaults = stats.Summarize(refFaults)
		r.Flushes = stats.Summarize(flushes)
	}
	return rows
}

// SweepFailures extracts the cells with at least one quarantined
// repetition.
func SweepFailures(rows []MemorySweepRow) []MemorySweepRow {
	var bad []MemorySweepRow
	for _, r := range rows {
		for _, rep := range r.Reps {
			if rep.Failure != nil {
				bad = append(bad, r)
				break
			}
		}
	}
	return bad
}

// MemorySweepChart renders one workload's page-in curves per policy
// (repetition means; cells whose every repetition was quarantined are
// skipped).
func MemorySweepChart(rows []MemorySweepRow, wl core.WorkloadName) string {
	ch := &report.Chart{
		Title:  fmt.Sprintf("Page-ins vs memory size — %s", wl),
		XLabel: "memory (MB)",
		YLabel: "page-ins",
	}
	for _, pol := range RefPolicies {
		var xs, ys []float64
		for _, r := range rows {
			if r.Workload == wl && r.Policy == pol && r.PageIns.N > 0 {
				xs = append(xs, float64(r.MemMB))
				ys = append(ys, r.PageIns.Mean)
			}
		}
		if len(xs) > 0 {
			ch.AddSeries(pol.String(), xs, ys)
		}
	}
	return ch.String()
}

// MemorySweepCSV renders the sweep as CSV for external plotting: the
// canonical (repetition 0) run's raw counts, then the cross-repetition
// mean and 95% confidence half-width columns. The output is deterministic
// for a given seed at any Parallel setting.
func MemorySweepCSV(rows []MemorySweepRow) string {
	s := "workload,mem_mb,policy,page_ins,ref_faults,ref_clears,page_flushes,elapsed_s,cycles," +
		"reps,ok_reps,page_ins_mean,page_ins_ci95,elapsed_mean,elapsed_ci95\n"
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, r := range rows {
		ev := r.Result.Events
		s += fmt.Sprintf("%s,%d,%s,%d,%d,%d,%d,%.2f,%d,%d,%d,%s,%s,%s,%s\n",
			r.Workload, r.MemMB, r.Policy, ev.PageIns, ev.RefFaults,
			ev.RefClears, ev.PageFlushes, r.Result.ElapsedSeconds, r.Result.Cycles,
			len(r.Reps), r.PageIns.N,
			f(r.PageIns.Mean), f(r.PageIns.CI95()),
			f(r.Elapsed.Mean), f(r.Elapsed.CI95()))
	}
	return s
}
