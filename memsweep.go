package spur

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

// MemorySweepRow is one point of the memory-size study: a workload at one
// memory size under one reference-bit policy.
type MemorySweepRow struct {
	Workload core.WorkloadName
	MemMB    int
	Policy   RefPolicy
	Result   Result
}

// MemorySweepOptions parameterises the sweep.
type MemorySweepOptions struct {
	// SizesMB defaults to 4..16 MB (the paper sweeps only 5, 6, 8 and
	// closes with "we are conducting further studies to evaluate ...
	// larger memory sizes").
	SizesMB []int
	// Policies defaults to all three reference-bit policies.
	Policies []RefPolicy
	// Workloads defaults to both.
	Workloads []core.WorkloadName
	Refs      int64
	Seed      uint64
}

func (o *MemorySweepOptions) fill() {
	if len(o.SizesMB) == 0 {
		o.SizesMB = []int{4, 5, 6, 7, 8, 10, 12, 16}
	}
	if len(o.Policies) == 0 {
		o.Policies = RefPolicies
	}
	if len(o.Workloads) == 0 {
		o.Workloads = []core.WorkloadName{core.SLC, core.Workload1}
	}
	if o.Refs == 0 {
		o.Refs = 8_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// MemorySweep runs the paper's closing question — what happens to
// reference-bit maintenance as memories keep growing — as a parameter
// sweep: page-ins and elapsed time for each policy across memory sizes.
// The paper's prediction: the benefit of reference bits "will tend to
// decrease and may eventually become a hindrance".
func MemorySweep(opts MemorySweepOptions) []MemorySweepRow {
	opts.fill()
	var rows []MemorySweepRow
	for _, wl := range opts.Workloads {
		spec := SLC()
		if wl == core.Workload1 {
			spec = Workload1()
		}
		for _, mb := range opts.SizesMB {
			for _, pol := range opts.Policies {
				cfg := DefaultConfig()
				cfg.MemoryBytes = mb << 20
				cfg.TotalRefs = opts.Refs
				cfg.Seed = opts.Seed
				cfg.Ref = pol
				rows = append(rows, MemorySweepRow{
					Workload: wl, MemMB: mb, Policy: pol,
					Result: Run(cfg, spec),
				})
			}
		}
	}
	return rows
}

// MemorySweepChart renders one workload's page-in curves per policy.
func MemorySweepChart(rows []MemorySweepRow, wl core.WorkloadName) string {
	ch := &report.Chart{
		Title:  fmt.Sprintf("Page-ins vs memory size — %s", wl),
		XLabel: "memory (MB)",
		YLabel: "page-ins",
	}
	for _, pol := range RefPolicies {
		var xs, ys []float64
		for _, r := range rows {
			if r.Workload == wl && r.Policy == pol {
				xs = append(xs, float64(r.MemMB))
				ys = append(ys, float64(r.Result.Events.PageIns))
			}
		}
		if len(xs) > 0 {
			ch.AddSeries(pol.String(), xs, ys)
		}
	}
	return ch.String()
}

// MemorySweepCSV renders the sweep as CSV for external plotting.
func MemorySweepCSV(rows []MemorySweepRow) string {
	s := "workload,mem_mb,policy,page_ins,ref_faults,ref_clears,page_flushes,elapsed_s,cycles\n"
	for _, r := range rows {
		ev := r.Result.Events
		s += fmt.Sprintf("%s,%d,%s,%d,%d,%d,%d,%.2f,%d\n",
			r.Workload, r.MemMB, r.Policy, ev.PageIns, ev.RefFaults,
			ev.RefClears, ev.PageFlushes, r.Result.ElapsedSeconds, r.Result.Cycles)
	}
	return s
}
