package spur

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

// MemorySweepRow is one point of the memory-size study: a workload at one
// memory size under one reference-bit policy.
type MemorySweepRow struct {
	Workload core.WorkloadName
	MemMB    int
	Policy   RefPolicy
	Result   Result
	// Failure is non-nil when this cell was quarantined: its run crashed,
	// breached an invariant, or overran its deadline. Result then holds
	// whatever completed before the failure. Sibling cells are unaffected.
	Failure *RunFailure
}

// MemorySweepOptions parameterises the sweep.
type MemorySweepOptions struct {
	// SizesMB defaults to 4..16 MB (the paper sweeps only 5, 6, 8 and
	// closes with "we are conducting further studies to evaluate ...
	// larger memory sizes").
	SizesMB []int
	// Policies defaults to all three reference-bit policies.
	Policies []RefPolicy
	// Workloads defaults to both.
	Workloads []core.WorkloadName
	Refs      int64
	Seed      uint64

	// Hardening. AuditEvery audits machine invariants every N references
	// of every cell (0 = final audit only); ArtifactDir receives a JSON
	// repro bundle per quarantined cell; Deadline bounds each cell's
	// wall-clock time (zero = unbounded).
	AuditEvery  int64
	ArtifactDir string
	Deadline    time.Duration

	// Configure, when set, can adjust each cell's config before it runs
	// (e.g. schedule fault injection for specific cells in chaos drills).
	Configure func(cfg *Config, wl core.WorkloadName, memMB int, pol RefPolicy)
}

func (o *MemorySweepOptions) fill() {
	if len(o.SizesMB) == 0 {
		o.SizesMB = []int{4, 5, 6, 7, 8, 10, 12, 16}
	}
	if len(o.Policies) == 0 {
		o.Policies = RefPolicies
	}
	if len(o.Workloads) == 0 {
		o.Workloads = []core.WorkloadName{core.SLC, core.Workload1}
	}
	if o.Refs == 0 {
		o.Refs = 8_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// MemorySweep runs the paper's closing question — what happens to
// reference-bit maintenance as memories keep growing — as a parameter
// sweep: page-ins and elapsed time for each policy across memory sizes.
// The paper's prediction: the benefit of reference bits "will tend to
// decrease and may eventually become a hindrance".
//
// Every cell runs under the hardened runner, so a cell that crashes,
// breaches an invariant, or overruns its deadline is quarantined — its row
// carries the RunFailure (and repro bundle, if ArtifactDir is set) — while
// all sibling cells complete normally.
func MemorySweep(opts MemorySweepOptions) []MemorySweepRow {
	opts.fill()
	runOpts := RunOptions{
		AuditEvery:  opts.AuditEvery,
		Deadline:    opts.Deadline,
		ArtifactDir: opts.ArtifactDir,
	}
	var rows []MemorySweepRow
	for _, wl := range opts.Workloads {
		spec := SLC()
		if wl == core.Workload1 {
			spec = Workload1()
		}
		for _, mb := range opts.SizesMB {
			for _, pol := range opts.Policies {
				cfg := DefaultConfig()
				cfg.MemoryBytes = mb << 20
				cfg.TotalRefs = opts.Refs
				cfg.Seed = opts.Seed
				cfg.Ref = pol
				if opts.Configure != nil {
					opts.Configure(&cfg, wl, mb, pol)
				}
				res, fail := RunHardened(cfg, spec, runOpts)
				rows = append(rows, MemorySweepRow{
					Workload: wl, MemMB: mb, Policy: pol,
					Result: res, Failure: fail,
				})
			}
		}
	}
	return rows
}

// SweepFailures extracts the quarantined cells of a sweep.
func SweepFailures(rows []MemorySweepRow) []MemorySweepRow {
	var bad []MemorySweepRow
	for _, r := range rows {
		if r.Failure != nil {
			bad = append(bad, r)
		}
	}
	return bad
}

// MemorySweepChart renders one workload's page-in curves per policy.
func MemorySweepChart(rows []MemorySweepRow, wl core.WorkloadName) string {
	ch := &report.Chart{
		Title:  fmt.Sprintf("Page-ins vs memory size — %s", wl),
		XLabel: "memory (MB)",
		YLabel: "page-ins",
	}
	for _, pol := range RefPolicies {
		var xs, ys []float64
		for _, r := range rows {
			if r.Workload == wl && r.Policy == pol && r.Failure == nil {
				xs = append(xs, float64(r.MemMB))
				ys = append(ys, float64(r.Result.Events.PageIns))
			}
		}
		if len(xs) > 0 {
			ch.AddSeries(pol.String(), xs, ys)
		}
	}
	return ch.String()
}

// MemorySweepCSV renders the sweep as CSV for external plotting.
func MemorySweepCSV(rows []MemorySweepRow) string {
	s := "workload,mem_mb,policy,page_ins,ref_faults,ref_clears,page_flushes,elapsed_s,cycles\n"
	for _, r := range rows {
		ev := r.Result.Events
		s += fmt.Sprintf("%s,%d,%s,%d,%d,%d,%d,%.2f,%d\n",
			r.Workload, r.MemMB, r.Policy, ev.PageIns, ev.RefFaults,
			ev.RefClears, ev.PageFlushes, r.Result.ElapsedSeconds, r.Result.Cycles)
	}
	return s
}
