package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Client talks to a spurd daemon. The zero value is not usable; call New.
// A Client is safe for concurrent use as long as its fields are not
// mutated once requests are in flight.
//
// Every request is retried on transport errors, 5xx responses, and 429
// load-shedding (honouring the server's Retry-After hint), with capped
// exponential backoff and jitter between attempts. Request bodies are
// replayable byte slices, so retries are safe.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7421".
	BaseURL string
	// HTTPClient defaults to a client with no overall timeout (table runs
	// take minutes; use per-call contexts to bound waits).
	HTTPClient *http.Client
	// Retries is how many attempts beyond the first to make (default 4;
	// negative disables retrying).
	Retries int
	// Backoff is the first retry's delay (default 250 ms), doubling per
	// attempt up to MaxBackoff (default 5 s). A 429's Retry-After
	// overrides the schedule when it is longer.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// settings is the effective, default-filled configuration for one request.
// It is computed per call instead of written back, so one *Client is safe
// to share across goroutines.
type settings struct {
	httpClient *http.Client
	retries    int
	backoff    time.Duration
	maxBackoff time.Duration
}

var defaultHTTPClient = &http.Client{}

func (c *Client) settings() settings {
	s := settings{
		httpClient: c.HTTPClient,
		retries:    c.Retries,
		backoff:    c.Backoff,
		maxBackoff: c.MaxBackoff,
	}
	if s.httpClient == nil {
		s.httpClient = defaultHTTPClient
	}
	if s.retries == 0 {
		s.retries = 4
	}
	if s.backoff <= 0 {
		s.backoff = 250 * time.Millisecond
	}
	if s.maxBackoff <= 0 {
		s.maxBackoff = 5 * time.Second
	}
	return s
}

// Run executes (or fetches, if the daemon has it memoized) one simulator
// run.
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var resp RunResponse
	if _, err := c.doJSON(ctx, http.MethodPost, "/v1/run", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Sweep executes the memory-size study and returns the rendered body (CSV
// by default, charts when req.Format is FormatChart) plus where it came
// from.
func (c *Client) Sweep(ctx context.Context, req SweepRequest) ([]byte, SweepMeta, error) {
	body, header, err := c.do(ctx, http.MethodPost, "/v1/sweep", req)
	if err != nil {
		return nil, SweepMeta{}, err
	}
	cached, _ := strconv.ParseBool(header.Get("X-Spur-Cached"))
	return body, SweepMeta{Key: header.Get("X-Spur-Key"), Cached: cached}, nil
}

// Tables fetches one paper artifact by id ("3.3", "4.1", "f3.1", "ext",
// ...) in the shared Doc serialization.
func (c *Client) Tables(ctx context.Context, id string, q TablesQuery) (*TablesResponse, error) {
	v := url.Values{}
	if q.Refs != 0 {
		v.Set("refs", strconv.FormatInt(q.Refs, 10))
	}
	if q.Seed != 0 {
		v.Set("seed", strconv.FormatUint(q.Seed, 10))
	}
	if q.Reps != 0 {
		v.Set("reps", strconv.Itoa(q.Reps))
	}
	if !q.Paper {
		v.Set("paper", "false")
	}
	path := "/v1/tables/" + url.PathEscape(id)
	if len(v) > 0 {
		path += "?" + v.Encode()
	}
	var resp TablesResponse
	if _, err := c.doJSON(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health fetches the daemon's /healthz snapshot.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if _, err := c.doJSON(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// StatusError is a non-2xx response that was not retried away.
type StatusError struct {
	Code    int
	Message string
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("spurd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// doJSON performs a request whose response must decode into out. The decode
// runs inside the retry loop: a truncated or corrupted body — a proxy that
// cut the stream, a flaky middlebox, an injected network fault — is
// indistinguishable from a transport failure and is retried the same way,
// instead of surfacing as a terminal decode error.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) (http.Header, error) {
	_, header, err := c.doChecked(ctx, method, path, in, func(body []byte) error {
		if err := json.Unmarshal(body, out); err != nil {
			return fmt.Errorf("spurd: decoding %s response: %w", path, err)
		}
		return nil
	})
	return header, err
}

// do performs one request with the retry/backoff schedule and returns the
// response body and headers.
func (c *Client) do(ctx context.Context, method, path string, in any) ([]byte, http.Header, error) {
	return c.doChecked(ctx, method, path, in, nil)
}

// doChecked is do with an optional response check: a non-nil check runs on
// every 2xx body, and its failure counts as a retryable attempt failure.
func (c *Client) doChecked(ctx context.Context, method, path string, in any, check func(body []byte) error) ([]byte, http.Header, error) {
	s := c.settings()
	var payload []byte
	if in != nil {
		var err error
		if payload, err = json.Marshal(in); err != nil {
			return nil, nil, fmt.Errorf("spurd: encoding %s request: %w", path, err)
		}
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		// An expired caller gets its context error immediately — never a
		// doomed network attempt.
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, nil, fmt.Errorf("%w (last attempt: %w)", err, lastErr)
			}
			return nil, nil, err
		}
		body, header, retryable, err := c.once(ctx, s.httpClient, method, path, payload)
		if err == nil && check != nil {
			// A body that fails its check is a mangled response; retry it
			// like any transport failure.
			err, retryable = check(body), true
		}
		if err == nil {
			return body, header, nil
		}
		lastErr = err
		if !retryable || attempt >= s.retries {
			return nil, nil, lastErr
		}
		delay := s.backoff << attempt
		if delay > s.maxBackoff {
			delay = s.maxBackoff
		}
		// A longer server hint (429 Retry-After) overrides the schedule.
		var se *StatusError
		if asStatus(err, &se) && se.Code == http.StatusTooManyRequests {
			if ra := retryAfter(header); ra > delay {
				delay = ra
			}
		}
		// Full jitter keeps a fleet of retrying clients from stampeding.
		delay = time.Duration(float64(delay) * (0.5 + 0.5*rand.Float64()))
		// No retry sleep may outlive the caller's context: a backoff that
		// cannot finish before the deadline is not started at all — the
		// caller gets the real last error now instead of a guaranteed
		// DeadlineExceeded later.
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) < delay {
			return nil, nil, fmt.Errorf("%w (retry abandoned: %v backoff would outlive the context deadline)", lastErr, delay)
		}
		// A stoppable timer (not time.After) so a cancelled caller returns
		// promptly without leaving the timer allocated until it fires —
		// long Retry-After waits would otherwise pin memory per retry.
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, nil, ctx.Err()
		}
	}
}

func (c *Client) once(ctx context.Context, hc *http.Client, method, path string, payload []byte) (body []byte, header http.Header, retryable bool, err error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, nil, false, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := hc.Do(req)
	if err != nil {
		// Transport errors (daemon restarting, connection refused) are
		// retryable unless the caller's context ended.
		return nil, nil, ctx.Err() == nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.Header, true, err
	}
	if resp.StatusCode/100 == 2 {
		return body, resp.Header, false, nil
	}
	msg := string(body)
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		msg = e.Error
	}
	serr := &StatusError{Code: resp.StatusCode, Message: msg}
	retryable = resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode/100 == 5
	return nil, resp.Header, retryable, serr
}

func asStatus(err error, out **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*out = se
	}
	return ok
}

func retryAfter(h http.Header) time.Duration {
	if h == nil {
		return 0
	}
	secs, err := strconv.Atoi(h.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
