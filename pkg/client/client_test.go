package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastClient returns a client with a negligible backoff schedule so retry
// tests run in milliseconds.
func fastClient(url string) *Client {
	c := New(url)
	c.Backoff = time.Millisecond
	c.MaxBackoff = 2 * time.Millisecond
	return c
}

func okRun(w http.ResponseWriter) {
	json.NewEncoder(w).Encode(RunResponse{Key: "k", Cached: true})
}

func TestRetryOn429ThenSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "busy"})
			return
		}
		okRun(w)
	}))
	defer ts.Close()
	resp, err := fastClient(ts.URL).Run(context.Background(), RunRequest{Refs: 1})
	if err != nil {
		t.Fatalf("Run after 429: %v", err)
	}
	if !resp.Cached || calls.Load() != 2 {
		t.Errorf("resp=%+v calls=%d, want cached response on attempt 2", resp, calls.Load())
	}
}

func TestRetryOn5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "transient", http.StatusBadGateway)
			return
		}
		okRun(w)
	}))
	defer ts.Close()
	if _, err := fastClient(ts.URL).Run(context.Background(), RunRequest{Refs: 1}); err != nil {
		t.Fatalf("Run after two 502s: %v", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
}

func TestNoRetryOn4xx(t *testing.T) {
	// Client errors are deterministic; retrying them only repeats the
	// mistake. Exactly one attempt, surfaced as a typed StatusError.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "bad refs"})
	}))
	defer ts.Close()
	_, err := fastClient(ts.URL).Run(context.Background(), RunRequest{Refs: 1})
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusBadRequest || se.Message != "bad refs" {
		t.Fatalf("err = %v, want 400 StatusError with server message", err)
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (no retry on 4xx)", calls.Load())
	}
}

func TestNegativeRetriesDisables(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	c.Retries = -1
	if _, err := c.Run(context.Background(), RunRequest{Refs: 1}); err == nil {
		t.Fatal("want error")
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 (retries disabled)", calls.Load())
	}
}

func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	c.Retries = 2
	_, err := c.Run(context.Background(), RunRequest{Refs: 1})
	se, ok := err.(*StatusError)
	if !ok || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the final 503", err)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 1 + 2 retries", calls.Load())
	}
}

func TestContextCancelStopsRetrying(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	c.Backoff = time.Hour // the cancel must cut the backoff sleep short
	c.MaxBackoff = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := c.Run(ctx, RunRequest{Refs: 1}); err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not interrupt the backoff sleep")
	}
}

func TestPromptCancelMidBackoff(t *testing.T) {
	// A daemon shedding load forever: every attempt gets a retryable 503,
	// so the client spends its life in backoff sleeps. An explicit cancel
	// landing mid-sleep must return promptly with the context's error, not
	// after the hour-long timer.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL)
	c.Backoff = time.Hour
	c.MaxBackoff = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Run(ctx, RunRequest{Refs: 1})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > time.Second {
		t.Fatalf("cancel mid-backoff took %s to surface, want prompt return", elapsed)
	}
}

func TestBackoffNeverOutlivesDeadline(t *testing.T) {
	// The first attempt fails retryably, and the next backoff could not
	// possibly finish before the caller's deadline. The client must refuse
	// to start that sleep and hand back the real error immediately — not
	// doze until DeadlineExceeded.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := New(ts.URL)
	c.Backoff = time.Hour
	c.MaxBackoff = time.Hour
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	_, err := c.Run(ctx, RunRequest{Refs: 1})
	elapsed := time.Since(start)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the 503 that made retrying pointless", err)
	}
	if elapsed > time.Second {
		t.Fatalf("abandoning the doomed backoff took %s, want immediate return", elapsed)
	}
}

func TestConcurrentUseOfSharedClient(t *testing.T) {
	// One Client, many goroutines: settings are computed per call, never
	// written back, so this must be race-clean (run with -race).
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		okRun(w)
	}))
	defer ts.Close()
	c := fastClient(ts.URL)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Run(context.Background(), RunRequest{Refs: 1}); err != nil {
				t.Errorf("Run: %v", err)
			}
		}()
	}
	wg.Wait()
}

func TestSweepMetaFromHeaders(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Spur-Key", "abc123")
		w.Header().Set("X-Spur-Cached", "true")
		w.Write([]byte("workload,mem_mb\n"))
	}))
	defer ts.Close()
	body, meta, err := fastClient(ts.URL).Sweep(context.Background(), SweepRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "workload,mem_mb\n" || meta.Key != "abc123" || !meta.Cached {
		t.Errorf("body=%q meta=%+v", body, meta)
	}
}
