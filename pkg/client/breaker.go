package client

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits exactly one probe; its outcome closes or
	// re-opens the breaker.
	BreakerHalfOpen
)

var breakerStateNames = [...]string{"closed", "open", "half-open"}

// String returns the conventional name for the state.
func (s BreakerState) String() string {
	if s < 0 || int(s) >= len(breakerStateNames) {
		return "unknown"
	}
	return breakerStateNames[s]
}

// Breaker is a per-peer circuit breaker: Threshold consecutive failures
// open it, an open breaker rejects requests for Cooldown, and after the
// cooldown a single half-open probe decides whether it closes again. The
// clock is injected so tests (and seeded drills) step time deterministically
// instead of sleeping. A nil *Breaker allows everything and records
// nothing, so call sites need no nil checks.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState // guarded by mu
	failures int          // guarded by mu: consecutive failures while closed
	openedAt time.Time    // guarded by mu: when the breaker last opened
	probing  bool         // guarded by mu: a half-open probe is in flight
}

// NewBreaker builds a breaker. threshold <= 0 defaults to 3 consecutive
// failures, cooldown <= 0 to 5 s, a nil now to time.Now.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a request may proceed. An open breaker whose
// cooldown has elapsed moves to half-open and admits the caller as the
// probe; every Allow that returns true must be matched by one Record.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports the outcome of an allowed request. Success closes the
// breaker and clears the failure count; failure while half-open (or the
// threshold'th consecutive failure while closed) opens it and starts the
// cooldown.
func (b *Breaker) Record(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
}

// cancelProbe releases an admitted request whose outcome was never
// observed — a hedge loser cancelled after another peer won, or an
// attempt abandoned when the caller's context died. It is the alternate
// match for an Allow that returned true: the in-flight probe is cleared
// so a later Allow can admit a new one, without judging the peer either
// way.
func (b *Breaker) cancelProbe() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// State returns the breaker's current position without advancing it: an
// open breaker past its cooldown still reads as open until a request
// actually probes it.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Cooldown returns the configured cooldown, for Retry-After hints.
func (b *Breaker) Cooldown() time.Duration {
	if b == nil {
		return 0
	}
	return b.cooldown
}

// latWindow is how many recent latencies the hedge-delay estimate keeps;
// latMinSamples is how many must exist before a p99 is trusted.
const (
	latWindow     = 128
	latMinSamples = 16
)

// latencies is a fixed ring of recent successful request latencies, from
// which the fleet derives its hedge delay.
type latencies struct {
	mu      sync.Mutex
	samples [latWindow]time.Duration // guarded by mu: ring of recent latencies
	n       int                      // guarded by mu: filled entries
	next    int                      // guarded by mu: ring cursor
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples[l.next] = d
	l.next = (l.next + 1) % latWindow
	if l.n < latWindow {
		l.n++
	}
}

// p99 returns the 99th-percentile latency of the window and whether enough
// samples exist to trust it.
func (l *latencies) p99() (time.Duration, bool) {
	l.mu.Lock()
	n := l.n
	buf := make([]time.Duration, n)
	copy(buf, l.samples[:n])
	l.mu.Unlock()
	if n < latMinSamples {
		return 0, false
	}
	// Insertion sort: the window is tiny and this avoids pulling in sort
	// for a latency estimate.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && buf[j] < buf[j-1]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	return buf[(n*99)/100], true
}
