package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	spur "repro"
	"repro/internal/cluster"
	"repro/internal/expstore"
)

// Fleet is the cluster-aware client: it knows the spurd fleet's static
// peer list, computes each request's content address locally with the same
// hash the daemons use, talks straight to the key's owner, and on
// timeout/transport failure/5xx fails over through the replica list. The
// usual single-node retry/backoff (with jitter and Retry-After handling)
// still applies per peer, just with a lower default retry budget so a dead
// owner costs milliseconds, not a full backoff ladder.
//
// Three fleet-level defenses ride on top of failover:
//
//   - a per-peer circuit breaker (closed/open/half-open): a peer that keeps
//     failing is skipped outright until its cooldown elapses, so a dead node
//     costs nothing after the first few attempts;
//   - a total retry budget per logical request, so a failover storm cannot
//     multiply load against an already-degraded fleet;
//   - hedged reads for idempotent GETs: after a p99-derived delay the
//     request is also sent to the next replica and the first response wins,
//     with the loser cancelled.
//
// A Fleet is safe for concurrent use after New; do not mutate its fields
// once requests are in flight.
type Fleet struct {
	// Template carries the per-peer HTTP settings (HTTPClient, Backoff,
	// MaxBackoff, Retries). Its BaseURL is ignored; Retries defaults to 1
	// per peer — failing over beats backing off when there are replicas.
	Template Client

	peers   []string
	rep     int
	version string
	ring    *cluster.Ring

	hedgeDelay     time.Duration
	attemptTimeout time.Duration
	retryBudget    int
	breakers       map[string]*Breaker // static after NewFleet; each Breaker locks itself
	lat            *latencies
}

// FleetOptions tunes NewFleet.
type FleetOptions struct {
	// Replication must match the fleet's -replicas setting (default 2,
	// clamped to the peer count); VNodes its -vnodes (default
	// cluster.DefaultVNodes). A mismatch is not fatal — the daemons proxy
	// misrouted requests — it just costs a hop.
	Replication int
	VNodes      int
	// Version overrides the code version hashed into store keys (default
	// spur.Version, which is correct when client and daemons are built
	// from the same tree).
	Version string
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's breaker (default 3); BreakerCooldown is how long an open
	// breaker rejects that peer before admitting a half-open probe
	// (default 5 s). Clock injects the breaker clock, so tests and seeded
	// drills step time deterministically (default time.Now).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	Clock            func() time.Time
	// HedgeDelay is how long an idempotent GET waits on the owner before
	// hedging to the next replica (first response wins, loser cancelled).
	// Zero derives the delay from the observed p99 once enough samples
	// exist; negative disables hedging.
	HedgeDelay time.Duration
	// AttemptTimeout bounds each per-peer attempt, so one black-holed
	// peer cannot eat the caller's whole deadline budget (0 = bounded
	// only by the caller's context).
	AttemptTimeout time.Duration
	// RetryBudget caps the total HTTP attempts one logical request may
	// make across all replicas and per-peer retries (default
	// 2 × replication).
	RetryBudget int
}

// NewFleet builds a fleet client over the peer base URLs.
func NewFleet(peers []string, opts FleetOptions) (*Fleet, error) {
	ring, err := cluster.NewRing(peers, opts.VNodes)
	if err != nil {
		return nil, err
	}
	rep := opts.Replication
	if rep <= 0 {
		rep = 2
	}
	if n := len(ring.Peers()); rep > n {
		rep = n
	}
	version := opts.Version
	if version == "" {
		version = spur.Version
	}
	budget := opts.RetryBudget
	if budget <= 0 {
		budget = 2 * rep
	}
	f := &Fleet{
		peers:          ring.Peers(),
		rep:            rep,
		version:        version,
		ring:           ring,
		hedgeDelay:     opts.HedgeDelay,
		attemptTimeout: opts.AttemptTimeout,
		retryBudget:    budget,
		breakers:       make(map[string]*Breaker, len(ring.Peers())),
		lat:            &latencies{},
	}
	for _, p := range f.peers {
		f.breakers[p] = NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.Clock)
	}
	return f, nil
}

// Peers returns the fleet's sorted peer list.
func (f *Fleet) Peers() []string { return append([]string(nil), f.peers...) }

// Replicas returns the peers responsible for key, owner first — the order
// requests for that key are attempted in.
func (f *Fleet) Replicas(key string) []string { return f.ring.Replicas(key, f.rep) }

// BreakerStates reports every peer's breaker position, for drills and
// operator tooling.
func (f *Fleet) BreakerStates() map[string]string {
	out := make(map[string]string, len(f.breakers))
	for p, b := range f.breakers {
		out[p] = b.State().String()
	}
	return out
}

// peerClient instantiates the template against one peer.
func (f *Fleet) peerClient(peer string) *Client {
	c := f.Template
	c.BaseURL = peer
	if c.Retries == 0 {
		c.Retries = 1
	}
	return &c
}

// authoritative reports whether err is a real answer (a 4xx other than
// 429: bad request, unknown table, ...) rather than an availability
// failure worth failing over.
func authoritative(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.Code/100 == 4 && se.Code != http.StatusTooManyRequests
}

// errBreakerOpen marks a peer skipped because its circuit breaker is open.
var errBreakerOpen = errors.New("circuit breaker open")

// clampRetries fits c's per-peer retries inside the remaining attempt
// budget and returns how many attempts the peer may now consume. A
// remaining budget of 1 means one attempt and no retries.
func clampRetries(c *Client, remaining int) int {
	retries := c.Retries
	if retries < 0 {
		retries = 0
	}
	if retries > remaining-1 {
		retries = remaining - 1
	}
	if retries == 0 {
		c.Retries = -1 // 0 would re-default; negative means "no retries"
	} else {
		c.Retries = retries
	}
	return retries + 1
}

// attemptCtx bounds one per-peer attempt with the fleet's attempt timeout.
func (f *Fleet) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if f.attemptTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, f.attemptTimeout)
}

// failover runs try against each of key's replicas in placement order
// until one answers, skipping peers whose breaker is open and stopping
// when the retry budget is spent. Authoritative errors return immediately;
// when every replica fails the caller gets one clear error naming them all.
func (f *Fleet) failover(ctx context.Context, key expstore.Key, try func(ctx context.Context, c *Client) error) error {
	replicas := f.Replicas(string(key))
	attempts := 0
	var errs []error
	for _, peer := range replicas {
		if attempts >= f.retryBudget {
			errs = append(errs, fmt.Errorf("retry budget of %d attempts spent", f.retryBudget))
			break
		}
		br := f.breakers[peer]
		if !br.Allow() {
			errs = append(errs, fmt.Errorf("%s: %w", peer, errBreakerOpen))
			continue
		}
		c := f.peerClient(peer)
		attempts += clampRetries(c, f.retryBudget-attempts)
		actx, cancel := f.attemptCtx(ctx)
		t0 := time.Now()
		err := try(actx, c)
		cancel()
		if err == nil {
			br.Record(true)
			// Feed the hedge-delay estimate from every successful read, not
			// just hedged ones — with HedgeDelay == 0 the p99 window must
			// fill here, or hedging could never engage.
			f.lat.add(time.Since(t0))
			return nil
		}
		if authoritative(err) {
			// The peer answered; only the answer was "no".
			br.Record(true)
			return err
		}
		br.Record(false)
		errs = append(errs, fmt.Errorf("%s: %w", peer, err))
		if ctx.Err() != nil {
			break
		}
	}
	return fmt.Errorf("fleet: all %d replicas of %.12s unreachable: %w", len(replicas), key, errors.Join(errs...))
}

// hedgeResult is one hedged attempt's outcome.
type hedgeResult struct {
	peer string
	err  error
	dur  time.Duration
}

// hedge runs try against key's replicas with hedged-read semantics: the
// owner is asked first, and if no response lands within the hedge delay
// the next replica is asked too — first success wins and the losers are
// cancelled. A failed attempt launches the next replica immediately
// (plain failover), the retry budget caps total attempts, and per-peer
// breakers gate participation exactly as in failover. try must be
// idempotent and must serialize its own result handling (hedge only
// commits one winner, via the returned peer).
func (f *Fleet) hedge(ctx context.Context, key expstore.Key, try func(ctx context.Context, c *Client) error) error {
	delay := f.hedgeDelay
	if delay == 0 {
		if p99, ok := f.lat.p99(); ok {
			delay = p99
		}
	}
	if delay <= 0 {
		// Hedging disabled (or no latency history yet): plain failover.
		return f.failover(ctx, key, try)
	}

	replicas := f.Replicas(string(key))
	var errs []error
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan hedgeResult, len(replicas))
	attempts := 0
	next := 0 // next replica candidate, in placement order
	inflight := 0
	// launch contacts the next replica whose breaker admits it. Allow is
	// asked only here, for peers actually contacted, so every admitted
	// probe is matched by a Record (or a cancelProbe via drain below).
	launch := func() bool {
		for next < len(replicas) && attempts < f.retryBudget {
			peer := replicas[next]
			next++
			if !f.breakers[peer].Allow() {
				errs = append(errs, fmt.Errorf("%s: %w", peer, errBreakerOpen))
				continue
			}
			c := f.peerClient(peer)
			c.Retries = -1 // hedging replaces the per-peer retry ladder
			attempts++
			inflight++
			go func() {
				actx, acancel := f.attemptCtx(hctx)
				defer acancel()
				t0 := time.Now()
				err := try(actx, c)
				results <- hedgeResult{peer: peer, err: err, dur: time.Since(t0)}
			}()
			return true
		}
		return false
	}
	canLaunch := func() bool { return next < len(replicas) && attempts < f.retryBudget }

	if !launch() {
		return fmt.Errorf("fleet: all %d replicas of %.12s rejected: %w", len(replicas), key, errors.Join(errs...))
	}
	for inflight > 0 {
		var hedgeC <-chan time.Time
		var hedgeT *time.Timer
		if canLaunch() {
			hedgeT = time.NewTimer(delay)
			hedgeC = hedgeT.C
		}
		var won, done bool
		var out error
		select {
		case r := <-results:
			inflight--
			switch {
			case r.err == nil:
				f.breakers[r.peer].Record(true)
				f.lat.add(r.dur)
				won, done = true, true
			case authoritative(r.err):
				f.breakers[r.peer].Record(true)
				out, done = r.err, true
			default:
				f.breakers[r.peer].Record(false)
				errs = append(errs, fmt.Errorf("%s: %w", r.peer, r.err))
				if ctx.Err() == nil {
					launch()
				}
			}
		case <-hedgeC:
			launch()
		case <-ctx.Done():
			out, done = fmt.Errorf("fleet: hedged %.12s: %w", key, errors.Join(append(errs, ctx.Err())...)), true
		}
		if hedgeT != nil {
			hedgeT.Stop()
		}
		if done {
			cancel()
			f.drainLosers(results, inflight)
			if won {
				return nil
			}
			return out
		}
	}
	return fmt.Errorf("fleet: all %d replicas of %.12s unreachable: %w", len(replicas), key, errors.Join(errs...))
}

// drainLosers settles breaker accounting for hedge attempts still in
// flight when hedge returns: every Allow that admitted a request must be
// matched, or a half-open peer stays probing and is excluded forever. It
// runs in the background so the winner's caller is not held hostage to the
// (already-cancelled) losers. A loser that actually answered is recorded
// normally; one cut short by hedge's own cancellation releases its
// admission without judging the peer.
func (f *Fleet) drainLosers(results <-chan hedgeResult, inflight int) {
	if inflight == 0 {
		return
	}
	go func() {
		for i := 0; i < inflight; i++ {
			r := <-results
			br := f.breakers[r.peer]
			switch {
			case r.err == nil, authoritative(r.err):
				br.Record(true)
			case errors.Is(r.err, context.Canceled):
				br.cancelProbe()
			default:
				br.Record(false)
			}
		}
	}()
}

// Run executes one simulator run against the key's owner, failing over
// through its replicas.
func (f *Fleet) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	key, err := expstore.KeyOf(f.version, "run", req)
	if err != nil {
		return nil, err
	}
	var resp *RunResponse
	err = f.failover(ctx, key, func(ctx context.Context, c *Client) error {
		r, err := c.Run(ctx, req)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// Sweep executes the memory-size study against the key's owner, failing
// over through its replicas.
func (f *Fleet) Sweep(ctx context.Context, req SweepRequest) ([]byte, SweepMeta, error) {
	if err := req.Normalize(); err != nil {
		return nil, SweepMeta{}, err
	}
	// Format is presentation only and excluded from the content address,
	// exactly as the server strips it.
	keyReq := req
	keyReq.Format = ""
	key, err := expstore.KeyOf(f.version, "sweep", keyReq)
	if err != nil {
		return nil, SweepMeta{}, err
	}
	var body []byte
	var meta SweepMeta
	err = f.failover(ctx, key, func(ctx context.Context, c *Client) error {
		b, m, err := c.Sweep(ctx, req)
		if err == nil {
			body, meta = b, m
		}
		return err
	})
	return body, meta, err
}

// Tables fetches one paper artifact with hedged-read semantics: it is an
// idempotent GET of immutable content, so after the hedge delay the next
// replica is asked concurrently and the first response wins. Each in-flight
// attempt decodes into its own response; only the winner's is kept.
func (f *Fleet) Tables(ctx context.Context, id string, q TablesQuery) (*TablesResponse, error) {
	if err := q.Normalize(); err != nil {
		return nil, err
	}
	key, err := expstore.KeyOf(f.version, "tables/"+id, q)
	if err != nil {
		return nil, err
	}
	winner := make(chan *TablesResponse, 1)
	err = f.hedge(ctx, key, func(ctx context.Context, c *Client) error {
		r, err := c.Tables(ctx, id, q)
		if err != nil {
			return err
		}
		select {
		case winner <- r:
		default: // a faster attempt already won
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return <-winner, nil
}

// Health fetches every peer's /healthz; unreachable peers get a nil entry
// and an error in the second slice (indexed like Peers()). Health probes
// bypass the breakers — they are how an operator sees a down peer, so they
// must not be gated by its state.
func (f *Fleet) Health(ctx context.Context) ([]*Health, []error) {
	hs := make([]*Health, len(f.peers))
	errs := make([]error, len(f.peers))
	for i, peer := range f.peers {
		hs[i], errs[i] = f.peerClient(peer).Health(ctx)
	}
	return hs, errs
}
