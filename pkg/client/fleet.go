package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	spur "repro"
	"repro/internal/cluster"
	"repro/internal/expstore"
)

// Fleet is the cluster-aware client: it knows the spurd fleet's static
// peer list, computes each request's content address locally with the same
// hash the daemons use, talks straight to the key's owner, and on
// timeout/transport failure/5xx fails over through the replica list. The
// usual single-node retry/backoff (with jitter and Retry-After handling)
// still applies per peer, just with a lower default retry budget so a dead
// owner costs milliseconds, not a full backoff ladder.
//
// A Fleet is safe for concurrent use after New; do not mutate its fields
// once requests are in flight.
type Fleet struct {
	// Template carries the per-peer HTTP settings (HTTPClient, Backoff,
	// MaxBackoff, Retries). Its BaseURL is ignored; Retries defaults to 1
	// per peer — failing over beats backing off when there are replicas.
	Template Client

	peers   []string
	rep     int
	version string
	ring    *cluster.Ring
}

// FleetOptions tunes NewFleet.
type FleetOptions struct {
	// Replication must match the fleet's -replicas setting (default 2,
	// clamped to the peer count); VNodes its -vnodes (default
	// cluster.DefaultVNodes). A mismatch is not fatal — the daemons proxy
	// misrouted requests — it just costs a hop.
	Replication int
	VNodes      int
	// Version overrides the code version hashed into store keys (default
	// spur.Version, which is correct when client and daemons are built
	// from the same tree).
	Version string
}

// NewFleet builds a fleet client over the peer base URLs.
func NewFleet(peers []string, opts FleetOptions) (*Fleet, error) {
	ring, err := cluster.NewRing(peers, opts.VNodes)
	if err != nil {
		return nil, err
	}
	rep := opts.Replication
	if rep <= 0 {
		rep = 2
	}
	if n := len(ring.Peers()); rep > n {
		rep = n
	}
	version := opts.Version
	if version == "" {
		version = spur.Version
	}
	return &Fleet{peers: ring.Peers(), rep: rep, version: version, ring: ring}, nil
}

// Peers returns the fleet's sorted peer list.
func (f *Fleet) Peers() []string { return append([]string(nil), f.peers...) }

// Replicas returns the peers responsible for key, owner first — the order
// requests for that key are attempted in.
func (f *Fleet) Replicas(key string) []string { return f.ring.Replicas(key, f.rep) }

// peerClient instantiates the template against one peer.
func (f *Fleet) peerClient(peer string) *Client {
	c := f.Template
	c.BaseURL = peer
	if c.Retries == 0 {
		c.Retries = 1
	}
	return &c
}

// authoritative reports whether err is a real answer (a 4xx other than
// 429: bad request, unknown table, ...) rather than an availability
// failure worth failing over.
func authoritative(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.Code/100 == 4 && se.Code != http.StatusTooManyRequests
}

// failover runs try against each of key's replicas in placement order
// until one answers. Authoritative errors return immediately; when every
// replica is down the caller gets one clear error naming them all.
func (f *Fleet) failover(ctx context.Context, key expstore.Key, try func(c *Client) error) error {
	replicas := f.Replicas(string(key))
	var errs []error
	for _, peer := range replicas {
		err := try(f.peerClient(peer))
		if err == nil {
			return nil
		}
		if authoritative(err) {
			return err
		}
		errs = append(errs, fmt.Errorf("%s: %w", peer, err))
		if ctx.Err() != nil {
			break
		}
	}
	return fmt.Errorf("fleet: all %d replicas of %.12s unreachable: %w", len(replicas), key, errors.Join(errs...))
}

// Run executes one simulator run against the key's owner, failing over
// through its replicas.
func (f *Fleet) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	key, err := expstore.KeyOf(f.version, "run", req)
	if err != nil {
		return nil, err
	}
	var resp *RunResponse
	err = f.failover(ctx, key, func(c *Client) error {
		r, err := c.Run(ctx, req)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// Sweep executes the memory-size study against the key's owner, failing
// over through its replicas.
func (f *Fleet) Sweep(ctx context.Context, req SweepRequest) ([]byte, SweepMeta, error) {
	if err := req.Normalize(); err != nil {
		return nil, SweepMeta{}, err
	}
	// Format is presentation only and excluded from the content address,
	// exactly as the server strips it.
	keyReq := req
	keyReq.Format = ""
	key, err := expstore.KeyOf(f.version, "sweep", keyReq)
	if err != nil {
		return nil, SweepMeta{}, err
	}
	var body []byte
	var meta SweepMeta
	err = f.failover(ctx, key, func(c *Client) error {
		b, m, err := c.Sweep(ctx, req)
		if err == nil {
			body, meta = b, m
		}
		return err
	})
	return body, meta, err
}

// Tables fetches one paper artifact against the key's owner, failing over
// through its replicas.
func (f *Fleet) Tables(ctx context.Context, id string, q TablesQuery) (*TablesResponse, error) {
	if err := q.Normalize(); err != nil {
		return nil, err
	}
	key, err := expstore.KeyOf(f.version, "tables/"+id, q)
	if err != nil {
		return nil, err
	}
	var resp *TablesResponse
	err = f.failover(ctx, key, func(c *Client) error {
		r, err := c.Tables(ctx, id, q)
		if err == nil {
			resp = r
		}
		return err
	})
	return resp, err
}

// Health fetches every peer's /healthz; unreachable peers get a nil entry
// and an error in the second slice (indexed like Peers()).
func (f *Fleet) Health(ctx context.Context) ([]*Health, []error) {
	hs := make([]*Health, len(f.peers))
	errs := make([]error, len(f.peers))
	for i, peer := range f.peers {
		hs[i], errs[i] = f.peerClient(peer).Health(ctx)
	}
	return hs, errs
}
