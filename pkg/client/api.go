// Package client is the typed client library for the spurd experiment
// service: wire types mirroring the spur package's option structs
// (RunOptions, MemorySweepOptions, Table41Options), plus an HTTP client
// with retry/backoff that turns `cmd/sweep -remote` and `cmd/tables
// -remote` into thin front-ends over a shared, memoizing daemon.
//
// The wire types double as the service's canonical cache spec: Normalize
// applies the same defaults the local option fillers apply, so two
// requests that mean the same experiment hash to the same content address
// in the daemon's result store regardless of which fields were spelled
// out.
package client

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/expstore"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/workload"
)

// Named workloads accepted by RunRequest.Workload.
const (
	WorkloadSLC    = "slc"
	WorkloadW1     = "workload1"
	WorkloadWindow = "window"
)

// HardenedOptions mirrors machine.RunOptions on the wire: it asks the
// server to drive the run through spur.RunHardened instead of the plain
// runner, so chaos configurations stay usable remotely.
type HardenedOptions struct {
	// AuditEvery audits machine invariants every N references (0 = final
	// audit only), as machine.RunOptions.AuditEvery.
	AuditEvery int64 `json:"audit_every,omitempty"`
	// DeadlineMS bounds the run's wall-clock time in milliseconds
	// (0 = unbounded). Deadline failures are never cached server-side.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// TraceTail is how many trailing trace records a failure bundle
	// keeps (0 = the hardened runner's default).
	TraceTail int `json:"trace_tail,omitempty"`
}

// RunRequest asks the service for one simulator run. It mirrors
// spur.Config plus the hardened-runner options; zero fields take the same
// defaults spur.DefaultConfig applies locally.
type RunRequest struct {
	// Workload names a shipped workload ("slc", "workload1", "window");
	// Spec carries an inline workload instead. Exactly one may be set
	// (neither defaults to "slc").
	Workload string         `json:"workload,omitempty"`
	Spec     *workload.Spec `json:"spec,omitempty"`

	// MemMB and CacheKB size main memory and the virtual-address cache
	// (defaults: 8 MB, 128 KB).
	MemMB   int `json:"mem_mb,omitempty"`
	CacheKB int `json:"cache_kb,omitempty"`
	// Refs is the reference budget (default: the local reference scale).
	Refs int64 `json:"refs,omitempty"`
	// Seed drives the workload generators (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Dirty and Ref name the policies under test ("SPUR", "MISS", ...;
	// case-insensitive; defaults SPUR and MISS).
	Dirty string `json:"dirty,omitempty"`
	Ref   string `json:"ref,omitempty"`

	// Faults schedules deterministic fault injection, exactly as
	// spur.Config.Faults does locally.
	Faults []faultinject.Plan `json:"faults,omitempty"`
	// Hardened, when set, runs under spur.RunHardened with these options.
	Hardened *HardenedOptions `json:"hardened,omitempty"`
}

// Normalize validates the request and fills defaults in place, producing
// the canonical form the server hashes into a store key. It is idempotent.
func (r *RunRequest) Normalize() error {
	if r.Spec != nil {
		if r.Workload != "" {
			return fmt.Errorf("client: RunRequest sets both Workload and Spec")
		}
		if err := workload.ValidateSpec(*r.Spec); err != nil {
			return err
		}
	} else {
		if r.Workload == "" {
			r.Workload = WorkloadSLC
		}
		r.Workload = strings.ToLower(r.Workload)
		switch r.Workload {
		case WorkloadSLC, WorkloadW1, WorkloadWindow:
		default:
			return fmt.Errorf("client: unknown workload %q (want slc, workload1 or window)", r.Workload)
		}
	}
	def := machine.DefaultConfig()
	if r.MemMB == 0 {
		r.MemMB = def.MemoryBytes >> 20
	}
	if r.CacheKB == 0 {
		r.CacheKB = def.CacheBytes >> 10
	}
	if r.MemMB < 1 || r.CacheKB < 1 {
		return fmt.Errorf("client: non-positive sizes (mem %d MB, cache %d KB)", r.MemMB, r.CacheKB)
	}
	if r.Refs == 0 {
		r.Refs = def.TotalRefs
	}
	if r.Refs < 0 {
		return fmt.Errorf("client: negative reference budget %d", r.Refs)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Dirty == "" {
		r.Dirty = def.Dirty.String()
	}
	d, err := core.ParseDirtyPolicy(r.Dirty)
	if err != nil {
		return err
	}
	r.Dirty = d.String()
	if r.Ref == "" {
		r.Ref = def.Ref.String()
	}
	p, err := core.ParseRefPolicy(r.Ref)
	if err != nil {
		return err
	}
	r.Ref = p.String()
	return nil
}

// RunResponse is the service's answer to a RunRequest.
type RunResponse struct {
	// Key is the result's content address in the daemon's store.
	Key string `json:"key"`
	// Cached reports whether the result was served from the store
	// without burning simulator cycles.
	Cached bool `json:"cached"`
	// Result is the run summary (spur.Result).
	Result machine.Result `json:"result"`
	// Failure is non-nil when a hardened run was quarantined
	// (spur.RunFailure). Failed runs are never cached.
	Failure *machine.RunFailure `json:"failure,omitempty"`
}

// Sweep output formats.
const (
	FormatCSV   = "csv"
	FormatChart = "chart"
)

// SweepRequest mirrors spur.MemorySweepOptions on the wire: the memory-size
// study's result-determining fields, minus the execution knobs (Parallel,
// Progress, Context) the server owns. Zero fields take the same defaults
// the local sweep applies, so a remote sweep is byte-identical to a local
// serial one.
type SweepRequest struct {
	// Workloads ("SLC", "WORKLOAD1"; case-insensitive), SizesMB and
	// Policies ("MISS", "REF", "NOREF") span the sweep grid; defaults
	// match spur.MemorySweepOptions.
	Workloads []string `json:"workloads,omitempty"`
	SizesMB   []int    `json:"sizes_mb,omitempty"`
	Policies  []string `json:"policies,omitempty"`
	// Refs per run (default 8M), Seed (default 1) and Reps per cell
	// (default 1), as in spur.MemorySweepOptions.
	Refs int64  `json:"refs,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	Reps int    `json:"reps,omitempty"`
	// AuditEvery forwards to the hardened runner each cell runs under.
	AuditEvery int64 `json:"audit_every,omitempty"`

	// Sample switches the sweep to the interval-sampling estimator
	// (spur.MemorySweepSampled): full-run projections with CI95 error bars
	// instead of exact counts. Sampled results live under their own store
	// kind and can never be served where an exact sweep was asked for.
	// Every sampling field is omitempty, so requests that predate sampling
	// hash to the same store keys as before.
	Sample bool `json:"sample,omitempty"`
	// Intervals, IntervalLen and Warmup forward to spur.SampleOptions
	// (0 = that type's defaults). They are ignored — and rejected by
	// Normalize — unless Sample is set.
	Intervals   int   `json:"intervals,omitempty"`
	IntervalLen int64 `json:"interval_len,omitempty"`
	Warmup      int64 `json:"warmup,omitempty"`

	// Format selects the response rendering: "csv" (default) or "chart".
	// It is presentation only and excluded from the store key — both
	// renderings of one spec share one stored result.
	Format string `json:"format,omitempty"`
}

// Normalize validates the request and fills defaults in place, producing
// the canonical form the server hashes into a store key.
func (r *SweepRequest) Normalize() error {
	if len(r.Workloads) == 0 {
		r.Workloads = []string{string(core.SLC), string(core.Workload1)}
	}
	for i, w := range r.Workloads {
		switch strings.ToUpper(w) {
		case string(core.SLC):
			r.Workloads[i] = string(core.SLC)
		case string(core.Workload1):
			r.Workloads[i] = string(core.Workload1)
		default:
			return fmt.Errorf("client: unknown sweep workload %q (want SLC or WORKLOAD1)", w)
		}
	}
	if len(r.SizesMB) == 0 {
		r.SizesMB = []int{4, 5, 6, 7, 8, 10, 12, 16}
	}
	for _, mb := range r.SizesMB {
		if mb < 1 {
			return fmt.Errorf("client: non-positive memory size %d MB", mb)
		}
	}
	if len(r.Policies) == 0 {
		for _, p := range core.RefPolicies {
			r.Policies = append(r.Policies, p.String())
		}
	}
	for i, s := range r.Policies {
		p, err := core.ParseRefPolicy(s)
		if err != nil {
			return err
		}
		r.Policies[i] = p.String()
	}
	if r.Refs == 0 {
		r.Refs = 8_000_000
	}
	if r.Refs < 0 {
		return fmt.Errorf("client: negative reference budget %d", r.Refs)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Reps <= 0 {
		r.Reps = 1
	}
	if r.AuditEvery < 0 {
		return fmt.Errorf("client: negative audit cadence %d", r.AuditEvery)
	}
	if !r.Sample && (r.Intervals != 0 || r.IntervalLen != 0 || r.Warmup != 0) {
		return fmt.Errorf("client: sampling parameters set without sample=true")
	}
	if r.Sample && r.AuditEvery != 0 {
		return fmt.Errorf("client: sampled sweeps do not run the audited exact pipeline (drop audit_every)")
	}
	if r.Intervals < 0 || r.IntervalLen < 0 || r.Warmup < 0 {
		return fmt.Errorf("client: negative sampling parameters (intervals %d, interval_len %d, warmup %d)",
			r.Intervals, r.IntervalLen, r.Warmup)
	}
	switch r.Format {
	case "":
		r.Format = FormatCSV
	case FormatCSV, FormatChart:
	default:
		return fmt.Errorf("client: unknown sweep format %q (want csv or chart)", r.Format)
	}
	if r.Sample && r.Format == FormatChart {
		return fmt.Errorf("client: sampled sweeps render as csv only (estimates carry error bars the chart cannot show)")
	}
	return nil
}

// SweepMeta describes how a sweep response was produced; the server sends
// it in headers alongside the CSV/chart body.
type SweepMeta struct {
	// Key is the sweep result's content address; Cached whether the rows
	// came from the store.
	Key    string
	Cached bool
}

// TableIDs lists the artifacts /v1/tables/{id} can produce, in the
// paper's order.
var TableIDs = []string{"2.1", "3.1", "3.2", "f3.1", "f3.2", "3.3", "3.4", "3.5", "4.1", "ext"}

// ValidTableID reports whether id names a servable artifact.
func ValidTableID(id string) bool {
	i := sort.SearchStrings(sortedTableIDs, id)
	return i < len(sortedTableIDs) && sortedTableIDs[i] == id
}

var sortedTableIDs = func() []string {
	ids := append([]string(nil), TableIDs...)
	sort.Strings(ids)
	return ids
}()

// TablesQuery parameterises a /v1/tables/{id} request; it mirrors the
// shared knobs of spur.Table33Options, spur.Table41Options and
// spur.CacheSweepOptions.
type TablesQuery struct {
	// Refs per run (0 = each table's default scale); Seed (default 1);
	// Reps for Table 4.1 (0 = its default 3).
	Refs int64  `json:"refs,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	Reps int    `json:"reps,omitempty"`
	// Paper includes the published values alongside (default true on the
	// wire: the server treats an absent parameter as true).
	Paper bool `json:"paper"`
}

// Normalize validates the query and fills defaults in place.
func (q *TablesQuery) Normalize() error {
	if q.Refs < 0 || q.Reps < 0 {
		return fmt.Errorf("client: negative refs/reps (%d, %d)", q.Refs, q.Reps)
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	return nil
}

// TablesResponse is the service's answer to /v1/tables/{id}: the artifact
// in the shared report.Doc serialization (see cmd/tables -json).
type TablesResponse struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Cached bool   `json:"cached"`
	// Docs holds the rendered artifacts: tables cell-by-cell, figures as
	// pre-rendered text.
	Docs []Doc `json:"docs"`
}

// Doc mirrors report.Doc on the wire.
type Doc struct {
	Title  string     `json:"title"`
	Header []string   `json:"header,omitempty"`
	Rows   [][]string `json:"rows,omitempty"`
	Notes  []string   `json:"notes,omitempty"`
	Text   string     `json:"text,omitempty"`
}

// Health is the /healthz response.
type Health struct {
	// Status is "ok" while serving, "draining" once shutdown has begun.
	Status string `json:"status"`
	// Version is the code version baked into every store key.
	Version string `json:"version"`
	// Store is the result store's counter snapshot.
	Store expstore.Stats `json:"store"`
	// Queue is the job queue's occupancy snapshot.
	Queue QueueStats `json:"queue"`
	// Jobs snapshots the durable job journal; nil when the daemon runs
	// without one.
	Jobs *JobsStats `json:"jobs,omitempty"`
	// Cluster snapshots fleet membership and the replication outbox; nil
	// for single-node daemons.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Uptime is the daemon's age.
	Uptime Duration `json:"uptime"`
}

// ClusterStats is the /healthz cluster section: enough node state for
// drills and load tests to assert on (the full probed membership view
// lives at GET /v1/cluster).
type ClusterStats struct {
	// Self is this node's advertised URL; Peers the static fleet size;
	// Replication the per-key replica count.
	Self        string `json:"self"`
	Peers       int    `json:"peers"`
	Replication int    `json:"replication"`
	// Outbox is the replication queue: its Pending field is the
	// undelivered (key, replica) backlog, OldestAgeSec the age of the
	// oldest still-owed intent.
	Outbox cluster.Stats `json:"outbox"`
	// Breakers maps each other peer's URL to this node's outgoing
	// circuit-breaker state for it: "closed", "open", or "half-open".
	Breakers map[string]string `json:"breakers,omitempty"`
}

// JobsStats snapshots the daemon's durable job journal.
type JobsStats struct {
	// Journaled jobs were accepted and journaled this process; Completed
	// of them finished (result persisted or deterministically failed).
	Journaled uint64 `json:"journaled"`
	Completed uint64 `json:"completed"`
	// Recovered counts jobs owed by a previous process and recomputed at
	// startup; Pending is the current accepted-but-unfinished count.
	Recovered uint64 `json:"recovered"`
	Pending   int    `json:"pending"`
}

// QueueStats snapshots the daemon's bounded job queue.
type QueueStats struct {
	// Running jobs hold worker slots; Waiting jobs are admitted but
	// queued. Beyond MaxQueue waiters the daemon sheds load with 429.
	Running  int `json:"running"`
	Waiting  int `json:"waiting"`
	MaxRun   int `json:"max_run"`
	MaxQueue int `json:"max_queue"`
	// Rejected counts requests shed with 429 + Retry-After.
	Rejected uint64 `json:"rejected"`
	// Deduped counts requests that piggybacked on an identical in-flight
	// computation instead of queueing their own.
	Deduped uint64 `json:"deduped"`
}

// Duration marshals as seconds.
type Duration time.Duration

// MarshalJSON renders the duration in seconds.
func (d Duration) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%.1f", time.Duration(d).Seconds())), nil
}

// UnmarshalJSON parses seconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s float64
	if _, err := fmt.Sscanf(string(b), "%g", &s); err != nil {
		return err
	}
	*d = Duration(time.Duration(s * float64(time.Second)))
	return nil
}
