package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	spur "repro"
	"repro/internal/expstore"
)

// fakePeer is one fleet member: it serves canned /v1/run responses that
// name the peer, so tests can tell which member actually answered.
type fakePeer struct {
	ts     *httptest.Server
	calls  atomic.Int64
	status atomic.Int64 // 0 = healthy; otherwise the HTTP status to return
}

func (p *fakePeer) handle(w http.ResponseWriter, r *http.Request) {
	p.calls.Add(1)
	if code := p.status.Load(); code != 0 {
		http.Error(w, `{"error":"injected"}`, int(code))
		return
	}
	json.NewEncoder(w).Encode(RunResponse{Key: p.ts.URL, Cached: true})
}

func startPeers(t *testing.T, n int) []*fakePeer {
	t.Helper()
	peers := make([]*fakePeer, n)
	for i := range peers {
		p := &fakePeer{}
		p.ts = httptest.NewServer(http.HandlerFunc(p.handle))
		t.Cleanup(p.ts.Close)
		peers[i] = p
	}
	return peers
}

func testFleet(t *testing.T, peers []*fakePeer) *Fleet {
	t.Helper()
	urls := make([]string, len(peers))
	for i, p := range peers {
		urls[i] = p.ts.URL
	}
	f, err := NewFleet(urls, FleetOptions{})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	f.Template.Backoff = time.Millisecond
	f.Template.MaxBackoff = 2 * time.Millisecond
	return f
}

// runOrder returns the peers, owner first, that the fleet would try for
// req — computed exactly the way Fleet.Run does.
func runOrder(t *testing.T, f *Fleet, req RunRequest) []string {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	key, err := expstore.KeyOf(spur.Version, "run", req)
	if err != nil {
		t.Fatalf("KeyOf: %v", err)
	}
	return f.Replicas(string(key))
}

func peerByURL(t *testing.T, peers []*fakePeer, url string) *fakePeer {
	t.Helper()
	for _, p := range peers {
		if p.ts.URL == url {
			return p
		}
	}
	t.Fatalf("no fake peer at %s", url)
	return nil
}

func TestFleetRoutesToOwner(t *testing.T) {
	peers := startPeers(t, 3)
	f := testFleet(t, peers)
	req := RunRequest{Refs: 1000}
	order := runOrder(t, f, req)

	resp, err := f.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if resp.Key != order[0] {
		t.Errorf("served by %s, want owner %s", resp.Key, order[0])
	}
	for _, p := range peers {
		want := int64(0)
		if p.ts.URL == order[0] {
			want = 1
		}
		if got := p.calls.Load(); got != want {
			t.Errorf("peer %s saw %d calls, want %d", p.ts.URL, got, want)
		}
	}
}

func TestFleetOwnerDownFailsOverToReplica(t *testing.T) {
	peers := startPeers(t, 3)
	f := testFleet(t, peers)
	req := RunRequest{Refs: 2000}
	order := runOrder(t, f, req)
	if len(order) != 2 {
		t.Fatalf("replica set %v, want 2 peers", order)
	}

	peerByURL(t, peers, order[0]).ts.Close() // kill the owner

	resp, err := f.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run with owner down: %v", err)
	}
	if resp.Key != order[1] {
		t.Errorf("served by %s, want replica %s", resp.Key, order[1])
	}
}

func TestFleetAllReplicasDownClearError(t *testing.T) {
	peers := startPeers(t, 3)
	f := testFleet(t, peers)
	req := RunRequest{Refs: 3000}
	order := runOrder(t, f, req)
	for _, url := range order {
		peerByURL(t, peers, url).ts.Close()
	}

	_, err := f.Run(context.Background(), req)
	if err == nil {
		t.Fatal("Run with every replica down succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "all 2 replicas") {
		t.Errorf("error %q does not say how many replicas were tried", msg)
	}
	for _, url := range order {
		if !strings.Contains(msg, url) {
			t.Errorf("error %q does not name failed replica %s", msg, url)
		}
	}
	// The third peer is not in the replica set and must not be dragged in:
	// it would answer, but routing is deterministic, not scattershot.
	for _, p := range peers {
		if p.ts.URL != order[0] && p.ts.URL != order[1] && p.calls.Load() != 0 {
			t.Errorf("non-replica %s saw %d calls", p.ts.URL, p.calls.Load())
		}
	}
}

func TestFleetAuthoritative4xxDoesNotFailOver(t *testing.T) {
	peers := startPeers(t, 3)
	f := testFleet(t, peers)
	req := RunRequest{Refs: 4000}
	order := runOrder(t, f, req)
	peerByURL(t, peers, order[0]).status.Store(http.StatusBadRequest)

	_, err := f.Run(context.Background(), req)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want the owner's 400 verbatim", err)
	}
	if got := peerByURL(t, peers, order[1]).calls.Load(); got != 0 {
		t.Errorf("replica saw %d calls after an authoritative 4xx", got)
	}
}

func TestFleet5xxFailsOver(t *testing.T) {
	peers := startPeers(t, 3)
	f := testFleet(t, peers)
	f.Template.Retries = -1 // no per-peer retries: isolate the failover path
	req := RunRequest{Refs: 5000}
	order := runOrder(t, f, req)
	peerByURL(t, peers, order[0]).status.Store(http.StatusInternalServerError)

	resp, err := f.Run(context.Background(), req)
	if err != nil {
		t.Fatalf("Run with owner 500ing: %v", err)
	}
	if resp.Key != order[1] {
		t.Errorf("served by %s, want replica %s", resp.Key, order[1])
	}
}

func TestFleetCanceledContextStopsFailover(t *testing.T) {
	peers := startPeers(t, 3)
	f := testFleet(t, peers)
	req := RunRequest{Refs: 6000}
	order := runOrder(t, f, req)
	for _, url := range order {
		peerByURL(t, peers, url).ts.Close()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	_, err := f.Run(ctx, req)
	if err == nil {
		t.Fatal("Run with canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in the chain", err)
	}
	// At most the first replica may have been touched before the loop saw
	// the dead context.
	if got := peerByURL(t, peers, order[1]).calls.Load(); got != 0 {
		t.Errorf("second replica saw %d calls under a canceled context", got)
	}
}

func TestNewFleetRejectsEmptyPeerList(t *testing.T) {
	if _, err := NewFleet(nil, FleetOptions{}); err == nil {
		t.Fatal("NewFleet(nil) succeeded")
	}
}
